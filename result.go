package mptcpsim

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"mptcpsim/internal/capture"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/telemetry"
	"mptcpsim/internal/trace"
)

// Series is a throughput time series in Mbps with fixed-width bins.
type Series struct {
	// Name labels the series ("Path 1", "Total").
	Name string
	// Step is the bin width.
	Step time.Duration
	// Mbps holds one value per bin.
	Mbps []float64
}

// Mean returns the average over the bins in [from, to) (whole series when
// to <= from).
func (s Series) Mean(from, to time.Duration) float64 {
	m, _, _, _ := s.trace().Stats(from, to)
	return m
}

func (s Series) trace() *trace.Series {
	return &trace.Series{Name: s.Name, Step: s.Step, V: s.Mbps}
}

func fromTrace(t *trace.Series) Series {
	return Series{Name: t.Name, Step: t.Step, Mbps: t.V}
}

// Allocation is a per-path rate vector in Mbps.
type Allocation struct {
	PerPath []float64
	Total   float64
}

// SubflowReport summarises one subflow's transport behaviour.
type SubflowReport struct {
	// Path is the 1-based path number (= tag); Label its display name.
	Path  int
	Label string

	SentSegments   uint64
	SentBytes      uint64
	Retransmits    uint64
	RTOs           uint64
	FastRecoveries uint64
	SRTT           time.Duration
	FinalCwndBytes int
}

// EpochReport is the piecewise view of one capacity epoch of a run: the
// window between two capacity-affecting events (or the run boundaries),
// with the LP optimum of the topology actually in force and the measured
// performance against it. Static runs have exactly one epoch spanning the
// whole run.
type EpochReport struct {
	// Start and End bound the epoch in virtual time.
	Start, End time.Duration
	// Optimum is the LP solution for the epoch's effective capacities.
	Optimum Allocation
	// TotalMean is the measured mean total throughput inside the epoch.
	TotalMean float64
	// Gap is the optimality gap versus the epoch's own optimum.
	Gap float64
	// PathMeans are the measured per-path means inside the epoch.
	PathMeans []float64
	// Converged reports whether the total entered the epoch optimum's band
	// within the epoch, and ConvergedAt when (absolute run time) — the
	// re-convergence measure after a handover or failure.
	Converged   bool
	ConvergedAt time.Duration
}

// Result holds everything one run produces.
type Result struct {
	// Options echoes the effective options (defaults filled).
	Options Options
	// Paths holds the per-path throughput series, in path order.
	Paths []Series
	// Cross holds the competing single-path TCP flows' series, in
	// Options.CrossTCP order.
	Cross []Series
	// Total is the sum across paths — the paper's headline curve.
	Total Series
	// Optimum is the LP solution (the paper's max x1+x2+x3).
	Optimum Allocation
	// Problem is the LP in human-readable form (Fig. 1c).
	Problem string
	// MaxMin, PropFair and Greedy are the analytic reference allocations.
	MaxMin, PropFair, Greedy []float64
	// Epochs is the piecewise LP view: one entry per capacity epoch, each
	// measured against the optimum of the topology in force during it.
	// Static runs have a single epoch; dynamic runs (Network events) get
	// one per LinkDown/LinkUp/SetRate boundary. Summary.Gap is computed
	// against the time-weighted optimum across these epochs, and
	// Summary.Converged/ConvergedAt against the final epoch's band (the
	// topology actually in force at the end of the run).
	Epochs []EpochReport
	// Events echoes the network's dynamic events in firing order (empty
	// for static runs).
	Events []Event
	// Summary holds convergence/stability metrics.
	Summary stats.Summary
	// Subflows reports per-subflow transport counters, in subflow order.
	Subflows []SubflowReport
	// Drops counts dropped packets per link.
	Drops map[string]uint64
	// Utilisation is the busy fraction of each link that carried at least
	// 5% load — the paper's bottleneck-saturation picture.
	Utilisation map[string]float64
	// Packets is the number of data packets captured at the receiver.
	Packets uint64
	// DeliveredBytes is connection-level in-order goodput;
	// DuplicateBytes counts data-level duplicates (redundant scheduler).
	DeliveredBytes, DuplicateBytes uint64
	// TransferComplete reports whether a fixed-size transfer finished.
	TransferComplete bool
	// LoopEvents is the number of simulation events the run executed — a
	// cheap fingerprint of the whole execution that strengthens the
	// replay-determinism check (two runs agreeing on every series but not
	// on LoopEvents did not take the same path).
	LoopEvents uint64
	// Invariants lists the correctness invariants the run violated
	// (Options.ValidateInvariants); empty means every audited property
	// held. See Options.ValidateInvariants for the list.
	Invariants []string
	// Telemetry holds the run's engine counters (Options.Telemetry).
	// Observation-only and excluded from Hash: a run with telemetry
	// enabled hashes identically to one without.
	Telemetry *telemetry.Snapshot

	records []capture.Record
	flight  *telemetry.Recorder
}

// Hash returns a canonical SHA-256 fingerprint of everything the run
// measured: every series value bit-for-bit, the analytic baselines, the
// epoch reports, the summary, the per-subflow and per-link counters, and
// the simulation event count. Two runs of the same scenario with the same
// seed must produce identical hashes — the replay-determinism invariant
// cmd/simcheck asserts. Observation-only knobs (RetainPackets,
// ValidateInvariants and the Invariants list itself) are excluded, so a
// validated run hashes identically to an unvalidated one.
func (r *Result) Hash() string {
	h := sha256.New()
	var buf [8]byte
	wU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wF64 := func(v float64) { wU64(math.Float64bits(v)) }
	wStr := func(s string) {
		wU64(uint64(len(s)))
		io.WriteString(h, s)
	}
	wBool := func(b bool) {
		if b {
			wU64(1)
		} else {
			wU64(0)
		}
	}
	wSeries := func(s Series) {
		wStr(s.Name)
		wU64(uint64(s.Step))
		wU64(uint64(len(s.Mbps)))
		for _, v := range s.Mbps {
			wF64(v)
		}
	}
	wAlloc := func(a Allocation) {
		wF64(a.Total)
		wU64(uint64(len(a.PerPath)))
		for _, v := range a.PerPath {
			wF64(v)
		}
	}
	wVec := func(x []float64) {
		wU64(uint64(len(x)))
		for _, v := range x {
			wF64(v)
		}
	}

	o := r.Options
	wStr(o.CC)
	wStr(o.Scheduler)
	wU64(uint64(o.Duration))
	wU64(uint64(o.SampleInterval))
	wU64(uint64(o.Seed))
	wU64(uint64(len(o.SubflowPaths)))
	for _, p := range o.SubflowPaths {
		wU64(uint64(p))
	}
	wU64(uint64(o.TransferBytes))
	wF64(o.QueueScale)
	wBool(o.DisableSACK)
	wBool(o.Timestamps)
	wU64(uint64(o.DelAckCount))
	wF64(o.ConvergenceTol)
	wU64(uint64(o.ConvergenceHold))
	wU64(uint64(len(o.CrossTCP)))
	for _, p := range o.CrossTCP {
		wU64(uint64(p))
	}
	wStr(o.CrossCC)

	wU64(uint64(len(r.Paths)))
	for _, s := range r.Paths {
		wSeries(s)
	}
	wU64(uint64(len(r.Cross)))
	for _, s := range r.Cross {
		wSeries(s)
	}
	wSeries(r.Total)
	wAlloc(r.Optimum)
	wStr(r.Problem)
	wVec(r.MaxMin)
	wVec(r.PropFair)
	wVec(r.Greedy)

	wU64(uint64(len(r.Epochs)))
	for _, ep := range r.Epochs {
		wU64(uint64(ep.Start))
		wU64(uint64(ep.End))
		wAlloc(ep.Optimum)
		wF64(ep.TotalMean)
		wF64(ep.Gap)
		wVec(ep.PathMeans)
		wBool(ep.Converged)
		wU64(uint64(ep.ConvergedAt))
	}
	wU64(uint64(len(r.Events)))
	for _, e := range r.Events {
		wStr(e.String())
	}

	s := r.Summary
	wStr(s.Algorithm)
	wF64(s.TotalMean)
	wF64(s.Target)
	wF64(s.Gap)
	wBool(s.Converged)
	wU64(uint64(s.ConvergedAt))
	wF64(s.PostCoV)
	wVec(s.PathMeans)
	wBool(s.ReachedPareto)
	wU64(uint64(s.ParetoAt))

	wU64(uint64(len(r.Subflows)))
	for _, sf := range r.Subflows {
		wU64(uint64(sf.Path))
		wStr(sf.Label)
		wU64(sf.SentSegments)
		wU64(sf.SentBytes)
		wU64(sf.Retransmits)
		wU64(sf.RTOs)
		wU64(sf.FastRecoveries)
		wU64(uint64(sf.SRTT))
		wU64(uint64(sf.FinalCwndBytes))
	}

	keys := make([]string, 0, len(r.Drops))
	for k := range r.Drops {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	wU64(uint64(len(keys)))
	for _, k := range keys {
		wStr(k)
		wU64(r.Drops[k])
	}
	keys = keys[:0]
	for k := range r.Utilisation {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	wU64(uint64(len(keys)))
	for _, k := range keys {
		wStr(k)
		wF64(r.Utilisation[k])
	}

	wU64(r.Packets)
	wU64(r.DeliveredBytes)
	wU64(r.DuplicateBytes)
	wBool(r.TransferComplete)
	wU64(r.LoopEvents)

	return fmt.Sprintf("%x", h.Sum(nil))
}

// WriteCSV emits the per-path and total series as CSV.
func (r *Result) WriteCSV(w io.Writer) error {
	series := make([]*trace.Series, 0, len(r.Paths)+1)
	for _, p := range r.Paths {
		series = append(series, p.trace())
	}
	series = append(series, r.Total.trace())
	return trace.WriteCSV(w, series...)
}

// Chart renders the run as an ASCII plot with the LP optimum as a
// reference line — the terminal version of Fig. 2.
func (r *Result) Chart(w io.Writer, title string) error {
	series := make([]*trace.Series, 0, len(r.Paths)+1)
	for _, p := range r.Paths {
		series = append(series, p.trace())
	}
	series = append(series, r.Total.trace())
	opts := trace.ChartOptions{
		Title:  title,
		YLabel: "Mbps",
		HLines: []float64{r.Optimum.Total},
	}
	// Dynamic runs: mark every event and reference each distinct epoch
	// optimum (the static optimum is already drawn above).
	for _, e := range r.Events {
		opts.VLines = append(opts.VLines, e.At.Seconds())
	}
	seen := map[float64]bool{r.Optimum.Total: true}
	for _, ep := range r.Epochs {
		if !seen[ep.Optimum.Total] {
			seen[ep.Optimum.Total] = true
			opts.HLines = append(opts.HLines, ep.Optimum.Total)
		}
	}
	return trace.Chart(w, opts, series...)
}

// WriteFlightRecorder dumps the flight recorder's retained event tail as
// NDJSON, oldest event first (requires Options.Telemetry). On a failed or
// invariant-violating run the tail names the links and packets involved
// in the failure — see the README's Observability section for the line
// schema.
func (r *Result) WriteFlightRecorder(w io.Writer) error {
	if r.flight == nil {
		return fmt.Errorf("mptcpsim: no flight recorder; set Options.Telemetry")
	}
	return r.flight.WriteNDJSON(w)
}

// FlightEvents returns the number of engine events the flight recorder
// retained (0 without Options.Telemetry).
func (r *Result) FlightEvents() int {
	if r.flight == nil {
		return 0
	}
	return r.flight.Len()
}

// WritePCAP exports the retained capture as a pcap file (requires
// Options.RetainPackets).
func (r *Result) WritePCAP(w io.Writer) error {
	if r.records == nil {
		return fmt.Errorf("mptcpsim: no packets retained; set Options.RetainPackets")
	}
	return capture.WritePCAP(w, r.records)
}

// Report renders a human-readable run summary.
func (r *Result) Report(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "algorithm:  %s (scheduler %s, seed %d)\n",
		r.Options.CC, schedName(r.Options.Scheduler), r.Options.Seed)
	fmt.Fprintf(&sb, "optimum:    %.1f Mbps at %s\n", r.Optimum.Total, fmtAlloc(r.Optimum.PerPath))
	fmt.Fprintf(&sb, "greedy:     %.1f Mbps at %s\n", total(r.Greedy), fmtAlloc(r.Greedy))
	fmt.Fprintf(&sb, "max-min:    %.1f Mbps at %s\n", total(r.MaxMin), fmtAlloc(r.MaxMin))
	fmt.Fprintf(&sb, "prop-fair:  %.1f Mbps at %s\n", total(r.PropFair), fmtAlloc(r.PropFair))
	fmt.Fprintf(&sb, "measured:   %.1f Mbps at %s (gap %.1f%%)\n",
		r.Summary.TotalMean, fmtAlloc(r.Summary.PathMeans), r.Summary.Gap*100)
	if r.Summary.ReachedPareto {
		fmt.Fprintf(&sb, "pareto:     greedy level (%.0f Mbps) reached at %.2fs\n",
			total(r.Greedy), r.Summary.ParetoAt.Seconds())
	}
	if r.Summary.Converged {
		fmt.Fprintf(&sb, "converged:  yes, at %.2fs (CoV after: %.3f)\n",
			r.Summary.ConvergedAt.Seconds(), r.Summary.PostCoV)
	} else {
		fmt.Fprintf(&sb, "converged:  no (CoV last half: %.3f)\n", r.Summary.PostCoV)
	}
	for _, e := range r.Events {
		fmt.Fprintf(&sb, "event:      %s\n", e)
	}
	if len(r.Epochs) > 1 {
		for i, ep := range r.Epochs {
			conv := ""
			if ep.Converged {
				conv = fmt.Sprintf(", converged at %.2fs", ep.ConvergedAt.Seconds())
			}
			fmt.Fprintf(&sb, "epoch %d:    [%.2fs, %.2fs) optimum %.1f at %s, measured %.1f (gap %.1f%%)%s\n",
				i+1, ep.Start.Seconds(), ep.End.Seconds(), ep.Optimum.Total,
				fmtAlloc(ep.Optimum.PerPath), ep.TotalMean, ep.Gap*100, conv)
		}
	}
	for _, sf := range r.Subflows {
		fmt.Fprintf(&sb, "subflow %-8s sent=%-6d rtx=%-5d rto=%-3d fastrec=%-3d srtt=%s\n",
			sf.Label+":", sf.SentSegments, sf.Retransmits, sf.RTOs, sf.FastRecoveries,
			sf.SRTT.Round(100*time.Microsecond))
	}
	if len(r.Drops) > 0 {
		keys := make([]string, 0, len(r.Drops))
		for k := range r.Drops {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&sb, "drops:     ")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, r.Drops[k])
		}
		fmt.Fprintln(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func schedName(s string) string {
	if s == "" {
		return "minrtt"
	}
	return s
}

func fmtAlloc(x []float64) string {
	parts := make([]string, len(x))
	for i, v := range x {
		parts[i] = fmt.Sprintf("x%d=%.1f", i+1, v)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func total(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}
