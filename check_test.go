package mptcpsim

import (
	"bytes"
	"testing"
	"time"

	"mptcpsim/internal/check"
)

// runSpecForTest builds and runs one generated spec with the oracle on.
func runSpecForTest(t *testing.T, sp check.Spec) *Result {
	t.Helper()
	nw, err := LoadNetwork(bytes.NewReader(sp.Scenario))
	if err != nil {
		t.Fatalf("spec %s (seed %d): build: %v", sp.Name, sp.Seed, err)
	}
	r, err := Run(nw, Options{
		CC: sp.CC, Scheduler: sp.Scheduler, SubflowPaths: sp.Order,
		Seed: sp.RunSeed, Duration: sp.Duration, QueueScale: sp.QueueScale,
		ValidateInvariants: true, EventLimit: 50_000_000,
	})
	if err != nil {
		t.Fatalf("spec %s (seed %d): run: %v", sp.Name, sp.Seed, err)
	}
	return r
}

// The paper experiment itself must satisfy every invariant, statically and
// under a failure/restore timeline.
func TestPaperRunSatisfiesInvariants(t *testing.T) {
	r, err := RunPaper(Options{ValidateInvariants: true, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Invariants) != 0 {
		t.Fatalf("paper run violates invariants: %v", r.Invariants)
	}

	nw := PaperNetwork()
	for _, e := range []Event{
		{At: 600 * time.Millisecond, Type: EventSetRate, A: "v3", B: "v4", Mbps: 20},
		{At: 800 * time.Millisecond, Type: EventLinkDown, A: "s", B: "v1"},
		{At: 1400 * time.Millisecond, Type: EventLinkUp, A: "s", B: "v1"},
	} {
		if err := nw.AddEvent(e); err != nil {
			t.Fatal(err)
		}
	}
	r, err = Run(nw, Options{CC: "olia", ValidateInvariants: true, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Invariants) != 0 {
		t.Fatalf("dynamic paper run violates invariants: %v", r.Invariants)
	}
}

// The oracle must only observe: a validated run hashes identically to an
// unvalidated one.
func TestValidationDoesNotPerturbRun(t *testing.T) {
	opts := Options{CC: "olia", Duration: time.Second}
	plain, err := RunPaper(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.ValidateInvariants = true
	checked, err := RunPaper(opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Hash() != checked.Hash() {
		t.Fatal("enabling ValidateInvariants changed the run")
	}
}

// Result.Hash is the replay-determinism fingerprint: equal for identical
// runs, different as soon as anything observable differs.
func TestResultHashReplayDeterminism(t *testing.T) {
	a, err := RunPaper(Options{CC: "cubic", Duration: time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPaper(Options{CC: "cubic", Duration: time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("identical runs hash differently")
	}
	c, err := RunPaper(Options{CC: "cubic", Duration: time.Second, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Fatal("different seeds hash identically")
	}
	if a.LoopEvents == 0 {
		t.Fatal("LoopEvents not recorded")
	}
}

// Randomized scenarios from the generator must build, run and satisfy
// every invariant — the in-process slice of what cmd/simcheck runs at
// scale in CI.
func TestRandomScenariosSatisfyInvariants(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 8
	}
	for i := 0; i < n; i++ {
		sp := check.NewSpec(check.SpecSeed(11, i))
		r := runSpecForTest(t, sp)
		if len(r.Invariants) != 0 {
			t.Errorf("spec %d %s (seed %d): %v", i, sp.Name, sp.Seed, r.Invariants)
		}
	}
}

// Generated specs replay bit-identically: the hash of a rerun matches.
func TestRandomScenarioReplayDeterminism(t *testing.T) {
	sp := check.NewSpec(check.SpecSeed(5, 0))
	a := runSpecForTest(t, sp)
	b := runSpecForTest(t, sp)
	if a.Hash() != b.Hash() {
		t.Fatalf("spec %s (seed %d): replay diverged", sp.Name, sp.Seed)
	}
}

// Sweep.ValidateInvariants turns violations into per-run errors without
// flagging healthy cells.
func TestSweepValidateInvariants(t *testing.T) {
	grid := &Grid{
		CCs:        []string{"cubic", "olia"},
		DurationMs: 600,
		Events: []EventSet{
			{Name: "static"},
			{Name: "outage", Events: []ScenarioEvent{
				{AtMs: 200, Type: EventLinkDown, A: "s", B: "v1"},
				{AtMs: 400, Type: EventLinkUp, A: "s", B: "v1"},
			}},
		},
	}
	res, err := (&Sweep{Workers: 2, ValidateInvariants: true}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Errs(); n != 0 {
		for _, run := range res.Runs {
			if run.Err != "" {
				t.Errorf("run %d: %s", run.Index, run.Err)
			}
		}
		t.Fatalf("%d of %d self-checking sweep runs failed", n, len(res.Runs))
	}
}
