package mptcpsim

import (
	"bytes"
	"errors"
	"io"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"mptcpsim/internal/stats"
)

// TestAggSinkMatchesSweepGroups checks the online aggregation sink against
// the retained-sample aggregation: same cells in the same order, equal
// counts, and means/deviations/extrema matching to floating-point noise
// (Welford sums in completion order, so bit-identity is not promised —
// nor are medians, which need the full sample).
func TestAggSinkMatchesSweepGroups(t *testing.T) {
	grid := func() *Grid {
		g := sweepGrid()
		g.Perturbations = []Perturbation{{Name: "base"}, {Name: "lossy", Loss: 0.005}}
		return g
	}
	res, err := (&Sweep{Workers: 4}).Run(grid())
	if err != nil {
		t.Fatal(err)
	}

	agg := &AggSink{}
	if err := (&Sweep{Workers: 4}).Stream(grid(), StreamSpec{}, agg); err != nil {
		t.Fatal(err)
	}

	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
	if agg.Runs+agg.Errors != len(res.Runs) || agg.Errors != res.Errs() {
		t.Fatalf("agg counted %d runs / %d errors, sweep has %d / %d",
			agg.Runs, agg.Errors, len(res.Runs), res.Errs())
	}
	if !close(agg.Gap.Mean, res.Gap.Mean) || !close(agg.Gap.Std(), res.Gap.Std) {
		t.Fatalf("overall gap: online mean/std %v/%v vs aggregate %v/%v",
			agg.Gap.Mean, agg.Gap.Std(), res.Gap.Mean, res.Gap.Std)
	}

	groups := agg.Groups()
	if len(groups) != len(res.Groups) {
		t.Fatalf("agg has %d groups, sweep has %d", len(groups), len(res.Groups))
	}
	for i, g := range groups {
		w := res.Groups[i]
		if g.Scenario != w.Scenario || g.Perturbation != w.Perturbation ||
			g.Events != w.Events || g.CC != w.CC || g.Scheduler != w.Scheduler {
			t.Fatalf("group %d is cell %s/%s/%s/%s, sweep ordered %s/%s/%s/%s here",
				i, g.Perturbation, g.Events, g.CC, g.Scheduler,
				w.Perturbation, w.Events, w.CC, w.Scheduler)
		}
		if g.Runs != w.Runs || g.Errors != w.Errors || g.Converged != w.Converged {
			t.Fatalf("group %d counts %d/%d/%d, want %d/%d/%d",
				i, g.Runs, g.Errors, g.Converged, w.Runs, w.Errors, w.Converged)
		}
		for _, m := range []struct {
			name string
			on   stats.Online
			agg  stats.Agg
		}{
			{"gap", g.Gap, w.Gap},
			{"total_mbps", g.TotalMbps, w.TotalMbps},
			{"converged_at_s", g.ConvergedAtS, w.ConvergedAtS},
		} {
			if !close(m.on.Mean, m.agg.Mean) || !close(m.on.Std(), m.agg.Std) ||
				m.on.Min != m.agg.Min || m.on.Max != m.agg.Max {
				t.Fatalf("group %d %s: online {mean %v std %v min %v max %v} vs aggregate {%v %v %v %v}",
					i, m.name, m.on.Mean, m.on.Std(), m.on.Min, m.on.Max,
					m.agg.Mean, m.agg.Std, m.agg.Min, m.agg.Max)
			}
		}
	}
}

// checkingSink asserts the RunSink contract from inside: serialised
// Accepts, done increasing by exactly one, exactly-once index coverage.
type checkingSink struct {
	t        *testing.T
	inAccept int32
	prevDone int
	seen     map[int]bool
	closed   int
}

func (c *checkingSink) Accept(done, total int, s RunSummary, full *Result) error {
	if !atomic.CompareAndSwapInt32(&c.inAccept, 0, 1) {
		c.t.Error("Accept ran concurrently with another Accept")
	}
	if done != c.prevDone+1 {
		c.t.Errorf("done jumped from %d to %d", c.prevDone, done)
	}
	c.prevDone = done
	if c.seen == nil {
		c.seen = make(map[int]bool)
	}
	if c.seen[s.Index] {
		c.t.Errorf("run %d delivered twice", s.Index)
	}
	c.seen[s.Index] = true
	atomic.StoreInt32(&c.inAccept, 0)
	return nil
}

func (c *checkingSink) Flush() error { return nil }
func (c *checkingSink) Close() error { c.closed++; return nil }

// TestStreamSinkContract drives a caller sink through Stream next to the
// deprecated hook adapters and checks both see the full serialised,
// exactly-once, done-monotone delivery — the contract the adapters must
// preserve now that they ride the sink path.
func TestStreamSinkContract(t *testing.T) {
	check := &checkingSink{t: t}
	hookDone := 0
	s := &Sweep{
		Workers: 8,
		OnResult: func(done, total int, r RunSummary) {
			if done != hookDone+1 {
				t.Errorf("hook done jumped from %d to %d", hookDone, done)
			}
			hookDone = done
		},
	}
	if err := s.Stream(sweepGrid(), StreamSpec{}, check); err != nil {
		t.Fatal(err)
	}
	if check.prevDone != 4 || len(check.seen) != 4 || hookDone != 4 {
		t.Fatalf("sink saw %d/%d, hook saw %d, want 4 everywhere",
			check.prevDone, len(check.seen), hookDone)
	}
	if check.closed != 1 {
		t.Fatalf("Stream closed the sink %d times, want exactly once", check.closed)
	}
}

// TestAggSinkMerge folds two per-shard aggregates into one and checks the
// fold equals a single sink that saw every run — counts and group order
// exactly, moments to floating-point noise — which is what lets the fleet
// coordinator serve live fleet-wide aggregates from per-shard sinks.
func TestAggSinkMerge(t *testing.T) {
	grid := func() *Grid {
		g := sweepGrid()
		g.Perturbations = []Perturbation{{Name: "base"}, {Name: "lossy", Loss: 0.005}}
		return g
	}
	whole := &AggSink{}
	if err := (&Sweep{Workers: 2}).Stream(grid(), StreamSpec{}, whole); err != nil {
		t.Fatal(err)
	}

	folded := &AggSink{}
	for k := 0; k < 2; k++ {
		part := &AggSink{}
		spec := StreamSpec{Shard: Shard{K: k, N: 2}}
		if err := (&Sweep{Workers: 2}).Stream(grid(), spec, part); err != nil {
			t.Fatal(err)
		}
		folded.Merge(part)
	}

	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
	if folded.Runs != whole.Runs || folded.Errors != whole.Errors {
		t.Fatalf("folded %d runs / %d errors, whole sink saw %d / %d",
			folded.Runs, folded.Errors, whole.Runs, whole.Errors)
	}
	if !close(folded.Gap.Mean, whole.Gap.Mean) || !close(folded.Gap.Std(), whole.Gap.Std()) {
		t.Fatalf("folded gap mean/std %v/%v vs whole %v/%v",
			folded.Gap.Mean, folded.Gap.Std(), whole.Gap.Mean, whole.Gap.Std())
	}
	fg, wg := folded.Groups(), whole.Groups()
	if len(fg) != len(wg) {
		t.Fatalf("folded %d groups, whole sink has %d", len(fg), len(wg))
	}
	for i := range fg {
		f, w := fg[i], wg[i]
		if f.Scenario != w.Scenario || f.Perturbation != w.Perturbation ||
			f.Events != w.Events || f.CC != w.CC || f.Scheduler != w.Scheduler {
			t.Fatalf("group %d: folded cell %s/%s/%s/%s out of order vs whole %s/%s/%s/%s",
				i, f.Perturbation, f.Events, f.CC, f.Scheduler,
				w.Perturbation, w.Events, w.CC, w.Scheduler)
		}
		if f.Runs != w.Runs || f.Errors != w.Errors || f.Converged != w.Converged {
			t.Fatalf("group %d counts %d/%d/%d, want %d/%d/%d",
				i, f.Runs, f.Errors, f.Converged, w.Runs, w.Errors, w.Converged)
		}
		if !close(f.Gap.Mean, w.Gap.Mean) || !close(f.Gap.Std(), w.Gap.Std()) ||
			f.Gap.Min != w.Gap.Min || f.Gap.Max != w.Gap.Max {
			t.Fatalf("group %d gap: folded {%v %v %v %v} vs whole {%v %v %v %v}",
				i, f.Gap.Mean, f.Gap.Std(), f.Gap.Min, f.Gap.Max,
				w.Gap.Mean, w.Gap.Std(), w.Gap.Min, w.Gap.Max)
		}
	}
}

// TestSinkCloseContract pins the closed-state edge of the sink contract
// for every sink with externally visible finalisation: after Close,
// Accept refuses with ErrSinkClosed instead of silently mutating state
// past the end, and a second Close is detected rather than repeated.
func TestSinkCloseContract(t *testing.T) {
	sinks := map[string]func(t *testing.T) RunSink{
		"LogSink": func(t *testing.T) RunSink {
			s, err := NewLogSink(io.Discard, RunLogHeader{N: 1, Total: 4}, LogOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"AggSink":   func(t *testing.T) RunSink { return &AggSink{} },
		"MultiSink": func(t *testing.T) RunSink { return MultiSink(&AggSink{}) },
	}
	for name, mk := range sinks {
		t.Run(name, func(t *testing.T) {
			sink := mk(t)
			if err := sink.Accept(1, 4, RunSummary{Index: 0}, nil); err != nil {
				t.Fatalf("Accept on an open sink: %v", err)
			}
			if err := sink.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			if err := sink.Accept(2, 4, RunSummary{Index: 1}, nil); !errors.Is(err, ErrSinkClosed) {
				t.Fatalf("Accept after Close: err = %v, want ErrSinkClosed", err)
			}
			if err := sink.Close(); !errors.Is(err, ErrSinkClosed) {
				t.Fatalf("double Close: err = %v, want ErrSinkClosed", err)
			}
		})
	}

	// The LogSink specifics: a refused post-Close Accept must leave the
	// bytes on disk untouched (nothing may land past the commit mark), and
	// a closed MultiSink must not forward the refused call to its children.
	t.Run("LogSink stops writing", func(t *testing.T) {
		var buf bytes.Buffer
		s, err := NewLogSink(&buf, RunLogHeader{N: 1, Total: 4}, LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Accept(1, 4, RunSummary{Index: 0}, nil); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		committed := buf.Len()
		s.Accept(2, 4, RunSummary{Index: 1}, nil)
		if buf.Len() != committed {
			t.Fatalf("post-Close Accept grew the log from %d to %d bytes", committed, buf.Len())
		}
		if err := s.Flush(); !errors.Is(err, ErrSinkClosed) {
			t.Fatalf("Flush after Close: err = %v, want ErrSinkClosed", err)
		}
	})
	t.Run("MultiSink stops forwarding", func(t *testing.T) {
		inner := &failingSink{failAt: 100}
		m := MultiSink(inner)
		if err := m.Accept(1, 4, RunSummary{Index: 0}, nil); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		m.Accept(2, 4, RunSummary{Index: 1}, nil)
		m.Close()
		if inner.accepts != 1 {
			t.Fatalf("closed fan-out forwarded Accept; inner saw %d, want 1", inner.accepts)
		}
	})
}

// heapSampler measures peak live heap across a sweep by forcing a collection
// at every delivery — expensive, so test-only.
type heapSampler struct {
	peak uint64
}

func (h *heapSampler) Accept(done, total int, s RunSummary, full *Result) error {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	return nil
}

func (h *heapSampler) Flush() error { return nil }
func (h *heapSampler) Close() error { return nil }

// TestStreamFlatMemory is the flat-memory claim under measurement: a
// streamed sweep over a 10x larger grid may not grow peak live heap more
// than 2x. (An in-memory sweep retains every summary, so its peak grows
// linearly; the streamed path retains nothing per run.)
func TestStreamFlatMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement forces a GC per run")
	}
	peak := func(seeds int) uint64 {
		g := &Grid{
			CCs:        []string{"cubic"},
			Orders:     [][]int{{2, 1, 3}},
			DurationMs: 100,
		}
		for s := 1; s <= seeds; s++ {
			g.Seeds = append(g.Seeds, int64(s))
		}
		sw := &Sweep{Workers: 2}
		digest, total, err := sw.Describe(g)
		if err != nil {
			t.Fatal(err)
		}
		logSink, err := NewLogSink(io.Discard, RunLogHeader{GridDigest: digest, N: 1, Total: total}, LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sampler := &heapSampler{}
		if err := sw.Stream(g, StreamSpec{}, MultiSink(logSink, sampler)); err != nil {
			t.Fatal(err)
		}
		return sampler.peak
	}
	small := peak(4)
	big := peak(40)
	t.Logf("peak live heap: %d bytes over 4 runs, %d over 40", small, big)
	if big > 2*small {
		t.Fatalf("10x grid grew peak live heap %dx (%d -> %d bytes); streaming is supposed to be flat",
			(big+small-1)/small, small, big)
	}
}
