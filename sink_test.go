package mptcpsim

import (
	"io"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"mptcpsim/internal/stats"
)

// TestAggSinkMatchesSweepGroups checks the online aggregation sink against
// the retained-sample aggregation: same cells in the same order, equal
// counts, and means/deviations/extrema matching to floating-point noise
// (Welford sums in completion order, so bit-identity is not promised —
// nor are medians, which need the full sample).
func TestAggSinkMatchesSweepGroups(t *testing.T) {
	grid := func() *Grid {
		g := sweepGrid()
		g.Perturbations = []Perturbation{{Name: "base"}, {Name: "lossy", Loss: 0.005}}
		return g
	}
	res, err := (&Sweep{Workers: 4}).Run(grid())
	if err != nil {
		t.Fatal(err)
	}

	agg := &AggSink{}
	if err := (&Sweep{Workers: 4}).Stream(grid(), StreamSpec{}, agg); err != nil {
		t.Fatal(err)
	}

	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-9*(1+math.Abs(b)) }
	if agg.Runs+agg.Errors != len(res.Runs) || agg.Errors != res.Errs() {
		t.Fatalf("agg counted %d runs / %d errors, sweep has %d / %d",
			agg.Runs, agg.Errors, len(res.Runs), res.Errs())
	}
	if !close(agg.Gap.Mean, res.Gap.Mean) || !close(agg.Gap.Std(), res.Gap.Std) {
		t.Fatalf("overall gap: online mean/std %v/%v vs aggregate %v/%v",
			agg.Gap.Mean, agg.Gap.Std(), res.Gap.Mean, res.Gap.Std)
	}

	groups := agg.Groups()
	if len(groups) != len(res.Groups) {
		t.Fatalf("agg has %d groups, sweep has %d", len(groups), len(res.Groups))
	}
	for i, g := range groups {
		w := res.Groups[i]
		if g.Scenario != w.Scenario || g.Perturbation != w.Perturbation ||
			g.Events != w.Events || g.CC != w.CC || g.Scheduler != w.Scheduler {
			t.Fatalf("group %d is cell %s/%s/%s/%s, sweep ordered %s/%s/%s/%s here",
				i, g.Perturbation, g.Events, g.CC, g.Scheduler,
				w.Perturbation, w.Events, w.CC, w.Scheduler)
		}
		if g.Runs != w.Runs || g.Errors != w.Errors || g.Converged != w.Converged {
			t.Fatalf("group %d counts %d/%d/%d, want %d/%d/%d",
				i, g.Runs, g.Errors, g.Converged, w.Runs, w.Errors, w.Converged)
		}
		for _, m := range []struct {
			name string
			on   stats.Online
			agg  stats.Agg
		}{
			{"gap", g.Gap, w.Gap},
			{"total_mbps", g.TotalMbps, w.TotalMbps},
			{"converged_at_s", g.ConvergedAtS, w.ConvergedAtS},
		} {
			if !close(m.on.Mean, m.agg.Mean) || !close(m.on.Std(), m.agg.Std) ||
				m.on.Min != m.agg.Min || m.on.Max != m.agg.Max {
				t.Fatalf("group %d %s: online {mean %v std %v min %v max %v} vs aggregate {%v %v %v %v}",
					i, m.name, m.on.Mean, m.on.Std(), m.on.Min, m.on.Max,
					m.agg.Mean, m.agg.Std, m.agg.Min, m.agg.Max)
			}
		}
	}
}

// checkingSink asserts the RunSink contract from inside: serialised
// Accepts, done increasing by exactly one, exactly-once index coverage.
type checkingSink struct {
	t        *testing.T
	inAccept int32
	prevDone int
	seen     map[int]bool
	closed   int
}

func (c *checkingSink) Accept(done, total int, s RunSummary, full *Result) error {
	if !atomic.CompareAndSwapInt32(&c.inAccept, 0, 1) {
		c.t.Error("Accept ran concurrently with another Accept")
	}
	if done != c.prevDone+1 {
		c.t.Errorf("done jumped from %d to %d", c.prevDone, done)
	}
	c.prevDone = done
	if c.seen == nil {
		c.seen = make(map[int]bool)
	}
	if c.seen[s.Index] {
		c.t.Errorf("run %d delivered twice", s.Index)
	}
	c.seen[s.Index] = true
	atomic.StoreInt32(&c.inAccept, 0)
	return nil
}

func (c *checkingSink) Flush() error { return nil }
func (c *checkingSink) Close() error { c.closed++; return nil }

// TestStreamSinkContract drives a caller sink through Stream next to the
// deprecated hook adapters and checks both see the full serialised,
// exactly-once, done-monotone delivery — the contract the adapters must
// preserve now that they ride the sink path.
func TestStreamSinkContract(t *testing.T) {
	check := &checkingSink{t: t}
	hookDone := 0
	s := &Sweep{
		Workers: 8,
		OnResult: func(done, total int, r RunSummary) {
			if done != hookDone+1 {
				t.Errorf("hook done jumped from %d to %d", hookDone, done)
			}
			hookDone = done
		},
	}
	if err := s.Stream(sweepGrid(), StreamSpec{}, check); err != nil {
		t.Fatal(err)
	}
	if check.prevDone != 4 || len(check.seen) != 4 || hookDone != 4 {
		t.Fatalf("sink saw %d/%d, hook saw %d, want 4 everywhere",
			check.prevDone, len(check.seen), hookDone)
	}
	if check.closed != 1 {
		t.Fatalf("Stream closed the sink %d times, want exactly once", check.closed)
	}
}

// heapSampler measures peak live heap across a sweep by forcing a collection
// at every delivery — expensive, so test-only.
type heapSampler struct {
	peak uint64
}

func (h *heapSampler) Accept(done, total int, s RunSummary, full *Result) error {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	return nil
}

func (h *heapSampler) Flush() error { return nil }
func (h *heapSampler) Close() error { return nil }

// TestStreamFlatMemory is the flat-memory claim under measurement: a
// streamed sweep over a 10x larger grid may not grow peak live heap more
// than 2x. (An in-memory sweep retains every summary, so its peak grows
// linearly; the streamed path retains nothing per run.)
func TestStreamFlatMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("heap measurement forces a GC per run")
	}
	peak := func(seeds int) uint64 {
		g := &Grid{
			CCs:        []string{"cubic"},
			Orders:     [][]int{{2, 1, 3}},
			DurationMs: 100,
		}
		for s := 1; s <= seeds; s++ {
			g.Seeds = append(g.Seeds, int64(s))
		}
		sw := &Sweep{Workers: 2}
		digest, total, err := sw.Describe(g)
		if err != nil {
			t.Fatal(err)
		}
		logSink, err := NewLogSink(io.Discard, RunLogHeader{GridDigest: digest, N: 1, Total: total}, LogOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sampler := &heapSampler{}
		if err := sw.Stream(g, StreamSpec{}, MultiSink(logSink, sampler)); err != nil {
			t.Fatal(err)
		}
		return sampler.peak
	}
	small := peak(4)
	big := peak(40)
	t.Logf("peak live heap: %d bytes over 4 runs, %d over 40", small, big)
	if big > 2*small {
		t.Fatalf("10x grid grew peak live heap %dx (%d -> %d bytes); streaming is supposed to be flat",
			(big+small-1)/small, small, big)
	}
}
