package mptcpsim

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPaperScenarioRoundTrip(t *testing.T) {
	// Serialise the paper scenario, parse it back, run it: the LP must be
	// identical to the built-in PaperNetwork.
	data, err := json.Marshal(PaperScenario())
	if err != nil {
		t.Fatal(err)
	}
	nw, err := LoadNetwork(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPaths() != 3 {
		t.Fatalf("paths = %d", nw.NumPaths())
	}
	res, err := Run(nw, Options{Duration: 200 * time.Millisecond, SubflowPaths: []int{2, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Optimum.Total-90) > 1e-6 {
		t.Fatalf("scenario LP total = %v, want 90", res.Optimum.Total)
	}
	want := []float64{30, 10, 50}
	for i, v := range want {
		if math.Abs(res.Optimum.PerPath[i]-v) > 1e-6 {
			t.Fatalf("scenario LP = %v, want %v", res.Optimum.PerPath, want)
		}
	}
}

func TestLoadNetworkFromJSON(t *testing.T) {
	src := `{
		"links": [
			{"a": "p", "b": "w", "mbps": 30, "delay_ms": 3, "loss": 0.01},
			{"a": "w", "b": "srv", "mbps": 100, "delay_ms": 5},
			{"a": "p", "b": "l", "mbps": 20, "delay_ms": 15, "queue_bytes": 32768},
			{"a": "l", "b": "srv", "mbps": 100, "delay_ms": 10}
		],
		"endpoints": {"src": "p", "dst": "srv"},
		"paths": [
			{"nodes": ["p", "w", "srv"], "name": "wifi"},
			{"nodes": ["p", "l", "srv"]}
		]
	}`
	nw, err := LoadNetwork(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPaths() != 2 {
		t.Fatalf("paths = %d", nw.NumPaths())
	}
	res, err := Run(nw, Options{CC: "lia", Duration: 2 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths[0].Name != "wifi" || res.Paths[1].Name != "Path 2" {
		t.Fatalf("path names = %q, %q", res.Paths[0].Name, res.Paths[1].Name)
	}
	if math.Abs(res.Optimum.Total-50) > 1e-6 {
		t.Fatalf("LP total = %v, want 50", res.Optimum.Total)
	}
	if res.Summary.TotalMean <= 0 {
		t.Fatal("no throughput from scenario network")
	}
}

func TestScenarioReEmitFixpoint(t *testing.T) {
	// parse -> build -> re-emit must reproduce the paper scenario exactly:
	// same links in definition order, same endpoints, same named paths.
	orig := PaperScenario()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := LoadNetwork(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	emitted, err := nw.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(emitted)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-emitted scenario differs:\n in: %s\nout: %s", data, data2)
	}

	// The built-in PaperNetwork exports to the same description.
	fromBuiltin, err := PaperNetwork().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	data3, err := json.Marshal(fromBuiltin)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data3) {
		t.Fatalf("PaperNetwork export differs from PaperScenario:\n in: %s\nout: %s", data, data3)
	}
}

func TestScenarioReEmitPreservesOverrides(t *testing.T) {
	src := `{
		"links": [
			{"a": "p", "b": "w", "mbps": 30, "delay_ms": 3, "loss": 0.01},
			{"a": "w", "b": "srv", "mbps": 100, "delay_ms": 5},
			{"a": "p", "b": "l", "mbps": 20, "delay_ms": 15, "queue_bytes": 32768},
			{"a": "l", "b": "srv", "mbps": 100, "delay_ms": 10}
		],
		"endpoints": {"src": "p", "dst": "srv"},
		"paths": [
			{"nodes": ["p", "w", "srv"], "name": "wifi"},
			{"nodes": ["p", "l", "srv"]}
		]
	}`
	nw, err := LoadNetwork(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := nw.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sf.Links[0].Loss != 0.01 {
		t.Fatalf("loss override lost: %+v", sf.Links[0])
	}
	if sf.Links[2].QueueBytes != 32768 {
		t.Fatalf("queue override lost: %+v", sf.Links[2])
	}
	// The explicit name survives; the synthesized default does not get
	// written back (keeping re-emit a fixpoint for unnamed paths).
	if sf.Paths[0].Name != "wifi" || sf.Paths[1].Name != "" {
		t.Fatalf("path names wrong: %+v", sf.Paths)
	}
	// Emit -> build -> re-emit is a fixpoint from here on.
	nw2, err := sf.Build()
	if err != nil {
		t.Fatal(err)
	}
	sf2, err := nw2.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(sf)
	b, _ := json.Marshal(sf2)
	if string(a) != string(b) {
		t.Fatalf("not a fixpoint:\n in: %s\nout: %s", a, b)
	}
}

func TestScenarioFixpointNonRepresentableMbps(t *testing.T) {
	// Capacities and delays that are not exactly representable in bit/s
	// and ns must not drift across emit -> build cycles (the conversions
	// round, not truncate).
	src := `{
		"links": [{"a": "a", "b": "b", "mbps": 130.14285714285714, "delay_ms": 130.14285714285714}],
		"endpoints": {"src": "a", "dst": "b"},
		"paths": [{"nodes": ["a", "b"]}]
	}`
	nw, err := LoadNetwork(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := nw.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := sf.Build()
	if err != nil {
		t.Fatal(err)
	}
	sf2, err := nw2.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sf.Links[0].Mbps != sf2.Links[0].Mbps {
		t.Fatalf("capacity drifts across round trips: %v -> %v", sf.Links[0].Mbps, sf2.Links[0].Mbps)
	}
	if sf.Links[0].DelayMs != sf2.Links[0].DelayMs {
		t.Fatalf("delay drifts across round trips: %v -> %v", sf.Links[0].DelayMs, sf2.Links[0].DelayMs)
	}
}

func TestScenarioRejectsParallelLinks(t *testing.T) {
	// Links are addressed by node-name pair, so parallel links would make
	// loss/queue overrides and perturbations land on the wrong link.
	src := `{
		"links": [
			{"a": "a", "b": "b", "mbps": 10, "delay_ms": 1},
			{"a": "b", "b": "a", "mbps": 20, "delay_ms": 2, "loss": 0.01}
		],
		"endpoints": {"src": "a", "dst": "b"},
		"paths": [{"nodes": ["a", "b"]}]
	}`
	if _, err := LoadNetwork(strings.NewReader(src)); err == nil {
		t.Fatal("accepted parallel links (reversed spelling included)")
	}

	// The exporter refuses them too: a programmatic multigraph cannot be
	// described by the format.
	nw := NewNetwork()
	nw.AddLink("a", "b", 10, time.Millisecond)
	nw.AddLink("a", "b", 20, time.Millisecond)
	if err := nw.Endpoints("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddPath("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Scenario(); err == nil {
		t.Fatal("exported a parallel-link network")
	}
}

func TestScenarioExportRequiresEndpoints(t *testing.T) {
	nw := NewNetwork()
	nw.AddLink("a", "b", 10, time.Millisecond)
	if _, err := nw.Scenario(); err == nil {
		t.Fatal("exported a network without endpoints")
	}
}

func TestLoadNetworkRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{]`,
		"unknown field": `{"links": [], "zzz": 1}`,
		"no links":      `{"links": [], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"zero rate":     `{"links": [{"a":"a","b":"b","mbps":0,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"neg delay":     `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":-1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"no endpoints":  `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "paths":[{"nodes":["a","b"]}]}`,
		"no paths":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}}`,
		"bad path":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","zzz"]}]}`,
		"bad loss":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1,"loss":2}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"neg loss":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1,"loss":-0.1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"missing names": `{"links": [{"mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
	}
	for name, src := range cases {
		if _, err := LoadNetwork(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
