package mptcpsim

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPaperScenarioRoundTrip(t *testing.T) {
	// Serialise the paper scenario, parse it back, run it: the LP must be
	// identical to the built-in PaperNetwork.
	data, err := json.Marshal(PaperScenario())
	if err != nil {
		t.Fatal(err)
	}
	nw, err := LoadNetwork(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPaths() != 3 {
		t.Fatalf("paths = %d", nw.NumPaths())
	}
	res, err := Run(nw, Options{Duration: 200 * time.Millisecond, SubflowPaths: []int{2, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Optimum.Total-90) > 1e-6 {
		t.Fatalf("scenario LP total = %v, want 90", res.Optimum.Total)
	}
	want := []float64{30, 10, 50}
	for i, v := range want {
		if math.Abs(res.Optimum.PerPath[i]-v) > 1e-6 {
			t.Fatalf("scenario LP = %v, want %v", res.Optimum.PerPath, want)
		}
	}
}

func TestLoadNetworkFromJSON(t *testing.T) {
	src := `{
		"links": [
			{"a": "p", "b": "w", "mbps": 30, "delay_ms": 3, "loss": 0.01},
			{"a": "w", "b": "srv", "mbps": 100, "delay_ms": 5},
			{"a": "p", "b": "l", "mbps": 20, "delay_ms": 15, "queue_bytes": 32768},
			{"a": "l", "b": "srv", "mbps": 100, "delay_ms": 10}
		],
		"endpoints": {"src": "p", "dst": "srv"},
		"paths": [
			{"nodes": ["p", "w", "srv"], "name": "wifi"},
			{"nodes": ["p", "l", "srv"]}
		]
	}`
	nw, err := LoadNetwork(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPaths() != 2 {
		t.Fatalf("paths = %d", nw.NumPaths())
	}
	res, err := Run(nw, Options{CC: "lia", Duration: 2 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths[0].Name != "wifi" || res.Paths[1].Name != "Path 2" {
		t.Fatalf("path names = %q, %q", res.Paths[0].Name, res.Paths[1].Name)
	}
	if math.Abs(res.Optimum.Total-50) > 1e-6 {
		t.Fatalf("LP total = %v, want 50", res.Optimum.Total)
	}
	if res.Summary.TotalMean <= 0 {
		t.Fatal("no throughput from scenario network")
	}
}

func TestLoadNetworkRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{]`,
		"unknown field": `{"links": [], "zzz": 1}`,
		"no links":      `{"links": [], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"zero rate":     `{"links": [{"a":"a","b":"b","mbps":0,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"neg delay":     `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":-1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"no endpoints":  `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "paths":[{"nodes":["a","b"]}]}`,
		"no paths":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}}`,
		"bad path":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","zzz"]}]}`,
		"bad loss":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1,"loss":2}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"missing names": `{"links": [{"mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
	}
	for name, src := range cases {
		if _, err := LoadNetwork(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
