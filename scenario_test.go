package mptcpsim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPaperScenarioRoundTrip(t *testing.T) {
	// Serialise the paper scenario, parse it back, run it: the LP must be
	// identical to the built-in PaperNetwork.
	data, err := json.Marshal(PaperScenario())
	if err != nil {
		t.Fatal(err)
	}
	nw, err := LoadNetwork(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPaths() != 3 {
		t.Fatalf("paths = %d", nw.NumPaths())
	}
	res, err := Run(nw, Options{Duration: 200 * time.Millisecond, SubflowPaths: []int{2, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Optimum.Total-90) > 1e-6 {
		t.Fatalf("scenario LP total = %v, want 90", res.Optimum.Total)
	}
	want := []float64{30, 10, 50}
	for i, v := range want {
		if math.Abs(res.Optimum.PerPath[i]-v) > 1e-6 {
			t.Fatalf("scenario LP = %v, want %v", res.Optimum.PerPath, want)
		}
	}
}

func TestLoadNetworkFromJSON(t *testing.T) {
	src := `{
		"links": [
			{"a": "p", "b": "w", "mbps": 30, "delay_ms": 3, "loss": 0.01},
			{"a": "w", "b": "srv", "mbps": 100, "delay_ms": 5},
			{"a": "p", "b": "l", "mbps": 20, "delay_ms": 15, "queue_bytes": 32768},
			{"a": "l", "b": "srv", "mbps": 100, "delay_ms": 10}
		],
		"endpoints": {"src": "p", "dst": "srv"},
		"paths": [
			{"nodes": ["p", "w", "srv"], "name": "wifi"},
			{"nodes": ["p", "l", "srv"]}
		]
	}`
	nw, err := LoadNetwork(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumPaths() != 2 {
		t.Fatalf("paths = %d", nw.NumPaths())
	}
	res, err := Run(nw, Options{CC: "lia", Duration: 2 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths[0].Name != "wifi" || res.Paths[1].Name != "Path 2" {
		t.Fatalf("path names = %q, %q", res.Paths[0].Name, res.Paths[1].Name)
	}
	if math.Abs(res.Optimum.Total-50) > 1e-6 {
		t.Fatalf("LP total = %v, want 50", res.Optimum.Total)
	}
	if res.Summary.TotalMean <= 0 {
		t.Fatal("no throughput from scenario network")
	}
}

func TestScenarioReEmitFixpoint(t *testing.T) {
	// parse -> build -> re-emit must reproduce the paper scenario exactly:
	// same links in definition order, same endpoints, same named paths.
	orig := PaperScenario()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := LoadNetwork(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	emitted, err := nw.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.Marshal(emitted)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-emitted scenario differs:\n in: %s\nout: %s", data, data2)
	}

	// The built-in PaperNetwork exports to the same description.
	fromBuiltin, err := PaperNetwork().Scenario()
	if err != nil {
		t.Fatal(err)
	}
	data3, err := json.Marshal(fromBuiltin)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data3) {
		t.Fatalf("PaperNetwork export differs from PaperScenario:\n in: %s\nout: %s", data, data3)
	}
}

func TestScenarioReEmitPreservesOverrides(t *testing.T) {
	src := `{
		"links": [
			{"a": "p", "b": "w", "mbps": 30, "delay_ms": 3, "loss": 0.01},
			{"a": "w", "b": "srv", "mbps": 100, "delay_ms": 5},
			{"a": "p", "b": "l", "mbps": 20, "delay_ms": 15, "queue_bytes": 32768},
			{"a": "l", "b": "srv", "mbps": 100, "delay_ms": 10}
		],
		"endpoints": {"src": "p", "dst": "srv"},
		"paths": [
			{"nodes": ["p", "w", "srv"], "name": "wifi"},
			{"nodes": ["p", "l", "srv"]}
		]
	}`
	nw, err := LoadNetwork(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := nw.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sf.Links[0].Loss != 0.01 {
		t.Fatalf("loss override lost: %+v", sf.Links[0])
	}
	if sf.Links[2].QueueBytes != 32768 {
		t.Fatalf("queue override lost: %+v", sf.Links[2])
	}
	// The explicit name survives; the synthesized default does not get
	// written back (keeping re-emit a fixpoint for unnamed paths).
	if sf.Paths[0].Name != "wifi" || sf.Paths[1].Name != "" {
		t.Fatalf("path names wrong: %+v", sf.Paths)
	}
	// Emit -> build -> re-emit is a fixpoint from here on.
	nw2, err := sf.Build()
	if err != nil {
		t.Fatal(err)
	}
	sf2, err := nw2.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(sf)
	b, _ := json.Marshal(sf2)
	if string(a) != string(b) {
		t.Fatalf("not a fixpoint:\n in: %s\nout: %s", a, b)
	}
}

func TestScenarioFixpointNonRepresentableMbps(t *testing.T) {
	// Capacities and delays that are not exactly representable in bit/s
	// and ns must not drift across emit -> build cycles (the conversions
	// round, not truncate).
	src := `{
		"links": [{"a": "a", "b": "b", "mbps": 130.14285714285714, "delay_ms": 130.14285714285714}],
		"endpoints": {"src": "a", "dst": "b"},
		"paths": [{"nodes": ["a", "b"]}]
	}`
	nw, err := LoadNetwork(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := nw.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	nw2, err := sf.Build()
	if err != nil {
		t.Fatal(err)
	}
	sf2, err := nw2.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if sf.Links[0].Mbps != sf2.Links[0].Mbps {
		t.Fatalf("capacity drifts across round trips: %v -> %v", sf.Links[0].Mbps, sf2.Links[0].Mbps)
	}
	if sf.Links[0].DelayMs != sf2.Links[0].DelayMs {
		t.Fatalf("delay drifts across round trips: %v -> %v", sf.Links[0].DelayMs, sf2.Links[0].DelayMs)
	}
}

func TestScenarioRejectsParallelLinks(t *testing.T) {
	// Links are addressed by node-name pair, so parallel links would make
	// loss/queue overrides and perturbations land on the wrong link.
	src := `{
		"links": [
			{"a": "a", "b": "b", "mbps": 10, "delay_ms": 1},
			{"a": "b", "b": "a", "mbps": 20, "delay_ms": 2, "loss": 0.01}
		],
		"endpoints": {"src": "a", "dst": "b"},
		"paths": [{"nodes": ["a", "b"]}]
	}`
	if _, err := LoadNetwork(strings.NewReader(src)); err == nil {
		t.Fatal("accepted parallel links (reversed spelling included)")
	}

	// The exporter refuses them too: a programmatic multigraph cannot be
	// described by the format.
	nw := NewNetwork()
	nw.AddLink("a", "b", 10, time.Millisecond)
	nw.AddLink("a", "b", 20, time.Millisecond)
	if err := nw.Endpoints("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddPath("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Scenario(); err == nil {
		t.Fatal("exported a parallel-link network")
	}
}

func TestScenarioExportRequiresEndpoints(t *testing.T) {
	nw := NewNetwork()
	nw.AddLink("a", "b", 10, time.Millisecond)
	if _, err := nw.Scenario(); err == nil {
		t.Fatal("exported a network without endpoints")
	}
}

func TestLoadNetworkRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       `{]`,
		"unknown field": `{"links": [], "zzz": 1}`,
		"no links":      `{"links": [], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"zero rate":     `{"links": [{"a":"a","b":"b","mbps":0,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"neg delay":     `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":-1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"no endpoints":  `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "paths":[{"nodes":["a","b"]}]}`,
		"no paths":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}}`,
		"bad path":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","zzz"]}]}`,
		"bad loss":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1,"loss":2}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"neg loss":      `{"links": [{"a":"a","b":"b","mbps":1,"delay_ms":1,"loss":-0.1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
		"missing names": `{"links": [{"mbps":1,"delay_ms":1}], "endpoints": {"src":"a","dst":"b"}, "paths":[{"nodes":["a","b"]}]}`,
	}
	for name, src := range cases {
		if _, err := LoadNetwork(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScenarioEventsRoundTrip(t *testing.T) {
	src := `{
		"links": [
			{"a": "s", "b": "v1", "mbps": 40, "delay_ms": 1},
			{"a": "v1", "b": "d", "mbps": 100, "delay_ms": 2},
			{"a": "s", "b": "v2", "mbps": 30, "delay_ms": 3},
			{"a": "v2", "b": "d", "mbps": 100, "delay_ms": 4}
		],
		"endpoints": {"src": "s", "dst": "d"},
		"paths": [
			{"nodes": ["s", "v1", "d"]},
			{"nodes": ["s", "v2", "d"]}
		],
		"events": [
			{"at_ms": 2000, "type": "link_down", "a": "s", "b": "v1"},
			{"at_ms": 3000, "type": "link_up", "a": "s", "b": "v1"},
			{"at_ms": 1000, "type": "set_rate", "a": "s", "b": "v2", "mbps": 15},
			{"at_ms": 500, "type": "set_delay", "a": "s", "b": "v1", "delay_ms": 7},
			{"at_ms": 700, "type": "set_loss", "a": "s", "b": "v2", "loss": 0.02},
			{"at_ms": 1500, "type": "loss_burst", "a": "s", "b": "v2", "loss": 0.4, "duration_ms": 250}
		]
	}`
	sf, err := LoadScenario(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	nw, err := sf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Events()) != 6 {
		t.Fatalf("events = %d, want 6", len(nw.Events()))
	}
	// Re-emit and compare: parse -> build -> re-emit is a fixpoint.
	out, err := nw.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Events) != len(sf.Events) {
		t.Fatalf("re-emitted %d events, want %d", len(out.Events), len(sf.Events))
	}
	for i := range sf.Events {
		if out.Events[i] != sf.Events[i] {
			t.Fatalf("event %d drifted: %+v -> %+v", i, sf.Events[i], out.Events[i])
		}
	}
	// Second cycle is bit-stable.
	nw2, err := out.Build()
	if err != nil {
		t.Fatal(err)
	}
	out2, err := nw2.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(out)
	j2, _ := json.Marshal(out2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("re-emit not a fixpoint:\n%s\n%s", j1, j2)
	}
	// The built network runs and produces the expected epochs (set_rate at
	// 1s, down at 2s, up at 3s).
	res, err := Run(nw, Options{Duration: 4 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 4 {
		t.Fatalf("epochs = %d, want 4", len(res.Epochs))
	}
}

func TestScenarioRejectsBrokenEvents(t *testing.T) {
	base := `{
		"links": [
			{"a": "a", "b": "m", "mbps": 10, "delay_ms": 1},
			{"a": "m", "b": "b", "mbps": 10, "delay_ms": 1}
		],
		"endpoints": {"src": "a", "dst": "b"},
		"paths": [{"nodes": ["a", "m", "b"]}],
		"events": [%s]
	}`
	for name, ev := range map[string]string{
		"unknown type":  `{"at_ms": 100, "type": "linkdown", "a": "a", "b": "m"}`,
		"unknown link":  `{"at_ms": 100, "type": "link_down", "a": "a", "b": "b"}`,
		"up while up":   `{"at_ms": 100, "type": "link_up", "a": "a", "b": "m"}`,
		"negative time": `{"at_ms": -5, "type": "link_down", "a": "a", "b": "m"}`,
		"zero rate":     `{"at_ms": 100, "type": "set_rate", "a": "a", "b": "m"}`,
		"unknown field": `{"at_ms": 100, "type": "link_down", "a": "a", "b": "m", "mpbs": 3}`,
	} {
		_, err := LoadNetwork(strings.NewReader(fmt.Sprintf(base, ev)))
		if err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Out-of-time-order listing with valid semantics is fine.
	ok := `{"at_ms": 2000, "type": "link_up", "a": "a", "b": "m"},
	       {"at_ms": 1000, "type": "link_down", "a": "a", "b": "m"}`
	if _, err := LoadNetwork(strings.NewReader(fmt.Sprintf(base, ok))); err != nil {
		t.Fatalf("valid unordered events rejected: %v", err)
	}
}
