package mptcpsim

// Run-level invariant checks that need the analytic baselines and the
// MPTCP endpoints — the engine-level audits (conservation, capacity,
// FIFO) live in internal/check and attach through the netem tap points.

import (
	"fmt"

	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/stats"
)

const (
	// runGapTol is how far the measured mean may exceed the LP target
	// (a negative optimality gap) before the run is flagged. The measured
	// series bins at SampleInterval and the measurement window clips the
	// slow-start transient, so tiny negative gaps are measurement noise;
	// anything beyond this is the simulator beating a proven optimum.
	runGapTol = 0.02
	// epochGapTolFloor is the per-epoch equivalent. Epochs are short, so
	// binning noise is proportionally larger, and queues filled in an
	// earlier epoch legitimately drain into a slower one — the check adds
	// a data-derived drain allowance on top of this floor.
	epochGapTolFloor = 0.05
)

// drainSlackBytes bounds the bytes that can reach the receiver in one
// epoch beyond the epoch's own optimum: everything parked in queues plus
// everything on the wire when the epoch began.
func drainSlackBytes(net *netem.Network) float64 {
	var slack float64
	for _, l := range net.Links() {
		slack += float64(l.QueueCap())
		slack += float64(l.Spec.Rate.Bytes(l.Spec.Delay))
	}
	return slack
}

// gapInvariants checks that measurement never beats the proven optimum:
// the LP gap must stay non-negative (within tolerance) for the whole run
// and inside every capacity epoch long enough to measure.
func gapInvariants(res *Result, slackBytes float64) []string {
	var v []string
	runTol := runGapTol
	if len(res.Epochs) > 1 && res.Summary.Target > 0 {
		// Dynamic runs: bytes queued during a fast epoch legitimately
		// drain into a slower one and arrive on top of the (already
		// lowered) piecewise target, so grant the same drain allowance
		// the per-epoch check gets, scaled to the measurement window —
		// the same bin-aligned window the mean and the piecewise target
		// integrate over.
		from, horizon := stats.MeasureWindow(res.Options.Duration, res.Options.SampleInterval)
		if window := horizon - from; window > 0 {
			runTol += slackBytes * 8 / (res.Summary.Target * 1e6 * window.Seconds())
		}
	}
	if res.Summary.Target > 0 && res.Summary.Gap < -runTol {
		v = append(v, fmt.Sprintf(
			"gap: measured %.2f Mbps beats the piecewise LP target %.2f Mbps (gap %.2f%%, tol %.2f%%)",
			res.Summary.TotalMean, res.Summary.Target, res.Summary.Gap*100, runTol*100))
	}
	for i, ep := range res.Epochs {
		// The epoch is measured over the whole bins strictly inside it
		// (stats.SummarizeEpoch); epochs with fewer than two such bins
		// cannot be checked against their own optimum — the fallback bin
		// mixes in the neighbouring epochs' traffic.
		step := res.Options.SampleInterval
		cf, ct := stats.EpochWindow(ep.Start, ep.End, step)
		win := ct - cf
		if ep.Optimum.Total <= 0 || win < 2*step {
			continue
		}
		// The drain allowance concentrates in the measured window: all the
		// bytes queued before a capacity cut arrive during its first bins.
		tol := epochGapTolFloor + slackBytes*8/(ep.Optimum.Total*1e6*win.Seconds())
		if ep.Gap < -tol {
			v = append(v, fmt.Sprintf(
				"gap: epoch %d [%v,%v): measured %.2f Mbps beats its LP optimum %.2f Mbps (gap %.2f%%, tol %.2f%%)",
				i+1, ep.Start, ep.End, ep.TotalMean, ep.Optimum.Total, ep.Gap*100, tol*100))
		}
	}
	return v
}

// dataInvariants checks MPTCP data-level conservation between the two
// endpoints: the receiver can never account for more payload than the
// sender transmitted, in-order delivery must equal the cumulative data
// ACK, and the ACK can never pass the sender's assignment cursor.
func dataInvariants(conn *mptcp.Conn, acc *mptcp.Acceptor) []string {
	var v []string
	sent := conn.SentPayloadBytes()
	assigned := conn.AssignedBytes()
	var accounted uint64
	for _, rc := range acc.Conns() {
		accounted += rc.Delivered + rc.DupBytes + rc.OOOBytes()
		if rc.Delivered != rc.DataAck() {
			v = append(v, fmt.Sprintf(
				"data: delivered %d bytes but data-ACK is %d (reassembly handed out a gap)",
				rc.Delivered, rc.DataAck()))
		}
		if rc.DataAck() > assigned {
			v = append(v, fmt.Sprintf(
				"data: data-ACK %d passed the sender's assignment cursor %d",
				rc.DataAck(), assigned))
		}
	}
	if accounted > sent {
		v = append(v, fmt.Sprintf(
			"data: receiver accounts for %d payload bytes, sender transmitted only %d",
			accounted, sent))
	}
	return v
}
