package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// lineNet builds a -> b -> c with the given rate/delay on both hops and a
// tag-1 route from a to c plus reverse — a replica of netem's internal
// test helper (netem's test package cannot be imported, and netem itself
// cannot import telemetry without a cycle).
func lineNet(t *testing.T, rate unit.Rate, delay time.Duration, queue unit.ByteSize) (*sim.Loop, *netem.Network, *netem.Node, *netem.Node, packet.Addr, packet.Addr) {
	t.Helper()
	g := topo.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b, rate, delay, queue)
	bc := g.AddLink(b, c, rate, delay, queue)
	g.AddLink(c, b, rate, delay, queue)
	g.AddLink(b, a, rate, delay, queue)

	loop := sim.NewLoop()
	tt := route.NewTagTable(g)
	net, err := netem.New(loop, g, tt)
	if err != nil {
		t.Fatal(err)
	}
	aAddr := net.AssignAddr(a)
	cAddr := net.AssignAddr(c)
	fwd := topo.Path{Nodes: []topo.NodeID{a, b, c}, Links: []topo.LinkID{ab, bc}}
	if err := tt.AddPath(cAddr, 1, fwd); err != nil {
		t.Fatal(err)
	}
	rev, err := topo.ReversePath(g, fwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.AddPath(aAddr, 1, rev); err != nil {
		t.Fatal(err)
	}
	return loop, net, net.Node(a), net.Node(c), aAddr, cAddr
}

func dataPkt(src, dst packet.Addr, tag packet.Tag, payload int) *packet.Packet {
	return &packet.Packet{
		IP:         packet.IPv4{Tag: tag, Proto: packet.ProtoUDP, Src: src, Dst: dst},
		UDP:        &packet.UDP{SrcPort: 9000, DstPort: 9001},
		PayloadLen: payload,
	}
}

// countHandler consumes deliveries without touching the heap.
type countHandler struct{ n int }

func (h *countHandler) Deliver(*packet.Packet) { h.n++ }

// TestRecorderTailAndNDJSON drives real traffic through a recorder with a
// tiny ring and checks the flight-recorder contract: only the newest
// events are retained, oldest first, and the NDJSON dump carries
// consecutive global sequence numbers ending at the last engine event.
func TestRecorderTailAndNDJSON(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, 100e6, time.Millisecond, 100*1500)
	rec := NewRecorder(8)
	rec.Attach(net)
	h := &countHandler{}
	if err := c.Register(9001, h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		a.Send(dataPkt(aAddr, cAddr, 1, 1000))
	}
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if h.n != 16 {
		t.Fatalf("delivered %d packets, want 16", h.n)
	}
	if rec.Len() != 8 {
		t.Fatalf("ring retained %d events, want 8", rec.Len())
	}
	// 16 packets x (send + 2 transmits + 2 arrivals + deliver) events.
	if want := uint64(16 * 6); rec.Total() != want {
		t.Fatalf("recorder observed %d events, want %d", rec.Total(), want)
	}
	events := rec.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events not oldest-first: [%d]=%v after [%d]=%v",
				i, events[i].At, i-1, events[i-1].At)
		}
	}

	var buf bytes.Buffer
	if err := rec.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("dump has %d lines, want 8", len(lines))
	}
	type line struct {
		Seq   uint64 `json:"seq"`
		AtNs  int64  `json:"at_ns"`
		Kind  string `json:"kind"`
		Where string `json:"where"`
		UID   uint64 `json:"uid"`
		Size  int    `json:"size"`
	}
	kinds := map[string]bool{"send": true, "transmit": true, "arrive": true,
		"deliver": true, "drop": true}
	for i, raw := range lines {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("line %d: %v: %s", i, err, raw)
		}
		if want := rec.Total() - 8 + uint64(i); l.Seq != want {
			t.Fatalf("line %d: seq %d, want %d", i, l.Seq, want)
		}
		if !kinds[l.Kind] {
			t.Fatalf("line %d: unknown kind %q", i, l.Kind)
		}
		if l.Where == "" || l.Size <= 0 {
			t.Fatalf("line %d: missing where/size: %s", i, raw)
		}
	}
	// The run's final engine event is the last delivery at c.
	var last line
	if err := json.Unmarshal([]byte(lines[7]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Kind != "deliver" || last.Where != "c" {
		t.Fatalf("tail ends with %s@%s, want deliver@c", last.Kind, last.Where)
	}
}

// TestRecorderDropEvents overloads a tiny queue and checks drops land in
// the tail with their reason and location.
func TestRecorderDropEvents(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, 2*1500)
	rec := NewRecorder(0) // default ring
	rec.Attach(net)
	h := &countHandler{}
	if err := c.Register(9001, h); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		a.Send(dataPkt(aAddr, cAddr, 1, 1400))
	}
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	drops := 0
	for _, e := range rec.Events() {
		if e.Kind != KindDrop {
			continue
		}
		drops++
		if e.Reason.String() == "" || e.Where() == "" {
			t.Fatalf("drop event missing reason/location: %+v", e)
		}
	}
	if drops == 0 {
		t.Fatal("64 packets into a 2-packet queue produced no recorded drops")
	}
}

// TestRecorderZeroAlloc is the netem transit gate with the flight
// recorder attached: recording an event is a ring store, so the
// observed transit must still allocate nothing.
func TestRecorderZeroAlloc(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, 100e6, time.Millisecond, 100*1500)
	rec := NewRecorder(0)
	rec.Attach(net)
	h := &countHandler{}
	if err := c.Register(9001, h); err != nil {
		t.Fatal(err)
	}
	p := dataPkt(aAddr, cAddr, 1, 1000)
	for i := 0; i < 64; i++ {
		a.Send(p)
	}
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	delivered := h.n
	allocs := testing.AllocsPerRun(200, func() {
		a.Send(p)
		if err := loop.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("recorded packet transit allocates %.1f objects, want 0", allocs)
	}
	if h.n <= delivered {
		t.Fatal("gate measured nothing: no packets were delivered")
	}
	if rec.Total() == 0 {
		t.Fatal("gate measured nothing: no events were recorded")
	}
}

// fakeClock steps a meter's clock deterministically.
type fakeClock struct{ now time.Time }

func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

// newTestMeter returns a meter on a fake clock starting at a fixed
// instant.
func newTestMeter(w io.Writer, total, workers int, interval time.Duration) (*Meter, *fakeClock) {
	m := NewMeter(w, total, workers, interval)
	clock := &fakeClock{now: time.Unix(1700000000, 0).UTC()}
	m.now = func() time.Time { return clock.now }
	m.start, m.last = clock.now, clock.now
	return m, clock
}

// TestMeterHeartbeats drives a meter through a sweep on a fake clock and
// checks emission policy (first completion, interval rate limiting,
// completion, Close), the NDJSON schema, and monotone done counts.
func TestMeterHeartbeats(t *testing.T) {
	var buf bytes.Buffer
	m, clock := newTestMeter(&buf, 4, 2, time.Second)

	clock.advance(100 * time.Millisecond)
	m.Record(false) // first completion always emits
	clock.advance(100 * time.Millisecond)
	m.Record(true) // rate-limited: no emission
	clock.advance(1200 * time.Millisecond)
	m.Record(false) // interval elapsed: emits
	clock.advance(100 * time.Millisecond)
	m.Record(false) // done == total: emits
	m.Close()       // final heartbeat

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("meter emitted %d heartbeats, want 4:\n%s", len(lines), buf.String())
	}
	prevDone := 0
	for i, raw := range lines {
		var fields map[string]any
		if err := json.Unmarshal([]byte(raw), &fields); err != nil {
			t.Fatalf("heartbeat %d: %v: %s", i, err, raw)
		}
		for _, key := range []string{"t", "elapsed_s", "done", "total",
			"failed", "runs_per_s", "eta_s", "workers", "idle_ms"} {
			if _, ok := fields[key]; !ok {
				t.Fatalf("heartbeat %d lost field %q: %s", i, key, raw)
			}
		}
		var hb Heartbeat
		if err := json.Unmarshal([]byte(raw), &hb); err != nil {
			t.Fatal(err)
		}
		if _, err := time.Parse(time.RFC3339Nano, hb.T); err != nil {
			t.Fatalf("heartbeat %d: bad timestamp %q: %v", i, hb.T, err)
		}
		if hb.Done < prevDone {
			t.Fatalf("heartbeat %d: done went backwards: %d after %d", i, hb.Done, prevDone)
		}
		prevDone = hb.Done
		if hb.Total != 4 || hb.Workers != 2 {
			t.Fatalf("heartbeat %d: total=%d workers=%d, want 4/2", i, hb.Total, hb.Workers)
		}
	}
	var final Heartbeat
	if err := json.Unmarshal([]byte(lines[3]), &final); err != nil {
		t.Fatal(err)
	}
	if final.Done != 4 || final.Failed != 1 || final.EtaS == nil || *final.EtaS != 0 {
		t.Fatalf("final heartbeat done=%d failed=%d eta=%v, want 4/1/0", final.Done, final.Failed, final.EtaS)
	}
	if final.RunsPerS == nil || *final.RunsPerS <= 0 {
		t.Fatalf("final heartbeat runs/s = %v, want > 0", final.RunsPerS)
	}
}

// TestMeterZeroIntervalEmitsEveryCompletion pins the interval <= 0 mode.
func TestMeterZeroIntervalEmitsEveryCompletion(t *testing.T) {
	var buf bytes.Buffer
	m, clock := newTestMeter(&buf, 3, 1, 0)
	for i := 0; i < 3; i++ {
		clock.advance(time.Millisecond)
		m.Record(false)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("zero-interval meter emitted %d heartbeats, want 3", lines)
	}
}

// TestRollupAdd checks sums sum, maxima max, and nil snapshots (failed
// runs) are ignored.
func TestRollupAdd(t *testing.T) {
	var r Rollup
	r.Add(nil)
	r.Add(&Snapshot{
		Sim: SimCounters{EventsScheduled: 10, EventsFired: 9, Recycled: 3,
			HeapPeak: 5, InUsePeak: 4},
		Links: []LinkCounters{
			{Name: "a->b", Offered: 7, TxPackets: 6, TxBytes: 9000,
				Drops: map[string]uint64{"queue_full": 1, "link_down": 2}},
		},
		Subflows: []SubflowCounters{{RTOs: 1, FastRecoveries: 2, Retransmits: 3, SchedPicks: 4}},
	})
	r.Add(&Snapshot{
		Sim: SimCounters{EventsScheduled: 20, EventsFired: 20, Recycled: 5,
			HeapPeak: 2, InUsePeak: 9},
		Links:    []LinkCounters{{Name: "a->b", Offered: 3, TxPackets: 3, TxBytes: 4500}},
		Subflows: []SubflowCounters{{SchedPicks: 6}},
	})
	want := Rollup{Runs: 2,
		EventsScheduled: 30, EventsFired: 29, Recycled: 8, HeapPeak: 5, InUsePeak: 9,
		TxPackets: 9, TxBytes: 13500, Offered: 10, Drops: 3,
		RTOs: 1, FastRecoveries: 2, Retransmits: 3, SchedPicks: 10}
	if r != want {
		t.Fatalf("rollup = %+v, want %+v", r, want)
	}
}

// TestDebugServer starts the debug endpoint, activates a meter, and
// checks /debug/vars serves its snapshot under sweep_progress and
// /debug/pprof/ answers.
func TestDebugServer(t *testing.T) {
	m, _ := newTestMeter(io.Discard, 3, 1, 0)
	m.Record(false)
	m.Activate()
	addr, closeSrv, err := DebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer closeSrv()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, "sweep_progress") || !strings.Contains(vars, `"done":1`) {
		t.Fatalf("/debug/vars does not carry the activated meter:\n%s", vars)
	}
	if !strings.Contains(get("/debug/pprof/"), "pprof") {
		t.Fatal("/debug/pprof/ index missing")
	}

	// Re-activation swaps the served meter without a duplicate-publish
	// panic.
	m2, _ := newTestMeter(io.Discard, 5, 1, 0)
	m2.Record(false)
	m2.Record(false)
	m2.Activate()
	if vars := get("/debug/vars"); !strings.Contains(vars, `"done":2`) {
		t.Fatalf("/debug/vars not reading the re-activated meter:\n%s", vars)
	}
}

// TestMeterResume seeds a meter with a prior execution's progress (a
// resumed run-log) and checks heartbeats count done/failed from that
// baseline against the full total, while the ETA is built only from the
// rate this execution actually measures.
func TestMeterResume(t *testing.T) {
	var buf bytes.Buffer
	m, clock := newTestMeter(&buf, 10, 1, 0)
	m.Resume(6, 2) // 6 of 10 already on disk, 2 of them failed

	clock.advance(2 * time.Second)
	m.Record(false)
	var first Heartbeat
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Done != 7 || first.Total != 10 || first.Failed != 2 {
		t.Fatalf("first heartbeat done/total/failed = %d/%d/%d, want 7/10/2",
			first.Done, first.Total, first.Failed)
	}
	// The EWMA must seed from this execution's first inter-completion gap
	// (2s), not blend it against a zero baseline as a done-count seed
	// would: 3 remaining runs at 2s each.
	if first.RunsPerS == nil || *first.RunsPerS != 0.5 || first.EtaS == nil || *first.EtaS != 6 {
		t.Fatalf("first heartbeat runs/s=%v eta=%v, want 0.5/6 (session-local rate)",
			first.RunsPerS, first.EtaS)
	}

	clock.advance(2 * time.Second)
	m.Record(true)
	clock.advance(2 * time.Second)
	m.Record(false)
	clock.advance(2 * time.Second)
	m.Record(false)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	var final Heartbeat
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if final.Done != 10 || final.Failed != 3 || final.EtaS == nil || *final.EtaS != 0 {
		t.Fatalf("final heartbeat done/failed/eta = %d/%d/%v, want 10/3/0",
			final.Done, final.Failed, final.EtaS)
	}
}

// TestMeterHeartbeatsValidUnderCoarseClock is the Inf/NaN regression test:
// a coarse (or fake) clock hands the meter zero-length intervals — zero
// elapsed time at the first tick, then a long run of zero gaps that decays
// the rate EWMA into denormal territory where 1/ewmaDt overflows to +Inf.
// Every heartbeat must stay independently parseable JSON with finite
// numbers: rate and ETA are omitted while unknown, never Inf/NaN (which
// json.Encode refuses, so the unclamped meter also silently dropped
// heartbeats by erroring).
func TestMeterHeartbeatsValidUnderCoarseClock(t *testing.T) {
	var buf bytes.Buffer
	m, clock := newTestMeter(&buf, 10000, 2, 0)

	// First completion with zero elapsed time: the rate is unknown.
	if err := m.Record(false); err != nil {
		t.Fatalf("zero-elapsed Record: %v", err)
	}
	var hb Heartbeat
	first := strings.TrimSpace(buf.String())
	if err := json.Unmarshal([]byte(first), &hb); err != nil {
		t.Fatalf("zero-elapsed heartbeat is not valid JSON: %v: %s", err, first)
	}
	if hb.RunsPerS != nil || hb.EtaS != nil {
		t.Fatalf("zero-elapsed heartbeat reports rate/eta %v/%v, want both omitted",
			hb.RunsPerS, hb.EtaS)
	}
	if hb.ElapsedS != 0 || hb.Done != 1 {
		t.Fatalf("zero-elapsed heartbeat elapsed/done = %v/%d, want 0/1", hb.ElapsedS, hb.Done)
	}

	// One real gap seeds the EWMA, then thousands of zero gaps decay it
	// through the denormal range (0.8^n underflows around n=3800), where
	// the unclamped 1/ewmaDt is +Inf.
	clock.advance(time.Second)
	for i := 0; i < 5000; i++ {
		if err := m.Record(i%7 == 0); err != nil {
			t.Fatalf("Record %d under a stuck clock: %v", i, err)
		}
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5001 {
		t.Fatalf("meter emitted %d heartbeats, want 5001", len(lines))
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("heartbeat %d is not valid JSON: %s", i, line)
		}
		if strings.Contains(line, "Inf") || strings.Contains(line, "NaN") {
			t.Fatalf("heartbeat %d leaks a non-finite value: %s", i, line)
		}
	}
}

// TestMeterAdvance drives the fleet-coordinator batch path: completions
// observed by scanning worker run-logs fold into done/failed as a batch,
// and the scan gap spreads evenly across the batch so the EWMA converges
// on the fleet-wide rate.
func TestMeterAdvance(t *testing.T) {
	var buf bytes.Buffer
	m, clock := newTestMeter(&buf, 8, 3, 0)

	clock.advance(4 * time.Second)
	if err := m.Advance(4, 1); err != nil {
		t.Fatal(err)
	}
	var hb Heartbeat
	if err := json.Unmarshal([]byte(strings.TrimSpace(buf.String())), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Done != 4 || hb.Failed != 1 || hb.Total != 8 {
		t.Fatalf("batched heartbeat done/failed/total = %d/%d/%d, want 4/1/8",
			hb.Done, hb.Failed, hb.Total)
	}
	// 4 completions over 4s = 1 run/s each; the EWMA seeds at 1 and stays
	// there, so 4 remaining runs project a 4 s ETA.
	if hb.RunsPerS == nil || *hb.RunsPerS != 1 || hb.EtaS == nil || *hb.EtaS != 4 {
		t.Fatalf("batched heartbeat runs/s=%v eta=%v, want 1/4", hb.RunsPerS, hb.EtaS)
	}

	// An empty scan is a no-op: nothing emitted, nothing advanced.
	before := buf.Len()
	if err := m.Advance(0, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != before {
		t.Fatal("Advance(0, 0) emitted a heartbeat")
	}

	clock.advance(4 * time.Second)
	if err := m.Advance(4, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Done != 8 || hb.Failed != 1 || hb.EtaS == nil || *hb.EtaS != 0 {
		t.Fatalf("final batched heartbeat done/failed/eta = %d/%d/%v, want 8/1/0",
			hb.Done, hb.Failed, hb.EtaS)
	}
}
