package telemetry

// Aliasing regression test for the flight recorder: recorded events must
// copy the scalar facts they report (UID, tag, size) at observation time,
// because the packet they describe is recycled at its terminal tap and
// the slot is rebuilt as an unrelated packet moments later.

import (
	"testing"
	"time"

	"mptcpsim/internal/packet"
)

func TestRecorderEventsSurvivePacketRecycling(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, 100e6, time.Millisecond, 100*1500)
	rec := NewRecorder(256)
	rec.Attach(net)
	h := &countHandler{}
	if err := c.Register(9001, h); err != nil {
		t.Fatal(err)
	}

	// Ten packets of distinct sizes sent strictly one at a time: each is
	// delivered (and its slot recycled) before the next draw, so all ten
	// share one arena slot. The recorder's events must still describe ten
	// different packets, not ten views of the slot's final contents.
	arena := net.Arena()
	wantSize := make(map[uint64]int) // UID -> wire size
	for i := 0; i < 10; i++ {
		p, u := arena.GetUDP()
		p.IP = packet.IPv4{Tag: 1, Proto: packet.ProtoUDP, Src: aAddr, Dst: cAddr}
		u.SrcPort, u.DstPort = 9000, 9001
		p.PayloadLen = 100 + 10*i
		a.Send(p)
		wantSize[p.UID] = int(p.Size()) // UID is stamped at send time
		if err := loop.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if h.n != 10 {
		t.Fatalf("delivered %d packets, want 10", h.n)
	}
	if len(wantSize) != 10 {
		t.Fatalf("expected 10 distinct UIDs, saw %d — slot reuse broke identity", len(wantSize))
	}

	// Every event of every lifecycle stage must report its own packet's
	// size, even though the storage behind all of them was one slot.
	seen := make(map[uint64]int)
	for _, e := range rec.Events() {
		want, ok := wantSize[e.UID]
		if !ok {
			t.Fatalf("event for unknown UID %d: %+v", e.UID, e)
		}
		if e.Size != want {
			t.Fatalf("%s event of UID %d reports size %d, want %d — the recorder aliased recycled packet storage", e.Kind, e.UID, e.Size, want)
		}
		seen[e.UID]++
	}
	if len(seen) != 10 {
		t.Fatalf("recorder saw %d distinct packets, want 10", len(seen))
	}
}
