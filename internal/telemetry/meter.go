package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"sync"
	"time"
)

// Heartbeat is one NDJSON progress line. Heartbeats carry wall-clock data
// and are therefore written to a side channel (-progress), never into
// sweep artifacts, which must stay byte-identical across machines.
type Heartbeat struct {
	// T is the wall-clock emission time (RFC 3339, with sub-second
	// precision); ElapsedS the seconds since the meter started.
	T        string  `json:"t"`
	ElapsedS float64 `json:"elapsed_s"`
	// Done / Total / Failed count runs; Done is monotone because the
	// OnResult hook feeding Record is serialised.
	Done   int `json:"done"`
	Total  int `json:"total"`
	Failed int `json:"failed"`
	// RunsPerS is the EWMA completion rate, EtaS the projected seconds to
	// completion at that rate. Both are omitted (JSON null semantics)
	// while unknown: at the first tick the EWMA can still be zero, and a
	// coarse clock can measure a zero inter-completion gap, so computing
	// them regardless would put +Inf/NaN on the wire — which is not JSON
	// and breaks every NDJSON consumer downstream. Pointers, not zeroes:
	// a rate of 0 runs/s is a meaningful (stuck) value, absence is not.
	RunsPerS *float64 `json:"runs_per_s,omitempty"`
	EtaS     *float64 `json:"eta_s,omitempty"`
	// Workers is the configured pool size; IdleMs the wall milliseconds
	// since the previous completion — a liveness signal (a large value
	// with Done < Total means the pool is stuck or on a long run).
	Workers int   `json:"workers"`
	IdleMs  int64 `json:"idle_ms"`
}

// Meter turns a stream of run completions into periodic NDJSON heartbeats.
// Feed it from a serialised completion hook (Sweep.OnResult, or simcheck's
// result loop); it rate-limits emission to the configured interval and
// always emits the final heartbeat on Close. A Meter is also safe for
// concurrent Record calls: it carries its own mutex.
type Meter struct {
	mu       sync.Mutex
	w        io.Writer
	total    int
	workers  int
	interval time.Duration

	start    time.Time
	last     time.Time // previous completion
	lastEmit time.Time
	done     int
	failed   int
	// records counts Record calls this execution — done minus any Resume
	// baseline — so the EWMA seeds from the first run actually measured.
	records int
	// ewmaDt is the smoothed seconds-per-completion (aggregate over the
	// pool, so ETA needs no worker-count correction).
	ewmaDt float64

	// now is the clock, swappable in tests.
	now func() time.Time
}

// ewmaAlpha weights the newest inter-completion gap at 20%.
const ewmaAlpha = 0.2

// NewMeter returns a meter for total runs on a pool of workers, writing
// heartbeats to w at most once per interval (plus a final one on Close).
// An interval <= 0 emits on every completion.
func NewMeter(w io.Writer, total, workers int, interval time.Duration) *Meter {
	m := &Meter{w: w, total: total, workers: workers, interval: interval,
		now: time.Now}
	m.start = m.now()
	m.last = m.start
	return m
}

// Resume seeds the meter with runs completed by an earlier, interrupted
// execution (a resumed run-log): heartbeats count done and failed from
// this baseline against the full total, so progress stays correct across
// resume, while the completion-rate EWMA — and therefore the ETA — is
// built only from runs this execution actually performs. Call it before
// the first Record.
func (m *Meter) Resume(done, failed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.done += done
	m.failed += failed
}

// Record notes one completed run and emits a heartbeat if the interval has
// elapsed since the last one.
func (m *Meter) Record(failed bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.done++
	m.records++
	if failed {
		m.failed++
	}
	dt := now.Sub(m.last).Seconds()
	if m.records == 1 {
		m.ewmaDt = dt
	} else {
		m.ewmaDt = (1-ewmaAlpha)*m.ewmaDt + ewmaAlpha*dt
	}
	m.last = now
	if m.lastEmit.IsZero() || now.Sub(m.lastEmit) >= m.interval || m.done == m.total {
		return m.emit(now)
	}
	return nil
}

// Advance folds a batch of n completions (failed of them failed) observed
// at once — the fleet-coordinator form of Record, for consumers that learn
// about completions by scanning worker run-logs rather than executing runs
// themselves. The wall time since the previous observation is spread evenly
// across the batch, so the EWMA (and therefore the ETA) converges to the
// fleet-wide aggregate completion rate. Advance with n <= 0 is a no-op.
func (m *Meter) Advance(n, failed int) error {
	if n <= 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	now := m.now()
	m.done += n
	m.failed += failed
	dt := now.Sub(m.last).Seconds() / float64(n)
	for i := 0; i < n; i++ {
		m.records++
		if m.records == 1 {
			m.ewmaDt = dt
		} else {
			m.ewmaDt = (1-ewmaAlpha)*m.ewmaDt + ewmaAlpha*dt
		}
	}
	m.last = now
	if m.lastEmit.IsZero() || now.Sub(m.lastEmit) >= m.interval || m.done >= m.total {
		return m.emit(now)
	}
	return nil
}

// Close emits the final heartbeat (even if the interval has not elapsed).
func (m *Meter) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.emit(m.now())
}

// snapshot builds the heartbeat under the lock.
func (m *Meter) snapshot(now time.Time) Heartbeat {
	hb := Heartbeat{
		T:        now.Format(time.RFC3339Nano),
		ElapsedS: now.Sub(m.start).Seconds(),
		Done:     m.done,
		Total:    m.total,
		Failed:   m.failed,
		Workers:  m.workers,
		IdleMs:   now.Sub(m.last).Milliseconds(),
	}
	// Rate and ETA only when they are finite numbers. ewmaDt == 0 is the
	// first-tick / coarse-clock case; a denormally small ewmaDt (a long run
	// of zero-length gaps decaying the EWMA) makes 1/ewmaDt overflow to
	// +Inf, which json must never see.
	if m.ewmaDt > 0 {
		if rps := 1 / m.ewmaDt; !math.IsInf(rps, 0) && !math.IsNaN(rps) {
			hb.RunsPerS = &rps
		}
	}
	if remaining := m.total - m.done; remaining <= 0 {
		// Nothing left: the ETA is a known zero, not an unknown.
		zero := 0.0
		hb.EtaS = &zero
	} else if m.ewmaDt > 0 {
		if eta := float64(remaining) * m.ewmaDt; !math.IsInf(eta, 0) && !math.IsNaN(eta) {
			hb.EtaS = &eta
		}
	}
	return hb
}

func (m *Meter) emit(now time.Time) error {
	m.lastEmit = now
	if m.w == nil {
		return nil
	}
	enc := json.NewEncoder(m.w)
	return enc.Encode(m.snapshot(now))
}

// expvar integration: tests (and embedders) may create many meters, but
// expvar.Publish panics on duplicate names, so the package registers one
// Func that reads whichever meter is currently activated.
var (
	expvarOnce sync.Once
	activeMu   sync.Mutex
	activeM    *Meter
)

// Activate publishes the meter as the process's "sweep_progress" expvar,
// replacing any previously activated meter. The debug HTTP endpoint
// (DebugServer) serves it under /debug/vars.
func (m *Meter) Activate() {
	expvarOnce.Do(func() {
		expvar.Publish("sweep_progress", expvar.Func(func() any {
			activeMu.Lock()
			cur := activeM
			activeMu.Unlock()
			if cur == nil {
				return nil
			}
			cur.mu.Lock()
			defer cur.mu.Unlock()
			return cur.snapshot(cur.now())
		}))
	})
	activeMu.Lock()
	activeM = m
	activeMu.Unlock()
}
