// Package telemetry is the run-observability layer of the simulator:
// engine counters snapshotted per run, a fixed-size flight recorder of the
// last engine events (dumped as NDJSON when a run fails), and a progress
// meter that streams NDJSON heartbeats from a sweep's serialised OnResult
// hook, optionally exposed over expvar for a debug HTTP endpoint.
//
// Everything here is observation-only by construction: nothing schedules
// events, consumes randomness, or feeds back into the models, so a run
// with telemetry attached is bit-identical to one without (the golden-hash
// property cmd/simcheck enforces).
package telemetry

import (
	"mptcpsim/internal/sim"
)

// SimCounters mirrors sim.Counters in a JSON-friendly form.
type SimCounters struct {
	// EventsScheduled counts events ever scheduled, EventsFired events
	// executed (stopped timers account for the difference).
	EventsScheduled uint64 `json:"events_scheduled"`
	EventsFired     uint64 `json:"events_fired"`
	// ArenaNodes is the pooled event arena's final size; Recycled counts
	// allocations served by the free list instead of arena growth.
	ArenaNodes int    `json:"arena_nodes"`
	Recycled   uint64 `json:"recycled"`
	// InUsePeak is the peak number of concurrently pending events,
	// HeapPeak the deepest pending queue.
	InUsePeak int `json:"in_use_peak"`
	HeapPeak  int `json:"heap_peak"`
}

// FromSim converts a kernel counter snapshot.
func FromSim(c sim.Counters) SimCounters {
	return SimCounters{
		EventsScheduled: c.Scheduled,
		EventsFired:     c.Fired,
		ArenaNodes:      c.ArenaNodes,
		Recycled:        c.Recycled,
		InUsePeak:       c.InUsePeak,
		HeapPeak:        c.HeapPeak,
	}
}

// LinkCounters is the per-link dataplane view: offered load, completed
// transmissions, drops by reason, and queue/utilisation peaks.
type LinkCounters struct {
	Name      string            `json:"name"`
	Offered   uint64            `json:"offered"`
	TxPackets uint64            `json:"tx_packets"`
	TxBytes   uint64            `json:"tx_bytes"`
	Drops     map[string]uint64 `json:"drops,omitempty"`
	// MaxQueueBytes is the queue-occupancy high-water mark.
	MaxQueueBytes int `json:"max_queue_bytes"`
	// Utilisation is the busy fraction of the transmitter over the run.
	Utilisation float64 `json:"utilisation"`
}

// SubflowCounters is the per-subflow transport view: loss-recovery
// activity, scheduler attention, and the congestion-window high-water.
type SubflowCounters struct {
	Path  int    `json:"path"`
	Label string `json:"label"`
	// RTOs and FastRecoveries count timeout and fast-retransmit recovery
	// episodes; Retransmits counts retransmitted segments.
	RTOs           uint64 `json:"rtos"`
	FastRecoveries uint64 `json:"fast_recoveries"`
	Retransmits    uint64 `json:"retransmits"`
	// SchedPicks counts scheduler grants that put data on this subflow.
	SchedPicks uint64 `json:"sched_picks"`
	// CwndPeakBytes is the congestion window's high-water mark.
	CwndPeakBytes int `json:"cwnd_peak_bytes"`
}

// Snapshot is one run's complete telemetry: collected after the loop
// drains, never during it, so the hot path pays nothing for it.
type Snapshot struct {
	Sim      SimCounters       `json:"sim"`
	Links    []LinkCounters    `json:"links,omitempty"`
	Subflows []SubflowCounters `json:"subflows,omitempty"`
	// FlightEvents is the number of engine events the flight recorder
	// retained (<= its ring capacity); FlightTotal the number observed.
	FlightEvents int    `json:"flight_events,omitempty"`
	FlightTotal  uint64 `json:"flight_total,omitempty"`
}

// Rollup accumulates Snapshots across the runs of a sweep. Every field is
// either a sum or a max, so the aggregate is identical for any worker
// count or completion order.
type Rollup struct {
	Runs uint64 `json:"runs"`

	EventsScheduled uint64 `json:"events_scheduled"`
	EventsFired     uint64 `json:"events_fired"`
	Recycled        uint64 `json:"recycled"`
	// HeapPeak and InUsePeak are maxima over runs.
	HeapPeak  int `json:"heap_peak"`
	InUsePeak int `json:"in_use_peak"`

	TxPackets uint64 `json:"tx_packets"`
	TxBytes   uint64 `json:"tx_bytes"`
	Offered   uint64 `json:"offered"`
	Drops     uint64 `json:"drops"`

	RTOs           uint64 `json:"rtos"`
	FastRecoveries uint64 `json:"fast_recoveries"`
	Retransmits    uint64 `json:"retransmits"`
	SchedPicks     uint64 `json:"sched_picks"`
}

// Add folds one run's snapshot into the rollup. A nil snapshot (run
// failed before telemetry collection) is ignored.
func (r *Rollup) Add(s *Snapshot) {
	if s == nil {
		return
	}
	r.Runs++
	r.EventsScheduled += s.Sim.EventsScheduled
	r.EventsFired += s.Sim.EventsFired
	r.Recycled += s.Sim.Recycled
	if s.Sim.HeapPeak > r.HeapPeak {
		r.HeapPeak = s.Sim.HeapPeak
	}
	if s.Sim.InUsePeak > r.InUsePeak {
		r.InUsePeak = s.Sim.InUsePeak
	}
	for _, l := range s.Links {
		r.TxPackets += l.TxPackets
		r.TxBytes += l.TxBytes
		r.Offered += l.Offered
		for _, n := range l.Drops {
			r.Drops += n
		}
	}
	for _, sf := range s.Subflows {
		r.RTOs += sf.RTOs
		r.FastRecoveries += sf.FastRecoveries
		r.Retransmits += sf.Retransmits
		r.SchedPicks += sf.SchedPicks
	}
}
