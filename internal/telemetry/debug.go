package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugServer starts an HTTP debug endpoint on addr serving expvar
// metrics (/debug/vars, including any Activated Meter) and the standard
// pprof handlers (/debug/pprof/...). It returns the bound address (useful
// with ":0") and a shutdown function. The server runs on its own
// goroutine and never touches simulation state, so it cannot perturb
// determinism.
func DebugServer(addr string) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	close := func() error {
		return srv.Close()
	}
	return ln.Addr().String(), close, nil
}
