package telemetry

import (
	"encoding/json"
	"io"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Flight-recorder event kinds, in packet-lifecycle order.
const (
	// KindSend: a host originated the packet.
	KindSend EventKind = iota
	// KindTransmit: the last bit left a link's transmitter.
	KindTransmit
	// KindArrive: the packet reached the far end of a link.
	KindArrive
	// KindDeliver: the packet was handed to a local transport handler.
	KindDeliver
	// KindDrop: the packet was lost.
	KindDrop
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindTransmit:
		return "transmit"
	case KindArrive:
		return "arrive"
	case KindDeliver:
		return "deliver"
	case KindDrop:
		return "drop"
	default:
		return "event(?)"
	}
}

// Event is one recorded engine event. Links are stored as pointers and
// resolved to names only at dump time, so recording stays allocation-free.
type Event struct {
	At   sim.Time
	Kind EventKind
	// link is set for transmit/arrive events; where for the rest (node
	// name, or the drop location string the engine reported).
	link  *netem.Link
	where string

	UID  uint64
	Tag  packet.Tag
	Size int

	Reason netem.DropReason
}

// Where returns the event's location: the link name for transmit/arrive,
// the node or drop-location name otherwise.
func (e Event) Where() string {
	if e.link != nil {
		return e.link.Name()
	}
	return e.where
}

// DefaultRingSize is the flight-recorder capacity used by Options.Telemetry.
const DefaultRingSize = 512

// Recorder is a fixed-size ring buffer of the last N engine events — the
// simulator's flight recorder. It attaches to a netem.Network as a tap,
// observes sends, transmissions, arrivals, deliveries and drops, and keeps
// only the tail, so a failing run can be dumped with the events that led
// up to the failure. The ring is preallocated: recording is a store and
// two integer updates, with zero heap allocations.
type Recorder struct {
	loop *sim.Loop
	ring []Event
	// next is the ring slot the next event lands in; total counts every
	// event observed.
	next  int
	total uint64
}

// NewRecorder returns a recorder retaining the last n events (n <= 0
// selects DefaultRingSize).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Recorder{ring: make([]Event, n)}
}

// Attach registers the recorder on every tap point of net.
func (r *Recorder) Attach(net *netem.Network) {
	r.loop = net.Loop
	net.AttachTap(r)
}

func (r *Recorder) record(e Event) {
	r.ring[r.next] = e
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.total++
}

// OnSend implements netem.SendTap.
func (r *Recorder) OnSend(n *netem.Node, pkt *packet.Packet) {
	r.record(Event{At: r.loop.Now(), Kind: KindSend, where: n.Name,
		UID: pkt.UID, Tag: pkt.IP.Tag, Size: int(pkt.Size())})
}

// OnTransmit implements netem.Tap.
func (r *Recorder) OnTransmit(l *netem.Link, pkt *packet.Packet) {
	r.record(Event{At: r.loop.Now(), Kind: KindTransmit, link: l,
		UID: pkt.UID, Tag: pkt.IP.Tag, Size: int(pkt.Size())})
}

// OnArrive implements netem.ArrivalTap.
func (r *Recorder) OnArrive(l *netem.Link, pkt *packet.Packet) {
	r.record(Event{At: r.loop.Now(), Kind: KindArrive, link: l,
		UID: pkt.UID, Tag: pkt.IP.Tag, Size: int(pkt.Size())})
}

// OnDeliver implements netem.Tap.
func (r *Recorder) OnDeliver(n *netem.Node, pkt *packet.Packet) {
	r.record(Event{At: r.loop.Now(), Kind: KindDeliver, where: n.Name,
		UID: pkt.UID, Tag: pkt.IP.Tag, Size: int(pkt.Size())})
}

// OnDrop implements netem.Tap.
func (r *Recorder) OnDrop(where string, pkt *packet.Packet, reason netem.DropReason) {
	r.record(Event{At: r.loop.Now(), Kind: KindDrop, where: where,
		UID: pkt.UID, Tag: pkt.IP.Tag, Size: int(pkt.Size()), Reason: reason})
}

// Len returns the number of retained events, Total the number observed.
func (r *Recorder) Len() int {
	if r.total < uint64(len(r.ring)) {
		return int(r.total)
	}
	return len(r.ring)
}

// Total returns the number of events observed over the run.
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Recorder) Events() []Event {
	n := r.Len()
	out := make([]Event, 0, n)
	start := 0
	if r.total >= uint64(len(r.ring)) {
		start = r.next
	}
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// eventJSON is the NDJSON line schema of one flight-recorder event.
type eventJSON struct {
	// Seq is the event's global index over the run (the first observed
	// event is 0), so a dump states how far back its tail reaches.
	Seq   uint64 `json:"seq"`
	AtNs  int64  `json:"at_ns"`
	Kind  string `json:"kind"`
	Where string `json:"where"`
	UID   uint64 `json:"uid"`
	Tag   int    `json:"tag"`
	Size  int    `json:"size"`
	// Reason is set for drops only.
	Reason string `json:"reason,omitempty"`
}

// WriteNDJSON dumps the retained tail, oldest first, one JSON object per
// line. Link names are resolved here, not at record time.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	events := r.Events()
	first := r.total - uint64(len(events))
	for i, e := range events {
		line := eventJSON{
			Seq:   first + uint64(i),
			AtNs:  int64(e.At),
			Kind:  e.Kind.String(),
			Where: e.Where(),
			UID:   e.UID,
			Tag:   int(e.Tag),
			Size:  e.Size,
		}
		if e.Kind == KindDrop {
			line.Reason = e.Reason.String()
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}
