package netem

import (
	"math"
	"time"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
)

// CoDel is the Controlled Delay AQM (Nichols & Jacobson, CACM 2012),
// included as a modern alternative to DropTail/RED for the buffer
// ablations: instead of queue length it controls *sojourn time*, dropping
// at increasing frequency while the minimum delay over an interval stays
// above Target.
//
// This implementation adapts the algorithm to the simulator's
// admission-time hook: the sojourn estimate for an arriving packet is the
// time the current backlog needs to drain at line rate, which in a
// fluid-free single-server queue equals the packet's eventual sojourn.
type CoDel struct {
	// Target is the acceptable standing queue delay (default 5 ms).
	Target time.Duration
	// Interval is the sliding observation window (default 100 ms).
	Interval time.Duration

	loop *sim.Loop

	// dropping is true while in the dropping state.
	dropping bool
	// firstAboveAt is when sojourn first exceeded Target (0 = not above).
	firstAboveAt sim.Time
	// dropNextAt schedules the next drop in the dropping state.
	dropNextAt sim.Time
	// count is the number of drops in the current dropping state.
	count int
}

// NewCoDel returns a CoDel policy with the canonical 5 ms / 100 ms
// parameters.
func NewCoDel(loop *sim.Loop) *CoDel {
	return &CoDel{Target: 5 * time.Millisecond, Interval: 100 * time.Millisecond, loop: loop}
}

// Name implements AQM.
func (c *CoDel) Name() string { return "codel" }

// OnEnqueue implements AQM.
func (c *CoDel) OnEnqueue(l *Link, pkt *packet.Packet) bool {
	now := c.loop.Now()
	sojourn := l.Spec.Rate.TxTime(l.QueuedBytes() + pkt.Size())

	if sojourn < c.Target || l.QueuedBytes() <= 3000 {
		// Below target (or nearly empty): leave the dropping state.
		c.firstAboveAt = 0
		if c.dropping {
			c.dropping = false
		}
		return false
	}

	if !c.dropping {
		// Above target: start the interval clock; enter dropping state
		// only after a full Interval above.
		if c.firstAboveAt == 0 {
			c.firstAboveAt = now.Add(c.Interval)
			return false
		}
		if now < c.firstAboveAt {
			return false
		}
		c.dropping = true
		// Control-law restart: begin close to the last drop rate.
		if c.count > 2 {
			c.count -= 2
		} else {
			c.count = 1
		}
		c.dropNextAt = now
	}

	if now >= c.dropNextAt {
		c.count++
		// next drop at now + Interval/sqrt(count)
		c.dropNextAt = now.Add(time.Duration(float64(c.Interval) / math.Sqrt(float64(c.count))))
		return true
	}
	return false
}
