package netem

// The allocation gate for the dataplane: once the loop arena and the
// link's queue/in-flight slices are warm, a packet's whole transit across
// two store-and-forward hops — enqueue, serialisation completion,
// propagation arrival, forwarding, delivery — schedules on pooled event
// nodes and allocates zero heap objects.

import (
	"testing"
	"time"

	"mptcpsim/internal/packet"
)

// nullHandler consumes deliveries without touching the heap.
type nullHandler struct{ n int }

func (h *nullHandler) Deliver(*packet.Packet) { h.n++ }

func TestPacketTransitZeroAlloc(t *testing.T) {
	loop, _, a, c, aAddr, cAddr := lineNet(t, 100e6, time.Millisecond, 100*1500)
	h := &nullHandler{}
	if err := c.Register(9001, h); err != nil {
		t.Fatal(err)
	}
	// One reusable packet: the gate measures the transport fabric, not
	// packet construction (senders own their packet allocations).
	p := dataPkt(aAddr, cAddr, 1, 1000)

	// Warm-up: grow the loop arena, both link queues and the in-flight
	// FIFOs to their steady-state footprint.
	for i := 0; i < 64; i++ {
		a.Send(p)
	}
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}

	delivered := h.n
	allocs := testing.AllocsPerRun(200, func() {
		a.Send(p)
		if err := loop.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state packet transit allocates %.1f objects, want 0", allocs)
	}
	if h.n <= delivered {
		t.Fatal("gate measured nothing: no packets were delivered")
	}
}
