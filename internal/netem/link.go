package netem

import (
	"fmt"
	"math"
	"time"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// AQM is a queue-admission policy. OnEnqueue runs for every arriving
// packet and reports whether it must be dropped instead of queued; the hard
// capacity check still applies afterwards.
type AQM interface {
	// Name identifies the policy in stats output.
	Name() string
	// OnEnqueue reports whether to drop the arriving packet.
	OnEnqueue(l *Link, pkt *packet.Packet) bool
}

// DropTail is the default policy: drop only on overflow (the overflow check
// itself lives in the link, so DropTail never drops here).
type DropTail struct{}

// Name implements AQM.
func (DropTail) Name() string { return "droptail" }

// OnEnqueue implements AQM.
func (DropTail) OnEnqueue(*Link, *packet.Packet) bool { return false }

// LinkCounters accumulates per-link statistics, in the spirit of the
// per-interface counter maps of kernel dataplanes.
type LinkCounters struct {
	TxPackets uint64
	TxBytes   uint64
	// Offered counts every packet presented to the transmit queue,
	// whatever its fate. Conservation holds at all times:
	// Offered = TxPackets + dropped + queued + mid-serialisation.
	Offered uint64
	Drops   map[DropReason]uint64
	// MaxQueue is the high-water mark of queued bytes.
	MaxQueue unit.ByteSize
	// Busy accumulates transmitter-active time, for utilisation.
	Busy time.Duration
}

// DropTotal sums the drop counters over all reasons.
func (c *LinkCounters) DropTotal() uint64 {
	var n uint64
	for _, v := range c.Drops {
		n += v
	}
	return n
}

// Link is the runtime transmitter for one directed link: a FIFO queue in
// front of a serialiser that moves Spec.Rate bits per second, followed by
// Spec.Delay of propagation.
type Link struct {
	net  *Network
	Spec topo.Link
	// name is the "v1->v2" label, rendered once at construction so the
	// drop path (which reports it per packet) stays allocation-free.
	name string

	// capBytes is the queue capacity actually in force.
	capBytes unit.ByteSize
	aqm      AQM

	q            []*packet.Packet
	head         int
	queuedBytes  unit.ByteSize
	transmitting bool
	lastIdleAt   sim.Time

	// txPkt/txTime hold the frame currently serialising and its committed
	// transmission time; infl/inflHead is the FIFO of frames that left the
	// transmitter and are still propagating. Together with the pre-bound
	// txDone/arrive callbacks they make a packet's whole transit —
	// serialisation completion plus propagation arrival — schedule on
	// pooled event nodes with zero heap allocations.
	txPkt    *packet.Packet
	txTime   time.Duration
	infl     []*packet.Packet
	inflHead int
	txDone   txDoneCallback
	arrive   arriveCallback

	// memoSize/memoRate/memoTx memoise the last TxTime computation:
	// traffic on a link is overwhelmingly one or two packet sizes, and the
	// cached value is the exact duration the division produced, so reuse
	// is bit-identical.
	memoSize unit.ByteSize
	memoRate unit.Rate
	memoTx   time.Duration

	// down marks the link administratively dead (dynamic LinkDown event).
	down bool
	// cut latches, at SetDown time, that the frame currently serialising
	// was severed — a link_up before its tx-completion must not resurrect
	// it.
	cut bool
	// lastArrivalAt is the latest scheduled arrival at the far node, so a
	// runtime delay cut cannot make a later frame overtake an in-flight one.
	lastArrivalAt sim.Time

	lossProb float64
	lossRng  *sim.Rand

	Counters LinkCounters
}

func newLink(n *Network, spec topo.Link) *Link {
	cap := spec.Queue
	if cap <= 0 {
		cap = spec.Rate.Bytes(DefaultQueueTime)
		if cap < MinQueue {
			cap = MinQueue
		}
	}
	l := &Link{
		net:      n,
		Spec:     spec,
		capBytes: cap,
		aqm:      DropTail{},
		Counters: LinkCounters{Drops: make(map[DropReason]uint64)},
	}
	l.name = fmt.Sprintf("%s->%s", n.Graph.Node(spec.From).Name, n.Graph.Node(spec.To).Name)
	l.txDone.l = l
	l.arrive.l = l
	return l
}

// txDoneCallback adapts serialisation completion to sim.Callback: one
// frame serialises at a time, so the link itself carries the in-flight
// frame and no closure is needed.
type txDoneCallback struct{ l *Link }

// Run implements sim.Callback.
func (c *txDoneCallback) Run(now sim.Time) { c.l.finishTx(now) }

// arriveCallback adapts propagation arrival to sim.Callback. Arrivals on
// one link fire in transmit order (times are clamped monotone and the
// loop breaks ties by scheduling sequence), so the link's in-flight FIFO
// identifies the arriving frame without a per-event closure.
type arriveCallback struct{ l *Link }

// Run implements sim.Callback.
func (c *arriveCallback) Run(sim.Time) { c.l.arrival() }

// Name renders "v1->v2" for stats and drop reporting.
func (l *Link) Name() string { return l.name }

// QueueCap returns the queue capacity in force (after defaulting).
func (l *Link) QueueCap() unit.ByteSize { return l.capBytes }

// QueuedBytes returns the instantaneous queue occupancy.
func (l *Link) QueuedBytes() unit.ByteSize { return l.queuedBytes }

// SetAQM replaces the admission policy (default DropTail).
func (l *Link) SetAQM(a AQM) { l.aqm = a }

// SetLoss configures an independent random loss probability per packet,
// modelling a lossy (wireless) channel.
func (l *Link) SetLoss(p float64, rng *sim.Rand) {
	l.lossProb = p
	l.lossRng = rng
}

// SetLossProb changes the loss probability at run time, keeping the RNG
// stream installed by SetLoss so the run stays reproducible. The link must
// have an RNG before a positive probability is set (dynamics pre-installs
// one for every loss-event target before the simulation starts).
func (l *Link) SetLossProb(p float64) {
	if p > 0 && l.lossRng == nil {
		panic("netem: SetLossProb without an RNG; call SetLoss first")
	}
	l.lossProb = p
}

// LossProb returns the loss probability currently in force.
func (l *Link) LossProb() float64 { return l.lossProb }

// HasLossRng reports whether a loss RNG stream is installed.
func (l *Link) HasLossRng() bool { return l.lossRng != nil }

// SetRate changes the link capacity at run time (a capacity renegotiation
// or a degraded radio). The frame being serialised completes at the old
// rate — its transmission time was committed when it started — and every
// later frame is paced at the new rate. The queue capacity is unchanged:
// buffer memory does not come and go with the line rate. Rates must be
// positive; use SetDown for an outage.
func (l *Link) SetRate(r unit.Rate) {
	if r <= 0 {
		panic("netem: SetRate needs a positive rate; use SetDown for outages")
	}
	l.Spec.Rate = r
}

// SetDelay changes the one-way propagation delay at run time. Frames
// already propagating keep their committed arrival times; if the delay
// shrinks, the next arrivals are clamped to the latest in-flight arrival so
// the link never reorders (FIFO is preserved by construction).
func (l *Link) SetDelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	l.Spec.Delay = d
}

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// SetDown takes the link down: the transmit queue is drained (every queued
// packet dropped with DropLinkDown), a frame mid-serialisation is cut (it
// never reaches the far node), and packets arriving while down are dropped
// on admission. Frames that already left the transmitter are past the cut
// and still propagate.
func (l *Link) SetDown() {
	l.down = true
	if l.transmitting {
		l.cut = true
	}
	for l.queueLen() > 0 {
		pkt := l.pop()
		l.queuedBytes -= pkt.Size()
		l.drop(pkt, DropLinkDown)
	}
}

// SetUp restores a downed link. The queue starts empty; the transmitter
// resumes as new packets arrive.
func (l *Link) SetUp() {
	if !l.down {
		return
	}
	l.down = false
	l.lastIdleAt = l.net.Loop.Now()
	l.startTx()
}

// Utilisation returns the fraction of the elapsed simulation time the
// transmitter was busy.
func (l *Link) Utilisation() float64 {
	now := l.net.Loop.Now()
	if now == 0 {
		return 0
	}
	return float64(l.Counters.Busy) / float64(now.Duration())
}

func (l *Link) drop(pkt *packet.Packet, reason DropReason) {
	l.Counters.Drops[reason]++
	l.net.tapDrop(l.Name(), pkt, reason)
}

// QueueLen returns the number of packets waiting in the transmit queue
// (excluding a frame mid-serialisation).
func (l *Link) QueueLen() int { return l.queueLen() }

// Transmitting reports whether a frame is being serialised right now.
func (l *Link) Transmitting() bool { return l.transmitting }

// enqueue admits a packet to the transmit queue.
func (l *Link) enqueue(pkt *packet.Packet) {
	l.Counters.Offered++
	if l.down {
		l.drop(pkt, DropLinkDown)
		return
	}
	if l.lossProb > 0 && l.lossRng != nil && l.lossRng.Bool(l.lossProb) {
		l.drop(pkt, DropRandom)
		return
	}
	if l.aqm.OnEnqueue(l, pkt) {
		l.drop(pkt, DropAQM)
		return
	}
	if l.queuedBytes+pkt.Size() > l.capBytes {
		l.drop(pkt, DropQueueFull)
		return
	}
	l.q = append(l.q, pkt)
	l.queuedBytes += pkt.Size()
	if l.queuedBytes > l.Counters.MaxQueue {
		l.Counters.MaxQueue = l.queuedBytes
	}
	l.startTx()
}

func (l *Link) pop() *packet.Packet {
	pkt := l.q[l.head]
	l.q[l.head] = nil
	l.head++
	if l.head == len(l.q) {
		l.q = l.q[:0]
		l.head = 0
	} else if l.head > 256 && l.head*2 >= len(l.q) {
		l.q = append(l.q[:0], l.q[l.head:]...)
		l.head = 0
	}
	return pkt
}

func (l *Link) queueLen() int { return len(l.q) - l.head }

func (l *Link) startTx() {
	if l.down || l.transmitting || l.queueLen() == 0 {
		return
	}
	l.transmitting = true
	pkt := l.pop()
	sz := pkt.Size()
	l.queuedBytes -= sz
	l.txPkt = pkt
	if sz != l.memoSize || l.Spec.Rate != l.memoRate {
		l.memoSize, l.memoRate = sz, l.Spec.Rate
		l.memoTx = l.Spec.Rate.TxTime(sz)
	}
	l.txTime = l.memoTx
	l.net.Loop.ScheduleCall(l.txTime, &l.txDone)
}

// finishTx runs when the last bit of the serialising frame leaves the
// transmitter.
func (l *Link) finishTx(now sim.Time) {
	pkt := l.txPkt
	l.txPkt = nil
	l.Counters.Busy += l.txTime
	l.transmitting = false
	if l.down || l.cut {
		// The wire was cut mid-frame: the bits never arrive, even if
		// the link already came back up.
		l.cut = false
		l.drop(pkt, DropLinkDown)
		// A no-op while down; resumes any queue built up after an
		// early SetUp.
		l.startTx()
		return
	}
	l.Counters.TxPackets++
	l.Counters.TxBytes += uint64(pkt.Size())
	l.net.tapTransmit(l, pkt)
	// Propagate towards the far node while the transmitter moves on.
	// Arrival is clamped to the latest in-flight arrival so a runtime
	// delay cut cannot reorder frames (equal times keep FIFO by
	// scheduling sequence).
	arriveAt := now.Add(l.Spec.Delay)
	if arriveAt < l.lastArrivalAt {
		arriveAt = l.lastArrivalAt
	}
	l.lastArrivalAt = arriveAt
	l.net.propagating++
	l.infl = append(l.infl, pkt)
	l.net.Loop.AtCall(arriveAt, &l.arrive)
	if l.queueLen() == 0 {
		l.lastIdleAt = now
	}
	l.startTx()
}

// arrival runs when the in-flight FIFO's head frame reaches the far node.
func (l *Link) arrival() {
	pkt := l.infl[l.inflHead]
	l.infl[l.inflHead] = nil
	l.inflHead++
	if l.inflHead == len(l.infl) {
		l.infl = l.infl[:0]
		l.inflHead = 0
	} else if l.inflHead > 256 && l.inflHead*2 >= len(l.infl) {
		l.infl = append(l.infl[:0], l.infl[l.inflHead:]...)
		l.inflHead = 0
	}
	l.net.propagating--
	l.net.tapArrive(l, pkt)
	l.net.nodes[l.Spec.To].receive(pkt)
}

// RED is the classic Random Early Detection manager (Floyd & Jacobson
// 1993): it tracks an EWMA of the queue length and drops arriving packets
// with rising probability between MinTh and MaxTh, desynchronising TCP
// flows before the queue overflows.
type RED struct {
	// MinTh and MaxTh are the average-queue thresholds in bytes.
	MinTh, MaxTh unit.ByteSize
	// MaxP is the drop probability at MaxTh.
	MaxP float64
	// Wq is the EWMA weight for the average queue size.
	Wq float64

	rng   *sim.Rand
	avg   float64
	count int
}

// NewRED returns a RED policy with thresholds derived from the link's
// queue capacity (min 25%, max 75%) and standard parameters.
func NewRED(l *Link, rng *sim.Rand) *RED {
	return &RED{
		MinTh: l.QueueCap() / 4,
		MaxTh: l.QueueCap() * 3 / 4,
		MaxP:  0.1,
		Wq:    0.002,
		rng:   rng,
		count: -1,
	}
}

// Name implements AQM.
func (r *RED) Name() string { return "red" }

// AvgQueue exposes the smoothed queue estimate for tests and stats.
func (r *RED) AvgQueue() float64 { return r.avg }

// OnEnqueue implements AQM.
func (r *RED) OnEnqueue(l *Link, pkt *packet.Packet) bool {
	q := float64(l.QueuedBytes())
	if l.queueLen() == 0 && !l.transmitting {
		// Idle decay: pretend small packets drained at line rate while idle.
		idle := l.net.Loop.Now().Sub(l.lastIdleAt)
		if idle > 0 {
			drained := float64(l.Spec.Rate.Bytes(idle))
			m := drained / 500
			r.avg *= math.Pow(1-r.Wq, m)
		}
	} else {
		r.avg = (1-r.Wq)*r.avg + r.Wq*q
	}
	switch {
	case r.avg < float64(r.MinTh):
		r.count = -1
		return false
	case r.avg >= float64(r.MaxTh):
		r.count = 0
		return true
	default:
		r.count++
		pb := r.MaxP * (r.avg - float64(r.MinTh)) / float64(r.MaxTh-r.MinTh)
		pa := pb / math.Max(1-float64(r.count)*pb, 1e-9)
		if r.rng.Bool(pa) {
			r.count = 0
			return true
		}
		return false
	}
}
