package netem

import (
	"testing"
	"time"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// recorder is a Tap that logs every event with its virtual time.
type recorder struct {
	loop     *sim.Loop
	tx       []sim.Time
	delivers []sim.Time
	drops    []DropReason
	dropLocs []string
}

func (r *recorder) OnTransmit(l *Link, p *packet.Packet) { r.tx = append(r.tx, r.loop.Now()) }
func (r *recorder) OnDeliver(n *Node, p *packet.Packet) {
	r.delivers = append(r.delivers, r.loop.Now())
}
func (r *recorder) OnDrop(where string, p *packet.Packet, reason DropReason) {
	r.drops = append(r.drops, reason)
	r.dropLocs = append(r.dropLocs, where)
}

// sink records delivered packets in arrival order.
type sink struct {
	loop *sim.Loop
	pkts []*packet.Packet
	at   []sim.Time
}

func (s *sink) Deliver(p *packet.Packet) {
	s.pkts = append(s.pkts, p)
	s.at = append(s.at, s.loop.Now())
}

// lineNet builds a -> b -> c with the given rate/delay on both hops and a
// tag-1 route from a to c plus reverse.
func lineNet(t *testing.T, rate unit.Rate, delay time.Duration, queue unit.ByteSize) (*sim.Loop, *Network, *Node, *Node, packet.Addr, packet.Addr) {
	t.Helper()
	g := topo.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b, rate, delay, queue)
	bc := g.AddLink(b, c, rate, delay, queue)
	g.AddLink(c, b, rate, delay, queue)
	g.AddLink(b, a, rate, delay, queue)

	loop := sim.NewLoop()
	tt := route.NewTagTable(g)
	net, err := New(loop, g, tt)
	if err != nil {
		t.Fatal(err)
	}
	aAddr := net.AssignAddr(a)
	cAddr := net.AssignAddr(c)
	fwd := topo.Path{Nodes: []topo.NodeID{a, b, c}, Links: []topo.LinkID{ab, bc}}
	if err := tt.AddPath(cAddr, 1, fwd); err != nil {
		t.Fatal(err)
	}
	rev, err := topo.ReversePath(g, fwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.AddPath(aAddr, 1, rev); err != nil {
		t.Fatal(err)
	}
	return loop, net, net.Node(a), net.Node(c), aAddr, cAddr
}

func dataPkt(src, dst packet.Addr, tag packet.Tag, payload int) *packet.Packet {
	return &packet.Packet{
		IP:         packet.IPv4{Tag: tag, Proto: packet.ProtoUDP, Src: src, Dst: dst},
		UDP:        &packet.UDP{SrcPort: 9000, DstPort: 9001},
		PayloadLen: payload,
	}
}

func TestStoreAndForwardTiming(t *testing.T) {
	// 1 Mbps, 5 ms per hop; packet 1250B incl. headers => tx 10 ms per hop.
	loop, _, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, 5*time.Millisecond, 100*unit.KB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	p := dataPkt(aAddr, cAddr, 1, 1250-packet.IPv4HeaderLen-packet.UDPHeaderLen)
	loop.Schedule(0, func() { a.Send(p) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.pkts))
	}
	want := sim.Time(30 * time.Millisecond) // 2*(10ms tx + 5ms prop)
	if s.at[0] != want {
		t.Fatalf("delivery at %v, want %v", s.at[0], want)
	}
}

func TestPipelining(t *testing.T) {
	// Two packets back to back: the second's arrival is one tx-time after
	// the first (pipelined across the two hops).
	loop, _, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, 5*time.Millisecond, 100*unit.KB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(0, func() {
		a.Send(dataPkt(aAddr, cAddr, 1, payload))
		a.Send(dataPkt(aAddr, cAddr, 1, payload))
	})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.at))
	}
	if s.at[0] != sim.Time(30*time.Millisecond) || s.at[1] != sim.Time(40*time.Millisecond) {
		t.Fatalf("arrivals %v, want [30ms 40ms]", s.at)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	loop, _, a, c, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond, unit.MB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	const n = 50
	loop.Schedule(0, func() {
		for i := 0; i < n; i++ {
			a.Send(dataPkt(aAddr, cAddr, 1, 100+i))
		}
	})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != n {
		t.Fatalf("delivered %d, want %d", len(s.pkts), n)
	}
	for i, p := range s.pkts {
		if p.PayloadLen != 100+i {
			t.Fatalf("packet %d out of order (payload %d)", i, p.PayloadLen)
		}
	}
}

func TestQueueOverflowDropsTail(t *testing.T) {
	// Queue of ~3 packets at 1 Mbps: a burst of 10 must lose some.
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, 4000)
	rec := &recorder{loop: loop}
	net.AttachTap(rec)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			a.Send(dataPkt(aAddr, cAddr, 1, payload))
		}
	})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 in flight + floor(4000/1250)=3 queued = 4 survive.
	if len(s.pkts) != 4 {
		t.Fatalf("delivered %d, want 4", len(s.pkts))
	}
	if len(rec.drops) != 6 {
		t.Fatalf("drops %d, want 6", len(rec.drops))
	}
	for _, r := range rec.drops {
		if r != DropQueueFull {
			t.Fatalf("drop reason %v, want queue-full", r)
		}
	}
	ab := net.Link(0)
	if ab.Counters.Drops[DropQueueFull] != 6 {
		t.Fatalf("link counter = %d, want 6", ab.Counters.Drops[DropQueueFull])
	}
	if ab.Counters.TxPackets != 4 {
		t.Fatalf("TxPackets = %d, want 4", ab.Counters.TxPackets)
	}
}

func TestNoRouteDrop(t *testing.T) {
	loop, net, a, _, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, unit.MB)
	rec := &recorder{loop: loop}
	net.AttachTap(rec)
	loop.Schedule(0, func() { a.Send(dataPkt(aAddr, cAddr, 42, 100)) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.drops) != 1 || rec.drops[0] != DropNoRoute {
		t.Fatalf("drops = %v, want [no-route]", rec.drops)
	}
}

func TestNoHandlerDrop(t *testing.T) {
	loop, net, a, _, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, unit.MB)
	rec := &recorder{loop: loop}
	net.AttachTap(rec)
	// Nothing registered at port 9001 on c.
	loop.Schedule(0, func() { a.Send(dataPkt(aAddr, cAddr, 1, 100)) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.drops) != 1 || rec.drops[0] != DropNoHandler {
		t.Fatalf("drops = %v, want [no-handler]", rec.drops)
	}
}

// loopingRouter bounces every packet back and forth between two nodes.
type loopingRouter struct{ l0, l1 topo.LinkID }

func (r *loopingRouter) NextLink(n topo.NodeID, pkt *packet.Packet) (topo.LinkID, error) {
	if n == 0 {
		return r.l0, nil
	}
	return r.l1, nil
}

func TestTTLExpiry(t *testing.T) {
	g := topo.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	ab, ba := g.AddDuplex(a, b, unit.Gbps, time.Microsecond, unit.MB)
	loop := sim.NewLoop()
	net, err := New(loop, g, &loopingRouter{l0: ab, l1: ba})
	if err != nil {
		t.Fatal(err)
	}
	src := net.AssignAddr(a)
	rec := &recorder{loop: loop}
	net.AttachTap(rec)
	p := dataPkt(src, packet.MakeAddr(99, 9, 9, 9), 1, 10)
	loop.Schedule(0, func() { net.Node(a).Send(p) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rec.drops) != 1 || rec.drops[0] != DropTTL {
		t.Fatalf("drops = %v, want [ttl]", rec.drops)
	}
	if p.IP.TTL != 0 {
		t.Fatalf("TTL = %d after expiry", p.IP.TTL)
	}
}

func TestRandomLoss(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Gbps, time.Microsecond, unit.MB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	net.Link(0).SetLoss(0.5, sim.NewRand(1))
	const n = 2000
	loop.Schedule(0, func() {
		for i := 0; i < n; i++ {
			a.Send(dataPkt(aAddr, cAddr, 1, 100))
		}
	})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	got := len(s.pkts)
	if got < n*4/10 || got > n*6/10 {
		t.Fatalf("survivors = %d/%d, want about half", got, n)
	}
	if net.Link(0).Counters.Drops[DropRandom] != uint64(n-got) {
		t.Fatal("random-loss counter inconsistent")
	}
}

func TestUtilisationSaturated(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, unit.MB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(0, func() {
		for i := 0; i < 100; i++ {
			a.Send(dataPkt(aAddr, cAddr, 1, payload))
		}
	})
	// 100 packets * 10ms = 1s of tx time on link a->b.
	if err := loop.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	u := net.Link(0).Utilisation()
	if u < 0.97 || u > 1.001 {
		t.Fatalf("utilisation = %v, want ~1", u)
	}
}

func TestTapOrderingAndTimestamps(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, 5*time.Millisecond, unit.MB)
	rec := &recorder{loop: loop}
	net.AttachTap(rec)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(0, func() { a.Send(dataPkt(aAddr, cAddr, 1, payload)) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	// Two transmissions (a->b, b->c) then one delivery.
	if len(rec.tx) != 2 || len(rec.delivers) != 1 {
		t.Fatalf("tx=%d deliver=%d", len(rec.tx), len(rec.delivers))
	}
	if rec.tx[0] != sim.Time(10*time.Millisecond) || rec.tx[1] != sim.Time(25*time.Millisecond) {
		t.Fatalf("tx times %v", rec.tx)
	}
	if rec.delivers[0] != sim.Time(30*time.Millisecond) {
		t.Fatalf("deliver time %v", rec.delivers[0])
	}
}

func TestPortCollisionRejected(t *testing.T) {
	_, _, _, c, _, _ := lineNet(t, unit.Mbps, time.Millisecond, unit.MB)
	if err := c.Register(9001, &sink{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(9001, &sink{}); err == nil {
		t.Fatal("duplicate Register accepted")
	}
	c.Unregister(9001)
	if err := c.Register(9001, &sink{}); err != nil {
		t.Fatal("Register after Unregister failed")
	}
}

func TestREDDropsEarly(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, 50*unit.KB)
	red := NewRED(net.Link(0), sim.NewRand(7))
	// The standard Wq=0.002 averages over ~500 packets; this test offers a
	// few hundred, so use a faster EWMA to exercise the early-drop region.
	red.Wq = 0.05
	net.Link(0).SetAQM(red)
	rec := &recorder{loop: loop}
	net.AttachTap(rec)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	// Offer 2x the link rate for 2 seconds: RED must drop before overflow.
	var i int
	var feed func()
	feed = func() {
		a.Send(dataPkt(aAddr, cAddr, 1, payload))
		i++
		if i < 400 {
			loop.Schedule(5*time.Millisecond, feed)
		}
	}
	loop.Schedule(0, feed)
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	aqmDrops := net.Link(0).Counters.Drops[DropAQM]
	overflow := net.Link(0).Counters.Drops[DropQueueFull]
	if aqmDrops == 0 {
		t.Fatal("RED never dropped")
	}
	if overflow > aqmDrops {
		t.Fatalf("overflow drops (%d) dominate AQM drops (%d): RED ineffective", overflow, aqmDrops)
	}
	if red.AvgQueue() <= 0 {
		t.Fatal("RED average never moved")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []sim.Time {
		loop, net, a, c, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond, 20*unit.KB)
		net.Link(0).SetLoss(0.1, sim.NewRand(99))
		s := &sink{loop: loop}
		if err := c.Register(9001, s); err != nil {
			t.Fatal(err)
		}
		loop.Schedule(0, func() {
			for i := 0; i < 200; i++ {
				a.Send(dataPkt(aAddr, cAddr, 1, 1000))
			}
		})
		if err := loop.Run(); err != nil {
			t.Fatal(err)
		}
		return s.at
	}
	a1, a2 := run(), run()
	if len(a1) != len(a2) {
		t.Fatalf("runs differ in length: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}

func TestAutoQueueSizing(t *testing.T) {
	g := topo.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	g.AddLink(a, b, 100*unit.Mbps, time.Millisecond, 0) // auto
	g.AddLink(b, a, unit.Kbps, time.Millisecond, 0)     // auto, tiny rate
	net, err := New(sim.NewLoop(), g, route.NewTagTable(g))
	if err != nil {
		t.Fatal(err)
	}
	// 100 Mbps * 10 ms = 125000 bytes.
	if got := net.Link(0).QueueCap(); got != 125000 {
		t.Fatalf("auto queue = %d, want 125000", got)
	}
	// Tiny link clamps to the minimum.
	if got := net.Link(1).QueueCap(); got != MinQueue {
		t.Fatalf("min queue = %d, want %d", got, MinQueue)
	}
}

func TestCoDelControlsQueueDelay(t *testing.T) {
	// Offer 1.25x the link rate for 3 s: the backlog stays within the
	// 100KB buffer, so DropTail never drops and the standing queue keeps
	// growing; CoDel must intervene and hold the queue shorter. (Against
	// a heavily unresponsive flood CoDel degrades to tail-drop by design,
	// so a moderate overload is the discriminating case.)
	run := func(useCoDel bool) (drops uint64, maxQueue unit.ByteSize) {
		loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, 100*unit.KB)
		if useCoDel {
			net.Link(0).SetAQM(NewCoDel(loop))
		}
		s := &sink{loop: loop}
		if err := c.Register(9001, s); err != nil {
			t.Fatal(err)
		}
		payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
		var i int
		var feed func()
		feed = func() {
			a.Send(dataPkt(aAddr, cAddr, 1, payload))
			i++
			if i < 375 {
				loop.Schedule(8*time.Millisecond, feed)
			}
		}
		loop.Schedule(0, feed)
		if err := loop.Run(); err != nil {
			t.Fatal(err)
		}
		var d uint64
		for _, v := range net.Link(0).Counters.Drops {
			d += v
		}
		return d, net.Link(0).Counters.MaxQueue
	}
	tailDrops, tailMax := run(false)
	codelDrops, codelMax := run(true)
	if tailDrops != 0 {
		t.Fatalf("DropTail dropped %d — overload exceeds the buffer, test miscalibrated", tailDrops)
	}
	if codelDrops == 0 {
		t.Fatal("CoDel never dropped under persistent overload")
	}
	if codelMax >= tailMax {
		t.Fatalf("CoDel queue high-water %v not below DropTail %v", codelMax, tailMax)
	}
}

func TestCoDelIdleBelowTarget(t *testing.T) {
	// At light load CoDel must never drop.
	loop, net, a, c, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond, 100*unit.KB)
	net.Link(0).SetAQM(NewCoDel(loop))
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	var i int
	var feed func()
	feed = func() {
		a.Send(dataPkt(aAddr, cAddr, 1, 1000))
		i++
		if i < 100 {
			loop.Schedule(10*time.Millisecond, feed)
		}
	}
	loop.Schedule(0, feed)
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != 100 {
		t.Fatalf("light load lost packets: %d/100", len(s.pkts))
	}
}

func TestLinkDownDrainsQueueAndCutsFrame(t *testing.T) {
	// 1 Mbps => 10 ms per 1250B frame. Burst of 5, link down at 15 ms:
	// frame 1 left the transmitter (propagating: survives), frame 2 is
	// mid-serialisation (cut), frames 3-5 are queued (drained).
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, 5*time.Millisecond, 100*unit.KB)
	rec := &recorder{loop: loop}
	net.AttachTap(rec)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(0, func() {
		for i := 0; i < 5; i++ {
			a.Send(dataPkt(aAddr, cAddr, 1, payload))
		}
	})
	ab := net.Link(0)
	loop.Schedule(15*time.Millisecond, ab.SetDown)
	// A late packet offered to the dead link is dropped on admission.
	loop.Schedule(30*time.Millisecond, func() { a.Send(dataPkt(aAddr, cAddr, 1, payload)) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d, want 1 (only the frame already past the cut)", len(s.pkts))
	}
	if !ab.Down() {
		t.Fatal("link not down")
	}
	if got := ab.Counters.Drops[DropLinkDown]; got != 5 {
		t.Fatalf("link-down drops = %d, want 5 (3 queued + 1 cut + 1 late)", got)
	}
	if ab.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: %v", ab.QueuedBytes())
	}
}

func TestLinkUpResumesTraffic(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, 100*unit.KB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	ab := net.Link(0)
	loop.Schedule(0, ab.SetDown)
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(10*time.Millisecond, func() { a.Send(dataPkt(aAddr, cAddr, 1, payload)) })
	loop.Schedule(20*time.Millisecond, ab.SetUp)
	loop.Schedule(30*time.Millisecond, func() { a.Send(dataPkt(aAddr, cAddr, 1, payload)) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d, want 1 (the packet sent after SetUp)", len(s.pkts))
	}
	if ab.Counters.Drops[DropLinkDown] != 1 {
		t.Fatalf("link-down drops = %d, want 1", ab.Counters.Drops[DropLinkDown])
	}
}

func TestSetRateRepacesNextFrame(t *testing.T) {
	// Two back-to-back 1250B frames at 1 Mbps (10 ms each). Rate doubles at
	// 5 ms: frame 1 completes at the committed 10 ms pace, frame 2 at 5 ms.
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, 100*unit.KB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(0, func() {
		a.Send(dataPkt(aAddr, cAddr, 1, payload))
		a.Send(dataPkt(aAddr, cAddr, 1, payload))
	})
	loop.Schedule(5*time.Millisecond, func() {
		net.Link(0).SetRate(2 * unit.Mbps)
		net.Link(1).SetRate(2 * unit.Mbps)
	})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.at))
	}
	// Frame 1: 10ms (a->b, old rate) + 1ms + 5ms (b->c, new rate) + 1ms = 17ms.
	// Frame 2: starts a->b at 10ms at the new rate (5ms), b->c 5ms: 22ms.
	if s.at[0] != sim.Time(17*time.Millisecond) || s.at[1] != sim.Time(22*time.Millisecond) {
		t.Fatalf("arrivals %v, want [17ms 22ms]", s.at)
	}
}

func TestSetDelayNeverReorders(t *testing.T) {
	// A large delay cut between two frames: without the arrival clamp the
	// second frame would overtake the first inside the wire.
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, 50*time.Millisecond, 100*unit.KB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	loop.Schedule(0, func() {
		a.Send(dataPkt(aAddr, cAddr, 1, 100))
		a.Send(dataPkt(aAddr, cAddr, 1, 200))
	})
	loop.Schedule(time.Millisecond, func() {
		net.Link(0).SetDelay(time.Microsecond)
		net.Link(1).SetDelay(time.Microsecond)
	})
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != 2 {
		t.Fatalf("delivered %d, want 2", len(s.pkts))
	}
	if s.pkts[0].PayloadLen != 100 || s.pkts[1].PayloadLen != 200 {
		t.Fatalf("reordered: payloads %d, %d", s.pkts[0].PayloadLen, s.pkts[1].PayloadLen)
	}
	if s.at[1] < s.at[0] {
		t.Fatalf("arrival times inverted: %v", s.at)
	}
}

func TestSetLossProbRuntimeChange(t *testing.T) {
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Gbps, time.Microsecond, unit.MB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	ab := net.Link(0)
	ab.SetLoss(0, sim.NewRand(5))
	if !ab.HasLossRng() {
		t.Fatal("loss RNG not installed")
	}
	const n = 500
	send := func() {
		for i := 0; i < n; i++ {
			a.Send(dataPkt(aAddr, cAddr, 1, 100))
		}
	}
	loop.Schedule(0, send)                                           // lossless phase
	loop.Schedule(10*time.Millisecond, func() { ab.SetLossProb(1) }) // total loss
	loop.Schedule(20*time.Millisecond, send)                         // all dropped
	loop.Schedule(30*time.Millisecond, func() { ab.SetLossProb(0) }) // restored
	loop.Schedule(40*time.Millisecond, send)                         // lossless again
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != 2*n {
		t.Fatalf("delivered %d, want %d", len(s.pkts), 2*n)
	}
	if ab.Counters.Drops[DropRandom] != n {
		t.Fatalf("random drops = %d, want %d", ab.Counters.Drops[DropRandom], n)
	}
	if ab.LossProb() != 0 {
		t.Fatalf("loss prob = %v after restore", ab.LossProb())
	}
}

func TestCutFrameStaysCutAcrossQuickUp(t *testing.T) {
	// 1 Mbps => 10 ms per 1250B frame. The frame starts at t=0; the link
	// flaps down at 2 ms and up at 5 ms, both before tx-completion at
	// 10 ms: the severed frame must not be resurrected, but a packet sent
	// after the flap must flow.
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, 100*unit.KB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	ab := net.Link(0)
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(0, func() { a.Send(dataPkt(aAddr, cAddr, 1, payload)) })
	loop.Schedule(2*time.Millisecond, ab.SetDown)
	loop.Schedule(5*time.Millisecond, ab.SetUp)
	loop.Schedule(20*time.Millisecond, func() { a.Send(dataPkt(aAddr, cAddr, 1, payload)) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d, want 1 (the post-flap packet only)", len(s.pkts))
	}
	if ab.Counters.Drops[DropLinkDown] != 1 {
		t.Fatalf("link-down drops = %d, want 1 (the cut frame)", ab.Counters.Drops[DropLinkDown])
	}
	// The resurrected-frame bug would also have counted it as transmitted.
	if ab.Counters.TxPackets != 1 {
		t.Fatalf("TxPackets = %d, want 1", ab.Counters.TxPackets)
	}
}

func TestQueueAfterQuickUpResumesOnCutCompletion(t *testing.T) {
	// A packet enqueued between SetUp and the severed frame's
	// tx-completion must not stall waiting for another enqueue.
	loop, net, a, c, aAddr, cAddr := lineNet(t, unit.Mbps, time.Millisecond, 100*unit.KB)
	s := &sink{loop: loop}
	if err := c.Register(9001, s); err != nil {
		t.Fatal(err)
	}
	ab := net.Link(0)
	payload := 1250 - packet.IPv4HeaderLen - packet.UDPHeaderLen
	loop.Schedule(0, func() { a.Send(dataPkt(aAddr, cAddr, 1, payload)) })
	loop.Schedule(2*time.Millisecond, ab.SetDown)
	loop.Schedule(5*time.Millisecond, ab.SetUp)
	// Enqueued at 7 ms: before the cut frame's completion at 10 ms.
	loop.Schedule(7*time.Millisecond, func() { a.Send(dataPkt(aAddr, cAddr, 1, payload)) })
	if err := loop.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.pkts) != 1 {
		t.Fatalf("delivered %d, want 1 (queued packet resumed after the cut)", len(s.pkts))
	}
}
