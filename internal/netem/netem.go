// Package netem animates a topo.Graph on a sim.Loop: it instantiates every
// directed link as a store-and-forward transmitter with a finite queue,
// every node as a forwarding engine with a local transport demultiplexer,
// and routes packets with a route.Router.
//
// It replaces the paper's Mininet substrate. The model is the standard
// output-queued router: a packet arriving at a node is either delivered to
// a registered local handler (host) or forwarded; forwarding enqueues it at
// the chosen link, which serialises packets at the link rate and delivers
// them one propagation delay later. Queue overflow drops the arriving
// packet (DropTail) or earlier ones (RED), which is where TCP's congestion
// signal comes from.
//
// Taps observe transmissions, deliveries and drops; the capture package
// builds its tshark equivalent on top of them.
package netem

import (
	"fmt"
	"time"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// DropReason classifies why a packet was lost.
type DropReason int

// Drop reasons.
const (
	// DropQueueFull: the link's transmit queue had no room (DropTail).
	DropQueueFull DropReason = iota
	// DropAQM: the active queue manager chose to drop (RED).
	DropAQM
	// DropNoRoute: the router had no entry for (dst, tag).
	DropNoRoute
	// DropTTL: the TTL reached zero.
	DropTTL
	// DropNoHandler: the packet reached its host but no transport handler
	// claimed it.
	DropNoHandler
	// DropRandom: the link's random loss model fired (wireless).
	DropRandom
	// DropLinkDown: the link was administratively down (dynamic event) —
	// the queue was drained, a frame was cut mid-serialisation, or the
	// packet arrived at a dead transmitter.
	DropLinkDown
)

// String names the reason.
func (r DropReason) String() string {
	switch r {
	case DropQueueFull:
		return "queue-full"
	case DropAQM:
		return "aqm"
	case DropNoRoute:
		return "no-route"
	case DropTTL:
		return "ttl"
	case DropNoHandler:
		return "no-handler"
	case DropRandom:
		return "random-loss"
	case DropLinkDown:
		return "link-down"
	default:
		return fmt.Sprintf("drop(%d)", int(r))
	}
}

// Tap observes packets at the engine's instrumentation points. Callbacks
// run synchronously inside the event loop; implementations must not block.
type Tap interface {
	// OnTransmit fires when the last bit of pkt leaves link's transmitter.
	OnTransmit(l *Link, pkt *packet.Packet)
	// OnDeliver fires when pkt is handed to a local handler at its
	// destination host.
	OnDeliver(n *Node, pkt *packet.Packet)
	// OnDrop fires when pkt is lost anywhere in the network.
	OnDrop(where string, pkt *packet.Packet, reason DropReason)
}

// SendTap is an optional extension of Tap: taps that also implement it
// observe every packet origination (Node.Send), the instrumentation point
// packet-conservation audits need — every sent packet must later show up
// as exactly one delivery or drop, or still be in the network.
type SendTap interface {
	// OnSend fires when a host originates pkt, after UID stamping.
	OnSend(n *Node, pkt *packet.Packet)
}

// ArrivalTap is an optional extension of Tap: taps that also implement it
// observe every propagation arrival at a link's far node, before the node
// forwards or delivers the packet. FIFO audits use it: arrivals on one
// link must occur in transmit order even across runtime delay changes.
type ArrivalTap interface {
	// OnArrive fires when pkt reaches the far end of link l.
	OnArrive(l *Link, pkt *packet.Packet)
}

// Handler consumes packets delivered to a host's transport layer.
type Handler interface {
	Deliver(pkt *packet.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *packet.Packet)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(pkt *packet.Packet) { f(pkt) }

// DefaultQueueTime sizes queues for links created with Queue == 0: the
// buffer holds this much transmission time worth of bytes (a common router
// provisioning rule of thumb; roughly one BDP for the paper's RTTs).
const DefaultQueueTime = 10 * time.Millisecond

// MinQueue is the smallest automatic queue: a handful of full-size packets
// so even slow links can absorb a burst.
const MinQueue = 10 * 1500 * unit.Byte

// Network is the animated topology.
type Network struct {
	Loop   *sim.Loop
	Graph  *topo.Graph
	Router route.Router

	nodes    []*Node
	links    []*Link
	addr2nod map[packet.Addr]topo.NodeID
	nod2addr map[topo.NodeID]packet.Addr
	// addrNodes mirrors addr2nod as a dense slice: addresses are handed
	// out sequentially from the 10.0.0.0 base, so the per-hop owner
	// lookup in receive is an index, not a map probe.
	addrNodes []topo.NodeID
	taps      []Tap
	// sendTaps and arrivalTaps hold the subset of taps implementing the
	// optional extension interfaces, resolved once at AttachTap.
	sendTaps    []SendTap
	arrivalTaps []ArrivalTap
	// propagating counts packets that left a transmitter and have not yet
	// reached the far node — the in-flight term of conservation audits.
	propagating int
	nextUID     uint64
	nextIP      uint32

	// arena recycles packets and their transport storage across the run.
	// Packets drawn from it are returned at their terminal event: after
	// the local handler consumed a delivery, or after the drop taps ran.
	arena packet.Arena
}

// New animates graph g with the given router on loop l.
func New(l *sim.Loop, g *topo.Graph, r route.Router) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Loop:     l,
		Graph:    g,
		Router:   r,
		addr2nod: make(map[packet.Addr]topo.NodeID),
		nod2addr: make(map[topo.NodeID]packet.Addr),
		nextIP:   uint32(packet.MakeAddr(10, 0, 0, 0)),
	}
	n.nodes = make([]*Node, g.NumNodes())
	for _, nd := range g.Nodes() {
		n.nodes[nd.ID] = &Node{net: n, ID: nd.ID, Name: nd.Name,
			handlers: make(map[packet.Port]Handler)}
	}
	n.links = make([]*Link, g.NumLinks())
	for _, spec := range g.Links() {
		n.links[spec.ID] = newLink(n, spec)
	}
	return n, nil
}

// AttachTap registers a tap on every instrumentation point. Taps that
// also implement SendTap or ArrivalTap are additionally notified of
// packet originations and propagation arrivals.
func (n *Network) AttachTap(t Tap) {
	n.taps = append(n.taps, t)
	if st, ok := t.(SendTap); ok {
		n.sendTaps = append(n.sendTaps, st)
	}
	if at, ok := t.(ArrivalTap); ok {
		n.arrivalTaps = append(n.arrivalTaps, at)
	}
}

// Originated returns the number of packets hosts have sent so far.
func (n *Network) Originated() uint64 { return n.nextUID }

// Propagating returns the number of packets currently between a
// transmitter and the far node (transmitted, arrival still pending).
func (n *Network) Propagating() int { return n.propagating }

// AssignAddr gives node an automatically allocated address (10.0.0.1, .2,
// ...). Assigning twice returns the existing address.
func (n *Network) AssignAddr(node topo.NodeID) packet.Addr {
	if a, ok := n.nod2addr[node]; ok {
		return a
	}
	n.nextIP++
	a := packet.Addr(n.nextIP)
	n.nod2addr[node] = a
	n.addr2nod[a] = node
	n.addrNodes = append(n.addrNodes, node)
	return a
}

// AddrOf returns the address assigned to a node.
func (n *Network) AddrOf(node topo.NodeID) (packet.Addr, bool) {
	a, ok := n.nod2addr[node]
	return a, ok
}

// NodeOf returns the node owning an address.
func (n *Network) NodeOf(a packet.Addr) (topo.NodeID, bool) {
	i := uint32(a) - uint32(packet.MakeAddr(10, 0, 0, 0)) - 1
	if i < uint32(len(n.addrNodes)) {
		return n.addrNodes[i], true
	}
	return 0, false
}

// Arena returns the network's packet arena. Transport stacks and traffic
// sources draw send buffers from it; the engine recycles them when the
// packet dies (delivery or drop), so senders must not touch a packet
// after Send returns.
func (n *Network) Arena() *packet.Arena { return &n.arena }

// Node returns the runtime node for an ID.
func (n *Network) Node(id topo.NodeID) *Node { return n.nodes[id] }

// Link returns the runtime link for an ID.
func (n *Network) Link(id topo.LinkID) *Link { return n.links[id] }

// Links returns all runtime links in ID order.
func (n *Network) Links() []*Link { return n.links }

func (n *Network) tapTransmit(l *Link, pkt *packet.Packet) {
	for _, t := range n.taps {
		t.OnTransmit(l, pkt)
	}
}

func (n *Network) tapDeliver(nd *Node, pkt *packet.Packet) {
	for _, t := range n.taps {
		t.OnDeliver(nd, pkt)
	}
}

// tapDrop is the single choke point every lost packet passes through
// (queue overflow, AQM, no route, TTL, no handler, random loss, link
// down). After the taps have observed the packet it is dead: recycle it.
func (n *Network) tapDrop(where string, pkt *packet.Packet, reason DropReason) {
	for _, t := range n.taps {
		t.OnDrop(where, pkt, reason)
	}
	n.arena.Recycle(pkt)
}

func (n *Network) tapSend(nd *Node, pkt *packet.Packet) {
	for _, t := range n.sendTaps {
		t.OnSend(nd, pkt)
	}
}

func (n *Network) tapArrive(l *Link, pkt *packet.Packet) {
	for _, t := range n.arrivalTaps {
		t.OnArrive(l, pkt)
	}
}

// Node is the runtime state of a topology node: a forwarding engine plus,
// for hosts, a transport demultiplexer keyed by destination port.
type Node struct {
	net  *Network
	ID   topo.NodeID
	Name string

	handlers map[packet.Port]Handler

	// Forwarded counts transit packets, Delivered local deliveries.
	Forwarded, Delivered uint64
}

// Register binds a handler to a local destination port. It fails if the
// port is taken.
func (nd *Node) Register(port packet.Port, h Handler) error {
	if _, dup := nd.handlers[port]; dup {
		return fmt.Errorf("netem: node %s port %d already registered", nd.Name, port)
	}
	nd.handlers[port] = h
	return nil
}

// Unregister releases a local port.
func (nd *Node) Unregister(port packet.Port) { delete(nd.handlers, port) }

// Send originates pkt at this node: it stamps the packet's UID, timestamp
// and TTL, then forwards it. Transport stacks call Send; forwarding between
// routers uses receive internally.
func (nd *Node) Send(pkt *packet.Packet) {
	nd.net.nextUID++
	pkt.UID = nd.net.nextUID
	pkt.SentAt = nd.net.Loop.Now()
	if pkt.IP.TTL == 0 {
		pkt.IP.TTL = packet.DefaultTTL
	}
	nd.net.tapSend(nd, pkt)
	nd.receive(pkt)
}

// receive handles a packet arriving at (or originating from) this node.
func (nd *Node) receive(pkt *packet.Packet) {
	if dstNode, ok := nd.net.NodeOf(pkt.IP.Dst); ok && dstNode == nd.ID {
		nd.deliver(pkt)
		return
	}
	// Transit: decrement TTL, route, enqueue.
	if pkt.IP.TTL == 0 {
		nd.net.tapDrop(nd.Name, pkt, DropTTL)
		return
	}
	pkt.IP.TTL--
	lid, err := nd.net.Router.NextLink(nd.ID, pkt)
	if err != nil {
		nd.net.tapDrop(nd.Name, pkt, DropNoRoute)
		return
	}
	nd.Forwarded++
	nd.net.links[lid].enqueue(pkt)
}

func (nd *Node) deliver(pkt *packet.Packet) {
	var port packet.Port
	switch {
	case pkt.TCP != nil:
		port = pkt.TCP.DstPort
	case pkt.UDP != nil:
		port = pkt.UDP.DstPort
	}
	h, ok := nd.handlers[port]
	if !ok {
		nd.net.tapDrop(nd.Name, pkt, DropNoHandler)
		return
	}
	nd.Delivered++
	nd.net.tapDeliver(nd, pkt)
	h.Deliver(pkt)
	// The packet dies here: taps and the handler have run, and anything
	// they keep is copied. Recycling after Deliver returns means packets
	// the handler sends in response draw from other slots.
	nd.net.arena.Recycle(pkt)
}
