package mptcp

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/tcp"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// paperRig wires the full paper network with an MPTCP sender at s and an
// acceptor at d.
type paperRig struct {
	loop   *sim.Loop
	net    *netem.Network
	pn     *topo.PaperNet
	sender *tcp.Host
	recvr  *tcp.Host
	acc    *Acceptor
	dials  int
}

func newPaperRig(t *testing.T, seed int64) *paperRig {
	t.Helper()
	pn := topo.Paper()
	loop := sim.NewLoop()
	tt := route.NewTagTable(pn.Graph)
	n, err := netem.New(loop, pn.Graph, tt)
	if err != nil {
		t.Fatal(err)
	}
	sh := tcp.NewHost(n, pn.S, sim.NewRand(seed))
	dh := tcp.NewHost(n, pn.D, sim.NewRand(seed+1))
	for i, p := range pn.Paths {
		tag := packet.Tag(i + 1)
		if err := tt.AddPath(dh.Addr, tag, p); err != nil {
			t.Fatal(err)
		}
		rev, err := topo.ReversePath(pn.Graph, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := tt.AddPath(sh.Addr, tag, rev); err != nil {
			t.Fatal(err)
		}
	}
	acc := &Acceptor{}
	if err := Listen(dh, 5001, tcp.Config{}, acc); err != nil {
		t.Fatal(err)
	}
	return &paperRig{loop: loop, net: n, pn: pn, sender: sh, recvr: dh, acc: acc}
}

// paperSubflows returns the three-path subflow set with Path 2 default.
func paperSubflows() []SubflowSpec {
	return []SubflowSpec{
		{Tag: 2, Label: "Path 2"},
		{Tag: 1, Label: "Path 1", StartDelay: time.Millisecond},
		{Tag: 3, Label: "Path 3", StartDelay: 2 * time.Millisecond},
	}
}

func (r *paperRig) dial(t *testing.T, cfg Config) *Conn {
	t.Helper()
	// Each connection gets a distinct key stream, like distinct processes.
	r.dials++
	c, err := Dial(r.sender, sim.NewRand(99+int64(r.dials)), cfg, r.recvr.Addr, 5001)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (r *paperRig) recvConn(t *testing.T) *RecvConn {
	t.Helper()
	for _, rc := range r.acc.Conns() {
		return rc
	}
	t.Fatal("no connection accepted")
	return nil
}

func TestTokenFromKeyDeterministic(t *testing.T) {
	if TokenFromKey(42) != TokenFromKey(42) {
		t.Fatal("token not deterministic")
	}
	if TokenFromKey(1) == TokenFromKey(2) {
		t.Fatal("token collision on trivial keys")
	}
}

func TestSubflowsEstablishWithJoinOptions(t *testing.T) {
	r := newPaperRig(t, 7)
	c := r.dial(t, Config{Algorithm: "cubic", Subflows: paperSubflows()})
	if err := r.loop.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i, sf := range c.Subflows() {
		if sf.TCP == nil || sf.TCP.State() != tcp.StateEstablished {
			t.Fatalf("subflow %d not established", i)
		}
	}
	rc := r.recvConn(t)
	if rc.SubflowCount() != 3 {
		t.Fatalf("receiver saw %d subflows, want 3", rc.SubflowCount())
	}
	// All subflows of one connection share the token.
	if len(r.acc.Conns()) != 1 {
		t.Fatalf("%d connections accepted, want 1", len(r.acc.Conns()))
	}
}

func TestBulkTransferAggregatesPaths(t *testing.T) {
	r := newPaperRig(t, 11)
	c := r.dial(t, Config{Algorithm: "cubic", Subflows: paperSubflows()})
	const dur = 3 * time.Second
	if err := r.loop.RunFor(dur); err != nil {
		t.Fatal(err)
	}
	rc := r.recvConn(t)
	mbps := float64(rc.Delivered) * 8 / dur.Seconds() / 1e6
	// Any single path is capped at 40 (Path 1 and 2) or 60 (Path 3); an
	// aggregate beyond 60 proves multi-path striping works.
	if mbps < 60 {
		t.Fatalf("aggregate goodput = %.1f Mbps, want > 60 (single-path cap)", mbps)
	}
	// The data stream must be delivered without data-level holes.
	if rc.Delivered != rc.DataAck() {
		t.Fatalf("delivered %d != dataack %d", rc.Delivered, rc.DataAck())
	}
	for i, sf := range c.Subflows() {
		if sf.assigned == 0 {
			t.Fatalf("subflow %d carried no data", i)
		}
	}
}

func TestLimitedSourceCompletesExactly(t *testing.T) {
	r := newPaperRig(t, 13)
	src := &fixedData{remaining: 2 * 1024 * 1024}
	r.dial(t, Config{Algorithm: "lia", Subflows: paperSubflows(), Source: src})
	if err := r.loop.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	rc := r.recvConn(t)
	if rc.Delivered != 2*1024*1024 {
		t.Fatalf("delivered %d, want %d", rc.Delivered, 2*1024*1024)
	}
	if rc.DupBytes != 0 {
		t.Fatalf("dup bytes = %d, want 0 without redundant scheduler", rc.DupBytes)
	}
}

type fixedData struct{ remaining int }

func (f *fixedData) NextData(max int) int {
	if f.remaining <= 0 {
		return 0
	}
	n := max
	if f.remaining < n {
		n = f.remaining
	}
	f.remaining -= n
	return n
}

func TestCoupledAlgorithmSharedAcrossSubflows(t *testing.T) {
	r := newPaperRig(t, 17)
	c := r.dial(t, Config{Algorithm: "olia", Subflows: paperSubflows()})
	if err := r.loop.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// All subflows registered with one OLIA instance.
	type flowsLen interface{ Name() string }
	if c.Algorithm().Name() != "olia" {
		t.Fatal("algorithm mismatch")
	}
	// Windows evolve: each subflow's Flow is distinct but shares coupling.
	w := map[float64]bool{}
	for _, sf := range c.Subflows() {
		w[sf.TCP.CwndBytes()] = true
		if sf.TCP.CwndBytes() <= 0 {
			t.Fatal("zero cwnd on established subflow")
		}
	}
	_ = w
}

func TestRedundantSchedulerDuplicates(t *testing.T) {
	r := newPaperRig(t, 19)
	src := &fixedData{remaining: 256 * 1024}
	r.dial(t, Config{Algorithm: "cubic", Scheduler: "redundant",
		Subflows: paperSubflows(), Source: src})
	if err := r.loop.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rc := r.recvConn(t)
	if rc.Delivered != 256*1024 {
		t.Fatalf("delivered %d, want exactly %d (deduplicated)", rc.Delivered, 256*1024)
	}
	if rc.DupBytes == 0 {
		t.Fatal("redundant scheduler produced no duplicates?")
	}
}

func TestSchedulerRegistry(t *testing.T) {
	for _, name := range []string{"", "minrtt", "roundrobin", "rr", "redundant"} {
		if _, err := NewScheduler(name); err != nil {
			t.Fatalf("NewScheduler(%q): %v", name, err)
		}
	}
	if _, err := NewScheduler("blast"); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := Dial(nil, nil, Config{}, 0, 0); err == nil {
		t.Fatal("Dial with no subflows accepted")
	}
}

func TestMinRTTPickOrder(t *testing.T) {
	r := newPaperRig(t, 23)
	c := r.dial(t, Config{Algorithm: "cubic", Subflows: paperSubflows()})
	if err := r.loop.RunFor(300 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	order := c.Scheduler().PickOrder(c.Subflows())
	// Path 2 (one-way 4 ms) must come first.
	if order[0].Spec.Label != "Path 2" {
		got := []string{}
		for _, sf := range order {
			got = append(got, sf.Spec.Label)
		}
		t.Fatalf("PickOrder = %v, want Path 2 first", got)
	}
}

// Property: the data-level reassembly delivers every byte exactly once for
// arbitrary interleavings and duplications of chunks.
func TestQuickReassemblyExactlyOnce(t *testing.T) {
	f := func(seed int64, nChunks uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rc := &RecvConn{}
		n := int(nChunks%40) + 1
		// Build a contiguous stream of chunks, then shuffle with repeats.
		type ch struct {
			dsn uint64
			n   int
		}
		var chunks []ch
		var dsn uint64
		for i := 0; i < n; i++ {
			sz := 1 + rng.Intn(3000)
			chunks = append(chunks, ch{dsn, sz})
			dsn += uint64(sz)
		}
		seq := append([]ch(nil), chunks...)
		// Duplicate a random subset.
		for i := 0; i < n/2; i++ {
			seq = append(seq, chunks[rng.Intn(len(chunks))])
		}
		rng.Shuffle(len(seq), func(i, j int) { seq[i], seq[j] = seq[j], seq[i] })
		for _, c := range seq {
			rc.push(c.n, &packet.DSS{HasMap: true, DSN: c.dsn, DataLen: uint16(c.n)})
		}
		return rc.Delivered == dsn && rc.DataAck() == dsn && len(rc.ooo) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDataAckAdvertisedToSender(t *testing.T) {
	r := newPaperRig(t, 29)
	src := &fixedData{remaining: 64 * 1024}
	r.dial(t, Config{Algorithm: "reno", Subflows: paperSubflows(), Source: src})
	if err := r.loop.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	rc := r.recvConn(t)
	if rc.DataAck() != 64*1024 {
		t.Fatalf("final data ack = %d, want %d", rc.DataAck(), 64*1024)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		r := newPaperRig(t, 31)
		r.dial(t, Config{Algorithm: "cubic", Subflows: paperSubflows()})
		if err := r.loop.RunFor(time.Second); err != nil {
			t.Fatal(err)
		}
		return r.recvConn(t).Delivered
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs differ: %d vs %d", a, b)
	}
}

func TestSingleSubflowBehavesLikeTCP(t *testing.T) {
	r := newPaperRig(t, 37)
	c := r.dial(t, Config{Algorithm: "lia",
		Subflows: []SubflowSpec{{Tag: 2, Label: "Path 2"}}})
	if err := r.loop.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	rc := r.recvConn(t)
	mbps := float64(rc.Delivered) * 8 / 2 / 1e6
	// Path 2's bottleneck is 40 Mbps; a lone LIA subflow is plain NewReno
	// and should utilise most of it.
	if mbps < 30 || mbps > 40 {
		t.Fatalf("single-subflow goodput = %.1f Mbps, want ~35-38", mbps)
	}
	if got := c.Subflows()[0].assigned; got != c.AssignedBytes() {
		t.Fatalf("assigned accounting inconsistent: %d vs %d", got, c.AssignedBytes())
	}
}

func TestUnit(t *testing.T) {
	// Guard against accidental unit drift in helpers used above.
	if unit.Mbps != 1000*1000 {
		t.Fatal("unit definitions changed")
	}
}

func TestMinRTTPrefersFastPathForScarceData(t *testing.T) {
	// Trickle data: the min-RTT scheduler wakes the fastest subflow first,
	// so the scarce bytes should ride Path 2 predominantly.
	r := newPaperRig(t, 41)
	src := &trickle{chunk: 8 * 1400}
	c := r.dial(t, Config{Algorithm: "cubic", Subflows: paperSubflows(), Source: src})
	var tick func()
	tick = func() {
		src.avail = src.chunk
		c.Kick()
		r.loop.Schedule(20*time.Millisecond, tick)
	}
	r.loop.Schedule(100*time.Millisecond, tick) // after handshakes
	if err := r.loop.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	var byLabel [3]uint64
	for _, sf := range c.Subflows() {
		byLabel[sf.Index] = sf.assigned
	}
	// Subflow 0 is Path 2 (default, lowest RTT): it should carry the bulk.
	if byLabel[0] < byLabel[1] || byLabel[0] < byLabel[2] {
		t.Fatalf("scarce data split %v: default/fast path should dominate", byLabel)
	}
}

// trickle releases `avail` bytes when kicked, then runs dry.
type trickle struct {
	chunk int
	avail int
}

func (s *trickle) NextData(max int) int {
	n := max
	if s.avail < n {
		n = s.avail
	}
	s.avail -= n
	return n
}

func TestRoundRobinRotates(t *testing.T) {
	r := newPaperRig(t, 43)
	src := &trickle{chunk: 1400}
	c := r.dial(t, Config{Algorithm: "cubic", Scheduler: "rr",
		Subflows: paperSubflows(), Source: src})
	var tick func()
	tick = func() {
		src.avail = 1400
		c.Kick()
		r.loop.Schedule(10*time.Millisecond, tick)
	}
	r.loop.Schedule(100*time.Millisecond, tick)
	if err := r.loop.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Every subflow must have carried a meaningful share.
	for _, sf := range c.Subflows() {
		if sf.assigned < 20*1400 {
			t.Fatalf("round robin starved %s (%d bytes)", sf.Spec.Label, sf.assigned)
		}
	}
}

func TestAcceptorSeparatesConnections(t *testing.T) {
	r := newPaperRig(t, 47)
	c1 := r.dial(t, Config{Algorithm: "cubic", Subflows: paperSubflows()})
	c2 := r.dial(t, Config{Algorithm: "lia", Subflows: paperSubflows()})
	if err := r.loop.RunFor(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(r.acc.Conns()) != 2 {
		t.Fatalf("acceptor tracked %d connections, want 2", len(r.acc.Conns()))
	}
	if c1.Token == c2.Token {
		t.Fatal("token collision between connections")
	}
	for tok, rc := range r.acc.Conns() {
		if rc.SubflowCount() != 3 {
			t.Fatalf("connection %d attached %d subflows, want 3", tok, rc.SubflowCount())
		}
		if rc.Delivered == 0 {
			t.Fatalf("connection %d delivered nothing", tok)
		}
	}
}
