package mptcp

// Allocation gate for the multipath layer: once slow start is over, the
// scheduler's segment grants, the DSS mappings they stamp, and the
// receiver's reassembly all run on arena packets and connection-owned
// scratch, so a slice of steady-state three-subflow traffic allocates
// nothing.

import (
	"testing"
	"time"

	"mptcpsim/internal/sim"
)

func TestMultipathSteadyStateZeroAlloc(t *testing.T) {
	r := newPaperRig(t, 7)
	c := r.dial(t, Config{Algorithm: "olia", Subflows: paperSubflows()})
	deadline := sim.Time(0).Add(500 * time.Millisecond)
	if err := r.loop.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		deadline = deadline.Add(10 * time.Millisecond)
		if err := r.loop.RunUntil(deadline); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state multipath transfer allocates %.1f objects per 10ms, want 0", allocs)
	}
	for i, sf := range c.Subflows() {
		if sf.assigned == 0 {
			t.Fatalf("gate measured nothing: subflow %d carried no data", i)
		}
	}
}
