package mptcp

import (
	"fmt"
	"strings"

	"mptcpsim/internal/packet"
)

// Scheduler decides how connection-level data is spread over subflows.
// With an infinite backlog every subflow fills its own congestion window
// and the scheduler is only a tie-breaker; with a limited source it
// determines which paths carry the data.
type Scheduler interface {
	// Name returns the registry name.
	Name() string
	// Grant returns how many of max bytes the subflow may map right now.
	Grant(sf *Subflow, max int) int
	// PickOrder returns the subflows in preference order for waking after
	// new data arrives.
	PickOrder(sfs []*Subflow) []*Subflow
}

// NewScheduler instantiates a scheduler by name ("" selects min-RTT, the
// Linux MPTCP default the paper's measurements use).
func NewScheduler(name string) (Scheduler, error) {
	switch strings.ToLower(name) {
	case "", "minrtt", "default":
		return &MinRTT{}, nil
	case "roundrobin", "rr":
		return &RoundRobin{}, nil
	case "redundant":
		return &Redundant{}, nil
	default:
		return nil, fmt.Errorf("mptcp: unknown scheduler %q", name)
	}
}

// MinRTT is the default scheduler: every subflow with window space may
// send, but when data is scarce the lowest-RTT subflow is offered it
// first (wake order), matching the Linux default scheduler's preference
// for fast paths.
type MinRTT struct{}

// Name implements Scheduler.
func (*MinRTT) Name() string { return "minrtt" }

// Grant implements Scheduler.
func (*MinRTT) Grant(_ *Subflow, max int) int { return max }

// PickOrder implements Scheduler.
func (*MinRTT) PickOrder(sfs []*Subflow) []*Subflow { return sortByRTT(sfs) }

// RoundRobin rotates MSS-sized quanta across subflows regardless of RTT.
type RoundRobin struct {
	next int
}

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "roundrobin" }

// Grant implements Scheduler: a subflow out of turn still gets data (its
// window is open; refusing would idle the path), but the turn pointer
// advances so wake order rotates fairly.
func (r *RoundRobin) Grant(sf *Subflow, max int) int {
	r.next = (sf.Index + 1) % len(sf.conn.subflows)
	return max
}

// PickOrder implements Scheduler.
func (r *RoundRobin) PickOrder(sfs []*Subflow) []*Subflow {
	if len(sfs) == 0 {
		return nil
	}
	start := r.next % len(sfs)
	out := make([]*Subflow, 0, len(sfs))
	for i := 0; i < len(sfs); i++ {
		out = append(out, sfs[(start+i)%len(sfs)])
	}
	return out
}

// Redundant maps every data byte onto every subflow (the latency-oriented
// scheduler of "Low Latency via Redundancy"; cited as [5] in the paper's
// motivation). The receiver's overlap-tolerant reassembly deduplicates.
type Redundant struct{}

// Name implements Scheduler.
func (*Redundant) Name() string { return "redundant" }

// Grant implements Scheduler (unused: nextFor drives redundant mode).
func (*Redundant) Grant(_ *Subflow, max int) int { return max }

// PickOrder implements Scheduler.
func (*Redundant) PickOrder(sfs []*Subflow) []*Subflow { return sortByRTT(sfs) }

// nextFor assigns the subflow's private cursor range, duplicating data
// already assigned to other subflows. The shared dsnNext high-water mark
// only advances when the leading subflow requests fresh bytes.
func (r *Redundant) nextFor(sf *Subflow, max int) (int, *packet.DSS) {
	c := sf.conn
	n := max
	if sf.redundantCursor < c.dsnNext {
		// Catch up on bytes other subflows already carry.
		behind := c.dsnNext - sf.redundantCursor
		if uint64(n) > behind {
			n = int(behind)
		}
	} else {
		// Leading subflow: pull fresh data.
		n = c.source.NextData(n)
		if n <= 0 {
			return 0, nil
		}
		c.dsnNext += uint64(n)
	}
	sf.dssBuf = packet.DSS{HasMap: true, DSN: sf.redundantCursor, DataLen: uint16(n)}
	sf.redundantCursor += uint64(n)
	sf.assigned += uint64(n)
	return n, &sf.dssBuf
}
