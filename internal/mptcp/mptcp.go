// Package mptcp implements the Multipath TCP connection layer on top of
// the tcp engine: one connection striped across several TCP subflows, each
// pinned to its own network path by a forwarding tag — the paper's
// modified-ndiffports path manager ("the exact tags and the number of
// subflows is given as an argument").
//
// The layer provides the 64-bit data sequence space and DSS mappings of
// RFC 6824, connection-level reassembly at the receiver, pluggable segment
// schedulers (min-RTT default, round-robin, redundant), and coupled
// congestion control: all subflows of a connection share one cc.Algorithm
// instance, so LIA/OLIA/BALIA observe and balance the whole window vector,
// while CUBIC/Reno run independently per subflow ("uncoupled").
package mptcp

import (
	"fmt"
	"sort"
	"time"

	"mptcpsim/internal/cc"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/tcp"
)

// SubflowSpec describes one subflow of a connection: its forwarding tag
// (the preselected path) and a label for stats and figures.
type SubflowSpec struct {
	// Tag pins the subflow to a path.
	Tag packet.Tag
	// Label names the subflow in output ("Path 1").
	Label string
	// StartDelay postpones this subflow's handshake relative to the
	// connection start (the first subflow is the "default" path and should
	// usually start at zero).
	StartDelay time.Duration
}

// Config parameterises an MPTCP connection.
type Config struct {
	// Algorithm is the congestion-control name (cc registry): "cubic",
	// "reno", "lia", "olia", "balia".
	Algorithm string
	// Scheduler selects the segment scheduler: "minrtt" (default),
	// "roundrobin", "redundant".
	Scheduler string
	// Subflows lists the paths; the first entry is the default subflow.
	Subflows []SubflowSpec
	// TCP carries per-subflow TCP overrides (MSS, buffers, delayed-ACK).
	// CC/Tag/Source/Sink fields are managed by this package.
	TCP tcp.Config
	// Source supplies application data; nil means infinite bulk (iperf).
	Source DataSource
}

// DataSource supplies connection-level data, pull-model like tcp.Source
// but at the data (DSN) level.
type DataSource interface {
	// NextData returns how many bytes are available to send now, up to
	// max. Returning 0 idles the sender until Conn.Kick.
	NextData(max int) int
}

// bulkData is the infinite iperf-style source.
type bulkData struct{}

func (bulkData) NextData(max int) int { return max }

// Subflow is one TCP subflow of a connection.
type Subflow struct {
	// Spec is the subflow's path specification.
	Spec SubflowSpec
	// TCP is the underlying TCP connection (nil until started).
	TCP *tcp.Conn
	// Index is the subflow's position in the configuration.
	Index int

	conn *Conn
	// Picks counts scheduler grants that actually put data on this
	// subflow — the per-subflow view of where the scheduler sends its
	// attention. Telemetry only; excluded from result hashes.
	Picks uint64
	// assigned counts DSN bytes mapped onto this subflow (sender side).
	assigned uint64
	// dssBuf is the scratch mapping handed to the TCP sender on each
	// grant. The sender copies it into the outgoing packet and its
	// retransmit queue within the same grant, before the next Next call
	// overwrites it, so one buffer per subflow suffices.
	dssBuf packet.DSS
	// redundantCursor is this subflow's private DSN cursor under the
	// redundant scheduler.
	redundantCursor uint64
}

// SRTT returns the subflow's smoothed RTT (0 before establishment).
func (sf *Subflow) SRTT() time.Duration {
	if sf.TCP == nil {
		return 0
	}
	return sf.TCP.SRTT()
}

// Conn is the sender side of an MPTCP connection.
type Conn struct {
	loop *sim.Loop
	host *tcp.Host
	cfg  Config

	// Key is the MP_CAPABLE key; Token identifies the connection on joins.
	Key   uint64
	Token uint32

	algo     cc.Algorithm
	sched    Scheduler
	source   DataSource
	subflows []*Subflow

	// dsnNext is the next unassigned data sequence number.
	dsnNext uint64
}

// Dial opens an MPTCP connection from host to raddr:rport, starting one
// TCP subflow per SubflowSpec. The first subflow carries MP_CAPABLE, the
// rest MP_JOIN with the connection token.
func Dial(h *tcp.Host, rng *sim.Rand, cfg Config, raddr packet.Addr, rport packet.Port) (*Conn, error) {
	if len(cfg.Subflows) == 0 {
		return nil, fmt.Errorf("mptcp: no subflows configured")
	}
	algo, err := cc.New(cfg.Algorithm)
	if err != nil {
		return nil, err
	}
	sched, err := NewScheduler(cfg.Scheduler)
	if err != nil {
		return nil, err
	}
	src := cfg.Source
	if src == nil {
		src = bulkData{}
	}
	key := rng.Uint64()
	c := &Conn{
		loop:   h.Loop(),
		host:   h,
		cfg:    cfg,
		Key:    key,
		Token:  TokenFromKey(key),
		algo:   algo,
		sched:  sched,
		source: src,
	}
	for i, spec := range cfg.Subflows {
		sf := &Subflow{Spec: spec, Index: i, conn: c}
		c.subflows = append(c.subflows, sf)
		start := func() {
			tcfg := cfg.TCP
			tcfg.Tag = spec.Tag
			tcfg.CC = algo
			tcfg.Source = &sfSource{sf: sf}
			tcfg.Sink = nopSink{}
			tcfg.FlowID = spec.Label
			if i == 0 {
				tcfg.SynOptions = []packet.Option{&packet.MPCapable{Key: key}}
			} else {
				tcfg.SynOptions = []packet.Option{&packet.MPJoin{Token: c.Token, AddrID: uint8(i)}}
			}
			conn, err := h.Dial(tcfg, raddr, rport)
			if err != nil {
				return // port exhaustion cannot happen in practice
			}
			sf.TCP = conn
		}
		if spec.StartDelay > 0 {
			c.loop.Schedule(spec.StartDelay, start)
		} else {
			start()
		}
	}
	return c, nil
}

// Subflows returns the connection's subflows in configuration order.
func (c *Conn) Subflows() []*Subflow { return c.subflows }

// Scheduler returns the active scheduler.
func (c *Conn) Scheduler() Scheduler { return c.sched }

// Algorithm returns the shared congestion-control instance.
func (c *Conn) Algorithm() cc.Algorithm { return c.algo }

// AssignedBytes returns the total data bytes mapped to subflows so far.
func (c *Conn) AssignedBytes() uint64 { return c.dsnNext }

// SentPayloadBytes sums the payload bytes transmitted across all subflows,
// retransmissions included. It upper-bounds what the receiver can account
// for (delivered + duplicate + buffered out of order), which is the
// data-level conservation invariant the check harness asserts.
func (c *Conn) SentPayloadBytes() uint64 {
	var n uint64
	for _, sf := range c.subflows {
		if sf.TCP != nil {
			n += sf.TCP.Stats.SentBytes
		}
	}
	return n
}

// Kick wakes all subflows after the DataSource gains data, in scheduler
// preference order so limited data lands on preferred paths first.
func (c *Conn) Kick() {
	order := c.sched.PickOrder(c.subflows)
	for _, sf := range order {
		if sf.TCP != nil {
			sf.TCP.Kick()
		}
	}
}

// Close closes every subflow.
func (c *Conn) Close() {
	for _, sf := range c.subflows {
		if sf.TCP != nil {
			sf.TCP.Close()
		}
	}
}

// sfSource adapts the connection's data stream to one subflow's tcp.Source.
type sfSource struct {
	sf *Subflow
}

// Next implements tcp.Source: it consults the scheduler for an allotment
// and assigns the next DSN range to this subflow.
func (s *sfSource) Next(max int) (int, *packet.DSS) {
	c := s.sf.conn
	if red, ok := c.sched.(*Redundant); ok {
		n, dss := red.nextFor(s.sf, max)
		if n > 0 {
			s.sf.Picks++
		}
		return n, dss
	}
	n := c.sched.Grant(s.sf, max)
	if n <= 0 {
		return 0, nil
	}
	n = c.source.NextData(n)
	if n <= 0 {
		return 0, nil
	}
	s.sf.dssBuf = packet.DSS{HasMap: true, DSN: c.dsnNext, DataLen: uint16(n)}
	c.dsnNext += uint64(n)
	s.sf.assigned += uint64(n)
	s.sf.Picks++
	return n, &s.sf.dssBuf
}

// nopSink ignores reverse-direction data on sender-side subflows (the
// experiments are one-way) and advertises no data-level ACK.
type nopSink struct{}

func (nopSink) OnData(int, *packet.DSS) {}
func (nopSink) DataAck() (uint64, bool) { return 0, false }

// TokenFromKey derives the connection token advertised in MP_JOIN from the
// MP_CAPABLE key (RFC 6824 uses a SHA-1 truncation; a mix suffices here).
func TokenFromKey(key uint64) uint32 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return uint32(key)
}

// sortByRTT orders subflows by ascending smoothed RTT, established flows
// first (the min-RTT scheduler's preference order).
func sortByRTT(sfs []*Subflow) []*Subflow {
	out := append([]*Subflow(nil), sfs...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ar, br := a.SRTT(), b.SRTT()
		if ar == 0 {
			return false
		}
		if br == 0 {
			return true
		}
		return ar < br
	})
	return out
}
