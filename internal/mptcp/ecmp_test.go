package mptcp

import (
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/tcp"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// TestNDiffPortsOverECMP reproduces the original ndiffports idea the paper
// modified: subflows carry no tags at all and differ only in source port;
// an ECMP fabric hashes each subflow's flow tuple onto a spine, so MPTCP
// harvests bandwidth across equal-cost paths without any tagging support.
func TestNDiffPortsOverECMP(t *testing.T) {
	const spines = 4
	g := topo.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	t1, t2 := g.AddNode("tor1"), g.AddNode("tor2")
	g.AddDuplex(a, t1, 100*unit.Mbps, 100*time.Microsecond, 0)
	g.AddDuplex(t2, b, 100*unit.Mbps, 100*time.Microsecond, 0)
	for i := 0; i < spines; i++ {
		s := g.AddNode("spine" + string(rune('1'+i)))
		g.AddDuplex(t1, s, 10*unit.Mbps, 500*time.Microsecond, 0)
		g.AddDuplex(s, t2, 10*unit.Mbps, 500*time.Microsecond, 0)
	}

	loop := sim.NewLoop()
	// The router is pure ECMP: no tag tables anywhere.
	var ecmp *route.ECMP
	lookup := route.Router(nil)
	net, err := netem.New(loop, g, routerFunc(func(n topo.NodeID, pkt *packet.Packet) (topo.LinkID, error) {
		return lookup.NextLink(n, pkt)
	}))
	if err != nil {
		t.Fatal(err)
	}
	sender := tcp.NewHost(net, a, sim.NewRand(1))
	receiver := tcp.NewHost(net, b, sim.NewRand(2))
	ecmp = route.NewECMP(g, map[packet.Addr]topo.NodeID{
		sender.Addr:   a,
		receiver.Addr: b,
	}, nil)
	lookup = ecmp

	acc := &Acceptor{}
	if err := Listen(receiver, 5001, tcp.Config{}, acc); err != nil {
		t.Fatal(err)
	}
	// ndiffports: 8 subflows, all untagged, differing only in source port.
	specs := make([]SubflowSpec, 8)
	for i := range specs {
		specs[i] = SubflowSpec{Tag: packet.TagNone, Label: "sf", StartDelay: time.Duration(i) * time.Millisecond}
	}
	conn, err := Dial(sender, sim.NewRand(3), Config{Algorithm: "olia", Subflows: specs}, receiver.Addr, 5001)
	if err != nil {
		t.Fatal(err)
	}
	if err := loop.RunUntil(sim.Time(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	var rc *RecvConn
	for _, c := range acc.Conns() {
		rc = c
	}
	if rc == nil {
		t.Fatal("no connection accepted")
	}
	mbps := float64(rc.Delivered) * 8 / 4 / 1e6
	// A single path is 10 Mbps; 8 hashed subflows should cover most spines.
	if mbps < 25 {
		t.Fatalf("ECMP aggregate = %.1f Mbps, want > 25 (single spine is 10)", mbps)
	}
	// Multiple distinct spine links must actually carry traffic.
	used := 0
	for _, l := range net.Links() {
		if l.Spec.From == t1 && l.Spec.To != a && l.Counters.TxBytes > 100000 {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("only %d spines carried traffic, want >= 3", used)
	}
	for _, sf := range conn.Subflows() {
		if sf.TCP == nil || sf.TCP.State() != tcp.StateEstablished {
			t.Fatal("subflow failed to establish over ECMP")
		}
	}
}

// routerFunc adapts a closure to route.Router (used to break the
// construction-order cycle between netem.New and route.NewECMP, which
// needs assigned addresses).
type routerFunc func(topo.NodeID, *packet.Packet) (topo.LinkID, error)

func (f routerFunc) NextLink(n topo.NodeID, pkt *packet.Packet) (topo.LinkID, error) {
	return f(n, pkt)
}
