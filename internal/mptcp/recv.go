package mptcp

import (
	"sort"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/tcp"
)

// RecvConn is the receiver side of an MPTCP connection: it reassembles the
// 64-bit data sequence space from the subflows' in-order byte streams and
// exposes connection-level goodput.
type RecvConn struct {
	// Token identifies the connection (from the initiator's key).
	Token uint32

	dsnExpected uint64
	// ooo holds out-of-order data-level chunks sorted by DSN.
	ooo []dchunk
	// Delivered counts in-order data bytes handed to the application.
	Delivered uint64
	// DupBytes counts bytes discarded as data-level duplicates (redundant
	// scheduler overlap).
	DupBytes uint64
	// OnDeliver, when set, observes each in-order data-level delivery.
	OnDeliver func(n int)

	subflows int
}

type dchunk struct {
	dsn uint64
	n   int
}

// SubflowCount returns how many subflows have attached.
func (rc *RecvConn) SubflowCount() int { return rc.subflows }

// OOOBytes returns the bytes currently parked in the out-of-order
// reassembly buffer — received at the data level but not yet deliverable.
// Data-level conservation audits need it: bytes assigned by the sender
// must equal delivered + duplicate + out-of-order + still-in-transit.
func (rc *RecvConn) OOOBytes() uint64 {
	var n uint64
	for _, c := range rc.ooo {
		n += uint64(c.n)
	}
	return n
}

// DataAck returns the connection-level cumulative acknowledgement.
func (rc *RecvConn) DataAck() uint64 { return rc.dsnExpected }

// push consumes one in-order subflow segment carrying a DSS mapping.
func (rc *RecvConn) push(n int, dss *packet.DSS) {
	if dss == nil || !dss.HasMap {
		// Plain segment without a mapping (should not happen from our
		// sender); count it as delivered payload.
		rc.Delivered += uint64(n)
		if rc.OnDeliver != nil {
			rc.OnDeliver(n)
		}
		return
	}
	rc.insert(dss.DSN, n)
	rc.drain()
}

// insert adds a chunk, trimming overlap with already-delivered data.
func (rc *RecvConn) insert(dsn uint64, n int) {
	end := dsn + uint64(n)
	if end <= rc.dsnExpected {
		rc.DupBytes += uint64(n)
		return
	}
	if dsn < rc.dsnExpected {
		rc.DupBytes += rc.dsnExpected - dsn
		n = int(end - rc.dsnExpected)
		dsn = rc.dsnExpected
	}
	i := sort.Search(len(rc.ooo), func(i int) bool { return rc.ooo[i].dsn >= dsn })
	if i < len(rc.ooo) && rc.ooo[i].dsn == dsn {
		if rc.ooo[i].n >= n {
			rc.DupBytes += uint64(n)
			return // fully duplicate
		}
		rc.DupBytes += uint64(rc.ooo[i].n)
		rc.ooo[i].n = n
		return
	}
	rc.ooo = append(rc.ooo, dchunk{})
	copy(rc.ooo[i+1:], rc.ooo[i:])
	rc.ooo[i] = dchunk{dsn: dsn, n: n}
}

// drain delivers contiguous chunks at dsnExpected. Drained chunks are
// compacted off the front afterwards (instead of re-slicing per chunk)
// so the queue keeps its capacity and insert's append stays in place.
func (rc *RecvConn) drain() {
	n := 0
	for n < len(rc.ooo) {
		c := rc.ooo[n]
		if c.dsn > rc.dsnExpected {
			break
		}
		n++
		end := c.dsn + uint64(c.n)
		if end <= rc.dsnExpected {
			rc.DupBytes += uint64(c.n)
			continue
		}
		if c.dsn < rc.dsnExpected {
			rc.DupBytes += rc.dsnExpected - c.dsn
		}
		fresh := int(end - rc.dsnExpected)
		rc.dsnExpected = end
		rc.Delivered += uint64(fresh)
		if rc.OnDeliver != nil {
			rc.OnDeliver(fresh)
		}
	}
	if n > 0 {
		rc.ooo = rc.ooo[:copy(rc.ooo, rc.ooo[n:])]
	}
}

// sfSink adapts one subflow's tcp.Sink to the connection reassembly.
type sfSink struct {
	rc *RecvConn
}

// OnData implements tcp.Sink.
func (s *sfSink) OnData(n int, dss *packet.DSS) { s.rc.push(n, dss) }

// DataAck implements tcp.Sink.
func (s *sfSink) DataAck() (uint64, bool) { return s.rc.DataAck(), true }

// Acceptor listens for MPTCP connections on a host port. Subflows carrying
// MP_CAPABLE open a new connection; MP_JOIN subflows attach to the
// connection their token names.
type Acceptor struct {
	// OnNewConn is invoked when the first subflow of a connection arrives.
	OnNewConn func(rc *RecvConn)

	conns map[uint32]*RecvConn
}

// Listen starts accepting MPTCP connections on h:port with the given
// per-subflow TCP template (RcvBuf, delayed-ACK configuration).
func Listen(h *tcp.Host, port packet.Port, tmpl tcp.Config, a *Acceptor) error {
	a.conns = make(map[uint32]*RecvConn)
	return h.Listen(port, &tcp.Listener{
		ConfigFor: func(synOpts []packet.Option, from packet.Endpoint) tcp.Config {
			rc := a.match(synOpts)
			cfg := tmpl
			cfg.Sink = &sfSink{rc: rc}
			return cfg
		},
	})
}

// match finds or creates the RecvConn for a subflow's SYN options.
func (a *Acceptor) match(opts []packet.Option) *RecvConn {
	var token uint32
	for _, o := range opts {
		switch v := o.(type) {
		case *packet.MPCapable:
			token = TokenFromKey(v.Key)
		case *packet.MPJoin:
			token = v.Token
		}
	}
	rc, ok := a.conns[token]
	if !ok {
		rc = &RecvConn{Token: token}
		a.conns[token] = rc
		if a.OnNewConn != nil {
			a.OnNewConn(rc)
		}
	}
	rc.subflows++
	return rc
}

// Conns returns the accepted connections keyed by token.
func (a *Acceptor) Conns() map[uint32]*RecvConn { return a.conns }
