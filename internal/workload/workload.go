// Package workload provides the traffic generators of the experiments:
// the iperf-style infinite bulk source, a fixed-size transfer, an on/off
// source with exponential periods, and a UDP constant-bit-rate generator
// used as cross-traffic.
package workload

import (
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
)

// Bulk is an infinite backlog (iperf -t <forever>): always has data.
type Bulk struct{}

// NextData implements mptcp.DataSource.
func (Bulk) NextData(max int) int { return max }

// Fixed transfers exactly Total bytes, then stops.
type Fixed struct {
	// Total is the transfer size in bytes.
	Total int
	sent  int
}

// NextData implements mptcp.DataSource.
func (f *Fixed) NextData(max int) int {
	left := f.Total - f.sent
	if left <= 0 {
		return 0
	}
	if max > left {
		max = left
	}
	f.sent += max
	return max
}

// Sent returns the bytes handed out so far.
func (f *Fixed) Sent() int { return f.sent }

// Done reports whether the whole transfer was handed to the connection.
func (f *Fixed) Done() bool { return f.sent >= f.Total }

// OnOff alternates between sending (bulk) and silent periods with
// exponentially distributed durations, a classic bursty-traffic model.
// Call Start to begin; the Kick callback wakes the connection when a new
// on-period starts.
type OnOff struct {
	// OnMean and OffMean are the mean period durations.
	OnMean, OffMean time.Duration
	// Kick wakes the transport when data becomes available.
	Kick func()

	loop *sim.Loop
	rng  *sim.Rand
	on   bool
	flip onOffFlip
}

// NewOnOff creates an on/off source driven by the loop.
func NewOnOff(loop *sim.Loop, rng *sim.Rand, onMean, offMean time.Duration) *OnOff {
	o := &OnOff{OnMean: onMean, OffMean: offMean, loop: loop, rng: rng}
	o.flip.o = o
	return o
}

// Start begins with an on-period.
func (o *OnOff) Start() {
	o.on = true
	o.schedule()
}

func (o *OnOff) schedule() {
	var d time.Duration
	if o.on {
		d = o.rng.Exp(o.OnMean)
	} else {
		d = o.rng.Exp(o.OffMean)
	}
	o.loop.ScheduleCall(d, &o.flip)
}

// onOffFlip is the pre-bound period-boundary callback, so the endless
// on/off alternation schedules without allocating.
type onOffFlip struct{ o *OnOff }

// Run implements sim.Callback.
func (f *onOffFlip) Run(sim.Time) {
	o := f.o
	o.on = !o.on
	if o.on && o.Kick != nil {
		o.Kick()
	}
	o.schedule()
}

// On reports whether the source is currently sending.
func (o *OnOff) On() bool { return o.on }

// NextData implements mptcp.DataSource.
func (o *OnOff) NextData(max int) int {
	if !o.on {
		return 0
	}
	return max
}

// CBR sends UDP packets at a constant bit rate from a node towards an
// address, as background cross-traffic competing with MPTCP for a link.
type CBR struct {
	// Sent counts packets emitted.
	Sent uint64

	net      *netem.Network
	node     topo.NodeID
	dst      packet.Addr
	tag      packet.Tag
	payload  int
	period   time.Duration
	stopped  bool
	tickCall cbrTick
}

// NewCBR creates a generator sending payload-byte datagrams so that the
// wire rate matches rateMbps.
func NewCBR(n *netem.Network, node topo.NodeID, dst packet.Addr, tag packet.Tag, rateMbps float64, payload int) *CBR {
	wire := payload + packet.IPv4HeaderLen + packet.UDPHeaderLen
	period := time.Duration(float64(wire*8) / (rateMbps * 1e6) * float64(time.Second))
	c := &CBR{net: n, node: node, dst: dst, tag: tag, payload: payload, period: period}
	c.tickCall.c = c
	return c
}

// cbrTick is the pre-bound per-packet callback: the generator's steady
// emission schedules on pooled nodes without closures.
type cbrTick struct{ c *CBR }

// Run implements sim.Callback.
func (t *cbrTick) Run(sim.Time) { t.c.tick() }

// Start begins emission.
func (c *CBR) Start() {
	c.tick()
}

// Stop halts emission after the next tick.
func (c *CBR) Stop() { c.stopped = true }

func (c *CBR) tick() {
	if c.stopped {
		return
	}
	src, _ := c.net.AddrOf(c.node)
	p, u := c.net.Arena().GetUDP()
	p.IP = packet.IPv4{Tag: c.tag, Proto: packet.ProtoUDP, Src: src, Dst: c.dst}
	u.SrcPort, u.DstPort = 9999, 9999
	p.PayloadLen = c.payload
	c.net.Node(c.node).Send(p)
	c.Sent++
	c.net.Loop.ScheduleCall(c.period, &c.tickCall)
}
