package workload

import (
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

func TestBulkAlwaysFull(t *testing.T) {
	var b Bulk
	if b.NextData(1400) != 1400 || b.NextData(1) != 1 {
		t.Fatal("bulk must always return max")
	}
}

func TestFixedExhausts(t *testing.T) {
	f := &Fixed{Total: 3000}
	got := 0
	for {
		n := f.NextData(1400)
		if n == 0 {
			break
		}
		got += n
	}
	if got != 3000 {
		t.Fatalf("handed out %d, want 3000", got)
	}
	if !f.Done() || f.Sent() != 3000 {
		t.Fatal("Done/Sent wrong")
	}
	if f.NextData(1) != 0 {
		t.Fatal("exhausted source returned data")
	}
}

func TestOnOffAlternates(t *testing.T) {
	loop := sim.NewLoop()
	o := NewOnOff(loop, sim.NewRand(1), 50*time.Millisecond, 50*time.Millisecond)
	kicks := 0
	o.Kick = func() { kicks++ }
	o.Start()
	if !o.On() {
		t.Fatal("must start on")
	}
	onTime, offTime := 0, 0
	var probe func()
	probe = func() {
		if o.On() {
			onTime++
		} else {
			offTime++
		}
		loop.Schedule(time.Millisecond, probe)
	}
	loop.Schedule(0, probe)
	if err := loop.RunUntil(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if kicks == 0 {
		t.Fatal("no kicks delivered")
	}
	// Symmetric means: both states visited substantially.
	if onTime < 600 || offTime < 600 {
		t.Fatalf("on=%dms off=%dms, want both > 600", onTime, offTime)
	}
	if o.On() {
		if o.NextData(100) != 100 {
			t.Fatal("on source must deliver")
		}
	} else if o.NextData(100) != 0 {
		t.Fatal("off source must be silent")
	}
}

func TestCBRRate(t *testing.T) {
	g := topo.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	ab, _ := g.AddDuplex(a, b, 100*unit.Mbps, time.Millisecond, unit.MB)
	loop := sim.NewLoop()
	tt := route.NewTagTable(g)
	n, err := netem.New(loop, g, tt)
	if err != nil {
		t.Fatal(err)
	}
	n.AssignAddr(a)
	dst := n.AssignAddr(b)
	if err := tt.AddPath(dst, 1, topo.Path{Nodes: []topo.NodeID{a, b}, Links: []topo.LinkID{ab}}); err != nil {
		t.Fatal(err)
	}
	var rcvd uint64
	if err := n.Node(b).Register(9999, netem.HandlerFunc(func(p *packet.Packet) {
		rcvd += uint64(p.Size())
	})); err != nil {
		t.Fatal(err)
	}
	cbr := NewCBR(n, a, dst, 1, 10, 1000-packet.IPv4HeaderLen-packet.UDPHeaderLen)
	loop.Schedule(0, func() { cbr.Start() })
	if err := loop.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	mbps := float64(rcvd) * 8 / 2 / 1e6
	if mbps < 9.8 || mbps > 10.2 {
		t.Fatalf("CBR rate = %.2f Mbps, want 10", mbps)
	}
	cbr.Stop()
	at := cbr.Sent
	if err := loop.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if cbr.Sent > at+1 {
		t.Fatal("Stop did not halt emission")
	}
}
