package tcp

import "time"

// rttEstimator implements the RFC 6298 smoothed RTT and retransmission
// timeout computation, with Linux-style clamping.
type rttEstimator struct {
	srtt, rttvar   time.Duration
	minRTO, maxRTO time.Duration
	hasSample      bool
	minRTT         time.Duration
}

func newRTTEstimator(minRTO, maxRTO time.Duration) rttEstimator {
	return rttEstimator{minRTO: minRTO, maxRTO: maxRTO}
}

// Sample folds a new RTT measurement in (Karn's rule: callers must not
// sample retransmitted segments).
func (e *rttEstimator) Sample(rtt time.Duration) {
	if rtt <= 0 {
		rtt = time.Microsecond
	}
	if !e.hasSample {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.minRTT = rtt
		e.hasSample = true
		return
	}
	if rtt < e.minRTT {
		e.minRTT = rtt
	}
	d := e.srtt - rtt
	if d < 0 {
		d = -d
	}
	e.rttvar = (3*e.rttvar + d) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

// SRTT returns the smoothed RTT (zero before the first sample).
func (e *rttEstimator) SRTT() time.Duration { return e.srtt }

// MinRTT returns the smallest sample seen.
func (e *rttEstimator) MinRTT() time.Duration { return e.minRTT }

// RTO returns the current retransmission timeout.
func (e *rttEstimator) RTO() time.Duration {
	if !e.hasSample {
		return initialRTO
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.minRTO {
		rto = e.minRTO
	}
	if rto > e.maxRTO {
		rto = e.maxRTO
	}
	return rto
}
