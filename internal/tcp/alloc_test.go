package tcp

// Allocation gate for the TCP timer path: the RTO re-arm every ACK
// performs (stop + schedule of the pre-bound callback) must not allocate
// once the loop arena is warm.

import (
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/unit"
)

func TestArmRTOZeroAlloc(t *testing.T) {
	c := &Conn{loop: sim.NewLoop()}
	c.rtoCall.c = c
	c.delAckCall.c = c
	c.armRTO(time.Second) // warm the arena
	allocs := testing.AllocsPerRun(1000, func() {
		c.armRTO(time.Second)
	})
	if allocs != 0 {
		t.Fatalf("RTO re-arm allocates %.1f objects, want 0", allocs)
	}
	c.stopRTO()

	// The delayed-ACK arm is the same pattern on the receive side.
	c.delAckTimer = c.loop.ScheduleCall(time.Second, &c.delAckCall)
	allocs = testing.AllocsPerRun(1000, func() {
		c.delAckTimer.Stop()
		c.delAckTimer = c.loop.ScheduleCall(time.Second, &c.delAckCall)
	})
	if allocs != 0 {
		t.Fatalf("delayed-ACK re-arm allocates %.1f objects, want 0", allocs)
	}
}

// steadyState advances the connection past slow start and slice-capacity
// warm-up, then measures the allocation bill of further simulated time.
func steadyState(t *testing.T, tn *testNet, warm time.Duration) float64 {
	t.Helper()
	deadline := sim.Time(0).Add(warm)
	if err := tn.loop.RunUntil(deadline); err != nil {
		t.Fatal(err)
	}
	return testing.AllocsPerRun(20, func() {
		deadline = deadline.Add(10 * time.Millisecond)
		if err := tn.loop.RunUntil(deadline); err != nil {
			t.Fatal(err)
		}
	})
}

// Segment-construction gate: a warm bulk connection streams data, ACKs
// and delayed ACKs with every packet drawn from the run's arena — a slice
// of steady-state traffic allocates nothing.
func TestBulkSteadyStateZeroAlloc(t *testing.T) {
	tn := newTestNet(t, 50*unit.Mbps, 5*time.Millisecond, 256*1500)
	tn.startBulk(t, &limitedSource{remaining: 1 << 30}, nil)
	if allocs := steadyState(t, tn, 300*time.Millisecond); allocs != 0 {
		t.Fatalf("steady-state bulk transfer allocates %.1f objects per 10ms, want 0", allocs)
	}
}

// modDrop drops every nth data packet, forcing periodic fast-retransmit
// episodes throughout the measured window.
type modDrop struct {
	n     int
	count int
}

func (d *modDrop) Name() string { return "moddrop" }
func (d *modDrop) OnEnqueue(_ *netem.Link, p *packet.Packet) bool {
	if p.TCP == nil || p.PayloadLen == 0 {
		return false
	}
	d.count++
	return d.count%d.n == 0
}

// Retransmit gate: with a steady loss process the SACK scoreboard marks,
// recovers and retransmits continuously; every retransmitted segment must
// come from the arena too, so the bill stays zero.
func TestRetransmitSteadyStateZeroAlloc(t *testing.T) {
	tn := newTestNet(t, 50*unit.Mbps, 5*time.Millisecond, 256*1500)
	conn, _ := tn.startBulk(t, &limitedSource{remaining: 1 << 30}, nil)
	tn.fwd.SetAQM(&modDrop{n: 100})
	if allocs := steadyState(t, tn, 300*time.Millisecond); allocs != 0 {
		t.Fatalf("steady-state loss recovery allocates %.1f objects per 10ms, want 0", allocs)
	}
	if conn.Stats.Retransmits == 0 {
		t.Fatal("gate measured nothing: no segments were retransmitted")
	}
}
