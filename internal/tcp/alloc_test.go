package tcp

// Allocation gate for the TCP timer path: the RTO re-arm every ACK
// performs (stop + schedule of the pre-bound callback) must not allocate
// once the loop arena is warm.

import (
	"testing"
	"time"

	"mptcpsim/internal/sim"
)

func TestArmRTOZeroAlloc(t *testing.T) {
	c := &Conn{loop: sim.NewLoop()}
	c.rtoCall.c = c
	c.delAckCall.c = c
	c.armRTO(time.Second) // warm the arena
	allocs := testing.AllocsPerRun(1000, func() {
		c.armRTO(time.Second)
	})
	if allocs != 0 {
		t.Fatalf("RTO re-arm allocates %.1f objects, want 0", allocs)
	}
	c.stopRTO()

	// The delayed-ACK arm is the same pattern on the receive side.
	c.delAckTimer = c.loop.ScheduleCall(time.Second, &c.delAckCall)
	allocs = testing.AllocsPerRun(1000, func() {
		c.delAckTimer.Stop()
		c.delAckTimer = c.loop.ScheduleCall(time.Second, &c.delAckCall)
	})
	if allocs != 0 {
		t.Fatalf("delayed-ACK re-arm allocates %.1f objects, want 0", allocs)
	}
}
