package tcp

import (
	"sort"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/unit"
)

// advertisedWindow computes the receive window to advertise. In-order data
// is consumed immediately by the Sink (a fast application reader), so the
// whole buffer is free relative to rcvNxt; out-of-order segments occupy
// sequence space *within* the advertised window and do not shrink it (as in
// real stacks — shrinking here would make duplicate ACKs carry changing
// windows and defeat the sender's dupACK counting).
func (c *Conn) advertisedWindow() uint32 {
	return uint32(c.cfg.RcvBuf)
}

// processData handles the payload of an arriving segment.
func (c *Conn) processData(pkt *packet.Packet) {
	t := pkt.TCP
	n := pkt.PayloadLen
	seq := t.Seq
	var dss *packet.DSS
	if t != nil {
		dss = t.DSS()
	}

	switch {
	case seqLEQ(seq+uint32(n), c.rcvNxt):
		// Entirely old: a retransmission the ACK for which was lost.
		c.sendPureAck()
	case seqGT(seq, c.rcvNxt):
		// Out of order: park it and send an immediate duplicate ACK
		// (RFC 5681 §4.2) so the sender's dupACK counter advances.
		c.storeOOO(seq, n, dss)
		c.sendPureAck()
	default:
		// In-order (seq == rcvNxt for our aligned senders).
		hadGap := len(c.ooo) > 0
		c.rcvNxt = seq + uint32(n)
		c.deliverData(n, dss)
		c.drainOOO()
		c.ackPending++
		if hadGap {
			// RFC 5681 §4.2: ACK immediately when a segment fills a gap,
			// so the sender learns of the repair without delack latency.
			c.sendPureAck()
		} else if c.ackPending >= c.cfg.DelAckCount {
			c.sendPureAck()
		} else if !c.delAckTimer.Pending() {
			c.delAckTimer = c.loop.ScheduleCall(c.cfg.DelAckTimeout, &c.delAckCall)
		}
	}
}

// onDelAck fires when the delayed-ACK timer expires.
func (c *Conn) onDelAck() {
	if c.ackPending > 0 {
		c.sendPureAck()
	}
}

func (c *Conn) deliverData(n int, dss *packet.DSS) {
	c.Stats.DeliveredData += uint64(n)
	if c.cfg.Sink != nil {
		c.cfg.Sink.OnData(n, dss)
	}
}

// storeOOO parks an out-of-order segment, ignoring exact duplicates. The
// DSS is copied by value: dss points into the arriving packet, whose
// storage is recycled when this delivery returns.
func (c *Conn) storeOOO(seq uint32, n int, dss *packet.DSS) {
	c.lastOOOSeq = seq
	i := sort.Search(len(c.ooo), func(i int) bool { return seqGEQ(c.ooo[i].seq, seq) })
	if i < len(c.ooo) && c.ooo[i].seq == seq {
		return // duplicate
	}
	if unit.ByteSize(c.oooBytes+n) > c.cfg.RcvBuf {
		return // buffer full: arriving OOO data is dropped silently
	}
	c.ooo = append(c.ooo, rseg{})
	copy(c.ooo[i+1:], c.ooo[i:])
	s := rseg{seq: seq, length: n}
	if dss != nil {
		s.dss, s.hasDSS = *dss, true
	}
	c.ooo[i] = s
	c.oooBytes += n
}

// drainOOO delivers any parked segments made contiguous by rcvNxt. The
// queue is walked in place (no per-segment copy — the copy would escape
// through dssPtr and heap-allocate on every drained segment) and then
// compacted to the front so the slice keeps its capacity; nothing mutates
// c.ooo during the walk because delivery only schedules future events.
func (c *Conn) drainOOO() {
	n := 0
	for n < len(c.ooo) {
		s := &c.ooo[n]
		if seqGT(s.seq, c.rcvNxt) {
			break
		}
		n++
		c.oooBytes -= s.length
		if seqLEQ(s.seq+uint32(s.length), c.rcvNxt) {
			continue // stale overlap
		}
		c.rcvNxt = s.seq + uint32(s.length)
		c.deliverData(s.length, s.dssPtr())
	}
	if n > 0 {
		c.ooo = c.ooo[:copy(c.ooo, c.ooo[n:])]
	}
}

// sendPureAck emits an immediate acknowledgement (cancelling any delayed
// ACK) carrying the connection-level data ACK when a Sink provides one.
func (c *Conn) sendPureAck() {
	c.ackPending = 0
	c.delAckTimer.Stop()
	p, t := c.arena.GetTCP()
	t.SrcPort = c.local.Port
	t.DstPort = c.remote.Port
	t.Seq = c.sndNxt
	t.Ack = c.rcvNxt
	t.Flags = packet.FlagACK
	t.Window = c.advertisedWindow()
	// Option-space budget: 40 bytes. Timestamps (12 padded) and the MPTCP
	// data ACK (12) squeeze the SACK blocks, as on real stacks.
	budget := 40
	if c.tsOK {
		t.UseTimestamps(c.tsNow(), c.peerTSval)
		budget -= 12
	}
	if ack, ok := c.dataAck(); ok {
		t.UseDSS(packet.DSS{HasAck: true, DataAck: ack})
		budget -= 12
	}
	if blocks := c.sackBlocks(); len(blocks) > 0 {
		if max := (budget - 2) / 8; len(blocks) > max {
			if max <= 0 {
				blocks = nil
			} else {
				blocks = blocks[:max]
			}
		}
		if len(blocks) > 0 {
			// UseSACK copies the scratch-built blocks into the packet's
			// inline storage; the scratch is reused on the next ACK.
			t.UseSACK(blocks)
		}
	}
	c.Stats.AcksSent++
	c.transmit(p, 0)
}

// sackBlocks renders the out-of-order queue as SACK blocks: contiguous
// ranges, the one containing the most recent arrival first (RFC 2018), at
// most MaxSACKBlocks. The returned slice is connection-owned scratch,
// overwritten by the next call; the ACK path copies it into the outgoing
// packet's storage.
func (c *Conn) sackBlocks() [][2]uint32 {
	if !c.sackOK || len(c.ooo) == 0 {
		return nil
	}
	ranges := c.sackScratch[:0]
	for _, s := range c.ooo {
		end := s.seq + uint32(s.length)
		if n := len(ranges); n > 0 && ranges[n-1][1] == s.seq {
			ranges[n-1][1] = end
			continue
		}
		ranges = append(ranges, [2]uint32{s.seq, end})
	}
	// Most recently updated block first.
	for i, r := range ranges {
		if seqGEQ(c.lastOOOSeq, r[0]) && seqLT(c.lastOOOSeq, r[1]) {
			ranges[0], ranges[i] = ranges[i], ranges[0]
			break
		}
	}
	if len(ranges) > packet.MaxSACKBlocks {
		ranges = ranges[:packet.MaxSACKBlocks]
	}
	c.sackScratch = ranges
	return ranges
}
