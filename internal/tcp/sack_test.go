package tcp

import (
	"testing"
	"time"

	"mptcpsim/internal/cc"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/unit"
)

// scoreboard unit tests operate on a Conn with hand-built state.
func scoreboardConn() *Conn {
	c := &Conn{
		cfg:  Config{}.withDefaults(),
		loop: sim.NewLoop(),
		mss:  1000,
	}
	c.sackOK = true
	c.state = StateEstablished
	c.iss = 0
	c.sndUna = 1
	c.sndNxt = 1
	c.Flow.MSS = 1000
	// Ten 1000-byte segments: seqs 1..10001.
	for i := 0; i < 10; i++ {
		c.rtx = append(c.rtx, seg{seq: uint32(1 + i*1000), length: 1000})
		c.sndNxt += 1000
	}
	c.pipe = c.scanOutstanding()
	return c
}

func TestApplySACKMarksExactRanges(t *testing.T) {
	c := scoreboardConn()
	// SACK covering segments 3 and 4 (seqs 2001..4001).
	changed := c.applySACK([][2]uint32{{2001, 4001}})
	if !changed {
		t.Fatal("no change reported")
	}
	for i, s := range c.rtx {
		want := i == 2 || i == 3
		if s.sacked != want {
			t.Fatalf("segment %d sacked=%v, want %v", i, s.sacked, want)
		}
	}
	// Reapplying is idempotent.
	if c.applySACK([][2]uint32{{2001, 4001}}) {
		t.Fatal("idempotent reapply reported change")
	}
	// Partial coverage must not mark (segments are the SACK granularity).
	if c.applySACK([][2]uint32{{4001, 4500}}) {
		t.Fatal("partial segment coverage marked something")
	}
	if c.hiSacked != 4001 {
		t.Fatalf("hiSacked = %d, want 4001", c.hiSacked)
	}
}

func TestApplySACKIgnoresInvalidBlocks(t *testing.T) {
	c := scoreboardConn()
	if c.applySACK([][2]uint32{{5000, 5000}, {6000, 5000}}) {
		t.Fatal("degenerate blocks changed the scoreboard")
	}
}

func TestMarkLostNeedsThreshold(t *testing.T) {
	c := scoreboardConn()
	// SACK only segment 2 (1000 bytes above segment 1): below 3*MSS.
	c.applySACK([][2]uint32{{1001, 2001}})
	if c.markLost() {
		t.Fatal("marked lost below the dupACK-equivalent threshold")
	}
	// SACK segments 2,3,4: 3000 bytes above segment 1 => lost.
	c.applySACK([][2]uint32{{1001, 4001}})
	if !c.markLost() {
		t.Fatal("did not mark the head segment lost")
	}
	if !c.rtx[0].lost || c.rtx[0].sacked {
		t.Fatal("wrong segment marked")
	}
	// Segments above the SACKed range are untouched.
	for i := 4; i < 10; i++ {
		if c.rtx[i].lost {
			t.Fatalf("segment %d beyond SACKed range marked lost", i)
		}
	}
}

func TestOutstandingPipeExcludesSackedAndLost(t *testing.T) {
	c := scoreboardConn()
	if got := c.outstanding(); got != 10000 {
		t.Fatalf("pipe = %d, want 10000", got)
	}
	c.applySACK([][2]uint32{{1001, 4001}}) // 3 segments sacked
	c.markLost()                           // head lost
	// pipe = 10 - 3 sacked - 1 lost = 6 segments.
	if got := c.outstanding(); got != 6000 {
		t.Fatalf("pipe = %d, want 6000", got)
	}
	// The incremental cache must track the reference scan.
	if c.pipe != c.scanOutstanding() {
		t.Fatalf("incremental pipe %d != scan %d", c.pipe, c.scanOutstanding())
	}
	// A retransmitted lost segment re-enters the pipe. The scoreboard is
	// poked directly here, so re-sync the cache from the reference scan.
	c.rtx[0].rtx = true
	c.pipe = c.scanOutstanding()
	if got := c.outstanding(); got != 7000 {
		t.Fatalf("pipe = %d, want 7000", got)
	}
}

func TestSACKBlocksFromOOOQueue(t *testing.T) {
	c := scoreboardConn()
	c.rcvNxt = 1
	// Two gaps: [2001,3001) and [5001,6001), arriving newest first.
	c.storeOOO(5001, 1000, nil)
	c.storeOOO(2001, 1000, nil)
	blocks := c.sackBlocks()
	if len(blocks) != 2 {
		t.Fatalf("blocks = %v", blocks)
	}
	// Most recent arrival's block first.
	if blocks[0] != [2]uint32{2001, 3001} {
		t.Fatalf("first block = %v, want the newest arrival", blocks[0])
	}
	// Adjacent OOO segments coalesce.
	c.storeOOO(3001, 1000, nil)
	blocks = c.sackBlocks()
	for _, b := range blocks {
		if b == [2]uint32{2001, 4001} {
			return
		}
	}
	t.Fatalf("coalesced block missing: %v", blocks)
}

func TestSACKBlockLimit(t *testing.T) {
	c := scoreboardConn()
	c.rcvNxt = 1
	for i := 0; i < 6; i++ {
		c.storeOOO(uint32(2001+i*2000), 1000, nil) // non-adjacent gaps
	}
	if got := len(c.sackBlocks()); got > packet.MaxSACKBlocks {
		t.Fatalf("emitted %d blocks, cap is %d", got, packet.MaxSACKBlocks)
	}
}

// Integration: with SACK disabled the same lossy transfer needs more time
// but still completes exactly.
func TestNoSACKTransferCompletes(t *testing.T) {
	run := func(disable bool) (time.Duration, uint64, uint64) {
		g := newTestNet(t, 20*unit.Mbps, 5*time.Millisecond, 32*unit.KB)
		sink := &CountSink{}
		err := g.server.Listen(80, &Listener{
			ConfigFor: func([]packet.Option, packet.Endpoint) Config {
				return Config{Sink: sink, DisableSACK: disable}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		algo, _ := cc.New("reno")
		const totalBytes = 2 << 20
		conn, err := g.client.Dial(Config{
			CC: algo, Tag: 1, DisableSACK: disable,
			Source: &limitedSource{remaining: totalBytes},
		}, g.server.Addr, 80)
		if err != nil {
			t.Fatal(err)
		}
		// Finish when everything is delivered.
		var done sim.Time
		var watch func()
		watch = func() {
			if sink.Bytes >= totalBytes {
				done = g.loop.Now()
				return
			}
			g.loop.Schedule(10*time.Millisecond, watch)
		}
		g.loop.Schedule(0, watch)
		if err := g.loop.RunFor(120 * time.Second); err != nil {
			t.Fatal(err)
		}
		if sink.Bytes != totalBytes {
			t.Fatalf("delivered %d, want %d (disable=%v)", sink.Bytes, totalBytes, disable)
		}
		return done.Duration(), conn.Stats.Retransmits, conn.Stats.RTOs
	}
	sackTime, _, _ := run(false)
	nosackTime, rtx, _ := run(true)
	if rtx == 0 {
		t.Fatal("32KB queue should force losses")
	}
	if nosackTime <= sackTime {
		t.Fatalf("NewReno-only (%v) should be slower than SACK (%v)", nosackTime, sackTime)
	}
}

// SYN loss: the handshake retries with backoff and still establishes.
func TestSYNRetransmission(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, unit.MB)
	// Drop the first SYN only.
	tn.fwd.SetAQM(&dropNth{n: 0}) // dropNth counts data packets only; SYNs have no payload
	drops := 0
	tn.fwd.SetAQM(aqmFunc(func(l *netem.Link, p *packet.Packet) bool {
		if p.TCP != nil && p.TCP.Flags&packet.FlagSYN != 0 && p.TCP.Flags&packet.FlagACK == 0 && drops == 0 {
			drops++
			return true
		}
		return false
	}))
	conn, sink := tn.startBulk(t, &limitedSource{remaining: 10000}, nil)
	if err := tn.loop.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if conn.State() != StateEstablished {
		t.Fatalf("state = %v after SYN loss", conn.State())
	}
	if sink.Bytes != 10000 {
		t.Fatalf("delivered %d", sink.Bytes)
	}
	if conn.synSent < 2 {
		t.Fatal("SYN was not retransmitted")
	}
}

type aqmFunc func(*netem.Link, *packet.Packet) bool

func (aqmFunc) Name() string                                     { return "aqmfunc" }
func (f aqmFunc) OnEnqueue(l *netem.Link, p *packet.Packet) bool { return f(l, p) }

// RTO backoff: consecutive timeouts grow the timer exponentially.
func TestRTOBackoffGrows(t *testing.T) {
	e := newRTTEstimator(DefaultMinRTO, DefaultMaxRTO)
	e.Sample(50 * time.Millisecond)
	base := e.RTO()
	if base != DefaultMinRTO {
		t.Fatalf("base RTO = %v", base)
	}
	// Backoffs are applied by the conn as rto << backoff, capped at MaxRTO.
	for i := uint(0); i < 16; i++ {
		rto := base << i
		if rto > DefaultMaxRTO {
			rto = DefaultMaxRTO
		}
		if rto <= 0 || rto > DefaultMaxRTO {
			t.Fatalf("backoff %d produced %v", i, rto)
		}
	}
}

func TestTimestampsNegotiation(t *testing.T) {
	// Both sides on: tsOK; one side off: no timestamps anywhere.
	for _, serverOn := range []bool{true, false} {
		tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, unit.MB)
		sink := &CountSink{}
		err := tn.server.Listen(80, &Listener{
			ConfigFor: func([]packet.Option, packet.Endpoint) Config {
				return Config{Sink: sink, Timestamps: serverOn}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		algo, _ := cc.New("reno")
		conn, err := tn.client.Dial(Config{
			CC: algo, Tag: 1, Timestamps: true,
			Source: &limitedSource{remaining: 64 * 1024},
		}, tn.server.Addr, 80)
		if err != nil {
			t.Fatal(err)
		}
		if err := tn.loop.RunFor(3 * time.Second); err != nil {
			t.Fatal(err)
		}
		if sink.Bytes != 64*1024 {
			t.Fatalf("transfer incomplete with serverOn=%v", serverOn)
		}
		if conn.tsOK != serverOn {
			t.Fatalf("tsOK = %v, want %v", conn.tsOK, serverOn)
		}
		if serverOn && !conn.peerTSseen {
			t.Fatal("no peer timestamps recorded")
		}
	}
}

func TestTimestampsRTTSampling(t *testing.T) {
	// With timestamps, SRTT should track the true path RTT (about 10 ms
	// base + queueing) just like the timed-segment method, and the
	// transfer must survive loss (samples continue during recovery).
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, 64*unit.KB)
	tn.fwd.SetLoss(0.01, sim.NewRand(5))
	sink := &CountSink{}
	err := tn.server.Listen(80, &Listener{
		ConfigFor: func([]packet.Option, packet.Endpoint) Config {
			return Config{Sink: sink, Timestamps: true}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	algo, _ := cc.New("reno")
	conn, err := tn.client.Dial(Config{
		CC: algo, Tag: 1, Timestamps: true,
		Source: &limitedSource{remaining: 1 << 20},
	}, tn.server.Addr, 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := tn.loop.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != 1<<20 {
		t.Fatalf("delivered %d", sink.Bytes)
	}
	if srtt := conn.SRTT(); srtt < 10*time.Millisecond || srtt > 80*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~10-80ms", srtt)
	}
}

func TestOptionSpaceBudget(t *testing.T) {
	// A pure ACK with timestamps + MPTCP data-ack + SACK must fit the
	// 40-byte option space: header <= 60 bytes.
	c := scoreboardConn()
	c.tsOK = true
	c.cfg.Sink = &fakeDataAckSink{}
	c.rcvNxt = 1
	for i := 0; i < 5; i++ {
		c.storeOOO(uint32(2001+i*2000), 1000, nil)
	}
	tt := &packet.TCP{
		Flags:  packet.FlagACK,
		Window: 4096,
	}
	tt.Options = append(tt.Options, &packet.Timestamps{TSval: 1, TSecr: 2})
	tt.Options = append(tt.Options, &packet.DSS{HasAck: true, DataAck: 99})
	blocks := c.sackBlocks()
	budget := 40 - 12 - 12
	if max := (budget - 2) / 8; len(blocks) > max {
		blocks = blocks[:max]
	}
	if len(blocks) != 1 {
		t.Fatalf("budgeted blocks = %d, want 1", len(blocks))
	}
	tt.Options = append(tt.Options, &packet.SACK{Blocks: blocks})
	if hl := tt.HeaderLen(); hl > 60 {
		t.Fatalf("header length %d exceeds TCP maximum 60", hl)
	}
}

type fakeDataAckSink struct{}

func (fakeDataAckSink) OnData(int, *packet.DSS) {}
func (fakeDataAckSink) DataAck() (uint64, bool) { return 12345, true }
