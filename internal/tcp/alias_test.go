package tcp

// Aliasing regression tests for the arena discipline: a retransmission
// fires long after the packet that first carried the segment was
// recycled and its slot redrawn, so the sender's scoreboard must hold its
// DSS mapping by value, never through the recycled option storage.

import (
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/unit"
)

// dssBulkSource grants MSS-sized chunks and stamps each with a mapping in
// connection-owned scratch, exactly like the MPTCP scheduler: the scratch
// is overwritten on the very next grant, so only a value copy survives.
type dssBulkSource struct {
	remaining int
	next      uint64
	scratch   packet.DSS
}

func (s *dssBulkSource) Next(max int) (int, *packet.DSS) {
	if s.remaining <= 0 || max <= 0 {
		return 0, nil
	}
	n := max
	if s.remaining < n {
		n = s.remaining
	}
	s.remaining -= n
	s.scratch = packet.DSS{HasMap: true, DSN: s.next}
	s.next += uint64(n)
	return n, &s.scratch
}

// dssTap records the mapping each delivered data packet carries.
type dssTap struct {
	got map[uint32]packet.DSS // TCP seq -> mapping
}

func (d *dssTap) OnDeliver(_ *netem.Node, p *packet.Packet) {
	if p.TCP == nil || p.PayloadLen == 0 {
		return
	}
	for _, o := range p.TCP.Options {
		if dss, ok := o.(*packet.DSS); ok && dss.HasMap {
			d.got[p.TCP.Seq] = *dss // copy: the packet is recycled after this tap
		}
	}
}

func (d *dssTap) OnTransmit(*netem.Link, *packet.Packet)          {}
func (d *dssTap) OnDrop(string, *packet.Packet, netem.DropReason) {}

// TestRetransmitCarriesOriginalMapping drops an early data packet, lets
// dozens of later segments reuse its arena slot (overwriting the slot's
// DSS storage with later mappings), then checks the retransmission still
// carries the dropped segment's own mapping. If the sender aliased the
// recycled option storage instead of copying the DSS by value, the
// retransmitted mapping would be a later grant's.
func TestRetransmitCarriesOriginalMapping(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, unit.MB)
	tap := &dssTap{got: make(map[uint32]packet.DSS)}
	tn.net.AttachTap(tap)
	tn.fwd.SetAQM(&dropNth{n: 5})
	const total = 256 * 1024
	conn, sink := tn.startBulk(t, &dssBulkSource{remaining: total}, nil)
	if err := tn.loop.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != total {
		t.Fatalf("delivered %d bytes, want %d", sink.Bytes, total)
	}
	if conn.Stats.Retransmits == 0 {
		t.Fatal("test exercised nothing: no retransmission happened")
	}
	if len(tap.got) == 0 {
		t.Fatal("tap saw no mapped data packets")
	}
	// Grants are sequential, so a segment at subflow offset k carries
	// DSN == k. The dropped segment's retransmission must obey this too.
	for seq, dss := range tap.got {
		offset := seq - conn.iss - 1
		if dss.DSN != uint64(offset) {
			t.Fatalf("seq %d (offset %d) delivered with DSN %d — a recycled slot's mapping leaked into a retransmission", seq, offset, dss.DSN)
		}
		if dss.SubflowSeq != offset {
			t.Fatalf("seq %d: subflow seq %d, want %d", seq, dss.SubflowSeq, offset)
		}
	}
}
