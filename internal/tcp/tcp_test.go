package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"mptcpsim/internal/cc"
	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// limitedSource sends a fixed number of bytes then stops.
type limitedSource struct{ remaining int }

func (s *limitedSource) Next(max int) (int, *packet.DSS) {
	if s.remaining <= 0 {
		return 0, nil
	}
	n := max
	if s.remaining < n {
		n = s.remaining
	}
	s.remaining -= n
	return n, nil
}

// dropSeq is an AQM that deterministically drops data packets whose TCP
// sequence number matches, up to `times` occurrences.
type dropSeq struct {
	seq   uint32
	times int
}

func (d *dropSeq) Name() string { return "dropseq" }
func (d *dropSeq) OnEnqueue(_ *netem.Link, p *packet.Packet) bool {
	if d.times > 0 && p.TCP != nil && p.PayloadLen > 0 && p.TCP.Seq == d.seq {
		d.times--
		return true
	}
	return false
}

// dropNth drops the nth data packet it sees (1-based), once.
type dropNth struct {
	n     int
	count int
}

func (d *dropNth) Name() string { return "dropnth" }
func (d *dropNth) OnEnqueue(_ *netem.Link, p *packet.Packet) bool {
	if p.TCP == nil || p.PayloadLen == 0 {
		return false
	}
	d.count++
	return d.count == d.n
}

// testNet is a two-host network joined by a single duplex link.
type testNet struct {
	loop   *sim.Loop
	net    *netem.Network
	client *Host
	server *Host
	fwd    *netem.Link // client -> server direction
}

func newTestNet(t *testing.T, rate unit.Rate, delay time.Duration, queue unit.ByteSize) *testNet {
	t.Helper()
	g := topo.New()
	a, b := g.AddNode("client"), g.AddNode("server")
	ab, _ := g.AddDuplex(a, b, rate, delay, queue)
	loop := sim.NewLoop()
	tt := route.NewTagTable(g)
	n, err := netem.New(loop, g, tt)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewHost(n, a, sim.NewRand(1))
	sh := NewHost(n, b, sim.NewRand(2))
	p := topo.Path{Nodes: []topo.NodeID{a, b}, Links: []topo.LinkID{ab}}
	if err := tt.AddPath(sh.Addr, 1, p); err != nil {
		t.Fatal(err)
	}
	rev, _ := topo.ReversePath(g, p)
	if err := tt.AddPath(ch.Addr, 1, rev); err != nil {
		t.Fatal(err)
	}
	return &testNet{loop: loop, net: n, client: ch, server: sh, fwd: n.Link(ab)}
}

// startBulk wires a server sink + client sender with the given source.
func (tn *testNet) startBulk(t *testing.T, src Source, algo cc.Algorithm) (*Conn, *CountSink) {
	t.Helper()
	sink := &CountSink{}
	err := tn.server.Listen(80, &Listener{
		ConfigFor: func([]packet.Option, packet.Endpoint) Config {
			return Config{Sink: sink, Tag: 1}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if algo == nil {
		algo, _ = cc.New("reno")
	}
	conn, err := tn.client.Dial(Config{
		Tag:    1,
		CC:     algo,
		Source: src,
		FlowID: "test",
	}, tn.server.Addr, 80)
	if err != nil {
		t.Fatal(err)
	}
	return conn, sink
}

func TestHandshakeEstablishes(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, 0)
	conn, _ := tn.startBulk(t, &limitedSource{remaining: 0}, nil)
	if conn.State() != StateSynSent {
		t.Fatalf("state = %v before running", conn.State())
	}
	if err := tn.loop.RunFor(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if conn.State() != StateEstablished {
		t.Fatalf("state = %v, want established", conn.State())
	}
	// SRTT should be about one RTT (10 ms + tx times).
	if conn.SRTT() < 10*time.Millisecond || conn.SRTT() > 15*time.Millisecond {
		t.Fatalf("SRTT = %v, want ~10ms", conn.SRTT())
	}
	if conn.EffectiveMSS() != DefaultMSS {
		t.Fatalf("MSS = %d", conn.EffectiveMSS())
	}
}

func TestBulkTransferDeliversExactly(t *testing.T) {
	// Deep queue: slow start's burst must not overflow it, so the transfer
	// is loss-free.
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, unit.MB)
	const total = 200 * 1024
	conn, sink := tn.startBulk(t, &limitedSource{remaining: total}, nil)
	if err := tn.loop.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != total {
		t.Fatalf("delivered %d bytes, want %d", sink.Bytes, total)
	}
	if conn.Stats.Retransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", conn.Stats.Retransmits)
	}
	if conn.Stats.RTOs != 0 {
		t.Fatalf("unexpected RTOs: %d", conn.Stats.RTOs)
	}
}

func TestThroughputReachesLineRate(t *testing.T) {
	// A few BDPs of buffer: the Reno sawtooth never drains the link. The
	// first ~1.5 s are the slow-start overshoot being repaired (NewReno
	// fixes one hole per RTT without SACK), so measure steady state after
	// a warmup.
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, 64*unit.KB)
	_, sink := tn.startBulk(t, BulkSource{}, nil)
	if err := tn.loop.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	warm := sink.Bytes
	if err := tn.loop.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Payload goodput = rate * MSS/(MSS+headers). Headers: 40 bytes.
	gotMbps := float64(sink.Bytes-warm) * 8 / 5 / 1e6
	wantMbps := 10.0 * DefaultMSS / (DefaultMSS + 40)
	if gotMbps < wantMbps*0.95 || gotMbps > wantMbps*1.01 {
		t.Fatalf("steady-state goodput = %.2f Mbps, want ~%.2f", gotMbps, wantMbps)
	}
}

func TestSlowStartIsExponential(t *testing.T) {
	// On a fat link the transfer of ~100 segments should complete in a few
	// RTTs (IW=10: 10+20+40+80 > 100 => ~3 RTT + handshake), far faster
	// than the ~10 RTTs ACK-paced linear growth would need.
	tn := newTestNet(t, unit.Gbps, 10*time.Millisecond, unit.MB)
	const total = 100 * DefaultMSS
	_, sink := tn.startBulk(t, &limitedSource{remaining: total}, nil)
	deadline := 6 * 21 * time.Millisecond // 6 RTTs incl. handshake
	if err := tn.loop.RunFor(deadline); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != total {
		t.Fatalf("slow start too slow: %d/%d bytes after %v", sink.Bytes, total, deadline)
	}
}

func TestFastRetransmitSingleLoss(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, unit.MB)
	tn.fwd.SetAQM(&dropNth{n: 30})
	const total = 300 * 1024
	conn, sink := tn.startBulk(t, &limitedSource{remaining: total}, nil)
	if err := tn.loop.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != total {
		t.Fatalf("delivered %d, want %d", sink.Bytes, total)
	}
	if conn.Stats.FastRecovery != 1 {
		t.Fatalf("fast recoveries = %d, want 1", conn.Stats.FastRecovery)
	}
	if conn.Stats.RTOs != 0 {
		t.Fatalf("RTOs = %d, want 0 (loss should be repaired by fast rtx)", conn.Stats.RTOs)
	}
	if conn.Stats.Retransmits != 1 {
		t.Fatalf("retransmits = %d, want 1", conn.Stats.Retransmits)
	}
}

func TestRecoveryWhenRetransmissionAlsoLost(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, unit.MB)
	conn, sink := tn.startBulk(t, &limitedSource{remaining: 120 * 1024}, nil)
	// Drop one specific sequence twice: the original and its first
	// retransmission. The RACK-style re-arm (or ultimately the RTO) must
	// still complete the transfer with a second retransmission.
	var target uint32
	seen := 0
	tapAQM := &seqSniffer{pick: 20, target: &target, seen: &seen}
	tn.fwd.SetAQM(tapAQM)
	if err := tn.loop.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != 120*1024 {
		t.Fatalf("delivered %d, want %d", sink.Bytes, 120*1024)
	}
	if conn.Stats.Retransmits < 2 {
		t.Fatalf("retransmits = %d, want >= 2 (rtx itself was dropped)", conn.Stats.Retransmits)
	}
}

// seqSniffer drops the pick-th data packet and then every packet with the
// same sequence number once more (killing the fast retransmission).
type seqSniffer struct {
	pick   int
	seen   *int
	target *uint32
	drops  int
}

func (s *seqSniffer) Name() string { return "seqsniffer" }
func (s *seqSniffer) OnEnqueue(_ *netem.Link, p *packet.Packet) bool {
	if p.TCP == nil || p.PayloadLen == 0 {
		return false
	}
	*s.seen++
	if *s.seen == s.pick {
		*s.target = p.TCP.Seq
		s.drops++
		return true
	}
	if s.drops == 1 && p.TCP.Seq == *s.target {
		s.drops++
		return true
	}
	return false
}

func TestDelayedAcksRoughlyHalveAckCount(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, unit.MB)
	const total = 500 * DefaultMSS
	_, sink := tn.startBulk(t, &limitedSource{remaining: total}, nil)
	if err := tn.loop.RunFor(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != total {
		t.Fatal("transfer incomplete")
	}
	// Count server-side ACKs: reach into its conns map.
	var acks uint64
	for _, c := range tn.server.conns {
		acks += c.Stats.AcksSent
	}
	// Roughly one ACK per two segments (plus delack-timeout stragglers).
	if acks < 220 || acks > 330 {
		t.Fatalf("ACKs sent = %d for 500 segments, want ~250", acks)
	}
}

func TestReceiverWindowLimitsFlight(t *testing.T) {
	tn := newTestNet(t, 100*unit.Mbps, 20*time.Millisecond, unit.MB)
	sink := &CountSink{}
	err := tn.server.Listen(80, &Listener{
		ConfigFor: func([]packet.Option, packet.Endpoint) Config {
			return Config{Sink: sink, RcvBuf: 16 * unit.KB}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	algo, _ := cc.New("reno")
	conn, err := tn.client.Dial(Config{Tag: 1, CC: algo, Source: BulkSource{}}, tn.server.Addr, 80)
	if err != nil {
		t.Fatal(err)
	}
	maxFlight := 0
	var probe func()
	probe = func() {
		if f := conn.BytesInFlight(); f > maxFlight {
			maxFlight = f
		}
		tn.loop.Schedule(time.Millisecond, probe)
	}
	tn.loop.Schedule(0, probe)
	if err := tn.loop.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Wire window quantisation can exceed the buffer by <= WindowUnit.
	if maxFlight > 16*1024+packet.WindowUnit {
		t.Fatalf("in-flight %d exceeded receive window 16KB", maxFlight)
	}
	if sink.Bytes == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two Reno flows, same RTT, one bottleneck: long-run shares ~equal.
	g := topo.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	ab, _ := g.AddDuplex(a, b, 20*unit.Mbps, 5*time.Millisecond, 0)
	loop := sim.NewLoop()
	tt := route.NewTagTable(g)
	n, err := netem.New(loop, g, tt)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewHost(n, a, sim.NewRand(1))
	sh := NewHost(n, b, sim.NewRand(2))
	p := topo.Path{Nodes: []topo.NodeID{a, b}, Links: []topo.LinkID{ab}}
	if err := tt.AddPath(sh.Addr, 1, p); err != nil {
		t.Fatal(err)
	}
	rev, _ := topo.ReversePath(g, p)
	if err := tt.AddPath(ch.Addr, 1, rev); err != nil {
		t.Fatal(err)
	}
	sinks := make([]*CountSink, 2)
	idx := 0
	err = sh.Listen(80, &Listener{
		ConfigFor: func([]packet.Option, packet.Endpoint) Config {
			s := &CountSink{}
			sinks[idx] = s
			idx++
			return Config{Sink: s}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		algo, _ := cc.New("reno")
		if _, err := ch.Dial(Config{Tag: 1, CC: algo, Source: BulkSource{}}, sh.Addr, 80); err != nil {
			t.Fatal(err)
		}
	}
	if err := loop.RunFor(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	b0, b1 := float64(sinks[0].Bytes), float64(sinks[1].Bytes)
	sum := b0 + b1
	// Aggregate should fill the pipe.
	if mbps := sum * 8 / 20 / 1e6; mbps < 17 {
		t.Fatalf("aggregate = %.1f Mbps on a 20 Mbps link", mbps)
	}
	jain := (b0 + b1) * (b0 + b1) / (2 * (b0*b0 + b1*b1))
	if jain < 0.90 {
		t.Fatalf("Jain index = %.3f (b0=%.0f b1=%.0f), want >= 0.90", jain, b0, b1)
	}
}

func TestTransferSurvivesRandomLoss(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, unit.MB)
	tn.fwd.SetLoss(0.02, sim.NewRand(42))
	const total = 500 * 1024
	conn, sink := tn.startBulk(t, &limitedSource{remaining: total}, nil)
	if err := tn.loop.RunFor(60 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != total {
		t.Fatalf("delivered %d, want %d (rtx=%d rto=%d)",
			sink.Bytes, total, conn.Stats.Retransmits, conn.Stats.RTOs)
	}
	if conn.Stats.Retransmits == 0 {
		t.Fatal("2% loss but no retransmissions?")
	}
}

func TestCubicTransferCompletes(t *testing.T) {
	tn := newTestNet(t, 50*unit.Mbps, 10*time.Millisecond, 0)
	algo, _ := cc.New("cubic")
	tn.fwd.SetLoss(0.001, sim.NewRand(7))
	const total = 2 * 1024 * 1024
	_, sink := tn.startBulk(t, &limitedSource{remaining: total}, algo)
	if err := tn.loop.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if sink.Bytes != total {
		t.Fatalf("delivered %d, want %d", sink.Bytes, total)
	}
}

func TestRTTEstimatorRFC6298(t *testing.T) {
	e := newRTTEstimator(DefaultMinRTO, DefaultMaxRTO)
	if e.RTO() != initialRTO {
		t.Fatalf("pre-sample RTO = %v, want 1s", e.RTO())
	}
	e.Sample(100 * time.Millisecond)
	if e.SRTT() != 100*time.Millisecond {
		t.Fatalf("first SRTT = %v", e.SRTT())
	}
	// rttvar = 50ms; RTO = 100 + 4*50 = 300ms.
	if e.RTO() != 300*time.Millisecond {
		t.Fatalf("RTO = %v, want 300ms", e.RTO())
	}
	e.Sample(100 * time.Millisecond)
	// rttvar = 3/4*50 + 1/4*0 = 37.5ms ; srtt stays 100ms; RTO = 250ms.
	if e.RTO() != 250*time.Millisecond {
		t.Fatalf("RTO after stable sample = %v, want 250ms", e.RTO())
	}
	// Clamping below MinRTO.
	for i := 0; i < 100; i++ {
		e.Sample(10 * time.Millisecond)
	}
	if e.RTO() != DefaultMinRTO {
		t.Fatalf("RTO = %v, want clamped to %v", e.RTO(), DefaultMinRTO)
	}
	if e.MinRTT() != 10*time.Millisecond {
		t.Fatalf("MinRTT = %v", e.MinRTT())
	}
}

// Property: sequence comparisons behave like signed distance even across
// the wrap point.
func TestQuickSeqArithmetic(t *testing.T) {
	f := func(a uint32, d uint16) bool {
		b := a + uint32(d)
		if d == 0 {
			return seqLEQ(a, b) && seqGEQ(a, b) && !seqLT(a, b) && !seqGT(a, b)
		}
		return seqLT(a, b) && seqLEQ(a, b) && seqGT(b, a) && seqGEQ(b, a) &&
			seqDiff(b, a) == int(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: transfers of arbitrary sizes deliver exactly once under a
// deterministic single loss at an arbitrary position.
func TestQuickExactDeliveryUnderLoss(t *testing.T) {
	f := func(sizeKB uint8, dropAt uint8) bool {
		tn := newTestNet(t, 20*unit.Mbps, 2*time.Millisecond, unit.MB)
		total := (int(sizeKB%64) + 1) * 1024
		tn.fwd.SetAQM(&dropNth{n: int(dropAt%40) + 1})
		_, sink := tn.startBulk(t, &limitedSource{remaining: total}, nil)
		if err := tn.loop.RunFor(30 * time.Second); err != nil {
			return false
		}
		return sink.Bytes == uint64(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseStopsConnection(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, 5*time.Millisecond, 0)
	conn, _ := tn.startBulk(t, BulkSource{}, nil)
	tn.loop.Schedule(time.Second, func() { conn.Close() })
	if err := tn.loop.RunFor(1100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if conn.State() != StateClosed {
		t.Fatalf("state = %v", conn.State())
	}
	sent := conn.Stats.SentSegments
	if err := tn.loop.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if conn.Stats.SentSegments != sent {
		t.Fatal("closed connection kept sending")
	}
}

func TestListenerRejectsDuplicatePort(t *testing.T) {
	tn := newTestNet(t, 10*unit.Mbps, time.Millisecond, 0)
	if err := tn.server.Listen(80, &Listener{}); err != nil {
		t.Fatal(err)
	}
	if err := tn.server.Listen(80, &Listener{}); err == nil {
		t.Fatal("duplicate Listen accepted")
	}
}
