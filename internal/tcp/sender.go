package tcp

import (
	"sort"
	"time"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
)

// effectiveWindow returns the sending window in bytes: the congestion
// window limited by the peer's advertised window. Without SACK, limited
// transmit (RFC 3042) adds headroom on the first two duplicate ACKs and
// NewReno inflation is folded into Cwnd by processAck; with SACK neither
// is needed because the pipe estimate shrinks as SACK blocks arrive.
func (c *Conn) effectiveWindow() int {
	wnd := int(c.Flow.Cwnd)
	if !c.sackOK && !c.inRec && c.dupAcks > 0 && c.dupAcks < 3 {
		wnd += c.dupAcks * c.mss
	}
	if pw := int(c.peerRwnd); pw < wnd {
		wnd = pw
	}
	return wnd
}

// outstanding estimates the bytes currently in the network: the SACK
// "pipe" of RFC 6675 when available, else plain flight size. The pipe is
// maintained incrementally (c.pipe) at every scoreboard mutation, since
// every ACK reads it; scanOutstanding is the reference recomputation.
func (c *Conn) outstanding() int {
	if !c.sackOK {
		return c.BytesInFlight()
	}
	return c.pipe
}

// segPipe is one segment's contribution to the RFC 6675 pipe.
func segPipe(s *seg) int {
	switch {
	case s.sacked:
		return 0 // left the network
	case s.lost:
		if s.rtx {
			return s.length // the retransmission is in flight
		}
		return 0
	default:
		return s.length
	}
}

// scanOutstanding recomputes the SACK pipe from the scoreboard. The
// incrementally maintained c.pipe must always equal it; tests that build
// scoreboards by hand use it to initialise the cache.
func (c *Conn) scanOutstanding() int {
	p := 0
	for i := c.rtxHead; i < len(c.rtx); i++ {
		p += segPipe(&c.rtx[i])
	}
	return p
}

// trySend pulls data from the Source while window space allows.
func (c *Conn) trySend() {
	if c.state != StateEstablished || c.cfg.Source == nil {
		return
	}
	// The window inputs (cwnd, rwnd, dupAcks) cannot change inside the
	// loop — sends only schedule future events — so the pipe estimate is
	// computed once and advanced per segment instead of rescanning the
	// scoreboard for every packet of a burst.
	wnd := c.effectiveWindow()
	out := c.outstanding()
	for {
		avail := wnd - out
		if avail < 1 {
			return
		}
		chunk := c.mss
		if avail < chunk {
			// Avoid silly-window segments unless nothing is outstanding.
			if c.BytesInFlight() > 0 {
				return
			}
			chunk = avail
		}
		n, dss := c.cfg.Source.Next(chunk)
		if n <= 0 {
			return
		}
		if n > chunk {
			n = chunk
		}
		if dss != nil && dss.HasMap {
			// The mapping's subflow-relative sequence is the stream offset
			// of this segment; the Source cannot know it, the sender does.
			dss.SubflowSeq = c.sndNxt - (c.iss + 1)
			dss.DataLen = uint16(n)
		}
		c.sendData(c.sndNxt, n, dss, false)
		c.sndNxt += uint32(n)
		out += n
		// The tracked segment copies the mapping by value: dss points at
		// Source-owned scratch that the next grant overwrites, and the
		// packet that carried it is recycled at delivery.
		sg := seg{seq: c.sndNxt - uint32(n), length: n, sentAt: c.loop.Now()}
		if dss != nil {
			sg.dss, sg.hasDSS = *dss, true
		}
		c.rtx = append(c.rtx, sg)
		c.pipe += n
		if !c.timing {
			// Time this segment for the next RTT sample (one at a time).
			c.timing = true
			c.timedEnd = c.sndNxt
			c.timedAt = c.loop.Now()
		}
		if !c.rtoTimer.Pending() {
			c.armRTO(c.rtt.RTO())
		}
	}
}

// sendData transmits one data segment (fresh or retransmission). The
// segment is built into arena storage: header and option values live in
// the packet's own slot, so nothing here allocates.
func (c *Conn) sendData(seq uint32, n int, dss *packet.DSS, isRtx bool) {
	p, t := c.arena.GetTCP()
	t.SrcPort = c.local.Port
	t.DstPort = c.remote.Port
	t.Seq = seq
	t.Ack = c.rcvNxt
	t.Flags = packet.FlagACK | packet.FlagPSH
	t.Window = c.advertisedWindow()
	if c.tsOK {
		t.UseTimestamps(c.tsNow(), c.peerTSval)
	}
	if dss != nil {
		// Copy: the option is serialised per packet.
		d := t.UseDSS(*dss)
		if ack, ok := c.dataAck(); ok {
			d.HasAck = true
			d.DataAck = ack
		}
	}
	if isRtx {
		c.Stats.Retransmits++
		// Karn's rule: a retransmission invalidates the running RTT timing.
		c.timing = false
	}
	c.transmit(p, n)
}

func (c *Conn) dataAck() (uint64, bool) {
	if c.cfg.Sink == nil {
		return 0, false
	}
	return c.cfg.Sink.DataAck()
}

// processAck handles the acknowledgement fields of an arriving segment.
func (c *Conn) processAck(pkt *packet.Packet) {
	t := pkt.TCP
	ack := t.Ack
	now := c.loop.Now()
	prevRwnd := c.peerRwnd
	c.peerRwnd = t.Window

	if seqGT(ack, c.sndNxt) {
		return // acks data never sent; ignore
	}

	sackAdvanced := false
	if c.sackOK {
		if o, ok := t.Option(packet.KindSACK).(*packet.SACK); ok {
			sackAdvanced = c.applySACK(o.Blocks)
		}
	}

	cumAdvanced := seqGT(ack, c.sndUna)
	if cumAdvanced {
		acked := seqDiff(ack, c.sndUna)
		c.sndUna = ack
		c.Stats.AckedBytes += uint64(acked)
		c.backoff = 0
		c.popAcked(ack, now)
		c.dupAcks = 0
		c.Flow.InFlight = c.outstanding()

		if c.inRec {
			if seqGEQ(ack, c.recover) {
				// Full acknowledgement: recovery ends.
				c.inRec = false
				if c.Flow.Cwnd > c.Flow.Ssthresh {
					c.Flow.Cwnd = c.Flow.Ssthresh
				}
			} else if !c.sackOK {
				// NewReno partial ACK: retransmit the next hole, deflate
				// the inflation by the amount acked, re-inflate one MSS.
				c.retransmitFront()
				c.Flow.Cwnd -= float64(acked)
				if c.Flow.Cwnd < float64(c.mss) {
					c.Flow.Cwnd = float64(c.mss)
				}
				c.Flow.Cwnd += float64(c.mss)
				if c.Flow.InSlowStart() {
					inc := acked
					if inc > 2*c.mss {
						inc = 2 * c.mss
					}
					c.Flow.Cwnd += float64(inc)
				}
				c.armRTO(c.rtt.RTO())
			} else {
				// SACK partial ACK: the scoreboard drives retransmission.
				// After an RTO the repair runs in slow start (RFC 5681), so
				// the window must grow or a large scoreboard drains at one
				// segment per RTT.
				if c.Flow.InSlowStart() {
					inc := acked
					if inc > 2*c.mss {
						inc = 2 * c.mss
					}
					c.Flow.Cwnd += float64(inc)
				}
				c.armRTO(c.rtt.RTO())
			}
		} else if c.cfg.CC != nil {
			c.cfg.CC.OnAck(&c.Flow, acked, now)
		}

		if c.BytesInFlight() == 0 {
			c.stopRTO()
		} else {
			c.armRTO(c.rtt.RTO())
		}
	} else if ack == c.sndUna && c.BytesInFlight() > 0 && pkt.PayloadLen == 0 &&
		t.Flags&packet.FlagSYN == 0 && (prevRwnd == t.Window || c.sackOK) {
		// Duplicate ACK.
		c.dupAcks++
		c.Stats.DupAcksSeen++
		if !c.sackOK {
			if c.inRec {
				// NewReno window inflation: each dup ACK signals a departure.
				c.Flow.Cwnd += float64(c.mss)
			} else if c.dupAcks == 3 {
				c.enterRecovery(now)
			}
		}
	}

	if c.sackOK {
		// Scoreboard maintenance: mark losses, enter recovery, retransmit.
		if c.markLost() && !c.inRec {
			c.enterRecovery(now)
		} else if sackAdvanced || cumAdvanced {
			c.sendScoreboard()
		}
		// Fallback: three duplicate ACKs without SACK progress still
		// indicate the head segment is gone (e.g. single-segment flight).
		if !c.inRec && c.dupAcks >= 3 {
			if c.rtxHead < len(c.rtx) {
				s := &c.rtx[c.rtxHead]
				c.pipe -= segPipe(s)
				s.lost = true
				s.rtx = false
			}
			c.enterRecovery(now)
		}
	}
	c.trySend()
}

// applySACK marks segments covered by the peer's SACK blocks; it reports
// whether any new byte was sacked. The scoreboard is contiguous and
// sorted by sequence (segments are appended in send order and popped
// from the front), so each block marks one run found by binary search
// instead of a full scan.
func (c *Conn) applySACK(blocks [][2]uint32) bool {
	changed := false
	for _, b := range blocks {
		start, end := b[0], b[1]
		if !seqLT(start, end) {
			continue
		}
		lo := c.rtxHead + sort.Search(len(c.rtx)-c.rtxHead, func(i int) bool {
			return seqGEQ(c.rtx[c.rtxHead+i].seq, start)
		})
		for i := lo; i < len(c.rtx); i++ {
			s := &c.rtx[i]
			if !seqLEQ(s.seq+uint32(s.length), end) {
				break
			}
			if s.sacked {
				continue
			}
			c.pipe -= segPipe(s)
			s.sacked = true
			s.lost = false
			changed = true
			if seqGT(s.seq+uint32(s.length), c.hiSacked) {
				c.hiSacked = s.seq + uint32(s.length)
			}
		}
	}
	return changed
}

// markLost applies the RFC 6675 loss heuristic: a hole is lost once at
// least a dupACK-threshold's worth of bytes above it have been SACKed. It
// reports whether any segment was newly marked.
func (c *Conn) markLost() bool {
	changed := false
	sackedAbove := 0
	thresh := 3 * c.mss
	for i := len(c.rtx) - 1; i >= c.rtxHead; i-- {
		s := &c.rtx[i]
		if s.sacked {
			sackedAbove += s.length
			continue
		}
		if !s.lost && sackedAbove >= thresh {
			c.pipe -= segPipe(s)
			s.lost = true
			s.rtx = false
			changed = true
		}
	}
	return changed
}

// sendScoreboard retransmits lost segments while the pipe allows (the
// SACK-based recovery transmission rule).
func (c *Conn) sendScoreboard() {
	if c.state != StateEstablished {
		return
	}
	// One pass: window inputs are fixed for the burst, each retransmitted
	// hole adds its length to the pipe, and the candidate scan resumes
	// where it left off — a hole just marked rtx with a fresh sentAt
	// would fail the eligibility check anyway, so nothing behind the
	// cursor can become eligible mid-burst.
	wnd := c.effectiveWindow()
	out := c.outstanding()
	// A retransmission that has itself been outstanding for a full RTO
	// is presumed lost again and re-sent — a per-segment soft timeout
	// that repairs double losses without collapsing the window. SRTT
	// lags queue growth too much for a tighter (RACK-style) bound.
	rearm := c.rtt.RTO()
	now := c.loop.Now()
	scan := c.rtxHead
	for {
		if out >= wnd {
			return
		}
		var hole *seg
		for ; scan < len(c.rtx); scan++ {
			s := &c.rtx[scan]
			if !s.lost || s.sacked {
				continue
			}
			if !s.rtx || now.Sub(s.sentAt) > rearm {
				hole = s
				break
			}
		}
		if hole == nil {
			return // no repairable holes; trySend handles new data
		}
		scan++
		if !hole.rtx {
			// A first retransmission re-enters the pipe; a soft-timeout
			// re-send was already counted.
			out += hole.length
			c.pipe += hole.length
		}
		hole.rtx = true
		hole.sentAt = now
		c.sendData(hole.seq, hole.length, hole.dssPtr(), true)
	}
}

// enterRecovery starts a loss-recovery episode: NewReno fast retransmit
// without SACK, scoreboard-driven recovery with it.
func (c *Conn) enterRecovery(now sim.Time) {
	c.inRec = true
	c.recover = c.sndNxt
	c.Stats.FastRecovery++
	c.Flow.InFlight = c.outstanding()
	if c.cfg.CC != nil {
		c.cfg.CC.OnLoss(&c.Flow, now)
	} else {
		c.Flow.Ssthresh = c.Flow.Cwnd / 2
	}
	if c.sackOK {
		// Conservative SACK recovery: halve immediately; pipe gating
		// meters retransmissions.
		c.Flow.Cwnd = c.Flow.Ssthresh
		c.sendScoreboard()
	} else {
		// NewReno: inflate by the three duplicate ACKs and resend the head.
		c.Flow.Cwnd = c.Flow.Ssthresh + float64(3*c.mss)
		c.retransmitFront()
	}
	c.armRTO(c.rtt.RTO())
}

// popAcked removes fully acknowledged segments and samples the RTT from
// the timed segment (one sample at a time; Karn's rule cancels timing on
// retransmissions, so repair-delayed cumulative ACKs cannot inflate SRTT).
func (c *Conn) popAcked(ack uint32, now sim.Time) {
	if c.timing && seqGEQ(ack, c.timedEnd) {
		c.rtt.Sample(now.Sub(c.timedAt))
		c.syncFlowRTT()
		c.timing = false
	}
	for c.rtxHead < len(c.rtx) {
		s := &c.rtx[c.rtxHead]
		end := s.seq + uint32(s.length)
		if !seqLEQ(end, ack) {
			break
		}
		c.pipe -= segPipe(s)
		c.rtxHead++
	}
	if c.rtxHead == len(c.rtx) {
		c.rtx = c.rtx[:0]
		c.rtxHead = 0
	} else if c.rtxHead > 1024 && c.rtxHead*2 >= len(c.rtx) {
		c.rtx = append(c.rtx[:0], c.rtx[c.rtxHead:]...)
		c.rtxHead = 0
	}
}

// retransmitFront resends the first unacknowledged segment (NewReno path).
func (c *Conn) retransmitFront() {
	if c.rtxHead >= len(c.rtx) {
		return
	}
	s := &c.rtx[c.rtxHead]
	c.pipe -= segPipe(s)
	s.rtx = true
	s.sentAt = c.loop.Now()
	c.pipe += segPipe(s)
	c.sendData(s.seq, s.length, s.dssPtr(), true)
}

// armRTO (re)starts the retransmission timer. The reset is allocation-free:
// the pre-bound callback struct is scheduled on a pooled event node.
func (c *Conn) armRTO(d time.Duration) {
	c.rtoTimer.Stop()
	c.rtoTimer = c.loop.ScheduleCall(d, &c.rtoCall)
}

func (c *Conn) stopRTO() {
	c.rtoTimer.Stop()
}

// onRTO fires on retransmission timeout.
func (c *Conn) onRTO() {
	switch c.state {
	case StateSynSent, StateSynReceived:
		if c.synSent > synRetries {
			c.Close()
			return
		}
		c.backoff++
		c.sendSYN(c.state == StateSynReceived)
		return
	case StateEstablished:
	default:
		return
	}
	if c.BytesInFlight() == 0 {
		return
	}
	c.Stats.RTOs++
	c.Flow.InFlight = c.outstanding()
	if c.cfg.CC != nil {
		c.cfg.CC.OnRTO(&c.Flow, c.loop.Now())
	} else {
		c.Flow.Ssthresh = c.Flow.Cwnd / 2
		c.Flow.Cwnd = float64(c.mss)
	}
	// Enter a recovery episode; every un-SACKed segment is presumed lost
	// and will be retransmitted as the window reopens.
	c.inRec = true
	c.recover = c.sndNxt
	c.dupAcks = 0
	for i := c.rtxHead; i < len(c.rtx); i++ {
		s := &c.rtx[i]
		if !s.sacked {
			c.pipe -= segPipe(s)
			s.lost = true
			s.rtx = false
		}
	}
	if c.sackOK {
		c.sendScoreboard()
	} else {
		c.retransmitFront()
	}
	c.backoff++
	if c.backoff > 16 {
		c.backoff = 16
	}
	rto := c.rtt.RTO() << c.backoff
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	c.armRTO(rto)
}
