// Package tcp is a userspace TCP engine running over the netem substrate:
// three-way handshake, sliding-window byte-stream transfer with 32-bit
// wrap-safe sequence numbers, RFC 6298 retransmission timeout, NewReno
// loss recovery (fast retransmit on three duplicate ACKs, partial-ACK
// retransmission, window inflation/deflation), limited transmit, delayed
// ACKs and receive-side reassembly.
//
// Congestion control is pluggable through the cc package; MPTCP couples
// subflows by handing every subflow Conn the same cc.Algorithm instance.
// The MPTCP data layer attaches through two small interfaces: Source
// (pull-model supplier of payload plus DSS mappings on the send side) and
// Sink (consumer of in-order subflow data plus provider of connection-level
// data ACKs on the receive side).
package tcp

import (
	"time"

	"mptcpsim/internal/cc"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/unit"
)

// Default protocol parameters. They follow Linux defaults of the paper's
// era (MPTCP v0.94 on ~4.x kernels) where that matters to the dynamics.
const (
	// DefaultMSS is the default maximum segment size (payload bytes). It
	// leaves room for the 28-byte DSS option within a 1500-byte MTU:
	// 1500 - 20 (IP) - 20 (TCP) - 28 (DSS) = 1432; rounded down.
	DefaultMSS = 1400
	// DefaultInitialCwnd is the initial window in segments (RFC 6928).
	DefaultInitialCwnd = 10
	// DefaultRcvBuf is the advertised receive buffer.
	DefaultRcvBuf = 4 * unit.MB
	// DefaultDelAckCount acknowledges every second full segment.
	DefaultDelAckCount = 2
	// DefaultDelAckTimeout bounds how long an ACK may be delayed.
	DefaultDelAckTimeout = 40 * time.Millisecond
	// DefaultMinRTO is the Linux lower bound for the retransmission
	// timeout (RFC 6298 allows 1 s; Linux uses 200 ms).
	DefaultMinRTO = 200 * time.Millisecond
	// DefaultMaxRTO caps exponential backoff.
	DefaultMaxRTO = 60 * time.Second
	// synRetries bounds SYN retransmissions before giving up.
	synRetries = 6
	// initialRTO is the pre-sample RTO (RFC 6298 says 1 s).
	initialRTO = time.Second
)

// Config parameterises one connection (or a listener's accepted
// connections). The zero value of each field selects the default.
type Config struct {
	// MSS is the sender maximum segment size in payload bytes.
	MSS int
	// RcvBuf is the receive buffer / advertised window.
	RcvBuf unit.ByteSize
	// InitialCwnd is the initial congestion window in segments.
	InitialCwnd int
	// DelAckCount is the number of full segments per ACK (1 disables
	// delayed ACKs).
	DelAckCount int
	// DelAckTimeout bounds ACK delay.
	DelAckTimeout time.Duration
	// MinRTO and MaxRTO bound the retransmission timer.
	MinRTO, MaxRTO time.Duration
	// CC is the congestion-control instance; nil is valid for receive-only
	// connections (pure ACKers never consult it).
	CC cc.Algorithm
	// Tag is the forwarding tag stamped on every packet of the connection.
	Tag packet.Tag
	// DisableSACK turns selective acknowledgements off, degrading loss
	// recovery to classic NewReno (one hole per RTT) — an ablation knob.
	DisableSACK bool
	// Timestamps enables the RFC 7323 timestamps option (negotiated on the
	// SYN): one RTT sample per ACK, even during recovery. Off by default,
	// matching the reproduction's tuned baseline.
	Timestamps bool
	// SynOptions are extra TCP options carried on the SYN (MP_CAPABLE /
	// MP_JOIN).
	SynOptions []packet.Option
	// Source supplies payload to transmit; nil means the connection sends
	// nothing (ACK-only).
	Source Source
	// Sink consumes received in-order data; nil discards it.
	Sink Sink
	// FlowID labels the connection in stats and captures.
	FlowID string
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.MSS <= 0 {
		c.MSS = DefaultMSS
	}
	if c.RcvBuf <= 0 {
		c.RcvBuf = DefaultRcvBuf
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = DefaultInitialCwnd
	}
	if c.DelAckCount <= 0 {
		c.DelAckCount = DefaultDelAckCount
	}
	if c.DelAckTimeout <= 0 {
		c.DelAckTimeout = DefaultDelAckTimeout
	}
	if c.MinRTO <= 0 {
		c.MinRTO = DefaultMinRTO
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = DefaultMaxRTO
	}
	return c
}

// Source supplies payload for transmission, pull-model: the sender asks for
// up to max bytes whenever window space opens. Implementations return the
// number of bytes to send now (0 = nothing to send; call Conn.Kick when
// data appears) and an optional MPTCP DSS mapping describing them.
type Source interface {
	Next(max int) (n int, dss *packet.DSS)
}

// Sink consumes in-order subflow data on the receive side and provides the
// connection-level cumulative data ACK to advertise.
type Sink interface {
	// OnData receives n in-order payload bytes and the segment's DSS
	// mapping (nil for plain TCP).
	OnData(n int, dss *packet.DSS)
	// DataAck returns the connection-level ACK to embed in outgoing ACKs;
	// ok=false omits it (plain TCP).
	DataAck() (ack uint64, ok bool)
}

// BulkSource is an infinite backlog (iperf-style) without MPTCP mappings.
type BulkSource struct{}

// Next implements Source.
func (BulkSource) Next(max int) (int, *packet.DSS) { return max, nil }

// CountSink counts delivered bytes and provides no data-level ACK.
type CountSink struct {
	Bytes uint64
}

// OnData implements Sink.
func (s *CountSink) OnData(n int, _ *packet.DSS) { s.Bytes += uint64(n) }

// DataAck implements Sink.
func (s *CountSink) DataAck() (uint64, bool) { return 0, false }

// Sequence-space comparisons, wrap-safe (RFC 793 style).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// seqDiff returns a-b as a signed distance.
func seqDiff(a, b uint32) int { return int(int32(a - b)) }
