package tcp

import (
	"fmt"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
)

// Host is the TCP stack bound to one network node. It owns the node's
// ports: client connections get ephemeral ports, listeners accept incoming
// connections, and arriving packets are demultiplexed to connections by
// their full flow (so many subflows can target one listening port).
type Host struct {
	net  *netem.Network
	node *netem.Node
	loop *sim.Loop
	rng  *sim.Rand

	// Addr is the host's network address.
	Addr packet.Addr

	conns     map[connKey]*Conn
	listeners map[packet.Port]*Listener
	nextPort  packet.Port
	// lastKey/lastConn cache the most recent demux hit: back-to-back
	// packets overwhelmingly belong to the same connection, and the cache
	// turns the per-packet map probe into two compares.
	lastKey  connKey
	lastConn *Conn
}

type connKey struct {
	localPort  packet.Port
	remoteAddr packet.Addr
	remotePort packet.Port
}

// NewHost attaches a TCP stack to the node, assigning it an address. The
// rng seeds initial sequence numbers so runs stay reproducible.
func NewHost(n *netem.Network, node topo.NodeID, rng *sim.Rand) *Host {
	h := &Host{
		net:       n,
		node:      n.Node(node),
		loop:      n.Loop,
		rng:       rng,
		Addr:      n.AssignAddr(node),
		conns:     make(map[connKey]*Conn),
		listeners: make(map[packet.Port]*Listener),
		nextPort:  40000,
	}
	return h
}

// Node returns the underlying network node.
func (h *Host) Node() *netem.Node { return h.node }

// Listener accepts incoming connections on a port.
type Listener struct {
	host *Host
	// Port is the listening port.
	Port packet.Port
	// ConfigFor returns the Config for an incoming connection; it runs
	// before the SYN is answered, so it can install Sink/CC per subflow.
	// The SYN's options are provided for MPTCP join matching.
	ConfigFor func(synOpts []packet.Option, from packet.Endpoint) Config
	// OnEstablished is invoked when an accepted connection completes its
	// handshake.
	OnEstablished func(c *Conn)
}

// Listen opens a listening port.
func (h *Host) Listen(port packet.Port, l *Listener) error {
	if _, dup := h.listeners[port]; dup {
		return fmt.Errorf("tcp: port %d already listening on %s", port, h.node.Name)
	}
	l.host = h
	l.Port = port
	if err := h.node.Register(port, netem.HandlerFunc(h.deliver)); err != nil {
		return err
	}
	h.listeners[port] = l
	return nil
}

// Dial opens a client connection to raddr:rport and starts the handshake.
// The returned Conn is in the SYN-SENT state; cfg.CC (if any) engages once
// established.
func (h *Host) Dial(cfg Config, raddr packet.Addr, rport packet.Port) (*Conn, error) {
	lport, err := h.allocPort()
	if err != nil {
		return nil, err
	}
	c := newConn(h, cfg, packet.Endpoint{Addr: h.Addr, Port: lport},
		packet.Endpoint{Addr: raddr, Port: rport})
	h.conns[connKey{lport, raddr, rport}] = c
	c.startClient()
	return c, nil
}

func (h *Host) allocPort() (packet.Port, error) {
	for i := 0; i < 65535; i++ {
		p := h.nextPort
		h.nextPort++
		if h.nextPort == 0 {
			h.nextPort = 40000
		}
		if _, used := h.listeners[p]; used {
			continue
		}
		if err := h.node.Register(p, netem.HandlerFunc(h.deliver)); err == nil {
			return p, nil
		}
	}
	return 0, fmt.Errorf("tcp: no free ports on %s", h.node.Name)
}

// deliver demultiplexes an arriving TCP packet to its connection, or to a
// listener for new SYNs.
func (h *Host) deliver(pkt *packet.Packet) {
	if pkt.TCP == nil {
		return
	}
	key := connKey{
		localPort:  pkt.TCP.DstPort,
		remoteAddr: pkt.IP.Src,
		remotePort: pkt.TCP.SrcPort,
	}
	if h.lastConn != nil && key == h.lastKey {
		h.lastConn.receive(pkt)
		return
	}
	if c, ok := h.conns[key]; ok {
		h.lastKey, h.lastConn = key, c
		c.receive(pkt)
		return
	}
	l, ok := h.listeners[pkt.TCP.DstPort]
	if !ok || pkt.TCP.Flags&packet.FlagSYN == 0 || pkt.TCP.Flags&packet.FlagACK != 0 {
		return // no connection and not a fresh SYN: drop silently
	}
	from := packet.Endpoint{Addr: pkt.IP.Src, Port: pkt.TCP.SrcPort}
	cfg := Config{}
	if l.ConfigFor != nil {
		cfg = l.ConfigFor(pkt.TCP.Options, from)
	}
	// The accepted connection answers along the same tag the SYN carried,
	// so ACKs retrace the subflow's path in reverse.
	if cfg.Tag == packet.TagNone {
		cfg.Tag = pkt.IP.Tag
	}
	c := newConn(h, cfg, packet.Endpoint{Addr: h.Addr, Port: l.Port}, from)
	c.onEstablished = l.OnEstablished
	h.conns[connKey{l.Port, from.Addr, from.Port}] = c
	c.startServer(pkt)
}

// Loop returns the host's event loop, for layers built on top (MPTCP).
func (h *Host) Loop() *sim.Loop { return h.loop }
