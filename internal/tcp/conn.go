package tcp

import (
	"fmt"
	"time"

	"mptcpsim/internal/cc"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
)

// State is the connection state (the subset of RFC 793 the experiments
// exercise; connections live for the duration of a run, so there is no
// FIN/TIME-WAIT machinery).
type State int

// Connection states.
const (
	StateSynSent State = iota
	StateSynReceived
	StateEstablished
	StateClosed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateSynSent:
		return "syn-sent"
	case StateSynReceived:
		return "syn-received"
	case StateEstablished:
		return "established"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Stats counts per-connection events.
type Stats struct {
	SentSegments  uint64
	SentBytes     uint64
	Retransmits   uint64
	RTOs          uint64
	FastRecovery  uint64
	AckedBytes    uint64
	DeliveredData uint64
	DupAcksSeen   uint64
	AcksSent      uint64
}

// seg is a sender-side tracked segment awaiting acknowledgement. The
// sacked/lost flags form the SACK scoreboard (RFC 6675); rtx records that
// a retransmission of the segment is in flight. The DSS mapping is held
// by value: the packet that carried the original transmission is recycled
// by the arena at delivery or drop, so a retransmission must never reach
// back into its option storage.
type seg struct {
	seq    uint32
	length int
	sentAt sim.Time
	rtx    bool
	sacked bool
	lost   bool
	dss    packet.DSS
	hasDSS bool
}

// dssPtr returns the segment's mapping for retransmission, nil if the
// segment carried none.
func (s *seg) dssPtr() *packet.DSS {
	if !s.hasDSS {
		return nil
	}
	return &s.dss
}

// rseg is a receiver-side out-of-order segment. Like seg, it copies the
// DSS out of the arriving packet: the packet's storage is recycled when
// the delivery callback returns, long before the gap fills.
type rseg struct {
	seq    uint32
	length int
	dss    packet.DSS
	hasDSS bool
}

func (s *rseg) dssPtr() *packet.DSS {
	if !s.hasDSS {
		return nil
	}
	return &s.dss
}

// Conn is one TCP connection endpoint.
type Conn struct {
	host *Host
	loop *sim.Loop
	cfg  Config
	// arena supplies every outgoing packet's storage; the network engine
	// recycles it when the packet is delivered or dropped, so the
	// connection never touches a packet after Send.
	arena *packet.Arena

	state  State
	local  packet.Endpoint
	remote packet.Endpoint

	// Flow is the congestion-control view registered with cfg.CC.
	Flow cc.Flow

	// Sender state.
	iss      uint32
	sndUna   uint32
	sndNxt   uint32
	peerRwnd uint32
	peerMSS  int
	mss      int // effective MSS = min(cfg.MSS, peerMSS)
	rtx      []seg
	rtxHead  int
	// pipe is the incrementally maintained RFC 6675 pipe: the sum of
	// segPipe over rtx[rtxHead:]. Every scoreboard mutation updates it so
	// outstanding() is O(1); scanOutstanding is the reference scan.
	pipe     int
	dupAcks  int
	inRec    bool
	recover  uint32
	sackOK   bool
	hiSacked uint32
	// RTT timing: one segment is timed at a time (RFC 6298 / Karn).
	timing   bool
	timedEnd uint32
	timedAt  sim.Time
	// Timestamps state (RFC 7323): tsOK after negotiation; peerTSval is
	// the latest value to echo.
	tsOK       bool
	peerTSval  uint32
	peerTSseen bool
	rtt        rttEstimator
	rtoTimer   sim.Timer
	backoff    uint
	synSent    int
	synTime    sim.Time
	// mssOpt holds the SYN's MSS option value; SYN packets (including
	// retransmissions) reference it in place.
	mssOpt packet.MSSOption

	// Receiver state.
	rcvNxt      uint32
	ooo         []rseg
	oooBytes    int
	lastOOOSeq  uint32
	ackPending  int
	delAckTimer sim.Timer
	// sackScratch is the reusable builder for outgoing SACK ranges; the
	// blocks that go on the wire are copied into the packet's own storage.
	sackScratch [][2]uint32

	// rtoCall and delAckCall are the pre-bound timer callbacks: arming a
	// timer passes a pointer to these fields, so the per-packet timer
	// churn (every ACK re-arms the RTO) schedules without allocating.
	rtoCall    rtoCallback
	delAckCall delAckCallback

	// Stats accumulates counters.
	Stats Stats
	// CwndPeak is the congestion window's high-water mark in bytes,
	// sampled at each transmission — a telemetry gauge, never fed back
	// into the window computation and excluded from result hashes.
	CwndPeak float64

	onEstablished func(c *Conn)
}

func newConn(h *Host, cfg Config, local, remote packet.Endpoint) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		host:    h,
		loop:    h.loop,
		cfg:     cfg,
		arena:   h.net.Arena(),
		local:   local,
		remote:  remote,
		peerMSS: cfg.MSS,
		mss:     cfg.MSS,
		rtt:     newRTTEstimator(cfg.MinRTO, cfg.MaxRTO),
		// Until the peer advertises, assume a modest window.
		peerRwnd: 65535,
	}
	c.Flow.MSS = cfg.MSS
	c.Flow.ID = cfg.FlowID
	c.rtoCall.c = c
	c.delAckCall.c = c
	return c
}

// rtoCallback adapts the retransmission timeout to sim.Callback without a
// per-arm closure.
type rtoCallback struct{ c *Conn }

// Run implements sim.Callback.
func (r *rtoCallback) Run(sim.Time) { r.c.onRTO() }

// delAckCallback adapts the delayed-ACK timeout to sim.Callback.
type delAckCallback struct{ c *Conn }

// Run implements sim.Callback.
func (d *delAckCallback) Run(sim.Time) { d.c.onDelAck() }

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Local and Remote return the endpoints.
func (c *Conn) Local() packet.Endpoint  { return c.local }
func (c *Conn) Remote() packet.Endpoint { return c.remote }

// Tag returns the connection's forwarding tag.
func (c *Conn) Tag() packet.Tag { return c.cfg.Tag }

// SRTT returns the smoothed round-trip time estimate.
func (c *Conn) SRTT() time.Duration { return c.rtt.SRTT() }

// EffectiveMSS returns the negotiated maximum segment size.
func (c *Conn) EffectiveMSS() int { return c.mss }

// CwndBytes returns the current congestion window.
func (c *Conn) CwndBytes() float64 { return c.Flow.Cwnd }

// BytesInFlight returns outstanding unacknowledged bytes.
func (c *Conn) BytesInFlight() int { return seqDiff(c.sndNxt, c.sndUna) }

// startClient begins the three-way handshake.
func (c *Conn) startClient() {
	c.state = StateSynSent
	c.iss = c.host.rng.Uint32()
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.sendSYN(false)
}

// startServer answers a received SYN.
func (c *Conn) startServer(syn *packet.Packet) {
	c.state = StateSynReceived
	c.iss = c.host.rng.Uint32()
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.rcvNxt = syn.TCP.Seq + 1
	c.notePeerOptions(syn.TCP)
	c.sendSYN(true)
}

func (c *Conn) notePeerOptions(t *packet.TCP) {
	if o, ok := t.Option(packet.KindMSS).(*packet.MSSOption); ok {
		c.peerMSS = int(o.MSS)
	}
	if !c.cfg.DisableSACK && t.Option(packet.KindSACKPermitted) != nil {
		c.sackOK = true
	}
	if c.cfg.Timestamps && t.Option(packet.KindTimestamps) != nil {
		c.tsOK = true
	}
	if c.peerMSS < c.mss {
		c.mss = c.peerMSS
	}
	c.Flow.MSS = c.mss
	c.peerRwnd = t.Window
}

// sackPermittedOpt is the shared stateless SACK-permitted option value
// appended to every SYN; packets only read it.
var sackPermittedOpt packet.SACKPermitted

func (c *Conn) sendSYN(withAck bool) {
	p, t := c.arena.GetTCP()
	t.SrcPort = c.local.Port
	t.DstPort = c.remote.Port
	t.Seq = c.iss
	t.Flags = packet.FlagSYN
	t.Window = uint32(c.cfg.RcvBuf)
	c.mssOpt = packet.MSSOption{MSS: uint16(c.cfg.MSS)}
	t.Options = append(t.Options, &c.mssOpt)
	t.Options = append(t.Options, c.cfg.SynOptions...)
	if !c.cfg.DisableSACK {
		t.Options = append(t.Options, &sackPermittedOpt)
	}
	if c.cfg.Timestamps {
		t.UseTimestamps(c.tsNow(), c.peerTSval)
	}
	if withAck {
		t.Flags |= packet.FlagACK
		t.Ack = c.rcvNxt
	}
	if c.synSent == 0 {
		c.synTime = c.loop.Now()
	}
	c.transmit(p, 0)
	c.synSent++
	c.armRTO(c.rtt.RTO() << c.backoff)
}

// establish finishes the handshake on either side.
func (c *Conn) establish() {
	c.state = StateEstablished
	c.backoff = 0
	// Initial congestion state.
	c.Flow.Cwnd = float64(c.cfg.InitialCwnd * c.mss)
	c.Flow.Ssthresh = 1 << 30
	if c.cfg.CC != nil {
		c.cfg.CC.Register(&c.Flow, c.loop.Now())
	}
	if c.onEstablished != nil {
		c.onEstablished(c)
	}
	c.trySend()
}

// Close tears the connection state down (no FIN exchange; the simulation
// endpoints simply stop).
func (c *Conn) Close() {
	if c.state == StateClosed {
		return
	}
	c.state = StateClosed
	if c.cfg.CC != nil {
		c.cfg.CC.Unregister(&c.Flow)
	}
	c.stopRTO()
	c.delAckTimer.Stop()
	key := connKey{c.local.Port, c.remote.Addr, c.remote.Port}
	delete(c.host.conns, key)
	if c.host.lastKey == key {
		c.host.lastConn = nil
	}
}

// Kick wakes the sender after its Source gains data.
func (c *Conn) Kick() { c.trySend() }

// receive dispatches an arriving segment by state.
func (c *Conn) receive(pkt *packet.Packet) {
	t := pkt.TCP
	switch c.state {
	case StateSynSent:
		if t.Flags&(packet.FlagSYN|packet.FlagACK) == packet.FlagSYN|packet.FlagACK &&
			t.Ack == c.iss+1 {
			c.stopRTO()
			c.rcvNxt = t.Seq + 1
			c.sndUna = c.iss + 1
			c.notePeerOptions(t)
			if c.synSent == 1 {
				// Karn's rule: sample only if the SYN was not retransmitted.
				c.rtt.Sample(c.loop.Now().Sub(c.synTime))
				c.syncFlowRTT()
			}
			c.sendPureAck()
			c.establish()
		}
	case StateSynReceived:
		if t.Flags&packet.FlagACK != 0 && t.Ack == c.iss+1 {
			c.stopRTO()
			c.sndUna = c.iss + 1
			c.peerRwnd = t.Window
			c.establish()
			// The ACK may carry data already.
			if pkt.PayloadLen > 0 {
				c.processData(pkt)
			}
		}
	case StateEstablished:
		if c.tsOK {
			c.noteTimestamps(t)
		}
		if t.Flags&packet.FlagACK != 0 {
			c.processAck(pkt)
		}
		if pkt.PayloadLen > 0 {
			c.processData(pkt)
		}
	case StateClosed:
	}
}

func (c *Conn) syncFlowRTT() {
	c.Flow.SRTT = c.rtt.SRTT()
	c.Flow.MinRTT = c.rtt.MinRTT()
}

// tsNow is the RFC 7323 timestamp clock: microseconds of virtual time
// (wraps after ~71 minutes, far beyond any experiment).
func (c *Conn) tsNow() uint32 {
	return uint32(c.loop.Now().Duration() / time.Microsecond)
}

// noteTimestamps records the peer's TSval for echoing and samples the RTT
// from an echoed value of our clock.
func (c *Conn) noteTimestamps(t *packet.TCP) {
	o, ok := t.Option(packet.KindTimestamps).(*packet.Timestamps)
	if !ok {
		return
	}
	c.peerTSval = o.TSval
	c.peerTSseen = true
	if o.TSecr != 0 && t.Flags&packet.FlagACK != 0 {
		rtt := time.Duration(c.tsNow()-o.TSecr) * time.Microsecond
		if rtt > 0 && rtt < time.Minute {
			c.rtt.Sample(rtt)
			c.syncFlowRTT()
		}
	}
}

// transmit stamps the network header on an arena-drawn packet and sends
// it with payload length n. The packet belongs to the network after Send:
// the engine recycles it at delivery or drop.
func (c *Conn) transmit(p *packet.Packet, n int) {
	p.IP = packet.IPv4{
		Tag:   c.cfg.Tag,
		TTL:   packet.DefaultTTL,
		Proto: packet.ProtoTCP,
		Src:   c.local.Addr,
		Dst:   c.remote.Addr,
		ID:    uint16(c.Stats.SentSegments),
	}
	p.PayloadLen = n
	c.Stats.SentSegments++
	c.Stats.SentBytes += uint64(n)
	if c.Flow.Cwnd > c.CwndPeak {
		c.CwndPeak = c.Flow.Cwnd
	}
	c.host.node.Send(p)
}
