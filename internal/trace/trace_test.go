package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func mk(name string, step time.Duration, v ...float64) *Series {
	return &Series{Name: name, Step: step, V: v}
}

func TestAtAndTimeAt(t *testing.T) {
	s := mk("x", 100*time.Millisecond, 1, 2, 3)
	if s.At(0) != 1 || s.At(150*time.Millisecond) != 2 || s.At(250*time.Millisecond) != 3 {
		t.Fatal("At lookup wrong")
	}
	if s.At(-time.Second) != 0 || s.At(time.Hour) != 0 {
		t.Fatal("out-of-range At must be 0")
	}
	if s.TimeAt(2) != 0.2 {
		t.Fatalf("TimeAt(2) = %v", s.TimeAt(2))
	}
}

func TestClip(t *testing.T) {
	s := mk("x", 100*time.Millisecond, 0, 1, 2, 3, 4, 5)
	c := s.Clip(200*time.Millisecond, 500*time.Millisecond)
	if c.Len() != 3 || c.V[0] != 2 || c.V[2] != 4 {
		t.Fatalf("Clip = %+v", c)
	}
	if c.Start != 200*time.Millisecond {
		t.Fatalf("Clip start = %v", c.Start)
	}
	if e := s.Clip(time.Hour, 2*time.Hour); e.Len() != 0 {
		t.Fatal("out-of-range clip should be empty")
	}
}

func TestStats(t *testing.T) {
	s := mk("x", time.Second, 2, 4, 6, 8)
	mean, min, max, std := s.Stats(0, 0)
	if mean != 5 || min != 2 || max != 8 {
		t.Fatalf("stats = %v %v %v", mean, min, max)
	}
	want := math.Sqrt((9 + 1 + 1 + 9) / 4.0)
	if math.Abs(std-want) > 1e-9 {
		t.Fatalf("std = %v want %v", std, want)
	}
	// Windowed.
	mean, _, _, _ = s.Stats(time.Second, 3*time.Second)
	if mean != 5 {
		t.Fatalf("window mean = %v", mean)
	}
}

func TestSum(t *testing.T) {
	a := mk("a", time.Second, 1, 2, 3)
	b := mk("b", time.Second, 10, 20)
	tot, err := Sum("total", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tot.Len() != 3 || tot.V[0] != 11 || tot.V[1] != 22 || tot.V[2] != 3 {
		t.Fatalf("sum = %v", tot.V)
	}
	c := mk("c", 2*time.Second, 1)
	if _, err := Sum("bad", a, c); err == nil {
		t.Fatal("mismatched step accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	a := mk("a", 500*time.Millisecond, 1, 2)
	b := mk("b", 500*time.Millisecond, 3)
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "t,a,b\n0.0000,1.0000,3.0000\n0.5000,2.0000,\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestChartRendersSeries(t *testing.T) {
	a := mk("Path 1", 100*time.Millisecond, 10, 20, 30, 40, 50)
	b := mk("Total", 100*time.Millisecond, 50, 60, 70, 80, 90)
	var sb strings.Builder
	err := Chart(&sb, ChartOptions{Width: 40, Height: 10, Title: "fig", HLines: []float64{90}, YLabel: "Mbps"}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fig", "1=Path 1", "2=Total", "y: Mbps", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "1") || !strings.Contains(out, "2") {
		t.Fatal("chart missing data glyphs")
	}
}

func TestChartEmptyDoesNotPanic(t *testing.T) {
	var sb strings.Builder
	if err := Chart(&sb, ChartOptions{}, mk("e", time.Second)); err != nil {
		t.Fatal(err)
	}
}

// Property: Sum is permutation-invariant and Clip never exceeds bounds.
func TestQuickSumClip(t *testing.T) {
	f := func(raw []uint8) bool {
		v := make([]float64, len(raw))
		for i, r := range raw {
			v[i] = float64(r)
		}
		a := mk("a", time.Second, v...)
		b := mk("b", time.Second, v...)
		s1, _ := Sum("s", a, b)
		s2, _ := Sum("s", b, a)
		for i := range s1.V {
			if s1.V[i] != s2.V[i] {
				return false
			}
		}
		c := a.Clip(2*time.Second, 5*time.Second)
		return c.Len() <= 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChartVLines(t *testing.T) {
	s := &Series{Name: "x", Step: 100 * time.Millisecond, V: make([]float64, 40)}
	for i := range s.V {
		s.V[i] = 5
	}
	var buf bytes.Buffer
	if err := Chart(&buf, ChartOptions{VLines: []float64{2.0}, Width: 40, Height: 8}, s); err != nil {
		t.Fatal(err)
	}
	marked := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Count(line, "|") >= 2 {
			marked++
		}
	}
	// Every plot row except the one the flat series overwrites carries the
	// marker.
	if marked < 6 {
		t.Fatalf("vertical marker missing (marked rows = %d):\n%s", marked, buf.String())
	}
	// Out-of-range markers are ignored, not drawn at the edge.
	var buf2 bytes.Buffer
	if err := Chart(&buf2, ChartOptions{VLines: []float64{99}, Width: 40, Height: 8}, s); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf2.String(), "\n") {
		if strings.Count(line, "|") >= 2 {
			t.Fatalf("out-of-range marker drawn:\n%s", buf2.String())
		}
	}
}
