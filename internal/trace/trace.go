// Package trace holds the time-series machinery behind the paper's
// figures: fixed-step series (throughput per sampling bin), arithmetic
// over them, CSV export, and a terminal ASCII renderer that stands in for
// the paper's plots.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Series is a fixed-step time series: V[i] is the value of the bin
// starting at Start + i*Step.
type Series struct {
	// Name labels the series ("Path 1", "Total").
	Name string
	// Start is the offset of the first bin from the run start.
	Start time.Duration
	// Step is the bin width.
	Step time.Duration
	// V holds one value per bin.
	V []float64
}

// TimeAt returns the start time of bin i in seconds.
func (s *Series) TimeAt(i int) float64 {
	return (s.Start + time.Duration(i)*s.Step).Seconds()
}

// Len returns the number of bins.
func (s *Series) Len() int { return len(s.V) }

// At returns the value of the bin covering time t (0 outside the series).
func (s *Series) At(t time.Duration) float64 {
	if s.Step <= 0 {
		return 0
	}
	i := int((t - s.Start) / s.Step)
	if i < 0 || i >= len(s.V) {
		return 0
	}
	return s.V[i]
}

// Clip returns the sub-series covering [from, to).
func (s *Series) Clip(from, to time.Duration) Series {
	out := Series{Name: s.Name, Step: s.Step}
	if s.Step <= 0 {
		return out
	}
	lo := int((from - s.Start) / s.Step)
	hi := int((to - s.Start) / s.Step)
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.V) {
		hi = len(s.V)
	}
	if lo >= hi {
		return out
	}
	out.Start = s.Start + time.Duration(lo)*s.Step
	out.V = append([]float64(nil), s.V[lo:hi]...)
	return out
}

// Stats returns mean, min, max and standard deviation over the window
// [from, to) (the whole series if to <= from).
func (s *Series) Stats(from, to time.Duration) (mean, min, max, std float64) {
	lo, hi := 0, len(s.V)
	if to > from && s.Step > 0 {
		lo = int((from - s.Start) / s.Step)
		hi = int((to - s.Start) / s.Step)
		if lo < 0 {
			lo = 0
		}
		if hi > len(s.V) {
			hi = len(s.V)
		}
	}
	if lo >= hi {
		return 0, 0, 0, 0
	}
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range s.V[lo:hi] {
		mean += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	n := float64(hi - lo)
	mean /= n
	for _, v := range s.V[lo:hi] {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / n)
	return mean, min, max, std
}

// Sum adds series point-wise into a new series named name. All inputs must
// share Step and Start; the result has the length of the longest input.
func Sum(name string, in ...*Series) (*Series, error) {
	if len(in) == 0 {
		return &Series{Name: name}, nil
	}
	out := &Series{Name: name, Start: in[0].Start, Step: in[0].Step}
	for _, s := range in {
		if s.Step != out.Step || s.Start != out.Start {
			return nil, fmt.Errorf("trace: Sum: mismatched series geometry (%v/%v vs %v/%v)",
				s.Start, s.Step, out.Start, out.Step)
		}
		if len(s.V) > len(out.V) {
			out.V = append(out.V, make([]float64, len(s.V)-len(out.V))...)
		}
		for i, v := range s.V {
			out.V[i] += v
		}
	}
	return out, nil
}

// WriteCSV emits "t,<name1>,<name2>,..." rows; t in seconds. All series
// should share geometry; shorter series pad with empty cells.
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return nil
	}
	head := make([]string, 0, len(series)+1)
	head = append(head, "t")
	maxLen := 0
	for _, s := range series {
		head = append(head, s.Name)
		if len(s.V) > maxLen {
			maxLen = len(s.V)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(head, ",")); err != nil {
		return err
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%.4f", series[0].TimeAt(i)))
		for _, s := range series {
			if i < len(s.V) {
				row = append(row, fmt.Sprintf("%.4f", s.V[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
