package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ChartOptions controls the ASCII renderer.
type ChartOptions struct {
	// Width and Height are the plot area size in characters (defaults
	// 72x18).
	Width, Height int
	// YMax fixes the y-axis maximum; 0 auto-scales.
	YMax float64
	// YLabel and Title annotate the chart.
	YLabel, Title string
	// HLines draws horizontal reference lines at the given values (e.g.
	// the LP optimum).
	HLines []float64
	// VLines draws vertical markers at the given times in seconds (e.g.
	// dynamic network events).
	VLines []float64
}

// seriesMarks are the glyphs used per series, in order.
var seriesMarks = []byte{'1', '2', '3', 'T', '4', '5', '6', '7'}

// Chart renders the series as an ASCII line chart — the terminal stand-in
// for the paper's throughput figures.
func Chart(w io.Writer, opts ChartOptions, series ...*Series) error {
	if opts.Width <= 0 {
		opts.Width = 72
	}
	if opts.Height <= 0 {
		opts.Height = 18
	}
	ymax := opts.YMax
	var tmaxSec float64
	for _, s := range series {
		for i, v := range s.V {
			if opts.YMax == 0 && v > ymax {
				ymax = v
			}
			if t := s.TimeAt(i); t > tmaxSec {
				tmaxSec = t
			}
		}
	}
	if ymax <= 0 {
		ymax = 1
	}
	ymax *= 1.05
	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	// Reference lines first so data overwrites them.
	for _, h := range opts.HLines {
		if r, ok := rowOf(h, ymax, opts.Height); ok {
			for x := 0; x < opts.Width; x++ {
				grid[r][x] = '-'
			}
		}
	}
	for _, t := range opts.VLines {
		if tmaxSec <= 0 || t < 0 || t > tmaxSec {
			continue
		}
		x := int(t / tmaxSec * float64(opts.Width-1))
		for r := 0; r < opts.Height; r++ {
			grid[r][x] = '|'
		}
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i, v := range s.V {
			x := 0
			if tmaxSec > 0 {
				x = int(s.TimeAt(i) / tmaxSec * float64(opts.Width-1))
			}
			if x < 0 || x >= opts.Width {
				continue
			}
			if r, ok := rowOf(v, ymax, opts.Height); ok {
				grid[r][x] = mark
			}
		}
	}
	if opts.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opts.Title); err != nil {
			return err
		}
	}
	axisW := 8
	for r := 0; r < opts.Height; r++ {
		yTop := ymax * float64(opts.Height-r) / float64(opts.Height)
		label := ""
		if r%4 == 0 {
			label = fmt.Sprintf("%7.1f", yTop)
		}
		if _, err := fmt.Fprintf(w, "%*s |%s\n", axisW-1, label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%*s +%s\n", axisW-1, "", strings.Repeat("-", opts.Width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%*s 0%*s%.2fs\n", axisW-1, "", opts.Width-6, "", tmaxSec); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	if opts.YLabel != "" {
		legend = append(legend, "y: "+opts.YLabel)
	}
	_, err := fmt.Fprintf(w, "%*s %s\n", axisW-1, "", strings.Join(legend, "  "))
	return err
}

// rowOf maps a value to a grid row (0 = top).
func rowOf(v, ymax float64, height int) (int, bool) {
	if math.IsNaN(v) || v < 0 || v > ymax {
		return 0, false
	}
	r := height - 1 - int(v/ymax*float64(height))
	if r < 0 {
		r = 0
	}
	if r >= height {
		r = height - 1
	}
	return r, true
}
