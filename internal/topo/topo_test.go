package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mptcpsim/internal/unit"
)

func line(t *testing.T, n int) (*Graph, []NodeID) {
	t.Helper()
	g := New()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(string(rune('a' + i)))
	}
	for i := 0; i+1 < n; i++ {
		g.AddDuplex(ids[i], ids[i+1], 100*unit.Mbps, time.Millisecond, 0)
	}
	return g, ids
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	if g.AddNode("a") != a {
		t.Fatal("duplicate AddNode should return the same ID")
	}
	if g.NumNodes() != 1 {
		t.Fatal("duplicate node added")
	}
	id, ok := g.NodeByName("a")
	if !ok || id != a {
		t.Fatal("NodeByName broken")
	}
	if _, ok := g.NodeByName("zzz"); ok {
		t.Fatal("NodeByName found a ghost")
	}
}

func TestValidate(t *testing.T) {
	g, ids := line(t, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := New()
	a, b := bad.AddNode("a"), bad.AddNode("b")
	bad.AddLink(a, b, 0, time.Millisecond, 0)
	if err := bad.Validate(); err == nil {
		t.Fatal("zero rate should fail validation")
	}
	loop := New()
	x := loop.AddNode("x")
	loop.links = append(loop.links, Link{ID: 0, From: x, To: x, Rate: unit.Mbps})
	if err := loop.Validate(); err == nil {
		t.Fatal("self-loop should fail validation")
	}
	_ = ids
}

func TestShortestPathLine(t *testing.T) {
	g, ids := line(t, 5)
	p, ok := g.ShortestPath(ids[0], ids[4], nil, nil, nil)
	if !ok {
		t.Fatal("no path found")
	}
	if p.Hops() != 4 {
		t.Fatalf("hops = %d, want 4", p.Hops())
	}
	if !p.Valid(g) {
		t.Fatal("path invalid")
	}
	if p.Delay(g) != 4*time.Millisecond {
		t.Fatalf("delay = %v", p.Delay(g))
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	if _, ok := g.ShortestPath(a, b, nil, nil, nil); ok {
		t.Fatal("found path in disconnected graph")
	}
}

func TestShortestPathPrefersLowDelay(t *testing.T) {
	// a -> b -> d (2ms) vs a -> c -> d (10ms): must take the b route.
	g := New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.AddLink(a, b, 10*unit.Mbps, time.Millisecond, 0)
	g.AddLink(b, d, 10*unit.Mbps, time.Millisecond, 0)
	g.AddLink(a, c, unit.Gbps, 5*time.Millisecond, 0)
	g.AddLink(c, d, unit.Gbps, 5*time.Millisecond, 0)
	p, ok := g.ShortestPath(a, d, nil, nil, nil)
	if !ok || p.Nodes[1] != b {
		t.Fatalf("took wrong route: %s", p.Format(g))
	}
}

func TestBannedLinksAndNodes(t *testing.T) {
	g := New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	ab := g.AddLink(a, b, unit.Gbps, time.Millisecond, 0)
	g.AddLink(b, d, unit.Gbps, time.Millisecond, 0)
	g.AddLink(a, c, unit.Gbps, 2*time.Millisecond, 0)
	g.AddLink(c, d, unit.Gbps, 2*time.Millisecond, 0)
	p, ok := g.ShortestPath(a, d, nil, map[LinkID]bool{ab: true}, nil)
	if !ok || p.Nodes[1] != c {
		t.Fatal("banned link not avoided")
	}
	p, ok = g.ShortestPath(a, d, nil, nil, map[NodeID]bool{b: true})
	if !ok || p.Nodes[1] != c {
		t.Fatal("banned node not avoided")
	}
}

func TestKShortestPathsPaperNet(t *testing.T) {
	pn := Paper()
	ks := pn.Graph.KShortestPaths(pn.S, pn.D, 3, nil)
	if len(ks) != 3 {
		t.Fatalf("got %d paths, want 3", len(ks))
	}
	// First must be Path 2 (the lowest-delay path).
	if !equalPath(ks[0], pn.Paths[1]) {
		t.Fatalf("shortest = %s, want Path 2 (%s)", ks[0].Format(pn.Graph), pn.Paths[1].Format(pn.Graph))
	}
	// Costs must be nondecreasing.
	for i := 1; i < len(ks); i++ {
		if ks[i].Delay(pn.Graph) < ks[i-1].Delay(pn.Graph) {
			t.Fatal("paths not sorted by cost")
		}
	}
	// All loop-free and valid.
	for _, p := range ks {
		if !p.Valid(pn.Graph) {
			t.Fatalf("invalid path %v", p)
		}
		seen := map[NodeID]bool{}
		for _, n := range p.Nodes {
			if seen[n] {
				t.Fatalf("loop in path %s", p.Format(pn.Graph))
			}
			seen[n] = true
		}
	}
}

func TestAllSimplePathsMatchesYenSet(t *testing.T) {
	pn := Paper()
	all := pn.Graph.AllSimplePaths(pn.S, pn.D, 0)
	// Yen with large k must find exactly the same path set.
	ks := pn.Graph.KShortestPaths(pn.S, pn.D, len(all)+5, nil)
	if len(ks) != len(all) {
		t.Fatalf("Yen found %d paths, DFS found %d", len(ks), len(all))
	}
	key := func(p Path) string { return p.Format(pn.Graph) }
	seen := map[string]bool{}
	for _, p := range all {
		seen[key(p)] = true
	}
	for _, p := range ks {
		if !seen[key(p)] {
			t.Fatalf("Yen produced path missing from DFS set: %s", key(p))
		}
	}
}

func TestAllSimplePathsLimit(t *testing.T) {
	pn := Paper()
	got := pn.Graph.AllSimplePaths(pn.S, pn.D, 2)
	if len(got) != 2 {
		t.Fatalf("limit ignored: %d paths", len(got))
	}
}

func TestPaperNetInvariants(t *testing.T) {
	pn := Paper()
	if err := pn.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	p1, p2, p3 := pn.Paths[0], pn.Paths[1], pn.Paths[2]
	for i, p := range pn.Paths {
		if !p.Valid(pn.Graph) {
			t.Fatalf("Path %d invalid", i+1)
		}
		if p.Nodes[0] != pn.S || p.Nodes[len(p.Nodes)-1] != pn.D {
			t.Fatalf("Path %d endpoints wrong", i+1)
		}
	}
	// Pairwise shared bottlenecks with the right capacities.
	check := func(a, b Path, wantRate unit.Rate, wantBinding LinkID) {
		t.Helper()
		shared := SharedLinks(a, b)
		var minRate unit.Rate = 1 << 60
		var bindID LinkID = -1
		for _, l := range shared {
			if r := pn.Graph.Link(l).Rate; r < minRate {
				minRate, bindID = r, l
			}
		}
		if minRate != wantRate {
			t.Fatalf("shared bottleneck rate = %v, want %v", minRate, wantRate)
		}
		if bindID != wantBinding {
			t.Fatalf("binding link = %d, want %d", bindID, wantBinding)
		}
	}
	check(p1, p2, PaperCapSV1, pn.Bottlenecks[0])
	check(p2, p3, PaperCapV3V4, pn.Bottlenecks[1])
	check(p1, p3, PaperCapV2V3, pn.Bottlenecks[2])
	// Path 2 strictly shortest by delay.
	if !(p2.Delay(pn.Graph) < p1.Delay(pn.Graph) && p2.Delay(pn.Graph) < p3.Delay(pn.Graph)) {
		t.Fatalf("Path 2 is not the shortest: %v %v %v",
			p1.Delay(pn.Graph), p2.Delay(pn.Graph), p3.Delay(pn.Graph))
	}
	// Bottleneck rates per path.
	if p1.BottleneckRate(pn.Graph) != PaperCapSV1 {
		t.Fatal("Path 1 bottleneck wrong")
	}
	if p2.BottleneckRate(pn.Graph) != PaperCapSV1 {
		t.Fatal("Path 2 bottleneck wrong")
	}
	if p3.BottleneckRate(pn.Graph) != PaperCapV3V4 {
		t.Fatal("Path 3 bottleneck wrong")
	}
}

func TestPathsByLink(t *testing.T) {
	pn := Paper()
	m := PathsByLink(pn.Paths)
	if got := m[pn.Bottlenecks[0]]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("s-v1 users = %v, want [0 1]", got)
	}
	if got := m[pn.Bottlenecks[1]]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("v3-v4 users = %v, want [1 2]", got)
	}
	if got := m[pn.Bottlenecks[2]]; len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("v2-v3 users = %v, want [0 2]", got)
	}
}

func TestFindLink(t *testing.T) {
	pn := Paper()
	if _, ok := pn.Graph.FindLink(pn.S, pn.D); ok {
		t.Fatal("found non-existent direct link s->d")
	}
	v1, _ := pn.Graph.NodeByName("v1")
	lid, ok := pn.Graph.FindLink(pn.S, v1)
	if !ok || pn.Graph.Link(lid).Rate != PaperCapSV1 {
		t.Fatal("FindLink s->v1 broken")
	}
}

// randomGraph builds a connected random DAG-ish graph for property tests.
func randomGraph(rng *rand.Rand, n int) *Graph {
	g := New()
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = g.AddNode(string(rune('A' + i)))
	}
	// Spanning chain guarantees connectivity.
	for i := 0; i+1 < n; i++ {
		g.AddDuplex(ids[i], ids[i+1], unit.Rate(1+rng.Intn(100))*unit.Mbps,
			time.Duration(1+rng.Intn(5))*time.Millisecond, 0)
	}
	extra := rng.Intn(2 * n)
	for e := 0; e < extra; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		g.AddDuplex(ids[i], ids[j], unit.Rate(1+rng.Intn(100))*unit.Mbps,
			time.Duration(1+rng.Intn(5))*time.Millisecond, 0)
	}
	return g
}

// Property: Yen's first path equals Dijkstra's, costs are sorted, and every
// returned path is simple and valid.
func TestQuickYenProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(nRaw%5)
		g := randomGraph(rng, n)
		src, dst := NodeID(0), NodeID(n-1)
		sp, ok := g.ShortestPath(src, dst, nil, nil, nil)
		if !ok {
			return false // spanning chain guarantees a path
		}
		ks := g.KShortestPaths(src, dst, 4, nil)
		if len(ks) == 0 || !equalPath(ks[0], sp) {
			return false
		}
		costs := make([]float64, len(ks))
		for i, p := range ks {
			if !p.Valid(g) {
				return false
			}
			seen := map[NodeID]bool{}
			for _, nd := range p.Nodes {
				if seen[nd] {
					return false
				}
				seen[nd] = true
			}
			costs[i] = g.pathCost(p, DelayWeight)
		}
		// Nondecreasing up to float summation noise: equal-cost paths can
		// differ in the last ulp depending on the order links were added.
		for i := 1; i < len(costs); i++ {
			if costs[i] < costs[i-1]-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPathFormat(t *testing.T) {
	pn := Paper()
	want := "s -> v1 -> v3 -> v4 -> d"
	if got := pn.Paths[1].Format(pn.Graph); got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
}

func TestHopWeight(t *testing.T) {
	// Under hop weight the 2-hop route wins even with high delay.
	g := New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.AddLink(a, b, unit.Gbps, 50*time.Millisecond, 0)
	g.AddLink(b, d, unit.Gbps, 50*time.Millisecond, 0)
	g.AddLink(a, c, unit.Gbps, time.Millisecond, 0)
	g.AddLink(c, b, unit.Gbps, time.Millisecond, 0)
	p, ok := g.ShortestPath(a, d, HopWeight, nil, nil)
	if !ok || p.Hops() != 2 {
		t.Fatalf("hop-weight path = %v", p)
	}
}

func TestReversePathFailsOnOneWayLink(t *testing.T) {
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	ab := g.AddLink(a, b, 10*unit.Mbps, time.Millisecond, 0) // no reverse
	p := Path{Nodes: []NodeID{a, b}, Links: []LinkID{ab}}
	if _, err := ReversePath(g, p); err == nil {
		t.Fatal("reverse of one-way path succeeded")
	}
}

func TestReversePathRoundTrip(t *testing.T) {
	pn := Paper()
	for _, p := range pn.Paths {
		rev, err := ReversePath(pn.Graph, p)
		if err != nil {
			t.Fatal(err)
		}
		if !rev.Valid(pn.Graph) {
			t.Fatal("reverse path invalid")
		}
		back, err := ReversePath(pn.Graph, rev)
		if err != nil {
			t.Fatal(err)
		}
		if !equalPath(back, p) {
			t.Fatalf("double reverse differs: %s vs %s", back.Format(pn.Graph), p.Format(pn.Graph))
		}
	}
}

func TestParallelLinksSupported(t *testing.T) {
	// Multigraph: two parallel a->b links with different capacities; paths
	// can pin either one explicitly.
	g := New()
	a, b := g.AddNode("a"), g.AddNode("b")
	l1 := g.AddLink(a, b, 10*unit.Mbps, time.Millisecond, 0)
	l2 := g.AddLink(a, b, 20*unit.Mbps, time.Millisecond, 0)
	p1 := Path{Nodes: []NodeID{a, b}, Links: []LinkID{l1}}
	p2 := Path{Nodes: []NodeID{a, b}, Links: []LinkID{l2}}
	if !p1.Valid(g) || !p2.Valid(g) {
		t.Fatal("parallel-link paths invalid")
	}
	if !LinkDisjoint(p1, p2) {
		t.Fatal("distinct parallel links reported as shared")
	}
	if p1.BottleneckRate(g) == p2.BottleneckRate(g) {
		t.Fatal("parallel links confused")
	}
}
