package topo

import (
	"container/heap"
	"math"
	"sort"
)

// Weight assigns a cost to a link for path computation. DelayWeight is the
// usual choice ("shortest path" in the paper means lowest round-trip time).
type Weight func(Link) float64

// DelayWeight costs a link by its propagation delay in seconds, with a tiny
// per-hop epsilon so hop count breaks ties between equal-delay routes.
func DelayWeight(l Link) float64 {
	return l.Delay.Seconds() + 1e-9
}

// HopWeight costs every link 1, giving minimum-hop paths.
func HopWeight(Link) float64 { return 1 }

// pqItem is a Dijkstra frontier entry.
type pqItem struct {
	node NodeID
	dist float64
	idx  int
}

type pq []*pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i]; q[i].idx = i; q[j].idx = j }
func (q *pq) Push(x any)        { it := x.(*pqItem); it.idx = len(*q); *q = append(*q, it) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ShortestPath runs Dijkstra from src to dst under the given weight,
// skipping banned links and nodes (nil maps mean nothing banned). It
// reports ok=false when dst is unreachable.
func (g *Graph) ShortestPath(src, dst NodeID, w Weight, bannedLinks map[LinkID]bool, bannedNodes map[NodeID]bool) (Path, bool) {
	if w == nil {
		w = DelayWeight
	}
	dist := make([]float64, g.NumNodes())
	prevLink := make([]LinkID, g.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
		prevLink[i] = -1
	}
	dist[src] = 0
	q := &pq{{node: src, dist: 0}}
	heap.Init(q)
	visited := make([]bool, g.NumNodes())
	for q.Len() > 0 {
		it := heap.Pop(q).(*pqItem)
		u := it.node
		if visited[u] {
			continue
		}
		visited[u] = true
		if u == dst {
			break
		}
		for _, lid := range g.OutLinks(u) {
			if bannedLinks[lid] {
				continue
			}
			l := g.Link(lid)
			if bannedNodes[l.To] {
				continue
			}
			cost := w(l)
			if cost < 0 {
				cost = 0
			}
			nd := dist[u] + cost
			if nd < dist[l.To] {
				dist[l.To] = nd
				prevLink[l.To] = lid
				heap.Push(q, &pqItem{node: l.To, dist: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return Path{}, false
	}
	// Reconstruct in reverse.
	var links []LinkID
	for at := dst; at != src; {
		lid := prevLink[at]
		links = append(links, lid)
		at = g.Link(lid).From
	}
	reverse(links)
	return g.pathFromLinks(src, links), true
}

func reverse(l []LinkID) {
	for i, j := 0, len(l)-1; i < j; i, j = i+1, j-1 {
		l[i], l[j] = l[j], l[i]
	}
}

func (g *Graph) pathFromLinks(src NodeID, links []LinkID) Path {
	nodes := []NodeID{src}
	for _, lid := range links {
		nodes = append(nodes, g.Link(lid).To)
	}
	return Path{Nodes: nodes, Links: links}
}

func (g *Graph) pathCost(p Path, w Weight) float64 {
	var c float64
	for _, lid := range p.Links {
		c += w(g.Link(lid))
	}
	return c
}

// KShortestPaths returns up to k loop-free paths from src to dst in
// nondecreasing cost order, using Yen's algorithm.
func (g *Graph) KShortestPaths(src, dst NodeID, k int, w Weight) []Path {
	if w == nil {
		w = DelayWeight
	}
	best, ok := g.ShortestPath(src, dst, w, nil, nil)
	if !ok || k < 1 {
		return nil
	}
	found := []Path{best}
	var candidates []Path
	for len(found) < k {
		prev := found[len(found)-1]
		// For each spur node along the previous path, ban the link choices
		// of already-found paths that share the root, and reroute.
		for i := 0; i < len(prev.Links); i++ {
			spur := prev.Nodes[i]
			root := Path{Nodes: append([]NodeID(nil), prev.Nodes[:i+1]...),
				Links: append([]LinkID(nil), prev.Links[:i]...)}
			bannedLinks := map[LinkID]bool{}
			for _, f := range found {
				if i < len(f.Links) && samePrefix(f, root, i) {
					bannedLinks[f.Links[i]] = true
				}
			}
			bannedNodes := map[NodeID]bool{}
			for _, n := range root.Nodes[:len(root.Nodes)-1] {
				bannedNodes[n] = true
			}
			tail, ok := g.ShortestPath(spur, dst, w, bannedLinks, bannedNodes)
			if !ok {
				continue
			}
			cand := Path{
				Nodes: append(append([]NodeID(nil), root.Nodes...), tail.Nodes[1:]...),
				Links: append(append([]LinkID(nil), root.Links...), tail.Links...),
			}
			if !containsPath(found, cand) && !containsPath(candidates, cand) {
				candidates = append(candidates, cand)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.SliceStable(candidates, func(a, b int) bool {
			return g.pathCost(candidates[a], w) < g.pathCost(candidates[b], w)
		})
		found = append(found, candidates[0])
		candidates = candidates[1:]
	}
	return found
}

func samePrefix(p, root Path, i int) bool {
	if len(p.Nodes) < i+1 {
		return false
	}
	for j := 0; j <= i; j++ {
		if p.Nodes[j] != root.Nodes[j] {
			return false
		}
	}
	for j := 0; j < i; j++ {
		if p.Links[j] != root.Links[j] {
			return false
		}
	}
	return true
}

func containsPath(list []Path, p Path) bool {
	for _, q := range list {
		if equalPath(p, q) {
			return true
		}
	}
	return false
}

func equalPath(p, q Path) bool {
	if len(p.Links) != len(q.Links) {
		return false
	}
	for i := range p.Links {
		if p.Links[i] != q.Links[i] {
			return false
		}
	}
	return p.Nodes[0] == q.Nodes[0]
}

// AllSimplePaths enumerates loop-free paths from src to dst by DFS, up to
// the given limit (0 means no limit). Paths are returned in DFS order;
// callers that care about cost should sort.
func (g *Graph) AllSimplePaths(src, dst NodeID, limit int) []Path {
	var out []Path
	onPath := make([]bool, g.NumNodes())
	var nodes []NodeID
	var links []LinkID
	var dfs func(u NodeID) bool
	dfs = func(u NodeID) bool {
		if limit > 0 && len(out) >= limit {
			return false
		}
		if u == dst {
			out = append(out, Path{
				Nodes: append(append([]NodeID(nil), nodes...), dst),
				Links: append([]LinkID(nil), links...),
			})
			return true
		}
		onPath[u] = true
		nodes = append(nodes, u)
		for _, lid := range g.OutLinks(u) {
			to := g.Link(lid).To
			if onPath[to] {
				continue
			}
			links = append(links, lid)
			dfs(to)
			links = links[:len(links)-1]
			if limit > 0 && len(out) >= limit {
				break
			}
		}
		nodes = nodes[:len(nodes)-1]
		onPath[u] = false
		return true
	}
	dfs(src)
	return out
}
