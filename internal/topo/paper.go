package topo

import (
	"time"

	"mptcpsim/internal/unit"
)

// PaperNet is the network of Fig. 1a of the paper, together with the three
// overlapping s->d paths of Fig. 1b. Every pair of paths shares exactly one
// binding bottleneck:
//
//	Path 1 and Path 2 share s-v1   (40 Mbps)  =>  x1+x2 <= 40
//	Path 2 and Path 3 share v3-v4  (60 Mbps)  =>  x2+x3 <= 60
//	Path 1 and Path 3 share v2-v3  (80 Mbps)  =>  x1+x3 <= 80
//
// All other links have the default capacity of 100 Mbps and never bind.
// The LP optimum is x1=30, x2=10, x3=50 (total 90); see DESIGN.md for the
// index-labelling typo in the paper text.
//
// Link delays are chosen so that Path 2 is the shortest path by round-trip
// time (one-way 4 ms vs 7 ms), matching the paper's measurement setup where
// Path 2 is the default subflow.
type PaperNet struct {
	Graph *Graph
	// S and D are the source and destination hosts.
	S, D NodeID
	// Paths holds Path 1, Path 2 and Path 3 in the paper's order.
	Paths []Path
	// Bottlenecks holds the directed link IDs of the three shared
	// bottlenecks, in constraint order: s-v1, v3-v4, v2-v3.
	Bottlenecks []LinkID
}

// Paper capacities.
const (
	PaperCapSV1  = 40 * unit.Mbps
	PaperCapV3V4 = 60 * unit.Mbps
	PaperCapV2V3 = 80 * unit.Mbps
	PaperCapDef  = 100 * unit.Mbps
)

// Paper builds the Fig. 1a network.
func Paper() *PaperNet {
	g := New()
	s := g.AddNode("s")
	v1 := g.AddNode("v1")
	v2 := g.AddNode("v2")
	v3 := g.AddNode("v3")
	v4 := g.AddNode("v4")
	d := g.AddNode("d")

	ms := time.Millisecond
	sv1, _ := g.AddDuplex(s, v1, PaperCapSV1, 1*ms, 0)
	v1v2, _ := g.AddDuplex(v1, v2, PaperCapDef, 2*ms, 0)
	v2v3, _ := g.AddDuplex(v2, v3, PaperCapV2V3, 2*ms, 0)
	// v3-d carries Path 1's tail; its delay is 4 ms so that the shortcut
	// s->v1->v3->d (6 ms) never beats Path 2 (4 ms) as the shortest route.
	v3d, _ := g.AddDuplex(v3, d, PaperCapDef, 4*ms, 0)
	v1v3, _ := g.AddDuplex(v1, v3, PaperCapDef, 1*ms, 0)
	v3v4, _ := g.AddDuplex(v3, v4, PaperCapV3V4, 1*ms, 0)
	v4d, _ := g.AddDuplex(v4, d, PaperCapDef, 1*ms, 0)
	sv2, _ := g.AddDuplex(s, v2, PaperCapDef, 3*ms, 0)

	p1 := Path{Nodes: []NodeID{s, v1, v2, v3, d}, Links: []LinkID{sv1, v1v2, v2v3, v3d}}
	p2 := Path{Nodes: []NodeID{s, v1, v3, v4, d}, Links: []LinkID{sv1, v1v3, v3v4, v4d}}
	p3 := Path{Nodes: []NodeID{s, v2, v3, v4, d}, Links: []LinkID{sv2, v2v3, v3v4, v4d}}

	return &PaperNet{
		Graph:       g,
		S:           s,
		D:           d,
		Paths:       []Path{p1, p2, p3},
		Bottlenecks: []LinkID{sv1, v3v4, v2v3},
	}
}
