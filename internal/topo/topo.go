// Package topo models the network topology: nodes, directed capacitated
// links, and paths between endpoints. It provides the path-computation
// machinery the paper's setting needs — shortest paths by delay, Yen's
// k-shortest paths for offering alternative routes, and overlap analysis
// identifying which links are shared between paths (the source of the
// paper's coupled throughput constraints).
package topo

import (
	"fmt"
	"strings"
	"time"

	"mptcpsim/internal/unit"
)

// NodeID identifies a node within one Graph.
type NodeID int

// LinkID identifies a directed link within one Graph.
type LinkID int

// Node is a switch or host in the topology.
type Node struct {
	ID   NodeID
	Name string
}

// Link is a directed capacitated link. Graphs are built from directed links
// so asymmetric capacities are expressible; AddDuplex adds both directions
// at once.
type Link struct {
	ID       LinkID
	From, To NodeID
	// Rate is the transmission capacity.
	Rate unit.Rate
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// Queue is the buffer capacity of the transmit queue. Zero means "let
	// the engine pick a default" (one bandwidth-delay product).
	Queue unit.ByteSize
}

// Graph is a directed multigraph of nodes and links. The zero value is not
// usable; call New.
type Graph struct {
	nodes  []Node
	links  []Link
	out    map[NodeID][]LinkID
	byName map[string]NodeID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		out:    make(map[NodeID][]LinkID),
		byName: make(map[string]NodeID),
	}
}

// AddNode adds a named node and returns its ID. Adding a duplicate name
// returns the existing node's ID, so builders can be idempotent.
func (g *Graph) AddNode(name string) NodeID {
	if id, ok := g.byName[name]; ok {
		return id
	}
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, Node{ID: id, Name: name})
	g.byName[name] = id
	return id
}

// NodeByName looks a node up by name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id, ok := g.byName[name]
	return id, ok
}

// AddLink adds a directed link and returns its ID.
func (g *Graph) AddLink(from, to NodeID, rate unit.Rate, delay time.Duration, queue unit.ByteSize) LinkID {
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: from, To: to, Rate: rate, Delay: delay, Queue: queue})
	g.out[from] = append(g.out[from], id)
	return id
}

// AddDuplex adds both directions of a symmetric link and returns their IDs.
func (g *Graph) AddDuplex(a, b NodeID, rate unit.Rate, delay time.Duration, queue unit.ByteSize) (LinkID, LinkID) {
	return g.AddLink(a, b, rate, delay, queue), g.AddLink(b, a, rate, delay, queue)
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the directed-link count.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns a node by ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Link returns a link by ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns all links in ID order. The returned slice must not be
// modified.
func (g *Graph) Links() []Link { return g.links }

// Nodes returns all nodes in ID order. The returned slice must not be
// modified.
func (g *Graph) Nodes() []Node { return g.nodes }

// OutLinks returns the IDs of links leaving node n. The returned slice must
// not be modified.
func (g *Graph) OutLinks(n NodeID) []LinkID { return g.out[n] }

// FindLink returns the first link from one node to another.
func (g *Graph) FindLink(from, to NodeID) (LinkID, bool) {
	for _, id := range g.out[from] {
		if g.links[id].To == to {
			return id, true
		}
	}
	return -1, false
}

// Validate checks structural invariants: positive rates, non-negative
// delays, endpoints in range.
func (g *Graph) Validate() error {
	for _, l := range g.links {
		if l.Rate <= 0 {
			return fmt.Errorf("topo: link %d (%s->%s) has non-positive rate",
				l.ID, g.name(l.From), g.name(l.To))
		}
		if l.Delay < 0 {
			return fmt.Errorf("topo: link %d has negative delay", l.ID)
		}
		if int(l.From) >= len(g.nodes) || int(l.To) >= len(g.nodes) || l.From < 0 || l.To < 0 {
			return fmt.Errorf("topo: link %d endpoint out of range", l.ID)
		}
		if l.From == l.To {
			return fmt.Errorf("topo: link %d is a self-loop", l.ID)
		}
	}
	return nil
}

func (g *Graph) name(n NodeID) string {
	if int(n) < len(g.nodes) {
		return g.nodes[n].Name
	}
	return fmt.Sprintf("node(%d)", n)
}

// Path is a loop-free walk through the graph: n nodes joined by n-1 links.
type Path struct {
	Nodes []NodeID
	Links []LinkID
}

// Hops returns the number of links in the path.
func (p Path) Hops() int { return len(p.Links) }

// Valid reports whether the node and link sequences are consistent with
// graph g.
func (p Path) Valid(g *Graph) bool {
	if len(p.Nodes) != len(p.Links)+1 || len(p.Nodes) == 0 {
		return false
	}
	for i, lid := range p.Links {
		if int(lid) >= g.NumLinks() || lid < 0 {
			return false
		}
		l := g.Link(lid)
		if l.From != p.Nodes[i] || l.To != p.Nodes[i+1] {
			return false
		}
	}
	return true
}

// Format renders the path as "s -> v1 -> d".
func (p Path) Format(g *Graph) string {
	parts := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		parts[i] = g.name(n)
	}
	return strings.Join(parts, " -> ")
}

// Delay returns the total one-way propagation delay of the path.
func (p Path) Delay(g *Graph) time.Duration {
	var d time.Duration
	for _, lid := range p.Links {
		d += g.Link(lid).Delay
	}
	return d
}

// BottleneckRate returns the smallest link capacity along the path.
func (p Path) BottleneckRate(g *Graph) unit.Rate {
	if len(p.Links) == 0 {
		return 0
	}
	min := g.Link(p.Links[0]).Rate
	for _, lid := range p.Links[1:] {
		if r := g.Link(lid).Rate; r < min {
			min = r
		}
	}
	return min
}

// SharedLinks returns the link IDs used by both paths, in p's order.
func SharedLinks(p, q Path) []LinkID {
	in := make(map[LinkID]bool, len(q.Links))
	for _, l := range q.Links {
		in[l] = true
	}
	var shared []LinkID
	for _, l := range p.Links {
		if in[l] {
			shared = append(shared, l)
		}
	}
	return shared
}

// LinkDisjoint reports whether two paths share no links.
func LinkDisjoint(p, q Path) bool { return len(SharedLinks(p, q)) == 0 }

// PathsByLink inverts a path list: for every link used by at least one
// path, it lists the indices of the paths crossing it. This is the raw
// material of the paper's throughput constraints (one inequality per
// shared link).
func PathsByLink(paths []Path) map[LinkID][]int {
	m := make(map[LinkID][]int)
	for i, p := range paths {
		for _, l := range p.Links {
			m[l] = append(m[l], i)
		}
	}
	return m
}

// ReversePath returns the path traversing the same nodes in the opposite
// direction, using the reverse direction of each duplex link. It fails if
// any hop has no reverse link.
func ReversePath(g *Graph, p Path) (Path, error) {
	n := len(p.Nodes)
	rev := Path{Nodes: make([]NodeID, n), Links: make([]LinkID, len(p.Links))}
	for i, node := range p.Nodes {
		rev.Nodes[n-1-i] = node
	}
	for i := len(p.Links) - 1; i >= 0; i-- {
		l := g.Link(p.Links[i])
		back, ok := g.FindLink(l.To, l.From)
		if !ok {
			return Path{}, fmt.Errorf("topo: no reverse link for %s->%s", g.name(l.From), g.name(l.To))
		}
		rev.Links[len(p.Links)-1-i] = back
	}
	return rev, nil
}
