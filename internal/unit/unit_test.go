package unit

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTxTime(t *testing.T) {
	tests := []struct {
		rate  Rate
		bytes ByteSize
		want  time.Duration
	}{
		{40 * Mbps, 1500, time.Duration(1500 * 8 * 1e9 / 40e6)}, // 300µs
		{100 * Mbps, 1500, 120 * time.Microsecond},
		{1 * Gbps, 1500, 12 * time.Microsecond},
		{0, 1500, 0},
		{10 * Mbps, 0, 0},
	}
	for _, tc := range tests {
		if got := tc.rate.TxTime(tc.bytes); got != tc.want {
			t.Errorf("%v.TxTime(%d) = %v, want %v", tc.rate, tc.bytes, got, tc.want)
		}
	}
}

func TestBytesInInterval(t *testing.T) {
	if got := (40 * Mbps).Bytes(time.Second); got != 5000000 {
		t.Errorf("40Mbps over 1s = %d bytes, want 5000000", got)
	}
	if got := (100 * Mbps).Bytes(100 * time.Millisecond); got != 1250000 {
		t.Errorf("100Mbps over 100ms = %d, want 1250000", got)
	}
}

func TestRateString(t *testing.T) {
	tests := map[Rate]string{
		40 * Mbps:   "40Mbps",
		2 * Gbps:    "2Gbps",
		250 * Kbps:  "250Kbps",
		999:         "999bps",
		1500 * Kbps: "1500Kbps",
	}
	for r, want := range tests {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(r), got, want)
		}
	}
}

func TestParseRate(t *testing.T) {
	good := map[string]Rate{
		"40Mbps":   40 * Mbps,
		"40 mbps":  40 * Mbps,
		"1.5Gbps":  1500 * Mbps,
		"250kbps":  250 * Kbps,
		"9600bps":  9600,
		"10Mbit/s": 10 * Mbps,
	}
	for s, want := range good {
		got, err := ParseRate(s)
		if err != nil {
			t.Errorf("ParseRate(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseRate(%q) = %v, want %v", s, got, want)
		}
	}
	for _, bad := range []string{"", "40", "fast", "-1Mbps", "Mbps"} {
		if _, err := ParseRate(bad); err == nil {
			t.Errorf("ParseRate(%q) should fail", bad)
		}
	}
}

func TestParseByteSize(t *testing.T) {
	good := map[string]ByteSize{
		"64KB":  64 * KB,
		"1MB":   MB,
		"1500B": 1500,
		"1500":  1500,
		"1.5KB": 1536,
	}
	for s, want := range good {
		got, err := ParseByteSize(s)
		if err != nil {
			t.Errorf("ParseByteSize(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseByteSize(%q) = %v, want %v", s, got, want)
		}
	}
	for _, bad := range []string{"", "huge", "-5KB"} {
		if _, err := ParseByteSize(bad); err == nil {
			t.Errorf("ParseByteSize(%q) should fail", bad)
		}
	}
}

func TestByteSizeString(t *testing.T) {
	tests := map[ByteSize]string{
		64 * KB: "64KB",
		2 * MB:  "2MB",
		3 * GB:  "3GB",
		1500:    "1500B",
		1536:    "1536B", // not an exact KB multiple of the formatter's units
	}
	for b, want := range tests {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(b), got, want)
		}
	}
}

func TestBDP(t *testing.T) {
	// 40 Mbps * 20 ms = 100 KB exactly (decimal): 5e6 B/s * 0.02 s = 1e5 B.
	if got := BDP(40*Mbps, 20*time.Millisecond); got != 100000 {
		t.Errorf("BDP = %d, want 100000", got)
	}
}

// Property: String/Parse round-trips for exact multiples.
func TestQuickRateRoundTrip(t *testing.T) {
	f := func(n uint16) bool {
		r := Rate(n) * Mbps
		got, err := ParseRate(r.String())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: TxTime and Bytes are approximate inverses.
func TestQuickTxTimeBytesInverse(t *testing.T) {
	f := func(mbps uint8, kb uint8) bool {
		r := Rate(int64(mbps)+1) * Mbps
		n := ByteSize(int64(kb)+1) * KB
		d := r.TxTime(n)
		back := r.Bytes(d)
		diff := int64(back - n)
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1 // rounding slack of one byte
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
