// Package unit defines the physical quantities used throughout the
// simulator: link rates in bits per second and data sizes in bytes, with
// parsing, formatting and the time arithmetic that links need (how long a
// packet occupies a transmitter, how many bytes fit in an interval).
package unit

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Rate is a data rate in bits per second.
type Rate int64

// Rate constants in conventional decimal (SI) units, as used for link
// capacities ("40 Mbps" means 40*10^6 bits per second).
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// Mbit returns the rate expressed in megabits per second.
func (r Rate) Mbit() float64 { return float64(r) / float64(Mbps) }

// TxTime returns how long a transmitter at rate r needs to serialise n
// bytes. A zero or negative rate means an infinitely fast link.
func (r Rate) TxTime(n ByteSize) time.Duration {
	if r <= 0 || n <= 0 {
		return 0
	}
	bits := float64(n) * 8
	return time.Duration(bits / float64(r) * float64(time.Second))
}

// Bytes returns how many whole bytes rate r delivers in duration d.
func (r Rate) Bytes(d time.Duration) ByteSize {
	if r <= 0 || d <= 0 {
		return 0
	}
	return ByteSize(float64(r) / 8 * d.Seconds())
}

// String formats the rate with its natural unit, e.g. "40Mbps".
func (r Rate) String() string {
	switch {
	case r >= Gbps && r%Gbps == 0:
		return fmt.Sprintf("%dGbps", r/Gbps)
	case r >= Mbps && r%Mbps == 0:
		return fmt.Sprintf("%dMbps", r/Mbps)
	case r >= Kbps && r%Kbps == 0:
		return fmt.Sprintf("%dKbps", r/Kbps)
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// ParseRate parses strings like "40Mbps", "1.5Gbps", "250Kbps" or "9600bps"
// (unit suffix case-insensitive, "bit/s" also accepted).
func ParseRate(s string) (Rate, error) {
	orig := s
	s = strings.TrimSpace(strings.ToLower(s))
	s = strings.ReplaceAll(s, "bit/s", "bps")
	mult := float64(1)
	switch {
	case strings.HasSuffix(s, "gbps"):
		mult, s = float64(Gbps), strings.TrimSuffix(s, "gbps")
	case strings.HasSuffix(s, "mbps"):
		mult, s = float64(Mbps), strings.TrimSuffix(s, "mbps")
	case strings.HasSuffix(s, "kbps"):
		mult, s = float64(Kbps), strings.TrimSuffix(s, "kbps")
	case strings.HasSuffix(s, "bps"):
		s = strings.TrimSuffix(s, "bps")
	default:
		return 0, fmt.Errorf("unit: rate %q missing unit (bps/Kbps/Mbps/Gbps)", orig)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("unit: invalid rate %q", orig)
	}
	return Rate(v * mult), nil
}

// ByteSize is a size in bytes.
type ByteSize int64

// Size constants in binary (IEC) units, used for buffers and windows.
const (
	Byte ByteSize = 1
	KB            = 1024 * Byte
	MB            = 1024 * KB
	GB            = 1024 * MB
)

// String formats a size with its natural unit, e.g. "64KB".
func (b ByteSize) String() string {
	switch {
	case b >= GB && b%GB == 0:
		return fmt.Sprintf("%dGB", b/GB)
	case b >= MB && b%MB == 0:
		return fmt.Sprintf("%dMB", b/MB)
	case b >= KB && b%KB == 0:
		return fmt.Sprintf("%dKB", b/KB)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// ParseByteSize parses strings like "64KB", "1.5MB", "1500B" or "1500".
func ParseByteSize(s string) (ByteSize, error) {
	orig := s
	s = strings.TrimSpace(strings.ToLower(s))
	mult := float64(1)
	switch {
	case strings.HasSuffix(s, "gb"):
		mult, s = float64(GB), strings.TrimSuffix(s, "gb")
	case strings.HasSuffix(s, "mb"):
		mult, s = float64(MB), strings.TrimSuffix(s, "mb")
	case strings.HasSuffix(s, "kb"):
		mult, s = float64(KB), strings.TrimSuffix(s, "kb")
	case strings.HasSuffix(s, "b"):
		s = strings.TrimSuffix(s, "b")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("unit: invalid size %q", orig)
	}
	return ByteSize(v * mult), nil
}

// BDP returns the bandwidth-delay product for rate r and round-trip time
// rtt, the canonical router buffer size.
func BDP(r Rate, rtt time.Duration) ByteSize {
	return r.Bytes(rtt)
}
