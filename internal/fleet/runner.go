package fleet

import (
	"context"
	"io"
	"os/exec"
	"strconv"
)

// Runner executes one leased shard to completion: by the time Run returns
// nil, the shard's run-log in the spool should be complete (header plus
// every index of the shard committed). The coordinator trusts the log, not
// the error — it verifies the log after every return, so a Runner whose
// process was SIGKILLed simply returns the wait error and the next lease
// resumes the log. Run must honour ctx: the coordinator cancels it at the
// lease deadline, and a runner that keeps writing past cancellation risks
// interleaving with its replacement.
type Runner interface {
	Run(ctx context.Context, lease Lease) error
}

// ExecRunner runs each lease as a local `sweep` worker process:
//
//	sweep -grid g.json -shard k/n -resume <spool>/shard-k-of-n.ndjson -q
//
// Always -resume: on a fresh shard the log does not exist yet and resume
// of an empty file is exactly a fresh stream, while on a re-lease it skips
// everything the dead worker committed. The lease's worker id and epoch
// are stamped into the log header as provenance. Cancellation kills the
// process (SIGKILL via CommandContext), which is also the crash the
// resume path is built for.
type ExecRunner struct {
	// Bin is the sweep binary; GridPath the -grid argument ("" = the
	// built-in paper grid).
	Bin      string
	GridPath string
	// Workers is each worker process's -workers; Check adds -check (it
	// must match the coordinator's sweep, or the grid digests disagree).
	Workers int
	Check   bool
	// Spool is the shared spool directory.
	Spool string
	// Stderr, when set, receives every worker's stderr (progress lines are
	// suppressed with -q; what remains is diagnostics).
	Stderr io.Writer
}

func (r *ExecRunner) Run(ctx context.Context, lease Lease) error {
	args := []string{
		"-shard", strconv.Itoa(lease.K) + "/" + strconv.Itoa(lease.N),
		"-resume", ShardLogPath(r.Spool, lease.K, lease.N),
		"-q",
		"-worker-id", lease.Worker,
		"-lease", strconv.Itoa(lease.Epoch),
	}
	if r.GridPath != "" {
		args = append(args, "-grid", r.GridPath)
	}
	if r.Workers > 0 {
		args = append(args, "-workers", strconv.Itoa(r.Workers))
	}
	if r.Check {
		args = append(args, "-check")
	}
	cmd := exec.CommandContext(ctx, r.Bin, args...)
	cmd.Stderr = r.Stderr
	return cmd.Run()
}
