// Package fleet coordinates a fleet of sweep workers over one parameter
// grid: the grid is expanded once into n shards, each shard is leased to a
// worker with a deadline, expired or failed leases are retried with
// backoff, and the shard run-logs accumulating in a shared spool directory
// are folded into live fleet-wide progress and, at the end, merged through
// the same validated path as any other shard artifacts — so the fleet
// result is byte-identical to an unsharded sweep.
//
// The lease protocol is deliberately thin: a lease is a promise from the
// coordinator not to hand the same shard to anyone else before the
// deadline, and the shard's append-only run-log (with resume) is the only
// shared state. A worker that dies mid-shard wastes nothing — the next
// lease resumes its log past the last committed record.
package fleet

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStaleLease reports a completion (or failure) carrying a lease epoch
// the table has since re-granted: the original worker outlived its
// deadline and a replacement holds the shard now, so the late result must
// be discarded to keep coverage exactly-once.
var ErrStaleLease = errors.New("stale lease epoch")

// ErrAttemptsExhausted reports a shard that failed more times than the
// table allows — the fleet cannot complete and should abort loudly rather
// than spin on a shard that will never finish.
var ErrAttemptsExhausted = errors.New("shard attempts exhausted")

// Lease is one grant: shard K of N, held by Worker under Epoch until
// Deadline. The epoch is the grant counter for the shard; a completion is
// honoured only if its epoch is still the shard's current one.
type Lease struct {
	K, N     int
	Epoch    int
	Worker   string
	Deadline time.Time
}

func (l Lease) String() string {
	return fmt.Sprintf("shard %d/%d epoch %d -> %s", l.K, l.N, l.Epoch, l.Worker)
}

const (
	statePending = iota
	stateLeased
	stateDone
)

type shardState struct {
	state    int
	epoch    int       // grant counter; 0 = never granted
	attempts int       // grants so far
	eligible time.Time // earliest next grant (failure backoff)
	deadline time.Time
	worker   string
}

// Table is the coordinator's lease ledger over the n shards of one grid.
// It is safe for concurrent use; time comes from a swappable clock so
// expiry is testable without sleeping.
type Table struct {
	n           int
	ttl         time.Duration
	maxAttempts int
	backoff     time.Duration
	now         func() time.Time

	mu     sync.Mutex
	shards []shardState
	done   int
}

// NewTable returns a lease table for n shards. Each grant lasts ttl; a
// shard may be granted at most maxAttempts times (0 means unlimited), and
// after a failure the shard is withheld for backoff before the next grant.
func NewTable(n int, ttl time.Duration, maxAttempts int, backoff time.Duration) *Table {
	return &Table{
		n: n, ttl: ttl, maxAttempts: maxAttempts, backoff: backoff,
		now:    time.Now,
		shards: make([]shardState, n),
	}
}

// Acquire grants the lowest-numbered grantable shard to worker: a shard
// never granted, one released by failure (past its backoff), or one whose
// lease expired without word from its worker — that grant bumps the epoch,
// so the silent worker's eventual completion will be stale. ok is false
// when nothing is grantable right now (all running, backing off, or done).
func (t *Table) Acquire(worker string) (lease Lease, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	for k := range t.shards {
		s := &t.shards[k]
		switch s.state {
		case stateDone:
			continue
		case statePending:
			if now.Before(s.eligible) {
				continue
			}
		case stateLeased:
			if now.Before(s.deadline) {
				continue
			}
			// Expired without a Complete or Fail: an implicit failure.
		}
		if t.maxAttempts > 0 && s.attempts >= t.maxAttempts {
			continue
		}
		s.state = stateLeased
		s.epoch++
		s.attempts++
		s.worker = worker
		s.deadline = now.Add(t.ttl)
		return Lease{K: k, N: t.n, Epoch: s.epoch, Worker: worker, Deadline: s.deadline}, true
	}
	return Lease{}, false
}

// Complete marks shard k done under the given epoch. A stale epoch — the
// shard has been re-granted since, or was already completed by someone
// else — returns ErrStaleLease and changes nothing: the caller must
// discard the late result. A completion under the current epoch is
// honoured even past the deadline, since no replacement was granted.
func (t *Table) Complete(k, epoch int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.shards[k]
	if s.state != stateLeased || s.epoch != epoch {
		return fmt.Errorf("fleet: shard %d/%d completion at epoch %d (table at %d): %w",
			k, t.n, epoch, s.epoch, ErrStaleLease)
	}
	s.state = stateDone
	t.done++
	return nil
}

// Fail releases shard k for retry under the given epoch (a worker that
// reported its own death; expiry needs no Fail — Acquire re-grants expired
// leases on its own). A stale epoch returns ErrStaleLease; a shard out of
// attempts returns ErrAttemptsExhausted, upon which the fleet should
// abort.
func (t *Table) Fail(k, epoch int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &t.shards[k]
	if s.state != stateLeased || s.epoch != epoch {
		return fmt.Errorf("fleet: shard %d/%d failure at epoch %d (table at %d): %w",
			k, t.n, epoch, s.epoch, ErrStaleLease)
	}
	s.state = statePending
	s.eligible = t.now().Add(t.backoff)
	if t.maxAttempts > 0 && s.attempts >= t.maxAttempts {
		return fmt.Errorf("fleet: shard %d/%d failed %d times: %w", k, t.n, s.attempts, ErrAttemptsExhausted)
	}
	return nil
}

// Exhausted returns a shard that can never be granted again — not done,
// not within a live lease, and out of attempts — or ok=false when every
// remaining shard still has a path to completion. With no runners active
// this is the fleet's stuck test.
func (t *Table) Exhausted() (k int, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.maxAttempts <= 0 {
		return 0, false
	}
	now := t.now()
	for k := range t.shards {
		s := &t.shards[k]
		if s.state == stateDone {
			continue
		}
		if s.state == stateLeased && now.Before(s.deadline) {
			continue
		}
		if s.attempts >= t.maxAttempts {
			return k, true
		}
	}
	return 0, false
}

// Done reports whether every shard has completed.
func (t *Table) Done() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done == t.n
}

// Remaining counts shards not yet completed.
func (t *Table) Remaining() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n - t.done
}
