package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"mptcpsim"
	"mptcpsim/internal/telemetry"
)

// fleetGrid is the shared test grid: 12 runs over 4 shard-friendly axes,
// short enough to sweep several times per test.
func fleetGrid() *mptcpsim.Grid {
	return &mptcpsim.Grid{
		CCs:        []string{"cubic", "olia"},
		Orders:     [][]int{{2, 1, 3}, {1, 2, 3}},
		Seeds:      []int64{1, 2, 3},
		DurationMs: 150,
	}
}

// renderAll renders the four output formats of a result.
func renderAll(t *testing.T, res *mptcpsim.SweepResult) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for name, fn := range map[string]func(io.Writer) error{
		"report":     res.Report,
		"runs.csv":   res.WriteCSV,
		"groups.csv": res.WriteGroupsCSV,
		"sweep.json": res.WriteJSON,
	} {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("render %s: %v", name, err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

var errInjectedCrash = errors.New("injected worker crash")

// crashSink kills the worker from inside its sink chain: after the
// configured number of accepted records it poisons the stream and —
// like a real SIGKILL — suppresses the final Close flush, so buffered
// uncommitted records are lost.
type crashSink struct {
	next    mptcpsim.RunSink
	after   int
	accepts int
	crashed bool
}

func (s *crashSink) Accept(done, total int, r mptcpsim.RunSummary, full *mptcpsim.Result) error {
	if s.accepts >= s.after {
		s.crashed = true
		return errInjectedCrash
	}
	s.accepts++
	return s.next.Accept(done, total, r, full)
}

func (s *crashSink) Flush() error {
	if s.crashed {
		return errInjectedCrash
	}
	return s.next.Flush()
}

func (s *crashSink) Close() error {
	if s.crashed {
		return errInjectedCrash
	}
	return s.next.Close()
}

// crashyRunner wraps the in-process Worker with a crash plan: chosen
// attempts die after a random number of committed records, and the dead
// worker's log is additionally mangled at a uniformly random byte — every
// torn-tail byte class, including cuts inside the header line.
type crashyRunner struct {
	worker *Worker
	// plan returns how many records attempt n on shard k may commit
	// before crashing, or -1 to run clean.
	plan func(k, attempt int) int

	mu       sync.Mutex
	rng      *rand.Rand
	attempts map[int]int
	crashes  int
}

func (r *crashyRunner) Run(ctx context.Context, lease Lease) error {
	r.mu.Lock()
	r.attempts[lease.K]++
	after := r.plan(lease.K, r.attempts[lease.K])
	r.mu.Unlock()

	w := *r.worker
	var sink *crashSink
	if after >= 0 {
		w.WrapSink = func(_ Lease, next mptcpsim.RunSink) mptcpsim.RunSink {
			sink = &crashSink{next: next, after: after}
			return sink
		}
	}
	err := w.Run(ctx, lease)
	if sink != nil && sink.crashed {
		r.mangle(lease)
	}
	return err
}

// mangle simulates the arbitrary on-disk state a kill leaves behind:
// half the time the log is cut at a uniformly random byte (which can land
// inside the header, inside a record, or exactly on a commit mark), the
// other half a torn partial record is appended.
func (r *crashyRunner) mangle(lease Lease) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.crashes++
	path := ShardLogPath(r.worker.Spool, lease.K, lease.N)
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) == 0 {
		return
	}
	if r.rng.Intn(2) == 0 {
		cut := r.rng.Intn(len(raw) + 1)
		os.WriteFile(path, raw[:cut], 0o644)
		return
	}
	torn := []byte(`{"run":{"index`)[:1+r.rng.Intn(13)]
	os.WriteFile(path, append(raw, torn...), 0o644)
}

// TestFleetKillWorkersByteIdentity is the tentpole property: every shard's
// first attempt is killed mid-shard at a random point (plus one double
// kill), the logs are mangled at random bytes, and the fleet's merged
// result must still be byte-identical to the unsharded in-memory sweep in
// all four output formats — with every heartbeat line valid JSON.
func TestFleetKillWorkersByteIdentity(t *testing.T) {
	want := func() map[string][]byte {
		res, err := (&mptcpsim.Sweep{Workers: 2}).Run(fleetGrid())
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, res)
	}()

	const shards = 4
	spool := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	runner := &crashyRunner{
		worker: &Worker{
			Sweep:     &mptcpsim.Sweep{Workers: 2},
			Grid:      fleetGrid(),
			Spool:     spool,
			SyncEvery: 1,
		},
		// Shard size is 3 here, so every first attempt (committing 1, 2, 0
		// or 1 records — always short of 3) dies mid-shard, and shard 0
		// dies again immediately on its second attempt. The plan is a pure
		// function of (shard, attempt) so the kill count is deterministic
		// under any goroutine interleaving; only the mangling stays random.
		plan: func(k, attempt int) int {
			switch {
			case attempt == 1:
				return (k*7 + 1) % 3
			case k == 0 && attempt == 2:
				return 0
			}
			return -1
		},
		rng:      rng,
		attempts: make(map[int]int),
	}

	var progress, notices bytes.Buffer
	meter := telemetry.NewMeter(&progress, 12, shards, 0)
	coord := &Coordinator{
		Sweep:       &mptcpsim.Sweep{Workers: 2},
		Grid:        fleetGrid(),
		Shards:      shards,
		Workers:     2,
		Spool:       spool,
		Runner:      runner,
		TTL:         time.Minute,
		MaxAttempts: 5,
		Poll:        5 * time.Millisecond,
		Meter:       meter,
		Log:         &notices,
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("fleet: %v\nnotices:\n%s", err, notices.String())
	}
	if runner.crashes != 5 {
		t.Fatalf("crash plan executed %d kills, want 5", runner.crashes)
	}

	got := renderAll(t, res)
	for name, w := range want {
		if !bytes.Equal(got[name], w) {
			t.Errorf("fleet output %s differs from the unsharded sweep", name)
		}
	}

	// Live progress: the folded aggregate covers every run exactly once,
	// despite re-deliveries across resumes.
	agg := coord.Progress()
	if agg.Runs+agg.Errors != 12 {
		t.Fatalf("fleet aggregate folded %d runs + %d errors, want 12 exactly-once", agg.Runs, agg.Errors)
	}

	// Heartbeats: every line independently valid JSON, final line accounts
	// for the whole grid.
	if err := meter.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(progress.String(), "\n"), "\n")
	var hb telemetry.Heartbeat
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("heartbeat %d is not valid JSON: %s", i, line)
		}
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Done != 12 || hb.Total != 12 {
		t.Fatalf("final heartbeat done/total = %d/%d, want 12/12", hb.Done, hb.Total)
	}
}

// TestFleetCoordinatorRestart is crash-safety one level up: the
// coordinator itself aborts (a shard out of attempts), a fresh coordinator
// is pointed at the same spool, and the fleet finishes from the committed
// prefix — byte-identical output, heartbeats crediting the resumed runs.
func TestFleetCoordinatorRestart(t *testing.T) {
	spool := t.TempDir()
	worker := &Worker{
		Sweep:     &mptcpsim.Sweep{Workers: 2},
		Grid:      fleetGrid(),
		Spool:     spool,
		SyncEvery: 1,
	}
	rng := rand.New(rand.NewSource(11))
	first := &Coordinator{
		Sweep:   &mptcpsim.Sweep{Workers: 2},
		Grid:    fleetGrid(),
		Shards:  3,
		Workers: 2,
		Spool:   spool,
		Runner: &crashyRunner{
			worker:   worker,
			plan:     func(k, attempt int) int { return 1 + rng.Intn(2) }, // every attempt dies
			rng:      rng,
			attempts: make(map[int]int),
		},
		TTL:         time.Minute,
		MaxAttempts: 2,
		Poll:        5 * time.Millisecond,
	}
	if _, err := first.Run(context.Background()); !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("doomed fleet: err = %v, want ErrAttemptsExhausted", err)
	}

	var progress bytes.Buffer
	meter := telemetry.NewMeter(&progress, 12, 3, 0)
	second := &Coordinator{
		Sweep:   &mptcpsim.Sweep{Workers: 2},
		Grid:    fleetGrid(),
		Shards:  3,
		Workers: 2,
		Spool:   spool,
		Runner:  worker,
		TTL:     time.Minute,
		Poll:    5 * time.Millisecond,
		Meter:   meter,
	}
	res, err := second.Run(context.Background())
	if err != nil {
		t.Fatalf("restarted fleet: %v", err)
	}
	want, err := (&mptcpsim.Sweep{Workers: 2}).Run(fleetGrid())
	if err != nil {
		t.Fatal(err)
	}
	wantAll, gotAll := renderAll(t, want), renderAll(t, res)
	for name, w := range wantAll {
		if !bytes.Equal(gotAll[name], w) {
			t.Errorf("restarted fleet output %s differs from the unsharded sweep", name)
		}
	}
	if err := meter.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(progress.String(), "\n"), "\n")
	var hb telemetry.Heartbeat
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Done != 12 {
		t.Fatalf("final heartbeat credits %d runs, want all 12 (resumed + executed)", hb.Done)
	}
}

// hangRunner blocks its first call until the lease deadline kills it,
// writing nothing, then delegates to the real worker — the silent-worker
// expiry path.
type hangRunner struct {
	worker *Worker
	mu     sync.Mutex
	calls  int
}

func (r *hangRunner) Run(ctx context.Context, lease Lease) error {
	r.mu.Lock()
	r.calls++
	first := r.calls == 1
	r.mu.Unlock()
	if first {
		<-ctx.Done()
		return ctx.Err()
	}
	return r.worker.Run(ctx, lease)
}

// TestFleetLeaseExpiryRevivesShard covers the hung worker: the first lease
// holder never writes a byte, the lease expires, and a re-grant finishes
// the shard.
func TestFleetLeaseExpiryRevivesShard(t *testing.T) {
	spool := t.TempDir()
	worker := &Worker{
		Sweep: &mptcpsim.Sweep{Workers: 2},
		Grid:  fleetGrid(),
		Spool: spool,
	}
	runner := &hangRunner{worker: worker}
	var notices bytes.Buffer
	coord := &Coordinator{
		Sweep:   &mptcpsim.Sweep{Workers: 2},
		Grid:    fleetGrid(),
		Shards:  1,
		Workers: 2,
		Spool:   spool,
		Runner:  runner,
		// Long enough for the real second attempt to finish inside its
		// lease even under -race; the hung first attempt pays it in full.
		TTL:         2 * time.Second,
		MaxAttempts: 3,
		Poll:        10 * time.Millisecond,
		Log:         &notices,
	}
	res, err := coord.Run(context.Background())
	if err != nil {
		t.Fatalf("fleet: %v\nnotices:\n%s", err, notices.String())
	}
	if len(res.Runs) != 12 {
		t.Fatalf("merged %d runs, want 12", len(res.Runs))
	}
	if runner.calls < 2 {
		t.Fatalf("shard completed in %d calls; the hung lease was never re-granted", runner.calls)
	}
	if !strings.Contains(notices.String(), "incomplete") {
		t.Fatalf("coordinator never logged the failed lease:\n%s", notices.String())
	}
}
