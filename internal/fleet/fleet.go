package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"mptcpsim"
	"mptcpsim/internal/telemetry"
)

// Coordinator drives a fleet sweep: expand the grid once, lease its n
// shards to up to Workers concurrent runners, watch the shard run-logs
// grow in the spool, retry expired or failed leases (resuming the dead
// worker's log), and finally merge the complete logs into the unsharded
// sweep result. The merge goes through mptcpsim.MergeShards, so the
// output is byte-identical to Sweep.Run on the same grid no matter how
// many workers died along the way.
type Coordinator struct {
	// Sweep is the template whose Describe pins the grid digest (Workers
	// and ValidateInvariants must match what the runners execute). Grid is
	// the fleet's grid.
	Sweep *mptcpsim.Sweep
	Grid  *mptcpsim.Grid
	// Shards is n: how many slices the grid is cut into; Workers how many
	// leases may run concurrently.
	Shards  int
	Workers int
	// Spool is the shared spool directory (created if missing).
	Spool string
	// Runner executes one lease; see Worker (in-process) and ExecRunner.
	Runner Runner
	// TTL is the lease deadline; an expired lease is re-granted and its
	// late completion rejected. MaxAttempts bounds grants per shard
	// (0 = fleetDefaultAttempts); Backoff delays re-granting a failed
	// shard. Poll is the progress-scan interval (0 = 200ms).
	TTL         time.Duration
	MaxAttempts int
	Backoff     time.Duration
	Poll        time.Duration
	// Meter, when set, receives fleet-wide progress: committed records
	// found in the spool at startup via Resume, everything after via
	// Advance.
	Meter *telemetry.Meter
	// Log, when set, receives coordinator notices (grants, expiries,
	// retries) — never sweep output.
	Log io.Writer

	tails []*shardTail
}

const fleetDefaultAttempts = 5

func (c *Coordinator) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Run executes the fleet to completion and returns the merged result.
func (c *Coordinator) Run(ctx context.Context) (*mptcpsim.SweepResult, error) {
	if c.Shards <= 0 {
		return nil, fmt.Errorf("fleet: need at least one shard, have %d", c.Shards)
	}
	if c.Workers <= 0 {
		return nil, fmt.Errorf("fleet: need at least one worker, have %d", c.Workers)
	}
	if err := os.MkdirAll(c.Spool, 0o777); err != nil {
		return nil, err
	}
	digest, total, err := c.Sweep.Describe(c.Grid)
	if err != nil {
		return nil, err
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = fleetDefaultAttempts
	}
	poll := c.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	table := NewTable(c.Shards, c.TTL, maxAttempts, c.Backoff)
	c.tails = make([]*shardTail, c.Shards)
	for k := range c.tails {
		c.tails[k] = newShardTail(ShardLogPath(c.Spool, k, c.Shards))
	}

	// Prime the meter with whatever a previous coordinator left in the
	// spool: those runs are a resume baseline, not progress this execution
	// earned.
	if done, failed, err := c.scanProgress(); err != nil {
		return nil, err
	} else if done > 0 {
		c.logf("fleet: spool already holds %d committed runs; resuming", done)
		if c.Meter != nil {
			c.Meter.Resume(done, failed)
		}
	}

	type doneMsg struct {
		lease Lease
		err   error
	}
	results := make(chan doneMsg)
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	active := 0
	workerSeq := 0

	for !table.Done() {
		for active < c.Workers {
			lease, ok := table.Acquire(fmt.Sprintf("w%03d", workerSeq))
			if !ok {
				break
			}
			workerSeq++
			c.logf("fleet: lease %s (attempt %d, deadline %s)",
				lease, leaseAttempt(table, lease), lease.Deadline.Format(time.RFC3339))
			active++
			go func(lease Lease) {
				runCtx := ctx
				cancel := context.CancelFunc(func() {})
				if c.TTL > 0 {
					runCtx, cancel = context.WithDeadline(ctx, lease.Deadline)
				}
				err := c.Runner.Run(runCtx, lease)
				cancel()
				results <- doneMsg{lease, err}
			}(lease)
		}
		if active == 0 {
			// Nothing running and nothing grantable: either some shard is
			// backing off (the ticker will retry the grant) or every
			// remaining shard is out of attempts.
			if k, stuck := table.Exhausted(); stuck {
				return nil, fmt.Errorf("fleet: shard %d/%d: %w", k, c.Shards, ErrAttemptsExhausted)
			}
		}
		select {
		case msg := <-results:
			active--
			if err := c.settle(table, msg.lease, msg.err, digest); err != nil {
				// Drain outstanding runners before aborting so none of them
				// keeps writing to a spool we just declared broken.
				for active > 0 {
					<-results
					active--
				}
				return nil, err
			}
		case <-ticker.C:
			if _, _, err := c.advanceProgress(); err != nil {
				c.logf("fleet: progress scan: %v", err)
			}
		case <-ctx.Done():
			for active > 0 {
				<-results
				active--
			}
			return nil, ctx.Err()
		}
	}

	if _, _, err := c.advanceProgress(); err != nil {
		return nil, err
	}
	return c.merge(digest, total)
}

// settle classifies one runner return: the shard log decides, not the
// runner's error — a SIGKILLed process and a clean exit both count as
// complete if (and only if) every index of the shard is committed.
func (c *Coordinator) settle(table *Table, lease Lease, runErr error, digest string) error {
	if _, _, err := c.advanceProgress(); err != nil {
		c.logf("fleet: progress scan: %v", err)
	}
	complete, verr := c.shardComplete(lease, digest)
	if verr != nil {
		return verr
	}
	if complete {
		if err := table.Complete(lease.K, lease.Epoch); err != nil {
			// The lease expired and the shard was re-granted; the late
			// result is discarded (the log itself is still fine — the
			// current leaseholder resumes it and will find nothing left
			// to do).
			c.logf("fleet: %s finished late: %v", lease, err)
		}
		return nil
	}
	c.logf("fleet: %s incomplete (runner: %v); releasing for retry", lease, runErr)
	if err := table.Fail(lease.K, lease.Epoch); err != nil {
		if errors.Is(err, ErrStaleLease) {
			return nil // already re-granted after expiry
		}
		return fmt.Errorf("%w (last runner error: %v)", err, runErr)
	}
	return nil
}

// shardComplete reports whether the shard's spool log is a complete,
// clean record of the whole shard under the fleet's digest.
func (c *Coordinator) shardComplete(lease Lease, digest string) (bool, error) {
	f, err := os.Open(ShardLogPath(c.Spool, lease.K, lease.N))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	log, err := mptcpsim.ReadRunLog(f)
	if errors.Is(err, mptcpsim.ErrHeaderTorn) {
		return false, nil
	}
	if err != nil {
		// Mid-file corruption: resume cannot fix this, so retrying the
		// lease would loop. Abort loudly.
		return false, fmt.Errorf("fleet: shard %d/%d log unusable: %w", lease.K, lease.N, err)
	}
	if log.Header.GridDigest != digest {
		return false, fmt.Errorf("fleet: shard %d/%d log carries grid digest %.12s, fleet is %.12s (stale spool?)",
			lease.K, lease.N, log.Header.GridDigest, digest)
	}
	want := shardSize(lease.K, lease.N, log.Header.Total)
	return !log.Torn() && len(log.Runs) == want, nil
}

// merge loads every shard log and reassembles the unsharded result.
func (c *Coordinator) merge(digest string, total int) (*mptcpsim.SweepResult, error) {
	shards := make([]*mptcpsim.ShardResult, c.Shards)
	for k := 0; k < c.Shards; k++ {
		f, err := os.Open(ShardLogPath(c.Spool, k, c.Shards))
		if err != nil {
			return nil, err
		}
		log, err := mptcpsim.ReadRunLog(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if log.Torn() {
			return nil, fmt.Errorf("fleet: shard %d/%d log torn after completion (is something else writing the spool?)", k, c.Shards)
		}
		shards[k] = log.ShardResult()
	}
	for k, sr := range shards {
		if sr.GridDigest != digest {
			return nil, fmt.Errorf("fleet: shard %d/%d log carries grid digest %.12s, fleet is %.12s",
				k, c.Shards, sr.GridDigest, digest)
		}
	}
	// MergeShards revalidates digest agreement and exactly-once coverage
	// of all total indices, so a passing merge is the byte-identity
	// guarantee, not just a concatenation.
	res, err := mptcpsim.MergeShards(shards...)
	if err != nil {
		return nil, err
	}
	if len(res.Runs) != total {
		return nil, fmt.Errorf("fleet: merged %d runs, grid has %d", len(res.Runs), total)
	}
	return res, nil
}

// scanProgress folds every tail once and returns the totals without
// advancing the meter — the startup baseline.
func (c *Coordinator) scanProgress() (done, failed int, err error) {
	for _, t := range c.tails {
		d, f, perr := t.poll()
		if perr != nil {
			return done, failed, perr
		}
		done += d
		failed += f
	}
	return done, failed, nil
}

// advanceProgress folds every tail and advances the meter by what is new.
func (c *Coordinator) advanceProgress() (done, failed int, err error) {
	done, failed, err = c.scanProgress()
	if err != nil {
		return done, failed, err
	}
	if c.Meter != nil && done > 0 {
		if err := c.Meter.Advance(done, failed); err != nil {
			return done, failed, err
		}
	}
	return done, failed, nil
}

// Progress snapshots the live fleet-wide aggregate: every shard tail's
// online accumulators merged into one AggSink. Safe to call concurrently
// with Run (the expvar/debug surface does).
func (c *Coordinator) Progress() *mptcpsim.AggSink {
	agg := &mptcpsim.AggSink{}
	for _, t := range c.tails {
		if t != nil {
			t.snapshot(agg)
		}
	}
	return agg
}

// shardSize is how many of total expansion indices fall in shard k of n.
func shardSize(k, n, total int) int {
	if n <= 0 || k >= total {
		return 0
	}
	return (total + n - 1 - k) / n
}

// leaseAttempt reads the attempt count behind a lease (for notices only).
func leaseAttempt(t *Table, l Lease) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.shards[l.K].attempts
}
