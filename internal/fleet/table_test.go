package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeNow is a mutex-guarded fake clock for the lease table.
type fakeNow struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeNow) get() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeNow) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestTable(n int, ttl time.Duration, maxAttempts int, backoff time.Duration) (*Table, *fakeNow) {
	table := NewTable(n, ttl, maxAttempts, backoff)
	clock := &fakeNow{now: time.Unix(1700000000, 0)}
	table.now = clock.get
	return table, clock
}

// TestTableLateCompletionRejected is the exactly-once property of the
// lease protocol: a lease expires, the shard is re-granted under a new
// epoch, and the original worker finishing late must be rejected as
// stale — the replacement's completion is the only one honoured, and a
// duplicate of it is rejected too.
func TestTableLateCompletionRejected(t *testing.T) {
	table, clock := newTestTable(1, time.Minute, 0, 0)

	a, ok := table.Acquire("a")
	if !ok || a.Epoch != 1 {
		t.Fatalf("first grant: ok=%v epoch=%d, want grant at epoch 1", ok, a.Epoch)
	}
	if _, ok := table.Acquire("b"); ok {
		t.Fatal("shard granted twice inside a live lease")
	}

	clock.advance(2 * time.Minute) // a's lease expires silently
	b, ok := table.Acquire("b")
	if !ok || b.K != a.K || b.Epoch != 2 {
		t.Fatalf("re-grant after expiry: ok=%v k=%d epoch=%d, want shard %d at epoch 2", ok, b.K, b.Epoch, a.K)
	}

	// The original worker finishes anyway: rejected, shard still open.
	if err := table.Complete(a.K, a.Epoch); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("late completion: err = %v, want ErrStaleLease", err)
	}
	if table.Done() {
		t.Fatal("a stale completion closed the shard")
	}
	// Its failure report is equally stale.
	if err := table.Fail(a.K, a.Epoch); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("late failure: err = %v, want ErrStaleLease", err)
	}

	if err := table.Complete(b.K, b.Epoch); err != nil {
		t.Fatalf("current-epoch completion: %v", err)
	}
	if !table.Done() {
		t.Fatal("table not done after the only shard completed")
	}
	if err := table.Complete(b.K, b.Epoch); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("duplicate completion: err = %v, want ErrStaleLease", err)
	}
}

// TestTableCompleteRace drives the expiry→re-lease→late-finish race with
// actually concurrent completions (run under -race in CI): across every
// interleaving, exactly one completion per shard is honoured.
func TestTableCompleteRace(t *testing.T) {
	for round := 0; round < 200; round++ {
		table := NewTable(1, 0, 0, 0) // ttl 0: every lease is expired at once
		a, ok := table.Acquire("a")
		if !ok {
			t.Fatal("first grant refused")
		}
		b, ok := table.Acquire("b") // re-grant of the instantly expired lease
		if !ok {
			t.Fatal("re-grant after zero-ttl expiry refused")
		}
		var successes int32
		var wg sync.WaitGroup
		for _, lease := range []Lease{a, b} {
			wg.Add(1)
			go func(l Lease) {
				defer wg.Done()
				if table.Complete(l.K, l.Epoch) == nil {
					atomic.AddInt32(&successes, 1)
				}
			}(lease)
		}
		wg.Wait()
		if successes != 1 {
			t.Fatalf("round %d: %d completions honoured, want exactly 1", round, successes)
		}
		if !table.Done() {
			t.Fatalf("round %d: shard left open", round)
		}
	}
}

// TestTableRetryBackoffAndExhaustion covers the failure path: a failed
// shard is withheld for the backoff, retried under a fresh epoch, and
// after MaxAttempts grants the table reports it exhausted.
func TestTableRetryBackoffAndExhaustion(t *testing.T) {
	table, clock := newTestTable(2, time.Minute, 2, 10*time.Second)

	l0, _ := table.Acquire("w")
	l1, _ := table.Acquire("w")
	if l0.K != 0 || l1.K != 1 {
		t.Fatalf("grants out of order: %d then %d", l0.K, l1.K)
	}
	if err := table.Complete(l1.K, l1.Epoch); err != nil {
		t.Fatal(err)
	}
	if err := table.Fail(l0.K, l0.Epoch); err != nil {
		t.Fatalf("first failure within attempts: %v", err)
	}
	if _, ok := table.Acquire("w"); ok {
		t.Fatal("failed shard re-granted inside its backoff window")
	}
	clock.advance(11 * time.Second)
	retry, ok := table.Acquire("w")
	if !ok || retry.K != 0 || retry.Epoch != 2 {
		t.Fatalf("backoff retry: ok=%v k=%d epoch=%d, want shard 0 at epoch 2", ok, retry.K, retry.Epoch)
	}

	// Second (= last allowed) attempt fails: the table is exhausted.
	err := table.Fail(retry.K, retry.Epoch)
	if !errors.Is(err, ErrAttemptsExhausted) {
		t.Fatalf("final failure: err = %v, want ErrAttemptsExhausted", err)
	}
	clock.advance(11 * time.Second)
	if _, ok := table.Acquire("w"); ok {
		t.Fatal("exhausted shard granted again")
	}
	if k, stuck := table.Exhausted(); !stuck || k != 0 {
		t.Fatalf("Exhausted() = %d,%v, want shard 0 stuck", k, stuck)
	}
	if table.Done() {
		t.Fatal("exhausted table reports done")
	}
}
