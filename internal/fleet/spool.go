package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"mptcpsim"
)

// ShardLogPath is the canonical spool location of shard k of n's run-log.
// The name is a pure function of the shard coordinates, so a re-leased
// worker resumes exactly the file its predecessor was writing, and anything
// that can write this file under the lease protocol can join the fleet.
func ShardLogPath(spool string, k, n int) string {
	return filepath.Join(spool, fmt.Sprintf("shard-%d-of-%d.ndjson", k, n))
}

// OpenShardLog opens the shard run-log at path for writing, resuming
// whatever a previous lease left behind: a missing or empty file (or one
// torn inside its header) starts fresh; a committed log is validated
// against header's digest and shard shape, has any torn trailing record
// truncated, and yields the already-committed indices as the skip set.
// headerOnDisk reports whether a committed header is already present, in
// which case the caller's LogSink must open in Resume mode.
func OpenShardLog(path string, header mptcpsim.RunLogHeader) (f *os.File, skip map[int]bool, prevErrs int, headerOnDisk bool, err error) {
	f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, nil, 0, false, err
	}
	fail := func(e error) (*os.File, map[int]bool, int, bool, error) {
		f.Close()
		return nil, nil, 0, false, e
	}
	restart := func() (*os.File, map[int]bool, int, bool, error) {
		if err := f.Truncate(0); err != nil {
			return fail(err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fail(err)
		}
		return f, nil, 0, false, nil
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if st.Size() == 0 {
		return f, nil, 0, false, nil
	}
	log, err := mptcpsim.ReadRunLog(f)
	if errors.Is(err, mptcpsim.ErrHeaderTorn) {
		// The previous lease died inside the header: nothing committed,
		// nothing to resume.
		return restart()
	}
	if err != nil {
		return fail(fmt.Errorf("%s: %w", path, err))
	}
	if log.Header.GridDigest != header.GridDigest {
		return fail(fmt.Errorf("%s: run-log grid digest %.12s does not match the fleet's %.12s (stale spool?)",
			path, log.Header.GridDigest, header.GridDigest))
	}
	if log.Header.K != header.K || log.Header.N != header.N || log.Header.Total != header.Total {
		return fail(fmt.Errorf("%s: run-log is shard %d/%d of %d runs, this lease is shard %d/%d of %d",
			path, log.Header.K, log.Header.N, log.Header.Total, header.K, header.N, header.Total))
	}
	if log.Torn() {
		if err := f.Truncate(log.TornTail); err != nil {
			return fail(err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fail(err)
	}
	return f, log.Indices(), log.Errs(), true, nil
}

// shardTail incrementally reads committed records out of one shard's
// run-log while a worker appends to it — the coordinator's live-progress
// feed. Only complete lines (the trailing newline is the commit mark) are
// consumed; a torn tail is simply not yet visible. If the file shrinks —
// a resumed worker truncating a torn record, or a header-torn restart —
// the tail re-reads from the start and the seen set keeps delivery
// exactly-once.
type shardTail struct {
	mu         sync.Mutex
	path       string
	offset     int64
	headerDone bool
	seen       map[int]bool

	agg    *mptcpsim.AggSink
	failed int
}

func newShardTail(path string) *shardTail {
	return &shardTail{path: path, seen: make(map[int]bool), agg: &mptcpsim.AggSink{}}
}

// poll folds newly committed records into the tail's aggregate and returns
// how many new runs (and how many of them failed) it saw. A missing file
// is zero progress, not an error: the shard's first lease has not started
// writing yet.
func (t *shardTail) poll() (newDone, newFailed int, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, err := os.Open(t.path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, err
	}
	if st.Size() < t.offset {
		// The log was cut back (torn-record or torn-header truncation by a
		// resuming worker). Committed records are never removed, so re-read
		// from the start and let the seen set drop duplicates.
		t.offset = 0
		t.headerDone = false
	}
	if st.Size() == t.offset {
		return 0, 0, nil
	}
	if _, err := f.Seek(t.offset, io.SeekStart); err != nil {
		return 0, 0, err
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		return 0, 0, err
	}
	for {
		nl := bytes.IndexByte(raw, '\n')
		if nl < 0 {
			break // uncommitted tail: wait for the newline
		}
		line := raw[:nl+1]
		raw = raw[nl+1:]
		t.offset += int64(len(line))
		if !t.headerDone {
			t.headerDone = true
			continue
		}
		var rec mptcpsim.RunRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A committed but unparseable line means the file is not the
			// single-writer log we think it is; surface it.
			return newDone, newFailed, fmt.Errorf("%s: tail record: %w", t.path, err)
		}
		if t.seen[rec.Run.Index] {
			continue
		}
		t.seen[rec.Run.Index] = true
		newDone++
		if rec.Run.Err != "" {
			newFailed++
			t.failed++
		}
		t.agg.Accept(0, 0, rec.Run, nil)
	}
	return newDone, newFailed, nil
}

// snapshot merges the tail's aggregate into dst under the tail's lock.
func (t *shardTail) snapshot(dst *mptcpsim.AggSink) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dst.Merge(t.agg)
}
