package fleet

import (
	"context"

	"mptcpsim"
)

// Worker executes leased shards in-process — sweepd's default mode, no
// separate sweep binary required. Each Run opens (or resumes) the shard's
// spool run-log, skips committed indices, and streams the rest through
// the library sweep, honouring the lease deadline via ctx.
type Worker struct {
	// Sweep is the execution template (Workers, ValidateInvariants); its
	// hooks and sinks are not used. Grid is the fleet's grid.
	Sweep *mptcpsim.Sweep
	Grid  *mptcpsim.Grid
	// Spool is the shared spool directory.
	Spool string
	// SyncEvery is the run-log durability batch (0 = the library default).
	SyncEvery int
	// WrapSink, when set, wraps the shard's log sink — the crash-injection
	// seam for tests. The wrapper's error poisons the stream exactly like
	// a sink write failure.
	WrapSink func(lease Lease, sink mptcpsim.RunSink) mptcpsim.RunSink
}

func (w *Worker) Run(ctx context.Context, lease Lease) error {
	digest, total, err := w.Sweep.Describe(w.Grid)
	if err != nil {
		return err
	}
	header := mptcpsim.RunLogHeader{
		GridDigest: digest,
		K:          lease.K, N: lease.N,
		Total:  total,
		Worker: lease.Worker,
		Lease:  lease.Epoch,
	}
	path := ShardLogPath(w.Spool, lease.K, lease.N)
	f, skip, _, onDisk, err := OpenShardLog(path, header)
	if err != nil {
		return err
	}
	defer f.Close()
	sink, err := mptcpsim.NewLogSink(f, header,
		mptcpsim.LogOptions{Sync: f.Sync, Resume: onDisk, SyncEvery: w.SyncEvery})
	if err != nil {
		return err
	}
	chain := mptcpsim.RunSink(sink)
	if w.WrapSink != nil {
		chain = w.WrapSink(lease, chain)
	}
	// The deadline guard goes outermost so an expired lease stops
	// delivering (and flushing) immediately, before any injected fault.
	chain = &deadlineSink{ctx: ctx, next: chain}

	exec := &mptcpsim.Sweep{
		Workers:            w.Sweep.Workers,
		ValidateInvariants: w.Sweep.ValidateInvariants,
	}
	spec := mptcpsim.StreamSpec{Shard: mptcpsim.Shard{K: lease.K, N: lease.N}}
	if len(skip) > 0 {
		spec.Skip = func(index int) bool { return skip[index] }
	}
	if err := exec.Stream(w.Grid, spec, chain); err != nil {
		return err
	}
	return f.Close()
}

// deadlineSink poisons the stream once the lease context is done and —
// crucially — suppresses the final Close flush in that case: a worker
// whose lease expired must stop touching the log at once, because a
// replacement may already be appending to it. Losing the buffered,
// uncommitted records is exactly the crash semantics resume handles.
type deadlineSink struct {
	ctx  context.Context
	next mptcpsim.RunSink
}

func (d *deadlineSink) Accept(done, total int, s mptcpsim.RunSummary, full *mptcpsim.Result) error {
	if err := d.ctx.Err(); err != nil {
		return err
	}
	return d.next.Accept(done, total, s, full)
}

func (d *deadlineSink) Flush() error {
	if err := d.ctx.Err(); err != nil {
		return err
	}
	return d.next.Flush()
}

func (d *deadlineSink) Close() error {
	if err := d.ctx.Err(); err != nil {
		return err
	}
	return d.next.Close()
}
