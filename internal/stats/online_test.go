package stats

import (
	"encoding/json"
	"math"
	"testing"
)

// onlineClose is the agreement tolerance between the streaming recurrence
// and the two-pass Aggregate: floating-point noise only.
func onlineClose(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

// onlineSample is a deliberately awkward sample: mixed signs, repeated
// values, a large offset (catastrophic cancellation territory for naive
// sum-of-squares), and non-finite values that both sides must exclude.
func onlineSample() []float64 {
	vals := []float64{3.5, -2, 0, 0, 7.25, 1e6, 1e6 + 0.5, -13.75, 4, 4}
	return append(vals, math.NaN(), math.Inf(1), math.Inf(-1))
}

func TestOnlineMatchesAggregate(t *testing.T) {
	vals := onlineSample()
	want := Aggregate(vals)
	var o Online
	for _, v := range vals {
		o.Add(v)
	}
	if o.N != want.N {
		t.Fatalf("online N=%d, aggregate N=%d (non-finite filtering differs)", o.N, want.N)
	}
	if !onlineClose(o.Mean, want.Mean) || !onlineClose(o.Std(), want.Std) {
		t.Fatalf("online mean/std %v/%v, aggregate %v/%v", o.Mean, o.Std(), want.Mean, want.Std)
	}
	if o.Min != want.Min || o.Max != want.Max {
		t.Fatalf("online min/max %v/%v, aggregate %v/%v", o.Min, o.Max, want.Min, want.Max)
	}
}

// TestOnlineMergeComposes splits the sample every possible way and checks
// merging the two halves equals the single-pass accumulator — the property
// that lets per-shard aggregates fold into a grid-wide one.
func TestOnlineMergeComposes(t *testing.T) {
	vals := onlineSample()
	var whole Online
	for _, v := range vals {
		whole.Add(v)
	}
	for cut := 0; cut <= len(vals); cut++ {
		var a, b Online
		for _, v := range vals[:cut] {
			a.Add(v)
		}
		for _, v := range vals[cut:] {
			b.Add(v)
		}
		a.Merge(b)
		if a.N != whole.N || !onlineClose(a.Mean, whole.Mean) ||
			!onlineClose(a.Std(), whole.Std()) || a.Min != whole.Min || a.Max != whole.Max {
			t.Fatalf("cut %d: merged {n %d mean %v std %v min %v max %v} != single-pass {n %d mean %v std %v min %v max %v}",
				cut, a.N, a.Mean, a.Std(), a.Min, a.Max,
				whole.N, whole.Mean, whole.Std(), whole.Min, whole.Max)
		}
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.N != 0 || o.Mean != 0 || o.Std() != 0 || o.Min != 0 || o.Max != 0 {
		t.Fatalf("zero Online is not the empty aggregate: %+v", o)
	}
	var other Online
	other.Add(5)
	o.Merge(other)
	if o.N != 1 || o.Mean != 5 || o.Min != 5 || o.Max != 5 {
		t.Fatalf("empty.Merge(one value) = %+v", o)
	}
}

// TestOnlineMarshalJSON pins the serialised shape: the Agg-style summary
// fields, std precomputed, M2 absent.
func TestOnlineMarshalJSON(t *testing.T) {
	var o Online
	o.Add(1)
	o.Add(3)
	raw, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]float64
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"n", "mean", "std", "min", "max"} {
		if _, ok := fields[key]; !ok {
			t.Fatalf("serialised Online lost %q: %s", key, raw)
		}
	}
	if _, leaked := fields["M2"]; leaked || len(fields) != 5 {
		t.Fatalf("serialised Online has unexpected fields: %s", raw)
	}
	if fields["mean"] != 2 || fields["std"] != 1 {
		t.Fatalf("mean/std = %v/%v, want 2/1: %s", fields["mean"], fields["std"], raw)
	}
}
