package stats

import (
	"encoding/json"
	"math"
)

// Online is a streaming aggregate over a sample of scalar values — the
// flat-memory counterpart of Aggregate for consumers that cannot hold the
// sample (mega-sweep streaming sinks, shard leases folding progress).
// Mean and variance use Welford's recurrence; Merge composes two
// accumulators (Chan et al.'s parallel form), so partial aggregates from
// shards combine into exactly the accumulator one pass would have built.
// Medians need the full sample and are deliberately absent: report them
// from a run-log second pass (Aggregate), never from Online. Like
// Aggregate, non-finite values are excluded; the zero value describes an
// empty sample.
type Online struct {
	// N is the sample size.
	N int
	// Mean is the running sample mean; M2 the sum of squared deviations
	// from it (Std derives from M2, which is what Merge needs).
	Mean float64
	M2   float64
	// Min and Max bound the sample (0 when empty).
	Min float64
	Max float64
}

// Add folds one value into the accumulator. Non-finite values (NaN, ±Inf)
// are excluded, mirroring Aggregate.
func (o *Online) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	o.N++
	if o.N == 1 {
		o.Min, o.Max = v, v
	} else {
		if v < o.Min {
			o.Min = v
		}
		if v > o.Max {
			o.Max = v
		}
	}
	d := v - o.Mean
	o.Mean += d / float64(o.N)
	o.M2 += d * (v - o.Mean)
}

// Merge folds another accumulator into this one, as if every value it saw
// had been Added here.
func (o *Online) Merge(p Online) {
	if p.N == 0 {
		return
	}
	if o.N == 0 {
		*o = p
		return
	}
	if p.Min < o.Min {
		o.Min = p.Min
	}
	if p.Max > o.Max {
		o.Max = p.Max
	}
	n := float64(o.N + p.N)
	d := p.Mean - o.Mean
	o.Mean += d * float64(p.N) / n
	o.M2 += p.M2 + d*d*float64(o.N)*float64(p.N)/n
	o.N += p.N
}

// Std is the population standard deviation, matching Aggregate's Std.
func (o Online) Std() float64 {
	if o.N == 0 {
		return 0
	}
	return math.Sqrt(o.M2 / float64(o.N))
}

// MarshalJSON emits the Agg-style summary shape (n/mean/std/min/max, no
// median) so progress streams stay readable; M2 is an implementation
// detail and is not serialised.
func (o Online) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		N    int     `json:"n"`
		Mean float64 `json:"mean"`
		Std  float64 `json:"std"`
		Min  float64 `json:"min"`
		Max  float64 `json:"max"`
	}{o.N, o.Mean, o.Std(), o.Min, o.Max})
}
