// Package stats computes the summary metrics behind the paper's §3
// narrative: whether and when a congestion-control algorithm reaches the
// optimal total throughput, how stable it is after convergence, and how
// the achieved allocation compares to the LP optimum.
package stats

import (
	"math"
	"sort"
	"time"

	"mptcpsim/internal/trace"
)

// Agg summarises a sample of scalar values — the cross-run aggregation a
// parameter sweep needs (e.g. the optimality gap over seeds or subflow
// orderings). The zero value describes an empty sample.
type Agg struct {
	// N is the sample size.
	N int `json:"n"`
	// Mean and Std are the sample mean and (population) standard deviation.
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// Min, Max and Median bound and centre the sample.
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
}

// Aggregate computes an Agg over the values. Non-finite values (NaN, ±Inf)
// are excluded — one Inf would otherwise poison Mean and make Std NaN; an
// empty (or all-non-finite) input yields the zero Agg.
func Aggregate(vals []float64) Agg {
	clean := make([]float64, 0, len(vals))
	for _, v := range vals {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			clean = append(clean, v)
		}
	}
	if len(clean) == 0 {
		return Agg{}
	}
	sort.Float64s(clean)
	a := Agg{N: len(clean), Min: clean[0], Max: clean[len(clean)-1]}
	var sum float64
	for _, v := range clean {
		sum += v
	}
	a.Mean = sum / float64(a.N)
	var sq float64
	for _, v := range clean {
		d := v - a.Mean
		sq += d * d
	}
	a.Std = math.Sqrt(sq / float64(a.N))
	if a.N%2 == 1 {
		a.Median = clean[a.N/2]
	} else {
		a.Median = (clean[a.N/2-1] + clean[a.N/2]) / 2
	}
	return a
}

// MeasureWindow returns a run's measurement window [from, horizon): the
// horizon is the end of the last full capture bin, and from skips the
// slow-start transient (10% of the horizon) rounded up to a whole bin.
// Every consumer of the window — the measured mean (Summarize), the
// piecewise target weighting (mptcpsim.Run) and the gap invariant's drain
// allowance — must integrate over this same interval; the "measured never
// beats the optimum" invariant is only sound when they agree.
func MeasureWindow(duration, step time.Duration) (from, horizon time.Duration) {
	if step <= 0 {
		return duration / 10, duration
	}
	horizon = duration / step * step
	from = (horizon/10 + step - 1) / step * step
	return from, horizon
}

// EpochWindow returns the whole-bin window inside [from, to) — the
// largest interval an epoch can be measured over without boundary bins
// mixing in the neighbouring epochs' traffic. The result is empty
// (second ≤ first) for epochs shorter than one aligned bin.
func EpochWindow(from, to, step time.Duration) (time.Duration, time.Duration) {
	if step <= 0 {
		return from, to
	}
	return (from + step - 1) / step * step, to / step * step
}

// ConvergenceTime returns the first time at which the series enters the
// band [target*(1-tol), inf) and stays there for the hold duration.
func ConvergenceTime(s *trace.Series, target, tol float64, hold time.Duration) (time.Duration, bool) {
	if s.Step <= 0 || len(s.V) == 0 {
		return 0, false
	}
	need := int(hold / s.Step)
	if need < 1 {
		need = 1
	}
	floor := target * (1 - tol)
	run := 0
	for i, v := range s.V {
		if v >= floor {
			run++
			if run >= need {
				start := i - run + 1
				return s.Start + time.Duration(start)*s.Step, true
			}
		} else {
			run = 0
		}
	}
	return 0, false
}

// OptimalityGap returns 1 - mean/target over [from, to): 0 means the
// series averages the target, 0.25 means it runs 25% below.
func OptimalityGap(s *trace.Series, target float64, from, to time.Duration) float64 {
	mean, _, _, _ := s.Stats(from, to)
	if target <= 0 {
		return 0
	}
	return 1 - mean/target
}

// CoV returns the coefficient of variation (stddev/mean) over [from, to),
// the stability measure: CUBIC converges but stays noisy, OLIA converges
// slowly but then sits still.
func CoV(s *trace.Series, from, to time.Duration) float64 {
	mean, _, _, std := s.Stats(from, to)
	if mean == 0 {
		return 0
	}
	return std / mean
}

// JainIndex computes Jain's fairness index of an allocation: 1 when all
// values are equal, 1/n when one value dominates.
func JainIndex(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum, sq float64
	for _, v := range vals {
		sum += v
		sq += v * v
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(vals)) * sq)
}

// AllocationError returns the mean absolute deviation between the achieved
// per-path averages and a reference allocation (e.g. the LP optimum), in
// the same unit as the series (Mbps).
func AllocationError(achieved, reference []float64) float64 {
	n := len(achieved)
	if len(reference) < n {
		n = len(reference)
	}
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Abs(achieved[i] - reference[i])
	}
	return sum / float64(n)
}

// Summary aggregates one run's metrics.
type Summary struct {
	// Algorithm names the congestion control.
	Algorithm string
	// TotalMean is the mean total throughput over the measurement window.
	TotalMean float64
	// Target is the optimality target Gap was computed against: the LP
	// total for a static run, the time-weighted piecewise optimum for a
	// dynamic one.
	Target float64
	// Gap is the optimality gap versus Target.
	Gap float64
	// Converged reports whether the total entered the optimum band.
	Converged bool
	// ConvergedAt is the convergence time (valid if Converged).
	ConvergedAt time.Duration
	// PostCoV is the coefficient of variation after convergence (or over
	// the last half of the run when not converged).
	PostCoV float64
	// PathMeans are the per-path mean rates over the measurement window.
	PathMeans []float64
	// ReachedPareto reports whether the total reached the greedy/Pareto
	// level (the paper's suboptimal trap), and ParetoAt when. The gap
	// between ParetoAt and ConvergedAt is the duration of the "shake-down"
	// search the paper describes.
	ReachedPareto bool
	ParetoAt      time.Duration
}

// EpochStats summarises one capacity epoch of a dynamic run against the
// epoch's own LP optimum — the piecewise view of a time-varying network.
type EpochStats struct {
	// Start and End bound the epoch.
	Start, End time.Duration
	// Target is the epoch's LP optimum (Mbps).
	Target float64
	// TotalMean is the mean total throughput inside the epoch.
	TotalMean float64
	// Gap is the optimality gap versus Target over the epoch.
	Gap float64
	// PathMeans are the per-path means inside the epoch.
	PathMeans []float64
	// Converged reports whether the total entered the epoch target's band
	// within the epoch, and ConvergedAt when (absolute run time).
	Converged   bool
	ConvergedAt time.Duration
}

// SummarizeEpoch computes the per-epoch metrics for [from, to) against the
// epoch's own target. Convergence is detected on the clipped window so an
// earlier epoch's plateau cannot satisfy a later epoch's band. An epoch
// shorter than one trace bin falls back to the bin covering its start —
// a 50 ms outage between 100 ms samples carried traffic and must not read
// as zero throughput with a 100% gap.
func SummarizeEpoch(total *trace.Series, paths []*trace.Series,
	from, to time.Duration, target, tol float64, hold time.Duration) EpochStats {
	e := EpochStats{Start: from, End: to, Target: target}
	// Measure over whole bins strictly inside the epoch: a bin straddling
	// a boundary mixes in the neighbouring epoch's traffic (a capacity cut
	// mid-bin would otherwise credit the slow epoch with pre-cut bytes and
	// make it appear to beat its own optimum).
	cf, ct := EpochWindow(from, to, total.Step)
	clipped := total.Clip(cf, ct)
	if clipped.Len() == 0 {
		e.TotalMean = total.At(from)
		if target > 0 {
			e.Gap = 1 - e.TotalMean/target
		}
		for _, p := range paths {
			e.PathMeans = append(e.PathMeans, p.At(from))
		}
		return e
	}
	e.TotalMean, _, _, _ = clipped.Stats(0, 0)
	e.Gap = OptimalityGap(&clipped, target, 0, 0)
	if hold > ct-cf {
		hold = ct - cf
	}
	e.ConvergedAt, e.Converged = ConvergenceTime(&clipped, target, tol, hold)
	for _, p := range paths {
		pc := p.Clip(cf, ct)
		m, _, _, _ := pc.Stats(0, 0)
		e.PathMeans = append(e.PathMeans, m)
	}
	return e
}

// Summarize computes a Summary for a run: total and per-path series, the
// LP target, the greedy/Pareto level, and the convergence parameters.
func Summarize(algorithm string, total *trace.Series, paths []*trace.Series,
	target, pareto, tol float64, hold time.Duration) Summary {
	dur := time.Duration(total.Len()) * total.Step
	s := Summary{Algorithm: algorithm, Target: target}
	// Skip the first 10% (slow-start transient) for the window mean,
	// rounded up to a whole bin — see MeasureWindow for why the window
	// must be exactly the bins it covers.
	from, _ := MeasureWindow(dur, total.Step)
	s.TotalMean, _, _, _ = total.Stats(from, dur)
	s.Gap = OptimalityGap(total, target, from, dur)
	s.ConvergedAt, s.Converged = ConvergenceTime(total, target, tol, hold)
	if pareto > 0 {
		s.ParetoAt, s.ReachedPareto = ConvergenceTime(total, pareto, tol, hold/2)
	}
	covFrom := dur / 2
	if s.Converged && s.ConvergedAt > covFrom {
		covFrom = s.ConvergedAt
	}
	s.PostCoV = CoV(total, covFrom, dur)
	for _, p := range paths {
		m, _, _, _ := p.Stats(from, dur)
		s.PathMeans = append(s.PathMeans, m)
	}
	return s
}
