package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mptcpsim/internal/trace"
)

func mk(step time.Duration, v ...float64) *trace.Series {
	return &trace.Series{Name: "s", Step: step, V: v}
}

func TestConvergenceTime(t *testing.T) {
	// Ramp: 50, 70, 86, 88, 89, 90, 88, 89 with target 90 tol 5% (>=85.5).
	s := mk(time.Second, 50, 70, 86, 88, 89, 90, 88, 89)
	at, ok := ConvergenceTime(s, 90, 0.05, 3*time.Second)
	if !ok {
		t.Fatal("should converge")
	}
	if at != 2*time.Second {
		t.Fatalf("converged at %v, want 2s", at)
	}
}

func TestConvergenceRequiresHold(t *testing.T) {
	// Spikes above the band but never holds 3 bins.
	s := mk(time.Second, 90, 10, 90, 10, 90, 10)
	if _, ok := ConvergenceTime(s, 90, 0.05, 3*time.Second); ok {
		t.Fatal("flapping series reported converged")
	}
	// Hold of 1 bin accepts the first spike.
	at, ok := ConvergenceTime(s, 90, 0.05, time.Second)
	if !ok || at != 0 {
		t.Fatalf("1-bin hold: %v %v", at, ok)
	}
}

func TestConvergenceNever(t *testing.T) {
	s := mk(time.Second, 50, 60, 70)
	if _, ok := ConvergenceTime(s, 90, 0.05, time.Second); ok {
		t.Fatal("sub-band series converged")
	}
	if _, ok := ConvergenceTime(&trace.Series{}, 90, 0.05, time.Second); ok {
		t.Fatal("empty series converged")
	}
}

func TestOptimalityGap(t *testing.T) {
	s := mk(time.Second, 45, 45, 45, 45)
	if g := OptimalityGap(s, 90, 0, 4*time.Second); math.Abs(g-0.5) > 1e-9 {
		t.Fatalf("gap = %v, want 0.5", g)
	}
	if g := OptimalityGap(s, 0, 0, time.Second); g != 0 {
		t.Fatal("zero target must give 0")
	}
}

func TestCoV(t *testing.T) {
	flat := mk(time.Second, 10, 10, 10, 10)
	if c := CoV(flat, 0, 4*time.Second); c != 0 {
		t.Fatalf("flat CoV = %v", c)
	}
	noisy := mk(time.Second, 5, 15, 5, 15)
	if c := CoV(noisy, 0, 4*time.Second); c <= 0.4 {
		t.Fatalf("noisy CoV = %v, want > 0.4", c)
	}
}

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]float64{10, 10, 10}); math.Abs(j-1) > 1e-9 {
		t.Fatalf("equal Jain = %v", j)
	}
	if j := JainIndex([]float64{30, 0, 0}); math.Abs(j-1.0/3) > 1e-9 {
		t.Fatalf("dominated Jain = %v", j)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate Jain")
	}
}

func TestAllocationError(t *testing.T) {
	got := AllocationError([]float64{28, 12, 48}, []float64{30, 10, 50})
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("alloc error = %v, want 2", got)
	}
	if AllocationError(nil, []float64{1}) != 0 {
		t.Fatal("empty achieved")
	}
}

func TestSummarize(t *testing.T) {
	total := mk(100 * time.Millisecond)
	for i := 0; i < 40; i++ {
		v := 90.0
		if i < 10 {
			v = float64(i) * 9
		}
		total.V = append(total.V, v)
	}
	p1 := mk(100 * time.Millisecond)
	p2 := mk(100 * time.Millisecond)
	for i := 0; i < 40; i++ {
		p1.V = append(p1.V, 30)
		p2.V = append(p2.V, 60)
	}
	s := Summarize("cubic", total, []*trace.Series{p1, p2}, 90, 60, 0.05, 500*time.Millisecond)
	if s.Algorithm != "cubic" {
		t.Fatal("name lost")
	}
	if !s.Converged {
		t.Fatal("should converge")
	}
	if s.ConvergedAt != time.Second {
		t.Fatalf("converged at %v, want 1s", s.ConvergedAt)
	}
	if s.PostCoV != 0 {
		t.Fatalf("post CoV = %v, want 0 (flat tail)", s.PostCoV)
	}
	if len(s.PathMeans) != 2 || s.PathMeans[0] != 30 || s.PathMeans[1] != 60 {
		t.Fatalf("path means = %v", s.PathMeans)
	}
	if s.Gap < 0 || s.Gap > 0.15 {
		t.Fatalf("gap = %v", s.Gap)
	}
	// The greedy/Pareto level (60) is crossed during the ramp, before the
	// optimum band.
	if !s.ReachedPareto {
		t.Fatal("Pareto level not detected")
	}
	if s.ParetoAt > s.ConvergedAt {
		t.Fatalf("ParetoAt %v after ConvergedAt %v", s.ParetoAt, s.ConvergedAt)
	}
}

// Property: Jain's index is always in [1/n, 1] for positive inputs.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r) + 1
		}
		j := JainIndex(vals)
		n := float64(len(vals))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: convergence time is monotone in the tolerance — a looser band
// never converges later.
func TestQuickConvergenceMonotoneInTol(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 4 {
			return true
		}
		s := mk(time.Second)
		for _, r := range raw {
			s.V = append(s.V, float64(r))
		}
		tight, okT := ConvergenceTime(s, 200, 0.1, 2*time.Second)
		loose, okL := ConvergenceTime(s, 200, 0.5, 2*time.Second)
		if okT && !okL {
			return false
		}
		if okT && okL && loose > tight {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregate(t *testing.T) {
	a := Aggregate([]float64{4, 1, 3, 2})
	if a.N != 4 || a.Mean != 2.5 || a.Min != 1 || a.Max != 4 || a.Median != 2.5 {
		t.Fatalf("Aggregate = %+v", a)
	}
	if math.Abs(a.Std-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("std = %v", a.Std)
	}

	odd := Aggregate([]float64{9, 1, 5})
	if odd.Median != 5 {
		t.Fatalf("odd median = %v", odd.Median)
	}

	one := Aggregate([]float64{7})
	if one.N != 1 || one.Mean != 7 || one.Std != 0 || one.Median != 7 || one.Min != 7 || one.Max != 7 {
		t.Fatalf("singleton = %+v", one)
	}

	if z := Aggregate(nil); z != (Agg{}) {
		t.Fatalf("empty = %+v", z)
	}
	if z := Aggregate([]float64{math.NaN()}); z != (Agg{}) {
		t.Fatalf("all-NaN = %+v", z)
	}
	mixed := Aggregate([]float64{math.NaN(), 2, 4})
	if mixed.N != 2 || mixed.Mean != 3 {
		t.Fatalf("NaN not excluded: %+v", mixed)
	}
}

func TestAggregateDoesNotReorderInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Aggregate(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input reordered: %v", in)
	}
}

func TestAggregateExcludesInf(t *testing.T) {
	a := Aggregate([]float64{math.Inf(1), 1, 3, math.Inf(-1)})
	if a.N != 2 || a.Mean != 2 || math.IsNaN(a.Std) {
		t.Fatalf("Inf not excluded: %+v", a)
	}
}

func TestSummarizeEpoch(t *testing.T) {
	// 20 bins of 100ms: 50 Mbps for the first second, 10 after — an outage
	// at t=1s with a 10 Mbps surviving path.
	s := &trace.Series{Name: "Total", Step: 100 * time.Millisecond}
	for i := 0; i < 20; i++ {
		if i < 10 {
			s.V = append(s.V, 50)
		} else {
			s.V = append(s.V, 10)
		}
	}
	pre := SummarizeEpoch(s, nil, 0, time.Second, 60, 0.08, 300*time.Millisecond)
	if pre.TotalMean != 50 {
		t.Fatalf("pre mean = %v, want 50", pre.TotalMean)
	}
	if math.Abs(pre.Gap-(1-50.0/60)) > 1e-9 {
		t.Fatalf("pre gap = %v", pre.Gap)
	}
	if pre.Converged {
		t.Fatal("50 of 60 should not be in an 8% band")
	}
	post := SummarizeEpoch(s, nil, time.Second, 2*time.Second, 10, 0.08, 300*time.Millisecond)
	if post.TotalMean != 10 || math.Abs(post.Gap) > 1e-9 {
		t.Fatalf("post epoch = %+v", post)
	}
	if !post.Converged || post.ConvergedAt != time.Second {
		t.Fatalf("post epoch not converged at its start: %+v", post)
	}
	// Convergence is judged on the clipped window: the pre-epoch plateau
	// cannot satisfy the post epoch, and per-path means are clipped too.
	p := &trace.Series{Name: "p", Step: 100 * time.Millisecond, V: s.V}
	withPath := SummarizeEpoch(s, []*trace.Series{p}, time.Second, 2*time.Second, 10, 0.08, 300*time.Millisecond)
	if len(withPath.PathMeans) != 1 || withPath.PathMeans[0] != 10 {
		t.Fatalf("path means = %v", withPath.PathMeans)
	}
	// A hold longer than the epoch clamps to the epoch length instead of
	// never converging.
	short := SummarizeEpoch(s, nil, time.Second, 2*time.Second, 10, 0.08, time.Hour)
	if !short.Converged {
		t.Fatal("hold clamp missing: epoch-long plateau did not converge")
	}
}

func TestSummarizeEpochSubBinFallback(t *testing.T) {
	// 100 ms bins; a 50 ms epoch between samples must fall back to the
	// covering bin instead of reporting 0 Mbps / 100% gap.
	s := &trace.Series{Name: "Total", Step: 100 * time.Millisecond}
	for i := 0; i < 10; i++ {
		s.V = append(s.V, 42)
	}
	p := &trace.Series{Name: "p", Step: 100 * time.Millisecond, V: s.V}
	e := SummarizeEpoch(s, []*trace.Series{p}, 200*time.Millisecond, 250*time.Millisecond, 60, 0.08, 300*time.Millisecond)
	if e.TotalMean != 42 {
		t.Fatalf("sub-bin epoch mean = %v, want 42 (covering bin)", e.TotalMean)
	}
	if math.Abs(e.Gap-(1-42.0/60)) > 1e-9 {
		t.Fatalf("sub-bin epoch gap = %v", e.Gap)
	}
	if len(e.PathMeans) != 1 || e.PathMeans[0] != 42 {
		t.Fatalf("sub-bin path means = %v", e.PathMeans)
	}
	if e.Converged {
		t.Fatal("sub-bin epoch cannot establish convergence")
	}
}
