package cc

import "mptcpsim/internal/sim"

func init() {
	RegisterAlgorithm("reno", func() Algorithm { return &Reno{} })
}

// Reno is standard NewReno congestion control (RFC 5681/6582 window
// dynamics; the NewReno recovery state machine itself lives in the TCP
// layer). Applied independently per subflow it is the "uncoupled"
// multipath baseline: each path behaves like a separate TCP connection.
type Reno struct{}

// Name implements Algorithm.
func (*Reno) Name() string { return "reno" }

// Register implements Algorithm.
func (*Reno) Register(*Flow, sim.Time) {}

// Unregister implements Algorithm.
func (*Reno) Unregister(*Flow) {}

// OnAck implements Algorithm: exponential growth in slow start, one MSS
// per RTT in congestion avoidance (byte-counted).
func (*Reno) OnAck(f *Flow, acked int, _ sim.Time) {
	if f.InSlowStart() {
		acked = slowStart(f, acked)
		if acked == 0 {
			return
		}
	}
	f.Cwnd += float64(acked) * float64(f.MSS) / f.Cwnd
}

// OnLoss implements Algorithm.
func (*Reno) OnLoss(f *Flow, _ sim.Time) { halveOnLoss(f) }

// OnRTO implements Algorithm.
func (*Reno) OnRTO(f *Flow, _ sim.Time) { rtoCollapse(f) }
