package cc

import (
	"math"

	"mptcpsim/internal/sim"
)

func init() {
	RegisterAlgorithm("olia", func() Algorithm { return &OLIA{} })
}

// OLIA is the Opportunistic Linked Increases Algorithm (Khalili, Gast,
// Popovic, Le Boudec: "MPTCP Is Not Pareto-Optimal", ToN 2013), designed to
// fix LIA's suboptimality. All subflows of a connection share one
// instance. Per ACK of `acked` bytes on path r, the window (in MSS) grows
// by
//
//	( (w_r/rtt_r^2) / (sum_p w_p/rtt_p)^2  +  alpha_r / w_r ) * acked/MSS
//
// The first term is a coupled, Pareto-optimal version of the AIMD
// increase; the second is the "opportunistic" reallocation term: paths
// that recently carried the most bytes between losses but currently hold
// small windows (set B \ M) receive alpha = +1/(N*|B\M|), while
// maximum-window paths give up alpha = -1/(N*|M|). This slowly shifts
// window from saturated to promising paths — the behaviour the paper
// observes as slow (~20 s) but stable convergence to the optimum when
// Path 2 is the default subflow.
type OLIA struct {
	flows []*Flow
}

// oliaState tracks the inter-loss byte counters l1 (bytes acked since the
// last loss) and l2 (bytes acked between the previous two losses).
type oliaState struct {
	l1, l2 float64
}

// Name implements Algorithm.
func (*OLIA) Name() string { return "olia" }

// Register implements Algorithm.
func (o *OLIA) Register(f *Flow, _ sim.Time) {
	f.ctx = &oliaState{}
	o.flows = append(o.flows, f)
}

// Unregister implements Algorithm.
func (o *OLIA) Unregister(f *Flow) {
	for i, g := range o.flows {
		if g == f {
			o.flows = append(o.flows[:i], o.flows[i+1:]...)
			return
		}
	}
}

func oliaStateOf(f *Flow) *oliaState {
	s, ok := f.ctx.(*oliaState)
	if !ok {
		s = &oliaState{}
		f.ctx = s
	}
	return s
}

// interLoss returns l_r = max(l1, l2), the path quality estimate.
func interLoss(f *Flow) float64 {
	s := oliaStateOf(f)
	l := math.Max(s.l1, s.l2)
	if l <= 0 {
		// No loss yet: treat the path as promising proportionally to its
		// window, so startup does not deadlock the alpha sets.
		l = f.Cwnd
	}
	return l
}

// alphas computes the per-flow alpha values of the OLIA increase.
func (o *OLIA) alphas() map[*Flow]float64 {
	n := len(o.flows)
	out := make(map[*Flow]float64, n)
	if n == 0 {
		return out
	}
	// M: paths with the largest window.
	// B: paths maximising l_r^2 / w_r (best transmission potential).
	const tol = 1.0001
	var maxW, maxQ float64
	for _, f := range o.flows {
		if f.Cwnd > maxW {
			maxW = f.Cwnd
		}
		l := interLoss(f)
		if q := l * l / math.Max(f.Cwnd, 1); q > maxQ {
			maxQ = q
		}
	}
	var m, collected []*Flow
	for _, f := range o.flows {
		inM := f.Cwnd*tol >= maxW
		l := interLoss(f)
		inB := (l*l/math.Max(f.Cwnd, 1))*tol >= maxQ
		if inB && !inM {
			collected = append(collected, f)
		}
		if inM {
			m = append(m, f)
		}
	}
	if len(collected) > 0 {
		for _, f := range collected {
			out[f] = 1 / (float64(n) * float64(len(collected)))
		}
		for _, f := range m {
			if _, dup := out[f]; !dup {
				out[f] = -1 / (float64(n) * float64(len(m)))
			}
		}
	}
	return out
}

// alphaFor returns alphas()[f] without materialising the map: OnAck runs
// on every ACK and needs only the caller's own alpha, so the membership
// sets are counted instead of collected. The arithmetic is exactly the
// map version's — same expressions, same operand order.
func (o *OLIA) alphaFor(f *Flow) float64 {
	n := len(o.flows)
	if n == 0 {
		return 0
	}
	const tol = 1.0001
	var maxW, maxQ float64
	for _, g := range o.flows {
		if g.Cwnd > maxW {
			maxW = g.Cwnd
		}
		l := interLoss(g)
		if q := l * l / math.Max(g.Cwnd, 1); q > maxQ {
			maxQ = q
		}
	}
	nM, nColl := 0, 0
	fInM, fInColl := false, false
	for _, g := range o.flows {
		inM := g.Cwnd*tol >= maxW
		l := interLoss(g)
		inB := (l*l/math.Max(g.Cwnd, 1))*tol >= maxQ
		if inB && !inM {
			nColl++
			if g == f {
				fInColl = true
			}
		}
		if inM {
			nM++
			if g == f {
				fInM = true
			}
		}
	}
	switch {
	case nColl == 0:
		return 0
	case fInColl:
		return 1 / (float64(n) * float64(nColl))
	case fInM:
		return -1 / (float64(n) * float64(nM))
	}
	return 0
}

// OnAck implements Algorithm.
func (o *OLIA) OnAck(f *Flow, acked int, _ sim.Time) {
	oliaStateOf(f).l1 += float64(acked)
	if f.InSlowStart() {
		acked = slowStart(f, acked)
		if acked == 0 {
			return
		}
	}
	var denom float64
	for _, g := range o.flows {
		denom += g.Cwnd / float64(g.MSS) / g.rtt()
	}
	if denom <= 0 {
		return
	}
	wr := f.wPkts()
	rtt := f.rtt()
	term1 := (wr / (rtt * rtt)) / (denom * denom)
	alpha := o.alphaFor(f)
	incPkts := term1 + alpha/wr
	delta := incPkts * float64(acked)
	f.Cwnd += delta
	// The negative alpha term may not shrink the window below one segment
	// per RTT-ish floor; OLIA never closes a path entirely.
	if f.Cwnd < float64(f.MSS) {
		f.Cwnd = float64(f.MSS)
	}
}

// OnLoss implements Algorithm.
func (*OLIA) OnLoss(f *Flow, _ sim.Time) {
	s := oliaStateOf(f)
	s.l2 = s.l1
	s.l1 = 0
	halveOnLoss(f)
}

// OnRTO implements Algorithm.
func (*OLIA) OnRTO(f *Flow, _ sim.Time) {
	s := oliaStateOf(f)
	s.l2 = s.l1
	s.l1 = 0
	rtoCollapse(f)
}
