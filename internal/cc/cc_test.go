package cc

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mptcpsim/internal/sim"
)

const mss = 1400

func newFlow(id string, cwndPkts float64, rtt time.Duration) *Flow {
	return &Flow{
		MSS:      mss,
		Cwnd:     cwndPkts * mss,
		Ssthresh: 1 << 30,
		SRTT:     rtt,
		MinRTT:   rtt,
		ID:       id,
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"reno", "cubic", "lia", "olia", "balia"} {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("Name() = %q, want %q", a.Name(), name)
		}
	}
	if _, err := New("bbr9000"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	names := Names()
	if len(names) < 5 {
		t.Fatalf("Names() = %v", names)
	}
	// Instances must be independent (coupled state is per connection).
	a1, _ := New("lia")
	a2, _ := New("lia")
	f := newFlow("x", 10, 10*time.Millisecond)
	a1.Register(f, 0)
	if len(a2.(*LIA).flows) != 0 {
		t.Fatal("LIA instances share state")
	}
}

func TestSlowStartDoubling(t *testing.T) {
	f := newFlow("f", 10, 10*time.Millisecond)
	f.Ssthresh = 1e9
	r := &Reno{}
	// One RTT worth of ACKs: every segment acked.
	for i := 0; i < 10; i++ {
		r.OnAck(f, mss, 0)
	}
	if got := f.Cwnd / mss; math.Abs(got-20) > 0.01 {
		t.Fatalf("after 1 RTT of slow start cwnd = %.2f pkts, want 20", got)
	}
}

func TestSlowStartCrossoverIntoCA(t *testing.T) {
	f := newFlow("f", 10, 10*time.Millisecond)
	f.Ssthresh = 11 * mss
	r := &Reno{}
	r.OnAck(f, 4*mss, 0) // ABC caps at 2*MSS: 10 -> 11 (ssthresh), rest CA
	if f.Cwnd < f.Ssthresh-1 {
		t.Fatalf("cwnd %.1f below ssthresh %.1f after crossover", f.Cwnd/mss, f.Ssthresh/mss)
	}
	if f.InSlowStart() {
		t.Fatal("still in slow start after crossing ssthresh")
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	f := newFlow("f", 10, 10*time.Millisecond)
	f.Ssthresh = f.Cwnd // start in CA
	r := &Reno{}
	// One RTT: ack cwnd worth of bytes in MSS chunks -> +1 MSS.
	for i := 0; i < 10; i++ {
		r.OnAck(f, mss, 0)
	}
	if got := f.Cwnd / mss; math.Abs(got-11) > 0.05 {
		t.Fatalf("CA growth = %.3f pkts, want ~11", got)
	}
}

func TestRenoLossHalves(t *testing.T) {
	f := newFlow("f", 20, 10*time.Millisecond)
	f.InFlight = 20 * mss
	r := &Reno{}
	r.OnLoss(f, 0)
	if math.Abs(f.Ssthresh-10*mss) > 1 {
		t.Fatalf("ssthresh = %.1f pkts, want 10", f.Ssthresh/mss)
	}
	r.OnRTO(f, 0)
	if f.Cwnd != mss {
		t.Fatalf("cwnd after RTO = %.1f pkts, want 1", f.Cwnd/mss)
	}
}

func TestSsthreshFloor(t *testing.T) {
	f := newFlow("f", 1, 10*time.Millisecond)
	f.InFlight = mss
	r := &Reno{}
	r.OnLoss(f, 0)
	if f.Ssthresh < 2*mss {
		t.Fatalf("ssthresh = %v below 2*MSS floor", f.Ssthresh)
	}
}

func TestCubicConcaveThenConvex(t *testing.T) {
	c := &Cubic{}
	f := newFlow("f", 100, 20*time.Millisecond)
	c.Register(f, 0)
	f.InFlight = int(f.Cwnd)
	c.OnLoss(f, 0) // W_max = 100, cwnd target after loss = 70
	f.Cwnd = f.Ssthresh
	f.Ssthresh = f.Cwnd // continue in CA

	// Feed ACKs over simulated time; K = cbrt((100-70)/0.4) ~ 4.2 s, so
	// drive for 10 s to cover both sides of the curve.
	now := sim.Time(0)
	var rates []float64
	prev := f.Cwnd
	for step := 0; step < 2000; step++ {
		now = now.Add(time.Millisecond * 5)
		c.OnAck(f, mss, now)
		if step%100 == 99 {
			rates = append(rates, (f.Cwnd-prev)/mss)
			prev = f.Cwnd
		}
	}
	if after := f.Cwnd / mss; after <= 100 {
		t.Fatalf("cubic never probed beyond W_max: %.1f", after)
	}
	// Growth rate should dip in the middle (concave approach to W_max)
	// and rise again (convex probing): min rate strictly inside.
	minIdx := 0
	for i, r := range rates {
		if r < rates[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(rates)-1 {
		t.Fatalf("no concave/convex inflection: rates=%v", rates)
	}
}

func TestCubicFastConvergence(t *testing.T) {
	c := &Cubic{}
	f := newFlow("f", 100, 20*time.Millisecond)
	c.Register(f, 0)
	f.InFlight = int(f.Cwnd)
	c.OnLoss(f, 0)
	s := f.ctx.(*cubicState)
	first := s.wLastMax
	if math.Abs(first-100) > 0.1 {
		t.Fatalf("wLastMax = %v, want 100", first)
	}
	// Second loss below the previous max: fast convergence shrinks W_max.
	f.Cwnd = 80 * mss
	f.InFlight = int(f.Cwnd)
	c.OnLoss(f, 0)
	if s.wLastMax >= 80 {
		t.Fatalf("fast convergence failed: wLastMax = %v", s.wLastMax)
	}
}

func TestCubicBetaDecrease(t *testing.T) {
	c := &Cubic{}
	f := newFlow("f", 100, 20*time.Millisecond)
	c.Register(f, 0)
	f.InFlight = int(f.Cwnd)
	c.OnLoss(f, 0)
	if got := f.Ssthresh / mss; math.Abs(got-70) > 0.1 {
		t.Fatalf("ssthresh = %.1f pkts, want 70 (beta=0.7)", got)
	}
}

func TestLIAAlphaSinglePathEqualsReno(t *testing.T) {
	// With one flow, alpha = w * (w/r^2) / (w/r)^2 = 1: LIA == Reno.
	l := &LIA{}
	f := newFlow("f", 10, 10*time.Millisecond)
	l.Register(f, 0)
	alpha, _ := l.alpha()
	if math.Abs(alpha-1) > 1e-9 {
		t.Fatalf("single-path alpha = %v, want 1", alpha)
	}
	f.Ssthresh = f.Cwnd
	before := f.Cwnd
	l.OnAck(f, mss, 0)
	wantInc := float64(mss) * mss / before
	if math.Abs((f.Cwnd-before)-wantInc) > 1e-6 {
		t.Fatalf("increase = %v, want %v", f.Cwnd-before, wantInc)
	}
}

func TestLIAAlphaHandComputed(t *testing.T) {
	// Two flows, equal RTT 100ms: w1=10, w2=30 pkts.
	// alpha = total * max(w/r^2) / (sum w/r)^2
	//       = 40 * (30/0.01) / (400)^2 wait: use bytes consistently.
	l := &LIA{}
	rtt := 100 * time.Millisecond
	f1 := newFlow("1", 10, rtt)
	f2 := newFlow("2", 30, rtt)
	l.Register(f1, 0)
	l.Register(f2, 0)
	w1, w2 := f1.Cwnd, f2.Cwnd
	total := w1 + w2
	r := 0.1
	want := total * (w2 / (r * r)) / math.Pow(w1/r+w2/r, 2)
	alpha, tot := l.alpha()
	if math.Abs(tot-total) > 1e-9 || math.Abs(alpha-want) > 1e-9 {
		t.Fatalf("alpha = %v (total %v), want %v (%v)", alpha, tot, want, total)
	}
	// Equal RTTs: alpha = total*max(w)/sum^2 = 40*30/1600 = 0.75 in pkt
	// terms; verify numerically.
	if math.Abs(alpha-0.75) > 1e-9 {
		t.Fatalf("alpha = %v, want 0.75", alpha)
	}
}

func TestLIALessAggressiveThanUncoupled(t *testing.T) {
	// Coupled increase must never exceed the single-path Reno increase.
	l := &LIA{}
	rtt := 50 * time.Millisecond
	f1 := newFlow("1", 20, rtt)
	f2 := newFlow("2", 20, rtt)
	l.Register(f1, 0)
	l.Register(f2, 0)
	f1.Ssthresh, f2.Ssthresh = f1.Cwnd, f2.Cwnd
	before := f1.Cwnd
	l.OnAck(f1, mss, 0)
	liaInc := f1.Cwnd - before
	renoInc := float64(mss) * mss / before
	if liaInc > renoInc+1e-9 {
		t.Fatalf("LIA increase %v exceeds Reno %v", liaInc, renoInc)
	}
	if liaInc <= 0 {
		t.Fatal("LIA increase not positive")
	}
}

func TestOLIAAlphaSets(t *testing.T) {
	o := &OLIA{}
	rtt := 50 * time.Millisecond
	f1 := newFlow("1", 30, rtt) // max window
	f2 := newFlow("2", 5, rtt)  // small window
	o.Register(f1, 0)
	o.Register(f2, 0)
	// Make f2 the "best path": huge inter-loss bytes.
	oliaStateOf(f1).l1 = 10 * mss
	oliaStateOf(f2).l1 = 500 * mss
	al := o.alphas()
	if al[f2] <= 0 {
		t.Fatalf("collected path alpha = %v, want positive", al[f2])
	}
	if al[f1] >= 0 {
		t.Fatalf("max-window path alpha = %v, want negative", al[f1])
	}
	// |alpha| = 1/(N*|set|) = 1/2 each here.
	if math.Abs(al[f2]-0.5) > 1e-9 || math.Abs(al[f1]+0.5) > 1e-9 {
		t.Fatalf("alphas = %v, want +0.5/-0.5", al)
	}
	// Alphas sum to ~0: reallocation, not net aggression.
	var sum float64
	for _, a := range al {
		sum += a
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("alpha sum = %v, want 0", sum)
	}
}

func TestOLIAAlphaEmptyWhenBestIsBiggest(t *testing.T) {
	o := &OLIA{}
	rtt := 50 * time.Millisecond
	f1 := newFlow("1", 30, rtt)
	f2 := newFlow("2", 5, rtt)
	o.Register(f1, 0)
	o.Register(f2, 0)
	oliaStateOf(f1).l1 = 500 * mss // best AND biggest
	oliaStateOf(f2).l1 = 10 * mss
	al := o.alphas()
	if len(al) != 0 {
		t.Fatalf("alphas = %v, want empty (B subset of M)", al)
	}
}

func TestOLIAWindowFloor(t *testing.T) {
	o := &OLIA{}
	rtt := 50 * time.Millisecond
	f1 := newFlow("1", 1.05, rtt)
	f2 := newFlow("2", 50, rtt)
	o.Register(f1, 0)
	o.Register(f2, 0)
	f1.Ssthresh, f2.Ssthresh = 1, 1 // both in CA
	oliaStateOf(f2).l1 = 1000 * mss
	oliaStateOf(f1).l1 = mss
	// f1 is in M? No - f2 has the max window; f1 gets no negative alpha
	// here, so force the worst case: make f1 the max-window path.
	f1.Cwnd, f2.Cwnd = 50*mss, 1.05*mss
	oliaStateOf(f1).l1 = mss
	oliaStateOf(f2).l1 = 1000 * mss
	for i := 0; i < 100000; i++ {
		o.OnAck(f1, mss, 0)
	}
	if f1.Cwnd < mss {
		t.Fatalf("OLIA drove window below 1 MSS: %v", f1.Cwnd/mss)
	}
}

func TestOLIALossRotatesInterLossCounters(t *testing.T) {
	o := &OLIA{}
	f := newFlow("1", 10, 50*time.Millisecond)
	o.Register(f, 0)
	o.OnAck(f, 5*mss, 0)
	s := oliaStateOf(f)
	if s.l1 != 5*mss {
		t.Fatalf("l1 = %v", s.l1)
	}
	f.InFlight = int(f.Cwnd)
	o.OnLoss(f, 0)
	if s.l2 != 5*mss || s.l1 != 0 {
		t.Fatalf("after loss l1=%v l2=%v, want 0 and %d", s.l1, s.l2, 5*mss)
	}
}

func TestBALIAIncreaseAndDecrease(t *testing.T) {
	b := &BALIA{}
	rtt := 50 * time.Millisecond
	f1 := newFlow("1", 10, rtt)
	f2 := newFlow("2", 30, rtt)
	b.Register(f1, 0)
	b.Register(f2, 0)
	f1.Ssthresh, f2.Ssthresh = f1.Cwnd, f2.Cwnd
	before := f1.Cwnd
	b.OnAck(f1, mss, 0)
	if f1.Cwnd <= before {
		t.Fatal("BALIA increase not positive")
	}
	// Decrease: alpha = max/x_r = 3 for f1 -> capped at 1.5 -> ssthresh =
	// w - w/2*1.5 = w/4.
	f1.Cwnd = 10 * mss
	f1.InFlight = int(f1.Cwnd)
	b.OnLoss(f1, 0)
	if math.Abs(f1.Ssthresh-2.5*mss) > 1 {
		t.Fatalf("BALIA ssthresh = %.2f pkts, want 2.5", f1.Ssthresh/mss)
	}
	// For the max-rate path alpha=1: decrease w/2.
	f2.Cwnd = 30 * mss
	f2.InFlight = int(f2.Cwnd)
	b.OnLoss(f2, 0)
	if math.Abs(f2.Ssthresh-15*mss) > 1 {
		t.Fatalf("BALIA max-path ssthresh = %.2f pkts, want 15", f2.Ssthresh/mss)
	}
}

// Property: no algorithm ever produces NaN/Inf or a window below 1 MSS
// floor guarantees (after its own OnLoss/OnAck sequences).
func TestQuickNoPathologicalWindows(t *testing.T) {
	algos := []string{"reno", "cubic", "lia", "olia", "balia", "wvegas"}
	f := func(seedRaw uint16, ops []bool) bool {
		for _, name := range algos {
			a, _ := New(name)
			f1 := newFlow("1", 2+float64(seedRaw%50), time.Duration(5+seedRaw%100)*time.Millisecond)
			f2 := newFlow("2", 2+float64(seedRaw%30), time.Duration(5+seedRaw%60)*time.Millisecond)
			a.Register(f1, 0)
			a.Register(f2, 0)
			f1.Ssthresh = f1.Cwnd * 2
			f2.Ssthresh = f2.Cwnd * 2
			now := sim.Time(0)
			for _, ack := range ops {
				now = now.Add(time.Millisecond)
				f1.InFlight = int(f1.Cwnd)
				if ack {
					a.OnAck(f1, mss, now)
				} else {
					a.OnLoss(f1, now)
					f1.Cwnd = f1.Ssthresh
				}
				for _, fl := range []*Flow{f1, f2} {
					if math.IsNaN(fl.Cwnd) || math.IsInf(fl.Cwnd, 0) || fl.Cwnd < 0.5*mss {
						return false
					}
					if math.IsNaN(fl.Ssthresh) || fl.Ssthresh < 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: coupled algorithms cap aggregate aggressiveness — on two equal
// paths, each path's CA increase is at most the uncoupled increase.
func TestQuickCoupledNotMoreAggressive(t *testing.T) {
	f := func(wRaw uint8, rttMs uint8) bool {
		w := 2 + float64(wRaw%60)
		rtt := time.Duration(5+int(rttMs%200)) * time.Millisecond
		for _, name := range []string{"lia", "olia"} {
			a, _ := New(name)
			f1 := newFlow("1", w, rtt)
			f2 := newFlow("2", w, rtt)
			a.Register(f1, 0)
			a.Register(f2, 0)
			f1.Ssthresh, f2.Ssthresh = f1.Cwnd, f2.Cwnd
			before := f1.Cwnd
			a.OnAck(f1, mss, 0)
			inc := f1.Cwnd - before
			reno := float64(mss) * mss / before
			if inc > reno*1.05 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnregister(t *testing.T) {
	for _, name := range []string{"lia", "olia", "balia"} {
		a, _ := New(name)
		f1 := newFlow("1", 10, 10*time.Millisecond)
		f2 := newFlow("2", 10, 10*time.Millisecond)
		a.Register(f1, 0)
		a.Register(f2, 0)
		a.Unregister(f1)
		// Remaining flow must behave like a single path: LIA alpha == 1.
		if lia, ok := a.(*LIA); ok {
			alpha, _ := lia.alpha()
			if math.Abs(alpha-1) > 1e-9 {
				t.Fatalf("%s after Unregister alpha = %v", name, alpha)
			}
		}
		f2.Ssthresh = f2.Cwnd
		a.OnAck(f2, mss, 0) // must not panic
	}
}
