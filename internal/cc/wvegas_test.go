package cc

import (
	"math"
	"testing"
	"time"

	"mptcpsim/internal/sim"
)

func TestWVegasRegistered(t *testing.T) {
	a, err := New("wvegas")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "wvegas" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestWVegasAlphaSplitsByRate(t *testing.T) {
	v := NewWVegas()
	rtt := 20 * time.Millisecond
	f1 := newFlow("1", 10, rtt) // rate 500 pkt/s
	f2 := newFlow("2", 30, rtt) // rate 1500 pkt/s
	v.Register(f1, 0)
	v.Register(f2, 0)
	a1, a2 := v.alphaFor(f1), v.alphaFor(f2)
	// Proportional to rate: a2 = 3*a1; both sum to TotalAlpha.
	if math.Abs(a2/a1-3) > 1e-9 {
		t.Fatalf("alpha ratio = %v, want 3", a2/a1)
	}
	if math.Abs(a1+a2-v.TotalAlpha) > 1e-9 {
		t.Fatalf("alpha sum = %v, want %v", a1+a2, v.TotalAlpha)
	}
}

func TestWVegasAlphaFloor(t *testing.T) {
	v := NewWVegas()
	rtt := 20 * time.Millisecond
	tiny := newFlow("tiny", 0.1, rtt)
	big := newFlow("big", 1000, rtt)
	v.Register(tiny, 0)
	v.Register(big, 0)
	if a := v.alphaFor(tiny); a < 1 {
		t.Fatalf("tiny path alpha = %v, want >= 1", a)
	}
}

func TestWVegasBacklogEstimate(t *testing.T) {
	v := NewWVegas()
	f := newFlow("f", 20, 20*time.Millisecond)
	v.Register(f, 0)
	s := wvegasStateOf(f)
	s.baseRTT = 10 * time.Millisecond // half the current RTT -> backlog half the window
	if d := v.diffPkts(f); math.Abs(d-10) > 1e-9 {
		t.Fatalf("diff = %v pkts, want 10", d)
	}
	// No queueing: no backlog.
	s.baseRTT = 20 * time.Millisecond
	if d := v.diffPkts(f); d != 0 {
		t.Fatalf("diff = %v, want 0", d)
	}
}

func TestWVegasDecreasesWhenOverTarget(t *testing.T) {
	v := NewWVegas()
	rtt := 20 * time.Millisecond
	f := newFlow("f", 40, rtt)
	f.Ssthresh = f.Cwnd // congestion avoidance
	v.Register(f, 0)
	s := wvegasStateOf(f)
	s.baseRTT = 5 * time.Millisecond // large backlog: 40*(1-0.25) = 30 >> 10
	f.MinRTT = s.baseRTT
	before := f.Cwnd
	// One adjustment after an RTT has elapsed.
	v.OnAck(f, mss, sim.Time(25*time.Millisecond))
	if f.Cwnd >= before {
		t.Fatalf("cwnd should shrink over target: %v -> %v", before/mss, f.Cwnd/mss)
	}
}

func TestWVegasIncreasesWhenUnderTarget(t *testing.T) {
	v := NewWVegas()
	rtt := 20 * time.Millisecond
	f := newFlow("f", 10, rtt)
	f.Ssthresh = f.Cwnd
	v.Register(f, 0)
	s := wvegasStateOf(f)
	s.baseRTT = 20 * time.Millisecond // no backlog
	f.MinRTT = s.baseRTT
	before := f.Cwnd
	v.OnAck(f, mss, sim.Time(25*time.Millisecond))
	if f.Cwnd <= before {
		t.Fatalf("cwnd should grow under target: %v -> %v", before/mss, f.Cwnd/mss)
	}
}

func TestWVegasPacedOncePerRTT(t *testing.T) {
	v := NewWVegas()
	rtt := 20 * time.Millisecond
	f := newFlow("f", 10, rtt)
	f.Ssthresh = f.Cwnd
	v.Register(f, 0)
	s := wvegasStateOf(f)
	s.baseRTT = rtt
	f.MinRTT = rtt
	// Two ACKs within one RTT: at most one adjustment.
	v.OnAck(f, mss, sim.Time(25*time.Millisecond))
	w1 := f.Cwnd
	v.OnAck(f, mss, sim.Time(26*time.Millisecond))
	if f.Cwnd != w1 {
		t.Fatal("adjusted twice within one RTT")
	}
}

func TestWVegasWindowFloor(t *testing.T) {
	v := NewWVegas()
	rtt := 20 * time.Millisecond
	f := newFlow("f", 2.2, rtt)
	f.Ssthresh = f.Cwnd
	v.Register(f, 0)
	s := wvegasStateOf(f)
	s.baseRTT = time.Millisecond // huge backlog signal
	f.MinRTT = s.baseRTT
	now := sim.Time(25 * time.Millisecond)
	for i := 0; i < 50; i++ {
		now = now.Add(25 * time.Millisecond)
		v.OnAck(f, mss, now)
	}
	if f.Cwnd < 2*mss {
		t.Fatalf("cwnd fell below 2 MSS floor: %v", f.Cwnd/mss)
	}
}
