package cc

import (
	"math"

	"mptcpsim/internal/sim"
)

func init() {
	RegisterAlgorithm("cubic", func() Algorithm { return &Cubic{} })
}

// CUBIC constants per RFC 8312: C is the cubic scaling factor in
// MSS/second^3 and beta the multiplicative decrease factor.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// Cubic is CUBIC congestion control (RFC 8312), Linux's default and the
// algorithm with which the paper's MPTCP always found the optimum. Window
// growth is a cubic function of the time since the last reduction —
// concave while approaching the previous saturation point W_max, then
// convex while probing beyond it — and is independent of RTT, plus a
// TCP-friendly region so short-RTT paths are not starved. Fast convergence
// releases capacity more quickly when a flow's share is shrinking.
//
// Applied per subflow (uncoupled), as the paper's "MPTCP-CUBIC".
// HyStart is not implemented; slow start is standard (RFC 3465).
type Cubic struct{}

type cubicState struct {
	// wLastMax is the window (MSS) just before the last reduction, after
	// fast-convergence shrinking.
	wLastMax float64
	// origin and k define the cubic curve: w(t) = origin + C*(t-k)^3.
	origin float64
	k      float64
	// epochStart is when the current growth epoch began; zero means unset.
	epochStart sim.Time
	epochSet   bool
	// wTCP is the TCP-friendly window estimate (MSS).
	wTCP float64
}

// Name implements Algorithm.
func (*Cubic) Name() string { return "cubic" }

// Register implements Algorithm.
func (*Cubic) Register(f *Flow, _ sim.Time) { f.ctx = &cubicState{} }

// Unregister implements Algorithm.
func (*Cubic) Unregister(f *Flow) {}

func (c *Cubic) state(f *Flow) *cubicState {
	s, ok := f.ctx.(*cubicState)
	if !ok {
		s = &cubicState{}
		f.ctx = s
	}
	return s
}

// OnAck implements Algorithm.
func (c *Cubic) OnAck(f *Flow, acked int, now sim.Time) {
	if f.InSlowStart() {
		acked = slowStart(f, acked)
		if acked == 0 {
			return
		}
	}
	s := c.state(f)
	w := f.wPkts()
	if !s.epochSet {
		s.epochSet = true
		s.epochStart = now
		if w < s.wLastMax {
			s.k = math.Cbrt((s.wLastMax - w) / cubicC)
			s.origin = s.wLastMax
		} else {
			s.k = 0
			s.origin = w
		}
		if s.wTCP == 0 {
			s.wTCP = w
		}
	}
	t := now.Sub(s.epochStart).Seconds() + f.rtt()
	target := s.origin + cubicC*math.Pow(t-s.k, 3)

	// cnt is "ACKed segments per +1 segment of growth".
	var cnt float64
	if target > w {
		cnt = w / (target - w)
	} else {
		cnt = 100 * w // minimal growth while below the curve
	}

	// TCP-friendly region (RFC 8312 §4.2): emulate an AIMD flow with the
	// same loss rate; never grow slower than it.
	s.wTCP += 3 * (1 - cubicBeta) / (1 + cubicBeta) * float64(acked) / f.Cwnd
	if s.wTCP > w {
		if c2 := w / (s.wTCP - w); c2 < cnt {
			cnt = c2
		}
	}
	if cnt < 0.5 {
		cnt = 0.5 // cap growth at 2 MSS per ACK
	}
	f.Cwnd += float64(acked) / cnt
}

// OnLoss implements Algorithm.
func (c *Cubic) OnLoss(f *Flow, _ sim.Time) {
	s := c.state(f)
	w := f.wPkts()
	// Fast convergence: if the window stopped short of the previous
	// maximum, capacity was lost to a newcomer — release more.
	if w < s.wLastMax {
		s.wLastMax = w * (2 - cubicBeta) / 2
	} else {
		s.wLastMax = w
	}
	s.epochSet = false
	s.wTCP = w * cubicBeta
	th := f.Cwnd * cubicBeta
	if th < minSsthresh(f) {
		th = minSsthresh(f)
	}
	f.Ssthresh = th
}

// OnRTO implements Algorithm.
func (c *Cubic) OnRTO(f *Flow, now sim.Time) {
	c.OnLoss(f, now)
	f.Cwnd = float64(f.MSS)
}
