package cc

import "mptcpsim/internal/sim"

func init() {
	RegisterAlgorithm("lia", func() Algorithm { return &LIA{} })
}

// LIA is the coupled Linked Increases Algorithm of RFC 6356, the original
// MPTCP congestion control (Wischik et al., NSDI'11). All subflows of a
// connection share one LIA instance. The congestion-avoidance increase on
// subflow i per ACK of `acked` bytes is
//
//	min( alpha * acked * MSS / cwnd_total ,  acked * MSS / cwnd_i )
//
// with the aggressiveness factor
//
//	alpha = cwnd_total * max_i(cwnd_i/rtt_i^2) / ( sum_i cwnd_i/rtt_i )^2
//
// which caps the aggregate at the throughput of a single TCP on the best
// path and shifts traffic away from more congested paths. Decrease is the
// standard halving. The paper observes that this coupling is stable but
// never reaches the LP optimum on the overlapping-path network (LIA is not
// Pareto-optimal — the observation that motivated OLIA).
type LIA struct {
	flows []*Flow
}

// Name implements Algorithm.
func (*LIA) Name() string { return "lia" }

// Register implements Algorithm.
func (l *LIA) Register(f *Flow, _ sim.Time) { l.flows = append(l.flows, f) }

// Unregister implements Algorithm.
func (l *LIA) Unregister(f *Flow) {
	for i, g := range l.flows {
		if g == f {
			l.flows = append(l.flows[:i], l.flows[i+1:]...)
			return
		}
	}
}

// alpha computes the RFC 6356 aggressiveness factor in byte units.
func (l *LIA) alpha() (alpha, totalCwnd float64) {
	var best, denom float64
	for _, f := range l.flows {
		rtt := f.rtt()
		w := f.Cwnd
		totalCwnd += w
		if v := w / (rtt * rtt); v > best {
			best = v
		}
		denom += w / rtt
	}
	if denom <= 0 || totalCwnd <= 0 {
		return 1, totalCwnd
	}
	return totalCwnd * best / (denom * denom), totalCwnd
}

// OnAck implements Algorithm.
func (l *LIA) OnAck(f *Flow, acked int, _ sim.Time) {
	if f.InSlowStart() {
		// RFC 6356 leaves slow start per-subflow and unmodified.
		acked = slowStart(f, acked)
		if acked == 0 {
			return
		}
	}
	alpha, total := l.alpha()
	if total <= 0 {
		return
	}
	coupled := alpha * float64(acked) * float64(f.MSS) / total
	single := float64(acked) * float64(f.MSS) / f.Cwnd
	if coupled < single {
		f.Cwnd += coupled
	} else {
		f.Cwnd += single
	}
}

// OnLoss implements Algorithm.
func (*LIA) OnLoss(f *Flow, _ sim.Time) { halveOnLoss(f) }

// OnRTO implements Algorithm.
func (*LIA) OnRTO(f *Flow, _ sim.Time) { rtoCollapse(f) }
