package cc

import (
	"math"

	"mptcpsim/internal/sim"
)

func init() {
	RegisterAlgorithm("balia", func() Algorithm { return &BALIA{} })
}

// BALIA is the Balanced Linked Adaptation algorithm (Peng, Walid, Hwang,
// Low: "Multipath TCP: Analysis, Design, and Implementation", ToN 2014),
// included as an extension beyond the paper's three algorithms: it was
// designed to strike a balance between LIA's friendliness and OLIA's
// responsiveness problems.
//
// With x_p = w_p/rtt_p, and alpha_r = max_p(x_p)/x_r, each ACK on path r
// grows the window (in MSS) by
//
//	( x_r / rtt_r ) / ( sum_p x_p )^2 * (1+alpha_r)/2 * (4+alpha_r)/5
//
// and each loss shrinks it by w_r/2 * min(alpha_r, 1.5).
type BALIA struct {
	flows []*Flow
}

// Name implements Algorithm.
func (*BALIA) Name() string { return "balia" }

// Register implements Algorithm.
func (b *BALIA) Register(f *Flow, _ sim.Time) { b.flows = append(b.flows, f) }

// Unregister implements Algorithm.
func (b *BALIA) Unregister(f *Flow) {
	for i, g := range b.flows {
		if g == f {
			b.flows = append(b.flows[:i], b.flows[i+1:]...)
			return
		}
	}
}

// rates returns x_r for the flow and the total and max over the group, in
// MSS/second.
func (b *BALIA) rates(f *Flow) (xr, sum, max float64) {
	for _, g := range b.flows {
		x := g.wPkts() / g.rtt()
		sum += x
		if x > max {
			max = x
		}
		if g == f {
			xr = x
		}
	}
	return xr, sum, max
}

// OnAck implements Algorithm.
func (b *BALIA) OnAck(f *Flow, acked int, _ sim.Time) {
	if f.InSlowStart() {
		acked = slowStart(f, acked)
		if acked == 0 {
			return
		}
	}
	xr, sum, max := b.rates(f)
	if xr <= 0 || sum <= 0 {
		return
	}
	alpha := max / xr
	incPkts := (xr / f.rtt()) / (sum * sum) * (1 + alpha) / 2 * (4 + alpha) / 5
	f.Cwnd += incPkts * float64(acked)
}

// OnLoss implements Algorithm.
func (b *BALIA) OnLoss(f *Flow, _ sim.Time) {
	xr, _, max := b.rates(f)
	alpha := 1.0
	if xr > 0 {
		alpha = max / xr
	}
	dec := f.Cwnd / 2 * math.Min(alpha, 1.5)
	th := f.Cwnd - dec
	if th < minSsthresh(f) {
		th = minSsthresh(f)
	}
	f.Ssthresh = th
}

// OnRTO implements Algorithm.
func (b *BALIA) OnRTO(f *Flow, now sim.Time) {
	b.OnLoss(f, now)
	f.Cwnd = float64(f.MSS)
}
