package cc

import (
	"time"

	"mptcpsim/internal/sim"
)

func init() {
	RegisterAlgorithm("wvegas", func() Algorithm { return NewWVegas() })
}

// WVegas is weighted Vegas (Cao, Xu, Fu: "Delay-based congestion control
// for multipath TCP", ICNP 2012), the delay-based coupled algorithm that
// shipped with the paper's MPTCP v0.94 kernel. Each subflow r estimates
// its queueing backlog the Vegas way,
//
//	diff_r = (expected - actual) * baseRTT
//	       = w_r * (1 - baseRTT_r/RTT_r)            [packets]
//
// and compares it against a per-path share alpha_r of the total backlog
// target; alpha_r is proportional to the subflow's share of the aggregate
// rate, which equalises marginal congestion across paths. Windows grow by
// one packet per RTT while below the target and shrink when above it —
// so, unlike the loss-based algorithms, wVegas backs off before drops.
type WVegas struct {
	// TotalAlpha is the aggregate backlog target in packets (the kernel
	// default is 10).
	TotalAlpha float64

	flows []*Flow
}

// NewWVegas returns a wVegas instance with kernel-default parameters.
func NewWVegas() *WVegas { return &WVegas{TotalAlpha: 10} }

// wvegasState is per-flow bookkeeping.
type wvegasState struct {
	// baseRTT is the smallest RTT seen (propagation estimate).
	baseRTT time.Duration
	// lastAdj paces window adjustments to once per RTT.
	lastAdj sim.Time
	// ackedSinceAdj accumulates bytes between adjustments to estimate the
	// actual rate.
	ackedSinceAdj float64
}

// Name implements Algorithm.
func (*WVegas) Name() string { return "wvegas" }

// Register implements Algorithm.
func (v *WVegas) Register(f *Flow, now sim.Time) {
	f.ctx = &wvegasState{lastAdj: now}
	v.flows = append(v.flows, f)
}

// Unregister implements Algorithm.
func (v *WVegas) Unregister(f *Flow) {
	for i, g := range v.flows {
		if g == f {
			v.flows = append(v.flows[:i], v.flows[i+1:]...)
			return
		}
	}
}

func wvegasStateOf(f *Flow) *wvegasState {
	s, ok := f.ctx.(*wvegasState)
	if !ok {
		s = &wvegasState{}
		f.ctx = s
	}
	return s
}

// rate returns the subflow's estimated rate in packets/second.
func rate(f *Flow) float64 {
	return f.wPkts() / f.rtt()
}

// alphaFor splits the aggregate backlog target across the subflows in
// proportion to their rates.
func (v *WVegas) alphaFor(f *Flow) float64 {
	var sum float64
	for _, g := range v.flows {
		sum += rate(g)
	}
	if sum <= 0 {
		return v.TotalAlpha / float64(len(v.flows))
	}
	a := v.TotalAlpha * rate(f) / sum
	if a < 1 {
		a = 1 // never starve a path of probing headroom
	}
	return a
}

// OnAck implements Algorithm.
func (v *WVegas) OnAck(f *Flow, acked int, now sim.Time) {
	s := wvegasStateOf(f)
	if s.baseRTT == 0 || (f.MinRTT > 0 && f.MinRTT < s.baseRTT) {
		s.baseRTT = f.MinRTT
	}
	s.ackedSinceAdj += float64(acked)
	if f.InSlowStart() {
		// Vegas-style slow start: gentler doubling, and leave slow start
		// as soon as a backlog builds.
		if acked = slowStart(f, acked); acked == 0 {
			if v.diffPkts(f) > v.alphaFor(f) {
				f.Ssthresh = f.Cwnd
			}
			return
		}
	}
	// Adjust once per RTT.
	if f.SRTT <= 0 || now.Sub(s.lastAdj) < f.SRTT {
		return
	}
	s.lastAdj = now
	s.ackedSinceAdj = 0
	diff := v.diffPkts(f)
	target := v.alphaFor(f)
	switch {
	case diff > target:
		f.Cwnd -= float64(f.MSS)
	case diff < target:
		f.Cwnd += float64(f.MSS)
	}
	if f.Cwnd < 2*float64(f.MSS) {
		f.Cwnd = 2 * float64(f.MSS)
	}
}

// diffPkts is the Vegas backlog estimate in packets.
func (v *WVegas) diffPkts(f *Flow) float64 {
	s := wvegasStateOf(f)
	if s.baseRTT <= 0 || f.SRTT <= 0 {
		return 0
	}
	ratio := float64(s.baseRTT) / float64(f.SRTT)
	if ratio > 1 {
		ratio = 1
	}
	return f.wPkts() * (1 - ratio)
}

// OnLoss implements Algorithm: losses still halve (delay-based control
// does not remove the loss response, it just makes it rare).
func (*WVegas) OnLoss(f *Flow, _ sim.Time) { halveOnLoss(f) }

// OnRTO implements Algorithm.
func (*WVegas) OnRTO(f *Flow, _ sim.Time) { rtoCollapse(f) }
