// Package cc implements the congestion-control algorithms the paper
// evaluates: per-subflow CUBIC (Linux's default) and Reno/NewReno, plus the
// coupled multipath controllers LIA (RFC 6356), OLIA (Khalili et al. 2013)
// and BALIA (Peng et al. 2014, an extension beyond the paper).
//
// The design mirrors the Linux MPTCP congestion-control framework: the TCP
// layer owns window bookkeeping (slow-start threshold, recovery
// inflation/deflation) and calls into an Algorithm at the decision points —
// per-ACK increase, loss response, RTO response. Coupled algorithms receive
// all subflows of a connection through Register and can therefore shift
// window growth between paths, which is exactly the mechanism whose
// optimisation behaviour the paper studies.
package cc

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mptcpsim/internal/sim"
)

// Flow is the congestion view of one TCP subflow. The TCP layer keeps the
// exported fields current before invoking Algorithm hooks; algorithms
// mutate Cwnd/Ssthresh and keep private state in ctx.
type Flow struct {
	// MSS is the sender maximum segment size in bytes.
	MSS int
	// Cwnd is the congestion window in bytes (fractional accumulation).
	Cwnd float64
	// Ssthresh is the slow-start threshold in bytes.
	Ssthresh float64
	// SRTT is the smoothed round-trip time; zero until the first sample.
	SRTT time.Duration
	// MinRTT is the smallest RTT observed.
	MinRTT time.Duration
	// InFlight is the sender's current outstanding byte count.
	InFlight int
	// ID labels the flow in stats output (e.g. the subflow tag).
	ID string

	ctx any
}

// InSlowStart reports whether the flow is below its slow-start threshold.
func (f *Flow) InSlowStart() bool { return f.Cwnd < f.Ssthresh }

// rtt returns a safe RTT for rate calculations (guards the pre-sample and
// zero cases).
func (f *Flow) rtt() float64 {
	if f.SRTT <= 0 {
		return 0.001
	}
	return f.SRTT.Seconds()
}

// wPkts returns the window in MSS units, at least a small positive value.
func (f *Flow) wPkts() float64 {
	w := f.Cwnd / float64(f.MSS)
	if w < 0.01 {
		return 0.01
	}
	return w
}

// Algorithm is a congestion-control module. Hooks run inside the event
// loop; implementations must be deterministic.
type Algorithm interface {
	// Name returns the algorithm's registry name.
	Name() string
	// Register attaches a flow (called when its connection establishes).
	// Coupled algorithms add it to their window-coupling group.
	Register(f *Flow, now sim.Time)
	// Unregister detaches a flow.
	Unregister(f *Flow)
	// OnAck processes a cumulative ACK of acked bytes outside recovery.
	OnAck(f *Flow, acked int, now sim.Time)
	// OnLoss processes entry into fast recovery: it must set f.Ssthresh
	// (and may adjust internal state). Window inflation during recovery is
	// the TCP layer's job.
	OnLoss(f *Flow, now sim.Time)
	// OnRTO processes a retransmission timeout.
	OnRTO(f *Flow, now sim.Time)
}

// minSsthresh is the floor for the slow-start threshold, per RFC 5681.
func minSsthresh(f *Flow) float64 { return float64(2 * f.MSS) }

// halveOnLoss is the standard multiplicative decrease shared by Reno, LIA
// and OLIA: ssthresh = max(inflight/2, 2*MSS).
func halveOnLoss(f *Flow) {
	fl := float64(f.InFlight)
	if fl < f.Cwnd {
		// Use at least the window: an application-limited flow should not
		// collapse below half its window.
		fl = f.Cwnd
	}
	s := fl / 2
	if s < minSsthresh(f) {
		s = minSsthresh(f)
	}
	f.Ssthresh = s
}

// rtoCollapse is the standard RTO response: halve the threshold and fall
// back to one segment.
func rtoCollapse(f *Flow) {
	halveOnLoss(f)
	f.Cwnd = float64(f.MSS)
}

// slowStart grows the window exponentially using appropriate byte counting
// (RFC 3465, L=2) and reports how many acked bytes remain for the
// congestion-avoidance phase after crossing ssthresh.
func slowStart(f *Flow, acked int) int {
	inc := float64(acked)
	if max := float64(2 * f.MSS); inc > max {
		inc = max
	}
	if f.Cwnd+inc <= f.Ssthresh {
		f.Cwnd += inc
		return 0
	}
	// Cross ssthresh exactly; leftover ACK bytes feed congestion avoidance.
	left := int((f.Cwnd + inc - f.Ssthresh) / 2)
	f.Cwnd = f.Ssthresh
	return left
}

// Factory builds a fresh algorithm instance. Coupled algorithms need one
// instance per MPTCP connection, so the registry stores factories.
type Factory func() Algorithm

var registry = map[string]Factory{}

// RegisterAlgorithm adds a factory under a unique name; it is called from
// init functions of the implementations.
func RegisterAlgorithm(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("cc: duplicate algorithm " + name)
	}
	registry[name] = f
}

// New instantiates an algorithm by name.
func New(name string) (Algorithm, error) {
	f, ok := registry[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("cc: unknown algorithm %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// Names lists registered algorithms, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
