// Package route implements the forwarding planes of the simulated network.
//
// The primary router is the TagTable: deterministic per-(destination, tag)
// next hops, the mechanism the paper uses to pin each MPTCP subflow to a
// preselected path ("packets with the same tag are always routed along the
// same path towards the destination"). Unknown tags fail closed.
//
// An ECMP router is also provided for the datacenter example: it spreads
// flows across equal-cost shortest paths by symmetric flow hash, the way
// commodity switches do.
package route

import (
	"fmt"
	"math"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/topo"
)

// Router chooses the outgoing link for a packet at a node. Implementations
// must be deterministic: the same packet at the same node always takes the
// same link.
type Router interface {
	NextLink(n topo.NodeID, pkt *packet.Packet) (topo.LinkID, error)
}

// NoRouteError reports a forwarding failure; the engine counts and drops
// such packets (fail closed, like a router with no FIB entry).
type NoRouteError struct {
	Node topo.NodeID
	Dst  packet.Addr
	Tag  packet.Tag
}

// Error implements error.
func (e *NoRouteError) Error() string {
	return fmt.Sprintf("route: no route at node %d for dst %s %s", e.Node, e.Dst, e.Tag)
}

type tagKey struct {
	dst packet.Addr
	tag packet.Tag
}

// TagTable is a per-(destination, tag) forwarding table. The per-node
// tables live in a dense slice indexed by node ID — forwarding does one
// map probe per hop, not two.
type TagTable struct {
	g    *topo.Graph
	next []map[tagKey]topo.LinkID
	// cache holds the last hit per node: consecutive packets at a node
	// overwhelmingly share (dst, tag), so most hops skip the map probe.
	// Table mutations reset it wholesale (routes are installed at setup).
	cache []tagCacheEntry
}

type tagCacheEntry struct {
	key   tagKey
	lid   topo.LinkID
	valid bool
}

// NewTagTable returns an empty tag-routing table over graph g.
func NewTagTable(g *topo.Graph) *TagTable {
	return &TagTable{
		g:     g,
		next:  make([]map[tagKey]topo.LinkID, g.NumNodes()),
		cache: make([]tagCacheEntry, g.NumNodes()),
	}
}

// invalidate clears the per-node lookup cache after a table mutation.
func (t *TagTable) invalidate() {
	for i := range t.cache {
		t.cache[i] = tagCacheEntry{}
	}
}

// AddPath installs forwarding entries so that packets for dst carrying tag
// follow path p. It fails if an entry would conflict with one already
// installed (two different paths for the same (dst, tag) diverging at a
// node), which is exactly the determinism the tagging scheme promises.
func (t *TagTable) AddPath(dst packet.Addr, tag packet.Tag, p topo.Path) error {
	if !p.Valid(t.g) {
		return fmt.Errorf("route: AddPath: invalid path")
	}
	key := tagKey{dst: dst, tag: tag}
	// Validate before mutating so a conflict leaves the table unchanged.
	for i, lid := range p.Links {
		n := p.Nodes[i]
		if existing, ok := t.next[n][key]; ok && existing != lid {
			return fmt.Errorf("route: conflicting entry at node %s for dst %s %s: link %d vs %d",
				t.g.Node(n).Name, dst, tag, existing, lid)
		}
	}
	for i, lid := range p.Links {
		n := p.Nodes[i]
		if t.next[n] == nil {
			t.next[n] = make(map[tagKey]topo.LinkID)
		}
		t.next[n][key] = lid
	}
	t.invalidate()
	return nil
}

// AddDefaultRoutes installs shortest-path next hops towards dst (the node
// owning addr) for packets carrying TagNone, at every node that can reach
// it. Existing TagNone entries are preserved.
func (t *TagTable) AddDefaultRoutes(dst packet.Addr, dstNode topo.NodeID, w topo.Weight) {
	dist, prev := reverseShortest(t.g, dstNode, w)
	key := tagKey{dst: dst, tag: packet.TagNone}
	for _, n := range t.g.Nodes() {
		if n.ID == dstNode || math.IsInf(dist[n.ID], 1) {
			continue
		}
		if t.next[n.ID] == nil {
			t.next[n.ID] = make(map[tagKey]topo.LinkID)
		}
		if _, ok := t.next[n.ID][key]; !ok {
			t.next[n.ID][key] = prev[n.ID]
		}
	}
	t.invalidate()
}

// NextLink implements Router. Lookup is exact on (dst, tag); packets with
// an unknown tag are not silently rerouted.
func (t *TagTable) NextLink(n topo.NodeID, pkt *packet.Packet) (topo.LinkID, error) {
	key := tagKey{dst: pkt.IP.Dst, tag: pkt.IP.Tag}
	if ce := &t.cache[n]; ce.valid && ce.key == key {
		return ce.lid, nil
	}
	if m := t.next[n]; m != nil {
		if lid, ok := m[key]; ok {
			t.cache[n] = tagCacheEntry{key: key, lid: lid, valid: true}
			return lid, nil
		}
	}
	return -1, &NoRouteError{Node: n, Dst: key.dst, Tag: key.tag}
}

// reverseShortest runs Dijkstra towards dst over reversed links, returning
// for every node its distance and the first link of its shortest path to
// dst.
func reverseShortest(g *topo.Graph, dst topo.NodeID, w topo.Weight) ([]float64, []topo.LinkID) {
	if w == nil {
		w = topo.DelayWeight
	}
	n := g.NumNodes()
	dist := make([]float64, n)
	first := make([]topo.LinkID, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		first[i] = -1
	}
	dist[dst] = 0
	// Incoming adjacency.
	in := make([][]topo.LinkID, n)
	for _, l := range g.Links() {
		in[l.To] = append(in[l.To], l.ID)
	}
	visited := make([]bool, n)
	for {
		u := topo.NodeID(-1)
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			if !visited[i] && dist[i] < best {
				best, u = dist[i], topo.NodeID(i)
			}
		}
		if u < 0 {
			break
		}
		visited[u] = true
		for _, lid := range in[u] {
			l := g.Link(lid)
			nd := dist[u] + w(l)
			if nd < dist[l.From] {
				dist[l.From] = nd
				first[l.From] = lid
			}
		}
	}
	return dist, first
}

// ECMP is an equal-cost multi-path router: at every node it precomputes the
// set of outgoing links lying on some shortest path to each destination and
// picks among them by the packet's symmetric flow hash, so a flow (and its
// reverse direction) stays on one path while different flows spread.
type ECMP struct {
	g *topo.Graph
	// links[node][dstAddr] = candidate next-hop links, in link-ID order.
	links map[topo.NodeID]map[packet.Addr][]topo.LinkID
}

// NewECMP builds ECMP state for the given destinations (addr -> node).
func NewECMP(g *topo.Graph, dests map[packet.Addr]topo.NodeID, w topo.Weight) *ECMP {
	if w == nil {
		w = topo.DelayWeight
	}
	e := &ECMP{g: g, links: make(map[topo.NodeID]map[packet.Addr][]topo.LinkID)}
	const eps = 1e-12
	for addr, dstNode := range dests {
		dist, _ := reverseShortest(g, dstNode, w)
		for _, n := range g.Nodes() {
			if n.ID == dstNode || math.IsInf(dist[n.ID], 1) {
				continue
			}
			var cands []topo.LinkID
			for _, lid := range g.OutLinks(n.ID) {
				l := g.Link(lid)
				if math.Abs(dist[n.ID]-(w(l)+dist[l.To])) <= eps {
					cands = append(cands, lid)
				}
			}
			if len(cands) == 0 {
				continue
			}
			if e.links[n.ID] == nil {
				e.links[n.ID] = make(map[packet.Addr][]topo.LinkID)
			}
			e.links[n.ID][addr] = cands
		}
	}
	return e
}

// NextLink implements Router.
func (e *ECMP) NextLink(n topo.NodeID, pkt *packet.Packet) (topo.LinkID, error) {
	cands := e.links[n][pkt.IP.Dst]
	if len(cands) == 0 {
		return -1, &NoRouteError{Node: n, Dst: pkt.IP.Dst, Tag: pkt.IP.Tag}
	}
	h := pkt.Flow().FastHash()
	return cands[h%uint64(len(cands))], nil
}
