package route

import (
	"errors"
	"testing"
	"time"

	"mptcpsim/internal/packet"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

var (
	srcAddr = packet.MakeAddr(10, 0, 0, 1)
	dstAddr = packet.MakeAddr(10, 0, 0, 2)
)

func tcpPkt(dst packet.Addr, tag packet.Tag, sp, dp packet.Port) *packet.Packet {
	return &packet.Packet{
		IP:  packet.IPv4{Tag: tag, TTL: packet.DefaultTTL, Proto: packet.ProtoTCP, Src: srcAddr, Dst: dst},
		TCP: &packet.TCP{SrcPort: sp, DstPort: dp, Flags: packet.FlagACK},
	}
}

func TestTagTableFollowsPaths(t *testing.T) {
	pn := topo.Paper()
	tt := NewTagTable(pn.Graph)
	for i, p := range pn.Paths {
		if err := tt.AddPath(dstAddr, packet.Tag(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	// Walk each tag from s and confirm the traversed links equal the path.
	for i, p := range pn.Paths {
		tag := packet.Tag(i + 1)
		pkt := tcpPkt(dstAddr, tag, 5001, 80)
		at := pn.S
		var walked []topo.LinkID
		for at != pn.D {
			lid, err := tt.NextLink(at, pkt)
			if err != nil {
				t.Fatalf("tag %d: %v", tag, err)
			}
			walked = append(walked, lid)
			at = pn.Graph.Link(lid).To
			if len(walked) > 10 {
				t.Fatalf("tag %d: routing loop", tag)
			}
		}
		if len(walked) != len(p.Links) {
			t.Fatalf("tag %d: walked %d links, want %d", tag, len(walked), len(p.Links))
		}
		for j := range walked {
			if walked[j] != p.Links[j] {
				t.Fatalf("tag %d hop %d: link %d, want %d", tag, j, walked[j], p.Links[j])
			}
		}
	}
}

func TestTagTableUnknownTagFailsClosed(t *testing.T) {
	pn := topo.Paper()
	tt := NewTagTable(pn.Graph)
	if err := tt.AddPath(dstAddr, 1, pn.Paths[0]); err != nil {
		t.Fatal(err)
	}
	_, err := tt.NextLink(pn.S, tcpPkt(dstAddr, 9, 5001, 80))
	var nr *NoRouteError
	if !errors.As(err, &nr) {
		t.Fatalf("want NoRouteError, got %v", err)
	}
	if nr.Tag != 9 || nr.Dst != dstAddr {
		t.Fatalf("error fields wrong: %v", nr)
	}
}

func TestTagTableConflictRejected(t *testing.T) {
	pn := topo.Paper()
	tt := NewTagTable(pn.Graph)
	if err := tt.AddPath(dstAddr, 1, pn.Paths[0]); err != nil {
		t.Fatal(err)
	}
	// Path 2 diverges from Path 1 at v1 — same tag must be rejected.
	if err := tt.AddPath(dstAddr, 1, pn.Paths[1]); err == nil {
		t.Fatal("conflicting AddPath accepted")
	}
	// And the table must still route tag 1 along Path 1.
	pkt := tcpPkt(dstAddr, 1, 5001, 80)
	v1, _ := pn.Graph.NodeByName("v1")
	lid, err := tt.NextLink(v1, pkt)
	if err != nil || lid != pn.Paths[0].Links[1] {
		t.Fatalf("table mutated by failed AddPath: %v %v", lid, err)
	}
}

func TestTagTableSameTagDifferentDst(t *testing.T) {
	pn := topo.Paper()
	tt := NewTagTable(pn.Graph)
	other := packet.MakeAddr(10, 0, 0, 3)
	if err := tt.AddPath(dstAddr, 1, pn.Paths[0]); err != nil {
		t.Fatal(err)
	}
	// Same tag towards a different destination may use a different path.
	if err := tt.AddPath(other, 1, pn.Paths[1]); err != nil {
		t.Fatal(err)
	}
	lid, err := tt.NextLink(pn.S, tcpPkt(other, 1, 5001, 80))
	if err != nil || lid != pn.Paths[1].Links[0] {
		t.Fatalf("wrong link for second dst: %v %v", lid, err)
	}
}

func TestDefaultRoutesShortestPath(t *testing.T) {
	pn := topo.Paper()
	tt := NewTagTable(pn.Graph)
	tt.AddDefaultRoutes(dstAddr, pn.D, nil)
	// From s, untagged packets should take Path 2's first link (the overall
	// shortest path starts s->v1).
	pkt := tcpPkt(dstAddr, packet.TagNone, 5001, 80)
	lid, err := tt.NextLink(pn.S, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if lid != pn.Paths[1].Links[0] {
		t.Fatalf("default route first hop = link %d, want %d", lid, pn.Paths[1].Links[0])
	}
	// Walking default routes must reach d.
	at := pn.S
	for hops := 0; at != pn.D; hops++ {
		l, err := tt.NextLink(at, pkt)
		if err != nil {
			t.Fatal(err)
		}
		at = pn.Graph.Link(l).To
		if hops > 10 {
			t.Fatal("default routing loop")
		}
	}
}

func TestReversePathRouting(t *testing.T) {
	pn := topo.Paper()
	tt := NewTagTable(pn.Graph)
	for i, p := range pn.Paths {
		rev, err := topo.ReversePath(pn.Graph, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := tt.AddPath(srcAddr, packet.Tag(i+1), rev); err != nil {
			t.Fatal(err)
		}
	}
	// ACKs (d -> s) with tag 2 must traverse Path 2 in reverse.
	pkt := tcpPkt(srcAddr, 2, 80, 5001)
	at := pn.D
	var hops int
	for at != pn.S {
		lid, err := tt.NextLink(at, pkt)
		if err != nil {
			t.Fatal(err)
		}
		at = pn.Graph.Link(lid).To
		hops++
	}
	if hops != pn.Paths[1].Hops() {
		t.Fatalf("reverse hops = %d, want %d", hops, pn.Paths[1].Hops())
	}
}

func ecmpDiamond() (*topo.Graph, topo.NodeID, topo.NodeID) {
	g := topo.New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	g.AddDuplex(a, b, unit.Gbps, time.Millisecond, 0)
	g.AddDuplex(a, c, unit.Gbps, time.Millisecond, 0)
	g.AddDuplex(b, d, unit.Gbps, time.Millisecond, 0)
	g.AddDuplex(c, d, unit.Gbps, time.Millisecond, 0)
	return g, a, d
}

func TestECMPSpreadsFlows(t *testing.T) {
	g, a, d := ecmpDiamond()
	e := NewECMP(g, map[packet.Addr]topo.NodeID{dstAddr: d}, nil)
	used := map[topo.LinkID]int{}
	for port := 1000; port < 1200; port++ {
		lid, err := e.NextLink(a, tcpPkt(dstAddr, packet.TagNone, packet.Port(port), 80))
		if err != nil {
			t.Fatal(err)
		}
		used[lid]++
	}
	if len(used) != 2 {
		t.Fatalf("ECMP used %d links, want 2 (%v)", len(used), used)
	}
	for lid, n := range used {
		if n < 40 {
			t.Fatalf("ECMP badly skewed: link %d got %d/200", lid, n)
		}
	}
}

func TestECMPFlowStability(t *testing.T) {
	g, a, d := ecmpDiamond()
	e := NewECMP(g, map[packet.Addr]topo.NodeID{dstAddr: d}, nil)
	p := tcpPkt(dstAddr, packet.TagNone, 5001, 80)
	first, err := e.NextLink(a, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		lid, _ := e.NextLink(a, p)
		if lid != first {
			t.Fatal("same flow took different links")
		}
	}
	// The reverse direction must hash to the same path (symmetric hash), so
	// data and ACKs share fate as on real ECMP fabrics with symmetric
	// hashing.
	rp := tcpPkt(srcAddr, packet.TagNone, 80, 5001)
	rp.IP.Src, rp.IP.Dst = dstAddr, srcAddr
	_ = rp // direction b->a uses dst srcAddr which ECMP has no entry for; skip walk
}

func TestECMPNoRoute(t *testing.T) {
	g, a, d := ecmpDiamond()
	e := NewECMP(g, map[packet.Addr]topo.NodeID{dstAddr: d}, nil)
	if _, err := e.NextLink(a, tcpPkt(packet.MakeAddr(1, 2, 3, 4), packet.TagNone, 1, 2)); err == nil {
		t.Fatal("unknown destination should fail")
	}
}

func TestAddPathRejectsInvalid(t *testing.T) {
	pn := topo.Paper()
	tt := NewTagTable(pn.Graph)
	// A path whose links do not match its nodes is invalid.
	bad := topo.Path{Nodes: []topo.NodeID{pn.S, pn.D}, Links: []topo.LinkID{999}}
	if err := tt.AddPath(dstAddr, 1, bad); err == nil {
		t.Fatal("invalid path accepted")
	}
}

func TestECMPUnreachableDestination(t *testing.T) {
	// A destination with no incoming links yields no candidates anywhere.
	g := topo.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	island := g.AddNode("island")
	g.AddDuplex(a, b, unit.Gbps, time.Millisecond, 0)
	e := NewECMP(g, map[packet.Addr]topo.NodeID{dstAddr: island}, nil)
	if _, err := e.NextLink(a, tcpPkt(dstAddr, packet.TagNone, 1, 2)); err == nil {
		t.Fatal("route to island accepted")
	}
	_ = b
}
