// Package dynamics turns a static simulation into a time-varying one: a
// validated, time-ordered timeline of link events (outages, restorations,
// capacity renegotiations, delay shifts, loss changes and loss bursts)
// that the discrete-event loop applies to netem links at scheduled virtual
// times.
//
// The package also answers the analytic side of the same question: a
// timeline partitions a run into capacity epochs (every LinkDown / LinkUp
// / SetRate boundary starts a new one), and CapsAt reports the effective
// per-link capacities inside an epoch so the LP baseline can be re-solved
// piecewise — the optimality gap of a dynamic run is then measured against
// the optimum of the epoch that was actually in force, not against a
// topology that no longer exists.
package dynamics

import (
	"fmt"
	"sort"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// Kind enumerates the dynamic event types.
type Kind int

// Event kinds. LinkDown, LinkUp and SetRate change the capacity structure
// and therefore start a new LP epoch; SetDelay, SetLoss and LossBurst
// change packet dynamics but not the achievable-rate polytope.
const (
	// LinkDown takes both directions of a duplex link out of service.
	LinkDown Kind = iota
	// LinkUp restores a previously downed link.
	LinkUp
	// SetRate changes the capacity of both directions.
	SetRate
	// SetDelay changes the one-way propagation delay of both directions.
	SetDelay
	// SetLoss changes the random-loss probability of both directions.
	SetLoss
	// LossBurst raises the loss probability for a bounded window, then
	// restores the probability that was in force when the burst began.
	LossBurst
)

// kindNames are the canonical spellings, shared with the scenario JSON
// format.
var kindNames = map[Kind]string{
	LinkDown:  "link_down",
	LinkUp:    "link_up",
	SetRate:   "set_rate",
	SetDelay:  "set_delay",
	SetLoss:   "set_loss",
	LossBurst: "loss_burst",
}

// String returns the canonical (JSON) spelling of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a canonical spelling back to its Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("dynamics: unknown event type %q (want link_down, link_up, set_rate, set_delay, set_loss or loss_burst)", s)
}

// Event is one scheduled change to a duplex link, addressed by its node
// names like every other link override in the simulator. Only the
// parameter matching the Kind is meaningful.
type Event struct {
	// At is the virtual time the event fires.
	At time.Duration
	// Kind selects what changes.
	Kind Kind
	// A and B name the duplex link's endpoints.
	A, B string
	// Rate is the new capacity (SetRate).
	Rate unit.Rate
	// Delay is the new one-way propagation delay (SetDelay).
	Delay time.Duration
	// Loss is the new loss probability (SetLoss) or the in-burst
	// probability (LossBurst).
	Loss float64
	// Burst is the loss-burst window length (LossBurst).
	Burst time.Duration
}

// String renders the event for markers and reports, e.g.
// "2s link_down s-v1".
func (e Event) String() string {
	s := fmt.Sprintf("%v %s %s-%s", e.At, e.Kind, e.A, e.B)
	switch e.Kind {
	case SetRate:
		s += " " + e.Rate.String()
	case SetDelay:
		s += " " + e.Delay.String()
	case SetLoss:
		s += fmt.Sprintf(" p=%g", e.Loss)
	case LossBurst:
		s += fmt.Sprintf(" p=%g for %v", e.Loss, e.Burst)
	}
	return s
}

// capacityKind reports whether the kind changes the capacity structure
// (and therefore the LP baseline).
func capacityKind(k Kind) bool {
	return k == LinkDown || k == LinkUp || k == SetRate
}

// Timeline is a validated, time-ordered event sequence bound to one
// topology. Construct it with New; the zero value is an empty timeline.
type Timeline struct {
	events []Event
	// links holds the two directed link IDs of each event's duplex pair,
	// indexed like events.
	links [][2]topo.LinkID
}

// New validates the events against the graph and returns them as a
// timeline ordered by firing time (stable: same-time events keep their
// input order). Validation is exhaustive so a sweep can reject a broken
// timeline before burning any simulation time: unknown links, negative
// times, out-of-range parameters, down/up mismatches (LinkDown on a link
// that is already down, LinkUp on one that is not) and loss events landing
// inside an active loss burst (the burst's restore would silently clobber
// them) are all structural errors.
func New(g *topo.Graph, events []Event) (*Timeline, error) {
	tl := &Timeline{events: append([]Event(nil), events...)}
	sort.SliceStable(tl.events, func(i, j int) bool { return tl.events[i].At < tl.events[j].At })
	tl.links = make([][2]topo.LinkID, len(tl.events))
	down := make(map[[2]topo.LinkID]bool)
	burstEnd := make(map[[2]topo.LinkID]time.Duration)
	for i, e := range tl.events {
		pair, err := ValidateEvent(g, e)
		if err != nil {
			return nil, err
		}
		tl.links[i] = pair
		switch e.Kind {
		case LinkDown:
			if down[pair] {
				return nil, fmt.Errorf("dynamics: event %q: link is already down", e)
			}
			down[pair] = true
		case LinkUp:
			if !down[pair] {
				return nil, fmt.Errorf("dynamics: event %q: link is not down", e)
			}
			down[pair] = false
		}
		if e.Kind == SetLoss || e.Kind == LossBurst {
			// <= : the burst's restore fires exactly at the end instant
			// with a later loop sequence number, so an event landing there
			// would run first and be silently reverted.
			if end, ok := burstEnd[pair]; ok && e.At <= end {
				return nil, fmt.Errorf("dynamics: event %q fires inside an active loss burst (ends %v, restore included); the burst restore would clobber it", e, end)
			}
			if e.Kind == LossBurst {
				burstEnd[pair] = e.At + e.Burst
			}
		}
	}
	return tl, nil
}

// Magnitude bounds on event parameters. Values anywhere near these are
// certainly typos in millisecond-scale configurations — and bounding them
// keeps every duration and rate below 2^51, where the scenario format's
// float64 millisecond fields round-trip through nanoseconds (and Mbps
// through bits per second) exactly, so parse → build → re-emit stays a
// fixpoint for every accepted input.
const (
	// MaxEventTime bounds firing times and burst windows.
	MaxEventTime = 100 * time.Hour
	// MaxEventDelay bounds a set_delay target.
	MaxEventDelay = time.Hour
	// MaxEventRate bounds a set_rate target (1 Tbps).
	MaxEventRate = 1000 * unit.Gbps
)

// ValidateEvent checks one event in isolation — firing time, link
// existence, parameter ranges — and resolves its duplex pair. Cross-event
// rules (down/up pairing, burst overlaps) need the whole timeline and live
// in New.
func ValidateEvent(g *topo.Graph, e Event) ([2]topo.LinkID, error) {
	if e.At < 0 {
		return [2]topo.LinkID{}, fmt.Errorf("dynamics: event %q fires at negative time", e)
	}
	if e.At > MaxEventTime {
		return [2]topo.LinkID{}, fmt.Errorf("dynamics: event %q fires beyond %v", e, MaxEventTime)
	}
	pair, err := duplexIDs(g, e.A, e.B)
	if err != nil {
		return [2]topo.LinkID{}, fmt.Errorf("dynamics: event %q: %w", e, err)
	}
	switch e.Kind {
	case LinkDown, LinkUp:
	case SetRate:
		if e.Rate <= 0 {
			return pair, fmt.Errorf("dynamics: event %q: rate must be positive (use link_down for outages)", e)
		}
		if e.Rate > MaxEventRate {
			return pair, fmt.Errorf("dynamics: event %q: rate above %v", e, MaxEventRate)
		}
	case SetDelay:
		if e.Delay < 0 {
			return pair, fmt.Errorf("dynamics: event %q: negative delay", e)
		}
		if e.Delay > MaxEventDelay {
			return pair, fmt.Errorf("dynamics: event %q: delay above %v", e, MaxEventDelay)
		}
	case SetLoss:
		if e.Loss < 0 || e.Loss > 1 {
			return pair, fmt.Errorf("dynamics: event %q: loss probability out of [0,1]", e)
		}
	case LossBurst:
		if e.Loss <= 0 || e.Loss > 1 {
			return pair, fmt.Errorf("dynamics: event %q: burst loss probability out of (0,1]", e)
		}
		if e.Burst <= 0 {
			return pair, fmt.Errorf("dynamics: event %q: burst needs a positive duration", e)
		}
		if e.Burst > MaxEventTime {
			return pair, fmt.Errorf("dynamics: event %q: burst longer than %v", e, MaxEventTime)
		}
	default:
		return pair, fmt.Errorf("dynamics: event %q: unknown kind", e)
	}
	return pair, nil
}

// duplexIDs resolves both directions of the a-b link.
func duplexIDs(g *topo.Graph, a, b string) ([2]topo.LinkID, error) {
	na, ok := g.NodeByName(a)
	if !ok {
		return [2]topo.LinkID{}, fmt.Errorf("unknown node %q", a)
	}
	nb, ok := g.NodeByName(b)
	if !ok {
		return [2]topo.LinkID{}, fmt.Errorf("unknown node %q", b)
	}
	ab, ok := g.FindLink(na, nb)
	if !ok {
		return [2]topo.LinkID{}, fmt.Errorf("no link %s-%s", a, b)
	}
	ba, ok := g.FindLink(nb, na)
	if !ok {
		return [2]topo.LinkID{}, fmt.Errorf("no reverse link %s-%s", b, a)
	}
	// Normalised order so "s,v1" and "v1,s" name the same duplex pair in
	// the validation maps.
	if ba < ab {
		ab, ba = ba, ab
	}
	return [2]topo.LinkID{ab, ba}, nil
}

// Events returns the timeline in firing order. The slice is shared; do not
// modify it.
func (tl *Timeline) Events() []Event {
	if tl == nil {
		return nil
	}
	return tl.events
}

// Len returns the number of events.
func (tl *Timeline) Len() int {
	if tl == nil {
		return 0
	}
	return len(tl.events)
}

// EpochStarts returns the start times of the capacity epochs inside
// [0, horizon): 0 plus the distinct firing times of capacity-affecting
// events. Events at or past the horizon never take effect and open no
// epoch.
func (tl *Timeline) EpochStarts(horizon time.Duration) []time.Duration {
	starts := []time.Duration{0}
	if tl == nil {
		return starts
	}
	seen := map[time.Duration]bool{0: true}
	for _, e := range tl.events {
		if !capacityKind(e.Kind) || e.At >= horizon || seen[e.At] {
			continue
		}
		seen[e.At] = true
		starts = append(starts, e.At)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	return starts
}

// CapsAt returns the effective capacity in Mbps of every directed link
// touched by a capacity event at or before t; 0 means down. Links never
// touched are absent (their graph capacity stands). The result is a fresh
// map the caller owns.
func (tl *Timeline) CapsAt(t time.Duration, g *topo.Graph) map[topo.LinkID]float64 {
	if tl == nil {
		return nil
	}
	type state struct {
		mbps float64
		down bool
	}
	st := make(map[topo.LinkID]state)
	get := func(id topo.LinkID) state {
		if s, ok := st[id]; ok {
			return s
		}
		return state{mbps: g.Link(id).Rate.Mbit()}
	}
	for i, e := range tl.events {
		if e.At > t || !capacityKind(e.Kind) {
			continue
		}
		for _, id := range tl.links[i][:] {
			s := get(id)
			switch e.Kind {
			case LinkDown:
				s.down = true
			case LinkUp:
				s.down = false
			case SetRate:
				s.mbps = e.Rate.Mbit()
			}
			st[id] = s
		}
	}
	if len(st) == 0 {
		return nil
	}
	caps := make(map[topo.LinkID]float64, len(st))
	for id, s := range st {
		if s.down {
			caps[id] = 0
		} else {
			caps[id] = s.mbps
		}
	}
	return caps
}

// Schedule installs the timeline on the loop, mutating net's links at each
// event's firing time. Loss targets that have no RNG stream yet get one
// from lossRng before the simulation starts, in ascending directed-link-ID
// order, so runs stay bit-identical for a given seed regardless of how the
// timeline was written. The timeline must have been built against net's
// graph.
func (tl *Timeline) Schedule(loop *sim.Loop, net *netem.Network, lossRng func() *sim.Rand) {
	if tl.Len() == 0 {
		return
	}
	// Pre-install RNG streams for every loss-event target, sorted.
	need := make(map[topo.LinkID]bool)
	for i, e := range tl.events {
		if e.Kind != SetLoss && e.Kind != LossBurst {
			continue
		}
		for _, id := range tl.links[i][:] {
			if !net.Link(id).HasLossRng() {
				need[id] = true
			}
		}
	}
	ids := make([]topo.LinkID, 0, len(need))
	for id := range need {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	for _, id := range ids {
		net.Link(id).SetLoss(0, lossRng())
	}

	// One pre-bound apply struct per event, allocated in a single slice up
	// front: applying the timeline schedules no closures, so even
	// event-dense dynamic runs keep the loop's steady state allocation-free.
	apps := make([]applyEvent, len(tl.events))
	for i := range tl.events {
		apps[i] = applyEvent{tl: tl, loop: loop, net: net, idx: i}
		loop.AtCall(sim.Time(tl.events[i].At), &apps[i])
	}
}

// applyEvent is the pre-bound sim.Callback that fires one timeline event.
// A LossBurst needs a deferred restore per directed link; the two restore
// slots live inline so the burst schedules without allocating either.
type applyEvent struct {
	tl      *Timeline
	loop    *sim.Loop
	net     *netem.Network
	idx     int
	restore [2]burstRestore
}

// Run implements sim.Callback.
func (a *applyEvent) Run(sim.Time) {
	e := a.tl.events[a.idx]
	for k, id := range a.tl.links[a.idx][:] {
		l := a.net.Link(id)
		switch e.Kind {
		case LinkDown:
			l.SetDown()
		case LinkUp:
			l.SetUp()
		case SetRate:
			l.SetRate(e.Rate)
		case SetDelay:
			l.SetDelay(e.Delay)
		case SetLoss:
			l.SetLossProb(e.Loss)
		case LossBurst:
			r := &a.restore[k]
			r.link = l
			r.prev = l.LossProb()
			l.SetLossProb(e.Loss)
			a.loop.ScheduleCall(e.Burst, r)
		}
	}
}

// burstRestore reinstates the loss probability in force when its burst
// began. prev is captured at burst-fire time, not at scheduling time, so
// an earlier set_loss is honoured exactly as before.
type burstRestore struct {
	link *netem.Link
	prev float64
}

// Run implements sim.Callback.
func (b *burstRestore) Run(sim.Time) { b.link.SetLossProb(b.prev) }
