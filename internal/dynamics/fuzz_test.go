package dynamics

import (
	"encoding/binary"
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// fuzzNodeNames are the paper graph's nodes plus one unknown name, so
// decoded events exercise both resolution paths.
var fuzzNodeNames = []string{"s", "v1", "v2", "v3", "v4", "d", "zz"}

// decodeEvents turns raw fuzz bytes into an event list: each 8-byte
// record is (kind, nodeA, nodeB, at:int16 ms, value:int16, extra). Values
// deliberately range over invalid territory (negative times, zero rates,
// probabilities above 1, unknown kinds and nodes) — validation must
// reject them with an error, never a panic.
func decodeEvents(data []byte) []Event {
	var evs []Event
	for len(data) >= 8 {
		rec := data[:8]
		data = data[8:]
		at := int16(binary.LittleEndian.Uint16(rec[3:5]))
		val := int16(binary.LittleEndian.Uint16(rec[5:7]))
		e := Event{
			Kind: Kind(int(rec[0]%8) - 1), // -1 and 6 are unknown kinds
			A:    fuzzNodeNames[int(rec[1])%len(fuzzNodeNames)],
			B:    fuzzNodeNames[int(rec[2])%len(fuzzNodeNames)],
			At:   time.Duration(at) * time.Millisecond,
		}
		switch e.Kind {
		case SetRate:
			e.Rate = unit.Rate(val) * unit.Mbps
		case SetDelay:
			e.Delay = time.Duration(val) * time.Millisecond
		case SetLoss:
			e.Loss = float64(val) / 8192
		case LossBurst:
			e.Loss = float64(rec[7]) / 128
			e.Burst = time.Duration(val) * time.Millisecond
		}
		evs = append(evs, e)
	}
	return evs
}

// FuzzTimelineValidate asserts the dynamics contract on arbitrary event
// lists: validation never panics, and any timeline it accepts is
// schedulable — installing it on a live network and running the loop to
// the horizon must not panic either, and the epoch machinery must agree
// with it.
func FuzzTimelineValidate(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 0, 1, 10, 0, 0}) // set_rate s-v1 at 0
	f.Add([]byte{
		0, 0, 1, 0xE8, 0x03, 0, 0, 0, // link_down s-v1 at 1000ms
		1, 0, 1, 0xD0, 0x07, 0, 0, 0, // link_up s-v1 at 2000ms
		5, 3, 4, 0xF4, 0x01, 100, 0, 50, // loss_burst v3-v4 at 500ms
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		pn := topo.Paper()
		evs := decodeEvents(data)
		tl, err := New(pn.Graph, evs)
		if err != nil {
			return
		}
		// Accepted ⇒ schedulable: animate the graph and let every event
		// fire. Any panic here is a validation gap.
		loop := sim.NewLoop()
		net, err := netem.New(loop, pn.Graph, route.NewTagTable(pn.Graph))
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(1)
		tl.Schedule(loop, net, rng.Fork)
		loop.SetEventLimit(1 << 20)
		horizon := 40 * time.Second
		if err := loop.RunUntil(sim.Time(horizon)); err != nil {
			t.Fatalf("accepted timeline failed to run: %v", err)
		}
		// The epoch machinery must be total over accepted timelines.
		starts := tl.EpochStarts(horizon)
		if len(starts) == 0 || starts[0] != 0 {
			t.Fatalf("EpochStarts = %v, want leading 0", starts)
		}
		for _, st := range starts {
			tl.CapsAt(st, pn.Graph)
		}
	})
}
