package dynamics

import (
	"strings"
	"testing"
	"time"

	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// grid builds s - v1 - d with a side link s - v2 - d.
func testGraph() *topo.Graph {
	g := topo.New()
	s, v1, v2, d := g.AddNode("s"), g.AddNode("v1"), g.AddNode("v2"), g.AddNode("d")
	g.AddDuplex(s, v1, 40*unit.Mbps, time.Millisecond, 0)
	g.AddDuplex(v1, d, 100*unit.Mbps, time.Millisecond, 0)
	g.AddDuplex(s, v2, 30*unit.Mbps, time.Millisecond, 0)
	g.AddDuplex(v2, d, 100*unit.Mbps, time.Millisecond, 0)
	return g
}

func TestTimelineSortsAndValidates(t *testing.T) {
	g := testGraph()
	tl, err := New(g, []Event{
		{At: 3 * time.Second, Kind: LinkUp, A: "s", B: "v1"},
		{At: time.Second, Kind: SetRate, A: "s", B: "v2", Rate: 10 * unit.Mbps},
		{At: 2 * time.Second, Kind: LinkDown, A: "s", B: "v1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := tl.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Kind != SetRate || evs[1].Kind != LinkDown || evs[2].Kind != LinkUp {
		t.Fatalf("not time-ordered: %v", evs)
	}
}

func TestTimelineRejectsBadEvents(t *testing.T) {
	g := testGraph()
	cases := map[string][]Event{
		"negative time": {{At: -time.Second, Kind: LinkDown, A: "s", B: "v1"}},
		"unknown node":  {{At: time.Second, Kind: LinkDown, A: "s", B: "zzz"}},
		"no such link":  {{At: time.Second, Kind: LinkDown, A: "s", B: "d"}},
		"zero rate":     {{At: time.Second, Kind: SetRate, A: "s", B: "v1"}},
		"neg delay":     {{At: time.Second, Kind: SetDelay, A: "s", B: "v1", Delay: -time.Millisecond}},
		"loss > 1":      {{At: time.Second, Kind: SetLoss, A: "s", B: "v1", Loss: 1.5}},
		"burst no len":  {{At: time.Second, Kind: LossBurst, A: "s", B: "v1", Loss: 0.5}},
		"double down": {
			{At: time.Second, Kind: LinkDown, A: "s", B: "v1"},
			{At: 2 * time.Second, Kind: LinkDown, A: "v1", B: "s"},
		},
		"up while up": {{At: time.Second, Kind: LinkUp, A: "s", B: "v1"}},
		"loss inside burst": {
			{At: time.Second, Kind: LossBurst, A: "s", B: "v1", Loss: 0.5, Burst: time.Second},
			{At: 1500 * time.Millisecond, Kind: SetLoss, A: "s", B: "v1", Loss: 0.1},
		},
		// The restore fires exactly at burst end with a later sequence
		// number, so an event at that instant would be silently reverted.
		"loss at burst end": {
			{At: time.Second, Kind: LossBurst, A: "s", B: "v1", Loss: 0.5, Burst: time.Second},
			{At: 2 * time.Second, Kind: SetLoss, A: "s", B: "v1", Loss: 0.1},
		},
		"back-to-back bursts": {
			{At: time.Second, Kind: LossBurst, A: "s", B: "v1", Loss: 0.5, Burst: time.Second},
			{At: 2 * time.Second, Kind: LossBurst, A: "s", B: "v1", Loss: 0.3, Burst: time.Second},
		},
	}
	for name, evs := range cases {
		if _, err := New(g, evs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestEpochStartsAndCaps(t *testing.T) {
	g := testGraph()
	tl, err := New(g, []Event{
		{At: 2 * time.Second, Kind: LinkDown, A: "s", B: "v1"},
		{At: 2 * time.Second, Kind: SetLoss, A: "s", B: "v2", Loss: 0.01}, // no epoch
		{At: 5 * time.Second, Kind: LinkUp, A: "s", B: "v1"},
		{At: 5 * time.Second, Kind: SetRate, A: "s", B: "v2", Rate: 10 * unit.Mbps},
		{At: 9 * time.Second, Kind: SetRate, A: "s", B: "v2", Rate: 20 * unit.Mbps}, // past horizon
	})
	if err != nil {
		t.Fatal(err)
	}
	starts := tl.EpochStarts(8 * time.Second)
	want := []time.Duration{0, 2 * time.Second, 5 * time.Second}
	if len(starts) != len(want) {
		t.Fatalf("starts = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts = %v, want %v", starts, want)
		}
	}

	// Epoch 0: untouched.
	if caps := tl.CapsAt(0, g); caps != nil {
		t.Fatalf("caps at 0 = %v, want none", caps)
	}
	// Epoch at 2s: s-v1 down in both directions.
	caps := tl.CapsAt(2*time.Second, g)
	sv1, _ := g.FindLink(0, 1)
	v1s, _ := g.FindLink(1, 0)
	if caps[sv1] != 0 || caps[v1s] != 0 {
		t.Fatalf("caps at 2s = %v, want s-v1 down", caps)
	}
	// Epoch at 5s: s-v1 restored to its graph rate, s-v2 renegotiated.
	caps = tl.CapsAt(5*time.Second, g)
	if caps[sv1] != 40 {
		t.Fatalf("restored capacity = %v, want 40", caps[sv1])
	}
	sv2, _ := g.FindLink(0, 2)
	if caps[sv2] != 10 {
		t.Fatalf("renegotiated capacity = %v, want 10", caps[sv2])
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 2 * time.Second, Kind: SetRate, A: "s", B: "v1", Rate: 20 * unit.Mbps}
	if got := e.String(); !strings.Contains(got, "set_rate") || !strings.Contains(got, "20Mbps") {
		t.Fatalf("String() = %q", got)
	}
	if _, err := ParseKind("link_down"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseKind("linkdown"); err == nil {
		t.Fatal("bad spelling accepted")
	}
}
