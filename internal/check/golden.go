package check

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Golden is a recorded hash corpus: the canonical Result hash of each of
// the first len(Hashes) generated scenarios for one base seed. A corpus
// recorded before a performance refactor locks the refactor end to end —
// any behavioural drift in the kernel, the network model or the
// measurement pipeline shows up as a hash mismatch on replay.
type Golden struct {
	// Seed is the base seed; scenario i uses SpecSeed(Seed, i).
	Seed int64
	// Hashes[i] is the full canonical Result hash of scenario i.
	Hashes []string
}

// WriteGolden renders a corpus in the golden file format: comment header,
// a "seed N" line, then one "index hash" line per scenario. The output is
// deterministic byte for byte.
func WriteGolden(w io.Writer, g Golden) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# simcheck golden hash corpus: %d scenarios, base seed %d.\n", len(g.Hashes), g.Seed)
	fmt.Fprintf(bw, "# Regenerate (only when a simulation-behaviour change is intended):\n")
	fmt.Fprintf(bw, "#   go run ./cmd/simcheck -n %d -seed %d -write-golden <path>\n", len(g.Hashes), g.Seed)
	fmt.Fprintf(bw, "seed %d\n", g.Seed)
	for i, h := range g.Hashes {
		fmt.Fprintf(bw, "%d %s\n", i, h)
	}
	return bw.Flush()
}

// LoadGolden parses a golden corpus. It is strict: the seed line must
// precede the hashes, indices must be dense and ascending from 0, and
// hashes must be non-empty — a truncated or hand-mangled corpus fails
// loudly instead of silently weakening the differential test.
func LoadGolden(r io.Reader) (Golden, error) {
	var g Golden
	seenSeed := false
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !seenSeed {
			var err error
			rest, ok := strings.CutPrefix(text, "seed ")
			if !ok {
				return Golden{}, fmt.Errorf("check: golden line %d: want \"seed N\" before hashes, got %q", line, text)
			}
			g.Seed, err = strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return Golden{}, fmt.Errorf("check: golden line %d: bad seed: %v", line, err)
			}
			seenSeed = true
			continue
		}
		idxStr, hash, ok := strings.Cut(text, " ")
		if !ok || hash == "" {
			return Golden{}, fmt.Errorf("check: golden line %d: want \"index hash\", got %q", line, text)
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil {
			return Golden{}, fmt.Errorf("check: golden line %d: bad index: %v", line, err)
		}
		if idx != len(g.Hashes) {
			return Golden{}, fmt.Errorf("check: golden line %d: index %d out of order (want %d)", line, idx, len(g.Hashes))
		}
		g.Hashes = append(g.Hashes, strings.TrimSpace(hash))
	}
	if err := sc.Err(); err != nil {
		return Golden{}, err
	}
	if !seenSeed {
		return Golden{}, fmt.Errorf("check: golden corpus has no seed line")
	}
	if len(g.Hashes) == 0 {
		return Golden{}, fmt.Errorf("check: golden corpus has no hashes")
	}
	return g, nil
}
