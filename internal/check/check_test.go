package check

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// lineNet builds a -> b -> c with a tag-1 route plus reverse, and a
// payload sink at c.
func lineNet(t *testing.T, rate unit.Rate, delay time.Duration) (*sim.Loop, *netem.Network, *netem.Node, packet.Addr, packet.Addr) {
	t.Helper()
	g := topo.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b, rate, delay, 0)
	bc := g.AddLink(b, c, rate, delay, 0)
	g.AddLink(c, b, rate, delay, 0)
	g.AddLink(b, a, rate, delay, 0)

	loop := sim.NewLoop()
	tt := route.NewTagTable(g)
	net, err := netem.New(loop, g, tt)
	if err != nil {
		t.Fatal(err)
	}
	aAddr, cAddr := net.AssignAddr(a), net.AssignAddr(c)
	fwd := topo.Path{Nodes: []topo.NodeID{a, b, c}, Links: []topo.LinkID{ab, bc}}
	if err := tt.AddPath(cAddr, 1, fwd); err != nil {
		t.Fatal(err)
	}
	rev, err := topo.ReversePath(g, fwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.AddPath(aAddr, 1, rev); err != nil {
		t.Fatal(err)
	}
	if err := net.Node(c).Register(9001, netem.HandlerFunc(func(*packet.Packet) {})); err != nil {
		t.Fatal(err)
	}
	return loop, net, net.Node(a), aAddr, cAddr
}

func dataPkt(src, dst packet.Addr, payload int) *packet.Packet {
	return &packet.Packet{
		IP:         packet.IPv4{Tag: 1, Proto: packet.ProtoUDP, Src: src, Dst: dst},
		UDP:        &packet.UDP{SrcPort: 9000, DstPort: 9001},
		PayloadLen: payload,
	}
}

func staticEpochs(g *topo.Graph, dur time.Duration) []EpochCaps {
	return BuildEpochs(g, nil, dur, nil)
}

func TestOracleCleanRun(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 200*time.Millisecond))
	for i := 0; i < 50; i++ {
		loop.Schedule(time.Duration(i)*time.Millisecond, func() {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		})
	}
	if err := loop.RunUntil(sim.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if v := o.Violations(); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}
	if o.sentTotal != 50 || o.deliveredTotal != 50 {
		t.Fatalf("sent %d delivered %d, want 50/50", o.sentTotal, o.deliveredTotal)
	}
}

// A run cut off mid-flight must still conserve: packets in queues, on the
// wire, or mid-serialisation are the residual.
func TestOracleConservesMidFlight(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 1*unit.Mbps, 5*time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 10*time.Millisecond))
	loop.Schedule(0, func() {
		for i := 0; i < 40; i++ {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		}
	})
	// 40 KB at 1 Mbps takes 320 ms; stop after 10 ms with most of it
	// queued, one frame serialising and possibly one propagating.
	if err := loop.RunUntil(sim.Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if v := o.Violations(); len(v) != 0 {
		t.Fatalf("mid-flight cutoff reported violations: %v", v)
	}
	if o.deliveredTotal == o.sentTotal {
		t.Fatal("test wants packets still in flight at the deadline")
	}
}

// SetDown drains queues and cuts the serialising frame; every drained
// packet must be accounted as a drop, keeping conservation exact.
func TestOracleConservesAcrossLinkDownDrain(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 1*unit.Mbps, time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 100*time.Millisecond))
	loop.Schedule(0, func() {
		for i := 0; i < 30; i++ {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		}
	})
	loop.Schedule(20*time.Millisecond, func() { net.Link(0).SetDown() })
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if v := o.Violations(); len(v) != 0 {
		t.Fatalf("link_down drain reported violations: %v", v)
	}
	if o.droppedTotal == 0 {
		t.Fatal("test wants the drain to drop packets")
	}
}

func TestOracleFlagsTamperedAccounting(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 100*time.Millisecond))
	loop.Schedule(0, func() { src.Send(dataPkt(aAddr, cAddr, 1000)) })
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	o.deliveredTotal-- // simulate a lost delivery
	if v := o.Violations(); len(v) == 0 {
		t.Fatal("oracle missed a conservation deficit")
	}
}

// An epoch table claiming less capacity than the link actually moved must
// trip the capacity invariant — the same check that would catch a link
// transmitting faster than its rate.
func TestOracleFlagsCapacityExcess(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	epochs := staticEpochs(net.Graph, 100*time.Millisecond)
	for i := range epochs[0].Mbps {
		epochs[0].Mbps[i] = 0.001 // claim ~12.5 bytes of budget
	}
	o := NewOracle(net, epochs)
	loop.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		}
	})
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if v := o.Violations(); len(v) == 0 {
		t.Fatal("oracle missed a capacity excess")
	}
}

func TestOracleFlagsReordering(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 100*time.Millisecond))
	loop.Schedule(0, func() {
		src.Send(dataPkt(aAddr, cAddr, 1000))
		src.Send(dataPkt(aAddr, cAddr, 1000))
	})
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(o.fifo) != 0 {
		t.Fatalf("clean run logged fifo violations: %v", o.fifo)
	}
	// Replay an arrival out of order against the audit queue directly.
	l := net.Link(0)
	o.pending[0] = []uint64{7, 8}
	o.OnArrive(l, &packet.Packet{UID: 8})
	if len(o.fifo) == 0 {
		t.Fatal("oracle missed a reordered arrival")
	}
}

func TestSpecDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := NewSpec(seed), NewSpec(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: NewSpec not deterministic", seed)
		}
		if !bytes.Equal(a.Scenario, b.Scenario) {
			t.Fatalf("seed %d: scenario JSON differs", seed)
		}
	}
}

func TestSpecSeedDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 0; i < 1000; i++ {
		s := SpecSeed(1, i)
		if s < 0 {
			t.Fatalf("SpecSeed(1, %d) = %d, want non-negative", i, s)
		}
		if seen[s] {
			t.Fatalf("SpecSeed(1, %d) collides", i)
		}
		seen[s] = true
	}
	if SpecSeed(1, 0) == SpecSeed(2, 0) {
		t.Fatal("different bases yield the same first seed")
	}
}

func TestSpecShapes(t *testing.T) {
	// The generator must exercise the whole vocabulary over enough seeds:
	// every CC, every scheduler, dynamic and static timelines.
	ccs := make(map[string]bool)
	scheds := make(map[string]bool)
	withEvents, static := 0, 0
	for i := 0; i < 200; i++ {
		sp := NewSpec(SpecSeed(42, i))
		ccs[sp.CC] = true
		scheds[sp.Scheduler] = true
		if bytes.Contains(sp.Scenario, []byte(`"events"`)) {
			withEvents++
		} else {
			static++
		}
		if len(sp.Order) == 0 {
			t.Fatalf("spec %d: empty subflow order", i)
		}
		if sp.Duration <= 0 {
			t.Fatalf("spec %d: non-positive duration", i)
		}
	}
	if len(ccs) != len(genCCs) {
		t.Fatalf("200 specs cover %d of %d CCs", len(ccs), len(genCCs))
	}
	if len(scheds) != len(genScheds) {
		t.Fatalf("200 specs cover %d of %d schedulers", len(scheds), len(genScheds))
	}
	if withEvents == 0 || static == 0 {
		t.Fatalf("want both dynamic and static specs, got %d/%d", withEvents, static)
	}
}
