package check

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/telemetry"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// lineNet builds a -> b -> c with a tag-1 route plus reverse, and a
// payload sink at c.
func lineNet(t *testing.T, rate unit.Rate, delay time.Duration) (*sim.Loop, *netem.Network, *netem.Node, packet.Addr, packet.Addr) {
	t.Helper()
	g := topo.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab := g.AddLink(a, b, rate, delay, 0)
	bc := g.AddLink(b, c, rate, delay, 0)
	g.AddLink(c, b, rate, delay, 0)
	g.AddLink(b, a, rate, delay, 0)

	loop := sim.NewLoop()
	tt := route.NewTagTable(g)
	net, err := netem.New(loop, g, tt)
	if err != nil {
		t.Fatal(err)
	}
	aAddr, cAddr := net.AssignAddr(a), net.AssignAddr(c)
	fwd := topo.Path{Nodes: []topo.NodeID{a, b, c}, Links: []topo.LinkID{ab, bc}}
	if err := tt.AddPath(cAddr, 1, fwd); err != nil {
		t.Fatal(err)
	}
	rev, err := topo.ReversePath(g, fwd)
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.AddPath(aAddr, 1, rev); err != nil {
		t.Fatal(err)
	}
	if err := net.Node(c).Register(9001, netem.HandlerFunc(func(*packet.Packet) {})); err != nil {
		t.Fatal(err)
	}
	return loop, net, net.Node(a), aAddr, cAddr
}

func dataPkt(src, dst packet.Addr, payload int) *packet.Packet {
	return &packet.Packet{
		IP:         packet.IPv4{Tag: 1, Proto: packet.ProtoUDP, Src: src, Dst: dst},
		UDP:        &packet.UDP{SrcPort: 9000, DstPort: 9001},
		PayloadLen: payload,
	}
}

func staticEpochs(g *topo.Graph, dur time.Duration) []EpochCaps {
	return BuildEpochs(g, nil, dur, nil)
}

func TestOracleCleanRun(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 200*time.Millisecond))
	for i := 0; i < 50; i++ {
		loop.Schedule(time.Duration(i)*time.Millisecond, func() {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		})
	}
	if err := loop.RunUntil(sim.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if v := o.Violations(); len(v) != 0 {
		t.Fatalf("clean run reported violations: %v", v)
	}
	if o.sentTotal != 50 || o.deliveredTotal != 50 {
		t.Fatalf("sent %d delivered %d, want 50/50", o.sentTotal, o.deliveredTotal)
	}
}

// A run cut off mid-flight must still conserve: packets in queues, on the
// wire, or mid-serialisation are the residual.
func TestOracleConservesMidFlight(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 1*unit.Mbps, 5*time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 10*time.Millisecond))
	loop.Schedule(0, func() {
		for i := 0; i < 40; i++ {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		}
	})
	// 40 KB at 1 Mbps takes 320 ms; stop after 10 ms with most of it
	// queued, one frame serialising and possibly one propagating.
	if err := loop.RunUntil(sim.Time(10 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if v := o.Violations(); len(v) != 0 {
		t.Fatalf("mid-flight cutoff reported violations: %v", v)
	}
	if o.deliveredTotal == o.sentTotal {
		t.Fatal("test wants packets still in flight at the deadline")
	}
}

// SetDown drains queues and cuts the serialising frame; every drained
// packet must be accounted as a drop, keeping conservation exact.
func TestOracleConservesAcrossLinkDownDrain(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 1*unit.Mbps, time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 100*time.Millisecond))
	loop.Schedule(0, func() {
		for i := 0; i < 30; i++ {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		}
	})
	loop.Schedule(20*time.Millisecond, func() { net.Link(0).SetDown() })
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if v := o.Violations(); len(v) != 0 {
		t.Fatalf("link_down drain reported violations: %v", v)
	}
	if o.droppedTotal == 0 {
		t.Fatal("test wants the drain to drop packets")
	}
}

func TestOracleFlagsTamperedAccounting(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 100*time.Millisecond))
	loop.Schedule(0, func() { src.Send(dataPkt(aAddr, cAddr, 1000)) })
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	o.deliveredTotal-- // simulate a lost delivery
	if v := o.Violations(); len(v) == 0 {
		t.Fatal("oracle missed a conservation deficit")
	}
}

// An epoch table claiming less capacity than the link actually moved must
// trip the capacity invariant — the same check that would catch a link
// transmitting faster than its rate.
func TestOracleFlagsCapacityExcess(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	epochs := staticEpochs(net.Graph, 100*time.Millisecond)
	for i := range epochs[0].Mbps {
		epochs[0].Mbps[i] = 0.001 // claim ~12.5 bytes of budget
	}
	o := NewOracle(net, epochs)
	loop.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		}
	})
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if v := o.Violations(); len(v) == 0 {
		t.Fatal("oracle missed a capacity excess")
	}
}

func TestOracleFlagsReordering(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	o := NewOracle(net, staticEpochs(net.Graph, 100*time.Millisecond))
	loop.Schedule(0, func() {
		src.Send(dataPkt(aAddr, cAddr, 1000))
		src.Send(dataPkt(aAddr, cAddr, 1000))
	})
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if len(o.fifo) != 0 {
		t.Fatalf("clean run logged fifo violations: %v", o.fifo)
	}
	// Replay an arrival out of order against the audit queue directly.
	l := net.Link(0)
	o.pending[0] = []uint64{7, 8}
	o.OnArrive(l, &packet.Packet{UID: 8})
	if len(o.fifo) == 0 {
		t.Fatal("oracle missed a reordered arrival")
	}
}

// TestFlightRecorderNamesOffendingLink is the failure-forensics
// acceptance path: a run whose invariant oracle trips (here a seeded
// capacity-budget tamper on link a->b) must leave a flight-recorder tail
// whose NDJSON events name the offending link, alongside a violation
// message naming the same link.
func TestFlightRecorderNamesOffendingLink(t *testing.T) {
	loop, net, src, aAddr, cAddr := lineNet(t, 10*unit.Mbps, time.Millisecond)
	epochs := staticEpochs(net.Graph, 100*time.Millisecond)
	for i := range epochs[0].Mbps {
		epochs[0].Mbps[i] = 0.001 // claim ~12.5 bytes of budget
	}
	o := NewOracle(net, epochs)
	rec := telemetry.NewRecorder(64)
	rec.Attach(net)
	loop.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			src.Send(dataPkt(aAddr, cAddr, 1000))
		}
	})
	if err := loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	offender := net.Link(0).Name()
	violations := o.Violations()
	if len(violations) == 0 {
		t.Fatal("tampered capacity budget tripped no invariant")
	}
	named := false
	for _, msg := range violations {
		if strings.Contains(msg, offender) {
			named = true
		}
	}
	if !named {
		t.Fatalf("no violation names link %q: %v", offender, violations)
	}

	var buf bytes.Buffer
	if err := rec.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("flight recorder retained nothing")
	}
	onLink := 0
	for i, raw := range lines {
		var e struct {
			Kind  string `json:"kind"`
			Where string `json:"where"`
		}
		if err := json.Unmarshal([]byte(raw), &e); err != nil {
			t.Fatalf("tail line %d: %v: %s", i, err, raw)
		}
		if e.Where == offender && (e.Kind == "transmit" || e.Kind == "arrive") {
			onLink++
		}
	}
	if onLink == 0 {
		t.Fatalf("flight tail never names offending link %q:\n%s", offender, buf.String())
	}
}

func TestSpecDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, b := NewSpec(seed), NewSpec(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: NewSpec not deterministic", seed)
		}
		if !bytes.Equal(a.Scenario, b.Scenario) {
			t.Fatalf("seed %d: scenario JSON differs", seed)
		}
	}
}

func TestSpecSeedDistinct(t *testing.T) {
	// Determinism and distinctness over a 10k-index window, for two
	// bases: batch sharding assumes spec i is a pure function of
	// (base, i) and that no two indices alias.
	for _, base := range []int64{1, 2} {
		seen := make(map[int64]int)
		for i := 0; i < 10_000; i++ {
			s := SpecSeed(base, i)
			if s < 0 {
				t.Fatalf("SpecSeed(%d, %d) = %d, want non-negative", base, i, s)
			}
			if s != SpecSeed(base, i) {
				t.Fatalf("SpecSeed(%d, %d) not deterministic", base, i)
			}
			if j, dup := seen[s]; dup {
				t.Fatalf("SpecSeed(%d, %d) collides with index %d", base, i, j)
			}
			seen[s] = i
		}
	}
	if SpecSeed(1, 0) == SpecSeed(2, 0) {
		t.Fatal("different bases yield the same first seed")
	}
}

// epochGraph is a two-link line for BuildEpochs boundary cases.
func epochGraph() *topo.Graph {
	g := topo.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	g.AddLink(a, b, 10*unit.Mbps, time.Millisecond, 0)
	g.AddLink(b, c, 20*unit.Mbps, time.Millisecond, 0)
	return g
}

func TestBuildEpochsBoundaries(t *testing.T) {
	g := epochGraph()
	const dur = 100 * time.Millisecond
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	cases := []struct {
		name   string
		starts []time.Duration
		caps   func(time.Duration) map[topo.LinkID]float64
		want   [][2]time.Duration // expected (Start, End) per epoch
	}{
		{"no starts means one whole-run epoch", nil, nil,
			[][2]time.Duration{{0, dur}}},
		{"event at t=0 does not split the first epoch",
			[]time.Duration{0}, nil,
			[][2]time.Duration{{0, dur}}},
		{"event exactly at duration closes a zero-width epoch",
			[]time.Duration{0, dur}, nil,
			[][2]time.Duration{{0, dur}, {dur, dur}}},
		{"adjacent equal timestamps yield a zero-width middle epoch",
			[]time.Duration{0, ms(50), ms(50)}, nil,
			[][2]time.Duration{{0, ms(50)}, {ms(50), ms(50)}, {ms(50), dur}}},
	}
	for _, tc := range cases {
		epochs := BuildEpochs(g, tc.starts, dur, tc.caps)
		if len(epochs) != len(tc.want) {
			t.Fatalf("%s: %d epochs, want %d", tc.name, len(epochs), len(tc.want))
		}
		for i, ep := range epochs {
			if ep.Start != tc.want[i][0] || ep.End != tc.want[i][1] {
				t.Fatalf("%s: epoch %d = [%v,%v), want [%v,%v)",
					tc.name, i, ep.Start, ep.End, tc.want[i][0], tc.want[i][1])
			}
			if len(ep.Mbps) != g.NumLinks() {
				t.Fatalf("%s: epoch %d carries %d rates, want one per directed link (%d)",
					tc.name, i, len(ep.Mbps), g.NumLinks())
			}
		}
		// Epochs must tile [0, duration) without gaps: each epoch's end is
		// the next one's start.
		for i := 1; i < len(epochs); i++ {
			if epochs[i].Start != epochs[i-1].End {
				t.Fatalf("%s: gap between epoch %d and %d", tc.name, i-1, i)
			}
		}
	}
}

func TestBuildEpochsCapsOverride(t *testing.T) {
	g := epochGraph()
	const dur = 100 * time.Millisecond
	starts := []time.Duration{0, 50 * time.Millisecond}
	caps := func(start time.Duration) map[topo.LinkID]float64 {
		if start == 0 {
			return map[topo.LinkID]float64{0: 2.5} // override from t=0
		}
		return map[topo.LinkID]float64{0: 0} // link down in the second epoch
	}
	epochs := BuildEpochs(g, starts, dur, caps)
	if epochs[0].Mbps[0] != 2.5 || epochs[1].Mbps[0] != 0 {
		t.Fatalf("link 0 rates = %v / %v, want 2.5 then 0", epochs[0].Mbps[0], epochs[1].Mbps[0])
	}
	// The unoverridden link keeps its graph rate in both epochs.
	if epochs[0].Mbps[1] != 20 || epochs[1].Mbps[1] != 20 {
		t.Fatalf("link 1 rates = %v / %v, want 20 in both epochs", epochs[0].Mbps[1], epochs[1].Mbps[1])
	}
}

func TestSpecShapes(t *testing.T) {
	// The generator must exercise the whole vocabulary over enough seeds:
	// every CC, every scheduler, dynamic and static timelines.
	ccs := make(map[string]bool)
	scheds := make(map[string]bool)
	withEvents, static := 0, 0
	for i := 0; i < 200; i++ {
		sp := NewSpec(SpecSeed(42, i))
		ccs[sp.CC] = true
		scheds[sp.Scheduler] = true
		if bytes.Contains(sp.Scenario, []byte(`"events"`)) {
			withEvents++
		} else {
			static++
		}
		if len(sp.Order) == 0 {
			t.Fatalf("spec %d: empty subflow order", i)
		}
		if sp.Duration <= 0 {
			t.Fatalf("spec %d: non-positive duration", i)
		}
	}
	if len(ccs) != len(genCCs) {
		t.Fatalf("200 specs cover %d of %d CCs", len(ccs), len(genCCs))
	}
	if len(scheds) != len(genScheds) {
		t.Fatalf("200 specs cover %d of %d schedulers", len(scheds), len(genScheds))
	}
	if withEvents == 0 || static == 0 {
		t.Fatalf("want both dynamic and static specs, got %d/%d", withEvents, static)
	}
}
