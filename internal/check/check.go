// Package check is the simulator's correctness harness: a randomized
// scenario generator (Gen) and an invariant oracle (Oracle) that together
// turn any run into a self-checking experiment.
//
// The oracle attaches to the engine's tap points and audits machine-
// checkable properties the packet-level model must satisfy regardless of
// topology, congestion control or event timeline:
//
//   - packet conservation, per link: every packet offered to a transmit
//     queue is eventually transmitted or dropped, or still sits in the
//     queue / mid-serialisation when the run ends — including link_down
//     drains and frames cut mid-serialisation;
//   - packet conservation, per flow and network-wide: every originated
//     packet is delivered or dropped exactly once, or still in flight;
//   - capacity, per epoch: the wire bytes crossing each directed link
//     inside one capacity epoch never exceed the epoch's rate × time
//     budget (plus a small boundary/rounding slack);
//   - FIFO: packets arrive at a link's far node in transmit order, even
//     across runtime delay changes (SetDelay must never reorder).
//
// Optimality-gap and replay-determinism invariants need run-level results
// (the LP baselines, the canonical Result hash) and are asserted by the
// harness that embeds the oracle (mptcpsim.Run and cmd/simcheck).
package check

import (
	"fmt"
	"sort"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// EpochCaps describes one capacity epoch of a run: its time window and
// the effective rate of every directed link inside it (0 = down). A
// static run has exactly one epoch spanning the whole run.
type EpochCaps struct {
	Start, End time.Duration
	// Mbps is indexed by directed topo.LinkID.
	Mbps []float64
}

// Oracle observes one simulation run through the engine's tap points and
// checks conservation, capacity and ordering invariants at the end.
// Attach it with netem.Network.AttachTap before traffic starts; it only
// observes and never schedules events, so an instrumented run is
// bit-identical to an uninstrumented one.
type Oracle struct {
	net    *netem.Network
	epochs []EpochCaps

	// Per-flow accounting, keyed by packet tag.
	sent      map[packet.Tag]uint64
	delivered map[packet.Tag]uint64
	dropped   map[packet.Tag]uint64
	// Network-wide totals of the same three events.
	sentTotal, deliveredTotal, droppedTotal uint64

	// pending holds, per directed link, the UIDs transmitted but not yet
	// arrived, in transmit order — the FIFO audit queue.
	pending [][]uint64
	// fifo records ordering violations as they happen.
	fifo []string

	// txBytes and txPkts count wire bytes/packets per [link][epoch].
	txBytes  [][]float64
	txPkts   [][]uint64
	epochIdx int
	// maxPkt is the largest wire size observed, for boundary slack.
	maxPkt unit.ByteSize
}

var (
	_ netem.Tap        = (*Oracle)(nil)
	_ netem.SendTap    = (*Oracle)(nil)
	_ netem.ArrivalTap = (*Oracle)(nil)
)

// NewOracle attaches a fresh oracle to net. The epochs must cover
// [0, duration) in ascending order and carry one rate per directed link;
// BuildEpochs assembles them from a graph and a capacity override series.
func NewOracle(net *netem.Network, epochs []EpochCaps) *Oracle {
	o := &Oracle{
		net:       net,
		epochs:    epochs,
		sent:      make(map[packet.Tag]uint64),
		delivered: make(map[packet.Tag]uint64),
		dropped:   make(map[packet.Tag]uint64),
		pending:   make([][]uint64, net.Graph.NumLinks()),
		txBytes:   make([][]float64, net.Graph.NumLinks()),
		txPkts:    make([][]uint64, net.Graph.NumLinks()),
	}
	for i := range o.txBytes {
		o.txBytes[i] = make([]float64, len(epochs))
		o.txPkts[i] = make([]uint64, len(epochs))
	}
	net.AttachTap(o)
	return o
}

// BuildEpochs assembles the EpochCaps table for a run: the graph's rates,
// overridden per epoch by caps (directed link → Mbps, 0 = down; nil for
// "no overrides"). starts must begin at 0 and ascend; duration closes the
// final epoch.
func BuildEpochs(g *topo.Graph, starts []time.Duration, duration time.Duration,
	caps func(start time.Duration) map[topo.LinkID]float64) []EpochCaps {
	if len(starts) == 0 {
		starts = []time.Duration{0}
	}
	epochs := make([]EpochCaps, len(starts))
	for i, st := range starts {
		en := duration
		if i+1 < len(starts) {
			en = starts[i+1]
		}
		mbps := make([]float64, g.NumLinks())
		for _, l := range g.Links() {
			mbps[l.ID] = l.Rate.Mbit()
		}
		if caps != nil {
			for id, m := range caps(st) {
				mbps[id] = m
			}
		}
		epochs[i] = EpochCaps{Start: st, End: en, Mbps: mbps}
	}
	return epochs
}

// OnSend implements netem.SendTap.
func (o *Oracle) OnSend(_ *netem.Node, pkt *packet.Packet) {
	o.sent[pkt.Tag()]++
	o.sentTotal++
}

// OnDeliver implements netem.Tap.
func (o *Oracle) OnDeliver(_ *netem.Node, pkt *packet.Packet) {
	o.delivered[pkt.Tag()]++
	o.deliveredTotal++
}

// OnDrop implements netem.Tap.
func (o *Oracle) OnDrop(_ string, pkt *packet.Packet, _ netem.DropReason) {
	o.dropped[pkt.Tag()]++
	o.droppedTotal++
}

// OnTransmit implements netem.Tap: it buckets the wire bytes into the
// epoch in force and appends the packet to the link's FIFO audit queue.
func (o *Oracle) OnTransmit(l *netem.Link, pkt *packet.Packet) {
	now := o.net.Loop.Now().Duration()
	for o.epochIdx+1 < len(o.epochs) && now >= o.epochs[o.epochIdx+1].Start {
		o.epochIdx++
	}
	id := l.Spec.ID
	size := pkt.Size()
	o.txBytes[id][o.epochIdx] += float64(size)
	o.txPkts[id][o.epochIdx]++
	if size > o.maxPkt {
		o.maxPkt = size
	}
	o.pending[id] = append(o.pending[id], pkt.UID)
}

// OnArrive implements netem.ArrivalTap: every arrival must match the
// oldest outstanding transmission on its link (FIFO).
func (o *Oracle) OnArrive(l *netem.Link, pkt *packet.Packet) {
	id := l.Spec.ID
	q := o.pending[id]
	if len(q) == 0 {
		o.fifo = append(o.fifo, fmt.Sprintf(
			"fifo: link %s: arrival of uid %d with no outstanding transmission", l.Name(), pkt.UID))
		return
	}
	if q[0] != pkt.UID {
		o.fifo = append(o.fifo, fmt.Sprintf(
			"fifo: link %s: uid %d arrived before uid %d (reordered)", l.Name(), pkt.UID, q[0]))
		// Resynchronise so one reorder reports once, not for every
		// subsequent arrival: drop the arrived UID wherever it is.
		for i, u := range q {
			if u == pkt.UID {
				o.pending[id] = append(q[:i], q[i+1:]...)
				return
			}
		}
		return
	}
	o.pending[id] = q[1:]
}

// capacitySlack bounds the bytes a link may legitimately carry beyond
// rate × time inside one epoch: up to two maximum-size frames straddling
// the epoch boundaries (a frame committed at the old rate completes after
// a boundary; its bytes land in the new epoch) plus the serialisation-time
// truncation error (TxTime rounds down to 1 ns, letting each packet finish
// marginally early).
func (o *Oracle) capacitySlack(mbps float64, pkts uint64) float64 {
	slack := 2 * float64(o.maxPkt)
	slack += mbps * 1e6 / 8 * float64(pkts) * 2e-9
	return slack
}

// Violations audits the run after the loop has finished and returns every
// violated invariant as a human-readable string (empty = all hold).
func (o *Oracle) Violations() []string {
	var v []string

	// Per-link packet conservation: offered = transmitted + dropped +
	// queued + mid-serialisation. Drains (SetDown) and cut frames are
	// drops, so the identity holds across dynamic events too.
	var residual uint64
	for _, l := range o.net.Links() {
		c := &l.Counters
		inFlight := uint64(l.QueueLen())
		if l.Transmitting() {
			inFlight++
		}
		residual += inFlight
		if got := c.TxPackets + c.DropTotal() + inFlight; c.Offered != got {
			v = append(v, fmt.Sprintf(
				"conservation: link %s: offered %d != transmitted %d + dropped %d + in-link %d",
				l.Name(), c.Offered, c.TxPackets, c.DropTotal(), inFlight))
		}
	}

	// The engine's propagation counter must agree with the FIFO audit's
	// outstanding-arrival queues.
	var outstanding int
	for _, q := range o.pending {
		outstanding += len(q)
	}
	if outstanding != o.net.Propagating() {
		v = append(v, fmt.Sprintf(
			"conservation: %d outstanding arrivals in the audit vs %d propagating in the engine",
			outstanding, o.net.Propagating()))
	}
	residual += uint64(outstanding)

	// Network-wide conservation: every originated packet was delivered or
	// dropped exactly once, or is still queued / serialising / propagating.
	if o.net.Originated() != o.deliveredTotal+o.droppedTotal+residual {
		v = append(v, fmt.Sprintf(
			"conservation: originated %d != delivered %d + dropped %d + residual %d",
			o.net.Originated(), o.deliveredTotal, o.droppedTotal, residual))
	}
	if o.sentTotal != o.net.Originated() {
		v = append(v, fmt.Sprintf(
			"conservation: send tap saw %d packets, engine originated %d",
			o.sentTotal, o.net.Originated()))
	}

	// Per-flow conservation: no tag may account for more deliveries and
	// drops than sends, and the per-tag residuals must sum to the global
	// one (packets do not change tags in flight). Tags are visited in
	// sorted order so a multi-tag failure reports deterministically — the
	// report's bytes must stay identical across reruns especially when
	// something is wrong.
	var tagResidual uint64
	for _, tag := range sortedTags(o.sent) {
		n := o.sent[tag]
		acc := o.delivered[tag] + o.dropped[tag]
		if acc > n {
			v = append(v, fmt.Sprintf(
				"conservation: tag %v: delivered %d + dropped %d exceeds sent %d",
				tag, o.delivered[tag], o.dropped[tag], n))
			continue
		}
		tagResidual += n - acc
	}
	for _, tag := range sortedTags(o.delivered) {
		if _, ok := o.sent[tag]; !ok {
			v = append(v, fmt.Sprintf("conservation: tag %v delivered but never sent", tag))
		}
	}
	for _, tag := range sortedTags(o.dropped) {
		if _, ok := o.sent[tag]; !ok {
			v = append(v, fmt.Sprintf("conservation: tag %v dropped but never sent", tag))
		}
	}
	if tagResidual != residual {
		v = append(v, fmt.Sprintf(
			"conservation: per-tag residual %d != network residual %d", tagResidual, residual))
	}

	// Per-epoch capacity: wire bytes on each directed link inside one
	// epoch never exceed the epoch's rate × time budget.
	for _, l := range o.net.Links() {
		id := l.Spec.ID
		for ei, ep := range o.epochs {
			bytes := o.txBytes[id][ei]
			if bytes == 0 {
				continue
			}
			budget := ep.Mbps[id] * 1e6 / 8 * (ep.End - ep.Start).Seconds()
			if bytes > budget+o.capacitySlack(ep.Mbps[id], o.txPkts[id][ei]) {
				v = append(v, fmt.Sprintf(
					"capacity: link %s epoch [%v,%v): %.0f bytes exceed budget %.0f at %g Mbps",
					l.Name(), ep.Start, ep.End, bytes, budget, ep.Mbps[id]))
			}
		}
	}

	return append(v, o.fifo...)
}

// sortedTags returns a map's tags in ascending order.
func sortedTags(m map[packet.Tag]uint64) []packet.Tag {
	tags := make([]packet.Tag, 0, len(m))
	for t := range m {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(a, b int) bool { return tags[a] < tags[b] })
	return tags
}
