package check

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestNewLadderDeterministic: ladders are a pure function of
// (base, index, steps) — the replay contract for a failing ladder.
func TestNewLadderDeterministic(t *testing.T) {
	for _, idx := range []int{0, 1, 2, 3, 7} {
		a, b := NewLadder(7, idx, 3), NewLadder(7, idx, 3)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("ladder (7,%d,3): not deterministic", idx)
		}
	}
}

func TestNewLadderRejectsZeroSteps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLadder(1, 0, 0) did not panic")
		}
	}()
	NewLadder(1, 0, 0)
}

// TestLadderShapes drives NewLadder across several batches and verifies
// the structural contract of every ladder: the knob rotation, monotone
// values, the perturbation applied to exactly one link, event stripping,
// and the Exclusive/Dynamic metadata. It also requires the batches to
// cover both exclusive and shared links, static and dynamic rungs, and a
// stripped-events case, so every policy branch has real instances.
func TestLadderShapes(t *testing.T) {
	const steps = 3
	var exclusive, shared, dynamic, static, stripped int
	hop := func(a, b string) [2]string {
		if a > b {
			a, b = b, a
		}
		return [2]string{a, b}
	}
	for base := int64(1); base <= 3; base++ {
		for idx := 0; idx < 24; idx++ {
			ld := NewLadder(base, idx, steps)
			if ld.Knob != Knobs[idx%len(Knobs)] {
				t.Fatalf("(%d,%d): knob %s, want %s", base, idx, ld.Knob, Knobs[idx%len(Knobs)])
			}
			if len(ld.Rungs) != steps+1 || len(ld.Values) != steps+1 {
				t.Fatalf("(%d,%d): %d rungs / %d values, want %d", base, idx, len(ld.Rungs), len(ld.Values), steps+1)
			}
			onOrder := false
			for _, p := range ld.Base.Order {
				onOrder = onOrder || p == ld.Path
			}
			if !onOrder {
				t.Fatalf("(%d,%d): perturbed path %d not in active order %v", base, idx, ld.Path, ld.Base.Order)
			}
			up := ld.Knob != KnobRateDown
			for k := 1; k <= steps; k++ {
				if up && ld.Values[k] < ld.Values[k-1] || !up && ld.Values[k] > ld.Values[k-1] {
					t.Fatalf("(%d,%d): values %v not monotone for %s", base, idx, ld.Values, ld.Knob)
				}
			}
			if ld.Values[0] == ld.Values[steps] {
				t.Fatalf("(%d,%d): values %v never move", base, idx, ld.Values)
			}

			key := hop(ld.LinkA, ld.LinkB)
			base0 := parseGenFile(ld.Rungs[0].Scenario)
			for k, rsp := range ld.Rungs {
				f := parseGenFile(rsp.Scenario)
				if ld.Dynamic != (len(f.Events) > 0) {
					t.Fatalf("(%d,%d) rung %d: Dynamic=%t but %d events", base, idx, k, ld.Dynamic, len(f.Events))
				}
				for _, ev := range f.Events {
					if hop(ev.A, ev.B) == key {
						t.Fatalf("(%d,%d) rung %d: event still targets the perturbed link %s-%s", base, idx, k, ld.LinkA, ld.LinkB)
					}
				}
				found := false
				for li, l := range f.Links {
					cur, ref := l, base0.Links[li]
					if hop(l.A, l.B) == key {
						found = true
						got := map[string]float64{
							KnobLossUp: l.Loss, KnobDelayUp: l.DelayMs,
							KnobRateDown: l.Mbps, KnobRateUp: l.Mbps,
						}[ld.Knob]
						if got != ld.Values[k] {
							t.Fatalf("(%d,%d) rung %d: perturbed field = %v, want %v", base, idx, k, got, ld.Values[k])
						}
						continue
					}
					if cur != ref {
						t.Fatalf("(%d,%d) rung %d: untouched link %s-%s changed: %+v vs %+v", base, idx, k, l.A, l.B, cur, ref)
					}
				}
				if !found {
					t.Fatalf("(%d,%d) rung %d: perturbed link %s-%s not in scenario", base, idx, k, ld.LinkA, ld.LinkB)
				}
			}

			// Recompute exclusivity from the rung topology and the active
			// order; the metadata must agree.
			crossing := 0
			for _, p := range ld.Base.Order {
				nodes := base0.Paths[p-1].Nodes
				for i := 1; i < len(nodes); i++ {
					if hop(nodes[i-1], nodes[i]) == key {
						crossing++
						break
					}
				}
			}
			if ld.Exclusive != (crossing == 1) {
				t.Fatalf("(%d,%d): Exclusive=%t but %d active paths cross %s-%s", base, idx, ld.Exclusive, crossing, ld.LinkA, ld.LinkB)
			}
			if ld.Coupled != coupledCC(ld.Base.CC) {
				t.Fatalf("(%d,%d): Coupled=%t for cc=%s", base, idx, ld.Coupled, ld.Base.CC)
			}

			if ld.Exclusive {
				exclusive++
			} else {
				shared++
			}
			if ld.Dynamic {
				dynamic++
			} else {
				static++
			}
			if ld.Stripped > 0 {
				stripped++
			}
		}
	}
	if exclusive == 0 || shared == 0 || dynamic == 0 || static == 0 || stripped == 0 {
		t.Fatalf("coverage hole: exclusive=%d shared=%d dynamic=%d static=%d stripped=%d",
			exclusive, shared, dynamic, static, stripped)
	}
}

func TestRungValueFloorsCapacity(t *testing.T) {
	l := genLink{Mbps: 5}
	for k := 0; k < 12; k++ {
		if v := rungValue(KnobRateDown, l, k); v < 1 {
			t.Fatalf("rate_down rung %d = %v, want >= 1 Mbps", k, v)
		}
	}
	if v := rungValue(KnobLossUp, genLink{Loss: 0.004}, 2); v != 0.064 {
		t.Fatalf("loss rung 2 = %v, want 0.064", v)
	}
}

// trendObs builds a fabricated report: a ladder of the given shape plus
// one observation per goodput value.
func trendObs(knob, cc string, exclusive bool, goodputs []uint64) *TrendReport {
	r := &TrendReport{Ladder: Ladder{
		Knob: knob, Exclusive: exclusive, Coupled: coupledCC(cc),
		Base:  Spec{CC: cc, Scheduler: "minrtt"},
		Rungs: make([]Spec, len(goodputs)),
	}}
	for _, g := range goodputs {
		r.Obs = append(r.Obs, RungObs{GoodputBytes: g, Share: 0.5, Hash: "h"})
	}
	for range goodputs {
		r.Ladder.Values = append(r.Ladder.Values, 1)
	}
	return r
}

func TestEvaluateGoodputDirections(t *testing.T) {
	pol := DefaultTrendPolicy(3)
	cases := []struct {
		name     string
		rep      *TrendReport
		wantFail string // substring of a violation, "" = must pass
	}{
		{"degrading monotone ok",
			trendObs(KnobLossUp, "cubic", true, []uint64{900e3, 700e3, 500e3, 300e3}), ""},
		{"degrading small wobble ok",
			trendObs(KnobLossUp, "cubic", true, []uint64{900e3, 880e3, 890e3, 850e3}), ""},
		{"degrading fully inverted fails pairwise",
			trendObs(KnobLossUp, "cubic", true, []uint64{500e3, 800e3, 1200e3, 2000e3}), "goodput not non-increasing"},
		{"degrading net rise fails end-to-end",
			trendObs(KnobDelayUp, "cubic", true, []uint64{500e3, 1400e3, 1350e3, 1400e3}), "rose end-to-end"},
		{"collapsed base exempt from end rise",
			trendObs(KnobLossUp, "cubic", true, []uint64{30e3, 900e3, 880e3, 860e3}), ""},
		{"improving monotone ok",
			trendObs(KnobRateUp, "cubic", true, []uint64{300e3, 500e3, 700e3, 900e3}), ""},
		{"improving collapse fails",
			trendObs(KnobRateUp, "cubic", true, []uint64{2000e3, 1200e3, 800e3, 500e3}), "fell end-to-end"},
		{"wvegas delay ladder exempt",
			trendObs(KnobDelayUp, "wvegas", true, []uint64{120e3, 2400e3, 380e3, 2100e3}), ""},
		{"wvegas still checked on loss",
			trendObs(KnobLossUp, "wvegas", true, []uint64{500e3, 800e3, 1200e3, 2000e3}), "goodput not non-increasing"},
	}
	for _, tc := range cases {
		tc.rep.Evaluate(pol)
		if tc.wantFail == "" {
			if len(tc.rep.Violations) != 0 {
				t.Errorf("%s: unexpected violations %v", tc.name, tc.rep.Violations)
			}
			continue
		}
		if !strings.Contains(strings.Join(tc.rep.Violations, "\n"), tc.wantFail) {
			t.Errorf("%s: violations %v, want one containing %q", tc.name, tc.rep.Violations, tc.wantFail)
		}
	}
}

func TestEvaluateGapAssertions(t *testing.T) {
	pol := DefaultTrendPolicy(3)
	mk := func(cc string, share0 float64, values []float64, gaps []float64) *TrendReport {
		r := trendObs(KnobRateDown, cc, true, []uint64{900e3, 800e3, 700e3, 600e3})
		r.Ladder.Values = values
		for i := range r.Obs {
			r.Obs[i].Gap = gaps[i]
		}
		r.Obs[0].Share = share0
		return r
	}
	vals := []float64{40, 24, 14.4, 8.64}
	widening := []float64{0.0, 0.05, 0.2, 0.5}

	r := mk("cubic", 0.5, vals, widening)
	r.Evaluate(pol)
	if !strings.Contains(strings.Join(r.Violations, "\n"), "gap widened end-to-end") {
		t.Fatalf("loss-based widening not flagged: %v", r.Violations)
	}

	// wvegas never chases the LP optimum; its gap is exempt.
	r = mk("wvegas", 0.5, vals, widening)
	r.Evaluate(pol)
	if len(r.Violations) != 0 {
		t.Fatalf("wvegas gap flagged: %v", r.Violations)
	}

	// A run carrying ~all bytes on the perturbed path has no alternative
	// route; its gap against the all-paths LP widens structurally.
	r = mk("cubic", 0.97, vals, widening)
	r.Evaluate(pol)
	if len(r.Violations) != 0 {
		t.Fatalf("single-route gap flagged: %v", r.Violations)
	}

	// Rungs cut below the degeneracy floor are outside the assertion; with
	// only rung 0 at or above 5 Mbps nothing is compared.
	r = mk("cubic", 0.5, []float64{40, 4, 2.4, 1.44}, widening)
	r.Evaluate(pol)
	if len(r.Violations) != 0 {
		t.Fatalf("sub-floor rungs flagged: %v", r.Violations)
	}

	// A base rung already far off its LP baseline has no tracking
	// relationship to preserve; the assertion requires gap[0] small.
	offBase := []float64{0.40, 0.45, 0.60, 0.90}
	r = mk("cubic", 0.5, vals, offBase)
	r.Evaluate(pol)
	if len(r.Violations) != 0 {
		t.Fatalf("off-baseline base flagged: %v", r.Violations)
	}
}

func TestEvaluateLoadShift(t *testing.T) {
	pol := DefaultTrendPolicy(3)
	mk := func(cc string, exclusive bool, shares []float64) *TrendReport {
		r := trendObs(KnobLossUp, cc, exclusive, []uint64{900e3, 800e3, 700e3, 600e3})
		for i := range r.Obs {
			r.Obs[i].Share = shares[i]
		}
		return r
	}
	rising := []float64{0.10, 0.15, 0.25, 0.40}

	r := mk("lia", true, rising)
	r.Evaluate(pol)
	if !strings.Contains(strings.Join(r.Violations, "\n"), "load share") {
		t.Fatalf("coupled share rise not flagged: %v", r.Violations)
	}

	// Uncoupled CCs make no load-shift promise.
	r = mk("cubic", true, rising)
	r.Evaluate(pol)
	if len(r.Violations) != 0 {
		t.Fatalf("uncoupled share flagged: %v", r.Violations)
	}

	// A shared link degrades every path crossing it; no shift expected.
	r = mk("lia", false, rising)
	r.Evaluate(pol)
	if len(r.Violations) != 0 {
		t.Fatalf("shared-link share flagged: %v", r.Violations)
	}

	// A rung that sent nothing has no share; the check skips.
	nan := []float64{0.10, math.NaN(), 0.25, 0.40}
	r = mk("lia", true, nan)
	r.Evaluate(pol)
	if len(r.Violations) != 0 {
		t.Fatalf("NaN-share ladder flagged: %v", r.Violations)
	}

	// Non-selective schedulers make no load-shift promise: roundrobin
	// rotates blindly and redundant clones every packet onto every
	// subflow, so their sent-byte shares track scheduler mechanics.
	for _, sched := range []string{"roundrobin", "redundant"} {
		r = mk("lia", true, rising)
		r.Ladder.Base.Scheduler = sched
		r.Evaluate(pol)
		if len(r.Violations) != 0 {
			t.Fatalf("%s share flagged: %v", sched, r.Violations)
		}
	}
}

func TestEvaluateSkipsFailedRungs(t *testing.T) {
	r := trendObs(KnobLossUp, "cubic", true, []uint64{100e3, 900e3, 1800e3, 3600e3})
	r.Obs[2] = RungObs{Err: "build: boom"}
	r.Evaluate(DefaultTrendPolicy(3))
	if len(r.Violations) != 0 {
		t.Fatalf("half-measured ladder got a trend verdict: %v", r.Violations)
	}
	if r.OK() {
		t.Fatal("ladder with a failed rung reported OK")
	}
}

func TestEvaluateShapeMismatch(t *testing.T) {
	r := trendObs(KnobLossUp, "cubic", true, []uint64{100e3, 90e3})
	r.Obs = r.Obs[:1]
	r.Evaluate(DefaultTrendPolicy(1))
	if len(r.Violations) != 1 || !strings.Contains(r.Violations[0], "internal") {
		t.Fatalf("shape mismatch not flagged: %v", r.Violations)
	}
}

// TestTrendReportWriteCanonical locks the report rendering byte for byte:
// the batch determinism contract compares these bytes across worker
// counts, so the format must not pick up incidental state.
func TestTrendReportWriteCanonical(t *testing.T) {
	r := &TrendReport{
		Ladder: Ladder{
			Index: 3, Knob: KnobRateDown, Path: 2,
			LinkA: "s", LinkB: "m11", Exclusive: true, Coupled: true, Dynamic: false,
			Base:   Spec{Seed: 42, CC: "lia", Scheduler: "minrtt"},
			Rungs:  make([]Spec, 2),
			Values: []float64{40, 24},
		},
		Obs: []RungObs{
			{GoodputBytes: 900000, Gap: 0.0123, Share: 0.25, Hash: "aabbccddeeff00112233"},
			{GoodputBytes: 0, Share: math.NaN(), Err: "build: boom"},
		},
		Violations: []string{"something drifted"},
	}
	var sb strings.Builder
	r.Write(&sb)
	want := "ladder   3 FAIL seed=42                  knob=rate_down path=2 link=s-m11 excl=true coupled=true dynamic=false cc=lia sched=minrtt\n" +
		"  rung 0 mbps=40 goodput=900000 gap=0.0123 share=0.2500 hash=aabbccddeeff\n" +
		"  rung 1 mbps=24 ERROR build: boom\n" +
		"  FAIL something drifted\n"
	if sb.String() != want {
		t.Fatalf("rendering drifted:\ngot:\n%swant:\n%s", sb.String(), want)
	}
}

func TestDefaultTrendPolicyScales(t *testing.T) {
	if got := DefaultTrendPolicy(4).MaxInversions; got != 3 {
		t.Fatalf("MaxInversions(4 steps) = %d, want 3", got)
	}
	if got := DefaultTrendPolicy(1).MaxInversions; got != 0 {
		t.Fatalf("MaxInversions(1 step) = %d, want 0", got)
	}
}
