package check_test

// The golden-corpus differential test: the recorded canonical hashes of
// the 200 simcheck seed-1 scenarios (testdata/hashes-seed1.golden,
// recorded before the zero-allocation event fast path landed) must be
// byte-identical on every future commit. This is the safety net for any
// kernel or hot-path performance work — an optimisation that changes even
// one measured value of one scenario fails here.
//
// The test lives in package check_test because package check cannot
// import mptcpsim (the root package imports check for the oracle); the
// external test binary closes the cycle legally.

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"mptcpsim"
	"mptcpsim/internal/check"
)

// goldenRunEventLimit mirrors cmd/simcheck's runaway guard.
const goldenRunEventLimit = 100_000_000

// goldenHash runs scenario i of the corpus base seed once and returns its
// canonical hash.
func goldenHash(base int64, i int) (string, error) {
	sp := check.NewSpec(check.SpecSeed(base, i))
	nw, err := mptcpsim.LoadNetwork(bytes.NewReader(sp.Scenario))
	if err != nil {
		return "", fmt.Errorf("scenario %d (seed %d): build: %w", i, sp.Seed, err)
	}
	res, err := mptcpsim.Run(nw, mptcpsim.Options{
		CC: sp.CC, Scheduler: sp.Scheduler, SubflowPaths: sp.Order,
		Seed: sp.RunSeed, Duration: sp.Duration, QueueScale: sp.QueueScale,
		EventLimit: goldenRunEventLimit,
	})
	if err != nil {
		return "", fmt.Errorf("scenario %d (seed %d): run: %w", i, sp.Seed, err)
	}
	return res.Hash(), nil
}

func TestGoldenCorpusHashesIdentical(t *testing.T) {
	f, err := os.Open("testdata/hashes-seed1.golden")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := check.LoadGolden(f)
	if err != nil {
		t.Fatal(err)
	}
	n := len(g.Hashes)
	if testing.Short() {
		// -short keeps the differential property exercised without the
		// full corpus cost (the race job runs every test at ~10x).
		n = 16
	}

	hashes := make([]string, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				hashes[i], errs[i] = goldenHash(g.Seed, i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	diverged := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			diverged++
			t.Errorf("%v", errs[i])
			continue
		}
		if hashes[i] != g.Hashes[i] {
			diverged++
			t.Errorf("scenario %d: hash %.12s diverged from golden %.12s", i, hashes[i], g.Hashes[i])
		}
	}
	if diverged > 0 {
		t.Fatalf("%d/%d golden hashes diverged: the simulation's behaviour changed; "+
			"if (and only if) the change is intended, re-record with "+
			"go run ./cmd/simcheck -n %d -seed %d -write-golden internal/check/testdata/hashes-seed1.golden",
			diverged, n, len(g.Hashes), g.Seed)
	}
}

func TestLoadGoldenRoundTrip(t *testing.T) {
	g := check.Golden{Seed: 42, Hashes: []string{"aa", "bb", "cc"}}
	var buf bytes.Buffer
	if err := check.WriteGolden(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := check.LoadGolden(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != g.Seed || len(got.Hashes) != len(g.Hashes) {
		t.Fatalf("round trip mangled corpus: %+v", got)
	}
	for i := range g.Hashes {
		if got.Hashes[i] != g.Hashes[i] {
			t.Fatalf("hash %d = %q, want %q", i, got.Hashes[i], g.Hashes[i])
		}
	}
}

func TestLoadGoldenRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no seed line":       "0 abc\n",
		"empty":              "",
		"comments only":      "# nothing here\n",
		"bad seed":           "seed banana\n0 abc\n",
		"index gap":          "seed 1\n0 abc\n2 def\n",
		"index out of order": "seed 1\n1 abc\n",
		"missing hash":       "seed 1\n0\n",
		"no hashes":          "seed 1\n",
	}
	for name, input := range cases {
		if _, err := check.LoadGolden(strings.NewReader(input)); err == nil {
			t.Errorf("%s: LoadGolden accepted %q", name, input)
		}
	}
}
