package check

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"mptcpsim/internal/sim"
)

// The metamorphic trend oracle. Exact invariants and replay hashes prove
// the simulator is conservative and deterministic, but a deterministic
// bug is deterministically wrong: they cannot tell a plausible model from
// a correct one. Trends can. Degrading one path — more loss, more delay,
// less capacity — must not improve the connection's goodput; restoring
// capacity must not degrade it; a coupled congestion controller must not
// shift *more* load onto a path as it degrades. A perturbation ladder
// makes those direction-of-change statements machine-checkable: K
// monotone mutations of one knob on one link of one active path, each
// rung a fully valid generated scenario, each assertion holding within an
// explicit noise tolerance.

// Knob names: the perturbation directions a ladder can take. The first
// three degrade the perturbed path, so goodput must be monotone
// non-increasing along the ladder; KnobRateUp improves it, so goodput
// must be monotone non-decreasing.
const (
	KnobLossUp   = "loss_up"
	KnobDelayUp  = "delay_up"
	KnobRateDown = "rate_down"
	KnobRateUp   = "rate_up"
)

// Knobs lists the directions in derivation order: ladder i of a batch
// perturbs Knobs[i%len(Knobs)], so any four consecutive ladders cover
// every direction.
var Knobs = []string{KnobLossUp, KnobDelayUp, KnobRateDown, KnobRateUp}

// coupledCC reports whether a congestion controller couples its subflow
// windows — the algorithms that deliberately shift load away from
// congested paths, and therefore get the load-shift assertion.
func coupledCC(cc string) bool {
	switch cc {
	case "lia", "olia", "balia", "wvegas":
		return true
	}
	return false
}

// Ladder is one perturbation ladder: a base generated Spec plus
// len(Rungs) derived specs that mutate a single knob of a single link
// monotonically. Ladders are a pure function of (base seed, index,
// steps), so a failing one replays from three numbers.
type Ladder struct {
	// Index is the ladder's position in its batch; the knob is
	// Knobs[Index%len(Knobs)] and the base spec seed is
	// SpecSeed(base, Index) — the same spec space the plain simcheck
	// mode draws from.
	Index int
	// Knob is the perturbation direction (Knob* constants).
	Knob string
	// Base is the unperturbed generator spec the ladder grew from.
	Base Spec
	// Path is the 1-based perturbed path; always one of Base.Order, so
	// the perturbation lands on a path that actually carries a subflow.
	Path int
	// LinkA, LinkB name the perturbed link (a hop of Path).
	LinkA, LinkB string
	// Exclusive reports that no other active path crosses the perturbed
	// link — the precondition for the load-shift assertion.
	Exclusive bool
	// Coupled reports that Base.CC couples its subflow windows.
	Coupled bool
	// Dynamic reports that the rung scenarios carry dynamic events.
	Dynamic bool
	// Stripped counts events removed because they targeted the perturbed
	// link (they would override the knob mid-run and wash out the trend).
	Stripped int
	// Rungs holds steps+1 specs; Rungs[0] is the (possibly
	// event-stripped) base, Rungs[k] the k-th perturbation.
	Rungs []Spec
	// Values holds the knob's value at each rung, in the link's native
	// unit (loss probability, delay ms, or Mbps).
	Values []float64
}

// NewLadder derives ladder index of a batch: the base spec is
// NewSpec(SpecSeed(base, index)) — untouched, so trend mode consumes
// exactly the generator draws the golden corpus locks — and the
// perturbation target is chosen by an independent RNG stream.
//
// Target selection prefers, in order: a link exclusive to the chosen path
// with no events targeting it, an exclusive link, an event-free link, any
// link of the path. When the chosen link does carry events, every event
// targeting it is stripped from all rungs (the per-link event state
// machine goes together, so the remaining timeline stays valid). For
// KnobRateUp the scarcest candidate is perturbed — raising a
// non-bottleneck link proves nothing.
func NewLadder(base int64, index, steps int) Ladder {
	if steps < 1 {
		panic("check: NewLadder needs steps >= 1")
	}
	sp := NewSpec(SpecSeed(base, index))
	knob := Knobs[index%len(Knobs)]
	file := parseGenFile(sp.Scenario)
	// "ladd": fork the perturbation choices off the spec seed without
	// touching the generator's own stream.
	rng := sim.NewRand(sp.Seed ^ 0x6c616464)
	path := sp.Order[rng.Intn(len(sp.Order))]

	hop := func(a, b string) [2]string {
		if a > b {
			a, b = b, a
		}
		return [2]string{a, b}
	}
	linkIdx := make(map[[2]string]int, len(file.Links))
	for i, l := range file.Links {
		linkIdx[hop(l.A, l.B)] = i
	}
	// used[li] is the set of active paths crossing link li.
	used := make(map[int]map[int]bool)
	for _, p := range sp.Order {
		nodes := file.Paths[p-1].Nodes
		for i := 1; i < len(nodes); i++ {
			li := linkIdx[hop(nodes[i-1], nodes[i])]
			if used[li] == nil {
				used[li] = make(map[int]bool)
			}
			used[li][p] = true
		}
	}
	eventful := make(map[int]bool)
	for _, ev := range file.Events {
		if li, ok := linkIdx[hop(ev.A, ev.B)]; ok {
			eventful[li] = true
		}
	}

	// Candidates: the chosen path's hops in path order, deduplicated.
	var cands []int
	seen := make(map[int]bool)
	nodes := file.Paths[path-1].Nodes
	for i := 1; i < len(nodes); i++ {
		li := linkIdx[hop(nodes[i-1], nodes[i])]
		if !seen[li] {
			seen[li] = true
			cands = append(cands, li)
		}
	}
	classOf := func(li int) int {
		excl := len(used[li]) == 1
		clean := !eventful[li]
		switch {
		case excl && clean:
			return 0
		case excl:
			return 1
		case clean:
			return 2
		}
		return 3
	}
	best := 4
	for _, li := range cands {
		if c := classOf(li); c < best {
			best = c
		}
	}
	pool := cands[:0]
	for _, li := range cands {
		if classOf(li) == best {
			pool = append(pool, li)
		}
	}
	var li int
	if knob == KnobRateUp {
		li = pool[0]
		for _, c := range pool[1:] {
			if file.Links[c].Mbps < file.Links[li].Mbps {
				li = c
			}
		}
	} else {
		li = pool[rng.Intn(len(pool))]
	}

	ld := Ladder{
		Index:     index,
		Knob:      knob,
		Base:      sp,
		Path:      path,
		LinkA:     file.Links[li].A,
		LinkB:     file.Links[li].B,
		Exclusive: len(used[li]) == 1,
		Coupled:   coupledCC(sp.CC),
	}
	if eventful[li] {
		key := hop(file.Links[li].A, file.Links[li].B)
		var kept []genEvent
		for _, ev := range file.Events {
			if hop(ev.A, ev.B) != key {
				kept = append(kept, ev)
			}
		}
		ld.Stripped = len(file.Events) - len(kept)
		file.Events = kept
	}
	ld.Dynamic = len(file.Events) > 0

	baseLink := file.Links[li]
	for k := 0; k <= steps; k++ {
		v := rungValue(knob, baseLink, k)
		rung := file
		rung.Links = append([]genLink(nil), file.Links...)
		switch knob {
		case KnobLossUp:
			rung.Links[li].Loss = v
		case KnobDelayUp:
			rung.Links[li].DelayMs = v
		case KnobRateDown, KnobRateUp:
			rung.Links[li].Mbps = v
		}
		rsp := sp
		rsp.Scenario = emitGenFile(&rung)
		ld.Rungs = append(ld.Rungs, rsp)
		ld.Values = append(ld.Values, v)
	}
	return ld
}

// rungValue is the knob's value at rung k (k=0 re-states the base value,
// rounded to the generator's millesimal grid so every rung sits on the
// scenario format's exactly-representable lattice). Steps are sized for
// signal over the generator's short horizons: +3 points of loss per rung,
// delay doubled per rung, capacity ×0.6 per rung (floored at 1 Mbps so a
// rung never degenerates below the format's useful range), capacity ×1.6
// per rung.
func rungValue(knob string, l genLink, k int) float64 {
	switch knob {
	case KnobLossUp:
		return round3(l.Loss + 0.03*float64(k))
	case KnobDelayUp:
		return round3(l.DelayMs * math.Pow(2, float64(k)))
	case KnobRateDown:
		v := l.Mbps * math.Pow(0.6, float64(k))
		if v < 1 {
			v = 1
		}
		return round3(v)
	case KnobRateUp:
		return round3(l.Mbps * math.Pow(1.6, float64(k)))
	}
	panic("check: unknown knob " + knob)
}

// knobField names the scenario-link field a knob mutates, for reports.
func knobField(knob string) string {
	switch knob {
	case KnobLossUp:
		return "loss"
	case KnobDelayUp:
		return "delay_ms"
	}
	return "mbps"
}

// round3 snaps to three decimals, the generator's grid for every float
// field it draws.
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// RungObs is what the harness measured on one rung: the trend
// observables plus the rung's canonical hash (for the report) or the
// failure that prevented measurement.
type RungObs struct {
	// GoodputBytes is the connection's in-order delivered payload.
	GoodputBytes uint64
	// Gap is the run's optimality gap against its own (piecewise) LP
	// baseline.
	Gap float64
	// Share is the perturbed path's share of sent payload bytes across
	// all subflows; NaN when the run sent nothing.
	Share float64
	// Hash is the rung's canonical Result hash.
	Hash string
	// Err, when non-empty, is why the rung could not be measured
	// (build/run error, invariant violation, replay divergence). A
	// ladder with a failed rung gets no trend verdict.
	Err string
}

// TrendPolicy is the noise-tolerance policy trend assertions hold
// within. Two distinct effects need room. Short generated horizons make
// goodput noisy (binning, slow-start phase, scheduler jitter move it a
// few percent between rungs), which the per-step window absorbs. And
// multipath in-order goodput is genuinely non-monotone in a single
// path's quality: head-of-line blocking means degrading one path can
// *improve* the union by tens of percent (a lossy subflow stops
// stalling in-order delivery — observed up to ~+38% with the redundant
// scheduler under coupled CCs), which the generous end-to-end bound
// absorbs. What no tolerance absorbs is a wrong-direction drift at
// sign-flip scale — loss applied inverted multiplies goodput across a
// ladder — which is the whole-model wrongness this oracle exists to
// catch.
type TrendPolicy struct {
	// RelTol and AbsTol bound the per-step goodput wobble: rung k
	// inverts only when it beats rung k-1's value by more than RelTol
	// relative plus AbsTol bytes of absolute slack.
	RelTol float64
	AbsTol float64
	// MaxInversions is how many tolerance-window inversions (per
	// observable) a ladder may show before the trend is a violation.
	// Head-of-line effects make single steps noisy in both directions,
	// so the default sets this to steps-1: the pairwise check flags only
	// a fully inverted ladder, and the end-to-end drift bounds below are
	// the primary tooth.
	MaxInversions int
	// EndRelTol and EndAbsTol bound the whole-ladder net drift in the
	// wrong direction (last rung vs first): the backstop for a
	// consistent creep that stays inside the per-step window.
	EndRelTol float64
	EndAbsTol float64
	// MinBaseGoodput (bytes) gates the degrading end-to-end rise check:
	// a base rung whose in-order goodput is collapsed to a sliver of
	// what the wire moved (head-of-line stall — observed with the
	// roundrobin scheduler at particular delay ratios) has no trend to
	// preserve, and any perturbation that breaks the stall "improves"
	// it by an unbounded factor. Below this floor the rise check is
	// vacuous and skipped.
	MinBaseGoodput float64
	// GapStepTol and GapEndTol bound gap widening (absolute, in gap
	// fraction) per step / end-to-end for the capacity-down ladder,
	// where each rung's own LP baseline tracks the perturbation. The
	// assertion only applies to loss-based CCs — wvegas deliberately
	// trades throughput for low queueing delay and does not chase the
	// LP optimum — and only to rungs at or above GapCapFloorMbps: the
	// generator keeps its capacity palette >= 5 Mbps because smaller
	// links are degenerate over its short horizons (RTO-dominated, a
	// handful of packets in flight), and the same argument voids
	// LP-tracking expectations for rungs cut below that floor.
	// GapShareCeil additionally voids the gap assertion when the base
	// rung already carries (almost) every sent byte on the perturbed
	// path: the LP baseline routes over every scenario path, but such a
	// run has no alternative route in actual use, so its gap against
	// the all-paths optimum must widen structurally as its only link
	// shrinks — that is the comparison's geometry, not a model defect.
	// GapBaseMax gates the whole gap assertion on the base rung actually
	// tracking its baseline: a run that sits far off its own LP optimum
	// before any perturbation (deep head-of-line regimes do) has no
	// tracking relationship for the ladder to preserve.
	GapStepTol      float64
	GapEndTol       float64
	GapCapFloorMbps float64
	GapShareCeil    float64
	GapBaseMax      float64
	// ShareStepTol and ShareEndTol bound the perturbed path's sent-byte
	// share growth per step / end-to-end on degrading ladders of
	// coupled CCs over an exclusive link.
	ShareStepTol float64
	ShareEndTol  float64
}

// DefaultTrendPolicy is the tolerance policy the simcheck trend mode
// runs with, scaled to the ladder's step count. The constants are
// calibrated against the seed-1 reference smoke: every legitimate
// head-of-line rise observed there clears the bounds with margin, and a
// loss-sign-flip mutation (rungs applied in inverted order) exceeds
// both the inversion budget and the end-to-end bound severalfold.
func DefaultTrendPolicy(steps int) TrendPolicy {
	return TrendPolicy{
		RelTol:          0.05,
		AbsTol:          24 << 10,
		MaxInversions:   steps - 1,
		EndRelTol:       0.50,
		EndAbsTol:       384 << 10,
		MinBaseGoodput:  128 << 10,
		GapStepTol:      0.10,
		GapEndTol:       0.30,
		GapCapFloorMbps: 5,
		GapShareCeil:    0.95,
		GapBaseMax:      0.25,
		ShareStepTol:    0.08,
		ShareEndTol:     0.10,
	}
}

// TrendReport is one ladder's verdict: the observations of every rung
// and the trend violations the policy found. Its rendering is canonical
// — identical bytes for identical inputs — so a batch report can be
// byte-compared across worker counts.
type TrendReport struct {
	Ladder     Ladder
	Obs        []RungObs
	Violations []string
}

// Evaluate fills Violations from the observations under the policy. A
// ladder with any failed rung gets no trend verdict — the rung failure
// is the finding, and a half-measured ladder must not masquerade as a
// trend result.
func (r *TrendReport) Evaluate(p TrendPolicy) {
	r.Violations = nil
	if len(r.Obs) != len(r.Ladder.Rungs) {
		r.Violations = append(r.Violations, fmt.Sprintf(
			"internal: %d observations for %d rungs", len(r.Obs), len(r.Ladder.Rungs)))
		return
	}
	for _, o := range r.Obs {
		if o.Err != "" {
			return
		}
	}
	degrade := r.Ladder.Knob != KnobRateUp
	g := func(k int) float64 { return float64(r.Obs[k].GoodputBytes) }
	last := len(r.Obs) - 1

	// wvegas allocates rate as a function of the base RTT by design — a
	// queueing-delay controller pushes *more* onto a path whose
	// propagation delay grows, the classic Vegas artifact — so "more
	// propagation delay ⇒ less goodput, less share" is not a sound
	// relation for it. Its delay ladders keep rung measurement and
	// reporting but get no direction verdicts.
	vegasDelay := r.Ladder.Knob == KnobDelayUp && r.Ladder.Base.CC == "wvegas"

	// Goodput direction: count tolerance-window inversions step by step.
	if !vegasDelay {
		var inv []string
		for k := 1; k < len(r.Obs); k++ {
			prev, cur := g(k-1), g(k)
			bad := cur > prev*(1+p.RelTol)+p.AbsTol
			if !degrade {
				bad = cur < prev*(1-p.RelTol)-p.AbsTol
			}
			if bad {
				inv = append(inv, fmt.Sprintf("rung %d->%d: %.0f -> %.0f bytes", k-1, k, prev, cur))
			}
		}
		dir := "non-increasing"
		if !degrade {
			dir = "non-decreasing"
		}
		if len(inv) > p.MaxInversions {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"goodput not %s: %d inversions beyond tolerance (allowed %d): %s",
				dir, len(inv), p.MaxInversions, strings.Join(inv, "; ")))
		}
		// Net drift: a slow creep in the wrong direction can stay inside
		// the per-step window on every rung; the end-to-end bound catches
		// it.
		if degrade && g(0) >= p.MinBaseGoodput && g(last) > g(0)*(1+p.EndRelTol)+p.EndAbsTol {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"goodput rose end-to-end on a degrading ladder: %.0f -> %.0f bytes", g(0), g(last)))
		}
		if !degrade && g(last) < g(0)*(1-p.EndRelTol)-p.EndAbsTol {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"goodput fell end-to-end on an improving ladder: %.0f -> %.0f bytes", g(0), g(last)))
		}
	}

	// Optimality gap: only the capacity-down direction has a baseline
	// that tracks the perturbation (the LP does not model loss or
	// delay), so only there is "gap must not widen" a sound assertion —
	// and only for loss-based CCs on rungs above the degeneracy floor
	// (see TrendPolicy.GapCapFloorMbps), when the run actually spreads
	// load over alternatives to the perturbed path (GapShareCeil).
	// Rate-down values descend, so the qualifying rungs are a prefix of
	// the ladder.
	if r.Ladder.Knob == KnobRateDown && r.Ladder.Base.CC != "wvegas" &&
		!math.IsNaN(r.Obs[0].Share) && r.Obs[0].Share < p.GapShareCeil &&
		r.Obs[0].Gap <= p.GapBaseMax {
		glast := 0
		for glast+1 < len(r.Obs) && r.Ladder.Values[glast+1] >= p.GapCapFloorMbps {
			glast++
		}
		var winv []string
		for k := 1; k <= glast; k++ {
			if r.Obs[k].Gap > r.Obs[k-1].Gap+p.GapStepTol {
				winv = append(winv, fmt.Sprintf("rung %d->%d: %.4f -> %.4f",
					k-1, k, r.Obs[k-1].Gap, r.Obs[k].Gap))
			}
		}
		if len(winv) > p.MaxInversions {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"optimality gap widened against per-rung LP baselines: %d widenings beyond tolerance (allowed %d): %s",
				len(winv), p.MaxInversions, strings.Join(winv, "; ")))
		}
		if r.Obs[glast].Gap > r.Obs[0].Gap+p.GapEndTol {
			r.Violations = append(r.Violations, fmt.Sprintf(
				"optimality gap widened end-to-end: %.4f -> %.4f (through rung %d)",
				r.Obs[0].Gap, r.Obs[glast].Gap, glast))
		}
	}

	// Load shift: a coupled CC must not put a growing share of its bytes
	// on a path as it degrades. Only meaningful when the perturbed link
	// is exclusive to the path (degrading a shared link degrades every
	// path crossing it), every rung actually sent bytes, and the
	// scheduler selects paths by quality: minrtt lets the CC's windows
	// steer bytes, while roundrobin rotates blindly (a slow path can
	// hold a growing share of the send window) and redundant clones
	// every packet onto every subflow, so under those two the sent-byte
	// share reflects scheduler mechanics rather than congestion
	// avoidance.
	if degrade && !vegasDelay && r.Ladder.Coupled && r.Ladder.Exclusive &&
		r.Ladder.Base.Scheduler == "minrtt" {
		ok := true
		for _, o := range r.Obs {
			if math.IsNaN(o.Share) {
				ok = false
				break
			}
		}
		if ok {
			var sinv []string
			for k := 1; k < len(r.Obs); k++ {
				if r.Obs[k].Share > r.Obs[k-1].Share+p.ShareStepTol {
					sinv = append(sinv, fmt.Sprintf("rung %d->%d: %.4f -> %.4f",
						k-1, k, r.Obs[k-1].Share, r.Obs[k].Share))
				}
			}
			if len(sinv) > p.MaxInversions {
				r.Violations = append(r.Violations, fmt.Sprintf(
					"load shifted onto the degrading path: %d share increases beyond tolerance (allowed %d): %s",
					len(sinv), p.MaxInversions, strings.Join(sinv, "; ")))
			}
			if r.Obs[last].Share > r.Obs[0].Share+p.ShareEndTol {
				r.Violations = append(r.Violations, fmt.Sprintf(
					"load share on the degrading path rose end-to-end: %.4f -> %.4f",
					r.Obs[0].Share, r.Obs[last].Share))
			}
		}
	}
}

// OK reports whether the ladder both measured cleanly and satisfied
// every trend assertion.
func (r *TrendReport) OK() bool {
	if len(r.Violations) > 0 {
		return false
	}
	for _, o := range r.Obs {
		if o.Err != "" {
			return false
		}
	}
	return true
}

// Write renders the report canonically: a ladder header line, one line
// per rung, and one line per violation. No wall-clock or worker-count
// data appears, so batch output is byte-identical across pool sizes.
func (r *TrendReport) Write(w io.Writer) {
	l := &r.Ladder
	verdict := "ok  "
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(w, "ladder %3d %s seed=%-19d knob=%-9s path=%d link=%s-%s excl=%t coupled=%t dynamic=%t cc=%s sched=%s\n",
		l.Index, verdict, l.Base.Seed, l.Knob, l.Path, l.LinkA, l.LinkB,
		l.Exclusive, l.Coupled, l.Dynamic, l.Base.CC, l.Base.Scheduler)
	field := knobField(l.Knob)
	for k, o := range r.Obs {
		val := strconv.FormatFloat(l.Values[k], 'g', -1, 64)
		if o.Err != "" {
			fmt.Fprintf(w, "  rung %d %s=%s ERROR %s\n", k, field, val, o.Err)
			continue
		}
		share := "n/a"
		if !math.IsNaN(o.Share) {
			share = fmt.Sprintf("%.4f", o.Share)
		}
		fmt.Fprintf(w, "  rung %d %s=%s goodput=%d gap=%.4f share=%s hash=%.12s\n",
			k, field, val, o.GoodputBytes, o.Gap, share, o.Hash)
	}
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  FAIL %s\n", v)
	}
}
