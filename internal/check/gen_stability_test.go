package check

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// specFingerprint collapses everything a Spec feeds into a simulation run
// — scenario JSON and every run option — into one hex digest.
func specFingerprint(sp Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%s|%v|%d|%v|%v\n", sp.Scenario, sp.CC, sp.Scheduler,
		sp.Order, sp.RunSeed, sp.Duration, sp.QueueScale)
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// The pinned draws. These lock the generator's RNG consumption order: any
// refactor that inserts, removes or reorders a draw reshuffles every
// spec after the change point and silently invalidates every recorded
// golden hash corpus, which would otherwise only surface as a wall of
// DIVERGED lines in CI with no pointer to the cause.
var genStability = []struct {
	seed int64
	want string
}{
	{1, "630ce7202e5eb2bf"},
	{2, "b291e5a5662b1ac9"},
	{3, "48ea9b30563e3848"},
	{7266964230113668128, "e38b965ebfbc6074"}, // SpecSeed(1, 0): first scenario of the seed-1 corpus
}

// genWindowWant pins a digest over the first 200 specs of base seed 1 —
// the window the golden corpus in testdata/ covers.
const genWindowWant = "e09fefd73b17b5bb"

const genStabilityMsg = `NewSpec(%d) fingerprint = %s, want %s.

The generator's draw sequence changed. This invalidates every recorded
golden hash corpus (internal/check/testdata/*.golden) and every pinned
trend calibration, because spec i of a batch is no longer the scenario
it was recorded against. If the change is intentional, regenerate the
corpora (go run ./cmd/simcheck -n 200 -seed 1 -write-golden
internal/check/testdata/hashes-seed1.golden), re-run the trend smoke,
and update the pins in gen_stability_test.go in the same commit.`

func TestNewSpecSeedStability(t *testing.T) {
	for _, tc := range genStability {
		if got := specFingerprint(NewSpec(tc.seed)); got != tc.want {
			t.Errorf(genStabilityMsg, tc.seed, got, tc.want)
		}
	}
}

func TestNewSpecWindowStability(t *testing.T) {
	h := sha256.New()
	for i := 0; i < 200; i++ {
		fmt.Fprintf(h, "%s\n", specFingerprint(NewSpec(SpecSeed(1, i))))
	}
	if got := hex.EncodeToString(h.Sum(nil))[:16]; got != genWindowWant {
		t.Errorf(genStabilityMsg, 1, "window:"+got, "window:"+genWindowWant)
	}
}
