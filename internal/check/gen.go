package check

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"mptcpsim/internal/sim"
)

// Spec is one randomly generated but fully valid experiment: a scenario
// file (the public JSON format) plus the run options that go with it.
// Specs are a pure function of their seed, so a failing one is replayed
// from two numbers.
type Spec struct {
	// Seed is the generator seed the spec was derived from.
	Seed int64
	// Name is a short label summarising the draw.
	Name string
	// Scenario is the topology + event timeline in mptcpsim's scenario
	// JSON format.
	Scenario []byte
	// CC, Scheduler, Order, RunSeed, Duration and QueueScale are the run
	// options.
	CC         string
	Scheduler  string
	Order      []int
	RunSeed    int64
	Duration   time.Duration
	QueueScale float64
}

// SpecSeed derives the i-th spec seed from a base seed (splitmix64), so a
// batch of specs can be generated independently and in parallel while
// staying a pure function of (base, i).
func SpecSeed(base int64, i int) int64 {
	z := uint64(base) ^ 0x9e3779b97f4a7c15*uint64(i+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	// Clear the sign bit: seeds print nicer and Options maps 0 to 1
	// anyway.
	return int64(z &^ (1 << 63))
}

// The value palettes. Rates are everyday access/backbone capacities;
// keeping them ≥ 5 Mbps avoids degenerate runs where nothing converges
// inside the short simcheck horizon.
var (
	genRates  = []float64{5, 8, 10, 20, 40, 60, 80, 100}
	genCCs    = []string{"cubic", "reno", "lia", "olia", "balia", "wvegas"}
	genScheds = []string{"minrtt", "roundrobin", "redundant"}
)

// scenario JSON mirror structs. internal/check cannot import the root
// package (the root imports check), so it emits the documented on-disk
// format directly; the driver parses it back through the public loader,
// which doubles as a continuous test of the parse→build path.
type genFile struct {
	Links     []genLink `json:"links"`
	Endpoints struct {
		Src string `json:"src"`
		Dst string `json:"dst"`
	} `json:"endpoints"`
	Paths  []genPath  `json:"paths"`
	Events []genEvent `json:"events,omitempty"`
}

type genLink struct {
	A          string  `json:"a"`
	B          string  `json:"b"`
	Mbps       float64 `json:"mbps"`
	DelayMs    float64 `json:"delay_ms"`
	QueueBytes int     `json:"queue_bytes,omitempty"`
	Loss       float64 `json:"loss,omitempty"`
}

type genPath struct {
	Nodes []string `json:"nodes"`
}

type genEvent struct {
	AtMs       float64 `json:"at_ms"`
	Type       string  `json:"type"`
	A          string  `json:"a"`
	B          string  `json:"b"`
	Mbps       float64 `json:"mbps,omitempty"`
	DelayMs    float64 `json:"delay_ms,omitempty"`
	Loss       float64 `json:"loss,omitempty"`
	DurationMs float64 `json:"duration_ms,omitempty"`
}

// NewSpec generates the spec for a seed: a layered random topology whose
// paths share columns of intermediate nodes (the paper's overlapping-path
// structure), a valid dynamic-event timeline drawn from the full dynamics
// vocabulary, and a random choice of congestion control, scheduler,
// subflow ordering, queue scale and run seed.
func NewSpec(seed int64) Spec {
	rng := sim.NewRand(seed)

	// Layered topology: s → column 1 → ... → column C → d. Each path
	// picks one node per column, so paths overlap wherever their picks
	// coincide — including fully overlapping (identical) paths, which are
	// legal and pin two subflows to one route.
	cols := 1 + rng.Intn(3)
	width := make([]int, cols)
	names := make([][]string, cols)
	for c := range width {
		width[c] = 1 + rng.Intn(2)
		for w := 0; w < width[c]; w++ {
			names[c] = append(names[c], fmt.Sprintf("m%d%d", c+1, w+1))
		}
	}
	nPaths := 2 + rng.Intn(3)
	paths := make([][]string, nPaths)
	for p := range paths {
		nodes := []string{"s"}
		for c := 0; c < cols; c++ {
			nodes = append(nodes, names[c][rng.Intn(width[c])])
		}
		paths[p] = append(nodes, "d")
	}

	// Links: every hop used by a path, in first-use order so the file is
	// deterministic.
	var sf genFile
	type pair struct{ a, b string }
	linkAt := make(map[pair]int)
	addLink := func(a, b string) {
		key := pair{a, b}
		if a > b {
			key = pair{b, a}
		}
		if _, ok := linkAt[key]; ok {
			return
		}
		delay := math.Round((0.5+rng.Float64()*4)*1000) / 1000
		linkAt[key] = len(sf.Links)
		sf.Links = append(sf.Links, genLink{
			A: a, B: b,
			Mbps:    genRates[rng.Intn(len(genRates))],
			DelayMs: delay,
		})
	}
	for _, nodes := range paths {
		for i := 1; i < len(nodes); i++ {
			addLink(nodes[i-1], nodes[i])
		}
	}
	// Occasionally an extra link no path uses: events may target it, and
	// nothing else should care.
	if rng.Bool(0.3) && cols >= 2 {
		addLink(names[0][0], names[cols-1][width[cols-1]-1])
	}
	// Occasionally a lossy link and a shallow explicit buffer.
	if rng.Bool(0.25) {
		sf.Links[rng.Intn(len(sf.Links))].Loss = rng.Float64() * 0.01
	}
	if rng.Bool(0.2) {
		sf.Links[rng.Intn(len(sf.Links))].QueueBytes = (8 + rng.Intn(25)) * 1500
	}

	sf.Endpoints.Src, sf.Endpoints.Dst = "s", "d"
	for _, nodes := range paths {
		sf.Paths = append(sf.Paths, genPath{Nodes: nodes})
	}

	duration := time.Duration(800+rng.Intn(800)) * time.Millisecond
	sf.Events = genTimeline(rng, sf.Links, duration)

	// Run options.
	order := rng.Perm(nPaths)
	for i := range order {
		order[i]++
	}
	if rng.Bool(0.2) && nPaths > 1 {
		order = order[:1+rng.Intn(nPaths-1)]
	}
	qs := 1.0
	switch {
	case rng.Bool(0.15):
		qs = 0.5
	case rng.Bool(0.15):
		qs = 2
	}
	sp := Spec{
		Seed:       seed,
		CC:         genCCs[rng.Intn(len(genCCs))],
		Scheduler:  genScheds[rng.Intn(len(genScheds))],
		Order:      order,
		RunSeed:    rng.Int63(),
		Duration:   duration,
		QueueScale: qs,
	}
	sp.Scenario = emitGenFile(&sf)
	sp.Name = fmt.Sprintf("cc=%s sched=%s paths=%d links=%d events=%d dur=%v",
		sp.CC, sp.Scheduler, nPaths, len(sf.Links), len(sf.Events), duration)
	return sp
}

// emitGenFile marshals a scenario mirror into the public on-disk JSON —
// the single emission path NewSpec and ladder rungs (NewLadder) share,
// so every perturbation rung is a scenario the public loader accepts for
// exactly the reasons the base spec is.
func emitGenFile(sf *genFile) []byte {
	js, err := json.Marshal(sf)
	if err != nil {
		// Marshalling plain structs of strings and floats cannot fail.
		panic(fmt.Sprintf("check: marshal generated scenario: %v", err))
	}
	return js
}

// parseGenFile round-trips a generated scenario back into the mirror
// structs — the seam trend ladders use to mutate one knob and re-emit.
// It only accepts this package's own emissions, so failure is a bug.
func parseGenFile(scenario []byte) genFile {
	var f genFile
	if err := json.Unmarshal(scenario, &f); err != nil {
		panic(fmt.Sprintf("check: re-parse generated scenario: %v", err))
	}
	return f
}

// genTimeline draws a valid event sequence: strictly increasing times, a
// per-link state machine keeping the dynamics validation rules (no double
// link_down, link_up only on a downed link, no loss event inside an
// active burst window), and parameters inside their documented ranges.
func genTimeline(rng *sim.Rand, links []genLink, duration time.Duration) []genEvent {
	count := rng.Intn(4)
	if count == 0 {
		return nil
	}
	durMs := float64(duration) / float64(time.Millisecond)
	var events []genEvent
	down := make(map[int]bool)
	burstEndMs := make(map[int]float64)
	tMs := 0.1 * durMs
	for len(events) < count {
		tMs += (0.08 + rng.Float64()*0.25) * durMs
		if tMs >= 0.9*durMs {
			break
		}
		li := rng.Intn(len(links))
		l := links[li]
		ev := genEvent{AtMs: math.Round(tMs*1000) / 1000, A: l.A, B: l.B}
		switch {
		case down[li]:
			ev.Type = "link_up"
			down[li] = false
		default:
			kinds := []string{"set_rate", "set_delay", "link_down"}
			// Loss events are structural errors inside an active burst
			// window (the restore would clobber them); only offer them
			// strictly after it, with a 10 µs margin so millisecond
			// rounding cannot land one on the restore instant.
			if ev.AtMs > burstEndMs[li]+0.01 {
				kinds = append(kinds, "set_loss", "loss_burst")
			}
			ev.Type = kinds[rng.Intn(len(kinds))]
			switch ev.Type {
			case "set_rate":
				ev.Mbps = genRates[rng.Intn(len(genRates))]
			case "set_delay":
				ev.DelayMs = math.Round(rng.Float64()*8*1000) / 1000
			case "link_down":
				down[li] = true
			case "set_loss":
				ev.Loss = rng.Float64() * 0.05
			case "loss_burst":
				ev.Loss = 0.05 + rng.Float64()*0.25
				ev.DurationMs = math.Round((0.02+rng.Float64()*0.08)*durMs*1000) / 1000
				burstEndMs[li] = ev.AtMs + ev.DurationMs
			}
		}
		events = append(events, ev)
	}
	return events
}
