package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// TCPFlags is the TCP control-flag byte.
type TCPFlags uint8

// TCP control flags.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
)

// String renders flags in tcpdump style, e.g. "SYN|ACK".
func (f TCPFlags) String() string {
	if f == 0 {
		return "-"
	}
	var parts []string
	for _, e := range []struct {
		bit  TCPFlags
		name string
	}{{FlagSYN, "SYN"}, {FlagFIN, "FIN"}, {FlagRST, "RST"}, {FlagPSH, "PSH"}, {FlagACK, "ACK"}} {
		if f&e.bit != 0 {
			parts = append(parts, e.name)
		}
	}
	return strings.Join(parts, "|")
}

// WindowUnit is the fixed receive-window granularity on the wire. Both ends
// of a simulated connection use a constant window scale of 2^8, so the
// 16-bit wire field expresses windows up to 16 MB. Logical windows are
// rounded up to a multiple of WindowUnit when serialised.
const WindowUnit = 256

// TCPHeaderLen is the length of the option-less TCP header.
const TCPHeaderLen = 20

// TCP is the transport header of a TCP segment. Window is the logical
// receive window in bytes (see WindowUnit for its wire encoding).
type TCP struct {
	SrcPort, DstPort Port
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint32
	Options          []Option
}

// HeaderLen returns the header length in bytes including padded options.
func (t *TCP) HeaderLen() int {
	n := 0
	for _, o := range t.Options {
		n += o.wireLen()
	}
	// Options pad to a 4-byte boundary with NOPs.
	n = (n + 3) &^ 3
	return TCPHeaderLen + n
}

// Option returns the first option of the given kind, or nil.
func (t *TCP) Option(kind uint8) Option {
	for _, o := range t.Options {
		if o.Kind() == kind {
			return o
		}
	}
	return nil
}

// DSS returns the DSS option if present.
func (t *TCP) DSS() *DSS {
	if o := t.Option(KindMPTCP); o != nil {
		if d, ok := o.(*DSS); ok {
			return d
		}
	}
	// Multiple MPTCP options may coexist; scan them all.
	for _, o := range t.Options {
		if d, ok := o.(*DSS); ok {
			return d
		}
	}
	return nil
}

func (t *TCP) marshalInto(b []byte, ip *IPv4, payloadLen int) {
	hl := t.HeaderLen()
	binary.BigEndian.PutUint16(b[0:], uint16(t.SrcPort))
	binary.BigEndian.PutUint16(b[2:], uint16(t.DstPort))
	binary.BigEndian.PutUint32(b[4:], t.Seq)
	binary.BigEndian.PutUint32(b[8:], t.Ack)
	b[12] = byte(hl/4) << 4
	b[13] = byte(t.Flags)
	binary.BigEndian.PutUint16(b[14:], wireWindow(t.Window))
	binary.BigEndian.PutUint16(b[16:], 0) // checksum placeholder
	binary.BigEndian.PutUint16(b[18:], 0) // urgent pointer
	off := TCPHeaderLen
	for _, o := range t.Options {
		o.marshal(b[off:])
		off += o.wireLen()
	}
	for off < hl {
		b[off] = optNOP
		off++
	}
	binary.BigEndian.PutUint16(b[16:], tcpChecksum(b[:hl], ip, payloadLen))
}

func (t *TCP) unmarshal(b []byte) (headerLen int, err error) {
	if len(b) < TCPHeaderLen {
		return 0, fmt.Errorf("packet: TCP header truncated: %d bytes", len(b))
	}
	hl := int(b[12]>>4) * 4
	if hl < TCPHeaderLen || hl > len(b) {
		return 0, fmt.Errorf("packet: bad TCP data offset %d", hl)
	}
	t.SrcPort = Port(binary.BigEndian.Uint16(b[0:]))
	t.DstPort = Port(binary.BigEndian.Uint16(b[2:]))
	t.Seq = binary.BigEndian.Uint32(b[4:])
	t.Ack = binary.BigEndian.Uint32(b[8:])
	t.Flags = TCPFlags(b[13])
	t.Window = uint32(binary.BigEndian.Uint16(b[14:])) * WindowUnit
	t.Options, err = parseOptions(b[TCPHeaderLen:hl])
	if err != nil {
		return 0, err
	}
	return hl, nil
}

// wireWindow encodes a logical window, rounding up so a non-zero window is
// never advertised as zero.
func wireWindow(w uint32) uint16 {
	u := (uint64(w) + WindowUnit - 1) / WindowUnit
	if u > 0xffff {
		return 0xffff
	}
	return uint16(u)
}

// tcpChecksum computes the transport checksum over the RFC 793
// pseudo-header and the header bytes. The synthetic payload is all zeros,
// so it contributes only its length (via the pseudo-header).
func tcpChecksum(hdr []byte, ip *IPv4, payloadLen int) uint16 {
	var pseudo [12]byte
	binary.BigEndian.PutUint32(pseudo[0:], uint32(ip.Src))
	binary.BigEndian.PutUint32(pseudo[4:], uint32(ip.Dst))
	pseudo[9] = byte(ip.Proto)
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(hdr)+payloadLen))
	var sum uint32
	for i := 0; i < 12; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(pseudo[i:]))
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
