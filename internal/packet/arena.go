package packet

// Arena is a per-run free list of packets and their transport storage.
// Senders draw fully reset packets with GetTCP/GetUDP; the network engine
// recycles every arena packet at its terminal event — delivery to a local
// handler, or a drop anywhere — so steady-state packet transit allocates
// nothing: construction reuses the slot of an earlier packet.
//
// Ownership and aliasing rules (the ABA discipline):
//
//   - A packet is live from Get until its terminal tap (deliver/drop) has
//     run. Taps and handlers observe the packet synchronously inside that
//     window and must copy anything they keep — the slot is reused for an
//     unrelated packet on the next Get.
//   - The per-packet option values (Timestamps, DSS, SACK blocks) live in
//     the slot's TCPBuf and are recycled with it. Receivers that park a
//     mapping past the delivery callback copy the DSS by value.
//   - Recycle is idempotent and ignores foreign packets (constructed with
//     new/composite literals), so tests and external senders need no
//     arena awareness.
//
// An Arena is single-goroutine, like the sim.Loop that drives the run that
// owns it. The zero value is ready for use.
type Arena struct {
	free  []*slot
	stats ArenaStats
}

// slabSize is the number of slots added per arena growth, amortising the
// warm-up allocations the same way the event-node arena grows.
const slabSize = 64

// slot bundles one packet with the transport storage recycled alongside
// it. The network and transport headers are distinct objects on a Packet,
// so the slot carries them all and Get wires up the variant requested.
type slot struct {
	owner *Arena
	pkt   Packet
	tcp   TCPBuf
	udp   UDP
}

// ArenaStats counts the arena's traffic, for telemetry snapshots.
type ArenaStats struct {
	// Slots is the number of slots ever created (arena footprint).
	Slots uint64
	// Gets counts packets drawn; Reuses the subset served by the free
	// list instead of arena growth.
	Gets   uint64
	Reuses uint64
	// Recycles counts packets returned at their terminal event; Foreign
	// counts recycle attempts on packets the arena does not own (ignored).
	Recycles uint64
	Foreign  uint64
}

// Live returns the number of arena packets currently drawn and not yet
// recycled.
func (s ArenaStats) Live() uint64 { return s.Gets - s.Recycles }

// Stats returns a snapshot of the arena's accounting.
func (a *Arena) Stats() ArenaStats { return a.stats }

// TCPBuf is the per-packet TCP storage recycled with its packet: the
// header plus inline values for the options hot senders attach per
// segment (timestamps, a DSS mapping, SACK blocks). Building a segment
// into a TCPBuf allocates nothing; the option pointers appended to
// Options point into the buf itself.
type TCPBuf struct {
	TCP
	// Ts, Dss and Sack are the inline option values; Use* helpers fill
	// them and append them to Options.
	Ts   Timestamps
	Dss  DSS
	Sack SACK

	blocks [MaxSACKBlocks][2]uint32
	opts   [4]Option
}

// UseTimestamps attaches an RFC 7323 timestamps option.
func (b *TCPBuf) UseTimestamps(tsval, tsecr uint32) {
	b.Ts = Timestamps{TSval: tsval, TSecr: tsecr}
	b.Options = append(b.Options, &b.Ts)
}

// UseDSS attaches a DSS option holding a copy of d and returns the
// attached copy for further adjustment (data-ACK piggybacking).
func (b *TCPBuf) UseDSS(d DSS) *DSS {
	b.Dss = d
	b.Options = append(b.Options, &b.Dss)
	return &b.Dss
}

// UseSACK attaches a SACK option carrying a copy of up to MaxSACKBlocks
// blocks in the buf's inline block storage, so callers may pass scratch
// slices they will overwrite before the packet is delivered.
func (b *TCPBuf) UseSACK(blocks [][2]uint32) {
	n := copy(b.blocks[:], blocks)
	b.Sack = SACK{Blocks: b.blocks[:n]}
	b.Options = append(b.Options, &b.Sack)
}

// get pops a slot from the free list, growing the arena by a slab when
// it is empty.
func (a *Arena) get() *slot {
	a.stats.Gets++
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		a.stats.Reuses++
		return s
	}
	slab := make([]slot, slabSize)
	a.stats.Slots += slabSize
	for i := range slab {
		slab[i].owner = a
	}
	for i := len(slab) - 1; i >= 1; i-- {
		a.free = append(a.free, &slab[i])
	}
	return &slab[0]
}

// GetTCP draws a packet wired as a TCP segment: the packet's TCP header
// points at the returned TCPBuf, whose Options slice is reset onto its
// inline storage. Every field is freshly zeroed, exactly as a composite
// literal would build it.
func (a *Arena) GetTCP() (*Packet, *TCPBuf) {
	s := a.get()
	s.tcp.TCP = TCP{Options: s.tcp.opts[:0]}
	s.pkt = Packet{TCP: &s.tcp.TCP, slot: s}
	return &s.pkt, &s.tcp
}

// GetUDP draws a packet wired as a UDP datagram.
func (a *Arena) GetUDP() (*Packet, *UDP) {
	s := a.get()
	s.udp = UDP{}
	s.pkt = Packet{UDP: &s.udp, slot: s}
	return &s.pkt, &s.udp
}

// Recycle returns a packet to the arena at its terminal event. Packets
// the arena does not own — foreign composite literals, packets of another
// arena, or a packet already recycled — are counted and ignored, so the
// call is safe at every terminal point. The idempotence window closes
// when the slot is redrawn: after the next Get the old pointer IS the new
// live packet, so callers must recycle exactly once, at the packet's
// single terminal event — the discipline the engine's tap order enforces.
func (a *Arena) Recycle(p *Packet) {
	s := p.slot
	if s == nil || s.owner != a {
		a.stats.Foreign++
		return
	}
	// Disown before anything else: a second Recycle of the same pointer
	// (or of the stale packet after the slot is reused) is a no-op.
	p.slot = nil
	// Drop the option references so a recycled slot does not pin
	// heap-grown option slices or foreign option structs (SYN options).
	for i := range s.tcp.opts {
		s.tcp.opts[i] = nil
	}
	s.tcp.Options = nil
	s.tcp.Sack.Blocks = nil
	a.free = append(a.free, s)
	a.stats.Recycles++
}
