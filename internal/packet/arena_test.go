package packet

import (
	"bytes"
	"math/rand"
	"testing"
)

// tcpSpec is one randomly drawn TCP segment description. buildArena and
// buildRef construct the same segment through the arena and through plain
// composite literals; every observable byte must agree.
type tcpSpec struct {
	tag          Tag
	src, dst     Addr
	sport, dport Port
	seq, ack     uint32
	flags        TCPFlags
	window       uint32
	payload      int

	ts           bool
	tsval, tsecr uint32
	hasDSS       bool
	dss          DSS
	sack         [][2]uint32
}

func drawSpec(rng *rand.Rand) tcpSpec {
	s := tcpSpec{
		tag:     Tag(rng.Intn(4)),
		src:     Addr(rng.Uint32()),
		dst:     Addr(rng.Uint32()),
		sport:   Port(rng.Intn(1 << 16)),
		dport:   Port(rng.Intn(1 << 16)),
		seq:     rng.Uint32(),
		ack:     rng.Uint32(),
		flags:   FlagACK,
		window:  uint32(rng.Intn(1 << 20)),
		payload: rng.Intn(1460),
	}
	if rng.Intn(2) == 0 {
		s.ts = true
		s.tsval, s.tsecr = rng.Uint32(), rng.Uint32()
	}
	if rng.Intn(2) == 0 {
		s.hasDSS = true
		s.dss = DSS{HasMap: true, DSN: rng.Uint64(), SubflowSeq: rng.Uint32(),
			DataLen: uint16(s.payload)}
	}
	for i, n := 0, rng.Intn(MaxSACKBlocks+1); i < n; i++ {
		start := rng.Uint32()
		s.sack = append(s.sack, [2]uint32{start, start + uint32(rng.Intn(3000)+1)})
	}
	return s
}

func buildArena(a *Arena, s tcpSpec) *Packet {
	p, t := a.GetTCP()
	p.IP = IPv4{Tag: s.tag, Proto: ProtoTCP, Src: s.src, Dst: s.dst, TTL: 64}
	p.PayloadLen = s.payload
	t.SrcPort, t.DstPort = s.sport, s.dport
	t.Seq, t.Ack = s.seq, s.ack
	t.Flags, t.Window = s.flags, s.window
	if s.ts {
		t.UseTimestamps(s.tsval, s.tsecr)
	}
	if s.hasDSS {
		t.UseDSS(s.dss)
	}
	if len(s.sack) > 0 {
		t.UseSACK(s.sack)
	}
	return p
}

func buildRef(s tcpSpec) *Packet {
	tcp := &TCP{SrcPort: s.sport, DstPort: s.dport, Seq: s.seq, Ack: s.ack,
		Flags: s.flags, Window: s.window}
	if s.ts {
		tcp.Options = append(tcp.Options, &Timestamps{TSval: s.tsval, TSecr: s.tsecr})
	}
	if s.hasDSS {
		d := s.dss
		tcp.Options = append(tcp.Options, &d)
	}
	if len(s.sack) > 0 {
		blocks := make([][2]uint32, len(s.sack))
		copy(blocks, s.sack)
		tcp.Options = append(tcp.Options, &SACK{Blocks: blocks})
	}
	return &Packet{
		IP:         IPv4{Tag: s.tag, Proto: ProtoTCP, Src: s.src, Dst: s.dst, TTL: 64},
		TCP:        tcp,
		PayloadLen: s.payload,
	}
}

// TestQuickArenaMatchesReference interleaves draws, recycles and stale
// double-recycles against a plain-new reference: every arena-built packet
// must marshal byte-identically to its reference twin both when built and
// again at its terminal event, no matter how other slots churned in
// between. This is the differential oracle for slot reuse — aliasing
// between a live packet and a recycled slot shows up as a byte diff.
func TestQuickArenaMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var a Arena

		type pair struct {
			pkt  *Packet
			wire []byte // reference marshal captured at build time
		}
		var live []pair
		// freshDead holds packets recycled since the last draw. A stale
		// Recycle is a no-op only until the slot is redrawn — afterwards
		// the old pointer IS the new live packet (the ABA boundary the
		// arena documents), so the engine's one-terminal-event discipline
		// is what the differential models: stale recycles may race other
		// recycles, never a reuse.
		var freshDead []*Packet
		wantForeign := uint64(0)
		gets := uint64(0)

		check := func(p pair, when string) {
			if got := p.pkt.Marshal(); !bytes.Equal(got, p.wire) {
				t.Fatalf("seed %d: %s: arena packet diverged from reference\n got %x\nwant %x",
					seed, when, got, p.wire)
			}
		}

		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // draw and build
				s := drawSpec(rng)
				p := buildArena(&a, s)
				gets++
				freshDead = freshDead[:0] // slots may be redrawn now
				pr := pair{pkt: p, wire: buildRef(s).Marshal()}
				check(pr, "at build")
				live = append(live, pr)
			case r < 8 && len(live) > 0: // terminal event: verify then recycle
				i := rng.Intn(len(live))
				check(live[i], "before recycle")
				a.Recycle(live[i].pkt)
				freshDead = append(freshDead, live[i].pkt)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case r < 9 && len(freshDead) > 0: // stale recycle before any redraw
				a.Recycle(freshDead[rng.Intn(len(freshDead))])
				wantForeign++
			default: // recycle of a foreign composite-literal packet
				a.Recycle(buildRef(drawSpec(rng)))
				wantForeign++
			}
		}
		// Drain: every survivor must still match its reference.
		for _, p := range live {
			check(p, "at drain")
			a.Recycle(p.pkt)
		}
		st := a.Stats()
		if st.Live() != 0 {
			t.Fatalf("seed %d: %d packets leaked", seed, st.Live())
		}
		if st.Gets != gets || st.Foreign != wantForeign {
			t.Fatalf("seed %d: stats gets=%d foreign=%d, want %d/%d",
				seed, st.Gets, st.Foreign, gets, wantForeign)
		}
		if st.Recycles != gets {
			t.Fatalf("seed %d: recycles=%d, want %d", seed, st.Recycles, gets)
		}
	}
}

// TestSlotReuseOverwritesHeldOptionPointers pins down the aliasing rule
// the arena documents: option values live in the slot and are overwritten
// on reuse, so holders must copy by value before the terminal event (the
// sender's seg does exactly this for its DSS). The test asserts both
// halves — the value copy survives, the retained pointer does not.
func TestSlotReuseOverwritesHeldOptionPointers(t *testing.T) {
	var a Arena
	p1, t1 := a.GetTCP()
	orig := DSS{HasMap: true, DSN: 0x1111, SubflowSeq: 7, DataLen: 1400}
	attached := t1.UseDSS(orig)
	held := *attached // the discipline: copy by value before recycle
	a.Recycle(p1)

	p2, t2 := a.GetTCP()
	if p2 != p1 {
		t.Fatal("free list did not reuse the recycled slot")
	}
	next := DSS{HasMap: true, DSN: 0x9999, SubflowSeq: 21, DataLen: 500}
	t2.UseDSS(next)

	if held != orig {
		t.Fatalf("value copy corrupted by slot reuse: %+v", held)
	}
	if *attached != next {
		t.Fatalf("stale option pointer reads %+v; the slot was reused, so it must see the new mapping %+v — if this fails, Recycle stopped recycling option storage and the zero-alloc path is gone", *attached, next)
	}
}

// TestRecycleResetsOptionStorage verifies a reused slot starts from a
// clean state: no options, no SACK blocks, a zeroed header — exactly what
// a composite literal would give.
func TestRecycleResetsOptionStorage(t *testing.T) {
	var a Arena
	p, tb := a.GetTCP()
	tb.UseTimestamps(1, 2)
	tb.UseDSS(DSS{HasMap: true, DSN: 42})
	tb.UseSACK([][2]uint32{{1, 2}, {3, 4}})
	p.PayloadLen = 1000
	p.IP.Tag = 3
	_ = p.Size() // populate the wire cache; reuse must clear it
	a.Recycle(p)

	p2, tb2 := a.GetTCP()
	if len(tb2.Options) != 0 {
		t.Fatalf("reused slot carries %d stale options", len(tb2.Options))
	}
	if tb2.Seq != 0 || tb2.Ack != 0 || tb2.Flags != 0 || tb2.Window != 0 {
		t.Fatalf("reused slot carries stale header: %+v", tb2.TCP)
	}
	if p2.PayloadLen != 0 || p2.IP.Tag != 0 {
		t.Fatalf("reused packet carries stale IP/payload: %+v", p2)
	}
	if got := int(p2.Size()); got != IPv4HeaderLen+p2.TCP.HeaderLen() {
		t.Fatalf("reused packet's size cache is stale: %v", got)
	}
}
