package packet

import (
	"encoding/binary"
	"fmt"
)

// IPv4HeaderLen is the length of the fixed IPv4 header we emit (no IP
// options).
const IPv4HeaderLen = 20

// IPv4 is the network-layer header. The path Tag is carried in the
// DSCP/TOS byte, following the paper's tagging proposal.
type IPv4 struct {
	// Tag selects the forwarding path (DSCP byte on the wire).
	Tag Tag
	// ID is the identification field, useful to spot retransmissions in
	// captures.
	ID uint16
	// TTL is decremented at each hop; packets expire at zero.
	TTL uint8
	// Proto is the transport protocol number.
	Proto Protocol
	// Src and Dst are the endpoints' addresses.
	Src, Dst Addr
	// TotalLen is the total packet length in bytes; computed on Marshal.
	TotalLen uint16
}

// DefaultTTL is the initial TTL for packets leaving a host.
const DefaultTTL = 64

func (h *IPv4) marshalInto(b []byte) {
	b[0] = 0x45 // version 4, IHL 5 words
	b[1] = byte(h.Tag)
	binary.BigEndian.PutUint16(b[2:], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	binary.BigEndian.PutUint16(b[6:], 0) // flags/fragment offset
	b[8] = h.TTL
	b[9] = byte(h.Proto)
	binary.BigEndian.PutUint16(b[10:], 0) // checksum placeholder
	binary.BigEndian.PutUint32(b[12:], uint32(h.Src))
	binary.BigEndian.PutUint32(b[16:], uint32(h.Dst))
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:IPv4HeaderLen]))
}

func (h *IPv4) unmarshal(b []byte) error {
	if len(b) < IPv4HeaderLen {
		return fmt.Errorf("packet: IPv4 header truncated: %d bytes", len(b))
	}
	if b[0] != 0x45 {
		return fmt.Errorf("packet: unsupported IPv4 version/IHL byte %#x", b[0])
	}
	if Checksum(b[:IPv4HeaderLen]) != 0 {
		return fmt.Errorf("packet: IPv4 header checksum mismatch")
	}
	h.Tag = Tag(b[1])
	h.TotalLen = binary.BigEndian.Uint16(b[2:])
	h.ID = binary.BigEndian.Uint16(b[4:])
	h.TTL = b[8]
	h.Proto = Protocol(b[9])
	h.Src = Addr(binary.BigEndian.Uint32(b[12:]))
	h.Dst = Addr(binary.BigEndian.Uint32(b[16:]))
	return nil
}

// Checksum computes the RFC 1071 internet checksum of b. A buffer with a
// correct embedded checksum sums to zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
