package packet

import (
	"encoding/binary"
	"fmt"
)

// TCP option kinds.
const (
	optEOL  = 0
	optNOP  = 1
	KindMSS = 2
	// KindSACKPermitted advertises SACK support on SYN segments (RFC 2018).
	KindSACKPermitted = 4
	// KindSACK carries selective-acknowledgement blocks (RFC 2018).
	KindSACK = 5
	// KindTimestamps is the RFC 7323 timestamps option.
	KindTimestamps = 8
	// KindMPTCP is the multipath TCP option kind (RFC 6824).
	KindMPTCP = 30
)

// Timestamps is the RFC 7323 option: TSval is the sender's clock, TSecr
// echoes the most recent TSval received, giving one RTT sample per ACK
// even during loss recovery (no Karn ambiguity).
type Timestamps struct {
	TSval, TSecr uint32
}

// Kind implements Option.
func (*Timestamps) Kind() uint8 { return KindTimestamps }

func (*Timestamps) wireLen() int { return 10 }

func (o *Timestamps) marshal(b []byte) {
	b[0], b[1] = KindTimestamps, 10
	binary.BigEndian.PutUint32(b[2:], o.TSval)
	binary.BigEndian.PutUint32(b[6:], o.TSecr)
}

// SACKPermitted advertises selective-acknowledgement support on SYNs.
type SACKPermitted struct{}

// Kind implements Option.
func (*SACKPermitted) Kind() uint8 { return KindSACKPermitted }

func (*SACKPermitted) wireLen() int { return 2 }

func (*SACKPermitted) marshal(b []byte) { b[0], b[1] = KindSACKPermitted, 2 }

// MaxSACKBlocks bounds the blocks per option; three fit alongside an MPTCP
// data ACK within the 40-byte option space.
const MaxSACKBlocks = 3

// SACK reports received out-of-order ranges [Start, End) so the sender's
// scoreboard can repair multiple holes per round trip.
type SACK struct {
	Blocks [][2]uint32
}

// Kind implements Option.
func (*SACK) Kind() uint8 { return KindSACK }

func (o *SACK) wireLen() int { return 2 + 8*len(o.Blocks) }

func (o *SACK) marshal(b []byte) {
	b[0], b[1] = KindSACK, byte(o.wireLen())
	for i, blk := range o.Blocks {
		binary.BigEndian.PutUint32(b[2+8*i:], blk[0])
		binary.BigEndian.PutUint32(b[6+8*i:], blk[1])
	}
}

// MPTCP option subtypes.
const (
	subMPCapable = 0x0
	subMPJoin    = 0x1
	subDSS       = 0x2
)

// Option is a TCP header option. Implementations are wire-serialisable and
// produced back by parseOptions.
type Option interface {
	// Kind returns the TCP option kind byte.
	Kind() uint8
	// wireLen returns the serialised length in bytes.
	wireLen() int
	// marshal writes the option at the start of b.
	marshal(b []byte)
}

// MSSOption advertises the maximum segment size on SYN segments.
type MSSOption struct {
	MSS uint16
}

// Kind implements Option.
func (o *MSSOption) Kind() uint8 { return KindMSS }

func (o *MSSOption) wireLen() int { return 4 }

func (o *MSSOption) marshal(b []byte) {
	b[0], b[1] = KindMSS, 4
	binary.BigEndian.PutUint16(b[2:], o.MSS)
}

// MPCapable starts an MPTCP connection on the initial subflow's handshake
// (subtype 0). Key is the sender's connection key.
type MPCapable struct {
	Key uint64
}

// Kind implements Option.
func (o *MPCapable) Kind() uint8 { return KindMPTCP }

func (o *MPCapable) wireLen() int { return 12 }

func (o *MPCapable) marshal(b []byte) {
	b[0], b[1] = KindMPTCP, 12
	b[2] = subMPCapable << 4
	b[3] = 0
	binary.BigEndian.PutUint64(b[4:], o.Key)
}

// MPJoin attaches an additional subflow to an existing MPTCP connection
// (subtype 1). Token identifies the connection; AddrID the subflow.
type MPJoin struct {
	Token  uint32
	AddrID uint8
}

// Kind implements Option.
func (o *MPJoin) Kind() uint8 { return KindMPTCP }

func (o *MPJoin) wireLen() int { return 8 }

func (o *MPJoin) marshal(b []byte) {
	b[0], b[1] = KindMPTCP, 8
	b[2] = subMPJoin << 4
	b[3] = o.AddrID
	binary.BigEndian.PutUint32(b[4:], o.Token)
}

// DSS is the MPTCP Data Sequence Signal option (subtype 2): it maps this
// segment's subflow sequence space onto the connection-level 64-bit data
// sequence space and/or acknowledges connection-level data.
type DSS struct {
	// HasAck indicates DataAck is meaningful.
	HasAck bool
	// DataAck is the connection-level cumulative acknowledgement.
	DataAck uint64
	// HasMap indicates the DSN/SubflowSeq/DataLen mapping is meaningful.
	HasMap bool
	// DSN is the data sequence number of the first payload byte.
	DSN uint64
	// SubflowSeq is the subflow-relative sequence of the first payload byte.
	SubflowSeq uint32
	// DataLen is the number of payload bytes covered by the mapping.
	DataLen uint16
}

// DSS flag bits (we always use 8-octet DSNs and acks).
const (
	dssFlagAck  = 0x01
	dssFlagAck8 = 0x02
	dssFlagMap  = 0x04
	dssFlagDSN8 = 0x08
)

// Kind implements Option.
func (o *DSS) Kind() uint8 { return KindMPTCP }

func (o *DSS) wireLen() int {
	n := 4
	if o.HasAck {
		n += 8
	}
	if o.HasMap {
		n += 8 + 4 + 2
	}
	return n
}

func (o *DSS) marshal(b []byte) {
	b[0], b[1] = KindMPTCP, byte(o.wireLen())
	b[2] = subDSS << 4
	var flags byte
	if o.HasAck {
		flags |= dssFlagAck | dssFlagAck8
	}
	if o.HasMap {
		flags |= dssFlagMap | dssFlagDSN8
	}
	b[3] = flags
	off := 4
	if o.HasAck {
		binary.BigEndian.PutUint64(b[off:], o.DataAck)
		off += 8
	}
	if o.HasMap {
		binary.BigEndian.PutUint64(b[off:], o.DSN)
		binary.BigEndian.PutUint32(b[off+8:], o.SubflowSeq)
		binary.BigEndian.PutUint16(b[off+12:], o.DataLen)
	}
}

// parseOptions decodes the option bytes of a TCP header.
func parseOptions(b []byte) ([]Option, error) {
	var opts []Option
	for len(b) > 0 {
		kind := b[0]
		switch kind {
		case optEOL:
			return opts, nil
		case optNOP:
			b = b[1:]
			continue
		}
		if len(b) < 2 {
			return nil, fmt.Errorf("packet: option kind %d truncated", kind)
		}
		l := int(b[1])
		if l < 2 || l > len(b) {
			return nil, fmt.Errorf("packet: option kind %d bad length %d", kind, l)
		}
		body := b[:l]
		switch kind {
		case KindMSS:
			if l != 4 {
				return nil, fmt.Errorf("packet: MSS option length %d", l)
			}
			opts = append(opts, &MSSOption{MSS: binary.BigEndian.Uint16(body[2:])})
		case KindSACKPermitted:
			if l != 2 {
				return nil, fmt.Errorf("packet: SACK-permitted option length %d", l)
			}
			opts = append(opts, &SACKPermitted{})
		case KindTimestamps:
			if l != 10 {
				return nil, fmt.Errorf("packet: timestamps option length %d", l)
			}
			opts = append(opts, &Timestamps{
				TSval: binary.BigEndian.Uint32(body[2:]),
				TSecr: binary.BigEndian.Uint32(body[6:]),
			})
		case KindSACK:
			if l < 10 || (l-2)%8 != 0 {
				return nil, fmt.Errorf("packet: SACK option length %d", l)
			}
			o := &SACK{}
			for off := 2; off < l; off += 8 {
				o.Blocks = append(o.Blocks, [2]uint32{
					binary.BigEndian.Uint32(body[off:]),
					binary.BigEndian.Uint32(body[off+4:]),
				})
			}
			opts = append(opts, o)
		case KindMPTCP:
			o, err := parseMPTCP(body)
			if err != nil {
				return nil, err
			}
			opts = append(opts, o)
		default:
			return nil, fmt.Errorf("packet: unknown option kind %d", kind)
		}
		b = b[l:]
	}
	return opts, nil
}

func parseMPTCP(b []byte) (Option, error) {
	sub := b[2] >> 4
	switch sub {
	case subMPCapable:
		if len(b) != 12 {
			return nil, fmt.Errorf("packet: MP_CAPABLE length %d", len(b))
		}
		return &MPCapable{Key: binary.BigEndian.Uint64(b[4:])}, nil
	case subMPJoin:
		if len(b) != 8 {
			return nil, fmt.Errorf("packet: MP_JOIN length %d", len(b))
		}
		return &MPJoin{AddrID: b[3], Token: binary.BigEndian.Uint32(b[4:])}, nil
	case subDSS:
		o := &DSS{}
		flags := b[3]
		o.HasAck = flags&dssFlagAck != 0
		o.HasMap = flags&dssFlagMap != 0
		off := 4
		if o.HasAck {
			if len(b) < off+8 {
				return nil, fmt.Errorf("packet: DSS ack truncated")
			}
			o.DataAck = binary.BigEndian.Uint64(b[off:])
			off += 8
		}
		if o.HasMap {
			if len(b) < off+14 {
				return nil, fmt.Errorf("packet: DSS map truncated")
			}
			o.DSN = binary.BigEndian.Uint64(b[off:])
			o.SubflowSeq = binary.BigEndian.Uint32(b[off+8:])
			o.DataLen = binary.BigEndian.Uint16(b[off+12:])
		}
		return o, nil
	default:
		return nil, fmt.Errorf("packet: unknown MPTCP subtype %d", sub)
	}
}
