package packet

import (
	"testing"
	"testing/quick"
)

func TestAddrString(t *testing.T) {
	a := MakeAddr(10, 0, 0, 1)
	if a.String() != "10.0.0.1" {
		t.Fatalf("got %q", a.String())
	}
	if MakeAddr(192, 168, 255, 254).String() != "192.168.255.254" {
		t.Fatal("addr formatting broken")
	}
}

func TestFlowReverseAndHash(t *testing.T) {
	f := Flow{
		Proto: ProtoTCP,
		Src:   Endpoint{MakeAddr(10, 0, 0, 1), 5001},
		Dst:   Endpoint{MakeAddr(10, 0, 0, 2), 80},
	}
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src {
		t.Fatal("Reverse did not swap endpoints")
	}
	if f.FastHash() != r.FastHash() {
		t.Fatal("FastHash must be symmetric")
	}
	g := f
	g.Dst.Port = 81
	if f.FastHash() == g.FastHash() {
		t.Fatal("different flows should hash differently (with high probability)")
	}
}

// Property: FastHash symmetry holds for arbitrary flows.
func TestQuickFastHashSymmetric(t *testing.T) {
	f := func(sa, da uint32, sp, dp uint16, proto uint8) bool {
		fl := Flow{
			Proto: Protocol(proto),
			Src:   Endpoint{Addr(sa), Port(sp)},
			Dst:   Endpoint{Addr(da), Port(dp)},
		}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example-style check: sum of buffer with embedded checksum is 0.
	h := IPv4{Tag: 3, ID: 7, TTL: 64, Proto: ProtoTCP,
		Src: MakeAddr(10, 0, 0, 1), Dst: MakeAddr(10, 0, 0, 2), TotalLen: 40}
	var b [IPv4HeaderLen]byte
	h.marshalInto(b[:])
	if Checksum(b[:]) != 0 {
		t.Fatal("checksum of checksummed header must be 0")
	}
	// Corrupt a byte: checksum must catch it.
	b[8] ^= 0xff
	if Checksum(b[:]) == 0 {
		t.Fatal("corruption not detected")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	h := IPv4{Tag: 2, ID: 1234, TTL: 61, Proto: ProtoUDP,
		Src: MakeAddr(10, 1, 2, 3), Dst: MakeAddr(10, 3, 2, 1), TotalLen: 28}
	var b [IPv4HeaderLen]byte
	h.marshalInto(b[:])
	var g IPv4
	if err := g.unmarshal(b[:]); err != nil {
		t.Fatal(err)
	}
	if g != h {
		t.Fatalf("round trip: got %+v want %+v", g, h)
	}
}

func TestIPv4UnmarshalErrors(t *testing.T) {
	var g IPv4
	if err := g.unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short buffer should fail")
	}
	b := make([]byte, IPv4HeaderLen)
	b[0] = 0x46 // IHL 6: options unsupported
	if err := g.unmarshal(b); err == nil {
		t.Fatal("IHL != 5 should fail")
	}
}

func mkDataPacket(tag Tag, seq uint32, payload int) *Packet {
	return &Packet{
		IP: IPv4{Tag: tag, TTL: DefaultTTL, Proto: ProtoTCP,
			Src: MakeAddr(10, 0, 0, 1), Dst: MakeAddr(10, 0, 0, 2)},
		TCP: &TCP{
			SrcPort: 5001, DstPort: 80,
			Seq: seq, Ack: 99, Flags: FlagACK, Window: 65536,
			Options: []Option{&DSS{
				HasAck: true, DataAck: 1 << 40,
				HasMap: true, DSN: 1<<40 + 5, SubflowSeq: seq, DataLen: uint16(payload),
			}},
		},
		PayloadLen: payload,
	}
}

func TestPacketMarshalUnmarshalTCP(t *testing.T) {
	p := mkDataPacket(3, 1000, 1460)
	wire := p.Marshal()
	if len(wire) != int(p.Size()) {
		t.Fatalf("wire len %d != Size %d", len(wire), p.Size())
	}
	q, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if q.IP.Tag != 3 || q.TCP == nil || q.TCP.Seq != 1000 || q.PayloadLen != 1460 {
		t.Fatalf("round trip mismatch: %s", q)
	}
	d := q.TCP.DSS()
	if d == nil {
		t.Fatal("DSS option lost")
	}
	if !d.HasAck || d.DataAck != 1<<40 || !d.HasMap || d.DSN != 1<<40+5 || d.DataLen != 1460 {
		t.Fatalf("DSS mismatch: %+v", d)
	}
	if q.Flow() != p.Flow() {
		t.Fatalf("flow mismatch: %v vs %v", q.Flow(), p.Flow())
	}
}

func TestPacketMarshalUnmarshalSYN(t *testing.T) {
	p := &Packet{
		IP: IPv4{TTL: DefaultTTL, Proto: ProtoTCP,
			Src: MakeAddr(10, 0, 0, 1), Dst: MakeAddr(10, 0, 0, 2)},
		TCP: &TCP{
			SrcPort: 5001, DstPort: 80, Seq: 7, Flags: FlagSYN, Window: 65536,
			Options: []Option{
				&MSSOption{MSS: 1460},
				&MPCapable{Key: 0xdeadbeefcafef00d},
			},
		},
	}
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.TCP.Flags != FlagSYN {
		t.Fatalf("flags = %v", q.TCP.Flags)
	}
	mss, ok := q.TCP.Option(KindMSS).(*MSSOption)
	if !ok || mss.MSS != 1460 {
		t.Fatalf("MSS option lost: %+v", q.TCP.Options)
	}
	var cap *MPCapable
	for _, o := range q.TCP.Options {
		if c, ok := o.(*MPCapable); ok {
			cap = c
		}
	}
	if cap == nil || cap.Key != 0xdeadbeefcafef00d {
		t.Fatalf("MP_CAPABLE lost: %+v", q.TCP.Options)
	}
}

func TestPacketMarshalUnmarshalJoin(t *testing.T) {
	p := &Packet{
		IP: IPv4{Tag: 5, TTL: DefaultTTL, Proto: ProtoTCP,
			Src: MakeAddr(10, 0, 0, 1), Dst: MakeAddr(10, 0, 0, 2)},
		TCP: &TCP{SrcPort: 5002, DstPort: 80, Seq: 1, Flags: FlagSYN, Window: 4096,
			Options: []Option{&MPJoin{Token: 0xabc123, AddrID: 2}}},
	}
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	j, ok := q.TCP.Options[0].(*MPJoin)
	if !ok || j.Token != 0xabc123 || j.AddrID != 2 {
		t.Fatalf("MP_JOIN lost: %+v", q.TCP.Options)
	}
}

func TestPacketMarshalUnmarshalUDP(t *testing.T) {
	p := &Packet{
		IP: IPv4{Tag: 1, TTL: DefaultTTL, Proto: ProtoUDP,
			Src: MakeAddr(10, 0, 0, 9), Dst: MakeAddr(10, 0, 0, 2)},
		UDP:        &UDP{SrcPort: 9000, DstPort: 9001},
		PayloadLen: 500,
	}
	q, err := Unmarshal(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if q.UDP == nil || q.UDP.SrcPort != 9000 || q.PayloadLen != 500 {
		t.Fatalf("UDP round trip: %s", q)
	}
	if q.UDP.Length != UDPHeaderLen+500 {
		t.Fatalf("UDP length field = %d", q.UDP.Length)
	}
}

func TestCorruptedPacketRejected(t *testing.T) {
	wire := mkDataPacket(1, 42, 100).Marshal()
	wire[12] ^= 0x01 // flip a source-address bit
	if _, err := Unmarshal(wire); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestWireWindowRounding(t *testing.T) {
	tests := []struct {
		in   uint32
		want uint16
	}{
		{0, 0}, {1, 1}, {255, 1}, {256, 1}, {257, 2}, {65536, 256},
		{0xffffffff, 0xffff},
	}
	for _, tc := range tests {
		if got := wireWindow(tc.in); got != tc.want {
			t.Errorf("wireWindow(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// Property: TCP packets with arbitrary field values round-trip through
// Marshal/Unmarshal (windows quantised to the wire unit).
func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(tag uint8, seq, ack uint32, sp, dp uint16, payload uint16, winUnits uint16) bool {
		pl := int(payload % 1461)
		p := &Packet{
			IP: IPv4{Tag: Tag(tag), TTL: DefaultTTL, Proto: ProtoTCP,
				Src: MakeAddr(10, 0, 0, 1), Dst: MakeAddr(10, 0, 0, 2)},
			TCP: &TCP{SrcPort: Port(sp), DstPort: Port(dp), Seq: seq, Ack: ack,
				Flags: FlagACK, Window: uint32(winUnits) * WindowUnit},
			PayloadLen: pl,
		}
		q, err := Unmarshal(p.Marshal())
		if err != nil {
			return false
		}
		return q.IP.Tag == Tag(tag) && q.TCP.Seq == seq && q.TCP.Ack == ack &&
			q.TCP.Window == uint32(winUnits)*WindowUnit && q.PayloadLen == pl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: DSS options round-trip for arbitrary sequence values.
func TestQuickDSSRoundTrip(t *testing.T) {
	f := func(dack, dsn uint64, ssn uint32, dlen uint16, hasAck, hasMap bool) bool {
		if !hasAck && !hasMap {
			hasMap = true
		}
		in := &DSS{HasAck: hasAck, DataAck: dack, HasMap: hasMap, DSN: dsn, SubflowSeq: ssn, DataLen: dlen}
		b := make([]byte, in.wireLen())
		in.marshal(b)
		out, err := parseMPTCP(b)
		if err != nil {
			return false
		}
		d, ok := out.(*DSS)
		if !ok || d.HasAck != hasAck || d.HasMap != hasMap {
			return false
		}
		if hasAck && d.DataAck != dack {
			return false
		}
		if hasMap && (d.DSN != dsn || d.SubflowSeq != ssn || d.DataLen != dlen) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketSize(t *testing.T) {
	p := mkDataPacket(1, 0, 1460)
	// IP 20 + TCP 20 + DSS(4+8+8+4+2=26 padded to 28) + payload.
	want := 20 + 20 + 28 + 1460
	if int(p.Size()) != want {
		t.Fatalf("Size = %d, want %d", p.Size(), want)
	}
	ack := &Packet{IP: IPv4{Proto: ProtoTCP}, TCP: &TCP{Flags: FlagACK}}
	if int(ack.Size()) != 40 {
		t.Fatalf("bare ACK size = %d, want 40", ack.Size())
	}
}

func TestStringsDoNotPanic(t *testing.T) {
	p := mkDataPacket(2, 9, 10)
	for _, s := range []string{p.String(), p.Flow().String(), p.Tag().String(),
		TagNone.String(), (FlagSYN | FlagACK).String(), TCPFlags(0).String(),
		ProtoTCP.String(), ProtoUDP.String(), Protocol(99).String()} {
		if s == "" {
			t.Fatal("empty String()")
		}
	}
}
