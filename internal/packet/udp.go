package packet

import (
	"encoding/binary"
	"fmt"
)

// UDPHeaderLen is the UDP header length in bytes.
const UDPHeaderLen = 8

// UDP is the transport header used by constant-bit-rate cross-traffic.
type UDP struct {
	SrcPort, DstPort Port
	// Length is the UDP length field (header plus payload); computed on
	// Marshal.
	Length uint16
}

func (u *UDP) marshalInto(b []byte, payloadLen int) {
	u.Length = uint16(UDPHeaderLen + payloadLen)
	binary.BigEndian.PutUint16(b[0:], uint16(u.SrcPort))
	binary.BigEndian.PutUint16(b[2:], uint16(u.DstPort))
	binary.BigEndian.PutUint16(b[4:], u.Length)
	binary.BigEndian.PutUint16(b[6:], 0) // checksum optional in IPv4
}

func (u *UDP) unmarshal(b []byte) error {
	if len(b) < UDPHeaderLen {
		return fmt.Errorf("packet: UDP header truncated: %d bytes", len(b))
	}
	u.SrcPort = Port(binary.BigEndian.Uint16(b[0:]))
	u.DstPort = Port(binary.BigEndian.Uint16(b[2:]))
	u.Length = binary.BigEndian.Uint16(b[4:])
	return nil
}
