// Package packet defines the wire formats that travel through the simulated
// network: an IPv4-like network header (carrying the per-path tag in the
// DSCP byte, as the paper's tagging scheme "overloads specific bits in the
// IP header"), a TCP header with MPTCP options (RFC 6824 style), and a UDP
// header for cross-traffic.
//
// Payloads are synthetic: a Packet records only its payload length, because
// TCP dynamics depend on byte counts, not byte values. Marshal fills
// payload bytes with zeros so captures still produce valid pcap files.
//
// The Flow/Endpoint types follow the gopacket design: small hashable values
// describing "from A to B" that can key maps, with a symmetric FastHash for
// load-balancing-style demultiplexing.
package packet

import (
	"fmt"

	"mptcpsim/internal/sim"
	"mptcpsim/internal/unit"
)

// Addr is an IPv4-style 32-bit address.
type Addr uint32

// MakeAddr assembles an address from dotted-quad components.
func MakeAddr(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Port is a transport-layer port number.
type Port uint16

// Protocol is the IP protocol number of the transport payload.
type Protocol uint8

// Protocol numbers (IANA).
const (
	ProtoTCP Protocol = 6
	ProtoUDP Protocol = 17
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Tag identifies the forwarding path of a packet. Tags are carried in the
// IPv4 DSCP/TOS byte: they have no global meaning, but routing is
// deterministic — packets with the same tag for the same destination always
// follow the same path.
type Tag uint8

// TagNone marks packets routed by the default (shortest-path) tables.
const TagNone Tag = 0

// String renders the tag.
func (t Tag) String() string {
	if t == TagNone {
		return "tag:-"
	}
	return fmt.Sprintf("tag:%d", uint8(t))
}

// Endpoint is one side of a flow: an address and a port. Endpoints are
// comparable and can be used as map keys.
type Endpoint struct {
	Addr Addr
	Port Port
}

// String renders "addr:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// Flow identifies a transport flow between two endpoints. Flows are
// comparable and can be used as map keys.
type Flow struct {
	Proto    Protocol
	Src, Dst Endpoint
}

// Reverse returns the flow in the opposite direction.
func (f Flow) Reverse() Flow { return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src} }

// String renders "TCP 10.0.0.1:5001->10.0.0.2:80".
func (f Flow) String() string {
	return fmt.Sprintf("%s %s->%s", f.Proto, f.Src, f.Dst)
}

// FastHash returns a non-cryptographic hash of the flow that is symmetric:
// a flow and its reverse hash identically, so both directions of a
// connection land in the same bucket (the gopacket property used for
// per-flow load balancing).
func (f Flow) FastHash() uint64 {
	a := endpointHash(f.Src)
	b := endpointHash(f.Dst)
	// Addition keeps the hash symmetric under src/dst exchange.
	h := a + b
	h ^= uint64(f.Proto) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

func endpointHash(e Endpoint) uint64 {
	h := uint64(e.Addr)*0x9e3779b97f4a7c15 + uint64(e.Port)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Packet is one datagram in flight. Exactly one of TCP and UDP is non-nil
// for transport packets. Packets are passed by pointer through the network
// and must be treated as immutable after being sent; taps that need copies
// make them explicitly.
type Packet struct {
	// UID is a simulation-unique identifier assigned at send time, used to
	// correlate capture records of the same packet at different points.
	UID uint64
	// IP is the network header (always present).
	IP IPv4
	// TCP is the transport header for ProtoTCP packets.
	TCP *TCP
	// UDP is the transport header for ProtoUDP packets.
	UDP *UDP
	// PayloadLen is the synthetic application payload size in bytes.
	PayloadLen int
	// SentAt is the virtual time the packet left its source host.
	SentAt sim.Time

	// slot is the arena slot backing this packet, nil for packets built
	// with composite literals. Arena.Recycle uses it to return the packet
	// and its option storage to the owning arena's free list.
	slot *slot
	// wire caches Size: packets are immutable once sent, and the engine
	// asks for the size at every queue and serialisation step.
	wire int32
}

// Size returns the on-wire size of the packet in bytes. The first call
// walks the headers and caches the result; packets must be treated as
// immutable after being sent, so later calls just read the cache.
func (p *Packet) Size() unit.ByteSize {
	if p.wire != 0 {
		return unit.ByteSize(p.wire)
	}
	n := IPv4HeaderLen
	switch {
	case p.TCP != nil:
		n += p.TCP.HeaderLen()
	case p.UDP != nil:
		n += UDPHeaderLen
	}
	p.wire = int32(n + p.PayloadLen)
	return unit.ByteSize(p.wire)
}

// Flow returns the transport flow of the packet.
func (p *Packet) Flow() Flow {
	f := Flow{Proto: p.IP.Proto}
	f.Src.Addr, f.Dst.Addr = p.IP.Src, p.IP.Dst
	switch {
	case p.TCP != nil:
		f.Src.Port, f.Dst.Port = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		f.Src.Port, f.Dst.Port = p.UDP.SrcPort, p.UDP.DstPort
	}
	return f
}

// Tag returns the forwarding tag carried in the IP header.
func (p *Packet) Tag() Tag { return p.IP.Tag }

// IsData reports whether the packet carries application payload.
func (p *Packet) IsData() bool { return p.PayloadLen > 0 }

// String renders a one-line summary for logs and test failures.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("%s %s seq=%d ack=%d len=%d %s",
			p.Flow(), p.TCP.Flags, p.TCP.Seq, p.TCP.Ack, p.PayloadLen, p.IP.Tag)
	case p.UDP != nil:
		return fmt.Sprintf("%s len=%d %s", p.Flow(), p.PayloadLen, p.IP.Tag)
	default:
		return fmt.Sprintf("ip %s->%s proto=%d len=%d", p.IP.Src, p.IP.Dst, p.IP.Proto, p.PayloadLen)
	}
}

// Marshal serialises the full packet (headers plus zero-filled payload)
// into wire format, suitable for pcap files.
func (p *Packet) Marshal() []byte {
	buf := make([]byte, int(p.Size()))
	p.IP.TotalLen = uint16(p.Size())
	p.IP.marshalInto(buf[:IPv4HeaderLen])
	rest := buf[IPv4HeaderLen:]
	switch {
	case p.TCP != nil:
		p.TCP.marshalInto(rest[:p.TCP.HeaderLen()], &p.IP, p.PayloadLen)
	case p.UDP != nil:
		p.UDP.marshalInto(rest[:UDPHeaderLen], p.PayloadLen)
	}
	return buf
}

// Unmarshal parses a packet previously produced by Marshal. It validates
// the IPv4 checksum and header structure.
func Unmarshal(data []byte) (*Packet, error) {
	var p Packet
	if err := p.IP.unmarshal(data); err != nil {
		return nil, err
	}
	if int(p.IP.TotalLen) > len(data) {
		return nil, fmt.Errorf("packet: truncated: total len %d > %d bytes", p.IP.TotalLen, len(data))
	}
	rest := data[IPv4HeaderLen:p.IP.TotalLen]
	switch p.IP.Proto {
	case ProtoTCP:
		var t TCP
		n, err := t.unmarshal(rest)
		if err != nil {
			return nil, err
		}
		p.TCP = &t
		p.PayloadLen = len(rest) - n
	case ProtoUDP:
		var u UDP
		if err := u.unmarshal(rest); err != nil {
			return nil, err
		}
		p.UDP = &u
		p.PayloadLen = len(rest) - UDPHeaderLen
	default:
		p.PayloadLen = len(rest)
	}
	return &p, nil
}
