package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartNoPathsIsNoOp(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU and heap so the profiles have content.
	sink := make([][]byte, 0, 1024)
	for i := 0; i < 1024; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartBadPathFails(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("Start accepted an uncreatable CPU profile path")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("stop accepted an uncreatable heap profile path")
	}
}
