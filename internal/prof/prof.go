// Package prof wires the standard pprof file profiles into the repo's
// CLIs: one call starts an optional CPU profile, and the returned stop
// function finishes it and writes an optional heap profile. Keeping the
// plumbing here means every command (simcheck, sweep) exposes identical
// -cpuprofile/-memprofile behaviour, and CI can archive hot-path profiles
// of the exact harness binaries it gates.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling according to the two (possibly empty) paths.
// With cpuPath set, CPU profiling runs until stop is called; with memPath
// set, stop garbage-collects and writes the live-heap profile there. The
// returned stop is never nil and is safe to call exactly once.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			// Up-to-date live-object accounting, as `go test -memprofile`
			// does before its final write.
			runtime.GC()
			werr := pprof.Lookup("allocs").WriteTo(f, 0)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return fmt.Errorf("heap profile: %w", werr)
			}
		}
		return nil
	}, nil
}
