package capture

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/route"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// rig: a -> b link with tag routes 1 and 2; returns sender node and dest.
type rig struct {
	loop *sim.Loop
	net  *netem.Network
	a, b topo.NodeID
	dst  packet.Addr
}

func newRig(t *testing.T) *rig {
	t.Helper()
	g := topo.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	ab, _ := g.AddDuplex(a, b, 100*unit.Mbps, time.Millisecond, unit.MB)
	loop := sim.NewLoop()
	tt := route.NewTagTable(g)
	n, err := netem.New(loop, g, tt)
	if err != nil {
		t.Fatal(err)
	}
	n.AssignAddr(a)
	dst := n.AssignAddr(b)
	p := topo.Path{Nodes: []topo.NodeID{a, b}, Links: []topo.LinkID{ab}}
	for _, tag := range []packet.Tag{1, 2} {
		if err := tt.AddPath(dst, tag, p); err != nil {
			t.Fatal(err)
		}
	}
	return &rig{loop: loop, net: n, a: a, b: b, dst: dst}
}

type devnull struct{}

func (devnull) Deliver(*packet.Packet) {}

func (r *rig) send(tag packet.Tag, payload int) {
	src, _ := r.net.AddrOf(r.a)
	r.net.Node(r.a).Send(&packet.Packet{
		IP:         packet.IPv4{Tag: tag, Proto: packet.ProtoUDP, Src: src, Dst: r.dst},
		UDP:        &packet.UDP{SrcPort: 1, DstPort: 2},
		PayloadLen: payload,
	})
}

func TestSnifferBinsByTag(t *testing.T) {
	r := newRig(t)
	if err := r.net.Node(r.b).Register(2, devnull{}); err != nil {
		t.Fatal(err)
	}
	sn := NewSniffer(r.net, r.b, 100*time.Millisecond)
	// 10 packets of tag 1 in bin 0; 5 of tag 2 in bin 1.
	r.loop.Schedule(10*time.Millisecond, func() {
		for i := 0; i < 10; i++ {
			r.send(1, 972) // 1000B wire
		}
	})
	r.loop.Schedule(110*time.Millisecond, func() {
		for i := 0; i < 5; i++ {
			r.send(2, 972)
		}
	})
	if err := r.loop.RunUntil(sim.Time(300 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s1 := sn.Series(1, "tag1", 300*time.Millisecond)
	s2 := sn.Series(2, "tag2", 300*time.Millisecond)
	// 10 * 1000B in a 100ms bin = 0.8 Mbps... wait: 10*1000*8 / 0.1s = 800 kbps.
	if got := s1.V[0]; got < 0.79 || got > 0.81 {
		t.Fatalf("tag1 bin0 = %v Mbps, want 0.8", got)
	}
	if s1.V[1] != 0 || s1.V[2] != 0 {
		t.Fatalf("tag1 spill: %v", s1.V)
	}
	if got := s2.V[1]; got < 0.39 || got > 0.41 {
		t.Fatalf("tag2 bin1 = %v Mbps, want 0.4", got)
	}
	if sn.Packets() != 15 {
		t.Fatalf("packets = %d", sn.Packets())
	}
	tags := sn.Tags()
	if len(tags) != 2 || tags[0] != 1 || tags[1] != 2 {
		t.Fatalf("tags = %v", tags)
	}
}

func TestSnifferSeriesLengthPadded(t *testing.T) {
	r := newRig(t)
	if err := r.net.Node(r.b).Register(2, devnull{}); err != nil {
		t.Fatal(err)
	}
	sn := NewSniffer(r.net, r.b, 10*time.Millisecond)
	if err := r.loop.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	s := sn.Series(1, "empty", time.Second)
	if s.Len() != 100 {
		t.Fatalf("len = %d, want 100", s.Len())
	}
}

func TestSnifferGoodputVsWire(t *testing.T) {
	r := newRig(t)
	if err := r.net.Node(r.b).Register(2, devnull{}); err != nil {
		t.Fatal(err)
	}
	wire := NewSniffer(r.net, r.b, 100*time.Millisecond)
	good := NewSniffer(r.net, r.b, 100*time.Millisecond)
	good.CountWire = false
	r.loop.Schedule(0, func() { r.send(1, 972) })
	if err := r.loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	w := wire.Series(1, "w", 100*time.Millisecond).V[0]
	g := good.Series(1, "g", 100*time.Millisecond).V[0]
	if !(g < w) {
		t.Fatalf("goodput %v should be below wire %v", g, w)
	}
	wantW := 1000 * 8.0 / 0.1 / 1e6
	wantG := 972 * 8.0 / 0.1 / 1e6
	if math.Abs(w-wantW) > 1e-9 || math.Abs(g-wantG) > 1e-9 {
		t.Fatalf("wire=%v want %v; good=%v want %v", w, wantW, g, wantG)
	}
}

func TestLinkSniffer(t *testing.T) {
	r := newRig(t)
	if err := r.net.Node(r.b).Register(2, devnull{}); err != nil {
		t.Fatal(err)
	}
	ls := NewLinkSniffer(r.net, 0, 100*time.Millisecond) // link 0 = a->b
	r.loop.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			r.send(1, 972)
		}
	})
	if err := r.loop.RunUntil(sim.Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	s := ls.Series("ab", 200*time.Millisecond)
	if got := s.V[0]; got < 0.31 || got > 0.33 {
		t.Fatalf("link bin0 = %v, want 0.32", got)
	}
}

func TestPCAPRoundTrip(t *testing.T) {
	r := newRig(t)
	if err := r.net.Node(r.b).Register(2, devnull{}); err != nil {
		t.Fatal(err)
	}
	sn := NewSniffer(r.net, r.b, 100*time.Millisecond)
	sn.Retain = true
	r.loop.Schedule(5*time.Millisecond, func() { r.send(1, 100) })
	r.loop.Schedule(15*time.Millisecond, func() { r.send(2, 200) })
	if err := r.loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePCAP(&buf, sn.Records()); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadPCAP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	// Frames must parse back into packets with the original tags.
	p0, err := packet.Unmarshal(recs[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := packet.Unmarshal(recs[1].Data)
	if err != nil {
		t.Fatal(err)
	}
	if p0.Tag() != 1 || p1.Tag() != 2 {
		t.Fatalf("tags = %v %v", p0.Tag(), p1.Tag())
	}
	if p0.PayloadLen != 100 || p1.PayloadLen != 200 {
		t.Fatalf("payloads = %d %d", p0.PayloadLen, p1.PayloadLen)
	}
	// Timestamps preserved at microsecond resolution.
	if recs[0].At.Duration().Round(time.Microsecond) < 6*time.Millisecond {
		// 5ms send + ~1ms link
		t.Fatalf("timestamp = %v", recs[0].At)
	}
}

func TestPCAPRejectsGarbage(t *testing.T) {
	if _, err := ReadPCAP(bytes.NewReader([]byte("not a pcap"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var buf bytes.Buffer
	if err := WritePCAP(&buf, []Record{{}}); err == nil {
		t.Fatal("record without data accepted")
	}
}

func TestFormatFrame(t *testing.T) {
	r := newRig(t)
	if err := r.net.Node(r.b).Register(2, devnull{}); err != nil {
		t.Fatal(err)
	}
	sn := NewSniffer(r.net, r.b, 100*time.Millisecond)
	sn.Retain = true
	// A TCP data packet with MPTCP DSS and a UDP packet.
	src, _ := r.net.AddrOf(r.a)
	r.loop.Schedule(0, func() {
		r.net.Node(r.a).Send(&packet.Packet{
			IP: packet.IPv4{Tag: 2, TTL: 64, Proto: packet.ProtoTCP, Src: src, Dst: r.dst},
			TCP: &packet.TCP{SrcPort: 40000, DstPort: 2, Seq: 2801, Ack: 1,
				Flags: packet.FlagACK | packet.FlagPSH, Window: 65536,
				Options: []packet.Option{&packet.DSS{HasMap: true, DSN: 2800, SubflowSeq: 2800, DataLen: 1400}}},
			PayloadLen: 1400,
		})
		r.send(1, 64)
	})
	if err := r.loop.RunUntil(sim.Time(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	recs := sn.Records()
	if len(recs) != 2 {
		t.Fatalf("retained %d frames", len(recs))
	}
	line, err := FormatFrame(PCAPRecord{At: recs[0].At, Data: recs[0].Data})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"tag:2", "seq 2801", "PSH|ACK", "DSS[dsn=2800 ssn=2800 len=1400]", "len 1400"} {
		if !strings.Contains(line, frag) {
			t.Fatalf("line missing %q: %s", frag, line)
		}
	}
	line, err = FormatFrame(PCAPRecord{At: recs[1].At, Data: recs[1].Data})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "UDP len 64") || !strings.Contains(line, "tag:1") {
		t.Fatalf("UDP line wrong: %s", line)
	}
	if _, err := FormatFrame(PCAPRecord{Data: []byte{1, 2, 3}}); err == nil {
		t.Fatal("garbage frame formatted")
	}
}
