// Package capture is the simulator's tshark: it attaches to the engine's
// tap points, records packets, filters them by tag (exactly how the paper
// determines the per-subflow split at the receiver), and bins bytes into
// fixed intervals to produce throughput time series at 10 or 100 ms
// resolution. Captures can also be exported to standard pcap files.
package capture

import (
	"time"

	"mptcpsim/internal/netem"
	"mptcpsim/internal/packet"
	"mptcpsim/internal/sim"
	"mptcpsim/internal/topo"
	"mptcpsim/internal/trace"
	"mptcpsim/internal/unit"
)

// Record is one captured packet.
type Record struct {
	At   sim.Time
	Size unit.ByteSize
	Tag  packet.Tag
	UID  uint64
	// Data holds the marshalled packet when the sniffer retains frames
	// for pcap export.
	Data []byte
}

// Sniffer observes packets delivered to one node (receiver-side capture,
// like running tshark on the destination host) and accumulates per-tag
// byte counts in fixed bins.
type Sniffer struct {
	loop *sim.Loop
	node topo.NodeID
	step time.Duration

	// DataOnly restricts counting to payload-carrying packets (the
	// paper's rate plots track the data stream, not ACKs).
	DataOnly bool
	// Retain keeps marshalled frames for pcap export.
	Retain bool
	// CountWire counts full wire size; when false, only payload bytes
	// (goodput). The paper measures wire throughput at the receiver.
	CountWire bool

	// bins is indexed by tag (a byte), dense so the per-packet count is
	// an array index, not a map probe.
	bins    [256][]float64
	records []Record
	total   uint64
}

var _ netem.Tap = (*Sniffer)(nil)

// NewSniffer captures packets delivered at node, binned at step.
func NewSniffer(n *netem.Network, node topo.NodeID, step time.Duration) *Sniffer {
	s := &Sniffer{
		loop:      n.Loop,
		node:      node,
		step:      step,
		CountWire: true,
	}
	n.AttachTap(s)
	return s
}

// OnDeliver implements netem.Tap.
func (s *Sniffer) OnDeliver(nd *netem.Node, pkt *packet.Packet) {
	if nd.ID != s.node {
		return
	}
	if s.DataOnly && pkt.PayloadLen == 0 {
		return
	}
	size := pkt.Size()
	if !s.CountWire {
		size = unit.ByteSize(pkt.PayloadLen)
	}
	s.count(pkt.Tag(), size)
	s.total++
	if s.Retain {
		s.records = append(s.records, Record{
			At: s.loop.Now(), Size: size, Tag: pkt.Tag(), UID: pkt.UID,
			Data: pkt.Marshal(),
		})
	}
}

// OnTransmit implements netem.Tap (receiver capture ignores it).
func (s *Sniffer) OnTransmit(*netem.Link, *packet.Packet) {}

// OnDrop implements netem.Tap (receiver capture ignores it).
func (s *Sniffer) OnDrop(string, *packet.Packet, netem.DropReason) {}

func (s *Sniffer) count(tag packet.Tag, size unit.ByteSize) {
	idx := int(s.loop.Now().Duration() / s.step)
	b := s.bins[tag]
	for len(b) <= idx {
		b = append(b, 0)
	}
	b[idx] += float64(size)
	s.bins[tag] = b
}

// Packets returns the number of packets counted.
func (s *Sniffer) Packets() uint64 { return s.total }

// Records returns retained frames (Retain must have been set).
func (s *Sniffer) Records() []Record { return s.records }

// Series converts a tag's binned byte counts to a throughput series in
// Mbps, padded to the run length.
func (s *Sniffer) Series(tag packet.Tag, name string, until time.Duration) *trace.Series {
	nBins := int(until / s.step)
	out := &trace.Series{Name: name, Step: s.step, V: make([]float64, nBins)}
	b := s.bins[tag]
	scale := 8 / s.step.Seconds() / 1e6 // bytes/bin -> Mbps
	for i := 0; i < nBins && i < len(b); i++ {
		out.V[i] = b[i] * scale
	}
	return out
}

// Tags returns the tags observed, in ascending order.
func (s *Sniffer) Tags() []packet.Tag {
	var tags []packet.Tag
	for t := range s.bins {
		if s.bins[t] != nil {
			tags = append(tags, packet.Tag(t))
		}
	}
	return tags
}

// LinkSniffer counts bytes crossing one directed link (wire utilisation
// measurement), binned like the receiver sniffer.
type LinkSniffer struct {
	loop *sim.Loop
	link topo.LinkID
	step time.Duration
	bins []float64
}

var _ netem.Tap = (*LinkSniffer)(nil)

// NewLinkSniffer captures transmissions on the given link.
func NewLinkSniffer(n *netem.Network, link topo.LinkID, step time.Duration) *LinkSniffer {
	s := &LinkSniffer{loop: n.Loop, link: link, step: step}
	n.AttachTap(s)
	return s
}

// OnTransmit implements netem.Tap.
func (s *LinkSniffer) OnTransmit(l *netem.Link, pkt *packet.Packet) {
	if l.Spec.ID != s.link {
		return
	}
	idx := int(s.loop.Now().Duration() / s.step)
	for len(s.bins) <= idx {
		s.bins = append(s.bins, 0)
	}
	s.bins[idx] += float64(pkt.Size())
}

// OnDeliver implements netem.Tap.
func (s *LinkSniffer) OnDeliver(*netem.Node, *packet.Packet) {}

// OnDrop implements netem.Tap.
func (s *LinkSniffer) OnDrop(string, *packet.Packet, netem.DropReason) {}

// Series returns the link's throughput in Mbps.
func (s *LinkSniffer) Series(name string, until time.Duration) *trace.Series {
	nBins := int(until / s.step)
	out := &trace.Series{Name: name, Step: s.step, V: make([]float64, nBins)}
	scale := 8 / s.step.Seconds() / 1e6
	for i := 0; i < nBins && i < len(s.bins); i++ {
		out.V[i] = s.bins[i] * scale
	}
	return out
}
