package capture

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"mptcpsim/internal/sim"
)

// Classic pcap file constants (little-endian variant).
const (
	pcapMagic   = 0xa1b2c3d4
	pcapVMajor  = 2
	pcapVMinor  = 4
	pcapSnapLen = 65535
	// linkTypeRaw is LINKTYPE_RAW: packets begin with the IP header.
	linkTypeRaw = 101
)

// WritePCAP emits the retained records as a standard pcap capture file
// (LINKTYPE_RAW), loadable in Wireshark/tshark — completing the loop with
// the paper's methodology.
func WritePCAP(w io.Writer, records []Record) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:], pcapMagic)
	binary.LittleEndian.PutUint16(hdr[4:], pcapVMajor)
	binary.LittleEndian.PutUint16(hdr[6:], pcapVMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], pcapSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for i, r := range records {
		if r.Data == nil {
			return fmt.Errorf("capture: record %d has no frame data (set Sniffer.Retain)", i)
		}
		var rh [16]byte
		ts := r.At.Duration()
		binary.LittleEndian.PutUint32(rh[0:], uint32(ts/time.Second))
		binary.LittleEndian.PutUint32(rh[4:], uint32(ts%time.Second/time.Microsecond))
		binary.LittleEndian.PutUint32(rh[8:], uint32(len(r.Data)))
		binary.LittleEndian.PutUint32(rh[12:], uint32(len(r.Data)))
		if _, err := w.Write(rh[:]); err != nil {
			return err
		}
		if _, err := w.Write(r.Data); err != nil {
			return err
		}
	}
	return nil
}

// PCAPRecord is one frame read back from a pcap file.
type PCAPRecord struct {
	At   sim.Time
	Data []byte
}

// ReadPCAP parses a pcap file written by WritePCAP.
func ReadPCAP(r io.Reader) ([]PCAPRecord, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("capture: short pcap header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("capture: bad pcap magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if lt := binary.LittleEndian.Uint32(hdr[20:]); lt != linkTypeRaw {
		return nil, fmt.Errorf("capture: unsupported link type %d", lt)
	}
	var out []PCAPRecord
	for {
		var rh [16]byte
		if _, err := io.ReadFull(r, rh[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("capture: short record header: %w", err)
		}
		sec := binary.LittleEndian.Uint32(rh[0:])
		usec := binary.LittleEndian.Uint32(rh[4:])
		capLen := binary.LittleEndian.Uint32(rh[8:])
		if capLen > pcapSnapLen {
			return nil, fmt.Errorf("capture: record exceeds snaplen: %d", capLen)
		}
		data := make([]byte, capLen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("capture: truncated record: %w", err)
		}
		at := sim.Time(sec)*sim.Time(time.Second) + sim.Time(usec)*sim.Time(time.Microsecond)
		out = append(out, PCAPRecord{At: at, Data: data})
	}
}
