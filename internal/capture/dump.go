package capture

import (
	"fmt"
	"strings"

	"mptcpsim/internal/packet"
)

// FormatFrame renders one captured frame as a tcpdump-style line:
//
//	0.015204 tag:2 10.0.0.1:40000 > 10.0.0.2:5001 Flags [PSH|ACK] seq 2801 ack 1 win 4194304 len 1400 DSS[dsn=2800 ssn=2800 len=1400 ack=0]
//
// It parses the wire bytes, so it works on any pcap produced by this
// package (and fails loudly on anything else).
func FormatFrame(r PCAPRecord) (string, error) {
	p, err := packet.Unmarshal(r.Data)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%.6f %s", r.At.Seconds(), p.IP.Tag)
	switch {
	case p.TCP != nil:
		t := p.TCP
		fmt.Fprintf(&sb, " %s:%d > %s:%d Flags [%s] seq %d ack %d win %d len %d",
			p.IP.Src, t.SrcPort, p.IP.Dst, t.DstPort, t.Flags, t.Seq, t.Ack, t.Window, p.PayloadLen)
		for _, o := range t.Options {
			switch v := o.(type) {
			case *packet.MSSOption:
				fmt.Fprintf(&sb, " mss %d", v.MSS)
			case *packet.SACKPermitted:
				sb.WriteString(" sackOK")
			case *packet.SACK:
				sb.WriteString(" sack")
				for _, b := range v.Blocks {
					fmt.Fprintf(&sb, " {%d:%d}", b[0], b[1])
				}
			case *packet.MPCapable:
				fmt.Fprintf(&sb, " mp_capable key=%#x", v.Key)
			case *packet.MPJoin:
				fmt.Fprintf(&sb, " mp_join token=%#x id=%d", v.Token, v.AddrID)
			case *packet.DSS:
				sb.WriteString(" DSS[")
				if v.HasMap {
					fmt.Fprintf(&sb, "dsn=%d ssn=%d len=%d", v.DSN, v.SubflowSeq, v.DataLen)
				}
				if v.HasAck {
					if v.HasMap {
						sb.WriteString(" ")
					}
					fmt.Fprintf(&sb, "ack=%d", v.DataAck)
				}
				sb.WriteString("]")
			}
		}
	case p.UDP != nil:
		fmt.Fprintf(&sb, " %s:%d > %s:%d UDP len %d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, p.PayloadLen)
	default:
		fmt.Fprintf(&sb, " %s > %s proto %d len %d", p.IP.Src, p.IP.Dst, p.IP.Proto, p.PayloadLen)
	}
	return sb.String(), nil
}
