// Package lp solves the small linear programs that define the paper's
// optimal-throughput baseline: maximise total rate over the path variables
// subject to one capacity constraint per shared link (Fig. 1c).
//
// The solver is a dense two-phase primal simplex with Bland's rule, which
// is exact (up to floating point) and immune to cycling — appropriate for
// problems with a handful of paths and links. The package also provides
// the max-min fair allocation (progressive water-filling) and the
// proportionally fair allocation (dual gradient method), the two classic
// notions of what "TCP-like" fairness achieves, used to interpret where
// the congestion-control algorithms land relative to the LP optimum.
package lp

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraints admit no solution.
	Infeasible
	// Unbounded: the objective can grow without limit.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Problem is the LP: maximise C·x subject to A x <= B, x >= 0.
type Problem struct {
	// C is the objective vector (length n).
	C []float64
	// A is the constraint matrix (m rows of length n).
	A [][]float64
	// B is the right-hand side (length m). Entries may be negative; the
	// solver runs a phase-1 when needed.
	B []float64
	// VarNames and RowNames label variables and constraints for printing;
	// optional.
	VarNames, RowNames []string
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X is the optimal point (length n), valid when Status == Optimal.
	X []float64
	// Objective is C·X.
	Objective float64
}

// Validate checks dimensional consistency.
func (p *Problem) Validate() error {
	n := len(p.C)
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d rows in A but %d in B", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	return nil
}

// String renders the problem in the paper's inequality style.
func (p *Problem) String() string {
	var sb strings.Builder
	name := func(j int) string {
		if j < len(p.VarNames) && p.VarNames[j] != "" {
			return p.VarNames[j]
		}
		return fmt.Sprintf("x%d", j+1)
	}
	sb.WriteString("max ")
	sb.WriteString(lincomb(p.C, name))
	sb.WriteString("\n")
	for i, row := range p.A {
		sb.WriteString("  ")
		sb.WriteString(lincomb(row, name))
		fmt.Fprintf(&sb, " <= %g", p.B[i])
		if i < len(p.RowNames) && p.RowNames[i] != "" {
			fmt.Fprintf(&sb, "   (%s)", p.RowNames[i])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func lincomb(coef []float64, name func(int) string) string {
	var parts []string
	for j, c := range coef {
		switch {
		case c == 0:
			continue
		case c == 1:
			parts = append(parts, name(j))
		default:
			parts = append(parts, fmt.Sprintf("%g*%s", c, name(j)))
		}
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}

const eps = 1e-9

// Solve runs the two-phase simplex method and returns the solution.
func (p *Problem) Solve() (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n := len(p.C)
	if n == 0 {
		return Solution{Status: Optimal, X: nil, Objective: 0}, nil
	}

	// Tableau columns: n structural + m slack (+ m artificial in phase 1).
	// Rows: m constraints + 1 objective row (stored separately).
	t := newTableau(p)

	if t.needsPhase1 {
		if !t.phase1() {
			return Solution{Status: Infeasible}, nil
		}
	}
	switch t.phase2() {
	case Unbounded:
		return Solution{Status: Unbounded}, nil
	}
	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			x[bv] = t.rhs[i]
		}
	}
	var obj float64
	for j := range x {
		if x[j] < 0 && x[j] > -eps {
			x[j] = 0
		}
		obj += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Objective: obj}, nil
}

// tableau is the dense simplex working state.
type tableau struct {
	n, m        int // structural vars, constraints
	cols        int // total columns (structural + slack + artificial)
	a           [][]float64
	rhs         []float64
	basis       []int
	obj         []float64 // current objective row (reduced costs source)
	needsPhase1 bool
	nArt        int
}

func newTableau(p *Problem) *tableau {
	n, m := len(p.C), len(p.B)
	t := &tableau{n: n, m: m}
	for _, b := range p.B {
		if b < -eps {
			t.needsPhase1 = true
		}
	}
	t.nArt = 0
	if t.needsPhase1 {
		t.nArt = m
	}
	t.cols = n + m + t.nArt
	t.a = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)
	for i := 0; i < m; i++ {
		row := make([]float64, t.cols)
		copy(row, p.A[i])
		rhs := p.B[i]
		sign := 1.0
		if rhs < -eps {
			// Multiply the row by -1 so the RHS is nonnegative; the slack
			// then enters with -1 and an artificial variable is basic.
			sign = -1
			for j := 0; j < n; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
		}
		row[n+i] = sign // slack
		if t.needsPhase1 {
			row[n+m+i] = 1 // artificial
		}
		t.a[i] = row
		t.rhs[i] = rhs
		if sign > 0 && !t.needsPhase1 {
			t.basis[i] = n + i
		} else if sign > 0 {
			t.basis[i] = n + i
		} else {
			t.basis[i] = n + m + i
		}
	}
	// Objective: maximize C (phase 2 uses this).
	t.obj = make([]float64, t.cols)
	copy(t.obj, p.C)
	return t
}

// reducedCosts computes z_j - c_j style reduced costs for objective c over
// the current basis, returning the row of net gains for entering each
// nonbasic column.
func (t *tableau) reducedCosts(c []float64) []float64 {
	// y = c_B applied through the basis rows; since rows are kept in
	// canonical form (basic columns are unit vectors), the reduced cost of
	// column j is c_j - sum_i c_basis[i] * a[i][j].
	rc := make([]float64, t.cols)
	for j := 0; j < t.cols; j++ {
		v := c[j]
		for i := 0; i < t.m; i++ {
			cb := c[t.basis[i]]
			if cb != 0 {
				v -= cb * t.a[i][j]
			}
		}
		rc[j] = v
	}
	return rc
}

// pivot performs a standard pivot on (row, col), keeping rows canonical.
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.rhs[row] *= inv
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		t.rhs[i] -= f * t.rhs[row]
	}
	t.basis[row] = col
}

// iterate runs simplex iterations maximising objective c over allowed
// columns; returns Optimal or Unbounded.
func (t *tableau) iterate(c []float64, allowed int) Status {
	for iter := 0; iter < 10000; iter++ {
		rc := t.reducedCosts(c)
		// Bland's rule: smallest-index entering column with positive
		// reduced cost.
		col := -1
		for j := 0; j < allowed; j++ {
			if rc[j] > eps {
				col = j
				break
			}
		}
		if col < 0 {
			return Optimal
		}
		// Ratio test, Bland tie-break on smallest basis index.
		row := -1
		best := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if t.a[i][col] > eps {
				r := t.rhs[i] / t.a[i][col]
				if r < best-eps || (r < best+eps && (row < 0 || t.basis[i] < t.basis[row])) {
					best = r
					row = i
				}
			}
		}
		if row < 0 {
			return Unbounded
		}
		t.pivot(row, col)
	}
	return Optimal // practically unreachable with Bland's rule
}

// phase1 drives artificial variables to zero; reports feasibility.
func (t *tableau) phase1() bool {
	// Minimise sum of artificials == maximise -sum.
	c := make([]float64, t.cols)
	for j := t.n + t.m; j < t.cols; j++ {
		c[j] = -1
	}
	t.iterate(c, t.cols)
	// Feasible iff the artificial objective reached ~0.
	var sum float64
	for i, bv := range t.basis {
		if bv >= t.n+t.m {
			sum += t.rhs[i]
		}
	}
	if sum > 1e-7 {
		return false
	}
	// Pivot any artificial still in the basis (degenerate, value 0) out.
	for i, bv := range t.basis {
		if bv < t.n+t.m {
			continue
		}
		for j := 0; j < t.n+t.m; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
	return true
}

// phase2 maximises the real objective over structural and slack columns.
func (t *tableau) phase2() Status {
	c := make([]float64, t.cols)
	copy(c, t.obj[:t.n])
	return t.iterate(c, t.n+t.m)
}

// Feasible reports whether x satisfies the problem's constraints within
// tolerance tol.
func (p *Problem) Feasible(x []float64, tol float64) bool {
	if len(x) != len(p.C) {
		return false
	}
	for _, v := range x {
		if v < -tol {
			return false
		}
	}
	for i, row := range p.A {
		var lhs float64
		for j, a := range row {
			lhs += a * x[j]
		}
		if lhs > p.B[i]+tol {
			return false
		}
	}
	return true
}

// ErrNotOptimal is returned by helpers that require an optimal solution.
var ErrNotOptimal = errors.New("lp: problem has no optimal solution")
