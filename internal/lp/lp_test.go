package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPaperLP(t *testing.T) {
	// The paper's Fig. 1c problem, stated directly.
	p := &Problem{
		C: []float64{1, 1, 1},
		A: [][]float64{
			{1, 1, 0}, // x1+x2 <= 40
			{0, 1, 1}, // x2+x3 <= 60
			{1, 0, 1}, // x1+x3 <= 80
		},
		B: []float64{40, 60, 80},
	}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, 90, 1e-6) {
		t.Fatalf("objective = %v, want 90", s.Objective)
	}
	// The unique optimum of the stated constraints is (30, 10, 50); the
	// paper text lists the same values with indices 1 and 2 swapped (typo).
	want := []float64{30, 10, 50}
	for i := range want {
		if !approx(s.X[i], want[i], 1e-6) {
			t.Fatalf("X = %v, want %v", s.X, want)
		}
	}
}

func TestPaperLPFromTopology(t *testing.T) {
	pn := topo.Paper()
	p := MaxThroughput(pn.Graph, pn.Paths)
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 90, 1e-6) {
		t.Fatalf("topology LP: %v obj=%v, want optimal 90", s.Status, s.Objective)
	}
	want := []float64{30, 10, 50}
	for i := range want {
		if !approx(s.X[i], want[i], 1e-6) {
			t.Fatalf("X = %v, want %v", s.X, want)
		}
	}
	// All three paper bottlenecks must be binding at the optimum.
	binding := p.BindingConstraints(s.X, 1e-6)
	caps := map[float64]bool{}
	for _, bi := range binding {
		caps[p.B[bi]] = true
	}
	for _, c := range []float64{40, 60, 80} {
		if !caps[c] {
			t.Fatalf("capacity-%v constraint not binding; binding=%v", c, binding)
		}
	}
	if !p.Feasible(s.X, 1e-9) {
		t.Fatal("optimal point reported infeasible")
	}
}

func TestSimpleKnownLPs(t *testing.T) {
	// max x+y st x<=2, y<=3 -> 5 at (2,3).
	p := &Problem{C: []float64{1, 1}, A: [][]float64{{1, 0}, {0, 1}}, B: []float64{2, 3}}
	s, err := p.Solve()
	if err != nil || s.Status != Optimal || !approx(s.Objective, 5, 1e-9) {
		t.Fatalf("box LP: %+v err=%v", s, err)
	}
	// max 3x+2y st x+y<=4, x+3y<=6 -> x=4,y=0 obj 12? Check: x+y<=4 binds at
	// (4,0): 3*4=12. Alternative vertex (3,1): 9+2=11. So 12.
	p = &Problem{C: []float64{3, 2}, A: [][]float64{{1, 1}, {1, 3}}, B: []float64{4, 6}}
	s, _ = p.Solve()
	if !approx(s.Objective, 12, 1e-9) {
		t.Fatalf("obj = %v, want 12", s.Objective)
	}
	// Degenerate: redundant constraint.
	p = &Problem{C: []float64{1}, A: [][]float64{{1}, {1}, {2}}, B: []float64{5, 5, 10}}
	s, _ = p.Solve()
	if !approx(s.Objective, 5, 1e-9) {
		t.Fatalf("degenerate obj = %v, want 5", s.Objective)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only y constrained.
	p := &Problem{C: []float64{1, 0}, A: [][]float64{{0, 1}}, B: []float64{1}}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= -1 with x >= 0 is infeasible.
	p := &Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{-1}}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestNegativeRHSFeasible(t *testing.T) {
	// -x <= -2 means x >= 2; max -x+3 ... use max -x st -x <= -2, x <= 5:
	// optimum x=2, obj=-2.
	p := &Problem{C: []float64{-1}, A: [][]float64{{-1}, {1}}, B: []float64{-2, 5}}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, -2, 1e-9) {
		t.Fatalf("got %+v, want optimal -2", s)
	}
}

func TestZeroVariables(t *testing.T) {
	p := &Problem{}
	s, err := p.Solve()
	if err != nil || s.Status != Optimal || s.Objective != 0 {
		t.Fatalf("empty LP: %+v err=%v", s, err)
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}
	if _, err := p.Solve(); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	p = &Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}
	if _, err := p.Solve(); err == nil {
		t.Fatal("row mismatch accepted")
	}
}

func TestProblemString(t *testing.T) {
	pn := topo.Paper()
	p := MaxThroughput(pn.Graph, pn.Paths)
	s := p.String()
	if s == "" || !contains(s, "max x1 + x2 + x3") || !contains(s, "<= 40") {
		t.Fatalf("String output unexpected:\n%s", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestGreedySequentialPaperTrap(t *testing.T) {
	pn := topo.Paper()
	// Default path (Path 2, index 1) first: the paper's greedy trap.
	x := GreedySequential(pn.Graph, pn.Paths, []int{1, 2, 0})
	// x2 = 40 (fills s-v1), x3 = min(60-40, 80) = 20, x1 = 0.
	want := []float64{0, 40, 20}
	for i := range want {
		if !approx(x[i], want[i], 1e-9) {
			t.Fatalf("greedy = %v, want %v", x, want)
		}
	}
	if !approx(TotalMbit(x), 60, 1e-9) {
		t.Fatalf("greedy total = %v, want 60", TotalMbit(x))
	}
}

func TestMaxMinPaperNet(t *testing.T) {
	pn := topo.Paper()
	x := MaxMin(pn.Graph, pn.Paths)
	// Progressive filling: all rise to 20 (s-v1 saturates, freezing x1,x2);
	// x3 continues to 40 (v3-v4 saturates at x2+x3=60).
	want := []float64{20, 20, 40}
	for i := range want {
		if !approx(x[i], want[i], 1e-6) {
			t.Fatalf("maxmin = %v, want %v", x, want)
		}
	}
	// Max-min must be feasible and below the LP optimum.
	p := MaxThroughput(pn.Graph, pn.Paths)
	if !p.Feasible(x, 1e-6) {
		t.Fatal("maxmin infeasible")
	}
	if TotalMbit(x) > 90+1e-6 {
		t.Fatal("maxmin exceeds LP optimum")
	}
}

func TestPropFairPaperNet(t *testing.T) {
	pn := topo.Paper()
	x := PropFair(pn.Graph, pn.Paths, 300000)
	// Analytic proportional-fair point: x2 = (200-sqrt(11200))/6 ~ 15.695,
	// x1 = 40-x2, x3 = 60-x2 (all three bottlenecks tight).
	x2 := (200 - math.Sqrt(11200)) / 6
	want := []float64{40 - x2, x2, 60 - x2}
	for i := range want {
		if !approx(x[i], want[i], 0.5) {
			t.Fatalf("propfair = %v, want ~%v", x, want)
		}
	}
	p := MaxThroughput(pn.Graph, pn.Paths)
	if !p.Feasible(x, 0.1) {
		t.Fatal("propfair infeasible beyond tolerance")
	}
	// Sits strictly between max-min total (80) and LP optimum (90).
	tot := TotalMbit(x)
	if tot < 80 || tot > 90 {
		t.Fatalf("propfair total = %v, want in (80, 90)", tot)
	}
}

// Property: on random feasible problems the simplex solution is feasible
// and no random feasible point beats it.
func TestQuickSimplexOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		m := 1 + rng.Intn(4)
		p := &Problem{C: make([]float64, n)}
		for j := range p.C {
			p.C[j] = rng.Float64() * 5
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.Float64() * 3
			}
			p.A = append(p.A, row)
			p.B = append(p.B, 1+rng.Float64()*10)
		}
		// Add a box so the problem is always bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 20)
		}
		s, err := p.Solve()
		if err != nil || s.Status != Optimal {
			return false
		}
		if !p.Feasible(s.X, 1e-6) {
			return false
		}
		// Sample random feasible points; none may beat the optimum.
		for k := 0; k < 200; k++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 20
			}
			if p.Feasible(x, 0) {
				var obj float64
				for j := range x {
					obj += p.C[j] * x[j]
				}
				if obj > s.Objective+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling all capacities scales the paper LP solution linearly.
func TestQuickLPScaling(t *testing.T) {
	base := func(scale float64) float64 {
		p := &Problem{
			C: []float64{1, 1, 1},
			A: [][]float64{{1, 1, 0}, {0, 1, 1}, {1, 0, 1}},
			B: []float64{40 * scale, 60 * scale, 80 * scale},
		}
		s, _ := p.Solve()
		return s.Objective
	}
	f := func(raw uint8) bool {
		scale := 0.5 + float64(raw)/64
		return approx(base(scale), 90*scale, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPhase1WithMixedSigns(t *testing.T) {
	// max x+y st x+y <= 10, -x <= -3 (x >= 3), -y <= -2 (y >= 2).
	p := &Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 1}, {-1, 0}, {0, -1}},
		B: []float64{10, -3, -2},
	}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 10, 1e-6) {
		t.Fatalf("got %+v, want optimal 10", s)
	}
	if s.X[0] < 3-1e-9 || s.X[1] < 2-1e-9 {
		t.Fatalf("lower bounds violated: %v", s.X)
	}
}

func TestPhase1Infeasible(t *testing.T) {
	// x >= 5 and x <= 3.
	p := &Problem{C: []float64{1}, A: [][]float64{{-1}, {1}}, B: []float64{-5, 3}}
	s, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestDisjointPathsLP(t *testing.T) {
	// Two disjoint paths: the LP decouples into per-path bottlenecks.
	g := topo.New()
	a, w, l, b := g.AddNode("a"), g.AddNode("w"), g.AddNode("l"), g.AddNode("b")
	aw, _ := g.AddDuplex(a, w, 30*unit.Mbps, 1e6, 0)
	wb, _ := g.AddDuplex(w, b, 100*unit.Mbps, 1e6, 0)
	al, _ := g.AddDuplex(a, l, 20*unit.Mbps, 1e6, 0)
	lb, _ := g.AddDuplex(l, b, 100*unit.Mbps, 1e6, 0)
	paths := []topo.Path{
		{Nodes: []topo.NodeID{a, w, b}, Links: []topo.LinkID{aw, wb}},
		{Nodes: []topo.NodeID{a, l, b}, Links: []topo.LinkID{al, lb}},
	}
	s, err := MaxThroughput(g, paths).Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !approx(s.Objective, 50, 1e-6) || !approx(s.X[0], 30, 1e-6) || !approx(s.X[1], 20, 1e-6) {
		t.Fatalf("disjoint LP = %+v, want 50 at (30, 20)", s)
	}
}
