package lp

import (
	"container/list"
	"fmt"
	"sync"

	"mptcpsim/internal/topo"
)

// Baselines bundles the analytic reference allocations of one topology:
// the LP optimum, the max-min fair point, and the proportionally fair
// point. All rates are in Mbps, indexed by path.
type Baselines struct {
	// ProblemString is the canonical rendering of the throughput LP (one
	// constraint per shared link) — also the cache key.
	ProblemString string
	// Solution is the LP optimum; Status is always Optimal.
	Solution Solution
	// MaxMin and PropFair are the fairness reference allocations.
	MaxMin, PropFair []float64
}

// baselineEntry is one memoised computation; once guarantees each distinct
// topology is solved exactly once even when many sweep workers miss the
// cache simultaneously.
type baselineEntry struct {
	once sync.Once
	b    *Baselines
	err  error
	// elem is the entry's position in the LRU list; nil once evicted.
	elem *list.Element
}

// DefaultBaselineCacheCap bounds the baseline cache. Dynamic-event
// timelines multiply distinct cache keys (one per capacity epoch per
// topology), so the cache is LRU-bounded instead of growing without limit
// for the lifetime of the process.
const DefaultBaselineCacheCap = 512

// baselineCache memoises Baselines by the canonical problem rendering,
// bounded by an LRU policy. A parameter sweep runs the same topology under
// many (CC, scheduler, ordering, seed) combinations; the LP and especially
// the iterative proportional-fair solve only depend on the
// capacity/incidence structure, so they are computed once per distinct
// topology (and, for dynamic runs, per capacity epoch) and shared.
var baselineCache = struct {
	sync.Mutex
	m map[string]*baselineEntry
	// lru orders keys by recency, oldest at the front.
	lru *list.List
	cap int
}{m: make(map[string]*baselineEntry), lru: list.New(), cap: DefaultBaselineCacheCap}

// evictOldestLocked removes the least recently used entry. The caller
// holds the cache lock. In-flight holders keep their entry pointer; only
// the map reference goes away.
func evictOldestLocked() bool {
	front := baselineCache.lru.Front()
	if front == nil {
		return false
	}
	old := front.Value.(string)
	if oe := baselineCache.m[old]; oe != nil {
		oe.elem = nil
	}
	delete(baselineCache.m, old)
	baselineCache.lru.Remove(front)
	return true
}

// lookupEntry returns the entry for key, creating it (and evicting the
// least recently used entry when the cache is full) on a miss.
func lookupEntry(key string) *baselineEntry {
	baselineCache.Lock()
	defer baselineCache.Unlock()
	e := baselineCache.m[key]
	if e != nil {
		if e.elem != nil {
			baselineCache.lru.MoveToBack(e.elem)
		}
		return e
	}
	for len(baselineCache.m) >= baselineCache.cap && evictOldestLocked() {
	}
	e = &baselineEntry{}
	e.elem = baselineCache.lru.PushBack(key)
	baselineCache.m[key] = e
	return e
}

// CachedBaselines returns the Baselines for the given topology and paths,
// computing them on first use and serving a cached copy afterwards. The
// cache key is the canonical LP rendering, which captures exactly the
// inputs all three baselines depend on: the per-link capacities and the
// path-link incidence. It is safe for concurrent use; callers receive
// private slice copies and may modify them freely.
func CachedBaselines(g *topo.Graph, paths []topo.Path) (*Baselines, error) {
	return CachedBaselinesCaps(g, paths, nil)
}

// CachedBaselinesCaps is CachedBaselines under per-link capacity
// overrides — the baselines of one capacity epoch of a dynamic run. The
// overridden capacities flow into the canonical problem rendering, so
// every distinct epoch gets its own cache slot.
func CachedBaselinesCaps(g *topo.Graph, paths []topo.Path, caps Caps) (*Baselines, error) {
	prob := MaxThroughputCaps(g, paths, caps)
	key := prob.String()
	e := lookupEntry(key)

	e.once.Do(func() {
		sol, err := prob.Solve()
		if err != nil {
			e.err = err
			return
		}
		if sol.Status != Optimal {
			e.err = fmt.Errorf("lp: baseline LP not optimal: %v", sol.Status)
			return
		}
		e.b = &Baselines{
			ProblemString: key,
			Solution:      sol,
			MaxMin:        MaxMinCaps(g, paths, caps),
			PropFair:      PropFairCaps(g, paths, caps, 0),
		}
	})
	if e.err != nil {
		return nil, e.err
	}

	return &Baselines{
		ProblemString: e.b.ProblemString,
		Solution: Solution{
			Status:    e.b.Solution.Status,
			X:         append([]float64(nil), e.b.Solution.X...),
			Objective: e.b.Solution.Objective,
		},
		MaxMin:   append([]float64(nil), e.b.MaxMin...),
		PropFair: append([]float64(nil), e.b.PropFair...),
	}, nil
}

// BaselineCacheSize reports how many distinct topologies are cached
// (test hook).
func BaselineCacheSize() int {
	baselineCache.Lock()
	defer baselineCache.Unlock()
	return len(baselineCache.m)
}

// SetBaselineCacheCap changes the cache bound (n <= 0 restores the
// default), evicting oldest entries immediately if the cache is over the
// new bound. Exposed mainly for tests and embedders with unusual sweep
// shapes.
func SetBaselineCacheCap(n int) {
	if n <= 0 {
		n = DefaultBaselineCacheCap
	}
	baselineCache.Lock()
	defer baselineCache.Unlock()
	baselineCache.cap = n
	for len(baselineCache.m) > baselineCache.cap && evictOldestLocked() {
	}
}

// ResetBaselineCache drops every cached entry (exposed to embedders as
// mptcpsim.ResetBaselineCache). In-flight CachedBaselines calls are
// unaffected: they hold their own entry pointers.
func ResetBaselineCache() {
	baselineCache.Lock()
	defer baselineCache.Unlock()
	baselineCache.m = make(map[string]*baselineEntry)
	baselineCache.lru = list.New()
}
