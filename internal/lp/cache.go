package lp

import (
	"fmt"
	"sync"

	"mptcpsim/internal/topo"
)

// Baselines bundles the analytic reference allocations of one topology:
// the LP optimum, the max-min fair point, and the proportionally fair
// point. All rates are in Mbps, indexed by path.
type Baselines struct {
	// ProblemString is the canonical rendering of the throughput LP (one
	// constraint per shared link) — also the cache key.
	ProblemString string
	// Solution is the LP optimum; Status is always Optimal.
	Solution Solution
	// MaxMin and PropFair are the fairness reference allocations.
	MaxMin, PropFair []float64
}

// baselineEntry is one memoised computation; once guarantees each distinct
// topology is solved exactly once even when many sweep workers miss the
// cache simultaneously.
type baselineEntry struct {
	once sync.Once
	b    *Baselines
	err  error
}

// baselineCache memoises Baselines by the canonical problem rendering.
// A parameter sweep runs the same topology under many (CC, scheduler,
// ordering, seed) combinations; the LP and especially the iterative
// proportional-fair solve only depend on the capacity/incidence structure,
// so they are computed once per distinct topology and shared.
var baselineCache = struct {
	sync.Mutex
	m map[string]*baselineEntry
}{m: make(map[string]*baselineEntry)}

// CachedBaselines returns the Baselines for the given topology and paths,
// computing them on first use and serving a cached copy afterwards. The
// cache key is the canonical LP rendering, which captures exactly the
// inputs all three baselines depend on: the per-link capacities and the
// path-link incidence. It is safe for concurrent use; callers receive
// private slice copies and may modify them freely.
func CachedBaselines(g *topo.Graph, paths []topo.Path) (*Baselines, error) {
	prob := MaxThroughput(g, paths)
	key := prob.String()

	baselineCache.Lock()
	e := baselineCache.m[key]
	if e == nil {
		e = &baselineEntry{}
		baselineCache.m[key] = e
	}
	baselineCache.Unlock()

	e.once.Do(func() {
		sol, err := prob.Solve()
		if err != nil {
			e.err = err
			return
		}
		if sol.Status != Optimal {
			e.err = fmt.Errorf("lp: baseline LP not optimal: %v", sol.Status)
			return
		}
		e.b = &Baselines{
			ProblemString: key,
			Solution:      sol,
			MaxMin:        MaxMin(g, paths),
			PropFair:      PropFair(g, paths, 0),
		}
	})
	if e.err != nil {
		return nil, e.err
	}

	return &Baselines{
		ProblemString: e.b.ProblemString,
		Solution: Solution{
			Status:    e.b.Solution.Status,
			X:         append([]float64(nil), e.b.Solution.X...),
			Objective: e.b.Solution.Objective,
		},
		MaxMin:   append([]float64(nil), e.b.MaxMin...),
		PropFair: append([]float64(nil), e.b.PropFair...),
	}, nil
}

// BaselineCacheSize reports how many distinct topologies are cached
// (test hook).
func BaselineCacheSize() int {
	baselineCache.Lock()
	defer baselineCache.Unlock()
	return len(baselineCache.m)
}

// ResetBaselineCache drops every cached entry (exposed to embedders as
// mptcpsim.ResetBaselineCache). The cache is otherwise unbounded, so
// long-running embedders sweeping many distinct topologies (e.g. a
// capacity axis with many values) should reset it between batches.
// In-flight CachedBaselines calls are unaffected: they hold their own
// entry pointers.
func ResetBaselineCache() {
	baselineCache.Lock()
	defer baselineCache.Unlock()
	baselineCache.m = make(map[string]*baselineEntry)
}
