package lp

import (
	"fmt"
	"sort"

	"mptcpsim/internal/topo"
	"mptcpsim/internal/unit"
)

// Caps is a set of per-link capacity overrides in Mbps, keyed by directed
// link ID; 0 means the link is down. Links absent from the map keep their
// graph capacity. A nil Caps is the static topology. Dynamic-event
// timelines produce one Caps per capacity epoch.
type Caps map[topo.LinkID]float64

// of returns the effective capacity of a link in Mbps.
func (c Caps) of(g *topo.Graph, lid topo.LinkID) float64 {
	if c != nil {
		if v, ok := c[lid]; ok {
			return v
		}
	}
	return g.Link(lid).Rate.Mbit()
}

// MaxThroughput builds the paper's optimisation problem for a set of paths:
// maximise the sum of per-path rates subject to, for every link crossed by
// at least one path, the sum of rates over the paths using it not exceeding
// the link capacity. Rates are expressed in Mbps so the numbers match the
// paper's figures.
func MaxThroughput(g *topo.Graph, paths []topo.Path) *Problem {
	return MaxThroughputCaps(g, paths, nil)
}

// MaxThroughputCaps is MaxThroughput with capacity overrides — the LP of
// one epoch of a dynamic run. A down link (cap 0) keeps its constraint
// row: every path crossing it is forced to zero, exactly what an outage
// does.
func MaxThroughputCaps(g *topo.Graph, paths []topo.Path, caps Caps) *Problem {
	n := len(paths)
	p := &Problem{C: make([]float64, n)}
	for i := range p.C {
		p.C[i] = 1
		p.VarNames = append(p.VarNames, fmt.Sprintf("x%d", i+1))
	}
	users := topo.PathsByLink(paths)
	// Deterministic row order: by link ID.
	lids := make([]topo.LinkID, 0, len(users))
	for lid := range users {
		lids = append(lids, lid)
	}
	sort.Slice(lids, func(a, b int) bool { return lids[a] < lids[b] })
	for _, lid := range lids {
		row := make([]float64, n)
		for _, pi := range users[lid] {
			row[pi] = 1
		}
		l := g.Link(lid)
		mbps := caps.of(g, lid)
		p.A = append(p.A, row)
		p.B = append(p.B, mbps)
		p.RowNames = append(p.RowNames, fmt.Sprintf("%s-%s cap %s",
			g.Node(l.From).Name, g.Node(l.To).Name, unit.Rate(mbps*float64(unit.Mbps))))
	}
	return p
}

// BindingConstraints returns the indices of constraints tight at x (within
// tol), i.e. the links that are actual bottlenecks at that operating point.
func (p *Problem) BindingConstraints(x []float64, tol float64) []int {
	var out []int
	for i, row := range p.A {
		var lhs float64
		for j, a := range row {
			lhs += a * x[j]
		}
		if lhs >= p.B[i]-tol {
			out = append(out, i)
		}
	}
	return out
}

// GreedySequential computes the allocation the paper describes as the
// greedy/Pareto trap: paths claim capacity one at a time in the given
// order, each taking the maximum its residual bottleneck allows. Order is
// a permutation of path indices (the default subflow first).
func GreedySequential(g *topo.Graph, paths []topo.Path, order []int) []float64 {
	resid := make(map[topo.LinkID]float64)
	for _, l := range g.Links() {
		resid[l.ID] = l.Rate.Mbit()
	}
	x := make([]float64, len(paths))
	for _, pi := range order {
		m := 1e18
		for _, lid := range paths[pi].Links {
			if resid[lid] < m {
				m = resid[lid]
			}
		}
		if m < 0 {
			m = 0
		}
		x[pi] = m
		for _, lid := range paths[pi].Links {
			resid[lid] -= m
		}
	}
	return x
}

// MaxMin computes the max-min fair allocation over the paths by
// progressive filling: all unfrozen path rates rise together until some
// link saturates; paths crossing saturated links freeze; repeat.
func MaxMin(g *topo.Graph, paths []topo.Path) []float64 {
	return MaxMinCaps(g, paths, nil)
}

// MaxMinCaps is MaxMin with capacity overrides (one epoch of a dynamic
// run). Paths crossing a down link freeze at zero in the first round.
func MaxMinCaps(g *topo.Graph, paths []topo.Path, caps Caps) []float64 {
	n := len(paths)
	x := make([]float64, n)
	frozen := make([]bool, n)
	users := topo.PathsByLink(paths)
	resid := make(map[topo.LinkID]float64)
	for lid := range users {
		resid[lid] = caps.of(g, lid)
	}
	for {
		// Count active users per link.
		active := 0
		for i := 0; i < n; i++ {
			if !frozen[i] {
				active++
			}
		}
		if active == 0 {
			return x
		}
		// Smallest equal increment any link allows.
		inc := 1e18
		for lid, us := range users {
			k := 0
			for _, pi := range us {
				if !frozen[pi] {
					k++
				}
			}
			if k == 0 {
				continue
			}
			if v := resid[lid] / float64(k); v < inc {
				inc = v
			}
		}
		if inc >= 1e18 || inc < 0 {
			return x
		}
		// Apply the increment and freeze users of saturated links.
		for lid, us := range users {
			k := 0
			for _, pi := range us {
				if !frozen[pi] {
					k++
				}
			}
			resid[lid] -= inc * float64(k)
		}
		for i := 0; i < n; i++ {
			if !frozen[i] {
				x[i] += inc
			}
		}
		for lid, us := range users {
			if resid[lid] <= 1e-9 {
				for _, pi := range us {
					frozen[pi] = true
				}
			}
		}
	}
}

// PropFair computes the proportionally fair allocation (maximiser of the
// sum of log rates) by dual gradient descent on the link prices. It is the
// equilibrium an idealised fluid model of coupled AIMD flows with equal
// RTTs approaches, a useful reference for where LIA-style coupling lands.
func PropFair(g *topo.Graph, paths []topo.Path, iters int) []float64 {
	return PropFairCaps(g, paths, nil, iters)
}

// PropFairCaps is PropFair with capacity overrides (one epoch of a
// dynamic run). Paths crossing a down link are pinned at zero and their
// links excluded from the price dynamics — log(0) utility is outside the
// model, so an outage simply removes the path from the market.
func PropFairCaps(g *topo.Graph, paths []topo.Path, caps Caps, iters int) []float64 {
	if iters <= 0 {
		iters = 200000
	}
	n := len(paths)
	x := make([]float64, n)
	blocked := make([]bool, n)
	for i, p := range paths {
		for _, lid := range p.Links {
			if caps.of(g, lid) <= 0 {
				blocked[i] = true
				break
			}
		}
	}
	live := paths[:0:0]
	liveIdx := make([]int, 0, n)
	for i, p := range paths {
		if !blocked[i] {
			live = append(live, p)
			liveIdx = append(liveIdx, i)
		}
	}
	if len(live) == 0 {
		return x
	}
	// Densify the link state into compact arrays before iterating: the
	// descent runs hundreds of thousands of sweeps, and map access in the
	// inner loops dominates the solve. The numbers are bit-identical to
	// the map-based version — per-path price sums keep the path's link
	// order, per-link load sums keep PathsByLink's user order, and the
	// dual updates are independent across links, so their visit order
	// (the only thing that changes) never touches the arithmetic.
	users := topo.PathsByLink(live)
	lids := make([]topo.LinkID, 0, len(users))
	for lid := range users {
		lids = append(lids, lid)
	}
	sort.Slice(lids, func(a, b int) bool { return lids[a] < lids[b] })
	idx := make(map[topo.LinkID]int, len(lids))
	for i, lid := range lids {
		idx[lid] = i
	}
	price := make([]float64, len(lids))
	capv := make([]float64, len(lids))
	usersv := make([][]int, len(lids))
	for i, lid := range lids {
		capv[i] = caps.of(g, lid)
		price[i] = 1 / capv[i]
		usersv[i] = users[lid]
	}
	pathLinks := make([][]int, len(live))
	for i, p := range live {
		pl := make([]int, len(p.Links))
		for j, lid := range p.Links {
			pl[j] = idx[lid]
		}
		pathLinks[i] = pl
	}
	xl := make([]float64, len(live))
	for it := 0; it < iters; it++ {
		// Primal: x_i = 1 / (sum of prices along the path).
		for i, pl := range pathLinks {
			var sum float64
			for _, li := range pl {
				sum += price[li]
			}
			if sum <= 0 {
				sum = 1e-12
			}
			xl[i] = 1 / sum
		}
		// Dual: price goes up where demand exceeds capacity.
		step := 1e-4
		for li, us := range usersv {
			var load float64
			for _, pi := range us {
				load += xl[pi]
			}
			price[li] += step * (load - capv[li]) / capv[li]
			if price[li] < 1e-9 {
				price[li] = 1e-9
			}
		}
	}
	for i, v := range xl {
		x[liveIdx[i]] = v
	}
	return x
}

// TotalMbit sums an allocation.
func TotalMbit(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Rates converts an allocation in Mbps to unit.Rate values.
func Rates(x []float64) []unit.Rate {
	out := make([]unit.Rate, len(x))
	for i, v := range x {
		out[i] = unit.Rate(v * float64(unit.Mbps))
	}
	return out
}
