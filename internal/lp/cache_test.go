package lp

import (
	"math"
	"sync"
	"testing"

	"mptcpsim/internal/topo"
)

func TestCachedBaselines(t *testing.T) {
	pn := topo.Paper()
	before := BaselineCacheSize()

	b, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Solution.Objective-90) > 1e-6 {
		t.Fatalf("LP optimum = %v, want 90", b.Solution.Objective)
	}
	if BaselineCacheSize() <= before && before == 0 {
		t.Fatal("baseline not cached")
	}

	// Second lookup serves the cache and returns equal values in fresh
	// slices the caller may scribble on.
	b2, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if &b.Solution.X[0] == &b2.Solution.X[0] {
		t.Fatal("cache handed out shared slices")
	}
	for i := range b.Solution.X {
		if b.Solution.X[i] != b2.Solution.X[i] {
			t.Fatalf("cached X differs: %v vs %v", b.Solution.X, b2.Solution.X)
		}
	}
	b2.MaxMin[0] = -1
	b3, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if b3.MaxMin[0] == -1 {
		t.Fatal("caller mutation leaked into the cache")
	}
	if b3.ProblemString == "" || b3.ProblemString != b.ProblemString {
		t.Fatalf("problem rendering unstable: %q vs %q", b.ProblemString, b3.ProblemString)
	}

	// Direct recomputation matches the cached values.
	mm := MaxMin(pn.Graph, pn.Paths)
	for i := range mm {
		if math.Abs(mm[i]-b3.MaxMin[i]) > 1e-9 {
			t.Fatalf("cached max-min %v != fresh %v", b3.MaxMin, mm)
		}
	}
}

func TestCachedBaselinesConcurrent(t *testing.T) {
	pn := topo.Paper()
	var wg sync.WaitGroup
	out := make([]*Baselines, 16)
	errs := make([]error, 16)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = CachedBaselines(pn.Graph, pn.Paths)
		}(i)
	}
	wg.Wait()
	for i := range out {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if math.Abs(out[i].Solution.Objective-90) > 1e-6 {
			t.Fatalf("goroutine %d objective = %v", i, out[i].Solution.Objective)
		}
	}
}

func TestResetBaselineCache(t *testing.T) {
	pn := topo.Paper()
	if _, err := CachedBaselines(pn.Graph, pn.Paths); err != nil {
		t.Fatal(err)
	}
	if BaselineCacheSize() == 0 {
		t.Fatal("nothing cached")
	}
	ResetBaselineCache()
	if n := BaselineCacheSize(); n != 0 {
		t.Fatalf("cache size after reset = %d", n)
	}
	b, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Solution.Objective-90) > 1e-6 {
		t.Fatalf("recompute after reset = %v", b.Solution.Objective)
	}
}

func TestCachedBaselinesCapsEpoch(t *testing.T) {
	pn := topo.Paper()
	static, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch with s-v1 down (both directions): paths 1 and 2 are cut, path 3
	// keeps its 60 Mbps v3-v4 bottleneck.
	sv1, ok := pn.Graph.NodeByName("s")
	if !ok {
		t.Fatal("no s")
	}
	v1, ok := pn.Graph.NodeByName("v1")
	if !ok {
		t.Fatal("no v1")
	}
	fwd, _ := pn.Graph.FindLink(sv1, v1)
	rev, _ := pn.Graph.FindLink(v1, sv1)
	caps := Caps{fwd: 0, rev: 0}
	down, err := CachedBaselinesCaps(pn.Graph, pn.Paths, caps)
	if err != nil {
		t.Fatal(err)
	}
	if down.ProblemString == static.ProblemString {
		t.Fatal("epoch key collides with the static key")
	}
	if math.Abs(down.Solution.Objective-60) > 1e-6 {
		t.Fatalf("outage optimum = %v, want 60", down.Solution.Objective)
	}
	want := []float64{0, 0, 60}
	for i, v := range want {
		if math.Abs(down.Solution.X[i]-v) > 1e-6 {
			t.Fatalf("outage solution = %v, want %v", down.Solution.X, want)
		}
	}
	// The fairness baselines respect the outage too.
	if down.MaxMin[0] != 0 || down.MaxMin[1] != 0 || math.Abs(down.MaxMin[2]-60) > 1e-6 {
		t.Fatalf("outage max-min = %v", down.MaxMin)
	}
	if down.PropFair[0] != 0 || down.PropFair[1] != 0 || down.PropFair[2] < 55 {
		t.Fatalf("outage prop-fair = %v", down.PropFair)
	}
	// The static entry is untouched.
	again, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(again.Solution.Objective-90) > 1e-6 {
		t.Fatalf("static optimum clobbered: %v", again.Solution.Objective)
	}
}

func TestBaselineCacheBounded(t *testing.T) {
	ResetBaselineCache()
	SetBaselineCacheCap(4)
	defer SetBaselineCacheCap(0)
	defer ResetBaselineCache()

	pn := topo.Paper()
	lid := pn.Paths[0].Links[0]
	// Ten distinct epochs: the cache must hold at most 4.
	for i := 1; i <= 10; i++ {
		if _, err := CachedBaselinesCaps(pn.Graph, pn.Paths, Caps{lid: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := BaselineCacheSize(); n != 4 {
		t.Fatalf("cache size = %d, want 4 (bounded)", n)
	}
	// Recency: touching an old survivor keeps it across further inserts.
	if _, err := CachedBaselinesCaps(pn.Graph, pn.Paths, Caps{lid: 7}); err != nil {
		t.Fatal(err)
	}
	before := BaselineCacheSize()
	for i := 11; i <= 13; i++ {
		if _, err := CachedBaselinesCaps(pn.Graph, pn.Paths, Caps{lid: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := BaselineCacheSize(); n != before {
		t.Fatalf("cache size drifted: %d -> %d", before, n)
	}
	// An evicted key recomputes correctly.
	b, err := CachedBaselinesCaps(pn.Graph, pn.Paths, Caps{lid: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.Solution.Status != Optimal {
		t.Fatalf("recomputed entry not optimal: %v", b.Solution.Status)
	}
}
