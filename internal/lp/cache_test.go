package lp

import (
	"math"
	"sync"
	"testing"

	"mptcpsim/internal/topo"
)

func TestCachedBaselines(t *testing.T) {
	pn := topo.Paper()
	before := BaselineCacheSize()

	b, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Solution.Objective-90) > 1e-6 {
		t.Fatalf("LP optimum = %v, want 90", b.Solution.Objective)
	}
	if BaselineCacheSize() <= before && before == 0 {
		t.Fatal("baseline not cached")
	}

	// Second lookup serves the cache and returns equal values in fresh
	// slices the caller may scribble on.
	b2, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if &b.Solution.X[0] == &b2.Solution.X[0] {
		t.Fatal("cache handed out shared slices")
	}
	for i := range b.Solution.X {
		if b.Solution.X[i] != b2.Solution.X[i] {
			t.Fatalf("cached X differs: %v vs %v", b.Solution.X, b2.Solution.X)
		}
	}
	b2.MaxMin[0] = -1
	b3, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if b3.MaxMin[0] == -1 {
		t.Fatal("caller mutation leaked into the cache")
	}
	if b3.ProblemString == "" || b3.ProblemString != b.ProblemString {
		t.Fatalf("problem rendering unstable: %q vs %q", b.ProblemString, b3.ProblemString)
	}

	// Direct recomputation matches the cached values.
	mm := MaxMin(pn.Graph, pn.Paths)
	for i := range mm {
		if math.Abs(mm[i]-b3.MaxMin[i]) > 1e-9 {
			t.Fatalf("cached max-min %v != fresh %v", b3.MaxMin, mm)
		}
	}
}

func TestCachedBaselinesConcurrent(t *testing.T) {
	pn := topo.Paper()
	var wg sync.WaitGroup
	out := make([]*Baselines, 16)
	errs := make([]error, 16)
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = CachedBaselines(pn.Graph, pn.Paths)
		}(i)
	}
	wg.Wait()
	for i := range out {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if math.Abs(out[i].Solution.Objective-90) > 1e-6 {
			t.Fatalf("goroutine %d objective = %v", i, out[i].Solution.Objective)
		}
	}
}

func TestResetBaselineCache(t *testing.T) {
	pn := topo.Paper()
	if _, err := CachedBaselines(pn.Graph, pn.Paths); err != nil {
		t.Fatal(err)
	}
	if BaselineCacheSize() == 0 {
		t.Fatal("nothing cached")
	}
	ResetBaselineCache()
	if n := BaselineCacheSize(); n != 0 {
		t.Fatalf("cache size after reset = %d", n)
	}
	b, err := CachedBaselines(pn.Graph, pn.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.Solution.Objective-90) > 1e-6 {
		t.Fatalf("recompute after reset = %v", b.Solution.Objective)
	}
}
