package sim

import (
	"math/rand"
	"time"
)

// Rand is a seeded pseudo-random source for model components. It wraps
// math/rand.Rand with helpers used across the simulator and exists so that
// every stochastic decision in a run flows from one recorded seed.
type Rand struct {
	*rand.Rand
	seed int64
}

// NewRand returns a deterministic source for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the source was created with.
func (r *Rand) Seed() int64 { return r.seed }

// Fork derives an independent stream for a named subcomponent. Components
// forked in the same order from the same parent always observe the same
// stream, keeping runs reproducible even when components are added.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Int63())
}

// Jitter returns a duration uniformly distributed in [d-frac*d, d+frac*d].
// It is used to desynchronise otherwise lock-stepped timers (for example
// subflow start times), mirroring the scheduling noise of a real host.
func (r *Rand) Jitter(d time.Duration, frac float64) time.Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	span := float64(d) * frac
	off := (r.Float64()*2 - 1) * span
	j := time.Duration(float64(d) + off)
	if j < 0 {
		return 0
	}
	return j
}

// Exp returns an exponentially distributed duration with the given mean,
// used by On/Off traffic sources.
func (r *Rand) Exp(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(r.ExpFloat64() * float64(mean))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
