package sim

// Oracle tests for the same-instant batch drain: RunUntil pops an entire
// equal-timestamp cohort before running it, so these tests check that the
// observable execution order is exactly the unbatched kernel's — one pop,
// one callback, repeat — across dense timestamp collisions, mid-batch
// stops, and mid-batch aborts (Stop / event limit).

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refKernel is the unbatched reference: a sorted list popped strictly one
// event at a time, with (at, seq) total order and lazy stop — the
// semantics the batching kernel must be indistinguishable from.
type refKernel struct {
	events []*refKernelEv
	seq    uint64
	now    Time
}

type refKernelEv struct {
	at      Time
	seq     uint64
	label   int64
	stopped bool
}

func (k *refKernel) schedule(d time.Duration, label int64) *refKernelEv {
	e := &refKernelEv{at: k.now.Add(d), seq: k.seq, label: label}
	k.seq++
	i := sort.Search(len(k.events), func(i int) bool {
		a := k.events[i]
		return a.at > e.at || (a.at == e.at && a.seq > e.seq)
	})
	k.events = append(k.events, nil)
	copy(k.events[i+1:], k.events[i:])
	k.events[i] = e
	return e
}

func (k *refKernel) pop() *refKernelEv {
	for len(k.events) > 0 {
		e := k.events[0]
		k.events = k.events[1:]
		if e.stopped {
			continue
		}
		k.now = e.at
		return e
	}
	return nil
}

// fired is one observed execution, comparable across kernels.
type fired struct {
	label int64
	at    Time
}

// program derives each event's behaviour purely from (seed, label), so
// the real loop and the reference interpreter take identical decisions:
// spawn 0-2 children at delay 0-2 ns (delay 0 collides with the current
// batch), and sometimes stop an earlier-created event.
type program struct {
	seed   int64
	budget int
}

type progActions struct {
	childDelays []time.Duration
	stopLabel   int64 // -1: none
}

func (p *program) actions(label int64) progActions {
	rng := rand.New(rand.NewSource(p.seed*1000003 + label))
	a := progActions{stopLabel: -1}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		a.childDelays = append(a.childDelays, time.Duration(rng.Intn(3)))
	}
	if rng.Intn(3) == 0 && label > 0 {
		a.stopLabel = rng.Int63n(label)
	}
	return a
}

// TestBatchDrainMatchesUnbatchedReference runs the same randomized
// program — roots piled onto a handful of timestamps, handlers spawning
// same-instant children and stopping siblings — through the batching
// kernel and the unbatched reference, and requires the full (label, time)
// execution sequences to be identical.
func TestBatchDrainMatchesUnbatchedReference(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		prog := &program{seed: seed, budget: 3000}
		var gotLog, wantLog []fired

		// Real kernel.
		l := NewLoop()
		timers := make(map[int64]Timer)
		var nextLabel int64
		var handler func(label int64) func()
		handler = func(label int64) func() {
			return func() {
				gotLog = append(gotLog, fired{label, l.Now()})
				a := prog.actions(label)
				for _, d := range a.childDelays {
					if prog.budget <= 0 {
						break
					}
					prog.budget--
					lb := nextLabel
					nextLabel++
					timers[lb] = l.Schedule(d, handler(lb))
				}
				if a.stopLabel >= 0 {
					if tm, ok := timers[a.stopLabel]; ok {
						tm.Stop()
					}
				}
			}
		}
		rootRng := rand.New(rand.NewSource(seed))
		rootTimes := make([]Time, 40)
		for i := range rootTimes {
			rootTimes[i] = Time(rootRng.Intn(4)) // heavy same-instant collisions
			lb := nextLabel
			nextLabel++
			timers[lb] = l.At(rootTimes[i], handler(lb))
		}
		if err := l.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Unbatched reference, same program.
		prog.budget = 3000
		ref := &refKernel{}
		refEvents := make(map[int64]*refKernelEv)
		var refNext int64
		for i := range rootTimes {
			ref.now = 0
			lb := refNext
			refNext++
			refEvents[lb] = ref.schedule(time.Duration(rootTimes[i]), lb)
		}
		ref.now = 0
		for e := ref.pop(); e != nil; e = ref.pop() {
			wantLog = append(wantLog, fired{e.label, e.at})
			a := prog.actions(e.label)
			for _, d := range a.childDelays {
				if prog.budget <= 0 {
					break
				}
				prog.budget--
				lb := refNext
				refNext++
				refEvents[lb] = ref.schedule(d, lb)
			}
			if a.stopLabel >= 0 {
				if re, ok := refEvents[a.stopLabel]; ok {
					re.stopped = true
				}
			}
		}

		if len(gotLog) != len(wantLog) {
			t.Fatalf("seed %d: batched kernel fired %d events, unbatched reference %d",
				seed, len(gotLog), len(wantLog))
		}
		for i := range gotLog {
			if gotLog[i] != wantLog[i] {
				t.Fatalf("seed %d: execution diverged at step %d: batched (label=%d at=%v), unbatched (label=%d at=%v)",
					seed, i, gotLog[i].label, gotLog[i].at, wantLog[i].label, wantLog[i].at)
			}
		}
		if got, want := l.Processed(), uint64(len(wantLog)); got != want {
			t.Fatalf("seed %d: Processed()=%d, want %d (hashes fold the event count)", seed, got, want)
		}
	}
}

// TestEqualTimestampStress piles thousands of events onto a single
// instant, each spawning a same-instant child up to a cap: every batch at
// t=1ms must run in scheduling order, and the whole cascade stays at one
// timestamp.
func TestEqualTimestampStress(t *testing.T) {
	l := NewLoop()
	const roots = 2000
	const spawnCap = 5000
	var order []int
	n := 0
	var spawn func(id int) func()
	spawn = func(id int) func() {
		return func() {
			order = append(order, id)
			if n < spawnCap {
				n++
				kid := roots + n
				l.Schedule(0, spawn(kid))
			}
			if l.Now() != Time(time.Millisecond) {
				t.Fatalf("event %d ran at %v, want 1ms", id, l.Now())
			}
		}
	}
	for i := 0; i < roots; i++ {
		l.At(Time(time.Millisecond), spawn(i))
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != roots+spawnCap {
		t.Fatalf("fired %d events, want %d", len(order), roots+spawnCap)
	}
	// Scheduling order == seq order == execution order, batched or not.
	for i, id := range order[:roots] {
		if id != i {
			t.Fatalf("root %d fired at position %d", id, i)
		}
	}
	for i, id := range order[roots:] {
		if id != roots+i+1 {
			t.Fatalf("child %d fired at position %d", id, roots+i)
		}
	}
}

// TestBatchMemberStoppedMidBatch: an earlier member of the same-instant
// batch stops a later member after the batch was already popped off the
// heap — the seq staleness check must skip it, and a same-instant event
// scheduled by the batch must still run (as the next batch).
func TestBatchMemberStoppedMidBatch(t *testing.T) {
	l := NewLoop()
	var order []string
	var tmC Timer
	l.Schedule(time.Millisecond, func() {
		order = append(order, "a")
		tmC.Stop() // c is already inside the popped batch
		l.Schedule(0, func() { order = append(order, "d") })
	})
	l.Schedule(time.Millisecond, func() { order = append(order, "b") })
	tmC = l.Schedule(time.Millisecond, func() { order = append(order, "c") })
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(order); got != 3 || order[0] != "a" || order[1] != "b" || order[2] != "d" {
		t.Fatalf("order = %v, want [a b d]", order)
	}
	if l.Len() != 0 {
		t.Fatalf("Len() = %d after drain, want 0", l.Len())
	}
	if l.Processed() != 3 {
		t.Fatalf("Processed() = %d, want 3 (stopped member must not count)", l.Processed())
	}
}

// TestBatchRequeuedOnStop: Stop() mid-batch must requeue the unexecuted
// tail so a later RunUntil resumes exactly where the batch broke off, in
// the original order.
func TestBatchRequeuedOnStop(t *testing.T) {
	l := NewLoop()
	var order []string
	at := Time(time.Millisecond)
	l.At(at, func() { order = append(order, "a"); l.Stop() })
	l.At(at, func() { order = append(order, "b") })
	l.At(at, func() { order = append(order, "c") })
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("order after Stop = %v, want [a]", order)
	}
	if l.Len() != 2 {
		t.Fatalf("Len() = %d after Stop mid-batch, want 2 requeued", l.Len())
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[1] != "b" || order[2] != "c" {
		t.Fatalf("resumed order = %v, want [a b c]", order)
	}
}

// TestBatchRequeuedOnEventLimit: the event limit can trip in the middle
// of a batch; the rest of the batch must survive for a resumed run.
func TestBatchRequeuedOnEventLimit(t *testing.T) {
	l := NewLoop()
	var order []int
	at := Time(time.Millisecond)
	for i := 0; i < 5; i++ {
		id := i
		l.At(at, func() { order = append(order, id) })
	}
	l.SetEventLimit(2)
	err := l.Run()
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("Run returned %v, want ErrEventLimit", err)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order at limit = %v, want [0 1]", order)
	}
	if l.Len() != 3 {
		t.Fatalf("Len() = %d after mid-batch abort, want 3", l.Len())
	}
	l.SetEventLimit(0)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("order = %v, want sequential 0..4", order)
		}
	}
}
