package sim

import (
	"testing"
	"time"
)

// TestCountersAccounting pins the Counters snapshot against a scripted
// workload: sequential events recycle one arena node, a stopped timer
// counts as scheduled but not fired, and a burst of concurrently pending
// events sets the high-water marks.
func TestCountersAccounting(t *testing.T) {
	l := NewLoop()

	// Phase 1: 10 strictly sequential events — each fires (and frees its
	// node) before the next is scheduled, so the arena stays at one node.
	n := 0
	var next func()
	next = func() {
		n++
		if n < 10 {
			l.Schedule(time.Millisecond, next)
		}
	}
	l.Schedule(time.Millisecond, next)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	c := l.Counters()
	if c.Scheduled != 10 || c.Fired != 10 {
		t.Fatalf("sequential phase: scheduled=%d fired=%d, want 10/10", c.Scheduled, c.Fired)
	}
	if c.ArenaNodes != 1 || c.Recycled != 9 {
		t.Fatalf("sequential phase: arena=%d recycled=%d, want 1/9 (one node reused)", c.ArenaNodes, c.Recycled)
	}
	if c.InUsePeak != 1 || c.HeapPeak != 1 {
		t.Fatalf("sequential phase: inUsePeak=%d heapPeak=%d, want 1/1", c.InUsePeak, c.HeapPeak)
	}

	// Phase 2: 8 concurrently pending events push both high-water marks;
	// one stopped timer stays counted in Scheduled but never fires.
	for i := 0; i < 8; i++ {
		l.Schedule(time.Duration(i+1)*time.Millisecond, func() {})
	}
	stopped := l.Schedule(time.Hour, func() { t.Fatal("stopped timer fired") })
	if !stopped.Stop() {
		t.Fatal("timer did not report pending on Stop")
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	c = l.Counters()
	if c.Scheduled != 19 || c.Fired != 18 {
		t.Fatalf("burst phase: scheduled=%d fired=%d, want 19/18", c.Scheduled, c.Fired)
	}
	if c.InUsePeak != 9 || c.HeapPeak != 9 {
		t.Fatalf("burst phase: inUsePeak=%d heapPeak=%d, want 9/9", c.InUsePeak, c.HeapPeak)
	}
	if c.ArenaNodes != 9 || c.Recycled != 10 {
		t.Fatalf("burst phase: arena=%d recycled=%d, want 9/10", c.ArenaNodes, c.Recycled)
	}
	if got := c.Recycled + uint64(c.ArenaNodes); got != c.Scheduled {
		t.Fatalf("recycled(%d) + arena(%d) = %d, want scheduled %d",
			c.Recycled, c.ArenaNodes, got, c.Scheduled)
	}
}

// TestCountersZeroAlloc gates the snapshot itself and the high-water
// bookkeeping: reading counters mid-steady-state allocates nothing, like
// the schedule path it observes.
func TestCountersZeroAlloc(t *testing.T) {
	l := NewLoop()
	sink := Counters{}
	// Warm the arena so the measured loop stays on the free list.
	for i := 0; i < 64; i++ {
		l.Schedule(time.Millisecond, func() {})
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		l.Schedule(time.Millisecond, func() {})
		if err := l.Run(); err != nil {
			t.Fatal(err)
		}
		sink = l.Counters()
	})
	if allocs != 0 {
		t.Fatalf("schedule+run+Counters allocates %.1f objects, want 0", allocs)
	}
	if sink.Fired == 0 {
		t.Fatal("gate measured nothing: no events fired")
	}
}
