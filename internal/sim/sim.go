// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event loop ordered by (time, scheduling sequence),
// cancellable timers and a seeded random source.
//
// The kernel is single-threaded by design. All model code (links, TCP
// stacks, applications) runs inside event callbacks on one goroutine, so no
// locking is needed and identical seeds reproduce identical executions
// byte-for-byte. Harness code that wants parallelism runs one Loop per
// scenario in separate goroutines.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulations start
// at zero and have no wall-clock meaning.
type Time int64

// Common virtual-time constants.
const (
	// Start is the beginning of every simulation.
	Start Time = 0
	// End is the largest representable virtual time.
	End Time = math.MaxInt64
)

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since Start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats t as a duration since the simulation start.
func (t Time) String() string {
	if t == End {
		return "end"
	}
	return time.Duration(t).String()
}

// event is a scheduled callback. Events compare by (at, seq) so that events
// scheduled earlier at the same instant run first, which makes runs
// deterministic regardless of heap internals.
type event struct {
	at      Time
	seq     uint64
	fn      func()
	index   int // position in the heap, -1 once popped or cancelled
	stopped bool
}

// eventQueue implements container/heap over pending events.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event. The zero value is not useful;
// timers are created by Loop.Schedule and Loop.At.
type Timer struct {
	loop *Loop
	ev   *event
}

// Stop cancels the timer. It reports whether the callback was still pending;
// it returns false if the callback already ran or the timer was stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped || t.ev.index < 0 {
		return false
	}
	t.ev.stopped = true
	heap.Remove(&t.loop.queue, t.ev.index)
	return true
}

// Pending reports whether the timer's callback has not yet fired or been
// stopped.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.stopped && t.ev.index >= 0
}

// When returns the virtual time the timer is scheduled to fire at.
func (t *Timer) When() Time { return t.ev.at }

// Loop is a discrete-event loop. The zero value is not ready for use; call
// NewLoop.
type Loop struct {
	now     Time
	seq     uint64
	queue   eventQueue
	running bool
	stopped bool

	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// limit aborts runaway simulations; 0 means no limit.
	limit uint64
}

// NewLoop returns an empty event loop positioned at time Start.
func NewLoop() *Loop {
	return &Loop{}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Processed returns the number of events executed so far.
func (l *Loop) Processed() uint64 { return l.processed }

// SetEventLimit aborts Run with ErrEventLimit after n events (0 disables the
// limit). It exists to catch accidental event storms in tests.
func (l *Loop) SetEventLimit(n uint64) { l.limit = n }

// ErrEventLimit is returned by Run when the configured event limit is hit.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// Schedule runs fn after delay d of virtual time. A non-positive delay runs
// fn as soon as the loop regains control, still in deterministic order.
func (l *Loop) Schedule(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current instant.
func (l *Loop) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t < l.now {
		t = l.now
	}
	ev := &event{at: t, seq: l.seq, fn: fn}
	l.seq++
	heap.Push(&l.queue, ev)
	return &Timer{loop: l, ev: ev}
}

// Stop makes Run return after the currently executing event completes.
func (l *Loop) Stop() { l.stopped = true }

// Len returns the number of pending events.
func (l *Loop) Len() int { return l.queue.Len() }

// Run executes events in order until the queue drains, Stop is called, or
// the event limit is exceeded.
func (l *Loop) Run() error { return l.RunUntil(End) }

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline (if the deadline precedes pending work). It returns
// nil when the deadline is reached or the queue drains.
func (l *Loop) RunUntil(deadline Time) error {
	if l.running {
		return errors.New("sim: RunUntil called re-entrantly")
	}
	l.running = true
	l.stopped = false
	defer func() { l.running = false }()

	for l.queue.Len() > 0 && !l.stopped {
		next := l.queue[0]
		if next.at > deadline {
			l.now = deadline
			return nil
		}
		heap.Pop(&l.queue)
		if next.stopped {
			continue
		}
		if next.at < l.now {
			// Heap invariant violated; this is a kernel bug, not a model bug.
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", l.now, next.at))
		}
		l.now = next.at
		next.stopped = true
		next.fn()
		l.processed++
		if l.limit > 0 && l.processed >= l.limit {
			return fmt.Errorf("%w (%d events)", ErrEventLimit, l.processed)
		}
	}
	if deadline != End && deadline > l.now {
		l.now = deadline
	}
	return nil
}

// RunFor runs the loop for a span of virtual time from the current instant.
func (l *Loop) RunFor(d time.Duration) error {
	return l.RunUntil(l.now.Add(d))
}
