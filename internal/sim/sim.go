// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event loop ordered by (time, scheduling sequence),
// cancellable timers and a seeded random source.
//
// The kernel is single-threaded by design. All model code (links, TCP
// stacks, applications) runs inside event callbacks on one goroutine, so no
// locking is needed and identical seeds reproduce identical executions
// byte-for-byte. Harness code that wants parallelism runs one Loop per
// scenario in separate goroutines.
//
// The scheduling path is allocation-free in steady state: event nodes live
// in a pooled arena recycled through a free list, the pending queue is a
// concrete 4-ary index heap (no container/heap interface boxing), and the
// Callback interface lets hot callers schedule pre-bound callback structs
// instead of capturing closures. Timer handles are values carrying a
// generation counter, so a stale handle to a recycled node is a safe no-op.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulations start
// at zero and have no wall-clock meaning.
type Time int64

// Common virtual-time constants.
const (
	// Start is the beginning of every simulation.
	Start Time = 0
	// End is the largest representable virtual time.
	End Time = math.MaxInt64
)

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since Start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats t as a duration since the simulation start.
func (t Time) String() string {
	if t == End {
		return "end"
	}
	return time.Duration(t).String()
}

// Callback is the allocation-free alternative to a func() event: model
// code embeds a small struct pre-bound to its receiver and passes a
// pointer to it, so scheduling boxes no closure and allocates nothing.
// Run is invoked with the loop's current virtual time.
type Callback interface {
	Run(now Time)
}

// node is one pooled event. Nodes compare by (at, seq) so that events
// scheduled earlier at the same instant run first, which makes runs
// deterministic regardless of heap internals. A node is recycled through
// the free list the moment it fires or is stopped; gen increments on every
// recycle so stale Timer handles cannot touch the next occupant (the
// classic ABA guard).
type node struct {
	at  Time
	seq uint64
	fn  func()
	cb  Callback
	gen uint32
}

// entry is one pending-queue element, 16 bytes so four children of a
// 4-ary heap node share one cache line. It carries the full sort key
// inline — at, plus the scheduling seq packed above the node id — so heap
// sifts compare within the (pointer-free) heap array instead of chasing
// node indices into the arena; the comparison cache misses were the
// kernel's dominant cost. The seq doubles as the staleness check: seqs
// are never reused, so an entry whose seq no longer matches its node
// names a stopped event (the node possibly reused) and is discarded when
// it surfaces at the heap root. Lazy deletion makes Timer.Stop O(1), at
// the price of dead entries lingering until they surface or a compaction
// sweep removes them.
type entry struct {
	at     Time
	packed uint64 // seq<<idBits | id
}

// idBits is the node-id width inside entry.packed: 16M pooled nodes and
// 2^40 scheduled events per loop, both far beyond any simulation (alloc
// enforces the limits). seq occupies the high bits, so for equal times
// comparing packed compares seq — ids only differ when seqs do.
const idBits = 24

func mkEntry(at Time, seq uint64, id int32) entry {
	return entry{at: at, packed: seq<<idBits | uint64(id)}
}

func (e entry) id() int32   { return int32(e.packed & (1<<idBits - 1)) }
func (e entry) seq() uint64 { return e.packed >> idBits }

// stale reports whether e no longer names a live scheduled event.
func (e entry) stale(l *Loop) bool { return l.nodes[e.id()].seq != e.seq() }

// Timer is a cancellable handle to a scheduled event. It is a small value
// (not a pointer): creating one allocates nothing, and the zero value is
// inert — Stop and Pending on it report false. A Timer holds the node's
// generation at scheduling time, so once the event fires or is stopped the
// handle goes stale and every operation through it is a safe no-op, even
// after the node has been recycled for an unrelated event.
type Timer struct {
	loop *Loop
	id   int32
	gen  uint32
}

// live reports whether the handle still names the scheduled event: the
// generation must match, i.e. the node was not recycled. The node recycles
// (and bumps gen) exactly when its event fires or is stopped, so a
// matching generation means the event is still pending.
func (t Timer) live() bool {
	if t.loop == nil {
		return false
	}
	return t.loop.nodes[t.id].gen == t.gen
}

// Stop cancels the timer. It reports whether the callback was still
// pending; it returns false if the callback already ran, the timer was
// stopped, or the handle is the zero value. Stop is O(1): it recycles the
// node immediately (staling the heap entry, which is dropped when it
// surfaces), so the arm/stop/re-arm cycle TCP performs on every ACK costs
// no heap restructuring.
func (t Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.loop.release(t.id)
	t.loop.dead++
	t.loop.maybeCompact()
	return true
}

// Pending reports whether the timer's callback has not yet fired or been
// stopped.
func (t Timer) Pending() bool { return t.live() }

// When returns the virtual time the timer is scheduled to fire at, or 0
// if the handle is stale.
func (t Timer) When() Time {
	if !t.live() {
		return 0
	}
	return t.loop.nodes[t.id].at
}

// Loop is a discrete-event loop. The zero value is not ready for use; call
// NewLoop.
type Loop struct {
	now Time
	seq uint64
	// nodes is the pooled event arena; free lists the recycled indices.
	nodes []node
	free  []int32
	// heap is a 4-ary min-heap of entries ordered by (at, seq). Entries of
	// stopped timers go stale in place and are dropped lazily; dead counts
	// them so maybeCompact can bound the garbage.
	heap []entry
	dead int
	// pending counts live scheduled events (Len), since len(heap) includes
	// stale entries.
	pending int
	// batch holds the same-instant events popped together by RunUntil so
	// they run back-to-back without interleaved heap pops.
	batch   []entry
	running bool
	stopped bool

	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// limit aborts runaway simulations; 0 means no limit.
	limit uint64

	// heapPeak and inUsePeak are high-water marks of the pending queue and
	// the occupied arena, maintained unconditionally (one integer compare
	// per schedule) so Counters works without a telemetry mode switch.
	heapPeak  int
	inUsePeak int
}

// NewLoop returns an empty event loop positioned at time Start.
func NewLoop() *Loop {
	return &Loop{}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Processed returns the number of events executed so far.
func (l *Loop) Processed() uint64 { return l.processed }

// SetEventLimit aborts Run with ErrEventLimit after n events (0 disables the
// limit). It exists to catch accidental event storms in tests.
func (l *Loop) SetEventLimit(n uint64) { l.limit = n }

// Counters is a read-only snapshot of the loop's internal accounting:
// event volume, arena footprint and the high-water marks of the pending
// queue. Maintaining it costs two integer compares per scheduled event —
// there is no telemetry mode to switch on — and snapshotting allocates
// nothing.
type Counters struct {
	// Scheduled counts events ever scheduled (including later-stopped
	// timers); Fired counts events that executed.
	Scheduled uint64
	Fired     uint64
	// ArenaNodes is the pooled arena size (nodes ever created); Recycled
	// counts allocations served by the free list instead of arena growth.
	ArenaNodes int
	Recycled   uint64
	// InUsePeak is the peak number of concurrently pending nodes, HeapPeak
	// the deepest pending queue.
	InUsePeak int
	HeapPeak  int
}

// Counters returns the loop's accounting snapshot.
func (l *Loop) Counters() Counters {
	return Counters{
		Scheduled:  l.seq,
		Fired:      l.processed,
		ArenaNodes: len(l.nodes),
		Recycled:   l.seq - uint64(len(l.nodes)),
		InUsePeak:  l.inUsePeak,
		HeapPeak:   l.heapPeak,
	}
}

// ErrEventLimit is returned by Run when the configured event limit is hit.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// alloc takes a node from the free list (or grows the arena) and fills it.
// Growth only happens while the simulation is still widening its event
// horizon; once the arena matches the peak number of concurrently pending
// events, scheduling never allocates again.
func (l *Loop) alloc(at Time, fn func(), cb Callback) int32 {
	var id int32
	if n := len(l.free); n > 0 {
		id = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		if len(l.nodes) >= 1<<idBits {
			panic("sim: event arena overflow (16M concurrently pending events)")
		}
		l.nodes = append(l.nodes, node{})
		id = int32(len(l.nodes) - 1)
	}
	if l.seq >= 1<<(64-idBits) {
		panic("sim: scheduling sequence overflow")
	}
	nd := &l.nodes[id]
	nd.at = at
	nd.seq = l.seq
	nd.fn = fn
	nd.cb = cb
	l.seq++
	if used := len(l.nodes) - len(l.free); used > l.inUsePeak {
		l.inUsePeak = used
	}
	return id
}

// release recycles a node: the generation bump invalidates every handle to
// the old occupant (and stales its heap entry), and clearing the callbacks
// drops their references.
func (l *Loop) release(id int32) {
	nd := &l.nodes[id]
	nd.gen++
	nd.fn = nil
	nd.cb = nil
	// Invalidate the seq so the node's heap entry reads as stale while the
	// node sits in the free list (alloc assigns the real seq on reuse);
	// real seqs never reach this value (alloc guards the 2^40 ceiling).
	nd.seq = math.MaxUint64
	l.free = append(l.free, id)
	l.pending--
}

// less orders entries by (at, seq).
func less(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.packed < b.packed
}

// push inserts an entry into the heap.
func (l *Loop) push(e entry) {
	l.heap = append(l.heap, e)
	if len(l.heap) > l.heapPeak {
		l.heapPeak = len(l.heap)
	}
	l.up(len(l.heap) - 1)
}

// peek discards stale entries off the heap root until a live one surfaces,
// reporting whether any pending event remains.
func (l *Loop) peek() bool {
	for len(l.heap) > 0 {
		if !l.heap[0].stale(l) {
			return true
		}
		l.popRoot()
		l.dropDead()
	}
	return false
}

// popMin removes and returns the heap's minimum live node id. The caller
// must know the heap holds at least one live entry (peek reported true, or
// Len is non-zero).
func (l *Loop) popMin() int32 {
	for {
		e := l.heap[0]
		l.popRoot()
		if !e.stale(l) {
			return e.id()
		}
		l.dropDead()
	}
}

// dropDead notes that a stale entry left the heap. The count is clamped:
// Stop cannot tell whether the entry it stales sits in the heap or in the
// executing batch, so dead can overcount; clamping keeps the compaction
// heuristic sane (an overcount merely compacts a little early).
func (l *Loop) dropDead() {
	if l.dead > 0 {
		l.dead--
	}
}

// popRoot removes the root entry without inspecting it.
func (l *Loop) popRoot() {
	last := len(l.heap) - 1
	if last > 0 {
		l.heap[0] = l.heap[last]
	}
	l.heap = l.heap[:last]
	if last > 1 {
		l.downRoot()
	}
}

// downRoot re-sinks the leaf just promoted to the root using Floyd's
// bottom-up variant: descend the min-child path to a leaf without
// comparing against the moving element (it came from the bottom, so it
// almost always belongs back there), then sift it up to its true slot.
// This trades the classic per-level child-vs-element comparison for a
// usually-empty up phase. Heap layout can differ from the classic
// sift-down, but pop order cannot: extraction order is fixed by the
// total (at, seq) order of the contents, not by the array layout.
func (l *Loop) downRoot() {
	n := len(l.heap)
	e := l.heap[0]
	pos := 0
	for {
		first := 4*pos + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(&l.heap[c], &l.heap[best]) {
				best = c
			}
		}
		l.heap[pos] = l.heap[best]
		pos = best
	}
	for pos > 0 {
		parent := (pos - 1) / 4
		if !less(&e, &l.heap[parent]) {
			break
		}
		l.heap[pos] = l.heap[parent]
		pos = parent
	}
	l.heap[pos] = e
}

// maybeCompact rebuilds the heap without its stale entries once they
// outnumber the live ones. Filtering plus a bottom-up heapify is O(n),
// paid at most once per n stops, so Stop stays amortised O(1) and the
// array never holds more garbage than payload.
func (l *Loop) maybeCompact() {
	if l.dead*2 <= len(l.heap) || len(l.heap) < 64 {
		return
	}
	live := l.heap[:0]
	for _, e := range l.heap {
		if !e.stale(l) {
			live = append(live, e)
		}
	}
	l.heap = live
	if len(l.heap) > 1 {
		for i := (len(l.heap) - 2) / 4; i >= 0; i-- {
			l.down(i)
		}
	}
	l.dead = 0
}

// up restores the heap property from pos towards the root. The heap is
// 4-ary: shallower than a binary heap (fewer cache lines touched per
// operation on the large queues link serialisation builds), and the
// entries carry their sort keys inline, so sifts never leave the heap
// array.
func (l *Loop) up(pos int) {
	e := l.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 4
		if !less(&e, &l.heap[parent]) {
			break
		}
		l.heap[pos] = l.heap[parent]
		pos = parent
	}
	l.heap[pos] = e
}

// down restores the heap property from pos towards the leaves.
func (l *Loop) down(pos int) {
	e := l.heap[pos]
	n := len(l.heap)
	for {
		first := 4*pos + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(&l.heap[c], &l.heap[best]) {
				best = c
			}
		}
		if !less(&l.heap[best], &e) {
			break
		}
		l.heap[pos] = l.heap[best]
		pos = best
	}
	l.heap[pos] = e
}

// Schedule runs fn after delay d of virtual time. A non-positive delay runs
// fn as soon as the loop regains control, still in deterministic order.
func (l *Loop) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current instant.
func (l *Loop) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	return l.schedule(t, fn, nil)
}

// ScheduleCall runs cb.Run after delay d of virtual time. Unlike Schedule
// it takes a pre-bound Callback, so a caller that embeds its callback
// struct allocates nothing per event.
func (l *Loop) ScheduleCall(d time.Duration, cb Callback) Timer {
	if d < 0 {
		d = 0
	}
	return l.AtCall(l.now.Add(d), cb)
}

// AtCall runs cb.Run at absolute virtual time t, clamped like At.
func (l *Loop) AtCall(t Time, cb Callback) Timer {
	if cb == nil {
		panic("sim: AtCall called with nil callback")
	}
	return l.schedule(t, nil, cb)
}

func (l *Loop) schedule(t Time, fn func(), cb Callback) Timer {
	if t < l.now {
		t = l.now
	}
	id := l.alloc(t, fn, cb)
	nd := &l.nodes[id]
	l.pending++
	l.push(mkEntry(t, nd.seq, id))
	return Timer{loop: l, id: id, gen: nd.gen}
}

// Stop makes Run return after the currently executing event completes.
func (l *Loop) Stop() { l.stopped = true }

// Len returns the number of pending events (stale stopped-timer entries
// still in the heap array are not counted).
func (l *Loop) Len() int { return l.pending }

// Run executes events in order until the queue drains, Stop is called, or
// the event limit is exceeded.
func (l *Loop) Run() error { return l.RunUntil(End) }

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline (if the deadline precedes pending work). It returns
// nil when the deadline is reached or the queue drains.
//
// Events sharing an instant are drained as a batch: every entry already
// queued for that timestamp is popped up front, then the callbacks run
// back-to-back in (at, seq) order with no heap traffic in between. The
// observable order is identical to one-at-a-time popping — events a
// callback schedules at the current instant carry later seqs, so they sort
// after the whole batch either way and simply form the next batch — and a
// batch member stopped by an earlier member is skipped via the same
// generation check that invalidates its Timer handle.
func (l *Loop) RunUntil(deadline Time) error {
	if l.running {
		return errors.New("sim: RunUntil called re-entrantly")
	}
	l.running = true
	l.stopped = false
	defer func() { l.running = false }()

	for !l.stopped && l.peek() {
		at := l.heap[0].at
		if at > deadline {
			l.now = deadline
			return nil
		}
		if at < l.now {
			// Heap invariant violated; this is a kernel bug, not a model bug.
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", l.now, at))
		}
		l.now = at

		// Pop the whole same-instant cohort.
		l.batch = l.batch[:0]
		for {
			l.batch = append(l.batch, l.heap[0])
			l.popRoot()
			if !l.peek() || l.heap[0].at != at {
				break
			}
		}

		for i, e := range l.batch {
			if e.stale(l) {
				// Stopped by an earlier member of this batch.
				l.dead--
				continue
			}
			nd := &l.nodes[e.id()]
			fn, cb := nd.fn, nd.cb
			// Recycle before running: a Stop on this event's own handle from
			// inside the callback (or any later turn) sees a stale generation
			// and no-ops, even if the node is immediately reused.
			l.release(e.id())
			if cb != nil {
				cb.Run(l.now)
			} else {
				fn()
			}
			l.processed++
			if l.limit > 0 && l.processed >= l.limit {
				l.requeueBatch(i + 1)
				return fmt.Errorf("%w (%d events)", ErrEventLimit, l.processed)
			}
			if l.stopped {
				l.requeueBatch(i + 1)
				break
			}
		}
	}
	if deadline != End && deadline > l.now {
		l.now = deadline
	}
	return nil
}

// requeueBatch pushes the unexecuted tail of the current batch back into
// the heap when a run aborts mid-batch (Stop or the event limit). Entries
// keep their original seqs, so a later run pops them in the exact order
// they would have executed.
func (l *Loop) requeueBatch(from int) {
	for _, e := range l.batch[from:] {
		if e.stale(l) {
			l.dropDead()
			continue
		}
		l.push(e)
	}
}

// RunFor runs the loop for a span of virtual time from the current instant.
func (l *Loop) RunFor(d time.Duration) error {
	return l.RunUntil(l.now.Add(d))
}
