// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event loop ordered by (time, scheduling sequence),
// cancellable timers and a seeded random source.
//
// The kernel is single-threaded by design. All model code (links, TCP
// stacks, applications) runs inside event callbacks on one goroutine, so no
// locking is needed and identical seeds reproduce identical executions
// byte-for-byte. Harness code that wants parallelism runs one Loop per
// scenario in separate goroutines.
//
// The scheduling path is allocation-free in steady state: event nodes live
// in a pooled arena recycled through a free list, the pending queue is a
// concrete 4-ary index heap (no container/heap interface boxing), and the
// Callback interface lets hot callers schedule pre-bound callback structs
// instead of capturing closures. Timer handles are values carrying a
// generation counter, so a stale handle to a recycled node is a safe no-op.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately distinct from time.Time: simulations start
// at zero and have no wall-clock meaning.
type Time int64

// Common virtual-time constants.
const (
	// Start is the beginning of every simulation.
	Start Time = 0
	// End is the largest representable virtual time.
	End Time = math.MaxInt64
)

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since Start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats t as a duration since the simulation start.
func (t Time) String() string {
	if t == End {
		return "end"
	}
	return time.Duration(t).String()
}

// Callback is the allocation-free alternative to a func() event: model
// code embeds a small struct pre-bound to its receiver and passes a
// pointer to it, so scheduling boxes no closure and allocates nothing.
// Run is invoked with the loop's current virtual time.
type Callback interface {
	Run(now Time)
}

// node is one pooled event. Nodes compare by (at, seq) so that events
// scheduled earlier at the same instant run first, which makes runs
// deterministic regardless of heap internals. A node is recycled through
// the free list the moment it fires or is stopped; gen increments on every
// recycle so stale Timer handles cannot touch the next occupant (the
// classic ABA guard).
type node struct {
	at  Time
	seq uint64
	fn  func()
	cb  Callback
	gen uint32
	// pos is the node's index in the heap array, -1 once popped, stopped
	// or free.
	pos int32
}

// noPos marks a node that is not in the pending heap.
const noPos = -1

// Timer is a cancellable handle to a scheduled event. It is a small value
// (not a pointer): creating one allocates nothing, and the zero value is
// inert — Stop and Pending on it report false. A Timer holds the node's
// generation at scheduling time, so once the event fires or is stopped the
// handle goes stale and every operation through it is a safe no-op, even
// after the node has been recycled for an unrelated event.
type Timer struct {
	loop *Loop
	id   int32
	gen  uint32
}

// live reports whether the handle still names the scheduled event: the
// generation must match (the node was not recycled) and the node must be
// in the pending heap.
func (t Timer) live() bool {
	if t.loop == nil {
		return false
	}
	n := &t.loop.nodes[t.id]
	return n.gen == t.gen && n.pos != noPos
}

// Stop cancels the timer. It reports whether the callback was still
// pending; it returns false if the callback already ran, the timer was
// stopped, or the handle is the zero value.
func (t Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.loop.remove(t.id)
	t.loop.release(t.id)
	return true
}

// Pending reports whether the timer's callback has not yet fired or been
// stopped.
func (t Timer) Pending() bool { return t.live() }

// When returns the virtual time the timer is scheduled to fire at, or 0
// if the handle is stale.
func (t Timer) When() Time {
	if !t.live() {
		return 0
	}
	return t.loop.nodes[t.id].at
}

// Loop is a discrete-event loop. The zero value is not ready for use; call
// NewLoop.
type Loop struct {
	now Time
	seq uint64
	// nodes is the pooled event arena; free lists the recycled indices.
	nodes []node
	free  []int32
	// heap is a 4-ary min-heap of node indices ordered by (at, seq).
	heap    []int32
	running bool
	stopped bool

	// processed counts events executed, for diagnostics and run limits.
	processed uint64
	// limit aborts runaway simulations; 0 means no limit.
	limit uint64

	// heapPeak and inUsePeak are high-water marks of the pending queue and
	// the occupied arena, maintained unconditionally (one integer compare
	// per schedule) so Counters works without a telemetry mode switch.
	heapPeak  int
	inUsePeak int
}

// NewLoop returns an empty event loop positioned at time Start.
func NewLoop() *Loop {
	return &Loop{}
}

// Now returns the current virtual time.
func (l *Loop) Now() Time { return l.now }

// Processed returns the number of events executed so far.
func (l *Loop) Processed() uint64 { return l.processed }

// SetEventLimit aborts Run with ErrEventLimit after n events (0 disables the
// limit). It exists to catch accidental event storms in tests.
func (l *Loop) SetEventLimit(n uint64) { l.limit = n }

// Counters is a read-only snapshot of the loop's internal accounting:
// event volume, arena footprint and the high-water marks of the pending
// queue. Maintaining it costs two integer compares per scheduled event —
// there is no telemetry mode to switch on — and snapshotting allocates
// nothing.
type Counters struct {
	// Scheduled counts events ever scheduled (including later-stopped
	// timers); Fired counts events that executed.
	Scheduled uint64
	Fired     uint64
	// ArenaNodes is the pooled arena size (nodes ever created); Recycled
	// counts allocations served by the free list instead of arena growth.
	ArenaNodes int
	Recycled   uint64
	// InUsePeak is the peak number of concurrently pending nodes, HeapPeak
	// the deepest pending queue.
	InUsePeak int
	HeapPeak  int
}

// Counters returns the loop's accounting snapshot.
func (l *Loop) Counters() Counters {
	return Counters{
		Scheduled:  l.seq,
		Fired:      l.processed,
		ArenaNodes: len(l.nodes),
		Recycled:   l.seq - uint64(len(l.nodes)),
		InUsePeak:  l.inUsePeak,
		HeapPeak:   l.heapPeak,
	}
}

// ErrEventLimit is returned by Run when the configured event limit is hit.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// alloc takes a node from the free list (or grows the arena) and fills it.
// Growth only happens while the simulation is still widening its event
// horizon; once the arena matches the peak number of concurrently pending
// events, scheduling never allocates again.
func (l *Loop) alloc(at Time, fn func(), cb Callback) int32 {
	var id int32
	if n := len(l.free); n > 0 {
		id = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		l.nodes = append(l.nodes, node{})
		id = int32(len(l.nodes) - 1)
	}
	nd := &l.nodes[id]
	nd.at = at
	nd.seq = l.seq
	nd.fn = fn
	nd.cb = cb
	l.seq++
	if used := len(l.nodes) - len(l.free); used > l.inUsePeak {
		l.inUsePeak = used
	}
	return id
}

// release recycles a node: the generation bump invalidates every handle to
// the old occupant, and clearing the callbacks drops their references.
func (l *Loop) release(id int32) {
	nd := &l.nodes[id]
	nd.gen++
	nd.fn = nil
	nd.cb = nil
	nd.pos = noPos
	l.free = append(l.free, id)
}

// less orders nodes by (at, seq).
func (l *Loop) less(a, b int32) bool {
	na, nb := &l.nodes[a], &l.nodes[b]
	if na.at != nb.at {
		return na.at < nb.at
	}
	return na.seq < nb.seq
}

// push inserts a node id into the heap.
func (l *Loop) push(id int32) {
	l.heap = append(l.heap, id)
	if len(l.heap) > l.heapPeak {
		l.heapPeak = len(l.heap)
	}
	pos := int32(len(l.heap) - 1)
	l.nodes[id].pos = pos
	l.up(pos)
}

// popMin removes and returns the heap's minimum node id.
func (l *Loop) popMin() int32 {
	id := l.heap[0]
	l.nodes[id].pos = noPos
	last := len(l.heap) - 1
	if last > 0 {
		moved := l.heap[last]
		l.heap[0] = moved
		l.nodes[moved].pos = 0
	}
	l.heap = l.heap[:last]
	if last > 1 {
		l.down(0)
	}
	return id
}

// remove deletes the node at an arbitrary heap position.
func (l *Loop) remove(id int32) {
	pos := l.nodes[id].pos
	l.nodes[id].pos = noPos
	last := int32(len(l.heap) - 1)
	if pos != last {
		moved := l.heap[last]
		l.heap[pos] = moved
		l.nodes[moved].pos = pos
		l.heap = l.heap[:last]
		// The moved node may order either way relative to the hole.
		l.down(pos)
		l.up(l.nodes[moved].pos)
	} else {
		l.heap = l.heap[:last]
	}
}

// up restores the heap property from pos towards the root. The heap is
// 4-ary: shallower than a binary heap (fewer cache lines touched per
// operation on the large queues link serialisation builds), with the
// wider sibling scan staying inside one cache line of int32 ids.
func (l *Loop) up(pos int32) {
	id := l.heap[pos]
	for pos > 0 {
		parent := (pos - 1) / 4
		if !l.less(id, l.heap[parent]) {
			break
		}
		l.heap[pos] = l.heap[parent]
		l.nodes[l.heap[pos]].pos = pos
		pos = parent
	}
	l.heap[pos] = id
	l.nodes[id].pos = pos
}

// down restores the heap property from pos towards the leaves.
func (l *Loop) down(pos int32) {
	id := l.heap[pos]
	n := int32(len(l.heap))
	for {
		first := 4*pos + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if l.less(l.heap[c], l.heap[best]) {
				best = c
			}
		}
		if !l.less(l.heap[best], id) {
			break
		}
		l.heap[pos] = l.heap[best]
		l.nodes[l.heap[pos]].pos = pos
		pos = best
	}
	l.heap[pos] = id
	l.nodes[id].pos = pos
}

// Schedule runs fn after delay d of virtual time. A non-positive delay runs
// fn as soon as the loop regains control, still in deterministic order.
func (l *Loop) Schedule(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return l.At(l.now.Add(d), fn)
}

// At runs fn at absolute virtual time t. Times in the past are clamped to
// the current instant.
func (l *Loop) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	return l.schedule(t, fn, nil)
}

// ScheduleCall runs cb.Run after delay d of virtual time. Unlike Schedule
// it takes a pre-bound Callback, so a caller that embeds its callback
// struct allocates nothing per event.
func (l *Loop) ScheduleCall(d time.Duration, cb Callback) Timer {
	if d < 0 {
		d = 0
	}
	return l.AtCall(l.now.Add(d), cb)
}

// AtCall runs cb.Run at absolute virtual time t, clamped like At.
func (l *Loop) AtCall(t Time, cb Callback) Timer {
	if cb == nil {
		panic("sim: AtCall called with nil callback")
	}
	return l.schedule(t, nil, cb)
}

func (l *Loop) schedule(t Time, fn func(), cb Callback) Timer {
	if t < l.now {
		t = l.now
	}
	id := l.alloc(t, fn, cb)
	l.push(id)
	return Timer{loop: l, id: id, gen: l.nodes[id].gen}
}

// Stop makes Run return after the currently executing event completes.
func (l *Loop) Stop() { l.stopped = true }

// Len returns the number of pending events.
func (l *Loop) Len() int { return len(l.heap) }

// Run executes events in order until the queue drains, Stop is called, or
// the event limit is exceeded.
func (l *Loop) Run() error { return l.RunUntil(End) }

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline (if the deadline precedes pending work). It returns
// nil when the deadline is reached or the queue drains.
func (l *Loop) RunUntil(deadline Time) error {
	if l.running {
		return errors.New("sim: RunUntil called re-entrantly")
	}
	l.running = true
	l.stopped = false
	defer func() { l.running = false }()

	for len(l.heap) > 0 && !l.stopped {
		head := &l.nodes[l.heap[0]]
		if head.at > deadline {
			l.now = deadline
			return nil
		}
		if head.at < l.now {
			// Heap invariant violated; this is a kernel bug, not a model bug.
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", l.now, head.at))
		}
		l.now = head.at
		fn, cb := head.fn, head.cb
		// Recycle before running: a Stop on this event's own handle from
		// inside the callback (or any later turn) sees a stale generation
		// and no-ops, even if the node is immediately reused.
		l.release(l.popMin())
		if cb != nil {
			cb.Run(l.now)
		} else {
			fn()
		}
		l.processed++
		if l.limit > 0 && l.processed >= l.limit {
			return fmt.Errorf("%w (%d events)", ErrEventLimit, l.processed)
		}
	}
	if deadline != End && deadline > l.now {
		l.now = deadline
	}
	return nil
}

// RunFor runs the loop for a span of virtual time from the current instant.
func (l *Loop) RunFor(d time.Duration) error {
	return l.RunUntil(l.now.Add(d))
}
