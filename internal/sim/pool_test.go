package sim

// Tests for the pooled event arena: generation-counter (ABA) safety of
// recycled Timer handles, the 4-ary index heap against a container/heap
// reference, and the zero-allocation guarantees of the fast path.

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// countCall is a minimal pre-bound callback for pool tests.
type countCall struct{ n int }

func (c *countCall) Run(Time) { c.n++ }

// TestTimerRecycledNodeABA is the ABA case: a held Timer whose event
// fired and whose node was immediately reused by an unrelated event must
// not be able to stop or observe the new occupant.
func TestTimerRecycledNodeABA(t *testing.T) {
	l := NewLoop()
	var stale Timer
	var fresh Timer
	ran := 0
	stale = l.Schedule(time.Millisecond, func() {
		// The node recycles the moment this callback starts; the next
		// schedule reuses it.
		fresh = l.Schedule(time.Millisecond, func() { ran++ })
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if fresh.id != stale.id {
		t.Fatalf("test setup: expected node reuse, got node %d then %d", stale.id, fresh.id)
	}
	if fresh.gen == stale.gen {
		t.Fatal("recycled node kept its generation; ABA guard is dead")
	}
	if ran != 1 {
		t.Fatalf("second event ran %d times, want 1", ran)
	}

	// And with the reused event still pending: the stale handle must see
	// nothing and stop nothing.
	l2 := NewLoop()
	heldRan := false
	held := l2.Schedule(time.Millisecond, func() {})
	if err := l2.Run(); err != nil {
		t.Fatal(err)
	}
	reuse := l2.Schedule(time.Millisecond, func() { heldRan = true })
	if reuse.id != held.id {
		t.Fatalf("test setup: expected node reuse, got node %d then %d", held.id, reuse.id)
	}
	if held.Pending() {
		t.Fatal("stale handle claims the new occupant is its own event")
	}
	if held.Stop() {
		t.Fatal("stale handle stopped the new occupant")
	}
	if held.When() != 0 {
		t.Fatal("stale handle observed the new occupant's time")
	}
	if err := l2.Run(); err != nil {
		t.Fatal(err)
	}
	if !heldRan {
		t.Fatal("new occupant did not run after a stale Stop attempt")
	}
}

// TestTimerStopDuringOwnCallback: stopping an event from inside its own
// callback is a no-op — the node was recycled before the callback began.
func TestTimerStopDuringOwnCallback(t *testing.T) {
	l := NewLoop()
	var tm Timer
	tm = l.Schedule(time.Millisecond, func() {
		if tm.Stop() {
			t.Error("Stop from inside the firing callback reported true")
		}
		if tm.Pending() {
			t.Error("Pending from inside the firing callback reported true")
		}
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTimerStopAfterLoopEnd: handles held past the end of the run are
// stale, whatever recycling happened meanwhile.
func TestTimerStopAfterLoopEnd(t *testing.T) {
	l := NewLoop()
	var timers []Timer
	for i := 0; i < 8; i++ {
		timers = append(timers, l.Schedule(time.Duration(i)*time.Millisecond, func() {}))
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	for i, tm := range timers {
		if tm.Stop() {
			t.Fatalf("timer %d: Stop after loop end reported true", i)
		}
		if tm.Pending() {
			t.Fatalf("timer %d: Pending after loop end reported true", i)
		}
	}
}

// TestTimerDoubleStopViaCopies: a Timer is a value; stopping through one
// copy stales every other copy.
func TestTimerDoubleStopViaCopies(t *testing.T) {
	l := NewLoop()
	a := l.Schedule(time.Millisecond, func() { t.Error("stopped event ran") })
	b := a
	if !a.Stop() {
		t.Fatal("first Stop should report true")
	}
	if b.Stop() {
		t.Fatal("Stop through a second copy should report false")
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroTimerInert: the zero value is safe to use.
func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Stop() || tm.Pending() || tm.When() != 0 {
		t.Fatal("zero Timer is not inert")
	}
}

// refEvent / refQueue are a container/heap reference implementation with
// the kernel's exact ordering contract, for the differential heap test.
type refEvent struct {
	at  Time
	seq uint64
	pos int
}

type refQueue []*refEvent

func (q refQueue) Len() int { return len(q) }
func (q refQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q refQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].pos = i
	q[j].pos = j
}
func (q *refQueue) Push(x any) {
	e := x.(*refEvent)
	e.pos = len(*q)
	*q = append(*q, e)
}
func (q *refQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.pos = -1
	*q = old[:n-1]
	return e
}

// TestQuickHeapMatchesReference drives the pooled 4-ary heap and a
// container/heap reference with the same random (at, seq) stream,
// interleaving pushes, removals of random live entries and pops. The pop
// order must match the reference exactly at every step.
func TestQuickHeapMatchesReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := NewLoop()
		ref := &refQueue{}
		nop := func() {}

		// live maps a kernel Timer to its reference twin.
		type pair struct {
			tm Timer
			re *refEvent
		}
		var live []pair

		popBoth := func() {
			id := l.popMin()
			got := l.nodes[id]
			want := heap.Pop(ref).(*refEvent)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d: pop (at=%d seq=%d), reference (at=%d seq=%d)",
					seed, got.at, got.seq, want.at, want.seq)
			}
			l.release(id)
			for i := range live {
				if live[i].re == want {
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					break
				}
			}
		}

		for op := 0; op < 4000; op++ {
			switch r := rng.Intn(10); {
			case r < 5: // push
				at := Time(rng.Intn(1000))
				seq := l.seq // alloc consumes this seq
				tm := l.At(at, nop)
				re := &refEvent{at: l.nodes[tm.id].at, seq: seq}
				heap.Push(ref, re)
				live = append(live, pair{tm, re})
			case r < 7 && len(live) > 0: // remove a random live entry
				i := rng.Intn(len(live))
				p := live[i]
				if !p.tm.Stop() {
					t.Fatalf("seed %d: Stop on a live entry reported false", seed)
				}
				heap.Remove(ref, p.re.pos)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case len(live) > 0: // pop the minimum from both
				popBoth()
			}
			if l.Len() != ref.Len() {
				t.Fatalf("seed %d: sizes diverged: %d vs %d", seed, l.Len(), ref.Len())
			}
		}
		// Drain: the full remaining pop order must match.
		for ref.Len() > 0 {
			popBoth()
		}
		if l.Len() != 0 {
			t.Fatalf("seed %d: kernel heap has %d leftovers", seed, l.Len())
		}
	}
}

// TestPoolRecyclesNodes: the arena must stop growing once the pending set
// stops growing — scheduling N sequential events reuses a bounded pool.
func TestPoolRecyclesNodes(t *testing.T) {
	l := NewLoop()
	cb := &countCall{}
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 10000 {
			l.Schedule(time.Microsecond, tick)
			l.ScheduleCall(time.Microsecond, cb)
		}
	}
	l.Schedule(0, tick)
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(l.nodes) > 8 {
		t.Fatalf("arena grew to %d nodes for a ~2-pending workload", len(l.nodes))
	}
	if cb.n != 9999 {
		t.Fatalf("callback ran %d times, want 9999", cb.n)
	}
}

// TestScheduleCallZeroAllocSteadyState is the allocation gate for the
// tentpole: once the arena is warm, scheduling and firing pre-bound
// callbacks allocates nothing.
func TestScheduleCallZeroAllocSteadyState(t *testing.T) {
	l := NewLoop()
	cb := &countCall{}
	// Warm the arena and the heap/free slices well past the test's
	// working set.
	var warm []Timer
	for i := 0; i < 64; i++ {
		warm = append(warm, l.ScheduleCall(time.Duration(i)*time.Microsecond, cb))
	}
	for _, tm := range warm {
		tm.Stop()
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(1000, func() {
		l.ScheduleCall(time.Microsecond, cb)
		if err := l.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ScheduleCall+Run allocates %.1f objects per event, want 0", allocs)
	}
}

// TestTimerResetZeroAlloc is the timer-reset gate: the arm/stop/re-arm
// cycle every TCP ACK performs must not allocate.
func TestTimerResetZeroAlloc(t *testing.T) {
	l := NewLoop()
	cb := &countCall{}
	tm := l.ScheduleCall(time.Second, cb)
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Stop()
		tm = l.ScheduleCall(time.Second, cb)
	})
	if allocs != 0 {
		t.Fatalf("timer reset allocates %.1f objects, want 0", allocs)
	}
}

// TestScheduleFuncZeroAllocNonCapturing: even the classic func() form is
// allocation-free for non-capturing closures (the compiler makes them
// static); only capturing closures pay.
func TestScheduleFuncZeroAllocNonCapturing(t *testing.T) {
	l := NewLoop()
	for i := 0; i < 8; i++ {
		l.Schedule(time.Microsecond, func() {})
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		l.Schedule(time.Microsecond, func() {})
		if err := l.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("static func() schedule allocates %.1f objects, want 0", allocs)
	}
}
