package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestLoopRunsEventsInTimeOrder(t *testing.T) {
	l := NewLoop()
	var got []int
	l.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	l.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	l.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Now() != Time(30*time.Millisecond) {
		t.Fatalf("Now = %v, want 30ms", l.Now())
	}
}

func TestLoopTieBreaksByScheduleOrder(t *testing.T) {
	l := NewLoop()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestScheduleInsideEvent(t *testing.T) {
	l := NewLoop()
	var fired []Time
	l.Schedule(time.Millisecond, func() {
		fired = append(fired, l.Now())
		l.Schedule(2*time.Millisecond, func() {
			fired = append(fired, l.Now())
		})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != Time(time.Millisecond) || fired[1] != Time(3*time.Millisecond) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop()
	ran := false
	tm := l.Schedule(time.Millisecond, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	l := NewLoop()
	tm := l.Schedule(time.Millisecond, func() {})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
	if tm.Pending() {
		t.Fatal("fired timer still pending")
	}
}

func TestStopInterleavedWithHeap(t *testing.T) {
	// Cancel a timer in the middle of the heap and check the rest still run.
	l := NewLoop()
	var got []int
	var timers []Timer
	for i := 0; i < 5; i++ {
		i := i
		timers = append(timers, l.Schedule(time.Duration(i+1)*time.Millisecond, func() { got = append(got, i) }))
	}
	timers[2].Stop()
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	l := NewLoop()
	ran := false
	l.Schedule(100*time.Millisecond, func() { ran = true })
	if err := l.RunUntil(Time(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("future event ran early")
	}
	if l.Now() != Time(50*time.Millisecond) {
		t.Fatalf("Now = %v, want 50ms", l.Now())
	}
	if err := l.RunUntil(Time(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("event did not run")
	}
	if l.Now() != Time(200*time.Millisecond) {
		t.Fatalf("Now = %v, want 200ms", l.Now())
	}
}

func TestRunForIsRelative(t *testing.T) {
	l := NewLoop()
	if err := l.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := l.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if l.Now() != Time(2*time.Second) {
		t.Fatalf("Now = %v, want 2s", l.Now())
	}
}

func TestLoopStop(t *testing.T) {
	l := NewLoop()
	count := 0
	for i := 1; i <= 10; i++ {
		l.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				l.Stop()
			}
		})
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop should halt the loop)", count)
	}
}

func TestEventLimit(t *testing.T) {
	l := NewLoop()
	l.SetEventLimit(5)
	var tick func()
	tick = func() { l.Schedule(time.Millisecond, tick) }
	l.Schedule(0, tick)
	err := l.Run()
	if err == nil {
		t.Fatal("expected event-limit error")
	}
}

func TestPastScheduleClamps(t *testing.T) {
	l := NewLoop()
	l.Schedule(10*time.Millisecond, func() {
		l.At(Time(1*time.Millisecond), func() {
			if l.Now() != Time(10*time.Millisecond) {
				t.Errorf("past event ran at %v, want clamped to 10ms", l.Now())
			}
		})
	})
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	// Two loops fed the same randomized schedule execute identically.
	run := func(seed int64) []int {
		l := NewLoop()
		rng := rand.New(rand.NewSource(seed))
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			l.Schedule(time.Duration(rng.Intn(50))*time.Millisecond, func() { got = append(got, i) })
		}
		if err := l.Run(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Start.Add(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Sub(Start.Add(time.Second)) != 500*time.Millisecond {
		t.Fatalf("Sub wrong")
	}
	if tm.String() != "1.5s" {
		t.Fatalf("String = %q", tm.String())
	}
	if End.String() != "end" {
		t.Fatalf("End.String = %q", End.String())
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never moves backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		l := NewLoop()
		var times []Time
		for _, d := range delays {
			l.Schedule(time.Duration(d)*time.Microsecond, func() {
				times = append(times, l.Now())
			})
		}
		if err := l.Run(); err != nil {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Jitter stays within the requested band and is never negative.
func TestQuickJitterBounds(t *testing.T) {
	r := NewRand(1)
	f := func(ms uint16, fracRaw uint8) bool {
		d := time.Duration(ms) * time.Millisecond
		frac := float64(fracRaw%100) / 100
		j := r.Jitter(d, frac)
		lo := float64(d) * (1 - frac)
		hi := float64(d) * (1 + frac)
		return float64(j) >= lo-1 && float64(j) <= hi+1 && j >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRandForkIndependence(t *testing.T) {
	a := NewRand(7).Fork()
	b := NewRand(7).Fork()
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("forks of identical parents should match")
		}
	}
	c := NewRand(7)
	c.Int63() // advance parent before forking
	d := c.Fork()
	same := true
	e := NewRand(7).Fork()
	for i := 0; i < 10; i++ {
		if d.Int63() != e.Int63() {
			same = false
		}
	}
	if same {
		t.Fatal("fork after advancing parent should differ")
	}
}

func TestRandBool(t *testing.T) {
	r := NewRand(3)
	if r.Bool(0) {
		t.Fatal("Bool(0) must be false")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) must be true")
	}
	n := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	if n < 2700 || n > 3300 {
		t.Fatalf("Bool(0.3) hit %d/10000, want ~3000", n)
	}
}

func TestRunUntilBeforeAnyEvent(t *testing.T) {
	l := NewLoop()
	l.Schedule(time.Hour, func() { t.Fatal("should not run") })
	if err := l.RunUntil(Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if l.Now() != Time(time.Minute) {
		t.Fatalf("Now = %v", l.Now())
	}
	if l.Len() != 1 {
		t.Fatalf("pending events = %d", l.Len())
	}
}

func TestProcessedCounter(t *testing.T) {
	l := NewLoop()
	for i := 0; i < 5; i++ {
		l.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", l.Processed())
	}
}

func TestStopThenResume(t *testing.T) {
	l := NewLoop()
	ran := 0
	l.Schedule(time.Millisecond, func() { ran++; l.Stop() })
	l.Schedule(2*time.Millisecond, func() { ran++ })
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d after Stop", ran)
	}
	// A fresh Run resumes the remaining queue.
	if err := l.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d after resume", ran)
	}
}
