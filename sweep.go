package mptcpsim

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mptcpsim/internal/cc"
	"mptcpsim/internal/mptcp"
	"mptcpsim/internal/stats"
	"mptcpsim/internal/telemetry"
)

// Grid describes a parameter sweep: the cross product of scenarios,
// perturbations, congestion-control algorithms, schedulers, subflow
// orderings and seeds, each combination executed as one independent
// experiment. A Grid is JSON-serialisable so cmd/sweep can read grid specs
// from disk (see LoadGrid); empty axes default to a single sensible value.
//
// Expansion order is deterministic and documented: scenarios vary slowest,
// then perturbations, event sets, CC algorithms, schedulers, orderings,
// and seeds fastest. Run indices in the resulting SweepResult follow that
// order regardless of how many workers execute the sweep.
type Grid struct {
	// Scenarios lists the topologies to sweep over. Empty means the paper
	// network (Fig. 1a).
	Scenarios []GridScenario `json:"scenarios,omitempty"`
	// CCs lists congestion-control algorithms ("cubic", "reno", "lia",
	// "olia", "balia", "wvegas"). Empty means {"cubic"}.
	CCs []string `json:"ccs,omitempty"`
	// Schedulers lists MPTCP schedulers ("minrtt", "roundrobin",
	// "redundant"). Empty means {"minrtt"}.
	Schedulers []string `json:"schedulers,omitempty"`
	// Orders lists subflow orderings (1-based path numbers, first =
	// default path). Empty means one run in path-definition order.
	Orders [][]int `json:"orders,omitempty"`
	// Perturbations lists topology modifications applied on top of each
	// scenario. Empty means a single unperturbed pass.
	Perturbations []Perturbation `json:"perturbations,omitempty"`
	// Events lists dynamic-event timelines applied on top of each
	// (scenario, perturbation) combination — the axis that asks how each
	// algorithm copes with a failure, handover or renegotiation. Empty
	// means a single static pass. Event times and targets are validated at
	// expansion time, before any run starts.
	Events []EventSet `json:"events,omitempty"`
	// Seeds lists the random seeds. Empty means {1}.
	Seeds []int64 `json:"seeds,omitempty"`
	// DurationMs overrides the traffic duration (milliseconds); 0 keeps
	// the 4 s default.
	DurationMs float64 `json:"duration_ms,omitempty"`
	// SampleMs overrides the capture bin width (milliseconds); 0 keeps the
	// 100 ms default.
	SampleMs float64 `json:"sample_ms,omitempty"`

	// Base supplies any further per-run options programmatically (SACK,
	// timestamps, transfer size, convergence band...). CC, Scheduler,
	// SubflowPaths and Seed are overwritten by the grid axes;
	// Base.QueueScale multiplies with each perturbation's QueueScale.
	Base Options `json:"-"`
}

// GridScenario selects one topology of a sweep, either the built-in paper
// network or an inline ScenarioFile. cmd/sweep additionally accepts a
// "file" reference, which it resolves to an inline scenario before
// expansion.
type GridScenario struct {
	// Name labels the scenario in results; defaulted when empty.
	Name string `json:"name,omitempty"`
	// Paper selects the built-in Fig. 1a network.
	Paper bool `json:"paper,omitempty"`
	// File is a path to a scenario JSON file. The library does not touch
	// the filesystem: callers (cmd/sweep) must resolve File into Scenario
	// before Expand.
	File string `json:"file,omitempty"`
	// Scenario is an inline topology description.
	Scenario *ScenarioFile `json:"scenario,omitempty"`
}

// Perturbation modifies a scenario's links before a run — the ablation
// axis of a sweep (how robust is the optimality result to latency noise,
// random loss, or shallow buffers?). Global fields apply to every link;
// Links entries override individual ones afterwards.
type Perturbation struct {
	// Name labels the perturbation in results; defaulted when empty.
	Name string `json:"name,omitempty"`
	// Scenarios restricts the perturbation to the named scenarios; empty
	// applies it to all. Link-targeted perturbations usually need this in
	// multi-scenario grids (targeting a link absent from an applicable
	// scenario is an error).
	Scenarios []string `json:"scenarios,omitempty"`
	// DelayScale multiplies every link's propagation delay (0 = keep).
	DelayScale float64 `json:"delay_scale,omitempty"`
	// Loss adds an independent drop probability in (0, 1] to every link;
	// the per-link sum is capped at 1.
	Loss float64 `json:"loss,omitempty"`
	// QueueScale multiplies every link's buffer for the run (forwarded to
	// Options.QueueScale; 0 = keep).
	QueueScale float64 `json:"queue_scale,omitempty"`
	// Links lists targeted single-link overrides applied after the global
	// fields.
	Links []LinkPerturbation `json:"links,omitempty"`
}

// EventSet is one value of a sweep's events axis: a named timeline of
// dynamic events appended to the scenario's own events (if any). The
// empty timeline is the static pass and is usually listed first under the
// name "static" so every dynamic cell has its control.
type EventSet struct {
	// Name labels the set in results; defaulted when empty ("static" for
	// an empty timeline).
	Name string `json:"name,omitempty"`
	// Scenarios restricts the set to the named scenarios; empty applies it
	// to all. Link-targeted events usually need this in multi-scenario
	// grids (targeting a link absent from an applicable scenario is an
	// error).
	Scenarios []string `json:"scenarios,omitempty"`
	// Events is the timeline, in scenario-file form.
	Events []ScenarioEvent `json:"events,omitempty"`
}

// appliesTo reports whether the event set covers the named scenario.
func (es EventSet) appliesTo(scenario string) bool {
	if len(es.Scenarios) == 0 {
		return true
	}
	for _, s := range es.Scenarios {
		if s == scenario {
			return true
		}
	}
	return false
}

// apply returns a deep copy of sf with the set's events appended.
func (es EventSet) apply(sf *ScenarioFile) *ScenarioFile {
	out := sf.clone()
	out.Events = append(out.Events, es.Events...)
	return out
}

// LinkPerturbation overrides the parameters of one named link (matched in
// either direction). Zero-valued fields keep the link's current value.
type LinkPerturbation struct {
	A string `json:"a"`
	B string `json:"b"`
	// Mbps replaces the link capacity.
	Mbps float64 `json:"mbps,omitempty"`
	// DelayMs replaces the one-way propagation delay.
	DelayMs float64 `json:"delay_ms,omitempty"`
	// QueueBytes replaces the buffer size.
	QueueBytes int `json:"queue_bytes,omitempty"`
	// Loss replaces the drop probability.
	Loss float64 `json:"loss,omitempty"`
}

// canonicalSchedName maps a scheduler spelling (case variants, aliases
// like "rr" or "default", the empty default) to the scheduler's own
// canonical name, so axis dedup and result labels agree across spellings.
func canonicalSchedName(name string) string {
	s, err := mptcp.NewScheduler(name)
	if err != nil {
		return schedName(name)
	}
	return s.Name()
}

// rejectDuplicateAxis errors when an axis lists the same value twice
// (after normalization): duplicates would execute identical runs and
// double-count them in group statistics.
func rejectDuplicateAxis(axis string, vals []string, norm func(string) string) error {
	seen := make(map[string]bool, len(vals))
	for _, v := range vals {
		if norm != nil {
			v = norm(v)
		}
		if seen[v] {
			return fmt.Errorf("mptcpsim: duplicate %s %q in grid", axis, v)
		}
		seen[v] = true
	}
	return nil
}

// appliesTo reports whether the perturbation covers the named scenario.
func (p Perturbation) appliesTo(scenario string) bool {
	if len(p.Scenarios) == 0 {
		return true
	}
	for _, s := range p.Scenarios {
		if s == scenario {
			return true
		}
	}
	return false
}

// apply returns a deep copy of sf with the perturbation applied.
func (p Perturbation) apply(sf *ScenarioFile) (*ScenarioFile, error) {
	// Zero means "keep"; a negative scale or probability is a sign typo
	// that would otherwise run as an unperturbed cell under this name.
	if p.DelayScale < 0 || p.QueueScale < 0 || p.Loss < 0 {
		return nil, fmt.Errorf("mptcpsim: perturbation %q has a negative field", p.Name)
	}
	// Like the per-link override: loss > 1 is a typo'd percentage, not a
	// probability, and would drop every packet.
	if p.Loss > 1 {
		return nil, fmt.Errorf("mptcpsim: perturbation %q sets loss %v (want 0..1)", p.Name, p.Loss)
	}
	out := sf.clone()
	for i := range out.Links {
		if p.DelayScale > 0 {
			out.Links[i].DelayMs *= p.DelayScale
		}
		if p.Loss > 0 {
			out.Links[i].Loss += p.Loss
			if out.Links[i].Loss > 1 {
				out.Links[i].Loss = 1
			}
		}
	}
	for _, ov := range p.Links {
		if ov.Loss < 0 || ov.Loss > 1 {
			return nil, fmt.Errorf("mptcpsim: perturbation %q sets loss %v on %s-%s (want 0..1)",
				p.Name, ov.Loss, ov.A, ov.B)
		}
		// Zero means "keep"; negatives are typos, not overrides.
		if ov.Mbps < 0 || ov.DelayMs < 0 || ov.QueueBytes < 0 {
			return nil, fmt.Errorf("mptcpsim: perturbation %q sets a negative value on %s-%s",
				p.Name, ov.A, ov.B)
		}
		// An override with nothing to override is a forgotten field, and
		// would silently run an unperturbed cell under this name.
		if ov.Mbps == 0 && ov.DelayMs == 0 && ov.QueueBytes == 0 && ov.Loss == 0 {
			return nil, fmt.Errorf("mptcpsim: perturbation %q overrides %s-%s without setting any field",
				p.Name, ov.A, ov.B)
		}
		found := false
		for i := range out.Links {
			l := &out.Links[i]
			if (l.A == ov.A && l.B == ov.B) || (l.A == ov.B && l.B == ov.A) {
				found = true
				if ov.Mbps > 0 {
					l.Mbps = ov.Mbps
				}
				if ov.DelayMs > 0 {
					l.DelayMs = ov.DelayMs
				}
				if ov.QueueBytes > 0 {
					l.QueueBytes = ov.QueueBytes
				}
				if ov.Loss > 0 {
					l.Loss = ov.Loss
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("mptcpsim: perturbation %q targets unknown link %s-%s", p.Name, ov.A, ov.B)
		}
	}
	return out, nil
}

// LoadGrid parses a JSON grid spec (see Grid for the schema).
func LoadGrid(r io.Reader) (*Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("mptcpsim: grid: %w", err)
	}
	return &g, nil
}

// RunSpec is one fully resolved point of an expanded grid.
type RunSpec struct {
	// Index is the position in deterministic expansion order.
	Index int
	// Scenario and Perturbation name the topology variant; Events names
	// the dynamic-event set in force ("static" when the axis is unused).
	Scenario, Perturbation, Events string
	// Options holds the complete per-run options (CC, scheduler, ordering,
	// seed and queue scale filled from the grid axes).
	Options Options

	scenario *ScenarioFile
}

// Expand resolves defaults and produces the deterministic run list: the
// full cross product with scenarios varying slowest, then perturbations,
// event sets, CC algorithms, schedulers, orderings, and seeds fastest.
func (g *Grid) Expand() ([]RunSpec, error) {
	scenarios := g.Scenarios
	if len(scenarios) == 0 {
		scenarios = []GridScenario{{Name: "paper", Paper: true}}
	}
	type namedScenario struct {
		name string
		file *ScenarioFile
	}
	resolved := make([]namedScenario, len(scenarios))
	for i, s := range scenarios {
		ns := namedScenario{name: s.Name}
		// Exactly one selector: with several set, the library and the CLI
		// (which resolves File into Scenario first) would silently pick
		// different topologies for the same spec.
		selectors := 0
		for _, set := range []bool{s.Paper, s.File != "", s.Scenario != nil} {
			if set {
				selectors++
			}
		}
		if selectors > 1 {
			return nil, fmt.Errorf("mptcpsim: scenario %d sets more than one of paper/file/scenario", i)
		}
		switch {
		case s.Scenario != nil:
			ns.file = s.Scenario
		case s.Paper:
			ns.file = PaperScenario()
			if ns.name == "" {
				ns.name = "paper"
			}
		case s.File != "":
			return nil, fmt.Errorf("mptcpsim: scenario %d references file %q; resolve it into an inline scenario before Expand", i, s.File)
		default:
			return nil, fmt.Errorf("mptcpsim: scenario %d is empty (set paper, file or scenario)", i)
		}
		if ns.name == "" {
			ns.name = fmt.Sprintf("s%d", i+1)
		}
		resolved[i] = ns
	}
	// Group aggregation keys on the name; duplicates would silently pool
	// unrelated topologies into one cell.
	scNames := make([]string, len(resolved))
	for i, sc := range resolved {
		scNames[i] = sc.name
	}
	if err := rejectDuplicateAxis("scenario name", scNames, nil); err != nil {
		return nil, err
	}

	perts := g.Perturbations
	if len(perts) == 0 {
		perts = []Perturbation{{Name: "base"}}
	}
	// Like scenarios, perturbation names key aggregation groups.
	pnames := make([]string, len(perts))
	for i, pert := range perts {
		pnames[i] = pert.Name
		if pnames[i] == "" {
			pnames[i] = fmt.Sprintf("p%d", i+1)
		}
	}
	if err := rejectDuplicateAxis("perturbation name", pnames, nil); err != nil {
		return nil, err
	}
	// A typo'd scenario filter would otherwise silently drop runs.
	for _, pert := range perts {
		for _, want := range pert.Scenarios {
			known := false
			for _, sc := range resolved {
				if sc.name == want {
					known = true
					break
				}
			}
			if !known {
				return nil, fmt.Errorf("mptcpsim: perturbation %q targets unknown scenario %q", pert.Name, want)
			}
		}
	}

	// The events axis: like perturbations, sets are named, deduplicated,
	// and may be scoped to scenarios; an empty axis is one static pass.
	events := g.Events
	if len(events) == 0 {
		events = []EventSet{{Name: "static"}}
	}
	enames := make([]string, len(events))
	for i, es := range events {
		enames[i] = es.Name
		if enames[i] == "" {
			if len(es.Events) == 0 {
				enames[i] = "static"
			} else {
				enames[i] = fmt.Sprintf("e%d", i+1)
			}
		}
	}
	if err := rejectDuplicateAxis("event set name", enames, nil); err != nil {
		return nil, err
	}
	for _, es := range events {
		for _, want := range es.Scenarios {
			known := false
			for _, sc := range resolved {
				if sc.name == want {
					known = true
					break
				}
			}
			if !known {
				return nil, fmt.Errorf("mptcpsim: event set %q targets unknown scenario %q", es.Name, want)
			}
		}
	}
	// Axis values are validated up front, consistent with the topology
	// pre-build below: a typo'd name is a structural error, not N
	// identical per-run failures.
	ccs := g.CCs
	if len(ccs) == 0 {
		ccs = []string{"cubic"}
	}
	for _, name := range ccs {
		if _, err := cc.New(name); err != nil {
			return nil, fmt.Errorf("mptcpsim: %w", err)
		}
	}
	if err := rejectDuplicateAxis("cc", ccs, strings.ToLower); err != nil {
		return nil, err
	}
	scheds := g.Schedulers
	if len(scheds) == 0 {
		scheds = []string{"minrtt"}
	}
	for _, name := range scheds {
		if _, err := mptcp.NewScheduler(name); err != nil {
			return nil, fmt.Errorf("mptcpsim: %w", err)
		}
	}
	if err := rejectDuplicateAxis("scheduler", scheds, canonicalSchedName); err != nil {
		return nil, err
	}
	orders := g.Orders
	if len(orders) == 0 {
		orders = [][]int{nil}
	}
	// Duplicate orders are checked per scenario so that the empty order
	// (path-definition order) collides with an explicitly spelled-out
	// identity permutation instead of double-counting those runs.
	for _, sc := range resolved {
		n := len(sc.file.Paths)
		orderNames := make([]string, len(orders))
		for i, o := range orders {
			if len(o) == 0 {
				ident := make([]int, n)
				for j := range ident {
					ident[j] = j + 1
				}
				o = ident
			}
			orderNames[i] = orderString(o)
		}
		if err := rejectDuplicateAxis("order", orderNames, nil); err != nil {
			return nil, err
		}
	}
	// A repeated path in one ordering would open two subflows with the
	// same tag and corrupt the greedy baseline.
	for _, o := range orders {
		in := make(map[int]bool, len(o))
		for _, p := range o {
			if in[p] {
				return nil, fmt.Errorf("mptcpsim: order %s lists path %d twice", orderString(o), p)
			}
			in[p] = true
		}
	}
	// Orders apply to every scenario, so each must stay within every
	// scenario's path count — caught here, not as N per-run failures.
	for _, sc := range resolved {
		n := len(sc.file.Paths)
		for _, o := range orders {
			for _, p := range o {
				if p < 1 || p > n {
					return nil, fmt.Errorf("mptcpsim: order %s references path %d of %d in scenario %q",
						orderString(o), p, n, sc.name)
				}
			}
		}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	seedNames := make([]string, len(seeds))
	for i, s := range seeds {
		if s == 0 {
			s = 1 // withDefaults maps seed 0 to 1, so 0 and 1 collide
		}
		seedNames[i] = strconv.FormatInt(s, 10)
	}
	if err := rejectDuplicateAxis("seed", seedNames, nil); err != nil {
		return nil, err
	}

	base := g.Base
	if g.DurationMs > 0 {
		base.Duration = time.Duration(g.DurationMs * float64(time.Millisecond))
	}
	if g.SampleMs > 0 {
		base.SampleInterval = time.Duration(g.SampleMs * float64(time.Millisecond))
	}
	baseQueueScale := base.QueueScale
	if baseQueueScale <= 0 {
		baseQueueScale = 1
	}

	var specs []RunSpec
	for _, sc := range resolved {
		covered := false
		for _, pert := range perts {
			if pert.appliesTo(sc.name) {
				covered = true
				break
			}
		}
		// A scenario every perturbation filters out would contribute zero
		// runs with no diagnostic — remove it from the grid instead.
		if !covered {
			return nil, fmt.Errorf("mptcpsim: scenario %q is excluded by every perturbation's scenario filter", sc.name)
		}
		covered = false
		for _, es := range events {
			if es.appliesTo(sc.name) {
				covered = true
				break
			}
		}
		if !covered {
			return nil, fmt.Errorf("mptcpsim: scenario %q is excluded by every event set's scenario filter", sc.name)
		}
		for pi, pert := range perts {
			if !pert.appliesTo(sc.name) {
				continue
			}
			pname := pnames[pi]
			perturbed, err := pert.apply(sc.file)
			if err != nil {
				return nil, err
			}
			qs := baseQueueScale
			if pert.QueueScale > 0 {
				qs *= pert.QueueScale
			}
			for ei, es := range events {
				if !es.appliesTo(sc.name) {
					continue
				}
				ename := enames[ei]
				withEvents := es.apply(perturbed)
				// Catch broken topologies and timelines now rather than
				// burning the whole sweep on runs that all fail at build
				// time: Build validates every event (times, targets,
				// parameters, down/up pairing) against the final perturbed
				// links.
				if _, err := withEvents.Build(); err != nil {
					return nil, fmt.Errorf("mptcpsim: scenario %q / perturbation %q / events %q: %w",
						sc.name, pname, ename, err)
				}
				for _, ccName := range ccs {
					for _, sched := range scheds {
						for _, order := range orders {
							for _, seed := range seeds {
								opts := base
								opts.CC = ccName
								opts.Scheduler = sched
								opts.SubflowPaths = order
								opts.Seed = seed
								opts.QueueScale = qs
								specs = append(specs, RunSpec{
									Index:        len(specs),
									Scenario:     sc.name,
									Perturbation: pname,
									Events:       ename,
									Options:      opts,
									scenario:     withEvents,
								})
							}
						}
					}
				}
			}
		}
	}
	return specs, nil
}

// RunSummary records the outcome of one sweep run: the grid coordinates,
// the LP baseline, and the convergence/optimality metrics. It contains no
// wall-clock data, so serialised sweep output is bit-identical across
// worker counts.
type RunSummary struct {
	Index        int     `json:"index"`
	Scenario     string  `json:"scenario"`
	Perturbation string  `json:"perturbation"`
	Events       string  `json:"events,omitempty"`
	CC           string  `json:"cc"`
	Scheduler    string  `json:"scheduler"`
	Order        []int   `json:"order,omitempty"`
	Seed         int64   `json:"seed"`
	OptimumMbps  float64 `json:"optimum_mbps"`
	// TargetMbps is the optimality target Gap was computed against: equal
	// to OptimumMbps for static cells, the time-weighted piecewise optimum
	// for cells with capacity events.
	TargetMbps float64 `json:"target_mbps"`
	GreedyMbps float64 `json:"greedy_mbps"`
	TotalMbps  float64 `json:"total_mbps"`
	// Gap is the optimality gap versus TargetMbps (0 = optimal,
	// 0.25 = 25% below).
	Gap          float64   `json:"gap"`
	Converged    bool      `json:"converged"`
	ConvergedAtS float64   `json:"converged_at_s,omitempty"`
	PostCoV      float64   `json:"post_cov"`
	PathMbps     []float64 `json:"path_mbps,omitempty"`
	// Err records a per-run failure; the rest of the sweep continues.
	Err string `json:"err,omitempty"`
}

// OrderString renders the subflow ordering ("2-1-3"; "auto" when the run
// used path-definition order).
func (r RunSummary) OrderString() string { return orderString(r.Order) }

func orderString(order []int) string {
	if len(order) == 0 {
		return "auto"
	}
	parts := make([]string, len(order))
	for i, p := range order {
		parts[i] = strconv.Itoa(p)
	}
	return strings.Join(parts, "-")
}

// GroupStats aggregates the runs sharing one (scenario, perturbation,
// events, CC, scheduler) cell over orderings and seeds.
type GroupStats struct {
	Scenario     string `json:"scenario"`
	Perturbation string `json:"perturbation"`
	Events       string `json:"events,omitempty"`
	CC           string `json:"cc"`
	Scheduler    string `json:"scheduler"`
	// Runs counts completed runs in the cell, Errors failed ones.
	Runs   int `json:"runs"`
	Errors int `json:"errors,omitempty"`
	// Converged counts runs that reached the optimum band.
	Converged int `json:"converged"`
	// Gap, TotalMbps and ConvergedAtS summarise the per-run metrics
	// (ConvergedAtS over converged runs only).
	Gap          stats.Agg `json:"gap"`
	TotalMbps    stats.Agg `json:"total_mbps"`
	ConvergedAtS stats.Agg `json:"converged_at_s"`
}

// SweepResult is the aggregate outcome of a sweep. Runs are in grid
// expansion order; Groups aggregate over orderings and seeds in
// first-appearance order; Gap summarises all completed runs. The value is
// identical for any worker count.
type SweepResult struct {
	Runs   []RunSummary `json:"runs"`
	Groups []GroupStats `json:"groups"`
	// Gap aggregates the optimality gap across every completed run.
	Gap stats.Agg `json:"gap"`
	// Telemetry is the engine-counter rollup across every run when
	// Sweep.Telemetry is set (sums and maxima only, so it is identical
	// for any worker count). Not carried through shard artifacts: shard
	// output must stay byte-identical to its pre-telemetry contract.
	Telemetry *telemetry.Rollup `json:"telemetry,omitempty"`
	// Results holds the full per-run Result values when Sweep.Keep is set
	// (indexed like Runs; memory heavy).
	Results []*Result `json:"-"`
}

// Sweep executes an expanded grid across a pool of worker goroutines. Each
// run is an independent virtual-time simulation, so the sweep is
// embarrassingly parallel; results land at their grid index, making the
// output deterministic regardless of Workers.
//
// Every execution path feeds one RunSink chain (see RunSink): Run and
// RunShard accumulate through a MemorySink, Stream feeds a caller-supplied
// sink and retains nothing. The OnResult/OnFailure/Keep fields below are
// thin adapter sinks over that same path, kept for compatibility.
type Sweep struct {
	// Workers is the goroutine pool size; 0 means GOMAXPROCS.
	Workers int
	// OnResult, when set, is called after each run completes (serialised;
	// done counts finished runs). Use it to stream progress.
	//
	// Deprecated: OnResult is an adapter over the RunSink path; new
	// consumers should pass a sink to Stream (or wrap one with MultiSink).
	// The field keeps working and keeps its serialised, exactly-once,
	// done-monotone contract.
	OnResult func(done, total int, r RunSummary)
	// OnFailure, when set, is called for each failed run (serialised with
	// OnResult, under the same lock). res is the run's partial Result
	// when one exists — an invariant violation or a telemetry-enabled
	// mid-run abort — and nil when the run failed before producing one.
	// cmd/sweep uses it to dump flight-recorder tails; cmd/sweepd will
	// use it to stream failures off workers.
	//
	// Deprecated: like OnResult, OnFailure is an adapter over the RunSink
	// path; a sink's Accept sees the same summary and partial result.
	OnFailure func(r RunSummary, res *Result)
	// Keep retains the full Result of every run in SweepResult.Results.
	//
	// Deprecated: Keep is the memory ceiling streaming sweeps remove; it
	// remains for Run/RunShard but is rejected by Stream — a sink that
	// consumes each full Result as it lands replaces it.
	Keep bool
	// ValidateInvariants turns every run into a self-checking one: the
	// correctness oracle (see Options.ValidateInvariants) audits each run
	// and any violation is recorded as that run's Err, failing the cell
	// without aborting the sweep.
	ValidateInvariants bool
	// Telemetry enables Options.Telemetry on every run and accumulates
	// the per-run snapshots into SweepResult.Telemetry (online — it works
	// without Keep). Observation-only: run hashes are unchanged.
	Telemetry bool
}

// Run expands the grid and executes every point. Individual run failures
// are recorded in the corresponding RunSummary.Err and do not abort the
// sweep; only structural problems (bad grid, bad scenario) return an
// error. Memory is linear in grid size — for grids too large to hold,
// use Stream.
func (s *Sweep) Run(g *Grid) (*SweepResult, error) {
	specs, err := g.Expand()
	if err != nil {
		return nil, err
	}
	mem := &MemorySink{Keep: s.Keep}
	sink := RunSink(mem)
	var roll *RollupSink
	if s.Telemetry {
		roll = &RollupSink{}
		sink = MultiSink(mem, roll)
	}
	if err := s.execute(specs, sink); err != nil {
		return nil, err
	}
	res := mem.Result()
	if roll != nil {
		res.Telemetry = &roll.Rollup
	}
	return res, nil
}

// StreamSpec selects which slice of the grid a streaming sweep executes.
type StreamSpec struct {
	// Shard restricts execution to the runs of one shard (expansion index
	// % N == K); the zero value means the whole grid (shard 0/1).
	Shard Shard
	// Skip, when set, drops already-completed runs from execution — the
	// resume filter. Skipped runs never execute, are never delivered to
	// the sink, and do not count toward its done/total.
	Skip func(index int) bool
}

// Stream executes the grid (or one shard of it) without accumulating
// anything: every completed run is handed to the sink and released, so
// peak memory is flat in grid size — the entry point for mega-sweeps
// whose run-logs (LogSink) or online aggregates (AggSink) replace the
// in-memory SweepResult. Like RunShard, the sweep-level
// ValidateInvariants flag folds into the digest identity (see Describe),
// so logs written here merge with shard artifacts of the same settings.
// Stream closes the sink exactly once, after the last delivery; per-run
// failures land in their RunSummary.Err as always, and the returned error
// reports structural problems or the first sink failure.
func (s *Sweep) Stream(g *Grid, spec StreamSpec, sink RunSink) error {
	if s.Keep {
		return fmt.Errorf("mptcpsim: Stream with Keep would retain every Result and defeat flat-memory streaming; use a sink that consumes full results as they land instead")
	}
	shard := spec.Shard
	if shard.N == 0 {
		shard = Shard{K: 0, N: 1}
	}
	if err := shard.Validate(); err != nil {
		return err
	}
	specs, _, err := s.expandFolded(g)
	if err != nil {
		return err
	}
	var mine []RunSpec
	for _, sp := range specs {
		if sp.Index%shard.N != shard.K {
			continue
		}
		if spec.Skip != nil && spec.Skip(sp.Index) {
			continue
		}
		mine = append(mine, sp)
	}
	execErr := s.execute(mine, sink)
	if cerr := sink.Close(); execErr == nil {
		execErr = cerr
	}
	return execErr
}

// Describe expands the grid and returns its canonical digest and total
// run count under this sweep's settings — the header values a run-log
// needs before the first run completes. The digest folds the sweep-level
// ValidateInvariants flag exactly like RunShard, so artifacts only merge
// across matching run settings.
func (s *Sweep) Describe(g *Grid) (digest string, total int, err error) {
	specs, digest, err := s.expandFolded(g)
	if err != nil {
		return "", 0, err
	}
	return digest, len(specs), nil
}

// execute runs the specs across the worker pool, feeding every completion
// to the sink — the single dispatch point every results surface hangs off.
// Completions are delivered under one lock: Accept calls never overlap,
// done is monotone, and each run is delivered exactly once. The deprecated
// OnResult/OnFailure hooks ride the same path as an adapter sink appended
// to the chain. The first sink error stops further deliveries (remaining
// runs still execute; their results are void) and is returned.
func (s *Sweep) execute(specs []RunSpec, sink RunSink) error {
	if s.OnResult != nil || s.OnFailure != nil {
		sink = MultiSink(sink, &hookSink{onResult: s.OnResult, onFailure: s.OnFailure})
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	var (
		mu      sync.Mutex
		done    int
		sinkErr error
		wg      sync.WaitGroup
	)
	jobs := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				spec := specs[i]
				if s.ValidateInvariants {
					spec.Options.ValidateInvariants = true
				}
				if s.Telemetry {
					spec.Options.Telemetry = true
				}
				summary, full := runSpec(spec)
				mu.Lock()
				done++
				if sinkErr == nil {
					if err := sink.Accept(done, len(specs), summary, full); err != nil {
						sinkErr = err
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return sinkErr
}

// runSpec executes one grid point on a freshly built network (Run mutates
// link state in place, so concurrent runs must not share a Network).
func runSpec(spec RunSpec) (RunSummary, *Result) {
	// Label the summary with the effective options so defaults stay
	// single-sourced in withDefaults, and with canonical spellings so two
	// sweeps written with different aliases label cells identically.
	eff := spec.Options.withDefaults()
	summary := RunSummary{
		Index:        spec.Index,
		Scenario:     spec.Scenario,
		Perturbation: spec.Perturbation,
		Events:       spec.Events,
		CC:           strings.ToLower(eff.CC),
		Scheduler:    canonicalSchedName(eff.Scheduler),
		Order:        spec.Options.SubflowPaths,
		Seed:         eff.Seed,
	}
	nw, err := spec.scenario.Build()
	if err != nil {
		summary.Err = err.Error()
		return summary, nil
	}
	r, err := Run(nw, spec.Options)
	if err != nil {
		summary.Err = err.Error()
		// With telemetry on, a mid-run abort still yields a partial
		// result carrying the flight-recorder tail.
		return summary, r
	}
	if len(r.Invariants) > 0 {
		summary.Err = "invariants violated: " + strings.Join(r.Invariants, "; ")
		return summary, r
	}
	summary.OptimumMbps = r.Optimum.Total
	summary.TargetMbps = r.Summary.Target
	summary.GreedyMbps = total(r.Greedy)
	summary.TotalMbps = r.Summary.TotalMean
	summary.Gap = r.Summary.Gap
	summary.Converged = r.Summary.Converged
	if r.Summary.Converged {
		summary.ConvergedAtS = r.Summary.ConvergedAt.Seconds()
	}
	summary.PostCoV = r.Summary.PostCoV
	summary.PathMbps = r.Summary.PathMeans
	return summary, r
}

// aggregate fills Groups and the overall Gap from Runs.
func (r *SweepResult) aggregate() {
	type key struct{ scenario, pert, events, cc, sched string }
	groups := make(map[key]int)
	var (
		orderKeys []key
		gaps      = make(map[key][]float64)
		totals    = make(map[key][]float64)
		convAts   = make(map[key][]float64)
		allGaps   []float64
	)
	r.Groups = nil
	for _, run := range r.Runs {
		k := key{run.Scenario, run.Perturbation, run.Events, run.CC, run.Scheduler}
		gi, ok := groups[k]
		if !ok {
			gi = len(r.Groups)
			groups[k] = gi
			orderKeys = append(orderKeys, k)
			r.Groups = append(r.Groups, GroupStats{
				Scenario:     run.Scenario,
				Perturbation: run.Perturbation,
				Events:       run.Events,
				CC:           run.CC,
				Scheduler:    run.Scheduler,
			})
		}
		g := &r.Groups[gi]
		if run.Err != "" {
			g.Errors++
			continue
		}
		g.Runs++
		if run.Converged {
			g.Converged++
			convAts[k] = append(convAts[k], run.ConvergedAtS)
		}
		gaps[k] = append(gaps[k], run.Gap)
		totals[k] = append(totals[k], run.TotalMbps)
		allGaps = append(allGaps, run.Gap)
	}
	for _, k := range orderKeys {
		g := &r.Groups[groups[k]]
		g.Gap = stats.Aggregate(gaps[k])
		g.TotalMbps = stats.Aggregate(totals[k])
		g.ConvergedAtS = stats.Aggregate(convAts[k])
	}
	r.Gap = stats.Aggregate(allGaps)
}

// Errs counts failed runs.
func (r *SweepResult) Errs() int {
	n := 0
	for _, run := range r.Runs {
		if run.Err != "" {
			n++
		}
	}
	return n
}

// WriteCSV emits one row per run, in grid order.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"index", "scenario", "perturbation",
		"events", "cc", "scheduler", "order", "seed", "optimum_mbps",
		"target_mbps", "greedy_mbps", "total_mbps", "gap_pct", "converged",
		"conv_time_s", "post_cov", "err"}); err != nil {
		return err
	}
	for _, run := range r.Runs {
		// Blank, not 0.00, where there is no data: a failed run must not
		// read as a perfect gap, nor a non-converged one as instant
		// convergence.
		metrics := []string{"", "", "", "", "", "", "", ""}
		if run.Err == "" {
			metrics[5] = strconv.FormatBool(run.Converged)
			metrics[0] = fmt.Sprintf("%.2f", run.OptimumMbps)
			metrics[1] = fmt.Sprintf("%.2f", run.TargetMbps)
			metrics[2] = fmt.Sprintf("%.2f", run.GreedyMbps)
			metrics[3] = fmt.Sprintf("%.2f", run.TotalMbps)
			metrics[4] = fmt.Sprintf("%.2f", run.Gap*100)
			if run.Converged {
				metrics[6] = fmt.Sprintf("%.2f", run.ConvergedAtS)
			}
			metrics[7] = fmt.Sprintf("%.4f", run.PostCoV)
		}
		rec := append([]string{
			strconv.Itoa(run.Index), run.Scenario, run.Perturbation,
			run.Events, run.CC, run.Scheduler, run.OrderString(),
			strconv.FormatInt(run.Seed, 10),
		}, metrics...)
		if err := cw.Write(append(rec, run.Err)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteGroupsCSV emits one row per aggregated (scenario, perturbation, CC,
// scheduler) cell.
func (r *SweepResult) WriteGroupsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"scenario", "perturbation", "events", "cc",
		"scheduler", "runs", "errors", "converged", "mean_gap_pct",
		"min_gap_pct", "max_gap_pct", "mean_total_mbps",
		"mean_conv_time_s"}); err != nil {
		return err
	}
	for _, g := range r.Groups {
		// Empty cells, not 0.00, where there is no data: a dead group
		// must not read as a perfect gap, nor an unconverged one as
		// instant convergence.
		cells := []string{"", "", "", "", ""}
		if g.Runs > 0 {
			cells[0] = fmt.Sprintf("%.2f", g.Gap.Mean*100)
			cells[1] = fmt.Sprintf("%.2f", g.Gap.Min*100)
			cells[2] = fmt.Sprintf("%.2f", g.Gap.Max*100)
			cells[3] = fmt.Sprintf("%.2f", g.TotalMbps.Mean)
		}
		if g.Converged > 0 {
			cells[4] = fmt.Sprintf("%.2f", g.ConvergedAtS.Mean)
		}
		rec := append([]string{g.Scenario, g.Perturbation, g.Events, g.CC,
			g.Scheduler, strconv.Itoa(g.Runs), strconv.Itoa(g.Errors),
			strconv.Itoa(g.Converged)}, cells...)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the whole result (runs, groups, overall gap) as indented
// JSON.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Report renders a human-readable aggregate table, groups sorted as
// encountered with the best mean gap flagged.
func (r *SweepResult) Report(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep: %d runs", len(r.Runs))
	if n := r.Errs(); n > 0 {
		fmt.Fprintf(&sb, " (%d failed)", n)
	}
	if r.Gap.N > 0 {
		fmt.Fprintf(&sb, ", gap mean %.1f%% median %.1f%% min %.1f%% max %.1f%%",
			r.Gap.Mean*100, r.Gap.Median*100, r.Gap.Min*100, r.Gap.Max*100)
	}
	sb.WriteString("\n\n")
	best := -1.0
	for _, g := range r.Groups {
		if g.Runs > 0 && (best < 0 || g.Gap.Mean < best) {
			best = g.Gap.Mean
		}
	}
	fmt.Fprintf(&sb, "%-10s %-8s %-8s %-8s %-10s %5s %5s  %-22s %s\n",
		"scenario", "pert", "events", "cc", "scheduler", "runs", "conv", "gap mean±std [min,max]", "")
	for _, g := range r.Groups {
		events := g.Events
		if events == "" {
			events = "static"
		}
		if g.Runs == 0 {
			fmt.Fprintf(&sb, "%-10s %-8s %-8s %-8s %-10s %5d %5d  (no completed runs, %d errors)\n",
				g.Scenario, g.Perturbation, events, g.CC, g.Scheduler, g.Runs, g.Converged, g.Errors)
			continue
		}
		mark := ""
		if g.Gap.Mean == best {
			mark = "  <- best"
		}
		fmt.Fprintf(&sb, "%-10s %-8s %-8s %-8s %-10s %5d %5d  %5.1f%% ±%4.1f [%5.1f,%5.1f]%s\n",
			g.Scenario, g.Perturbation, events, g.CC, g.Scheduler, g.Runs, g.Converged,
			g.Gap.Mean*100, g.Gap.Std*100, g.Gap.Min*100, g.Gap.Max*100, mark)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// SortRunsByGap returns run indices ordered by ascending gap (completed
// runs only) — the sweep's leaderboard.
func (r *SweepResult) SortRunsByGap() []int {
	var idx []int
	for i, run := range r.Runs {
		if run.Err == "" {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Runs[idx[a]].Gap < r.Runs[idx[b]].Gap
	})
	return idx
}
