package mptcpsim

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

// TestPaperLPOptimum verifies experiment E2: the LP of Fig. 1c has optimum
// 90 Mbps at {30, 10, 50} and all three shared bottlenecks bind.
func TestPaperLPOptimum(t *testing.T) {
	res, err := RunPaper(Options{Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Optimum.Total-90) > 1e-6 {
		t.Fatalf("LP total = %v, want 90", res.Optimum.Total)
	}
	want := []float64{30, 10, 50}
	for i, v := range want {
		if math.Abs(res.Optimum.PerPath[i]-v) > 1e-6 {
			t.Fatalf("LP solution = %v, want %v", res.Optimum.PerPath, want)
		}
	}
	for _, frag := range []string{"max x1 + x2 + x3", "x1 + x2 <= 40", "x2 + x3 <= 60", "x1 + x3 <= 80"} {
		if !strings.Contains(res.Problem, frag) {
			t.Fatalf("LP rendering missing %q:\n%s", frag, res.Problem)
		}
	}
	// Analytic baselines (greedy trap, max-min, proportional fairness).
	if math.Abs(total(res.Greedy)-60) > 1e-6 {
		t.Fatalf("greedy total = %v, want 60", total(res.Greedy))
	}
	if math.Abs(total(res.MaxMin)-80) > 1e-6 {
		t.Fatalf("max-min total = %v, want 80", total(res.MaxMin))
	}
	pf := total(res.PropFair)
	if pf < 83 || pf > 86 {
		t.Fatalf("prop-fair total = %v, want ~84.3", pf)
	}
}

// TestPaperTopology verifies experiment E1: the built network matches
// Fig. 1a/1b.
func TestPaperTopology(t *testing.T) {
	nw := PaperNetwork()
	if nw.NumPaths() != 3 {
		t.Fatalf("paths = %d", nw.NumPaths())
	}
	wants := []string{
		"s -> v1 -> v2 -> v3 -> d",
		"s -> v1 -> v3 -> v4 -> d",
		"s -> v2 -> v3 -> v4 -> d",
	}
	for i, w := range wants {
		if got := nw.PathDescription(i + 1); got != w {
			t.Fatalf("path %d = %q, want %q", i+1, got, w)
		}
	}
}

// TestFig2aCubicShape verifies experiment E3's qualitative shape: the
// default path ramps first, the allocation then shakes down towards the
// LP vertex, and the total converges into the optimum band.
func TestFig2aCubicShape(t *testing.T) {
	res, err := RunPaper(Options{CC: "cubic", Seed: 1, Duration: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Path 2 (default) dominates the first bins.
	p1, p2 := res.Paths[0], res.Paths[1]
	if !(p2.Mbps[0] > p1.Mbps[0]) {
		t.Fatalf("first bin: P2=%v should lead P1=%v", p2.Mbps[0], p1.Mbps[0])
	}
	// Late allocation approaches the LP vertex: x2 smallest, x3 largest.
	m := res.Summary.PathMeans
	if !(m[2] > m[0] && m[0] > m[1]) {
		t.Fatalf("late allocation %v does not order x3 > x1 > x2", m)
	}
	// The total exceeds every single-path bottleneck and the greedy trap.
	if res.Summary.TotalMean < 70 {
		t.Fatalf("CUBIC total %v too low", res.Summary.TotalMean)
	}
	if !res.Summary.Converged {
		t.Fatal("CUBIC seed 1 should converge within 4s")
	}
}

// TestCubicAlwaysReachesOptimum is the §3 headline for CUBIC: on a 12 s
// horizon every seed reaches the optimum band.
func TestCubicAlwaysReachesOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	conv := 0
	for seed := int64(1); seed <= 8; seed++ {
		res, err := RunPaper(Options{CC: "cubic", Seed: seed, Duration: 12 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Converged {
			conv++
		}
	}
	if conv < 7 {
		t.Fatalf("CUBIC converged for %d/8 seeds, want >= 7", conv)
	}
}

// TestLIANeverReachesOptimum is the §3 headline for LIA: stable but stuck
// below the optimum at the paper's horizon.
func TestLIANeverReachesOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(1); seed <= 8; seed++ {
		res, err := RunPaper(Options{CC: "lia", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Converged {
			t.Fatalf("LIA converged at seed %d — paper says it never does", seed)
		}
		if res.Summary.Gap < 0.10 {
			t.Fatalf("LIA gap %.1f%% suspiciously small at seed %d", res.Summary.Gap*100, seed)
		}
	}
}

// TestOLIASlowConvergence is the §3 headline for OLIA: not converged at
// the 4 s horizon, but reaching the band in a fraction of long runs, and
// never quickly.
func TestOLIASlowConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon sweep")
	}
	for seed := int64(1); seed <= 4; seed++ {
		res, err := RunPaper(Options{CC: "olia", Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Converged {
			t.Fatalf("OLIA converged within 4s at seed %d — should be slow", seed)
		}
	}
	conv := 0
	for seed := int64(1); seed <= 6; seed++ {
		res, err := RunPaper(Options{CC: "olia", Seed: seed, Duration: 25 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Converged {
			conv++
			if res.Summary.ConvergedAt < 5*time.Second {
				t.Fatalf("OLIA converged at %v — implausibly fast", res.Summary.ConvergedAt)
			}
		}
	}
	if conv == 0 {
		t.Fatal("OLIA never converged on the long horizon (paper: 'in many measurements')")
	}
}

// TestCCOrderingAtPaperHorizon: CUBIC beats the coupled algorithms at 4 s
// (seed-averaged).
func TestCCOrderingAtPaperHorizon(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	mean := func(cc string) float64 {
		var sum float64
		for seed := int64(1); seed <= 5; seed++ {
			res, err := RunPaper(Options{CC: cc, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Summary.TotalMean
		}
		return sum / 5
	}
	cubic, lia, olia := mean("cubic"), mean("lia"), mean("olia")
	if !(cubic > lia && cubic > olia) {
		t.Fatalf("ordering violated: cubic=%.1f lia=%.1f olia=%.1f", cubic, lia, olia)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	run := func() *Result {
		res, err := RunPaper(Options{CC: "cubic", Seed: 42, Duration: 2 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Packets != b.Packets || a.DeliveredBytes != b.DeliveredBytes {
		t.Fatalf("same seed diverged: %d/%d vs %d/%d packets/bytes",
			a.Packets, a.DeliveredBytes, b.Packets, b.DeliveredBytes)
	}
	for i := range a.Total.Mbps {
		if a.Total.Mbps[i] != b.Total.Mbps[i] {
			t.Fatalf("series diverge at bin %d", i)
		}
	}
	c, err := RunPaper(Options{CC: "cubic", Seed: 43, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if c.DeliveredBytes == a.DeliveredBytes {
		t.Fatal("different seeds produced identical byte counts (no run-to-run noise?)")
	}
}

func TestFixedTransferCompletes(t *testing.T) {
	res, err := RunPaper(Options{CC: "lia", TransferBytes: 4 << 20, Duration: 6 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TransferComplete {
		t.Fatalf("4 MB transfer incomplete: delivered %d", res.DeliveredBytes)
	}
	if res.DeliveredBytes != 4<<20 {
		t.Fatalf("delivered %d, want %d", res.DeliveredBytes, 4<<20)
	}
}

func TestCustomNetworkValidation(t *testing.T) {
	nw := NewNetwork()
	nw.AddLink("a", "b", 10, time.Millisecond)
	if _, err := nw.AddPath("a", "zzz"); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := nw.AddPath("a"); err == nil {
		t.Fatal("one-node path accepted")
	}
	if _, err := Run(nw, Options{}); err == nil {
		t.Fatal("network without endpoints/paths ran")
	}
	if err := nw.Endpoints("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddPath("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nw, Options{SubflowPaths: []int{7}}); err == nil {
		t.Fatal("bad SubflowPaths accepted")
	}
	if err := nw.SetLoss("a", "b", 1.5); err == nil {
		t.Fatal("loss > 1 accepted")
	}
	if err := nw.SetQueue("a", "zzz", 1000); err == nil {
		t.Fatal("SetQueue on unknown node accepted")
	}
	if err := nw.NamePath(9, "x"); err == nil {
		t.Fatal("NamePath out of range accepted")
	}
}

func TestCustomTwoPathNetwork(t *testing.T) {
	// A classic wifi/cellular disjoint-path setup: MPTCP should aggregate.
	nw := NewNetwork()
	nw.AddLink("phone", "wifi", 30, 5*time.Millisecond)
	nw.AddLink("wifi", "server", 100, 10*time.Millisecond)
	nw.AddLink("phone", "lte", 20, 15*time.Millisecond)
	nw.AddLink("lte", "server", 100, 20*time.Millisecond)
	if err := nw.Endpoints("phone", "server"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddPath("phone", "wifi", "server"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddPath("phone", "lte", "server"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(nw, Options{CC: "lia", Duration: 5 * time.Second, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Optimum.Total-50) > 1e-6 {
		t.Fatalf("disjoint LP total = %v, want 50", res.Optimum.Total)
	}
	// Aggregation: beat the best single path by a clear margin.
	if res.Summary.TotalMean < 35 {
		t.Fatalf("aggregate = %.1f Mbps, want > 35 (wifi alone is 30)", res.Summary.TotalMean)
	}
}

func TestLossyPathDegrades(t *testing.T) {
	nw := NewNetwork()
	nw.AddLink("a", "m", 20, 5*time.Millisecond)
	nw.AddLink("m", "b", 20, 5*time.Millisecond)
	if err := nw.Endpoints("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddPath("a", "m", "b"); err != nil {
		t.Fatal(err)
	}
	clean, err := Run(nw, Options{CC: "reno", Duration: 3 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLoss("a", "m", 0.02); err != nil {
		t.Fatal(err)
	}
	lossy, err := Run(nw, Options{CC: "reno", Duration: 3 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Summary.TotalMean >= clean.Summary.TotalMean {
		t.Fatalf("2%% loss did not reduce throughput: %.1f vs %.1f",
			lossy.Summary.TotalMean, clean.Summary.TotalMean)
	}
}

func TestOutputsRender(t *testing.T) {
	res, err := RunPaper(Options{CC: "cubic", Duration: time.Second, RetainPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	head := strings.SplitN(csv.String(), "\n", 2)[0]
	if head != "t,Path 1,Path 2,Path 3,Total" {
		t.Fatalf("CSV header = %q", head)
	}
	var chart bytes.Buffer
	if err := res.Chart(&chart, "title"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart.String(), "T=Total") {
		t.Fatal("chart missing legend")
	}
	var rep bytes.Buffer
	if err := res.Report(&rep); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"optimum:", "measured:", "subflow"} {
		if !strings.Contains(rep.String(), frag) {
			t.Fatalf("report missing %q:\n%s", frag, rep.String())
		}
	}
	var pcap bytes.Buffer
	if err := res.WritePCAP(&pcap); err != nil {
		t.Fatal(err)
	}
	if pcap.Len() < 24 {
		t.Fatal("pcap too small")
	}
	// Without retention, WritePCAP must refuse.
	res2, err := RunPaper(Options{Duration: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.WritePCAP(&pcap); err == nil {
		t.Fatal("WritePCAP without retention succeeded")
	}
}

func TestSchedulerOptions(t *testing.T) {
	for _, sched := range []string{"minrtt", "roundrobin", "redundant"} {
		res, err := RunPaper(Options{CC: "cubic", Scheduler: sched, Duration: time.Second})
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if res.Summary.TotalMean <= 0 {
			t.Fatalf("%s: no throughput", sched)
		}
		if sched == "redundant" && res.DuplicateBytes == 0 {
			t.Fatal("redundant scheduler produced no duplicates")
		}
	}
	if _, err := RunPaper(Options{Scheduler: "warp"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	if _, err := RunPaper(Options{CC: "tahoe9"}); err == nil {
		t.Fatal("unknown CC accepted")
	}
}

func TestDisableSACKAblation(t *testing.T) {
	// Without SACK, recovery degrades: more RTOs / lower throughput on the
	// same seed and horizon.
	sack, err := RunPaper(Options{CC: "cubic", Seed: 2, Duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	nosack, err := RunPaper(Options{CC: "cubic", Seed: 2, Duration: 3 * time.Second, DisableSACK: true})
	if err != nil {
		t.Fatal(err)
	}
	if nosack.Summary.TotalMean >= sack.Summary.TotalMean {
		t.Fatalf("no-SACK (%.1f) should underperform SACK (%.1f)",
			nosack.Summary.TotalMean, sack.Summary.TotalMean)
	}
}

// TestCrossTrafficFairness checks the RFC 6356 ordering with a competing
// TCP flow on the shared bottleneck: coupled LIA takes less than
// uncoupled CUBIC relative to the cross flow.
func TestCrossTrafficFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("10s runs")
	}
	run := func(cc string) (mptcpRate, tcpRate float64) {
		res, err := RunPaper(Options{
			CC:           cc,
			Seed:         1,
			Duration:     10 * time.Second,
			SubflowPaths: []int{2, 1},
			CrossTCP:     []int{2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Cross) != 1 {
			t.Fatalf("cross series = %d, want 1", len(res.Cross))
		}
		m := res.Paths[0].Mean(2*time.Second, 10*time.Second) +
			res.Paths[1].Mean(2*time.Second, 10*time.Second)
		return m, res.Cross[0].Mean(2*time.Second, 10*time.Second)
	}
	liaM, liaT := run("lia")
	cubM, cubT := run("cubic")
	if liaT <= 0 || cubT <= 0 {
		t.Fatal("cross flow starved entirely")
	}
	liaRatio, cubRatio := liaM/liaT, cubM/cubT
	if liaRatio >= cubRatio {
		t.Fatalf("coupled LIA ratio %.2f should be below uncoupled CUBIC %.2f", liaRatio, cubRatio)
	}
	if liaRatio > 1.3 {
		t.Fatalf("LIA takes %.2fx a single TCP — violates 'do no harm'", liaRatio)
	}
}

func TestCrossTrafficValidation(t *testing.T) {
	if _, err := RunPaper(Options{CrossTCP: []int{9}, Duration: time.Second}); err == nil {
		t.Fatal("CrossTCP with bad path accepted")
	}
}

// TestWVegasRuns exercises the delay-based coupled algorithm end to end.
func TestWVegasRuns(t *testing.T) {
	res, err := RunPaper(Options{CC: "wvegas", Seed: 2, Duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalMean < 40 {
		t.Fatalf("wvegas total = %.1f, want > 40", res.Summary.TotalMean)
	}
	// Delay-based control should be (near) lossless on its own paths once
	// settled — far fewer retransmissions than loss-based CUBIC.
	cubic, err := RunPaper(Options{CC: "cubic", Seed: 2, Duration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var wvRtx, cuRtx uint64
	for _, sf := range res.Subflows {
		wvRtx += sf.Retransmits
	}
	for _, sf := range cubic.Subflows {
		cuRtx += sf.Retransmits
	}
	if wvRtx >= cuRtx {
		t.Fatalf("wvegas rtx=%d not below cubic rtx=%d", wvRtx, cuRtx)
	}
}

// TestQueueScaleRestoresNetwork: a Network is reusable across runs; a
// QueueScale run must not clobber explicit SetQueue values.
func TestQueueScaleRestoresNetwork(t *testing.T) {
	nw := NewNetwork()
	nw.AddLink("a", "m", 20, 5*time.Millisecond)
	nw.AddLink("m", "b", 20, 5*time.Millisecond)
	if err := nw.Endpoints("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddPath("a", "m", "b"); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetQueue("a", "m", 64*1024); err != nil {
		t.Fatal(err)
	}
	base, err := Run(nw, Options{CC: "reno", Duration: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(nw, Options{CC: "reno", Duration: time.Second, Seed: 1, QueueScale: 0.25}); err != nil {
		t.Fatal(err)
	}
	again, err := Run(nw, Options{CC: "reno", Duration: time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.DeliveredBytes != again.DeliveredBytes {
		t.Fatalf("network state leaked across runs: %d vs %d bytes",
			base.DeliveredBytes, again.DeliveredBytes)
	}
}

func TestTimestampsOptionRuns(t *testing.T) {
	res, err := RunPaper(Options{CC: "cubic", Seed: 1, Duration: 2 * time.Second, Timestamps: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TotalMean < 50 {
		t.Fatalf("timestamps run total = %.1f, want > 50", res.Summary.TotalMean)
	}
}

// TestQueueScaleRestoresLinkQueues asserts the restoration directly: after
// a QueueScale run, every link's configured queue value — explicit or
// auto-sized (zero) — is back to what it was, so a reused Network sees no
// leftover scaling.
func TestQueueScaleRestoresLinkQueues(t *testing.T) {
	nw := NewNetwork()
	nw.AddLink("a", "m", 20, 5*time.Millisecond)
	nw.AddLink("m", "b", 20, 5*time.Millisecond)
	if err := nw.Endpoints("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddPath("a", "m", "b"); err != nil {
		t.Fatal(err)
	}
	// One explicit queue, the rest auto-sized (Queue == 0).
	if err := nw.SetQueue("a", "m", 64*1024); err != nil {
		t.Fatal(err)
	}
	before := make([]int64, nw.graph.NumLinks())
	for i, l := range nw.graph.Links() {
		before[i] = int64(l.Queue)
	}
	for _, qs := range []float64{0.25, 4} {
		if _, err := Run(nw, Options{CC: "reno", Duration: 500 * time.Millisecond, Seed: 1, QueueScale: qs}); err != nil {
			t.Fatal(err)
		}
		for i, l := range nw.graph.Links() {
			if int64(l.Queue) != before[i] {
				t.Fatalf("QueueScale %v leaked: link %d queue %d, want %d", qs, i, l.Queue, before[i])
			}
		}
	}
	// The auto-sized links are still auto (0), not frozen at a scaled size.
	autoSeen := false
	for i, l := range nw.graph.Links() {
		if before[i] == 0 {
			autoSeen = true
			if l.Queue != 0 {
				t.Fatalf("auto-sized link %d pinned to %d", i, l.Queue)
			}
		}
	}
	if !autoSeen {
		t.Fatal("test lost its auto-sized links")
	}
}
