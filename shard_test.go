package mptcpsim

import (
	"bytes"
	"strings"
	"testing"
)

// renderAll renders every serialisation of a sweep result — the formats
// the shard/merge contract promises are byte-identical to an unsharded
// run.
func renderAll(t *testing.T, res *SweepResult) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, 4)
	for name, fn := range map[string]func(w *bytes.Buffer) error{
		"json":   func(w *bytes.Buffer) error { return res.WriteJSON(w) },
		"csv":    func(w *bytes.Buffer) error { return res.WriteCSV(w) },
		"groups": func(w *bytes.Buffer) error { return res.WriteGroupsCSV(w) },
		"report": func(w *bytes.Buffer) error { return res.Report(w) },
	} {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

// shardGrids are the property-test grids: a plain multi-seed grid, a grid
// exercising every label axis (perturbations, events, schedulers), and a
// grid whose runs all fail — failed cells must survive sharding too.
func shardGrids(short bool) map[string]*Grid {
	grids := map[string]*Grid{
		"static": {
			CCs:        []string{"cubic", "olia"},
			Orders:     [][]int{{2, 1, 3}},
			Seeds:      []int64{1, 2, 3},
			DurationMs: 200,
		},
		"errors": {
			CCs:        []string{"cubic", "olia"},
			DurationMs: 100,
			Base:       Options{CrossTCP: []int{9}},
		},
	}
	if !short {
		grids["axes"] = &Grid{
			CCs:        []string{"cubic", "lia"},
			Schedulers: []string{"minrtt", "roundrobin"},
			DurationMs: 300,
			Perturbations: []Perturbation{
				{Name: "base"},
				{Name: "lossy", Loss: 0.005},
			},
			Events: []EventSet{
				{Name: "static"},
				{Name: "outage", Events: []ScenarioEvent{
					{AtMs: 100, Type: EventLinkDown, A: "s", B: "v1"},
					{AtMs: 200, Type: EventLinkUp, A: "s", B: "v1"},
				}},
			},
		}
	}
	return grids
}

// TestShardMergeByteIdentical is the distributed-determinism contract:
// for every grid and every shard count, running the N shards
// independently (artifacts round-tripped through their JSON disk format,
// merged in arbitrary order) reproduces the unsharded SweepResult
// byte-identically in all four output formats.
func TestShardMergeByteIdentical(t *testing.T) {
	ns := []int{1, 2, 3, 5, 7}
	if testing.Short() {
		ns = []int{3}
	}
	for name, grid := range shardGrids(testing.Short()) {
		t.Run(name, func(t *testing.T) {
			full, err := (&Sweep{Workers: 4}).Run(grid)
			if err != nil {
				t.Fatal(err)
			}
			want := renderAll(t, full)
			for _, n := range ns {
				shards := make([]*ShardResult, 0, n)
				total := 0
				// Reverse K order: MergeShards must not care how the
				// artifacts are listed.
				for k := n - 1; k >= 0; k-- {
					sr, err := (&Sweep{Workers: 2}).RunShard(grid, Shard{K: k, N: n})
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := sr.WriteJSON(&buf); err != nil {
						t.Fatal(err)
					}
					loaded, err := LoadShard(&buf)
					if err != nil {
						t.Fatal(err)
					}
					shards = append(shards, loaded)
					total += len(loaded.Runs)
				}
				if total != len(full.Runs) {
					t.Fatalf("n=%d: shards hold %d runs, grid has %d", n, total, len(full.Runs))
				}
				merged, err := MergeShards(shards...)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				got := renderAll(t, merged)
				for format, wantBytes := range want {
					if !bytes.Equal(got[format], wantBytes) {
						t.Errorf("n=%d: merged %s differs from unsharded output:\n--- merged ---\n%s\n--- unsharded ---\n%s",
							n, format, got[format], wantBytes)
					}
				}
			}
		})
	}
}

// TestRunShardDeterminism: a shard's artifact is bit-identical across
// worker counts and repeated executions, like the unsharded sweep.
func TestRunShardDeterminism(t *testing.T) {
	grid := &Grid{
		CCs:        []string{"cubic", "olia"},
		Seeds:      []int64{1, 2, 3},
		DurationMs: 200,
	}
	var outputs []string
	for _, workers := range []int{1, 8, 8} {
		sr, err := (&Sweep{Workers: workers}).RunShard(grid, Shard{K: 1, N: 2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("shard artifact differs between 1 and 8 workers:\n--- w1 ---\n%s\n--- w8 ---\n%s",
			outputs[0], outputs[1])
	}
	if outputs[1] != outputs[2] {
		t.Fatal("shard artifact differs between two identical executions")
	}
}

func TestShardPreservesGlobalIndices(t *testing.T) {
	grid := &Grid{CCs: []string{"cubic", "olia", "lia"}, DurationMs: 100}
	sr, err := (&Sweep{Workers: 2}).RunShard(grid, Shard{K: 1, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sr.Total != 3 || len(sr.Runs) != 1 {
		t.Fatalf("shard 1/2 of 3 runs holds %d of %d", len(sr.Runs), sr.Total)
	}
	if sr.Runs[0].Index != 1 {
		t.Fatalf("shard run carries index %d, want the global expansion index 1", sr.Runs[0].Index)
	}
}

func TestRunShardKeepHashes(t *testing.T) {
	grid := &Grid{CCs: []string{"cubic", "olia"}, DurationMs: 100}
	a, err := (&Sweep{Workers: 2, Keep: true}).RunShard(grid, Shard{K: 0, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Hashes) != len(a.Runs) {
		t.Fatalf("%d hashes for %d runs", len(a.Hashes), len(a.Runs))
	}
	for i, h := range a.Hashes {
		if h == "" {
			t.Fatalf("run %d (no error) has empty hash", i)
		}
	}
	b, err := (&Sweep{Workers: 1, Keep: true}).RunShard(grid, Shard{K: 0, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Hashes {
		if a.Hashes[i] != b.Hashes[i] {
			t.Fatalf("run %d hash differs across executions: %s vs %s", i, a.Hashes[i], b.Hashes[i])
		}
	}
	// Without Keep the artifact stays lean.
	c, err := (&Sweep{Workers: 1}).RunShard(grid, Shard{K: 0, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Hashes) != 0 {
		t.Fatalf("hashes populated without Keep: %v", c.Hashes)
	}
}

func TestParseShard(t *testing.T) {
	for spec, want := range map[string]Shard{
		"0/4": {K: 0, N: 4},
		"3/4": {K: 3, N: 4},
		"0/1": {K: 0, N: 1},
	} {
		got, err := ParseShard(spec)
		if err != nil {
			t.Errorf("ParseShard(%q): %v", spec, err)
		} else if got != want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", spec, got, want)
		}
	}
	for _, spec := range []string{"", "3", "1/2/3", "a/4", "1/b", "4/4", "-1/4", "0/0", "0/-2"} {
		if _, err := ParseShard(spec); err == nil {
			t.Errorf("ParseShard(%q) accepted", spec)
		}
	}
}

func TestRunShardRejectsInvalidShard(t *testing.T) {
	grid := &Grid{DurationMs: 100}
	for _, shard := range []Shard{{K: 0, N: 0}, {K: 2, N: 2}, {K: -1, N: 2}} {
		if _, err := (&Sweep{}).RunShard(grid, shard); err == nil {
			t.Errorf("RunShard accepted shard %+v", shard)
		}
	}
}

func TestGridDigestIdentifiesGrid(t *testing.T) {
	a := &Grid{CCs: []string{"cubic"}, Seeds: []int64{1, 2}, DurationMs: 100}
	d1, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digest not stable: %s vs %s", d1, d2)
	}
	b := &Grid{CCs: []string{"cubic"}, Seeds: []int64{1, 3}, DurationMs: 100}
	d3, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d1 {
		t.Fatal("different grids share a digest")
	}
}

// fabShard builds a hand-made artifact for the merge error-path tests —
// MergeShards validates structure, so no runs need executing.
func fabShard(digest string, k, n, total int, indices ...int) *ShardResult {
	sr := &ShardResult{GridDigest: digest, K: k, N: n, Total: total}
	for _, i := range indices {
		sr.Runs = append(sr.Runs, RunSummary{Index: i})
	}
	return sr
}

func TestMergeShardsDiagnostics(t *testing.T) {
	cases := map[string]struct {
		shards []*ShardResult
		want   string
	}{
		"no shards": {nil, "no shard artifacts"},
		"digest mismatch": {
			[]*ShardResult{fabShard("aaa", 0, 2, 4, 0, 2), fabShard("bbb", 1, 2, 4, 1, 3)},
			"grid digest mismatch",
		},
		"shard count mismatch": {
			[]*ShardResult{fabShard("aaa", 0, 2, 4, 0, 2), fabShard("aaa", 1, 3, 4, 1)},
			"shape mismatch",
		},
		"total mismatch": {
			[]*ShardResult{fabShard("aaa", 0, 2, 4, 0, 2), fabShard("aaa", 1, 2, 6, 1, 3, 5)},
			"shape mismatch",
		},
		"invalid shard coordinates": {
			[]*ShardResult{fabShard("aaa", 2, 2, 4, 0)},
			"out of range",
		},
		"missing shard": {
			[]*ShardResult{fabShard("aaa", 0, 2, 4, 0, 2)},
			"shard(s) 1 of 2",
		},
		"incomplete shard": {
			[]*ShardResult{fabShard("aaa", 0, 2, 4, 0, 2), fabShard("aaa", 1, 2, 4, 1)},
			"missing",
		},
		"duplicate shard": {
			[]*ShardResult{fabShard("aaa", 0, 2, 4, 0, 2), fabShard("aaa", 0, 2, 4, 0, 2), fabShard("aaa", 1, 2, 4, 1, 3)},
			"duplicate run index 0",
		},
		"foreign index": {
			[]*ShardResult{fabShard("aaa", 0, 2, 4, 0, 1), fabShard("aaa", 1, 2, 4, 1, 3)},
			"does not belong to shard 0/2",
		},
		"index out of range": {
			[]*ShardResult{fabShard("aaa", 0, 2, 4, 0, 99), fabShard("aaa", 1, 2, 4, 1, 3)},
			"outside 0..3",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := MergeShards(tc.shards...)
			if err == nil {
				t.Fatal("merge accepted a broken shard set")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMergeRejectsMixedValidateInvariants: the sweep-level oracle flag
// changes what a run can report (violations become Errs), so shards
// swept with and without it carry different digests and must not merge.
func TestMergeRejectsMixedValidateInvariants(t *testing.T) {
	grid := &Grid{CCs: []string{"cubic", "olia"}, DurationMs: 100}
	plain, err := (&Sweep{Workers: 1}).RunShard(grid, Shard{K: 0, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := (&Sweep{Workers: 1, ValidateInvariants: true}).RunShard(grid, Shard{K: 1, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.GridDigest == checked.GridDigest {
		t.Fatal("validated and unvalidated shards share a grid digest")
	}
	if _, err := MergeShards(plain, checked); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("mixed-provenance merge not rejected: %v", err)
	}
	// Two validated shards still merge.
	other, err := (&Sweep{Workers: 2, ValidateInvariants: true}).RunShard(grid, Shard{K: 0, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeShards(checked, other); err != nil {
		t.Fatal(err)
	}
}

func TestMergeShardsRejectsShortHashes(t *testing.T) {
	a := fabShard("aaa", 0, 2, 2, 0)
	a.Hashes = []string{"h0", "h1"}
	b := fabShard("aaa", 1, 2, 2, 1)
	if _, err := MergeShards(a, b); err == nil || !strings.Contains(err.Error(), "hashes") {
		t.Fatalf("hash/run length mismatch not diagnosed: %v", err)
	}
}

func TestLoadShardRejectsUnknownFields(t *testing.T) {
	if _, err := LoadShard(strings.NewReader(`{"grid_digest":"a","k":0,"n":1,"total":0,"runs":[],"surprise":1}`)); err == nil {
		t.Fatal("unknown artifact field accepted")
	}
}
