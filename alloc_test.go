package mptcpsim

import (
	"runtime"
	"testing"
	"time"
)

// runAllocBudget is the whole-run allocation budget for the reference
// static scenario. A warm run costs under ~1000 objects (setup, baselines
// from cache, result series); the budget leaves ~2x headroom for noise. A
// 1 s run moves tens of thousands of packets, so any per-packet or
// per-event allocation sneaking back into the transit path blows the
// budget by an order of magnitude, not by percent.
const runAllocBudget = 2000

// TestRunSteadyStateAllocs gates the end-to-end allocation bill: packets
// and segments come from the per-run arena, events from the loop's node
// pool, so a full reference run allocates a fixed small amount regardless
// of how much traffic it moves.
func TestRunSteadyStateAllocs(t *testing.T) {
	opts := Options{CC: "cubic", Duration: time.Second, Seed: 1}
	// Warm-up: populate the process-wide baseline cache and libc/runtime
	// lazy paths so the measured runs see the steady state CI measures.
	if _, err := RunPaper(opts); err != nil {
		t.Fatal(err)
	}
	var worst uint64
	for i := 0; i < 3; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := RunPaper(opts); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		if d := after.Mallocs - before.Mallocs; d > worst {
			worst = d
		}
	}
	if worst > runAllocBudget {
		t.Fatalf("reference run allocates %d objects, budget %d", worst, runAllocBudget)
	}
}
