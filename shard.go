package mptcpsim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Shard selects a deterministic 1/N slice of an expanded grid: the runs
// whose expansion index i satisfies i % N == K. Because expansion order is
// deterministic and documented (see Grid), the same grid spec sharded on
// different machines partitions into the same N disjoint run sets, and
// MergeShards can reassemble them into the exact unsharded SweepResult.
type Shard struct {
	// K is the shard coordinate, 0 <= K < N.
	K int `json:"k"`
	// N is the shard count; 1 means the whole grid.
	N int `json:"n"`
}

// Validate reports whether the shard coordinates are usable.
func (s Shard) Validate() error {
	if s.N < 1 {
		return fmt.Errorf("mptcpsim: shard count %d (want >= 1)", s.N)
	}
	if s.K < 0 || s.K >= s.N {
		return fmt.Errorf("mptcpsim: shard index %d out of range 0..%d", s.K, s.N-1)
	}
	return nil
}

// String renders the shard in the CLI's k/n form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.K, s.N) }

// ParseShard parses the CLI form "k/n" (e.g. "0/4") into a Shard.
func ParseShard(spec string) (Shard, error) {
	k, n, ok := strings.Cut(spec, "/")
	if !ok {
		return Shard{}, fmt.Errorf("mptcpsim: shard %q is not of the form k/n", spec)
	}
	ki, err := strconv.Atoi(k)
	if err != nil {
		return Shard{}, fmt.Errorf("mptcpsim: shard %q: bad index: %v", spec, err)
	}
	ni, err := strconv.Atoi(n)
	if err != nil {
		return Shard{}, fmt.Errorf("mptcpsim: shard %q: bad count: %v", spec, err)
	}
	s := Shard{K: ki, N: ni}
	if err := s.Validate(); err != nil {
		return Shard{}, err
	}
	return s, nil
}

// ShardResult is the serialisable artifact of one shard of a sweep: the
// grid's digest and total size, the shard coordinates, and the shard's run
// summaries labelled with their global expansion indices. N such artifacts
// (one per K) are reassembled by MergeShards into a SweepResult identical
// to the unsharded Sweep.Run output.
type ShardResult struct {
	// GridDigest is the canonical SHA-256 over the expanded grid (every
	// run's index, labels, effective options — a sweep-level
	// ValidateInvariants folds in here — and topology). Shards merge only
	// when their digests agree: the guard against mixing artifacts from
	// different grid specs, different run settings, or library versions
	// that expand differently.
	GridDigest string `json:"grid_digest"`
	// K and N are the shard coordinates (runs with Index % N == K).
	K int `json:"k"`
	N int `json:"n"`
	// Total is the run count of the whole grid, not just this shard.
	Total int `json:"total"`
	// Runs are the shard's summaries, in expansion order, with global
	// indices.
	Runs []RunSummary `json:"runs"`
	// Hashes are the canonical Result hashes of the shard's runs (indexed
	// like Runs; empty string for a failed run). Populated only when the
	// sweep ran with Keep — a cross-machine replay check that is stronger
	// than the summaries alone.
	Hashes []string `json:"hashes,omitempty"`
}

// Errs counts failed runs in the shard.
func (sr *ShardResult) Errs() int {
	n := 0
	for _, run := range sr.Runs {
		if run.Err != "" {
			n++
		}
	}
	return n
}

// WriteJSON emits the shard artifact as indented JSON, the on-disk format
// LoadShard reads back.
func (sr *ShardResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sr)
}

// LoadShard parses a shard artifact written by ShardResult.WriteJSON.
// Unknown fields are rejected: an artifact from a newer schema must fail
// loudly rather than merge with fields silently dropped.
func LoadShard(r io.Reader) (*ShardResult, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var sr ShardResult
	if err := dec.Decode(&sr); err != nil {
		return nil, fmt.Errorf("mptcpsim: shard artifact: %w", err)
	}
	return &sr, nil
}

// RunShard expands the grid, keeps only the runs of the given shard, and
// executes them — the distributed form of Run. Every process sharding the
// same grid computes the same digest and disjoint index sets, so the N
// artifacts always merge back into the unsharded result. Like Run,
// per-run failures land in RunSummary.Err; only structural problems
// return an error.
func (s *Sweep) RunShard(g *Grid, shard Shard) (*ShardResult, error) {
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	specs, digest, err := s.expandFolded(g)
	if err != nil {
		return nil, err
	}
	var mine []RunSpec
	for _, sp := range specs {
		if sp.Index%shard.N == shard.K {
			mine = append(mine, sp)
		}
	}
	// No telemetry rollup sink here: shard artifacts keep their
	// pre-telemetry byte layout so mixed-version fleets still merge.
	mem := &MemorySink{Keep: s.Keep}
	if err := s.execute(mine, mem); err != nil {
		return nil, err
	}
	mem.sort()
	sr := &ShardResult{
		GridDigest: digest,
		K:          shard.K,
		N:          shard.N,
		Total:      len(specs),
		Runs:       mem.runs,
	}
	if s.Keep {
		sr.Hashes = make([]string, len(mem.results))
		for i, r := range mem.results {
			if r != nil {
				sr.Hashes[i] = r.Hash()
			}
		}
	}
	return sr, nil
}

// expandFolded expands the grid with the sweep-level oracle flag folded
// into every spec before digesting: a run whose invariant violation
// becomes its Err is not the same run as an unvalidated one, so shards
// swept with different ValidateInvariants settings must refuse to merge
// rather than mix provenance under one digest.
func (s *Sweep) expandFolded(g *Grid) ([]RunSpec, string, error) {
	specs, err := g.Expand()
	if err != nil {
		return nil, "", err
	}
	if s.ValidateInvariants {
		for i := range specs {
			specs[i].Options.ValidateInvariants = true
		}
	}
	return specs, specsDigest(specs), nil
}

// MergeShards reassembles shard artifacts into the SweepResult of the
// unsharded sweep. It accepts the shards in any order but insists on a
// complete, consistent set: one grid digest, one (N, Total) shape, and
// every run index 0..Total-1 present exactly once, each inside the shard
// that owns it. Groups and the overall Gap are recomputed from the full
// run list (medians and standard deviations do not compose from per-shard
// aggregates), so the merged value — and every serialisation of it — is
// byte-identical to Sweep.Run on the same grid.
func MergeShards(shards ...*ShardResult) (*SweepResult, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("mptcpsim: merge: no shard artifacts")
	}
	ref := shards[0]
	if ref.N < 1 {
		return nil, fmt.Errorf("mptcpsim: merge: shard %d/%d has invalid shard count", ref.K, ref.N)
	}
	if ref.Total < 0 {
		return nil, fmt.Errorf("mptcpsim: merge: shard %d/%d reports negative total %d", ref.K, ref.N, ref.Total)
	}
	runs := make([]RunSummary, ref.Total)
	seen := make([]bool, ref.Total)
	for i, sr := range shards {
		if sr.GridDigest != ref.GridDigest {
			return nil, fmt.Errorf("mptcpsim: merge: grid digest mismatch: shard %d/%d has %s, shard %d/%d has %s (artifacts from different grids?)",
				sr.K, sr.N, sr.GridDigest, ref.K, ref.N, ref.GridDigest)
		}
		if sr.N != ref.N || sr.Total != ref.Total {
			return nil, fmt.Errorf("mptcpsim: merge: shard shape mismatch: artifact %d is shard %d/%d of %d runs, artifact 0 is shard %d/%d of %d",
				i, sr.K, sr.N, sr.Total, ref.K, ref.N, ref.Total)
		}
		if err := (Shard{K: sr.K, N: sr.N}).Validate(); err != nil {
			return nil, fmt.Errorf("mptcpsim: merge: %w", err)
		}
		if len(sr.Hashes) > 0 && len(sr.Hashes) != len(sr.Runs) {
			return nil, fmt.Errorf("mptcpsim: merge: shard %d/%d has %d hashes for %d runs",
				sr.K, sr.N, len(sr.Hashes), len(sr.Runs))
		}
		for _, run := range sr.Runs {
			if run.Index < 0 || run.Index >= ref.Total {
				return nil, fmt.Errorf("mptcpsim: merge: shard %d/%d contains run index %d outside 0..%d",
					sr.K, sr.N, run.Index, ref.Total-1)
			}
			if run.Index%sr.N != sr.K {
				return nil, fmt.Errorf("mptcpsim: merge: run index %d does not belong to shard %d/%d (index %% %d = %d)",
					run.Index, sr.K, sr.N, sr.N, run.Index%sr.N)
			}
			if seen[run.Index] {
				return nil, fmt.Errorf("mptcpsim: merge: duplicate run index %d (shard %d/%d supplied twice?)",
					run.Index, sr.K, sr.N)
			}
			seen[run.Index] = true
			runs[run.Index] = run
		}
	}
	var missing []int
	for i, ok := range seen {
		if !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) > 0 {
		ks := missingShards(missing, ref.N)
		return nil, fmt.Errorf("mptcpsim: merge: %d of %d run indices missing (first: %d); incomplete or absent shard(s) %s of %d",
			len(missing), ref.Total, missing[0], ks, ref.N)
	}
	res := &SweepResult{Runs: runs}
	res.aggregate()
	return res, nil
}

// missingShards names the shard coordinates that own the missing indices,
// e.g. "1,3" — the actionable half of an incomplete-merge diagnostic.
func missingShards(missing []int, n int) string {
	ks := make(map[int]bool)
	for _, i := range missing {
		ks[i%n] = true
	}
	order := make([]int, 0, len(ks))
	for k := range ks {
		order = append(order, k)
	}
	sort.Ints(order)
	parts := make([]string, len(order))
	for i, k := range order {
		parts[i] = strconv.Itoa(k)
	}
	return strings.Join(parts, ",")
}

// Digest expands the grid and returns its canonical digest — the value
// every shard artifact of this grid carries as GridDigest.
func (g *Grid) Digest() (string, error) {
	specs, err := g.Expand()
	if err != nil {
		return "", err
	}
	return specsDigest(specs), nil
}

// specsDigest computes a canonical SHA-256 over an expanded run list:
// every run's index, cell labels, complete options and resolved topology
// (events included). Two grid specs digest equally exactly when they
// expand to the same runs in the same order — the identity MergeShards
// checks before trusting that shard index sets partition one grid.
func specsDigest(specs []RunSpec) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, sp := range specs {
		rec := struct {
			Index        int           `json:"index"`
			Scenario     string        `json:"scenario"`
			Perturbation string        `json:"perturbation"`
			Events       string        `json:"events"`
			Options      Options       `json:"options"`
			Topology     *ScenarioFile `json:"topology"`
		}{sp.Index, sp.Scenario, sp.Perturbation, sp.Events, sp.Options, sp.scenario}
		// Encoding plain option/topology data to a hash cannot fail.
		if err := enc.Encode(rec); err != nil {
			panic(fmt.Sprintf("mptcpsim: spec digest: %v", err))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
