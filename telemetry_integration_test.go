package mptcpsim

import (
	"bytes"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestTelemetryHashNeutral is the library half of the issue's headline
// property: a run with telemetry enabled is bit-identical to one without
// (canonical hash and all), while producing a populated snapshot and a
// dumpable flight-recorder tail.
func TestTelemetryHashNeutral(t *testing.T) {
	opts := Options{Duration: 200 * time.Millisecond, Seed: 7}
	plain, err := RunPaper(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Telemetry = true
	tele, err := RunPaper(opts)
	if err != nil {
		t.Fatal(err)
	}
	if ph, th := plain.Hash(), tele.Hash(); ph != th {
		t.Fatalf("telemetry changed the run: hash %.12s != %.12s", th, ph)
	}
	if plain.Telemetry != nil || plain.FlightEvents() != 0 {
		t.Fatal("telemetry-off run carries a snapshot or flight events")
	}
	if err := plain.WriteFlightRecorder(io.Discard); err == nil {
		t.Fatal("telemetry-off run dumped a flight recorder")
	}

	snap := tele.Telemetry
	if snap == nil {
		t.Fatal("telemetry-on run has no snapshot")
	}
	if snap.Sim.EventsFired == 0 || snap.Sim.EventsFired != tele.LoopEvents {
		t.Fatalf("sim counters: fired=%d, want the run's LoopEvents %d",
			snap.Sim.EventsFired, tele.LoopEvents)
	}
	if snap.Sim.EventsScheduled < snap.Sim.EventsFired {
		t.Fatalf("scheduled %d < fired %d", snap.Sim.EventsScheduled, snap.Sim.EventsFired)
	}
	if snap.Sim.HeapPeak == 0 || snap.Sim.InUsePeak == 0 {
		t.Fatalf("high-water marks empty: %+v", snap.Sim)
	}
	if len(snap.Links) == 0 {
		t.Fatal("no link counters")
	}
	var tx uint64
	for _, l := range snap.Links {
		if l.Name == "" {
			t.Fatalf("unnamed link counter: %+v", l)
		}
		tx += l.TxPackets
	}
	if tx == 0 {
		t.Fatal("no transmissions counted across links")
	}
	if len(snap.Subflows) != 3 {
		t.Fatalf("%d subflow counters, want 3 (paper network)", len(snap.Subflows))
	}
	var picks uint64
	for _, sf := range snap.Subflows {
		picks += sf.SchedPicks
		if sf.CwndPeakBytes <= 0 {
			t.Fatalf("subflow %d has no cwnd peak: %+v", sf.Path, sf)
		}
	}
	if picks == 0 {
		t.Fatal("no scheduler picks counted")
	}
	if snap.FlightEvents <= 0 || uint64(snap.FlightEvents) > snap.FlightTotal {
		t.Fatalf("flight accounting: retained %d of %d", snap.FlightEvents, snap.FlightTotal)
	}

	var buf bytes.Buffer
	if err := tele.WriteFlightRecorder(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != snap.FlightEvents {
		t.Fatalf("dump has %d lines, snapshot says %d retained", len(lines), snap.FlightEvents)
	}
	var first struct {
		Seq  uint64 `json:"seq"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("dump line 0: %v", err)
	}
	if want := snap.FlightTotal - uint64(snap.FlightEvents); first.Seq != want {
		t.Fatalf("dump starts at seq %d, want %d", first.Seq, want)
	}
}

// sweepGrid is the shared workload of the sweep-telemetry tests.
func sweepGrid() *Grid {
	return &Grid{
		CCs:        []string{"cubic", "olia"},
		Orders:     [][]int{{2, 1, 3}},
		Seeds:      []int64{1, 2},
		DurationMs: 200,
	}
}

// TestSweepTelemetryRollup checks the sweep-level aggregation: the rollup
// counts every run, is identical across worker counts, and enabling it
// changes nothing about the run summaries.
func TestSweepTelemetryRollup(t *testing.T) {
	res8, err := (&Sweep{Workers: 8, Telemetry: true}).Run(sweepGrid())
	if err != nil {
		t.Fatal(err)
	}
	roll := res8.Telemetry
	if roll == nil {
		t.Fatal("telemetry sweep produced no rollup")
	}
	if roll.Runs != uint64(len(res8.Runs)) {
		t.Fatalf("rollup covers %d of %d runs", roll.Runs, len(res8.Runs))
	}
	if roll.EventsFired == 0 || roll.TxPackets == 0 || roll.SchedPicks == 0 || roll.HeapPeak == 0 {
		t.Fatalf("rollup has empty counters: %+v", roll)
	}

	res1, err := (&Sweep{Workers: 1, Telemetry: true}).Run(sweepGrid())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Telemetry, roll) {
		t.Fatalf("rollup depends on worker count:\nw1: %+v\nw8: %+v", res1.Telemetry, roll)
	}

	plain, err := (&Sweep{Workers: 4}).Run(sweepGrid())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Telemetry != nil {
		t.Fatal("telemetry-off sweep produced a rollup")
	}
	got, err := json.Marshal(res8.Runs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(plain.Runs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("telemetry changed the run summaries")
	}
}

// TestSweepHooksSerialised locks the OnResult/OnFailure contract the
// progress meter and flight dumps build on: callbacks never run
// concurrently, done increments by exactly one per call, and every run is
// reported. The hooks are now adapter sinks over the RunSink path, so
// this test also pins that the adapters preserved the contract (the
// sink-side half is TestStreamSinkContract in sink_test.go).
func TestSweepHooksSerialised(t *testing.T) {
	var inHook int32
	prevDone := 0
	seen := make(map[int]bool)
	s := &Sweep{
		Workers:   8,
		Telemetry: true,
		OnResult: func(done, total int, r RunSummary) {
			if !atomic.CompareAndSwapInt32(&inHook, 0, 1) {
				t.Error("OnResult ran concurrently with another hook")
			}
			if done != prevDone+1 {
				t.Errorf("done jumped from %d to %d", prevDone, done)
			}
			prevDone = done
			if total != 4 {
				t.Errorf("total = %d, want 4", total)
			}
			if seen[r.Index] {
				t.Errorf("run %d reported twice", r.Index)
			}
			seen[r.Index] = true
			time.Sleep(time.Millisecond) // widen any race window
			atomic.StoreInt32(&inHook, 0)
		},
		OnFailure: func(r RunSummary, res *Result) {
			t.Errorf("OnFailure for passing run %d: %s", r.Index, r.Err)
		},
	}
	if _, err := s.Run(sweepGrid()); err != nil {
		t.Fatal(err)
	}
	if prevDone != 4 || len(seen) != 4 {
		t.Fatalf("hooks saw %d completions over %d runs, want 4/4", prevDone, len(seen))
	}
}

// TestSweepOnFailureFlightTail drives runs into a mid-run abort (tiny
// event limit) and checks OnFailure hands over a partial result whose
// flight-recorder tail is dumpable — and hands nil when telemetry is off.
func TestSweepOnFailureFlightTail(t *testing.T) {
	grid := sweepGrid()
	grid.Base.EventLimit = 5000

	failures := 0
	s := &Sweep{
		Workers:   4,
		Telemetry: true,
		OnFailure: func(r RunSummary, res *Result) {
			failures++
			if r.Err == "" {
				t.Errorf("OnFailure for run %d without an error", r.Index)
			}
			if res == nil {
				t.Fatalf("run %d failed with telemetry on but no partial result", r.Index)
			}
			if res.FlightEvents() == 0 {
				t.Fatalf("run %d partial result has no flight tail", r.Index)
			}
			var buf bytes.Buffer
			if err := res.WriteFlightRecorder(&buf); err != nil {
				t.Fatal(err)
			}
			line := buf.String()[strings.LastIndex(strings.TrimRight(buf.String(), "\n"), "\n")+1:]
			var tail struct {
				Kind  string `json:"kind"`
				Where string `json:"where"`
			}
			if err := json.Unmarshal([]byte(line), &tail); err != nil {
				t.Fatalf("flight tail line: %v: %s", err, line)
			}
			if tail.Kind == "" || tail.Where == "" {
				t.Fatalf("flight tail does not name the event/location: %s", line)
			}
		},
	}
	res, err := s.Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	if failures != len(res.Runs) || res.Errs() != len(res.Runs) {
		t.Fatalf("%d failures over %d runs, want every run aborted by the event limit",
			failures, len(res.Runs))
	}
	// Aborted runs produce no snapshot, so the rollup stays empty rather
	// than mixing partial counts.
	if res.Telemetry == nil || res.Telemetry.Runs != 0 {
		t.Fatalf("rollup over aborted runs = %+v, want 0 runs", res.Telemetry)
	}

	// Without telemetry there is no recorder: OnFailure still fires, with a
	// nil result.
	gotNil := 0
	s = &Sweep{Workers: 2, OnFailure: func(r RunSummary, res *Result) {
		if res != nil {
			t.Errorf("run %d: partial result without telemetry", r.Index)
		}
		gotNil++
	}}
	if _, err := s.Run(grid); err != nil {
		t.Fatal(err)
	}
	if gotNil == 0 {
		t.Fatal("OnFailure never fired without telemetry")
	}
}
