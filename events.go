package mptcpsim

import (
	"fmt"
	"math"
	"time"

	"mptcpsim/internal/dynamics"
	"mptcpsim/internal/unit"
)

// Event types, the canonical spellings shared with the scenario JSON
// format. LinkDown/LinkUp/SetRate change the capacity structure and start
// a new LP epoch (the optimality gap is measured against the epoch in
// force); SetDelay/SetLoss/LossBurst change packet dynamics only.
const (
	// EventLinkDown takes both directions of a link out of service at a
	// scheduled time: the transmit queues are drained, frames
	// mid-serialisation are cut, and arriving packets are dropped.
	EventLinkDown = "link_down"
	// EventLinkUp restores a previously downed link.
	EventLinkUp = "link_up"
	// EventSetRate renegotiates the link capacity; the frame being
	// serialised completes at the old rate, later frames pace at the new
	// one.
	EventSetRate = "set_rate"
	// EventSetDelay changes the one-way propagation delay; in-flight
	// packets keep their committed arrival times and are never reordered.
	EventSetDelay = "set_delay"
	// EventSetLoss changes the random-loss probability.
	EventSetLoss = "set_loss"
	// EventLossBurst raises the loss probability for a bounded window and
	// then restores the pre-burst probability.
	EventLossBurst = "loss_burst"
)

// Event is one scheduled change to a link of a Network — the building
// block of dynamic scenarios (path failure, WiFi→cellular handover,
// capacity renegotiation). Events address duplex links by node-name pair
// like every other link override and apply to both directions. Only the
// parameter matching the Type is used.
type Event struct {
	// At is the virtual time the event fires.
	At time.Duration
	// Type is one of the Event* constants.
	Type string
	// A and B name the link's endpoints.
	A, B string
	// Mbps is the new capacity (set_rate).
	Mbps float64
	// Delay is the new one-way propagation delay (set_delay).
	Delay time.Duration
	// Loss is the new loss probability (set_loss) or the in-burst
	// probability (loss_burst).
	Loss float64
	// Burst is the loss-burst window length (loss_burst).
	Burst time.Duration
}

// String renders the event for reports ("2s link_down s-v1").
func (e Event) String() string {
	d, err := e.internal()
	if err != nil {
		return fmt.Sprintf("%v %s %s-%s (invalid)", e.At, e.Type, e.A, e.B)
	}
	return d.String()
}

// internal converts to the dynamics representation.
func (e Event) internal() (dynamics.Event, error) {
	kind, err := dynamics.ParseKind(e.Type)
	if err != nil {
		return dynamics.Event{}, fmt.Errorf("mptcpsim: event at %v: %w", e.At, err)
	}
	// Round like AddLink rounds capacities, keeping emit -> build a
	// fixpoint for non-representable rates.
	return dynamics.Event{
		At:    e.At,
		Kind:  kind,
		A:     e.A,
		B:     e.B,
		Rate:  unit.Rate(math.Round(e.Mbps * float64(unit.Mbps))),
		Delay: e.Delay,
		Loss:  e.Loss,
		Burst: e.Burst,
	}, nil
}

// fromInternal converts a dynamics event back to the public form.
func fromInternal(d dynamics.Event) Event {
	return Event{
		At:    d.At,
		Type:  d.Kind.String(),
		A:     d.A,
		B:     d.B,
		Mbps:  d.Rate.Mbit(),
		Delay: d.Delay,
		Loss:  d.Loss,
		Burst: d.Burst,
	}
}

// AddEvent schedules a dynamic event on the network. The event itself is
// validated immediately (known type, existing link, parameter ranges);
// cross-event rules — down/up pairing, loss events inside burst windows —
// need the whole timeline and are checked when the network is run or
// exported.
func (n *Network) AddEvent(e Event) error {
	d, err := e.internal()
	if err != nil {
		return err
	}
	if _, err := dynamics.ValidateEvent(n.graph, d); err != nil {
		return fmt.Errorf("mptcpsim: %w", err)
	}
	n.events = append(n.events, e)
	return nil
}

// Events returns the scheduled dynamic events in the order they were
// added.
func (n *Network) Events() []Event {
	return append([]Event(nil), n.events...)
}

// timeline builds and validates the internal event timeline (nil when the
// network is static).
func (n *Network) timeline() (*dynamics.Timeline, error) {
	if len(n.events) == 0 {
		return nil, nil
	}
	evs := make([]dynamics.Event, len(n.events))
	for i, e := range n.events {
		d, err := e.internal()
		if err != nil {
			return nil, err
		}
		evs[i] = d
	}
	tl, err := dynamics.New(n.graph, evs)
	if err != nil {
		return nil, fmt.Errorf("mptcpsim: %w", err)
	}
	return tl, nil
}
