package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mptcpsim/internal/check"
)

// The acceptance property: the report is identical bytes across reruns
// and across worker counts.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	const n, seed = 12, 1
	var a, b, c bytes.Buffer
	if tl, _ := runCheck(n, seed, 1, false, &a); tl.failed() != 0 {
		t.Fatalf("%d scenarios failed:\n%s", tl.failed(), a.String())
	}
	if tl, _ := runCheck(n, seed, 4, false, &b); tl.failed() != 0 {
		t.Fatalf("%d scenarios failed with 4 workers:\n%s", tl.failed(), b.String())
	}
	if tl, _ := runCheck(n, seed, 4, false, &c); tl.failed() != 0 {
		t.Fatalf("%d scenarios failed on rerun:\n%s", tl.failed(), c.String())
	}
	if a.String() != b.String() {
		t.Fatal("report differs between 1 and 4 workers")
	}
	if b.String() != c.String() {
		t.Fatal("report differs across reruns")
	}
	if got := strings.Count(a.String(), "\n"); got != n+2 {
		t.Fatalf("report has %d lines, want %d scenario lines + header + summary", got, n+2)
	}
}

func TestQuietReportsOnlySummary(t *testing.T) {
	var buf bytes.Buffer
	if tl, _ := runCheck(3, 2, 2, true, &buf); tl.failed() != 0 {
		t.Fatalf("%d scenarios failed:\n%s", tl.failed(), buf.String())
	}
	out := buf.String()
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("quiet report should be header + summary only:\n%s", out)
	}
	if !strings.Contains(out, "3/3 scenarios passed") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

// The trend mode carries the same determinism contract: ladder reports
// are identical bytes across worker counts and reruns.
func TestTrendReportDeterministicAcrossWorkers(t *testing.T) {
	const ladders, steps, seed = 4, 2, 1
	var a, b, c bytes.Buffer
	if tl, failed := runTrend(ladders, steps, seed, 1, false, &a); tl.failed() != 0 || failed != 0 {
		t.Fatalf("trend run failed (%d rung failures, %d ladder violations):\n%s",
			tl.failed(), failed, a.String())
	}
	if tl, failed := runTrend(ladders, steps, seed, 4, false, &b); tl.failed() != 0 || failed != 0 {
		t.Fatalf("trend run failed with 4 workers:\n%s", b.String())
	}
	if tl, failed := runTrend(ladders, steps, seed, 4, false, &c); tl.failed() != 0 || failed != 0 {
		t.Fatalf("trend rerun failed:\n%s", c.String())
	}
	if a.String() != b.String() {
		t.Fatal("trend report differs between 1 and 4 workers")
	}
	if b.String() != c.String() {
		t.Fatal("trend report differs across reruns")
	}
	if !strings.Contains(a.String(), fmt.Sprintf("%d/%d ladders passed", ladders, ladders)) {
		t.Fatalf("summary missing:\n%s", a.String())
	}
}

// The acceptance demonstration for the metamorphic oracle: a build whose
// loss is applied with inverted probability produces rungs that are each
// perfectly deterministic — every one passes replay-hash equality — yet
// the goodput trend runs the wrong way, and only the trend oracle sees
// it. The mutation seam replaces the derived ladder with a loss ladder
// whose rungs run in inverted order, which is exactly the observable a
// sign flip in the loss path would produce.
func TestTrendCatchesInvertedLossBuild(t *testing.T) {
	trendMutate = func(check.Ladder) check.Ladder {
		l := check.NewLadder(1, 16, 4) // seed-1 loss ladder with a healthy monotone base
		if l.Knob != check.KnobLossUp {
			t.Fatalf("ladder 16 perturbs %s, want %s", l.Knob, check.KnobLossUp)
		}
		for i, j := 0, len(l.Rungs)-1; i < j; i, j = i+1, j-1 {
			l.Rungs[i], l.Rungs[j] = l.Rungs[j], l.Rungs[i]
		}
		return l
	}
	defer func() { trendMutate = nil }()

	var buf bytes.Buffer
	tl, failed := runTrend(1, 4, 1, 4, false, &buf)
	out := buf.String()
	if tl.run != 0 || tl.hash != 0 {
		t.Fatalf("inverted build must pass invariants and replay hashes, got tally %+v:\n%s", tl, out)
	}
	if strings.Contains(out, "ERROR") {
		t.Fatalf("rungs must measure cleanly:\n%s", out)
	}
	if failed != 1 {
		t.Fatalf("trend oracle flagged %d ladders, want 1:\n%s", failed, out)
	}
	if !strings.Contains(out, "goodput not non-increasing") {
		t.Fatalf("missing pairwise inversion violation:\n%s", out)
	}
	if !strings.Contains(out, "rose end-to-end") {
		t.Fatalf("missing end-to-end drift violation:\n%s", out)
	}

	// The same ladder in its true order passes: the violation comes from
	// the inversion, not from loose rungs.
	trendMutate = func(check.Ladder) check.Ladder { return check.NewLadder(1, 16, 4) }
	buf.Reset()
	if tl, failed := runTrend(1, 4, 1, 4, false, &buf); tl.failed() != 0 || failed != 0 {
		t.Fatalf("uninverted ladder 16 should pass:\n%s", buf.String())
	}
}

// The full CLI path for the broken build: exit code 4, distinct from
// invariant (1) and hash (3) failures.
func TestRunExitCodeTrendViolation(t *testing.T) {
	trendMutate = func(check.Ladder) check.Ladder {
		l := check.NewLadder(1, 16, 4)
		for i, j := 0, len(l.Rungs)-1; i < j; i, j = i+1, j-1 {
			l.Rungs[i], l.Rungs[j] = l.Rungs[j], l.Rungs[i]
		}
		return l
	}
	defer func() { trendMutate = nil }()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-trend", "-ladders", "1", "-steps", "4", "-q"}, &stdout, &stderr); code != exitTrend {
		t.Fatalf("exit code %d, want %d (trend violation)\nstdout:\n%s\nstderr:\n%s",
			code, exitTrend, stdout.String(), stderr.String())
	}
}

// fakeOutcomes installs a checkSpecFn that fabricates verdicts without
// running simulations, and returns a restore func.
func fakeOutcomes(t *testing.T, kinds []failKind) {
	t.Helper()
	orig := checkSpecFn
	checkSpecFn = func(i int, base int64) outcome {
		kind := kinds[i]
		if kind == kindOK {
			h := fmt.Sprintf("%064d", i)
			return outcome{hash: h, line: fmt.Sprintf("%4d ok   seed=%d hash=%.12s fake", i, base, h)}
		}
		return outcome{kind: kind, line: fmt.Sprintf("%4d FAIL seed=%d fake", i, base)}
	}
	t.Cleanup(func() { checkSpecFn = orig })
}

func TestRunExitCodeClasses(t *testing.T) {
	cases := []struct {
		name  string
		kinds []failKind
		want  int
	}{
		{"all pass", []failKind{kindOK, kindOK}, exitOK},
		{"invariant failure", []failKind{kindOK, kindRun}, exitFail},
		{"hash divergence", []failKind{kindHash, kindOK}, exitHash},
		{"run failure outranks hash", []failKind{kindHash, kindRun}, exitFail},
	}
	for _, tc := range cases {
		fakeOutcomes(t, tc.kinds)
		var stdout, stderr bytes.Buffer
		args := []string{"-n", fmt.Sprint(len(tc.kinds)), "-q"}
		if code := run(args, &stdout, &stderr); code != tc.want {
			t.Errorf("%s: exit code %d, want %d\n%s", tc.name, code, tc.want, stdout.String())
		}
	}
}

func TestWriteGoldenRefusedOnFailingRun(t *testing.T) {
	fakeOutcomes(t, []failKind{kindOK, kindRun})
	path := filepath.Join(t.TempDir(), "corpus.golden")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "2", "-q", "-write-golden", path}, &stdout, &stderr)
	if code != exitFail {
		t.Fatalf("exit code %d, want %d", code, exitFail)
	}
	if !strings.Contains(stderr.String(), "refusing to record") {
		t.Fatalf("missing refusal diagnostic:\n%s", stderr.String())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("refused corpus was still written (stat err: %v)", err)
	}
}

func TestGoldenRoundTripAndDivergence(t *testing.T) {
	fakeOutcomes(t, []failKind{kindOK, kindOK, kindOK})
	path := filepath.Join(t.TempDir(), "corpus.golden")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "3", "-q", "-write-golden", path}, &stdout, &stderr); code != exitOK {
		t.Fatalf("recording failed with code %d:\n%s", code, stderr.String())
	}

	// Replaying the identical fabricated run against its own corpus passes.
	stdout.Reset()
	if code := run([]string{"-n", "3", "-q", "-golden", path}, &stdout, &stderr); code != exitOK {
		t.Fatalf("replay diverged, code %d:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "3/3 hashes identical") {
		t.Fatalf("missing golden verdict:\n%s", stdout.String())
	}

	// Tamper with one recorded hash: the divergence must map to the
	// determinism exit code and name the scenario.
	corpus, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(corpus, []byte("1 0000"), []byte("1 1111"), 1)
	if bytes.Equal(corpus, tampered) {
		t.Fatal("tamper target not found in corpus")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if code := run([]string{"-n", "3", "-q", "-golden", path}, &stdout, &stderr); code != exitHash {
		t.Fatalf("tampered corpus gave code %d, want %d:\n%s", code, exitHash, stdout.String())
	}
	if !strings.Contains(stdout.String(), "   1 DIVERGED") {
		t.Fatalf("divergence report missing scenario index:\n%s", stdout.String())
	}
}

// Every flag-error path exits with the usage code and a pointed
// diagnostic, before any simulation work starts.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // required stderr substring
	}{
		{"bad golden path", []string{"-golden", "/nonexistent/dir/corpus.golden"}, "no such file"},
		{"golden conflicts with write-golden", []string{"-golden", "a", "-write-golden", "b"}, "mutually exclusive"},
		{"trend conflicts with golden", []string{"-trend", "-golden", "a"}, "hash corpora belong to the plain mode"},
		{"trend conflicts with write-golden", []string{"-trend", "-write-golden", "a"}, "hash corpora belong to the plain mode"},
		{"trend conflicts with n", []string{"-trend", "-n", "5"}, "-n applies to the plain mode"},
		{"ladders without trend", []string{"-ladders", "5"}, "-ladders/-steps require -trend"},
		{"steps without trend", []string{"-steps", "2"}, "-ladders/-steps require -trend"},
		{"zero ladders", []string{"-trend", "-ladders", "0"}, "-ladders must be positive"},
		{"zero steps", []string{"-trend", "-steps", "0"}, "-steps must be positive"},
		{"zero scenarios", []string{"-n", "0"}, "-n must be positive"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != exitUsage {
			t.Errorf("%s: exit code %d, want %d", tc.name, code, exitUsage)
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: stderr missing %q:\n%s", tc.name, tc.want, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%s: flag error wrote to stdout:\n%s", tc.name, stdout.String())
		}
	}
}

// -h is not an error: it documents the exit-code contract and exits 0.
func TestRunHelpDocumentsExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("-h exited %d, want %d", code, exitOK)
	}
	for _, want := range []string{"Exit codes:", "trend violation", "golden-corpus divergence", "invariant violation"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("-h output missing %q:\n%s", want, stderr.String())
		}
	}
}
