package main

import (
	"bytes"
	"strings"
	"testing"
)

// The acceptance property: the report is identical bytes across reruns
// and across worker counts.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	const n, seed = 12, 1
	var a, b, c bytes.Buffer
	if failed, _ := runCheck(n, seed, 1, false, &a); failed != 0 {
		t.Fatalf("%d scenarios failed:\n%s", failed, a.String())
	}
	if failed, _ := runCheck(n, seed, 4, false, &b); failed != 0 {
		t.Fatalf("%d scenarios failed with 4 workers:\n%s", failed, b.String())
	}
	if failed, _ := runCheck(n, seed, 4, false, &c); failed != 0 {
		t.Fatalf("%d scenarios failed on rerun:\n%s", failed, c.String())
	}
	if a.String() != b.String() {
		t.Fatal("report differs between 1 and 4 workers")
	}
	if b.String() != c.String() {
		t.Fatal("report differs across reruns")
	}
	if got := strings.Count(a.String(), "\n"); got != n+2 {
		t.Fatalf("report has %d lines, want %d scenario lines + header + summary", got, n+2)
	}
}

func TestQuietReportsOnlySummary(t *testing.T) {
	var buf bytes.Buffer
	if failed, _ := runCheck(3, 2, 2, true, &buf); failed != 0 {
		t.Fatalf("%d scenarios failed:\n%s", failed, buf.String())
	}
	out := buf.String()
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("quiet report should be header + summary only:\n%s", out)
	}
	if !strings.Contains(out, "3/3 scenarios passed") {
		t.Fatalf("summary missing:\n%s", out)
	}
}
