package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mptcpsim"
	"mptcpsim/internal/check"
)

// The acceptance property: the report is identical bytes across reruns
// and across worker counts.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	const n, seed = 12, 1
	var a, b, c bytes.Buffer
	if tl, _ := runCheck(n, seed, 1, false, &a); tl.failed() != 0 {
		t.Fatalf("%d scenarios failed:\n%s", tl.failed(), a.String())
	}
	if tl, _ := runCheck(n, seed, 4, false, &b); tl.failed() != 0 {
		t.Fatalf("%d scenarios failed with 4 workers:\n%s", tl.failed(), b.String())
	}
	if tl, _ := runCheck(n, seed, 4, false, &c); tl.failed() != 0 {
		t.Fatalf("%d scenarios failed on rerun:\n%s", tl.failed(), c.String())
	}
	if a.String() != b.String() {
		t.Fatal("report differs between 1 and 4 workers")
	}
	if b.String() != c.String() {
		t.Fatal("report differs across reruns")
	}
	if got := strings.Count(a.String(), "\n"); got != n+2 {
		t.Fatalf("report has %d lines, want %d scenario lines + header + summary", got, n+2)
	}
}

func TestQuietReportsOnlySummary(t *testing.T) {
	var buf bytes.Buffer
	if tl, _ := runCheck(3, 2, 2, true, &buf); tl.failed() != 0 {
		t.Fatalf("%d scenarios failed:\n%s", tl.failed(), buf.String())
	}
	out := buf.String()
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("quiet report should be header + summary only:\n%s", out)
	}
	if !strings.Contains(out, "3/3 scenarios passed") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

// The trend mode carries the same determinism contract: ladder reports
// are identical bytes across worker counts and reruns.
func TestTrendReportDeterministicAcrossWorkers(t *testing.T) {
	const ladders, steps, seed = 4, 2, 1
	var a, b, c bytes.Buffer
	if tl, failed := runTrend(ladders, steps, seed, 1, false, &a); tl.failed() != 0 || failed != 0 {
		t.Fatalf("trend run failed (%d rung failures, %d ladder violations):\n%s",
			tl.failed(), failed, a.String())
	}
	if tl, failed := runTrend(ladders, steps, seed, 4, false, &b); tl.failed() != 0 || failed != 0 {
		t.Fatalf("trend run failed with 4 workers:\n%s", b.String())
	}
	if tl, failed := runTrend(ladders, steps, seed, 4, false, &c); tl.failed() != 0 || failed != 0 {
		t.Fatalf("trend rerun failed:\n%s", c.String())
	}
	if a.String() != b.String() {
		t.Fatal("trend report differs between 1 and 4 workers")
	}
	if b.String() != c.String() {
		t.Fatal("trend report differs across reruns")
	}
	if !strings.Contains(a.String(), fmt.Sprintf("%d/%d ladders passed", ladders, ladders)) {
		t.Fatalf("summary missing:\n%s", a.String())
	}
}

// The acceptance demonstration for the metamorphic oracle: a build whose
// loss is applied with inverted probability produces rungs that are each
// perfectly deterministic — every one passes replay-hash equality — yet
// the goodput trend runs the wrong way, and only the trend oracle sees
// it. The mutation seam replaces the derived ladder with a loss ladder
// whose rungs run in inverted order, which is exactly the observable a
// sign flip in the loss path would produce.
func TestTrendCatchesInvertedLossBuild(t *testing.T) {
	trendMutate = func(check.Ladder) check.Ladder {
		l := check.NewLadder(1, 16, 4) // seed-1 loss ladder with a healthy monotone base
		if l.Knob != check.KnobLossUp {
			t.Fatalf("ladder 16 perturbs %s, want %s", l.Knob, check.KnobLossUp)
		}
		for i, j := 0, len(l.Rungs)-1; i < j; i, j = i+1, j-1 {
			l.Rungs[i], l.Rungs[j] = l.Rungs[j], l.Rungs[i]
		}
		return l
	}
	defer func() { trendMutate = nil }()

	var buf bytes.Buffer
	tl, failed := runTrend(1, 4, 1, 4, false, &buf)
	out := buf.String()
	if tl.run != 0 || tl.hash != 0 {
		t.Fatalf("inverted build must pass invariants and replay hashes, got tally %+v:\n%s", tl, out)
	}
	if strings.Contains(out, "ERROR") {
		t.Fatalf("rungs must measure cleanly:\n%s", out)
	}
	if failed != 1 {
		t.Fatalf("trend oracle flagged %d ladders, want 1:\n%s", failed, out)
	}
	if !strings.Contains(out, "goodput not non-increasing") {
		t.Fatalf("missing pairwise inversion violation:\n%s", out)
	}
	if !strings.Contains(out, "rose end-to-end") {
		t.Fatalf("missing end-to-end drift violation:\n%s", out)
	}

	// The same ladder in its true order passes: the violation comes from
	// the inversion, not from loose rungs.
	trendMutate = func(check.Ladder) check.Ladder { return check.NewLadder(1, 16, 4) }
	buf.Reset()
	if tl, failed := runTrend(1, 4, 1, 4, false, &buf); tl.failed() != 0 || failed != 0 {
		t.Fatalf("uninverted ladder 16 should pass:\n%s", buf.String())
	}
}

// The full CLI path for the broken build: exit code 4, distinct from
// invariant (1) and hash (3) failures.
func TestRunExitCodeTrendViolation(t *testing.T) {
	trendMutate = func(check.Ladder) check.Ladder {
		l := check.NewLadder(1, 16, 4)
		for i, j := 0, len(l.Rungs)-1; i < j; i, j = i+1, j-1 {
			l.Rungs[i], l.Rungs[j] = l.Rungs[j], l.Rungs[i]
		}
		return l
	}
	defer func() { trendMutate = nil }()
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-trend", "-ladders", "1", "-steps", "4", "-q"}, &stdout, &stderr); code != exitTrend {
		t.Fatalf("exit code %d, want %d (trend violation)\nstdout:\n%s\nstderr:\n%s",
			code, exitTrend, stdout.String(), stderr.String())
	}
}

// fakeOutcomes installs a checkSpecFn that fabricates verdicts without
// running simulations, and returns a restore func.
func fakeOutcomes(t *testing.T, kinds []failKind) {
	t.Helper()
	orig := checkSpecFn
	checkSpecFn = func(i int, base int64) outcome {
		kind := kinds[i]
		if kind == kindOK {
			h := fmt.Sprintf("%064d", i)
			return outcome{hash: h, line: fmt.Sprintf("%4d ok   seed=%d hash=%.12s fake", i, base, h)}
		}
		return outcome{kind: kind, line: fmt.Sprintf("%4d FAIL seed=%d fake", i, base)}
	}
	t.Cleanup(func() { checkSpecFn = orig })
}

func TestRunExitCodeClasses(t *testing.T) {
	cases := []struct {
		name  string
		kinds []failKind
		want  int
	}{
		{"all pass", []failKind{kindOK, kindOK}, exitOK},
		{"invariant failure", []failKind{kindOK, kindRun}, exitFail},
		{"hash divergence", []failKind{kindHash, kindOK}, exitHash},
		{"run failure outranks hash", []failKind{kindHash, kindRun}, exitFail},
	}
	for _, tc := range cases {
		fakeOutcomes(t, tc.kinds)
		var stdout, stderr bytes.Buffer
		args := []string{"-n", fmt.Sprint(len(tc.kinds)), "-q"}
		if code := run(args, &stdout, &stderr); code != tc.want {
			t.Errorf("%s: exit code %d, want %d\n%s", tc.name, code, tc.want, stdout.String())
		}
	}
}

func TestWriteGoldenRefusedOnFailingRun(t *testing.T) {
	fakeOutcomes(t, []failKind{kindOK, kindRun})
	path := filepath.Join(t.TempDir(), "corpus.golden")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-n", "2", "-q", "-write-golden", path}, &stdout, &stderr)
	if code != exitFail {
		t.Fatalf("exit code %d, want %d", code, exitFail)
	}
	if !strings.Contains(stderr.String(), "refusing to record") {
		t.Fatalf("missing refusal diagnostic:\n%s", stderr.String())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("refused corpus was still written (stat err: %v)", err)
	}
}

func TestGoldenRoundTripAndDivergence(t *testing.T) {
	fakeOutcomes(t, []failKind{kindOK, kindOK, kindOK})
	path := filepath.Join(t.TempDir(), "corpus.golden")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "3", "-q", "-write-golden", path}, &stdout, &stderr); code != exitOK {
		t.Fatalf("recording failed with code %d:\n%s", code, stderr.String())
	}

	// Replaying the identical fabricated run against its own corpus passes.
	stdout.Reset()
	if code := run([]string{"-n", "3", "-q", "-golden", path}, &stdout, &stderr); code != exitOK {
		t.Fatalf("replay diverged, code %d:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "3/3 hashes identical") {
		t.Fatalf("missing golden verdict:\n%s", stdout.String())
	}

	// Tamper with one recorded hash: the divergence must map to the
	// determinism exit code and name the scenario.
	corpus, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(corpus, []byte("1 0000"), []byte("1 1111"), 1)
	if bytes.Equal(corpus, tampered) {
		t.Fatal("tamper target not found in corpus")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if code := run([]string{"-n", "3", "-q", "-golden", path}, &stdout, &stderr); code != exitHash {
		t.Fatalf("tampered corpus gave code %d, want %d:\n%s", code, exitHash, stdout.String())
	}
	if !strings.Contains(stdout.String(), "   1 DIVERGED") {
		t.Fatalf("divergence report missing scenario index:\n%s", stdout.String())
	}
}

// TestRunProgressHeartbeats drives -progress through the CLI seam: the
// stream is NDJSON, done never regresses, and the final frame accounts
// for every scenario including the failed one.
func TestRunProgressHeartbeats(t *testing.T) {
	fakeOutcomes(t, []failKind{kindOK, kindRun, kindOK, kindOK})
	path := filepath.Join(t.TempDir(), "progress.ndjson")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-n", "4", "-q", "-progress", path}, &stdout, &stderr); code != exitFail {
		t.Fatalf("exit code %d, want %d\nstderr: %s", code, exitFail, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("progress file is empty")
	}
	prevDone := -1
	var hb struct {
		T      string  `json:"t"`
		Done   int     `json:"done"`
		Total  int     `json:"total"`
		Failed int     `json:"failed"`
		ETA    float64 `json:"eta_s"`
	}
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &hb); err != nil {
			t.Fatalf("heartbeat %d: %v: %s", i, err, line)
		}
		if _, err := time.Parse(time.RFC3339Nano, hb.T); err != nil {
			t.Fatalf("heartbeat %d timestamp: %v", i, err)
		}
		if hb.Done < prevDone {
			t.Fatalf("heartbeat %d: done went backwards (%d after %d)", i, hb.Done, prevDone)
		}
		prevDone = hb.Done
	}
	if hb.Done != 4 || hb.Total != 4 || hb.Failed != 1 || hb.ETA != 0 {
		t.Fatalf("final heartbeat = %+v, want done=4 total=4 failed=1 eta_s=0", hb)
	}
}

// The trend mode sizes its progress total as ladders x rungs, not -n.
func TestRunTrendProgressTotal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "progress.ndjson")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-trend", "-ladders", "1", "-steps", "2", "-q", "-progress", path}, &stdout, &stderr)
	if code != exitOK {
		t.Fatalf("exit code %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitOK, stdout.String(), stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	var hb struct {
		Done, Total, Failed int
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Done != 3 || hb.Total != 3 || hb.Failed != 0 {
		t.Fatalf("final heartbeat = %+v, want done=3 total=3 failed=0 (1 ladder x 3 rungs)", hb)
	}
}

// TestDumpFlight pins the flight-dump helper checkSpec calls on every
// failing scenario: the note names the written NDJSON file, its lines
// parse, and the guards (no dir, no result, no recorder) return nothing.
func TestDumpFlight(t *testing.T) {
	res, err := mptcpsim.RunPaper(mptcpsim.Options{Duration: 100 * time.Millisecond, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlightEvents() == 0 {
		t.Fatal("telemetry run retained no flight events")
	}
	plain, err := mptcpsim.RunPaper(mptcpsim.Options{Duration: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	flightDir = dir
	t.Cleanup(func() { flightDir = "" })
	for name, note := range map[string]string{
		"nil result":  dumpFlight(1, nil),
		"no recorder": dumpFlight(2, plain),
	} {
		if note != "" {
			t.Errorf("%s: dumpFlight returned %q, want nothing", name, note)
		}
	}
	flightDir = ""
	if note := dumpFlight(3, res); note != "" {
		t.Errorf("no flightdir: dumpFlight returned %q, want nothing", note)
	}

	flightDir = dir
	note := dumpFlight(7, res)
	path := filepath.Join(dir, "flight-7.ndjson")
	if want := " (flight tail: " + path + ")"; note != want {
		t.Fatalf("note = %q, want %q", note, want)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != res.FlightEvents() {
		t.Fatalf("dump has %d lines, result retained %d events", len(lines), res.FlightEvents())
	}
	var ev struct {
		Kind  string `json:"kind"`
		Where string `json:"where"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind == "" || ev.Where == "" {
		t.Fatalf("tail line does not name the event/location: %s", lines[len(lines)-1])
	}
}

// A real (tiny) plain run with the full observability surface on: the
// checked pass carries telemetry yet every replay hash still matches —
// the per-scenario proof that telemetry is observation-only.
func TestRunTelemetryObservationOnly(t *testing.T) {
	dir := t.TempDir()
	var plain, telem bytes.Buffer
	var stderr bytes.Buffer
	if code := run([]string{"-n", "3", "-seed", "2"}, &plain, &stderr); code != exitOK {
		t.Fatalf("plain run exited %d:\n%s\n%s", code, plain.String(), stderr.String())
	}
	args := []string{"-n", "3", "-seed", "2", "-telemetry",
		"-flightdir", filepath.Join(dir, "flight"), "-http", "localhost:0"}
	if code := run(args, &telem, &stderr); code != exitOK {
		t.Fatalf("telemetry run exited %d:\n%s\n%s", code, telem.String(), stderr.String())
	}
	if plain.String() != telem.String() {
		t.Fatalf("telemetry changed the report:\n--- plain ---\n%s\n--- telemetry ---\n%s",
			plain.String(), telem.String())
	}
	if !strings.Contains(stderr.String(), "debug endpoint on http://") {
		t.Fatalf("-http never announced its endpoint:\n%s", stderr.String())
	}
	// All scenarios passed, so no flight dumps.
	dumps, err := filepath.Glob(filepath.Join(dir, "flight", "flight-*.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 0 {
		t.Fatalf("passing scenarios left flight dumps: %v", dumps)
	}
}

// Every flag-error path exits with the usage code and a pointed
// diagnostic, before any simulation work starts.
func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // required stderr substring
	}{
		{"bad golden path", []string{"-golden", "/nonexistent/dir/corpus.golden"}, "no such file"},
		{"golden conflicts with write-golden", []string{"-golden", "a", "-write-golden", "b"}, "mutually exclusive"},
		{"trend conflicts with golden", []string{"-trend", "-golden", "a"}, "hash corpora belong to the plain mode"},
		{"trend conflicts with write-golden", []string{"-trend", "-write-golden", "a"}, "hash corpora belong to the plain mode"},
		{"trend conflicts with n", []string{"-trend", "-n", "5"}, "-n applies to the plain mode"},
		{"ladders without trend", []string{"-ladders", "5"}, "-ladders/-steps require -trend"},
		{"steps without trend", []string{"-steps", "2"}, "-ladders/-steps require -trend"},
		{"zero ladders", []string{"-trend", "-ladders", "0"}, "-ladders must be positive"},
		{"zero steps", []string{"-trend", "-steps", "0"}, "-steps must be positive"},
		{"zero scenarios", []string{"-n", "0"}, "-n must be positive"},
		{"flightdir with trend", []string{"-trend", "-flightdir", "d"}, "-flightdir applies to the plain mode"},
		{"bad progress path", []string{"-progress", "/nonexistent/dir/progress.ndjson"}, "no such file"},
		{"unknown flag", []string{"-bogus"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(tc.args, &stdout, &stderr); code != exitUsage {
			t.Errorf("%s: exit code %d, want %d", tc.name, code, exitUsage)
			continue
		}
		if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%s: stderr missing %q:\n%s", tc.name, tc.want, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("%s: flag error wrote to stdout:\n%s", tc.name, stdout.String())
		}
	}
}

// -h is not an error: it documents the exit-code contract and exits 0.
func TestRunHelpDocumentsExitCodes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-h"}, &stdout, &stderr); code != exitOK {
		t.Fatalf("-h exited %d, want %d", code, exitOK)
	}
	for _, want := range []string{"Exit codes:", "trend violation", "golden-corpus divergence", "invariant violation"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("-h output missing %q:\n%s", want, stderr.String())
		}
	}
}
