// Command simcheck is the randomized correctness harness. It has two
// modes sharing one generator, one worker pool and one determinism
// contract (reports are byte-identical across reruns and -workers).
//
// The plain mode generates N pseudo-random scenarios (seeded topologies
// with overlapping paths, congestion-control/scheduler/ordering draws,
// and valid dynamic-event timelines), runs each one twice with the
// invariant oracle attached, and asserts on every run:
//
//   - packet conservation per link, per flow and network-wide (including
//     link_down queue drains and frames cut mid-serialisation);
//   - per-epoch wire bytes within every link's capacity budget;
//   - FIFO arrival order on every link, across runtime delay changes;
//   - a non-negative optimality gap against the (piecewise) LP optimum;
//   - replay determinism: both runs must produce an identical canonical
//     Result hash.
//
// A golden hash corpus locks the whole pipeline across performance work:
// -write-golden records every scenario's full canonical hash, -golden
// replays a recorded corpus and fails on any byte that moved.
//
// The trend mode (-trend) is the metamorphic oracle on top: exact
// invariants and replay hashes cannot tell a plausible simulator from a
// correct one (a deterministic bug is deterministically wrong), but
// qualitative trends can. For each of L ladders it derives K monotone
// perturbations of one knob on one link of one active path (loss up,
// delay up, capacity down, capacity up), runs every rung under the full
// plain-mode contract, and asserts direction-of-change properties within
// a noise tolerance: goodput monotone non-increasing on degrading
// ladders (non-decreasing on capacity-up), optimality gap non-widening
// against each rung's own LP baseline on capacity-down, and no load
// shift onto a degrading path for coupled congestion controllers.
//
//	simcheck -n 200 -seed 1
//	simcheck -n 200 -seed 1 -golden internal/check/testdata/hashes-seed1.golden
//	simcheck -trend -ladders 24 -steps 4 -seed 1
//
// Observability: -progress streams NDJSON heartbeats (done/total/failed,
// EWMA runs/s, ETA) to a file or stderr; -telemetry collects engine
// counters on the checked pass of every scenario — the replay pass stays
// plain, so the existing replay-hash equality doubles as a per-scenario
// proof that telemetry is observation-only; -flightdir dumps the
// flight-recorder tail (the last engine events) of every failing plain-
// mode scenario; -http serves expvar and pprof debug endpoints while the
// check runs.
//
// Exit codes are distinct per failure class (see -h): 1 scenario/run or
// invariant failure, 2 usage or file I/O error, 3 determinism failure
// (replay-hash or golden-corpus divergence), 4 trend violation.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"mptcpsim"
	"mptcpsim/internal/check"
	"mptcpsim/internal/prof"
	"mptcpsim/internal/telemetry"
)

// Exit codes, one per failure class, so CI and scripts can tell what
// kind of wrongness a red run found without parsing the report. When
// failures of several classes occur in one invocation, the lowest code
// wins (the more fundamental failure).
const (
	exitOK    = 0
	exitFail  = 1 // scenario build/run error or invariant violation
	exitUsage = 2 // flag usage or file I/O error
	exitHash  = 3 // replay-hash mismatch or golden-corpus divergence
	exitTrend = 4 // metamorphic trend violation
)

const exitCodeDoc = `
Exit codes:
  0  success
  1  a scenario failed: build/run error or invariant violation
  2  usage or file I/O error
  3  determinism failure: replay-hash mismatch or golden-corpus divergence
  4  metamorphic trend violation (-trend)
When failures of several classes occur, the lowest code wins.
`

// runEventLimit aborts any single run after this many simulation events —
// a runaway guard so one pathological draw fails fast instead of wedging
// the harness.
const runEventLimit = 100_000_000

// failKind classifies a scenario or rung failure into its exit class.
type failKind int

const (
	kindOK   failKind = iota
	kindRun           // build/run error or invariant violation -> exitFail
	kindHash          // replay-hash divergence -> exitHash
)

// tally counts failures per class across a whole mode.
type tally struct{ run, hash int }

func (t tally) failed() int { return t.run + t.hash }

// outcome is one plain-mode scenario's verdict.
type outcome struct {
	kind failKind
	line string
	// hash is the full canonical Result hash of a passing scenario (the
	// report line truncates it for readability; golden corpora need every
	// byte).
	hash string
}

// telemetryOn, when set, enables Options.Telemetry on the checked pass
// of every runTwice. The replay pass stays plain, so the existing
// replay-hash equality doubles as a per-scenario proof that telemetry is
// observation-only. flightDir, when non-empty, is where dumpFlight writes
// failing scenarios' flight-recorder tails. onScenario, when non-nil,
// observes every completed scenario or rung (true = failed) from worker
// goroutines — the seam the -progress meter hangs off (the meter carries
// its own mutex). All three are reassigned on every run() call.
var (
	telemetryOn bool
	flightDir   string
	onScenario  func(failed bool)
)

// runTwice executes one spec under the full contract — once with the
// invariant oracle attached, once plain — and returns the validated
// result and its canonical hash, or the failure class and its message.
// On failure the returned result is the checked pass's (partial) result
// when one exists, so callers can dump its flight-recorder tail.
func runTwice(sp check.Spec) (*mptcpsim.Result, string, failKind, string) {
	opts := mptcpsim.Options{
		CC: sp.CC, Scheduler: sp.Scheduler, SubflowPaths: sp.Order,
		Seed: sp.RunSeed, Duration: sp.Duration, QueueScale: sp.QueueScale,
		EventLimit: runEventLimit,
	}
	run := func(validate bool) (*mptcpsim.Result, error) {
		nw, err := mptcpsim.LoadNetwork(bytes.NewReader(sp.Scenario))
		if err != nil {
			return nil, fmt.Errorf("build: %w", err)
		}
		o := opts
		o.ValidateInvariants = validate
		o.Telemetry = telemetryOn && validate
		return mptcpsim.Run(nw, o)
	}
	checked, err := run(true)
	if err != nil {
		return checked, "", kindRun, err.Error()
	}
	if len(checked.Invariants) > 0 {
		return checked, "", kindRun, "invariants: " + strings.Join(checked.Invariants, "; ")
	}
	replay, err := run(false)
	if err != nil {
		return checked, "", kindRun, fmt.Sprintf("replay: %v", err)
	}
	h := checked.Hash()
	if rh := replay.Hash(); rh != h {
		return checked, "", kindHash,
			fmt.Sprintf("replay hash %.12s != %.12s (non-deterministic run)", rh, h)
	}
	return checked, h, kindOK, ""
}

// dumpFlight writes a failing scenario's flight-recorder tail — the last
// engine events before the failure — to <flightDir>/flight-<i>.ndjson
// and returns a report-line note naming the file. Scenarios write
// distinct files, so concurrent workers never collide.
func dumpFlight(i int, res *mptcpsim.Result) string {
	if flightDir == "" || res == nil || res.FlightEvents() == 0 {
		return ""
	}
	path := filepath.Join(flightDir, fmt.Sprintf("flight-%d.ndjson", i))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Sprintf(" (flight dump failed: %v)", err)
	}
	werr := res.WriteFlightRecorder(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Sprintf(" (flight dump failed: %v)", werr)
	}
	return " (flight tail: " + path + ")"
}

// checkSpec runs one generated spec under the full contract and verdicts
// it as a plain-mode report line.
func checkSpec(i int, base int64) outcome {
	sp := check.NewSpec(check.SpecSeed(base, i))
	res, h, kind, msg := runTwice(sp)
	if kind != kindOK {
		msg += dumpFlight(i, res)
		return outcome{kind: kind, line: fmt.Sprintf("%4d FAIL seed=%-19d %s: %s",
			i, sp.Seed, sp.Name, msg)}
	}
	return outcome{hash: h, line: fmt.Sprintf("%4d ok   seed=%-19d hash=%.12s %s",
		i, sp.Seed, h, sp.Name)}
}

// checkSpecFn is the plain-mode scenario runner; a test seam so failure
// paths (refused golden recording, per-class exit codes) can be driven
// without a genuinely broken simulator.
var checkSpecFn = checkSpec

// forEach fans fn(i) for i in [0,n) across a worker pool. Callers write
// results into index-addressed slots, so their output stays
// deterministic whatever the pool size — the seam the plain and trend
// modes share.
func forEach(n, workers int, fn func(int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// runCheck executes n scenarios across the worker pool and writes the
// deterministic report to w. It returns the per-class failure tally and
// every scenario's full hash ("" where the scenario failed). The report
// contains no wall-clock or worker-count data, so its bytes are
// identical for a given (n, seed) whatever the pool size.
func runCheck(n int, seed int64, workers int, quiet bool, w io.Writer) (tally, []string) {
	results := make([]outcome, n)
	forEach(n, workers, func(i int) {
		r := checkSpecFn(i, seed)
		results[i] = r
		if onScenario != nil {
			onScenario(r.kind != kindOK)
		}
	})

	fmt.Fprintf(w, "simcheck: %d scenarios, base seed %d\n", n, seed)
	var t tally
	hashes := make([]string, n)
	for i, r := range results {
		switch r.kind {
		case kindRun:
			t.run++
		case kindHash:
			t.hash++
		}
		hashes[i] = r.hash
		if !quiet || r.kind != kindOK {
			fmt.Fprintln(w, r.line)
		}
	}
	fmt.Fprintf(w, "simcheck: %d/%d scenarios passed", n-t.failed(), n)
	if t.failed() > 0 {
		fmt.Fprintf(w, ", %d FAILED", t.failed())
	}
	fmt.Fprintln(w)
	return t, hashes
}

// runRung executes one ladder rung under the full plain-mode contract
// and extracts the trend observables.
func runRung(sp check.Spec, path int) (check.RungObs, failKind) {
	res, h, kind, msg := runTwice(sp)
	if kind != kindOK {
		return check.RungObs{Err: msg}, kind
	}
	var total, onPath uint64
	for _, sf := range res.Subflows {
		total += sf.SentBytes
		if sf.Path == path {
			onPath += sf.SentBytes
		}
	}
	share := math.NaN()
	if total > 0 {
		share = float64(onPath) / float64(total)
	}
	return check.RungObs{
		GoodputBytes: res.DeliveredBytes,
		Gap:          res.Summary.Gap,
		Share:        share,
		Hash:         h,
	}, kindOK
}

// trendMutate, when non-nil, rewrites every derived ladder before its
// rungs run. It is a test-only seam: the broken-build test injects a
// model-level mutation (the loss ladder applied in inverted order —
// exactly what a sign flip in the loss path would produce) and asserts
// the trend oracle fails while every rung still passes replay-hash
// equality.
var trendMutate func(check.Ladder) check.Ladder

// runTrend derives nLadders perturbation ladders, runs every rung across
// the worker pool, evaluates the trend policy and writes the
// deterministic report. It returns the rung failure tally and the number
// of ladders with trend violations.
func runTrend(nLadders, steps int, seed int64, workers int, quiet bool, w io.Writer) (tally, int) {
	lads := make([]check.Ladder, nLadders)
	for i := range lads {
		l := check.NewLadder(seed, i, steps)
		if trendMutate != nil {
			l = trendMutate(l)
		}
		lads[i] = l
	}
	rungs := steps + 1
	obs := make([][]check.RungObs, nLadders)
	kinds := make([][]failKind, nLadders)
	for i := range obs {
		obs[i] = make([]check.RungObs, rungs)
		kinds[i] = make([]failKind, rungs)
	}
	forEach(nLadders*rungs, workers, func(j int) {
		li, k := j/rungs, j%rungs
		o, kd := runRung(lads[li].Rungs[k], lads[li].Path)
		obs[li][k], kinds[li][k] = o, kd
		if onScenario != nil {
			onScenario(kd != kindOK)
		}
	})

	pol := check.DefaultTrendPolicy(steps)
	fmt.Fprintf(w, "simcheck trend: %d ladders x %d steps, base seed %d\n", nLadders, steps, seed)
	var t tally
	trendFailed, ok := 0, 0
	for i := range lads {
		rep := check.TrendReport{Ladder: lads[i], Obs: obs[i]}
		rep.Evaluate(pol)
		for _, k := range kinds[i] {
			switch k {
			case kindRun:
				t.run++
			case kindHash:
				t.hash++
			}
		}
		if len(rep.Violations) > 0 {
			trendFailed++
		}
		if rep.OK() {
			ok++
			if !quiet {
				rep.Write(w)
			}
		} else {
			rep.Write(w)
		}
	}
	fmt.Fprintf(w, "simcheck trend: %d/%d ladders passed", ok, nLadders)
	if ok < nLadders {
		fmt.Fprintf(w, ", %d FAILED", nLadders-ok)
	}
	fmt.Fprintln(w)
	return t, trendFailed
}

// diffGolden compares the run's hashes against a recorded corpus and
// writes a deterministic verdict. It returns the number of divergences
// (mismatched hashes plus any shape mismatch).
func diffGolden(g check.Golden, seed int64, hashes []string, w io.Writer) int {
	if g.Seed != seed {
		fmt.Fprintf(w, "golden: corpus was recorded with base seed %d, run used %d\n", g.Seed, seed)
		return 1
	}
	if len(g.Hashes) != len(hashes) {
		fmt.Fprintf(w, "golden: corpus has %d hashes, run produced %d (use -n %d)\n",
			len(g.Hashes), len(hashes), len(g.Hashes))
		return 1
	}
	diverged := 0
	for i, want := range g.Hashes {
		if hashes[i] == want {
			continue
		}
		diverged++
		got := hashes[i]
		if got == "" {
			got = "(scenario failed)"
		}
		fmt.Fprintf(w, "golden: %4d DIVERGED want=%.12s got=%.12s\n", i, want, got)
	}
	if diverged == 0 {
		fmt.Fprintf(w, "golden: %d/%d hashes identical to corpus\n", len(g.Hashes), len(g.Hashes))
	} else {
		fmt.Fprintf(w, "golden: %d/%d hashes DIVERGED from corpus\n", diverged, len(g.Hashes))
	}
	return diverged
}

// run is the whole CLI behind a testable seam: parse args, execute the
// selected mode, and map the findings onto the documented exit codes.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int("n", 200, "number of random scenarios (plain mode)")
		seed    = fs.Int64("seed", 1, "base seed; scenario/ladder i derives from check.SpecSeed(seed, i)")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel worker goroutines")
		quiet   = fs.Bool("q", false, "only print failing scenarios/ladders and the summary")
		golden  = fs.String("golden", "", "compare every hash against this recorded corpus; any divergence fails")
		writeG  = fs.String("write-golden", "", "record the corpus of full hashes to this path (all scenarios must pass)")
		trend   = fs.Bool("trend", false, "metamorphic trend mode: run perturbation ladders instead of plain scenarios")
		ladders = fs.Int("ladders", 24, "trend mode: number of perturbation ladders")
		steps   = fs.Int("steps", 4, "trend mode: perturbation steps per ladder (each ladder runs steps+1 rungs)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the whole check to this file")
		memProf = fs.String("memprofile", "", "write an allocation profile to this file at exit")
		telem   = fs.Bool("telemetry", false, "collect engine telemetry on every checked pass (replays stay plain, so hash equality also proves telemetry is observation-only)")
		progr   = fs.String("progress", "", "stream NDJSON progress heartbeats to this file (- = stderr)")
		httpA   = fs.String("http", "", "serve expvar and pprof debug endpoints on this address (e.g. localhost:0)")
		flight  = fs.String("flightdir", "", "dump failing scenarios' flight-recorder tails into this directory (plain mode; implies -telemetry)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: simcheck [flags]")
		fs.PrintDefaults()
		fmt.Fprint(stderr, exitCodeDoc)
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return exitOK
		}
		return exitUsage
	}
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	usage := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "simcheck: "+format+"\n", a...)
		return exitUsage
	}
	switch {
	case *trend && (set["golden"] || set["write-golden"]):
		return usage("-trend is incompatible with -golden/-write-golden (hash corpora belong to the plain mode)")
	case *trend && set["flightdir"]:
		return usage("-flightdir applies to the plain mode (trend rungs reuse plain-mode scenarios)")
	case *trend && set["n"]:
		return usage("-n applies to the plain mode; size trend runs with -ladders and -steps")
	case !*trend && (set["ladders"] || set["steps"]):
		return usage("-ladders/-steps require -trend")
	case *trend && *ladders <= 0:
		return usage("-ladders must be positive")
	case *trend && *steps <= 0:
		return usage("-steps must be positive")
	case !*trend && *n <= 0:
		return usage("-n must be positive")
	case *golden != "" && *writeG != "":
		return usage("-golden and -write-golden are mutually exclusive")
	}
	var corpus check.Golden
	if *golden != "" {
		f, err := os.Open(*golden)
		if err != nil {
			return usage("%v", err)
		}
		corpus, err = check.LoadGolden(f)
		f.Close()
		if err != nil {
			return usage("%v", err)
		}
	}

	// Observability wiring. The package seams are reassigned on every
	// invocation so repeated run() calls (tests) start clean.
	telemetryOn = *telem || *flight != ""
	flightDir = *flight
	onScenario = nil
	if flightDir != "" {
		if err := os.MkdirAll(flightDir, 0o755); err != nil {
			return usage("%v", err)
		}
	}
	if *progr != "" {
		w := io.Writer(stderr)
		if *progr != "-" {
			f, err := os.Create(*progr)
			if err != nil {
				return usage("%v", err)
			}
			defer f.Close()
			w = f
		}
		total := *n
		if *trend {
			total = *ladders * (*steps + 1)
		}
		meter := telemetry.NewMeter(w, total, *workers, time.Second)
		meter.Activate()
		onScenario = func(failed bool) { meter.Record(failed) }
		defer meter.Close()
	}
	if *httpA != "" {
		addr, closeSrv, err := telemetry.DebugServer(*httpA)
		if err != nil {
			return usage("%v", err)
		}
		defer closeSrv()
		fmt.Fprintf(stderr, "simcheck: debug endpoint on http://%s/debug/vars\n", addr)
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		return usage("%v", err)
	}

	var t tally
	trendFailed := 0
	var hashes []string
	if *trend {
		t, trendFailed = runTrend(*ladders, *steps, *seed, *workers, *quiet, stdout)
	} else {
		t, hashes = runCheck(*n, *seed, *workers, *quiet, stdout)
	}

	if err := stopProf(); err != nil {
		return usage("%v", err)
	}

	if *golden != "" {
		t.hash += diffGolden(corpus, *seed, hashes, stdout)
	}
	if *writeG != "" {
		if t.failed() > 0 {
			fmt.Fprintln(stderr, "simcheck: refusing to record a golden corpus from a failing run")
		} else {
			f, err := os.Create(*writeG)
			if err != nil {
				return usage("%v", err)
			}
			werr := check.WriteGolden(f, check.Golden{Seed: *seed, Hashes: hashes})
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return usage("%v", werr)
			}
			fmt.Fprintf(stderr, "simcheck: recorded %d hashes to %s\n", len(hashes), *writeG)
		}
	}
	switch {
	case t.run > 0:
		return exitFail
	case t.hash > 0:
		return exitHash
	case trendFailed > 0:
		return exitTrend
	}
	return exitOK
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
