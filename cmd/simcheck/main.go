// Command simcheck is the randomized correctness harness: it generates N
// pseudo-random scenarios (seeded topologies with overlapping paths,
// congestion-control/scheduler/ordering draws, and valid dynamic-event
// timelines), runs each one twice with the invariant oracle attached, and
// asserts on every run:
//
//   - packet conservation per link, per flow and network-wide (including
//     link_down queue drains and frames cut mid-serialisation);
//   - per-epoch wire bytes within every link's capacity budget;
//   - FIFO arrival order on every link, across runtime delay changes;
//   - a non-negative optimality gap against the (piecewise) LP optimum;
//   - replay determinism: both runs must produce an identical canonical
//     Result hash.
//
// The report is deterministic: identical bytes for a given (-n, -seed)
// across reruns and across -workers values, so CI can diff two
// invocations. Exit status is non-zero if any scenario fails.
//
// A golden hash corpus locks the whole pipeline across performance work:
// -write-golden records every scenario's full canonical hash, -golden
// replays a recorded corpus and fails on any byte that moved.
//
//	simcheck -n 200 -seed 1
//	simcheck -n 50 -seed 7 -workers 4 -q
//	simcheck -n 200 -seed 1 -golden internal/check/testdata/hashes-seed1.golden
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"

	"mptcpsim"
	"mptcpsim/internal/check"
	"mptcpsim/internal/prof"
)

// runEventLimit aborts any single run after this many simulation events —
// a runaway guard so one pathological draw fails fast instead of wedging
// the harness.
const runEventLimit = 100_000_000

// outcome is one scenario's verdict.
type outcome struct {
	ok   bool
	line string
	// hash is the full canonical Result hash of a passing scenario (the
	// report line truncates it for readability; golden corpora need every
	// byte).
	hash string
}

// checkSpec runs one generated spec twice — once under the oracle, once
// plain — and verdicts it: build + run errors, invariant violations, and
// replay-hash divergence all fail.
func checkSpec(i int, base int64) outcome {
	sp := check.NewSpec(check.SpecSeed(base, i))
	fail := func(format string, args ...any) outcome {
		return outcome{line: fmt.Sprintf("%4d FAIL seed=%-19d %s: %s",
			i, sp.Seed, sp.Name, fmt.Sprintf(format, args...))}
	}
	opts := mptcpsim.Options{
		CC: sp.CC, Scheduler: sp.Scheduler, SubflowPaths: sp.Order,
		Seed: sp.RunSeed, Duration: sp.Duration, QueueScale: sp.QueueScale,
		EventLimit: runEventLimit,
	}
	run := func(validate bool) (*mptcpsim.Result, error) {
		nw, err := mptcpsim.LoadNetwork(bytes.NewReader(sp.Scenario))
		if err != nil {
			return nil, fmt.Errorf("build: %w", err)
		}
		o := opts
		o.ValidateInvariants = validate
		return mptcpsim.Run(nw, o)
	}
	checked, err := run(true)
	if err != nil {
		return fail("%v", err)
	}
	if len(checked.Invariants) > 0 {
		return fail("invariants: %s", strings.Join(checked.Invariants, "; "))
	}
	replay, err := run(false)
	if err != nil {
		return fail("replay: %v", err)
	}
	h := checked.Hash()
	if rh := replay.Hash(); rh != h {
		return fail("replay hash %.12s != %.12s (non-deterministic run)", rh, h)
	}
	return outcome{ok: true, hash: h, line: fmt.Sprintf("%4d ok   seed=%-19d hash=%.12s %s",
		i, sp.Seed, h, sp.Name)}
}

// runCheck executes n scenarios across a worker pool and writes the
// deterministic report to w. It returns the number of failed scenarios
// and every scenario's full hash ("" where the scenario failed). The
// report contains no wall-clock or worker-count data, so its bytes are
// identical for a given (n, seed) whatever the pool size.
func runCheck(n int, seed int64, workers int, quiet bool, w io.Writer) (int, []string) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	results := make([]outcome, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = checkSpec(i, seed)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	fmt.Fprintf(w, "simcheck: %d scenarios, base seed %d\n", n, seed)
	failed := 0
	hashes := make([]string, n)
	for i, r := range results {
		if !r.ok {
			failed++
		}
		hashes[i] = r.hash
		if !quiet || !r.ok {
			fmt.Fprintln(w, r.line)
		}
	}
	fmt.Fprintf(w, "simcheck: %d/%d scenarios passed", n-failed, n)
	if failed > 0 {
		fmt.Fprintf(w, ", %d FAILED", failed)
	}
	fmt.Fprintln(w)
	return failed, hashes
}

// diffGolden compares the run's hashes against a recorded corpus and
// writes a deterministic verdict. It returns the number of divergences
// (mismatched hashes plus any shape mismatch).
func diffGolden(g check.Golden, seed int64, hashes []string, w io.Writer) int {
	if g.Seed != seed {
		fmt.Fprintf(w, "golden: corpus was recorded with base seed %d, run used %d\n", g.Seed, seed)
		return 1
	}
	if len(g.Hashes) != len(hashes) {
		fmt.Fprintf(w, "golden: corpus has %d hashes, run produced %d (use -n %d)\n",
			len(g.Hashes), len(hashes), len(g.Hashes))
		return 1
	}
	diverged := 0
	for i, want := range g.Hashes {
		if hashes[i] == want {
			continue
		}
		diverged++
		got := hashes[i]
		if got == "" {
			got = "(scenario failed)"
		}
		fmt.Fprintf(w, "golden: %4d DIVERGED want=%.12s got=%.12s\n", i, want, got)
	}
	if diverged == 0 {
		fmt.Fprintf(w, "golden: %d/%d hashes identical to corpus\n", len(g.Hashes), len(g.Hashes))
	} else {
		fmt.Fprintf(w, "golden: %d/%d hashes DIVERGED from corpus\n", diverged, len(g.Hashes))
	}
	return diverged
}

func main() {
	var (
		n       = flag.Int("n", 200, "number of random scenarios")
		seed    = flag.Int64("seed", 1, "base seed; scenario i uses check.SpecSeed(seed, i)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel worker goroutines")
		quiet   = flag.Bool("q", false, "only print failing scenarios and the summary")
		golden  = flag.String("golden", "", "compare every hash against this recorded corpus; any divergence fails")
		writeG  = flag.String("write-golden", "", "record the corpus of full hashes to this path (all scenarios must pass)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the whole check to this file")
		memProf = flag.String("memprofile", "", "write an allocation profile to this file at exit")
	)
	flag.Parse()
	if *n <= 0 {
		fmt.Fprintln(os.Stderr, "simcheck: -n must be positive")
		os.Exit(2)
	}
	if *golden != "" && *writeG != "" {
		fmt.Fprintln(os.Stderr, "simcheck: -golden and -write-golden are mutually exclusive")
		os.Exit(2)
	}
	var corpus check.Golden
	if *golden != "" {
		f, err := os.Open(*golden)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simcheck:", err)
			os.Exit(2)
		}
		corpus, err = check.LoadGolden(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "simcheck:", err)
			os.Exit(2)
		}
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		os.Exit(2)
	}

	failed, hashes := runCheck(*n, *seed, *workers, *quiet, os.Stdout)

	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "simcheck:", err)
		os.Exit(2)
	}

	if *golden != "" {
		failed += diffGolden(corpus, *seed, hashes, os.Stdout)
	}
	if *writeG != "" {
		if failed > 0 {
			fmt.Fprintln(os.Stderr, "simcheck: refusing to record a golden corpus from a failing run")
			os.Exit(1)
		}
		f, err := os.Create(*writeG)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simcheck:", err)
			os.Exit(1)
		}
		werr := check.WriteGolden(f, check.Golden{Seed: *seed, Hashes: hashes})
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "simcheck:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "simcheck: recorded %d hashes to %s\n", len(hashes), *writeG)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
