// Command sweep runs a parameter grid of experiments in parallel and
// reports per-run optimality gaps against the LP baseline plus aggregate
// statistics per (scenario, perturbation, cc, scheduler) cell.
//
// Without -grid it runs the paper question as a batch: every
// congestion-control algorithm crossed with four subflow orderings on the
// Fig. 1a network (24 runs). A JSON grid spec (see mptcpsim.Grid) selects
// arbitrary axes, including scenario files and link perturbations:
//
//	{
//	  "ccs": ["cubic", "olia"],
//	  "orders": [[2,1,3], [1,2,3]],
//	  "seeds": [1, 2, 3],
//	  "perturbations": [
//	    {"name": "base"},
//	    {"name": "lossy", "loss": 0.005},
//	    {"name": "shallow", "queue_scale": 0.25}
//	  ],
//	  "events": [
//	    {"name": "static"},
//	    {"name": "outage", "events": [
//	      {"at_ms": 2000, "type": "link_down", "a": "s", "b": "v1"}]}
//	  ],
//	  "scenarios": [{"name": "paper", "paper": true},
//	                {"name": "mine", "file": "mine.json"}]
//	}
//
// Output is deterministic for a given grid regardless of -workers: run
// indices follow grid expansion order and contain no wall-clock data.
// -check attaches the invariant oracle to every run; a violation fails
// the run like any other error.
//
// Large grids shard across processes or machines: -shard k/n runs the
// deterministic 1/n slice of the grid (expansion index % n == k) and
// -out writes it as a mergeable artifact; -merge reassembles the n
// artifacts into output byte-identical to the unsharded sweep:
//
//	sweep -grid grid.json -shard 0/4 -q -out shard-0.json   # x4, anywhere
//	sweep -merge -json sweep.json shard-*.json
//
// Grids too large to hold in memory stream instead: -stream appends one
// NDJSON record per run to a run-log as runs complete (fsync'd in
// batches), keeping peak memory flat in grid size, then renders the
// report and output files from the log in a merge-style second pass —
// byte-identical to the in-memory sweep. A killed sweep continues with
// -resume, which skips already-logged runs and rewrites a torn trailing
// record; run-logs are mergeable artifacts, alone or mixed with shard
// JSON files:
//
//	sweep -grid grid.json -stream sweep.ndjson -json sweep.json
//	sweep -grid grid.json -resume sweep.ndjson -json sweep.json  # after a crash
//	sweep -grid grid.json -shard 0/4 -q -stream shard-0.ndjson   # streamed shard
//	sweep -merge -json sweep.json shard-0.ndjson shard-*.json
//
// Examples:
//
//	sweep -workers 8
//	sweep -grid grid.json -csv runs.csv -groups groups.csv -json sweep.json
//	sweep -seeds 5 -duration 8s -quiet -check
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"mptcpsim"
	"mptcpsim/internal/prof"
	"mptcpsim/internal/telemetry"
)

// usageMatrix documents which flag combinations form a mode; flag.Usage
// prints it above the per-flag help.
const usageMatrix = `Modes and supported flag combinations:

  sweep [flags]                  in-memory sweep: report to stdout, plus
                                 -csv/-groups/-json output files
  sweep -shard k/n -out f.json   one grid slice -> mergeable shard artifact
                                 (aggregate outputs refused; use -merge)
  sweep -stream f.ndjson         flat-memory sweep: every run appended to an
                                 NDJSON run-log, report and output files
                                 rendered from the log in a second pass,
                                 byte-identical to the in-memory sweep
  sweep -shard k/n -stream f     one grid slice -> mergeable run-log
                                 (no -out; the run-log is the artifact)
  sweep -resume f.ndjson         continue an interrupted -stream sweep:
                                 logged runs are skipped, a torn trailing
                                 record is truncated and re-executed
  sweep -merge a.json b.ndjson   merge shard artifacts and/or run-logs with
                                 matching grid digests into the full output

-stream and -resume are mutually exclusive, reject -out, and refuse
result retention (library Sweep.Keep): streaming exists to keep peak
memory flat in grid size.

Flags:
`

// pct renders a/b as a percentage (0 when b is 0).
func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// config carries the resolved command line.
type config struct {
	gridPath     string
	workers      int
	seeds        int
	duration     time.Duration
	csvPath      string
	groupsPath   string
	jsonPath     string
	quiet        bool
	check        bool
	shard        string
	outPath      string
	merge        bool
	shardPaths   []string
	telemetry    bool
	progressPath string
	httpAddr     string
	flightDir    string
	eventLimit   uint64
	streamPath   string
	resumePath   string
	workerID     string
	lease        int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.gridPath, "grid", "", "JSON grid spec (default: built-in paper grid, all CCs x 4 orderings)")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "parallel worker goroutines")
	flag.IntVar(&cfg.seeds, "seeds", 1, "seeds 1..n (ignored when the grid file lists seeds)")
	flag.DurationVar(&cfg.duration, "duration", 0, "traffic duration override (0 = grid / 4s default)")
	flag.StringVar(&cfg.csvPath, "csv", "", "write the per-run table to this CSV file")
	flag.StringVar(&cfg.groupsPath, "groups", "", "write the aggregate table to this CSV file")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the full result (runs + groups) to this JSON file")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress per-run progress lines")
	flag.BoolVar(&cfg.quiet, "q", false, "shorthand for -quiet")
	flag.BoolVar(&cfg.check, "check", false, "validate correctness invariants on every run")
	flag.StringVar(&cfg.shard, "shard", "", "run only the k/n slice of the grid (e.g. 0/4) and write a shard artifact")
	flag.StringVar(&cfg.outPath, "out", "", "shard artifact output path (required with -shard)")
	flag.BoolVar(&cfg.merge, "merge", false, "merge the shard artifacts named as arguments instead of sweeping")
	flag.BoolVar(&cfg.telemetry, "telemetry", false, "collect engine counters per run and report the sweep-wide rollup")
	flag.StringVar(&cfg.progressPath, "progress", "", "stream NDJSON progress heartbeats to this file (- = stderr)")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve expvar + pprof debug endpoints on this address (e.g. :6060)")
	flag.StringVar(&cfg.flightDir, "flightdir", "", "dump failed runs' flight-recorder tails to this directory (implies -telemetry)")
	flag.Uint64Var(&cfg.eventLimit, "eventlimit", 0, "abort any run after this many simulation events (0 = no limit)")
	flag.StringVar(&cfg.streamPath, "stream", "", "stream the sweep to this NDJSON run-log and render outputs from it (flat memory)")
	flag.StringVar(&cfg.resumePath, "resume", "", "resume an interrupted -stream sweep from this run-log, skipping logged runs")
	flag.StringVar(&cfg.workerID, "worker-id", "", "stamp this fleet worker id into the run-log header (provenance only)")
	flag.IntVar(&cfg.lease, "lease", 0, "stamp this fleet lease epoch into the run-log header (provenance only)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
	memProf := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "Usage of %s:\n\n", os.Args[0])
		fmt.Fprint(w, usageMatrix)
		flag.PrintDefaults()
	}
	flag.Parse()
	cfg.shardPaths = flag.Args()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	runErr := run(cfg, os.Stdout, os.Stderr)
	if runErr != nil {
		// Report before the profile teardown so a failing teardown cannot
		// mask the sweep's own diagnostic.
		fmt.Fprintln(os.Stderr, "sweep:", runErr)
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
	if runErr != nil {
		os.Exit(1)
	}
}

// run executes the whole command against the given streams: progress and
// timing go to stderr, the deterministic report to stdout.
func run(cfg config, stdout, stderr io.Writer) error {
	if cfg.merge {
		return runMerge(cfg, stdout)
	}
	if len(cfg.shardPaths) > 0 {
		return fmt.Errorf("unexpected arguments %v (shard artifacts are only read with -merge)", cfg.shardPaths)
	}
	if cfg.streamPath != "" && cfg.resumePath != "" {
		return fmt.Errorf("-stream starts a fresh run-log and -resume continues one; pass exactly one")
	}
	if cfg.streamPath != "" || cfg.resumePath != "" {
		if cfg.outPath != "" {
			return fmt.Errorf("-stream/-resume write the run-log as the mergeable artifact; they take no -out")
		}
	}
	grid, err := loadGrid(cfg.gridPath)
	if err != nil {
		return err
	}
	if len(grid.Seeds) == 0 && cfg.seeds > 1 {
		for s := 1; s <= cfg.seeds; s++ {
			grid.Seeds = append(grid.Seeds, int64(s))
		}
	}
	if cfg.duration > 0 {
		grid.DurationMs = float64(cfg.duration) / float64(time.Millisecond)
	}
	if cfg.eventLimit > 0 {
		grid.Base.EventLimit = cfg.eventLimit
	}
	if cfg.flightDir != "" {
		// Flight dumps need the recorder attached to every run.
		cfg.telemetry = true
	}

	sweep := &mptcpsim.Sweep{Workers: cfg.workers, ValidateInvariants: cfg.check,
		Telemetry: cfg.telemetry}
	var progress func(done, total int, r mptcpsim.RunSummary)
	if !cfg.quiet {
		progress = func(done, total int, r mptcpsim.RunSummary) {
			status := fmt.Sprintf("gap %5.1f%%", r.Gap*100)
			if r.Converged {
				status += fmt.Sprintf(", converged at %.2fs", r.ConvergedAtS)
			}
			if r.Err != "" {
				status = "error: " + r.Err
			}
			fmt.Fprintf(stderr, "[%3d/%d] %s/%s/%s cc=%-6s sched=%-10s order=%-7s seed=%d  %s\n",
				done, total, r.Scenario, r.Perturbation, r.Events, r.CC,
				r.Scheduler, r.OrderString(), r.Seed, status)
		}
	}
	meter, closeMeter, err := startMeter(cfg, grid, stderr)
	if err != nil {
		return err
	}
	defer closeMeter()
	if progress != nil || meter != nil {
		sweep.OnResult = func(done, total int, r mptcpsim.RunSummary) {
			if meter != nil {
				meter.Record(r.Err != "")
			}
			if progress != nil {
				progress(done, total, r)
			}
		}
	}
	if cfg.flightDir != "" {
		if err := os.MkdirAll(cfg.flightDir, 0o777); err != nil {
			return err
		}
		sweep.OnFailure = func(r mptcpsim.RunSummary, res *mptcpsim.Result) {
			if res == nil || res.FlightEvents() == 0 {
				return
			}
			path := filepath.Join(cfg.flightDir, fmt.Sprintf("flight-%d.ndjson", r.Index))
			if err := writeFile(path, res.WriteFlightRecorder); err != nil {
				fmt.Fprintf(stderr, "flight dump %s: %v\n", path, err)
				return
			}
			fmt.Fprintf(stderr, "run %d failed; flight tail in %s\n", r.Index, path)
		}
	}
	if cfg.httpAddr != "" {
		addr, closeSrv, err := telemetry.DebugServer(cfg.httpAddr)
		if err != nil {
			return err
		}
		defer closeSrv()
		fmt.Fprintf(stderr, "debug endpoint on http://%s/debug/vars\n", addr)
	}

	if cfg.streamPath != "" || cfg.resumePath != "" {
		return runStream(cfg, grid, sweep, meter, stdout, stderr)
	}
	if cfg.shard != "" {
		return runShard(cfg, grid, sweep, stdout, stderr)
	}
	if cfg.outPath != "" {
		return fmt.Errorf("-out writes a shard artifact and requires -shard k/n")
	}

	start := time.Now()
	res, err := sweep.Run(grid)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "completed %d runs in %v with %d workers\n",
		len(res.Runs), time.Since(start).Round(time.Millisecond), cfg.workers)

	if err := report(res, cfg, stdout); err != nil {
		return err
	}
	if n := res.Errs(); n > 0 {
		return fmt.Errorf("%d of %d runs failed", n, len(res.Runs))
	}
	return nil
}

// startMeter opens the -progress channel and returns the heartbeat meter
// (nil when -progress is unset) plus its teardown. The run total is
// computed by expanding the grid up front — cheap next to the sweep
// itself — so ETAs are exact for both full and sharded runs. With -http,
// Activate additionally publishes the meter under /debug/vars.
func startMeter(cfg config, grid *mptcpsim.Grid, stderr io.Writer) (*telemetry.Meter, func(), error) {
	if cfg.progressPath == "" {
		return nil, func() {}, nil
	}
	specs, err := grid.Expand()
	if err != nil {
		return nil, nil, err
	}
	total := len(specs)
	if cfg.shard != "" {
		shard, err := mptcpsim.ParseShard(cfg.shard)
		if err != nil {
			return nil, nil, err
		}
		total = 0
		for _, sp := range specs {
			if sp.Index%shard.N == shard.K {
				total++
			}
		}
	}
	w := stderr
	var f *os.File
	if cfg.progressPath != "-" {
		f, err = os.Create(cfg.progressPath)
		if err != nil {
			return nil, nil, err
		}
		w = f
	}
	meter := telemetry.NewMeter(w, total, cfg.workers, time.Second)
	meter.Activate()
	teardown := func() {
		meter.Close()
		if f != nil {
			f.Close()
		}
	}
	return meter, teardown, nil
}

// runShard executes one k/n slice of the grid and writes the mergeable
// shard artifact. Aggregate outputs are refused here — groups and the
// overall gap describe the whole grid, so they are written by -merge (or
// an unsharded run), never from one shard's subset.
func runShard(cfg config, grid *mptcpsim.Grid, sweep *mptcpsim.Sweep, stdout, stderr io.Writer) error {
	shard, err := mptcpsim.ParseShard(cfg.shard)
	if err != nil {
		return err
	}
	if cfg.outPath == "" {
		return fmt.Errorf("-shard requires -out to name the shard artifact")
	}
	if cfg.csvPath != "" || cfg.groupsPath != "" || cfg.jsonPath != "" {
		return fmt.Errorf("-csv/-groups/-json aggregate the whole grid; write them from -merge, not a shard")
	}

	start := time.Now()
	res, err := sweep.RunShard(grid, shard)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "shard %s: completed %d of %d runs in %v with %d workers\n",
		shard, len(res.Runs), res.Total, time.Since(start).Round(time.Millisecond), cfg.workers)
	if err := writeFile(cfg.outPath, res.WriteJSON); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "wrote", cfg.outPath)
	if n := res.Errs(); n > 0 {
		return fmt.Errorf("%d of %d shard runs failed", n, len(res.Runs))
	}
	return nil
}

// runStream executes the sweep through the flat-memory run-log path: every
// completed run is appended to the NDJSON log (and nothing is retained in
// memory), then the report and output files are rendered from the log in a
// merge-style second pass — byte-identical to the in-memory sweep. With
// -resume the log's already-recorded runs are skipped and a torn trailing
// record (the signature of a killed writer) is truncated and re-executed.
func runStream(cfg config, grid *mptcpsim.Grid, sweep *mptcpsim.Sweep, meter *telemetry.Meter, stdout, stderr io.Writer) error {
	path := cfg.streamPath
	resume := path == ""
	if resume {
		path = cfg.resumePath
	}
	shard := mptcpsim.Shard{K: 0, N: 1}
	if cfg.shard != "" {
		var err error
		shard, err = mptcpsim.ParseShard(cfg.shard)
		if err != nil {
			return err
		}
		if cfg.csvPath != "" || cfg.groupsPath != "" || cfg.jsonPath != "" {
			return fmt.Errorf("-csv/-groups/-json aggregate the whole grid; write them from -merge, not a shard")
		}
	}
	digest, total, err := sweep.Describe(grid)
	if err != nil {
		return err
	}
	header := mptcpsim.RunLogHeader{GridDigest: digest, K: shard.K, N: shard.N, Total: total,
		Worker: cfg.workerID, Lease: cfg.lease}

	f, skip, prevErrs, onDisk, err := openRunLog(path, header, resume, stderr)
	if err != nil {
		return err
	}
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	sink, err := mptcpsim.NewLogSink(f, header, mptcpsim.LogOptions{Sync: f.Sync, Resume: onDisk})
	if err != nil {
		return err
	}
	chain := mptcpsim.RunSink(sink)
	roll := &mptcpsim.RollupSink{}
	if cfg.telemetry {
		chain = mptcpsim.MultiSink(sink, roll)
	}
	if meter != nil && len(skip) > 0 {
		meter.Resume(len(skip), prevErrs)
	}

	start := time.Now()
	spec := mptcpsim.StreamSpec{Shard: shard}
	if len(skip) > 0 {
		spec.Skip = func(index int) bool { return skip[index] }
	}
	if err := sweep.Stream(grid, spec, chain); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	f = nil

	// Read the committed log back: the second pass trusts only what is on
	// disk, so the rendered outputs are exactly what a later -merge of this
	// log would produce.
	log, err := readRunLogFile(path)
	if err != nil {
		return err
	}
	if log.Torn() {
		return fmt.Errorf("%s: torn trailing record after a completed sweep (is something else writing it?)", path)
	}
	fmt.Fprintf(stderr, "streamed %d runs (%d resumed from log) in %v with %d workers\n",
		len(log.Runs)-len(skip), len(skip), time.Since(start).Round(time.Millisecond), cfg.workers)

	if shard.N > 1 {
		fmt.Fprintln(stdout, "wrote", path)
		if n := log.Errs(); n > 0 {
			return fmt.Errorf("%d of %d shard runs failed", n, len(log.Runs))
		}
		return nil
	}
	res, err := mptcpsim.MergeShards(log.ShardResult())
	if err != nil {
		return err
	}
	if cfg.telemetry {
		if len(skip) > 0 {
			// The rollup covers only this execution's runs; attaching it
			// after a resume would report a partial grid as the whole.
			fmt.Fprintln(stderr, "telemetry rollup omitted: resume re-executed only the unlogged runs")
		} else {
			res.Telemetry = &roll.Rollup
		}
	}
	if err := report(res, cfg, stdout); err != nil {
		return err
	}
	if n := res.Errs(); n > 0 {
		return fmt.Errorf("%d of %d runs failed", n, len(res.Runs))
	}
	return nil
}

// openRunLog opens the run-log file for the sweep. A fresh -stream
// truncates; -resume validates an existing log against the current grid
// digest and shard shape, cuts off a torn trailing record, and returns the
// logged indices as the skip set plus the failed-run count already on
// disk. onDisk reports whether a committed header is already present (so
// the sink must not write a second one).
func openRunLog(path string, header mptcpsim.RunLogHeader, resume bool, stderr io.Writer) (f *os.File, skip map[int]bool, prevErrs int, onDisk bool, err error) {
	if !resume {
		f, err = os.Create(path)
		return f, nil, 0, false, err
	}
	f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, nil, 0, false, err
	}
	fail := func(e error) (*os.File, map[int]bool, int, bool, error) {
		f.Close()
		return nil, nil, 0, false, e
	}
	st, err := f.Stat()
	if err != nil {
		return fail(err)
	}
	if st.Size() == 0 {
		// Nothing to resume (first attempt died before the header, or the
		// file is new): behave exactly like a fresh -stream.
		return f, nil, 0, false, nil
	}
	log, err := mptcpsim.ReadRunLog(f)
	if errors.Is(err, mptcpsim.ErrHeaderTorn) {
		// The writer died inside the header line: the log records nothing,
		// so there is nothing to resume. Start the shard over rather than
		// refusing — that is exactly what -resume is for after a crash.
		if err := f.Truncate(0); err != nil {
			return fail(err)
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "resume: %s: header torn, nothing to resume; re-executing the full shard\n", path)
		return f, nil, 0, false, nil
	}
	if err != nil {
		return fail(fmt.Errorf("%s: %w", path, err))
	}
	if log.Header.GridDigest != header.GridDigest {
		return fail(fmt.Errorf("%s: run-log grid digest %.12s does not match this sweep's %.12s (different -grid, -check or library version?); resume with the original settings or -stream a fresh log",
			path, log.Header.GridDigest, header.GridDigest))
	}
	if log.Header.K != header.K || log.Header.N != header.N || log.Header.Total != header.Total {
		return fail(fmt.Errorf("%s: run-log is shard %d/%d of %d runs, this sweep is shard %d/%d of %d; resume with the original -shard",
			path, log.Header.K, log.Header.N, log.Header.Total, header.K, header.N, header.Total))
	}
	if log.Torn() {
		fmt.Fprintf(stderr, "resume: truncating torn trailing record at byte %d of %s; its run will be re-executed\n",
			log.TornTail, path)
		if err := f.Truncate(log.TornTail); err != nil {
			return fail(err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		return fail(err)
	}
	return f, log.Indices(), log.Errs(), true, nil
}

// readRunLogFile parses the run-log at path.
func readRunLogFile(path string) (*mptcpsim.RunLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	log, err := mptcpsim.ReadRunLog(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return log, nil
}

// runMerge reassembles shard artifacts — JSON files from -out, NDJSON
// run-logs from -stream, or a mix — into the unsharded sweep result and
// renders the usual report and output files from it.
func runMerge(cfg config, stdout io.Writer) error {
	if cfg.gridPath != "" || cfg.shard != "" || cfg.outPath != "" || cfg.streamPath != "" || cfg.resumePath != "" {
		return fmt.Errorf("-merge reads shard artifacts; it takes none of -grid/-shard/-out/-stream/-resume")
	}
	if len(cfg.shardPaths) == 0 {
		return fmt.Errorf("-merge needs at least one shard artifact argument")
	}
	shards := make([]*mptcpsim.ShardResult, len(cfg.shardPaths))
	for i, path := range cfg.shardPaths {
		sr, err := loadArtifact(path)
		if err != nil {
			return err
		}
		shards[i] = sr
	}
	res, err := mptcpsim.MergeShards(shards...)
	if err != nil {
		return err
	}
	if err := report(res, cfg, stdout); err != nil {
		return err
	}
	if n := res.Errs(); n > 0 {
		return fmt.Errorf("%d of %d runs failed", n, len(res.Runs))
	}
	return nil
}

// loadArtifact reads one -merge input in either artifact format, sniffed
// from the first line: a run-log header carries the run_log version field,
// a shard JSON artifact never does. Both converge on ShardResult, so mixed
// inputs flow through the same validated merge path.
func loadArtifact(path string) (*mptcpsim.ShardResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	line, err := br.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	var probe struct {
		Version int `json:"run_log"`
	}
	if json.Unmarshal(line, &probe) == nil && probe.Version > 0 {
		log, err := mptcpsim.ReadRunLog(io.MultiReader(bytes.NewReader(line), br))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if log.Torn() {
			return nil, fmt.Errorf("%s: torn trailing record at byte %d — the sweep was interrupted; finish it with -resume %s before merging",
				path, log.TornTail, path)
		}
		return log.ShardResult(), nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	sr, err := mptcpsim.LoadShard(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sr, nil
}

// report renders the aggregate table and the best run to stdout and
// writes the requested output files.
func report(res *mptcpsim.SweepResult, cfg config, stdout io.Writer) error {
	if err := res.Report(stdout); err != nil {
		return err
	}
	// The rollup is pure simulation counts (no wall clock), so it belongs
	// in the deterministic report.
	if t := res.Telemetry; t != nil {
		fmt.Fprintf(stdout, "\ntelemetry: %d runs, %d events fired (%d scheduled, %.1f%% recycled), heap peak %d\n",
			t.Runs, t.EventsFired, t.EventsScheduled,
			pct(t.Recycled, t.EventsScheduled), t.HeapPeak)
		fmt.Fprintf(stdout, "telemetry: %d packets tx (%d offered, %d dropped), %d RTOs, %d fast recoveries, %d sched picks\n",
			t.TxPackets, t.Offered, t.Drops, t.RTOs, t.FastRecoveries, t.SchedPicks)
	}
	if idx := res.SortRunsByGap(); len(idx) > 0 {
		best := res.Runs[idx[0]]
		fmt.Fprintf(stdout, "\nbest run: %s/%s cc=%s order=%s seed=%d at %.1f of %.1f Mbps (gap %.1f%%)\n",
			best.Scenario, best.Perturbation, best.CC, best.OrderString(),
			best.Seed, best.TotalMbps, best.OptimumMbps, best.Gap*100)
	}

	for _, out := range []struct {
		path string
		fn   func(io.Writer) error
	}{
		{cfg.csvPath, res.WriteCSV},
		{cfg.groupsPath, res.WriteGroupsCSV},
		{cfg.jsonPath, res.WriteJSON},
	} {
		if out.path == "" {
			continue
		}
		if err := writeFile(out.path, out.fn); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", out.path)
	}
	return nil
}

// loadGrid reads the grid spec and resolves scenario file references
// relative to the spec's directory. An empty path yields the default
// paper grid: every registered CC crossed with four subflow orderings.
func loadGrid(path string) (*mptcpsim.Grid, error) {
	if path == "" {
		return &mptcpsim.Grid{
			CCs:    []string{"lia", "olia", "balia", "cubic", "reno", "wvegas"},
			Orders: [][]int{{2, 1, 3}, {1, 2, 3}, {3, 1, 2}, {1, 3, 2}},
		}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	grid, err := mptcpsim.LoadGrid(f)
	if err != nil {
		return nil, err
	}
	for i, sc := range grid.Scenarios {
		if sc.File == "" || sc.Scenario != nil {
			continue
		}
		ref := sc.File
		if !filepath.IsAbs(ref) {
			ref = filepath.Join(filepath.Dir(path), ref)
		}
		sf, err := os.Open(ref)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		inline, err := mptcpsim.LoadScenario(sf)
		sf.Close()
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		// Expand build-validates every scenario, so decoding suffices here.
		// The file reference is now resolved; clear it so Expand's
		// exactly-one-selector check sees a plain inline scenario.
		grid.Scenarios[i].Scenario = inline
		grid.Scenarios[i].File = ""
		// Default to the path as written, not its basename: two files
		// named net.json in different directories must stay distinct.
		if grid.Scenarios[i].Name == "" {
			grid.Scenarios[i].Name = sc.File
		}
	}
	return grid, nil
}

func writeFile(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
