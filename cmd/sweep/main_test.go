package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mptcpsim"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestDefaultGridShape(t *testing.T) {
	grid, err := loadGrid("")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 24 {
		t.Fatalf("default grid expands to %d runs, want 24 (6 CCs x 4 orders)", len(specs))
	}
}

func TestLoadGridResolvesFileReferences(t *testing.T) {
	dir := t.TempDir()
	scenario, err := json.Marshal(mptcpsim.PaperScenario())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "net.json"), scenario, 0o644); err != nil {
		t.Fatal(err)
	}
	gridJSON := `{"scenarios": [{"file": "net.json"}], "ccs": ["cubic"]}`
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(gridJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	grid, err := loadGrid(gridPath)
	if err != nil {
		t.Fatal(err)
	}
	if grid.Scenarios[0].Scenario == nil || grid.Scenarios[0].File != "" {
		t.Fatalf("file reference not resolved inline: %+v", grid.Scenarios[0])
	}
	if grid.Scenarios[0].Name != "net.json" {
		t.Fatalf("scenario name = %q, want the path as written", grid.Scenarios[0].Name)
	}
	if _, err := grid.Expand(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadGridMissingFile(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(`{"scenarios":[{"file":"absent.json"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadGrid(gridPath); err == nil {
		t.Fatal("missing scenario file not reported")
	}
}

// goldenGrid is a tiny deterministic sweep the golden files are built
// from: 300 ms runs, one static and one dynamic cell.
const goldenGrid = `{
  "ccs": ["cubic", "olia"],
  "orders": [[2, 1, 3]],
  "duration_ms": 300,
  "events": [
    {"name": "static"},
    {"name": "outage", "events": [
      {"at_ms": 100, "type": "link_down", "a": "s", "b": "v1"},
      {"at_ms": 200, "type": "link_up", "a": "s", "b": "v1"}]}
  ]
}`

// TestRunGolden executes the whole command against the golden grid and
// compares every output byte for byte: the human report on stdout, the
// per-run CSV, the groups CSV and the JSON document. Regenerate with
// go test ./cmd/sweep -update (and review the diff as a behaviour
// change).
func TestRunGolden(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(goldenGrid), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		gridPath:   gridPath,
		workers:    4,
		quiet:      true,
		check:      true,
		csvPath:    filepath.Join(dir, "runs.csv"),
		groupsPath: filepath.Join(dir, "groups.csv"),
		jsonPath:   filepath.Join(dir, "sweep.json"),
	}
	var stdout, stderr bytes.Buffer
	if err := run(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	// The report references the temp paths; strip the "wrote ..." lines
	// before comparing.
	var reportLines []string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if strings.HasPrefix(line, "wrote ") {
			continue
		}
		reportLines = append(reportLines, line)
	}
	compareGolden(t, "report.txt", []byte(strings.Join(reportLines, "\n")))
	for _, name := range []string{"runs.csv", "groups.csv", "sweep.json"} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		compareGolden(t, name, got)
	}

	// Shape checks independent of the golden bytes: every CSV row parses
	// and carries the full column set.
	f, err := os.Open(filepath.Join(dir, "runs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // header + 2 CCs x 2 event sets
		t.Fatalf("runs.csv has %d rows, want 5", len(rows))
	}
	wantHeader := "index,scenario,perturbation,events,cc,scheduler,order,seed"
	if got := strings.Join(rows[0][:8], ","); got != wantHeader {
		t.Fatalf("runs.csv header starts %q, want %q", got, wantHeader)
	}
}

// TestCIShardGridShape pins the CI shard-matrix workload: the grid the
// workflow fans across 4 shards must stay a valid, >= 500-run sweep over
// every CC, every scheduler and both event sets — the scale at which the
// distributed-determinism contract is enforced on every PR.
func TestCIShardGridShape(t *testing.T) {
	grid, err := loadGrid(filepath.Join("testdata", "ci-shard-grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 500 {
		t.Fatalf("CI shard grid expands to %d runs, want >= 500", len(specs))
	}
	if len(grid.CCs) != 6 || len(grid.Schedulers) != 3 || len(grid.Events) != 2 || len(grid.Seeds) < 2 {
		t.Fatalf("CI shard grid lost an axis: %d CCs, %d schedulers, %d event sets, %d seeds",
			len(grid.CCs), len(grid.Schedulers), len(grid.Events), len(grid.Seeds))
	}
}

// TestRunShardMergeGolden drives the CLI seam through shard and merge
// mode: two shards of the golden grid (artifacts golden-checked for
// schema stability) merged back must reproduce the exact golden report,
// CSVs and JSON of the unsharded run — the CLI half of the
// distributed-determinism contract TestShardMergeByteIdentical proves at
// the library layer.
func TestRunShardMergeGolden(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(goldenGrid), 0o644); err != nil {
		t.Fatal(err)
	}

	var shardPaths []string
	for k := 0; k < 2; k++ {
		cfg := config{
			gridPath: gridPath,
			workers:  k + 1, // artifacts must not depend on worker count
			quiet:    true,
			check:    true,
			shard:    fmt.Sprintf("%d/2", k),
			outPath:  filepath.Join(dir, fmt.Sprintf("shard-%d.json", k)),
		}
		var stdout, stderr bytes.Buffer
		if err := run(cfg, &stdout, &stderr); err != nil {
			t.Fatalf("shard %d: %v\nstderr: %s", k, err, stderr.String())
		}
		got, err := os.ReadFile(cfg.outPath)
		if err != nil {
			t.Fatal(err)
		}
		compareGolden(t, fmt.Sprintf("shard-%d.json", k), got)
		shardPaths = append(shardPaths, cfg.outPath)
	}

	cfg := config{
		merge:      true,
		shardPaths: shardPaths,
		csvPath:    filepath.Join(dir, "runs.csv"),
		groupsPath: filepath.Join(dir, "groups.csv"),
		jsonPath:   filepath.Join(dir, "sweep.json"),
	}
	var stdout, stderr bytes.Buffer
	if err := run(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("merge: %v\nstderr: %s", err, stderr.String())
	}
	var reportLines []string
	for _, line := range strings.Split(stdout.String(), "\n") {
		if strings.HasPrefix(line, "wrote ") {
			continue
		}
		reportLines = append(reportLines, line)
	}
	// The merged outputs compare against the same golden files as the
	// unsharded TestRunGolden — byte-identical by contract.
	compareGolden(t, "report.txt", []byte(strings.Join(reportLines, "\n")))
	for _, name := range []string{"runs.csv", "groups.csv", "sweep.json"} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		compareGolden(t, name, got)
	}
}

// TestRunTelemetryAndProgress drives the observability flag surface on a
// passing sweep: -telemetry adds the rollup lines to the report without
// touching the golden outputs, and -progress streams NDJSON heartbeats
// whose final frame accounts for every run.
func TestRunTelemetryAndProgress(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(goldenGrid), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		gridPath:     gridPath,
		workers:      4,
		quiet:        true,
		check:        true,
		telemetry:    true,
		progressPath: filepath.Join(dir, "progress.ndjson"),
		csvPath:      filepath.Join(dir, "runs.csv"),
	}
	var stdout, stderr bytes.Buffer
	if err := run(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}

	// The rollup rides below the report; the deterministic outputs above it
	// (and the CSV) must still match the telemetry-off golden files.
	report := stdout.String()
	if !strings.Contains(report, "telemetry:") || !strings.Contains(report, "events fired") {
		t.Fatalf("report carries no telemetry rollup:\n%s", report)
	}
	var reportLines []string
	for _, line := range strings.Split(report, "\n") {
		if strings.HasPrefix(line, "wrote ") {
			continue
		}
		if strings.HasPrefix(line, "telemetry:") {
			// Drop the blank separator that introduces the rollup block too.
			if n := len(reportLines); n > 0 && reportLines[n-1] == "" {
				reportLines = reportLines[:n-1]
			}
			continue
		}
		reportLines = append(reportLines, line)
	}
	compareGolden(t, "report.txt", []byte(strings.Join(reportLines, "\n")))
	got, err := os.ReadFile(cfg.csvPath)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "runs.csv", got)

	raw, err := os.ReadFile(cfg.progressPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("progress file is empty")
	}
	prevDone := -1
	var hb struct {
		Done    int     `json:"done"`
		Total   int     `json:"total"`
		Failed  int     `json:"failed"`
		RunsPS  float64 `json:"runs_per_s"`
		ETA     float64 `json:"eta_s"`
		Workers int     `json:"workers"`
	}
	for i, line := range lines {
		if err := json.Unmarshal([]byte(line), &hb); err != nil {
			t.Fatalf("heartbeat %d: %v: %s", i, err, line)
		}
		if hb.Done < prevDone {
			t.Fatalf("heartbeat %d: done went backwards (%d after %d)", i, hb.Done, prevDone)
		}
		prevDone = hb.Done
	}
	if hb.Done != 4 || hb.Total != 4 || hb.Failed != 0 {
		t.Fatalf("final heartbeat = %+v, want done=4 total=4 failed=0", hb)
	}
	if hb.Workers != 4 || hb.ETA != 0 {
		t.Fatalf("final heartbeat = %+v, want workers=4 eta_s=0", hb)
	}
}

// TestRunFlightDumps aborts every run with a tiny event limit and checks
// -flightdir captures a parseable NDJSON tail per failed run (implying
// -telemetry without the flag being set).
func TestRunFlightDumps(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(goldenGrid), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := config{
		gridPath:   gridPath,
		workers:    2,
		quiet:      true,
		flightDir:  filepath.Join(dir, "flight"),
		eventLimit: 5000,
	}
	var stdout, stderr bytes.Buffer
	err := run(cfg, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "runs failed") {
		t.Fatalf("event-limited sweep did not fail: %v", err)
	}
	if !strings.Contains(stderr.String(), "flight tail in") {
		t.Fatalf("stderr never announced a flight dump:\n%s", stderr.String())
	}

	dumps, err := filepath.Glob(filepath.Join(cfg.flightDir, "flight-*.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 4 {
		t.Fatalf("%d flight dumps, want one per aborted run (4): %v", len(dumps), dumps)
	}
	for _, path := range dumps {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
		if len(lines) == 0 || lines[0] == "" {
			t.Fatalf("%s is empty", path)
		}
		var ev struct {
			Kind  string `json:"kind"`
			Where string `json:"where"`
		}
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &ev); err != nil {
			t.Fatalf("%s tail: %v", path, err)
		}
		if ev.Kind == "" || ev.Where == "" {
			t.Fatalf("%s tail does not name the event/location: %s", path, lines[len(lines)-1])
		}
	}
}

// TestRunFlagDiagnostics exercises the fail-fast checks around the
// shard/merge flag surface.
func TestRunFlagDiagnostics(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(goldenGrid), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct {
		cfg  config
		want string
	}{
		"shard without out": {
			config{gridPath: gridPath, shard: "0/2", quiet: true},
			"-out",
		},
		"shard with aggregate output": {
			config{gridPath: gridPath, shard: "0/2", outPath: filepath.Join(dir, "s.json"),
				jsonPath: filepath.Join(dir, "x.json"), quiet: true},
			"-merge",
		},
		"bad shard spec": {
			config{gridPath: gridPath, shard: "2/2", outPath: filepath.Join(dir, "s.json"), quiet: true},
			"out of range",
		},
		"out without shard": {
			config{gridPath: gridPath, outPath: filepath.Join(dir, "s.json"), quiet: true},
			"-shard",
		},
		"merge without artifacts": {
			config{merge: true},
			"at least one shard artifact",
		},
		"merge with grid": {
			config{merge: true, gridPath: gridPath, shardPaths: []string{"x.json"}},
			"-grid",
		},
		"merge with missing file": {
			config{merge: true, shardPaths: []string{filepath.Join(dir, "absent.json")}},
			"absent.json",
		},
		"stray arguments": {
			config{gridPath: gridPath, shardPaths: []string{"stray.json"}, quiet: true},
			"unexpected arguments",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.cfg, &stdout, &stderr)
			if err == nil {
				t.Fatal("run accepted a broken flag combination")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, want)
	}
}
