package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mptcpsim"
)

// writeGoldenGrid materialises the shared golden grid spec in a temp dir.
func writeGoldenGrid(t *testing.T) (dir, gridPath string) {
	t.Helper()
	dir = t.TempDir()
	gridPath = filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(goldenGrid), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, gridPath
}

// reportBody strips the path-bearing "wrote ..." lines from a report.
func reportBody(stdout string) []byte {
	var lines []string
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "wrote ") {
			continue
		}
		lines = append(lines, line)
	}
	return []byte(strings.Join(lines, "\n"))
}

// compareOutputsGolden checks the four output formats against the same
// golden files the in-memory sweep is pinned to.
func compareOutputsGolden(t *testing.T, dir, stdout string) {
	t.Helper()
	compareGolden(t, "report.txt", reportBody(stdout))
	for _, name := range []string{"runs.csv", "groups.csv", "sweep.json"} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		compareGolden(t, name, got)
	}
}

// TestRunStreamGolden drives the flat-memory pipeline end to end at two
// worker counts: the report and all three output files, rendered from the
// run-log in the second pass, must match the in-memory sweep's golden
// files byte for byte.
func TestRunStreamGolden(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir, gridPath := writeGoldenGrid(t)
			cfg := config{
				gridPath:   gridPath,
				workers:    workers,
				quiet:      true,
				check:      true,
				streamPath: filepath.Join(dir, "sweep.ndjson"),
				csvPath:    filepath.Join(dir, "runs.csv"),
				groupsPath: filepath.Join(dir, "groups.csv"),
				jsonPath:   filepath.Join(dir, "sweep.json"),
			}
			var stdout, stderr bytes.Buffer
			if err := run(cfg, &stdout, &stderr); err != nil {
				t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
			}
			compareOutputsGolden(t, dir, stdout.String())
		})
	}
}

// truncateMidRecord cuts the run-log a few bytes into its final record and
// returns how many committed records survive.
func truncateMidRecord(t *testing.T, path string) int {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(raw, "\n")
	lastStart := bytes.LastIndexByte(trimmed, '\n') + 1
	if err := os.WriteFile(path, raw[:lastStart+3], 0o644); err != nil {
		t.Fatal(err)
	}
	return bytes.Count(raw[:lastStart], []byte("\n")) - 1 // minus the header
}

// TestRunResumeAfterTruncation is the crash-resume property at the CLI
// seam: kill a streamed sweep by cutting its log mid-record, resume it,
// and the command must announce the torn tail, re-execute only what is
// missing, leave an exactly-once log, and render outputs byte-identical
// to the golden (in-memory) sweep.
func TestRunResumeAfterTruncation(t *testing.T) {
	dir, gridPath := writeGoldenGrid(t)
	logPath := filepath.Join(dir, "sweep.ndjson")

	first := config{gridPath: gridPath, workers: 2, quiet: true, check: true, streamPath: logPath}
	var stdout, stderr bytes.Buffer
	if err := run(first, &stdout, &stderr); err != nil {
		t.Fatalf("stream: %v\nstderr: %s", err, stderr.String())
	}
	committed := truncateMidRecord(t, logPath)
	if committed >= 4 {
		t.Fatalf("truncation left %d committed records, want < 4", committed)
	}

	second := config{
		gridPath:   gridPath,
		workers:    2,
		quiet:      true,
		check:      true,
		resumePath: logPath,
		csvPath:    filepath.Join(dir, "runs.csv"),
		groupsPath: filepath.Join(dir, "groups.csv"),
		jsonPath:   filepath.Join(dir, "sweep.json"),
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(second, &stdout, &stderr); err != nil {
		t.Fatalf("resume: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "torn trailing record") {
		t.Fatalf("resume never announced the torn tail:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), fmt.Sprintf("(%d resumed from log)", committed)) {
		t.Fatalf("resume did not credit the %d committed records:\n%s", committed, stderr.String())
	}

	f, err := os.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	log, err := mptcpsim.ReadRunLog(f)
	if err != nil {
		t.Fatal(err)
	}
	if log.Torn() || len(log.Runs) != 4 || len(log.Indices()) != 4 {
		t.Fatalf("resumed log: torn=%v records=%d indices=%d, want clean 4/4",
			log.Torn(), len(log.Runs), len(log.Indices()))
	}
	compareOutputsGolden(t, dir, stdout.String())
}

// TestRunResumeTornHeader pins the header-boundary crash case at the CLI
// seam: a worker killed inside the run-log's header line leaves a file
// with no committed header, and -resume must announce there is nothing to
// resume, re-execute the full shard, and still render outputs
// byte-identical to the golden sweep — not refuse with an empty-log error.
func TestRunResumeTornHeader(t *testing.T) {
	dir, gridPath := writeGoldenGrid(t)
	logPath := filepath.Join(dir, "sweep.ndjson")
	// A prefix of a genuine header with no committing newline — the bytes a
	// writer killed mid-header leaves behind.
	if err := os.WriteFile(logPath, []byte(`{"run_log":1,"grid_digest":"ab`), 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := config{
		gridPath:   gridPath,
		workers:    2,
		quiet:      true,
		check:      true,
		resumePath: logPath,
		csvPath:    filepath.Join(dir, "runs.csv"),
		groupsPath: filepath.Join(dir, "groups.csv"),
		jsonPath:   filepath.Join(dir, "sweep.json"),
	}
	var stdout, stderr bytes.Buffer
	if err := run(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("resume over a torn header: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "nothing to resume") {
		t.Fatalf("resume never explained the torn header:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "(0 resumed from log)") {
		t.Fatalf("resume credited runs from a log that committed none:\n%s", stderr.String())
	}
	compareOutputsGolden(t, dir, stdout.String())
}

// TestRunResumeProgress checks the progress meter across a resume: the
// final heartbeat must account for the whole grid, not just the runs this
// execution performed.
func TestRunResumeProgress(t *testing.T) {
	dir, gridPath := writeGoldenGrid(t)
	logPath := filepath.Join(dir, "sweep.ndjson")
	var stdout, stderr bytes.Buffer
	if err := run(config{gridPath: gridPath, workers: 2, quiet: true, streamPath: logPath},
		&stdout, &stderr); err != nil {
		t.Fatalf("stream: %v\nstderr: %s", err, stderr.String())
	}
	truncateMidRecord(t, logPath)

	cfg := config{
		gridPath:     gridPath,
		workers:      2,
		quiet:        true,
		resumePath:   logPath,
		progressPath: filepath.Join(dir, "progress.ndjson"),
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("resume: %v\nstderr: %s", err, stderr.String())
	}
	raw, err := os.ReadFile(cfg.progressPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	var hb struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &hb); err != nil {
		t.Fatalf("final heartbeat: %v: %s", err, lines[len(lines)-1])
	}
	if hb.Done != 4 || hb.Total != 4 {
		t.Fatalf("final heartbeat done/total = %d/%d, want 4/4 across the resume", hb.Done, hb.Total)
	}
}

// TestRunStreamShardMixedMerge splits the golden grid into one streamed
// shard (NDJSON run-log) and one classic shard artifact (JSON), then
// merges the mix — the output must match the unsharded goldens exactly.
func TestRunStreamShardMixedMerge(t *testing.T) {
	dir, gridPath := writeGoldenGrid(t)

	streamed := config{gridPath: gridPath, workers: 1, quiet: true, check: true,
		shard: "0/2", streamPath: filepath.Join(dir, "shard-0.ndjson")}
	var stdout, stderr bytes.Buffer
	if err := run(streamed, &stdout, &stderr); err != nil {
		t.Fatalf("streamed shard: %v\nstderr: %s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote "+streamed.streamPath) {
		t.Fatalf("streamed shard never announced its artifact:\n%s", stdout.String())
	}

	classic := config{gridPath: gridPath, workers: 2, quiet: true, check: true,
		shard: "1/2", outPath: filepath.Join(dir, "shard-1.json")}
	stdout.Reset()
	stderr.Reset()
	if err := run(classic, &stdout, &stderr); err != nil {
		t.Fatalf("classic shard: %v\nstderr: %s", err, stderr.String())
	}

	merge := config{
		merge:      true,
		shardPaths: []string{streamed.streamPath, classic.outPath},
		csvPath:    filepath.Join(dir, "runs.csv"),
		groupsPath: filepath.Join(dir, "groups.csv"),
		jsonPath:   filepath.Join(dir, "sweep.json"),
	}
	stdout.Reset()
	stderr.Reset()
	if err := run(merge, &stdout, &stderr); err != nil {
		t.Fatalf("mixed merge: %v\nstderr: %s", err, stderr.String())
	}
	compareOutputsGolden(t, dir, stdout.String())
}

// TestRunStreamFlagDiagnostics exercises the fail-fast checks around the
// stream/resume flag surface, including the resume-against-the-wrong-grid
// guard and merging a torn log.
func TestRunStreamFlagDiagnostics(t *testing.T) {
	dir, gridPath := writeGoldenGrid(t)

	// A committed log for the default paper grid: resuming it against the
	// golden grid must refuse with a digest diagnostic, and a torn copy
	// must refuse to merge.
	logPath := filepath.Join(dir, "other.ndjson")
	var stdout, stderr bytes.Buffer
	if err := run(config{workers: 2, quiet: true, duration: 100 * 1e6, streamPath: logPath},
		&stdout, &stderr); err != nil {
		t.Fatalf("seed log: %v\nstderr: %s", err, stderr.String())
	}
	tornPath := filepath.Join(dir, "torn.ndjson")
	raw, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	cases := map[string]struct {
		cfg  config
		want string
	}{
		"stream with resume": {
			config{gridPath: gridPath, streamPath: "a.ndjson", resumePath: "b.ndjson", quiet: true},
			"exactly one",
		},
		"stream with out": {
			config{gridPath: gridPath, streamPath: "a.ndjson", outPath: "a.json", quiet: true},
			"no -out",
		},
		"streamed shard with aggregate output": {
			config{gridPath: gridPath, shard: "0/2", streamPath: filepath.Join(dir, "s.ndjson"),
				jsonPath: filepath.Join(dir, "x.json"), quiet: true},
			"-merge",
		},
		"merge with stream": {
			config{merge: true, streamPath: "a.ndjson", shardPaths: []string{"x.json"}},
			"-stream",
		},
		"resume against different grid": {
			config{gridPath: gridPath, resumePath: logPath, quiet: true},
			"digest",
		},
		"merge of torn log": {
			config{merge: true, shardPaths: []string{tornPath}},
			"-resume",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(tc.cfg, &stdout, &stderr)
			if err == nil {
				t.Fatal("run accepted a broken flag combination")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
