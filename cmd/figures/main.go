// Command figures regenerates every table and figure of the paper's
// evaluation (and this reproduction's ablations) into an output directory:
//
//	fig1c_lp.txt        the optimisation problem and analytic solutions (E2)
//	fig2a_cubic.csv/txt CUBIC rates, 100 ms bins, 0-4 s (E3)
//	fig2b_olia.csv/txt  OLIA rates, 100 ms bins, 0-4 s (E4)
//	fig2c_fine.csv/txt  early sawtooth, 10 ms bins, 0-0.5 s (E5)
//	table_summary.csv   per-algorithm convergence/stability table (E6)
//	table_olia_default.csv  OLIA default-path sensitivity (E7)
//	table_buffers.csv   buffer-size ablation (A1)
//	table_scheduler.csv scheduler ablation (A3)
//	table_sack.csv      SACK vs NewReno-only ablation
//
// Use -seeds to average the tables over more runs and -quick for a fast
// smoke pass.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mptcpsim"
)

var (
	outDir = flag.String("out", "out", "output directory")
	seeds  = flag.Int("seeds", 5, "seeds per table cell")
	quick  = flag.Bool("quick", false, "short horizons for a smoke run")
)

func main() {
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	figDuration := 4 * time.Second
	longDuration := 25 * time.Second
	cubicHorizon := 12 * time.Second
	if *quick {
		figDuration = 2 * time.Second
		longDuration = 6 * time.Second
		cubicHorizon = 4 * time.Second
		if *seeds > 2 {
			*seeds = 2
		}
	}

	fig1c()
	figure("fig2a_cubic", mptcpsim.Options{CC: "cubic", Duration: figDuration},
		"Fig 2a: MPTCP-CUBIC, 100 ms bins")
	figure("fig2b_olia", mptcpsim.Options{CC: "olia", Duration: figDuration},
		"Fig 2b: MPTCP-OLIA, 100 ms bins")
	figure("fig2c_fine", mptcpsim.Options{CC: "cubic", Duration: 500 * time.Millisecond,
		SampleInterval: 10 * time.Millisecond},
		"Fig 2c: early phase, 10 ms bins")

	tableSummary(figDuration, cubicHorizon, longDuration)
	tableOliaDefault(longDuration)
	tableBuffers(figDuration)
	tableScheduler(figDuration)
	tableSACK(figDuration)
	fmt.Println("done:", *outDir)
}

func fig1c() {
	res, err := mptcpsim.RunPaper(mptcpsim.Options{Duration: 100 * time.Millisecond})
	if err != nil {
		fatal(err)
	}
	withFile("fig1c_lp.txt", func(w io.Writer) error {
		fmt.Fprintln(w, "The throughput constraints of Fig. 1c and their solutions")
		fmt.Fprintln(w)
		fmt.Fprint(w, res.Problem)
		fmt.Fprintln(w)
		fmt.Fprintf(w, "LP optimum:        total %.1f Mbps at %v\n", res.Optimum.Total, res.Optimum.PerPath)
		fmt.Fprintf(w, "greedy trap:       total %.1f Mbps at %v\n", sum(res.Greedy), res.Greedy)
		fmt.Fprintf(w, "max-min fair:      total %.1f Mbps at %v\n", sum(res.MaxMin), res.MaxMin)
		fmt.Fprintf(w, "proportional fair: total %.1f Mbps at %v\n", sum(res.PropFair), res.PropFair)
		return nil
	})
}

func figure(name string, opts mptcpsim.Options, title string) {
	opts.Seed = 1
	res, err := mptcpsim.RunPaper(opts)
	if err != nil {
		fatal(err)
	}
	withFile(name+".csv", res.WriteCSV)
	withFile(name+".txt", func(w io.Writer) error {
		if err := res.Chart(w, title); err != nil {
			return err
		}
		fmt.Fprintln(w)
		return res.Report(w)
	})
}

// tableSummary reproduces the §3 findings: per algorithm, whether/when the
// optimum band is reached and how stable the rate is afterwards.
func tableSummary(figDur, cubicDur, longDur time.Duration) {
	withFile("table_summary.csv", func(w io.Writer) error {
		fmt.Fprintln(w, "cc,horizon_s,seeds,converged,conv_frac,mean_conv_time_s,mean_total_mbps,mean_gap_pct,mean_post_cov")
		for _, row := range []struct {
			cc  string
			dur time.Duration
		}{
			{"cubic", figDur}, {"cubic", cubicDur},
			{"lia", figDur}, {"lia", longDur},
			{"olia", figDur}, {"olia", longDur},
			{"reno", figDur},
			{"balia", figDur}, {"balia", longDur},
			{"wvegas", figDur},
		} {
			conv, convTime, total, gap, cov := 0, 0.0, 0.0, 0.0, 0.0
			for s := 1; s <= *seeds; s++ {
				res, err := mptcpsim.RunPaper(mptcpsim.Options{CC: row.cc, Seed: int64(s), Duration: row.dur})
				if err != nil {
					return err
				}
				if res.Summary.Converged {
					conv++
					convTime += res.Summary.ConvergedAt.Seconds()
				}
				total += res.Summary.TotalMean
				gap += res.Summary.Gap * 100
				cov += res.Summary.PostCoV
			}
			n := float64(*seeds)
			mct := 0.0
			if conv > 0 {
				mct = convTime / float64(conv)
			}
			fmt.Fprintf(w, "%s,%.0f,%d,%d,%.2f,%.2f,%.1f,%.1f,%.3f\n",
				row.cc, row.dur.Seconds(), *seeds, conv, float64(conv)/n, mct, total/n, gap/n, cov/n)
		}
		return nil
	})
}

// tableOliaDefault reproduces the "only if Path 2 was the default" probe.
func tableOliaDefault(dur time.Duration) {
	withFile("table_olia_default.csv", func(w io.Writer) error {
		fmt.Fprintln(w, "default_path,seeds,converged,mean_conv_time_s,mean_gap_pct")
		for _, order := range [][]int{{2, 1, 3}, {1, 2, 3}, {3, 1, 2}} {
			conv, convTime, gap := 0, 0.0, 0.0
			for s := 1; s <= *seeds; s++ {
				res, err := mptcpsim.RunPaper(mptcpsim.Options{CC: "olia", Seed: int64(s),
					Duration: dur, SubflowPaths: order})
				if err != nil {
					return err
				}
				if res.Summary.Converged {
					conv++
					convTime += res.Summary.ConvergedAt.Seconds()
				}
				gap += res.Summary.Gap * 100
			}
			mct := 0.0
			if conv > 0 {
				mct = convTime / float64(conv)
			}
			fmt.Fprintf(w, "%d,%d,%d,%.2f,%.1f\n", order[0], *seeds, conv, mct, gap/float64(*seeds))
		}
		return nil
	})
}

// tableBuffers is ablation A1: queue capacity scales the drop (gradient
// step) frequency and with it the shake-down.
func tableBuffers(dur time.Duration) {
	withFile("table_buffers.csv", func(w io.Writer) error {
		fmt.Fprintln(w, "queue_scale,seeds,converged,mean_total_mbps,mean_gap_pct")
		for _, qs := range []float64{0.25, 0.5, 1, 2, 4} {
			conv, total, gap := 0, 0.0, 0.0
			for s := 1; s <= *seeds; s++ {
				res, err := mptcpsim.RunPaper(mptcpsim.Options{CC: "cubic", Seed: int64(s),
					Duration: dur, QueueScale: qs})
				if err != nil {
					return err
				}
				if res.Summary.Converged {
					conv++
				}
				total += res.Summary.TotalMean
				gap += res.Summary.Gap * 100
			}
			n := float64(*seeds)
			fmt.Fprintf(w, "%.2f,%d,%d,%.1f,%.1f\n", qs, *seeds, conv, total/n, gap/n)
		}
		return nil
	})
}

// tableScheduler is ablation A3.
func tableScheduler(dur time.Duration) {
	withFile("table_scheduler.csv", func(w io.Writer) error {
		fmt.Fprintln(w, "scheduler,seeds,mean_total_mbps,mean_goodput_mbps,dup_bytes_frac")
		for _, sched := range []string{"minrtt", "roundrobin", "redundant"} {
			total, good, dup := 0.0, 0.0, 0.0
			for s := 1; s <= *seeds; s++ {
				res, err := mptcpsim.RunPaper(mptcpsim.Options{CC: "cubic", Seed: int64(s),
					Duration: dur, Scheduler: sched})
				if err != nil {
					return err
				}
				total += res.Summary.TotalMean
				good += float64(res.DeliveredBytes) * 8 / dur.Seconds() / 1e6
				if res.DeliveredBytes+res.DuplicateBytes > 0 {
					dup += float64(res.DuplicateBytes) / float64(res.DeliveredBytes+res.DuplicateBytes)
				}
			}
			n := float64(*seeds)
			fmt.Fprintf(w, "%s,%d,%.1f,%.1f,%.3f\n", sched, *seeds, total/n, good/n, dup/n)
		}
		return nil
	})
}

// tableSACK contrasts SACK scoreboard recovery with NewReno-only.
func tableSACK(dur time.Duration) {
	withFile("table_sack.csv", func(w io.Writer) error {
		fmt.Fprintln(w, "sack,seeds,mean_total_mbps,mean_gap_pct,mean_rtos")
		for _, disable := range []bool{false, true} {
			total, gap, rtos := 0.0, 0.0, 0.0
			for s := 1; s <= *seeds; s++ {
				res, err := mptcpsim.RunPaper(mptcpsim.Options{CC: "cubic", Seed: int64(s),
					Duration: dur, DisableSACK: disable})
				if err != nil {
					return err
				}
				total += res.Summary.TotalMean
				gap += res.Summary.Gap * 100
				for _, sf := range res.Subflows {
					rtos += float64(sf.RTOs)
				}
			}
			n := float64(*seeds)
			fmt.Fprintf(w, "%v,%d,%.1f,%.1f,%.1f\n", !disable, *seeds, total/n, gap/n, rtos/n)
		}
		return nil
	})
}

func withFile(name string, fn func(w io.Writer) error) {
	path := filepath.Join(*outDir, name)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := fn(f); err != nil {
		f.Close()
		fatal(fmt.Errorf("%s: %w", name, err))
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
