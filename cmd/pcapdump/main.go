// Command pcapdump prints a capture produced by the simulator (or by
// `mptcpsim -pcap`) as tcpdump-style text — the closing piece of the
// paper's tshark workflow, showing tags, sequence numbers and MPTCP DSS
// mappings per packet.
//
//	mptcpsim -cc cubic -pcap run.pcap
//	pcapdump run.pcap | head
//	pcapdump -tag 2 run.pcap       # only Path 2's subflow
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"mptcpsim/internal/capture"
	"mptcpsim/internal/packet"
)

// run is the whole CLI behind a testable seam: parse args, dump the
// capture, return the exit code (0 ok, 1 read/format failure, 2 usage).
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pcapdump", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tag   = fs.Int("tag", 0, "only frames with this path tag (0 = all)")
		count = fs.Int("c", 0, "stop after this many frames (0 = all)")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: pcapdump [-tag N] [-c N] file.pcap")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "pcapdump:", err)
		return 1
	}
	defer f.Close()
	records, err := capture.ReadPCAP(bufio.NewReader(f))
	if err != nil {
		fmt.Fprintln(stderr, "pcapdump:", err)
		return 1
	}
	out := bufio.NewWriter(stdout)
	defer out.Flush()
	printed := 0
	for _, r := range records {
		if *tag != 0 {
			p, err := packet.Unmarshal(r.Data)
			if err != nil || int(p.IP.Tag) != *tag {
				continue
			}
		}
		line, err := capture.FormatFrame(r)
		if err != nil {
			fmt.Fprintln(stderr, "pcapdump:", err)
			return 1
		}
		fmt.Fprintln(out, line)
		printed++
		if *count > 0 && printed >= *count {
			break
		}
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
