// Command pcapdump prints a capture produced by the simulator (or by
// `mptcpsim -pcap`) as tcpdump-style text — the closing piece of the
// paper's tshark workflow, showing tags, sequence numbers and MPTCP DSS
// mappings per packet.
//
//	mptcpsim -cc cubic -pcap run.pcap
//	pcapdump run.pcap | head
//	pcapdump -tag 2 run.pcap       # only Path 2's subflow
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mptcpsim/internal/capture"
	"mptcpsim/internal/packet"
)

func main() {
	var (
		tag   = flag.Int("tag", 0, "only frames with this path tag (0 = all)")
		count = flag.Int("c", 0, "stop after this many frames (0 = all)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pcapdump [-tag N] [-c N] file.pcap")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	records, err := capture.ReadPCAP(bufio.NewReader(f))
	if err != nil {
		fatal(err)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	printed := 0
	for _, r := range records {
		if *tag != 0 {
			p, err := packet.Unmarshal(r.Data)
			if err != nil || int(p.IP.Tag) != *tag {
				continue
			}
		}
		line, err := capture.FormatFrame(r)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, line)
		printed++
		if *count > 0 && printed >= *count {
			break
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pcapdump:", err)
	os.Exit(1)
}
