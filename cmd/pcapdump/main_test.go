package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mptcpsim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// writePCAP produces the deterministic capture the golden text is built
// from: 200 ms of the paper experiment with frame retention on. The
// simulator is bit-deterministic, so every test run regenerates the
// identical file.
func writePCAP(t *testing.T) string {
	t.Helper()
	res, err := mptcpsim.RunPaper(mptcpsim.Options{
		Duration: 200 * time.Millisecond, RetainPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	werr := res.WritePCAP(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		t.Fatal(werr)
	}
	return path
}

// TestRunGolden locks the tcpdump-style text format byte for byte: the
// first 40 frames of the paper capture must render exactly the golden
// file. Regenerate with go test ./cmd/pcapdump -update (and review the
// diff as a format change).
func TestRunGolden(t *testing.T) {
	path := writePCAP(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-c", "40", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	compareGolden(t, "dump.txt", stdout.Bytes())
}

// TestRunTagFilter asserts -tag selects a proper, non-empty subset of
// the unfiltered dump.
func TestRunTagFilter(t *testing.T) {
	path := writePCAP(t)
	var full, tagged, stderr bytes.Buffer
	if code := run([]string{path}, &full, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if code := run([]string{"-tag", "2", path}, &tagged, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	all := strings.Split(strings.TrimRight(full.String(), "\n"), "\n")
	sub := strings.Split(strings.TrimRight(tagged.String(), "\n"), "\n")
	if len(sub) == 0 || len(sub) >= len(all) {
		t.Fatalf("-tag 2 selected %d of %d frames, want a proper non-empty subset",
			len(sub), len(all))
	}
	seen := make(map[string]bool, len(all))
	for _, line := range all {
		seen[line] = true
	}
	for _, line := range sub {
		if !seen[line] {
			t.Fatalf("-tag output line not present in the full dump: %s", line)
		}
	}
}

// TestRunDiagnostics pins the exit codes: 2 for usage, 1 for a missing
// or unreadable capture.
func TestRunDiagnostics(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no arguments: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Fatalf("no usage message on stderr: %s", stderr.String())
	}
	stderr.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "absent.pcap")}, &stdout, &stderr); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			name, path, got, want)
	}
}
