// Command lpopt prints the paper's throughput optimisation problem and its
// analytic solutions: the LP optimum (Fig. 1c), the greedy/Pareto trap,
// the max-min fair allocation and the proportionally fair allocation.
//
// With -k N it instead offers the N shortest paths of the network (Yen's
// algorithm) to the optimiser, showing how the achievable optimum changes
// with the path choice the tagging layer makes available.
package main

import (
	"flag"
	"fmt"
	"os"

	"mptcpsim/internal/lp"
	"mptcpsim/internal/topo"
)

func main() {
	var (
		k = flag.Int("k", 0, "use the k shortest s->d paths instead of the paper's three")
	)
	flag.Parse()

	pn := topo.Paper()
	paths := pn.Paths
	if *k > 0 {
		paths = pn.Graph.KShortestPaths(pn.S, pn.D, *k, nil)
	}
	fmt.Printf("Network: %d nodes, %d directed links\n", pn.Graph.NumNodes(), pn.Graph.NumLinks())
	for i, p := range paths {
		fmt.Printf("  Path %d: %-28s (one-way delay %v, bottleneck %v)\n",
			i+1, p.Format(pn.Graph), p.Delay(pn.Graph), p.BottleneckRate(pn.Graph))
	}
	fmt.Println()

	prob := lp.MaxThroughput(pn.Graph, paths)
	fmt.Print(prob.String())
	sol, err := prob.Solve()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lpopt:", err)
		os.Exit(1)
	}
	if sol.Status != lp.Optimal {
		fmt.Fprintln(os.Stderr, "lpopt: LP is", sol.Status)
		os.Exit(1)
	}
	fmt.Println()
	show := func(name string, x []float64) {
		fmt.Printf("%-22s total %6.2f Mbps  at ", name, lp.TotalMbit(x))
		for i, v := range x {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("x%d=%.2f", i+1, v)
		}
		fmt.Println()
	}
	show("LP optimum:", sol.X)
	order := make([]int, len(paths))
	for i := range order {
		order[i] = i
	}
	if len(paths) == 3 {
		// Mirror the measurement setup: the default path (Path 2) first.
		order = []int{1, 0, 2}
	}
	show("greedy (default 1st):", lp.GreedySequential(pn.Graph, paths, order))
	show("max-min fair:", lp.MaxMin(pn.Graph, paths))
	show("proportional fair:", lp.PropFair(pn.Graph, paths, 0))

	binding := prob.BindingConstraints(sol.X, 1e-6)
	fmt.Println()
	fmt.Println("binding constraints at the optimum:")
	for _, bi := range binding {
		fmt.Printf("  %s\n", prob.RowNames[bi])
	}
}
