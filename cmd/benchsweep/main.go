// Command benchsweep runs a fixed pair of reference sweeps — a static and
// a dynamic-event workload over the paper network — and emits their
// throughput and timing as a small JSON artifact. CI runs it as the
// benchmark smoke step, stores the output as BENCH_sweep.json, and feeds
// the previous main-branch artifact back through -compare/-against as the
// regression gate: any benchmark losing more than 20% runs/s fails the
// build.
//
//	benchsweep -out BENCH_sweep.json
//	benchsweep -workers 4 -seeds 5
//	benchsweep -compare BENCH_sweep.json -against prev/BENCH_sweep.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"mptcpsim"
)

// artifact is the benchmark document schema. Commit and GoVersion trace
// each point of the performance trajectory back to the code and toolchain
// that produced it; the per-benchmark fields are stable so points stay
// comparable across commits.
type artifact struct {
	// Commit is the source revision (GITHUB_SHA in CI; empty locally).
	Commit    string `json:"commit,omitempty"`
	GoVersion string `json:"go_version"`
	// Benchmarks holds one report per reference workload, in fixed order.
	Benchmarks []report `json:"benchmarks"`
}

// report is one benchmark's outcome.
type report struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Runs    int    `json:"runs"`
	Errors  int    `json:"errors"`
	// WallSeconds is the end-to-end sweep time; RunsPerSecond and
	// SimSecondsPerSecond are the headline throughput numbers (virtual
	// seconds simulated per wall second, summed over all runs).
	WallSeconds         float64 `json:"wall_seconds"`
	RunsPerSecond       float64 `json:"runs_per_second"`
	SimSecondsPerSecond float64 `json:"sim_seconds_per_second"`
	// MeanGapPct sanity-checks the protocol side: it should move only when
	// the simulation itself changes, never with worker count or hardware.
	MeanGapPct float64 `json:"mean_gap_pct"`
	// AllocsPerRun is the process-wide heap allocation count divided by
	// the number of simulation runs — the tracking number for the
	// zero-allocation event fast path. Unlike runs/s it is almost
	// machine-independent, so a jump means scheduling started allocating
	// again, not that the runner was busy.
	AllocsPerRun float64 `json:"allocs_per_run"`
	// BytesPerRun is the heap bytes allocated per run (TotalAlloc delta
	// over the sweep / runs). It complements AllocsPerRun: the arena can
	// keep the object count flat while individual allocations grow, and
	// this catches that.
	BytesPerRun float64 `json:"bytes_per_run"`
}

// benchmarks lists the reference workloads: the static sweep isolates the
// steady-state hot path, the dynamic one adds the event/epoch machinery
// (piecewise LP baselines, link mutators), the telemetry one re-runs the
// static workload with engine counters and the flight recorder attached,
// and the stream one re-runs it through the flat-memory run-log path
// (Sweep.Stream encoding every run as NDJSON instead of retaining it) —
// so a regression in any layer, including the observation plane's and the
// streaming pipeline's overhead, shows up under its own name.
// sweep_telemetry against sweep_static is the telemetry cost curve;
// sweep_stream against sweep_static is the streaming memory budget
// (gated by the compare step: streamed bytes/run must not exceed the
// in-memory baseline's); sweep_static itself gates the telemetry-off
// fast path.
func benchmarks() []struct {
	name      string
	events    mptcpsim.EventSet
	telemetry bool
	stream    bool
} {
	return []struct {
		name      string
		events    mptcpsim.EventSet
		telemetry bool
		stream    bool
	}{
		{"sweep_static", mptcpsim.EventSet{Name: "static"}, false, false},
		{"sweep_dynamic", mptcpsim.EventSet{Name: "outage", Events: []mptcpsim.ScenarioEvent{
			{AtMs: 400, Type: mptcpsim.EventLinkDown, A: "s", B: "v1"},
			{AtMs: 700, Type: mptcpsim.EventLinkUp, A: "s", B: "v1"},
		}}, false, false},
		{"sweep_telemetry", mptcpsim.EventSet{Name: "static"}, true, false},
		{"sweep_stream", mptcpsim.EventSet{Name: "static"}, false, true},
	}
}

// benchGrid is one benchmark's fixed workload: two CCs, two orderings,
// the given event set, 1 s of traffic per run, n seeds each.
func benchGrid(seeds int, events mptcpsim.EventSet) *mptcpsim.Grid {
	grid := &mptcpsim.Grid{
		CCs:        []string{"cubic", "olia"},
		Orders:     [][]int{{2, 1, 3}, {1, 2, 3}},
		DurationMs: 1000,
		Events:     []mptcpsim.EventSet{events},
	}
	for s := 1; s <= seeds; s++ {
		grid.Seeds = append(grid.Seeds, int64(s))
	}
	return grid
}

// buildReport derives one benchmark's report from a finished sweep's
// counts; runs includes failed runs, meanGap averages the successful ones.
// Counts rather than a SweepResult, because the streamed workload never
// materialises one — its counts come from an AggSink.
func buildReport(name string, runs, errors int, meanGap float64, grid *mptcpsim.Grid, workers int, wall float64, allocs, heapBytes uint64) report {
	return report{
		Name:          name,
		Workers:       workers,
		Runs:          runs,
		Errors:        errors,
		WallSeconds:   wall,
		RunsPerSecond: float64(runs) / wall,
		SimSecondsPerSecond: float64(runs) *
			(grid.DurationMs / 1000) / wall,
		MeanGapPct:   meanGap * 100,
		AllocsPerRun: float64(allocs) / float64(runs),
		BytesPerRun:  float64(heapBytes) / float64(runs),
	}
}

// runWorkload executes one benchmark sweep and returns its counts. The
// streamed workload goes through Sweep.Stream with a LogSink encoding
// every record (to io.Discard: the benchmark measures the pipeline's CPU
// and allocation cost, not the disk) plus an AggSink for the counts; the
// others go through the in-memory Sweep.Run.
func runWorkload(grid *mptcpsim.Grid, workers int, telemetry, stream bool) (runs, errors int, meanGap float64, err error) {
	sweep := &mptcpsim.Sweep{Workers: workers, Telemetry: telemetry}
	if !stream {
		res, err := sweep.Run(grid)
		if err != nil {
			return 0, 0, 0, err
		}
		return len(res.Runs), res.Errs(), res.Gap.Mean, nil
	}
	digest, total, err := sweep.Describe(grid)
	if err != nil {
		return 0, 0, 0, err
	}
	logSink, err := mptcpsim.NewLogSink(io.Discard,
		mptcpsim.RunLogHeader{GridDigest: digest, N: 1, Total: total}, mptcpsim.LogOptions{})
	if err != nil {
		return 0, 0, 0, err
	}
	agg := &mptcpsim.AggSink{}
	if err := sweep.Stream(grid, mptcpsim.StreamSpec{}, mptcpsim.MultiSink(logSink, agg)); err != nil {
		return 0, 0, 0, err
	}
	return agg.Runs + agg.Errors, agg.Errors, agg.Gap.Mean, nil
}

// maxAllocGrowth is the compare gate's budget for allocs/op: a 50% jump
// means a scheduling path started allocating again (the fast path is
// worth ~10x, so a real regression blows far past this), while run-to-run
// noise in the process-wide counter stays well under it.
const maxAllocGrowth = 0.50

// maxBytesGrowth budgets heap bytes per run the same way: the arena keeps
// steady-state transit off the heap entirely, so a >50% byte jump means
// packets or segments are being heap-built again.
const maxBytesGrowth = 0.50

// compareArtifacts applies the regression gate: every benchmark present
// in both artifacts must keep at least (1 - maxDrop) of its previous
// runs/s. A previous artifact without benchmarks (first run, or the
// pre-multi-benchmark schema) passes with a notice — the gate needs a
// trajectory before it can gate. Faster-than-before is never an error.
func compareArtifacts(fresh, prev artifact, maxDrop float64, w io.Writer) error {
	if len(prev.Benchmarks) == 0 {
		fmt.Fprintln(w, "benchsweep: previous artifact has no benchmarks (first run or older schema); gate passes")
		return nil
	}
	prevByName := make(map[string]report, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		prevByName[b.Name] = b
	}
	var failed []string
	for _, b := range fresh.Benchmarks {
		p, ok := prevByName[b.Name]
		if !ok {
			fmt.Fprintf(w, "benchsweep: %s: no previous data (new benchmark); skipped\n", b.Name)
			continue
		}
		if p.RunsPerSecond <= 0 {
			fmt.Fprintf(w, "benchsweep: %s: previous runs/s is %.2f; skipped\n", b.Name, p.RunsPerSecond)
			continue
		}
		change := b.RunsPerSecond/p.RunsPerSecond - 1
		fmt.Fprintf(w, "benchsweep: %s: %.2f -> %.2f runs/s (%+.1f%%)\n",
			b.Name, p.RunsPerSecond, b.RunsPerSecond, change*100)
		if change < -maxDrop {
			failed = append(failed, b.Name)
		}
		// The allocation half of the gate: previous artifacts from before
		// the allocs_per_run field (or with a corrupt zero) carry no
		// baseline and are skipped.
		if p.AllocsPerRun > 0 && b.AllocsPerRun > 0 {
			growth := b.AllocsPerRun/p.AllocsPerRun - 1
			fmt.Fprintf(w, "benchsweep: %s: %.0f -> %.0f allocs/run (%+.1f%%)\n",
				b.Name, p.AllocsPerRun, b.AllocsPerRun, growth*100)
			if growth > maxAllocGrowth {
				failed = append(failed, b.Name+" (allocs/run)")
			}
		}
		// And the byte half, with the same absent/zero-baseline escape
		// hatch for artifacts predating the bytes_per_run field.
		if p.BytesPerRun > 0 && b.BytesPerRun > 0 {
			growth := b.BytesPerRun/p.BytesPerRun - 1
			fmt.Fprintf(w, "benchsweep: %s: %.0f -> %.0f bytes/run (%+.1f%%)\n",
				b.Name, p.BytesPerRun, b.BytesPerRun, growth*100)
			if growth > maxBytesGrowth {
				failed = append(failed, b.Name+" (bytes/run)")
			}
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("benchmark(s) %v regressed (>%.0f%% runs/s drop, >%.0f%% allocs/run or >%.0f%% bytes/run growth; prev commit %s, go %s)",
			failed, maxDrop*100, maxAllocGrowth*100, maxBytesGrowth*100, orUnknown(prev.Commit), orUnknown(prev.GoVersion))
	}
	return nil
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// streamBudgetSlack tolerates the process-wide TotalAlloc counter's
// run-to-run noise (GC metadata, background goroutines) when comparing
// two workloads measured seconds apart within one process.
const streamBudgetSlack = 0.05

// streamBudget gates the streaming pipeline's memory bill within one
// artifact: sweep_stream allocates NDJSON encoding per run where
// sweep_static allocates result retention and aggregation, and the whole
// point of streaming is that this trade is at worst a wash — so streamed
// bytes/run must not exceed the in-memory baseline's (plus measurement
// slack). Artifacts from before the sweep_stream benchmark pass with a
// notice.
func streamBudget(fresh artifact, w io.Writer) error {
	var static, stream *report
	for i := range fresh.Benchmarks {
		switch fresh.Benchmarks[i].Name {
		case "sweep_static":
			static = &fresh.Benchmarks[i]
		case "sweep_stream":
			stream = &fresh.Benchmarks[i]
		}
	}
	if static == nil || stream == nil || static.BytesPerRun <= 0 {
		fmt.Fprintln(w, "benchsweep: no sweep_static/sweep_stream pair in artifact; stream budget gate skipped")
		return nil
	}
	ratio := stream.BytesPerRun / static.BytesPerRun
	fmt.Fprintf(w, "benchsweep: sweep_stream bytes/run is %.2fx the in-memory baseline (%.0f vs %.0f)\n",
		ratio, stream.BytesPerRun, static.BytesPerRun)
	if ratio > 1+streamBudgetSlack {
		return fmt.Errorf("sweep_stream allocates %.0f bytes/run, %.0f%% over the in-memory baseline's %.0f (budget: +%.0f%%); the streaming path must stay flat",
			stream.BytesPerRun, (ratio-1)*100, static.BytesPerRun, streamBudgetSlack*100)
	}
	return nil
}

// compare runs the gate between two artifact files. A missing or
// unreadable previous file passes with a notice so the first CI run on a
// repository (or after an artifact-retention expiry) is not a failure.
func compare(freshPath, prevPath string, maxDrop float64, w io.Writer) error {
	freshBytes, err := os.ReadFile(freshPath)
	if err != nil {
		return err
	}
	var fresh artifact
	if err := json.Unmarshal(freshBytes, &fresh); err != nil {
		return fmt.Errorf("%s: %w", freshPath, err)
	}
	// The stream budget gate compares two benchmarks inside the fresh
	// artifact, so it runs even on a first build with no previous artifact.
	if err := streamBudget(fresh, w); err != nil {
		return err
	}
	prevBytes, err := os.ReadFile(prevPath)
	if err != nil {
		fmt.Fprintf(w, "benchsweep: no previous artifact at %s (%v); gate passes\n", prevPath, err)
		return nil
	}
	var prev artifact
	if err := json.Unmarshal(prevBytes, &prev); err != nil {
		fmt.Fprintf(w, "benchsweep: previous artifact unreadable (%v); gate passes\n", err)
		return nil
	}
	return compareArtifacts(fresh, prev, maxDrop, w)
}

func main() {
	var (
		out        = flag.String("out", "BENCH_sweep.json", "output JSON path (- for stdout)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "sweep worker goroutines")
		seeds      = flag.Int("seeds", 3, "seeds 1..n per cell")
		commit     = flag.String("commit", os.Getenv("GITHUB_SHA"), "source revision recorded in the artifact")
		repeat     = flag.Int("repeat", 1, "sweeps per benchmark; the fastest is reported (best-of-n damps shared-runner noise)")
		comparePth = flag.String("compare", "", "fresh artifact to gate (skips the sweep; requires -against)")
		against    = flag.String("against", "", "previous artifact the gate compares -compare to")
		maxDrop    = flag.Float64("max-regression", 0.20, "allowed fractional runs/s drop per benchmark")
	)
	flag.Parse()

	if *comparePth != "" || *against != "" {
		if *comparePth == "" || *against == "" {
			fmt.Fprintln(os.Stderr, "benchsweep: -compare and -against go together")
			os.Exit(1)
		}
		if err := compare(*comparePth, *against, *maxDrop, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep:", err)
			os.Exit(1)
		}
		return
	}

	if *repeat < 1 {
		*repeat = 1
	}
	doc := artifact{Commit: *commit, GoVersion: runtime.Version()}
	for _, b := range benchmarks() {
		grid := benchGrid(*seeds, b.events)
		var best report
		for i := 0; i < *repeat; i++ {
			// Mallocs is a monotone process-wide count; the delta across
			// the sweep is the allocation bill of these runs (plus
			// background noise far below the gate's resolution).
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			runs, errors, meanGap, err := runWorkload(grid, *workers, b.telemetry, b.stream)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchsweep:", err)
				os.Exit(1)
			}
			wall := time.Since(start).Seconds()
			runtime.ReadMemStats(&after)
			r := buildReport(b.name, runs, errors, meanGap, grid, *workers, wall,
				after.Mallocs-before.Mallocs, after.TotalAlloc-before.TotalAlloc)
			if i == 0 || r.WallSeconds < best.WallSeconds {
				best = r
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, best)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep:", err)
			os.Exit(1)
		}
		for _, r := range doc.Benchmarks {
			fmt.Fprintf(os.Stderr, "benchsweep: %s: %d runs in %.2fs (%.1f runs/s)\n",
				r.Name, r.Runs, r.WallSeconds, r.RunsPerSecond)
		}
		fmt.Fprintf(os.Stderr, "benchsweep: wrote %s\n", *out)
	}
	errs := 0
	for _, r := range doc.Benchmarks {
		errs += r.Errors
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "benchsweep: %d runs failed\n", errs)
		os.Exit(1)
	}
}
