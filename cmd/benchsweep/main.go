// Command benchsweep runs a fixed reference sweep — static and
// dynamic-event cells over the paper network — and emits its throughput
// and timing as a small JSON document. CI runs it as the benchmark smoke
// step and stores the output as BENCH_sweep.json, giving the repository a
// performance trajectory across commits.
//
//	benchsweep -out BENCH_sweep.json
//	benchsweep -workers 4 -seeds 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"mptcpsim"
)

// report is the benchmark artifact schema. Fields are stable so the
// trajectory stays comparable across commits.
type report struct {
	Name    string `json:"name"`
	Workers int    `json:"workers"`
	Runs    int    `json:"runs"`
	Errors  int    `json:"errors"`
	// WallSeconds is the end-to-end sweep time; RunsPerSecond and
	// SimSecondsPerSecond are the headline throughput numbers (virtual
	// seconds simulated per wall second, summed over all runs).
	WallSeconds         float64 `json:"wall_seconds"`
	RunsPerSecond       float64 `json:"runs_per_second"`
	SimSecondsPerSecond float64 `json:"sim_seconds_per_second"`
	// MeanGapPct sanity-checks the protocol side: it should move only when
	// the simulation itself changes, never with worker count or hardware.
	MeanGapPct float64 `json:"mean_gap_pct"`
	GoVersion  string  `json:"go_version"`
}

// benchGrid is the fixed reference workload: two CCs, two orderings, one
// static and one outage event set, 1 s of traffic per run, n seeds each.
func benchGrid(seeds int) *mptcpsim.Grid {
	grid := &mptcpsim.Grid{
		CCs:        []string{"cubic", "olia"},
		Orders:     [][]int{{2, 1, 3}, {1, 2, 3}},
		DurationMs: 1000,
		Events: []mptcpsim.EventSet{
			{Name: "static"},
			{Name: "outage", Events: []mptcpsim.ScenarioEvent{
				{AtMs: 400, Type: mptcpsim.EventLinkDown, A: "s", B: "v1"},
				{AtMs: 700, Type: mptcpsim.EventLinkUp, A: "s", B: "v1"},
			}},
		},
	}
	for s := 1; s <= seeds; s++ {
		grid.Seeds = append(grid.Seeds, int64(s))
	}
	return grid
}

// buildReport derives the artifact from a finished sweep.
func buildReport(res *mptcpsim.SweepResult, grid *mptcpsim.Grid, workers int, wall float64) report {
	return report{
		Name:          "sweep",
		Workers:       workers,
		Runs:          len(res.Runs),
		Errors:        res.Errs(),
		WallSeconds:   wall,
		RunsPerSecond: float64(len(res.Runs)) / wall,
		SimSecondsPerSecond: float64(len(res.Runs)) *
			(grid.DurationMs / 1000) / wall,
		MeanGapPct: res.Gap.Mean * 100,
		GoVersion:  runtime.Version(),
	}
}

func main() {
	var (
		out     = flag.String("out", "BENCH_sweep.json", "output JSON path (- for stdout)")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "sweep worker goroutines")
		seeds   = flag.Int("seeds", 3, "seeds 1..n per cell")
	)
	flag.Parse()

	grid := benchGrid(*seeds)
	start := time.Now()
	res, err := (&mptcpsim.Sweep{Workers: *workers}).Run(grid)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	r := buildReport(res, grid, *workers, time.Since(start).Seconds())

	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsweep: %d runs in %.2fs (%.1f runs/s), wrote %s\n",
			r.Runs, r.WallSeconds, r.RunsPerSecond, *out)
	}
	if r.Errors > 0 {
		fmt.Fprintf(os.Stderr, "benchsweep: %d runs failed\n", r.Errors)
		os.Exit(1)
	}
}
