package main

import (
	"encoding/json"
	"testing"

	"mptcpsim"
)

func TestBenchGridShape(t *testing.T) {
	grid := benchGrid(3)
	specs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 2 CCs x 2 orders x 2 event sets x 3 seeds.
	if len(specs) != 24 {
		t.Fatalf("bench grid expands to %d runs, want 24", len(specs))
	}
}

// The artifact schema is a contract with the CI trajectory: field names
// and their population must not drift silently.
func TestReportSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (reduced) sweep")
	}
	grid := benchGrid(1)
	res, err := (&mptcpsim.Sweep{Workers: 4}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	r := buildReport(res, grid, 4, 2.0)
	if r.Runs != 8 || r.Errors != 0 {
		t.Fatalf("runs=%d errors=%d, want 8/0", r.Runs, r.Errors)
	}
	if r.RunsPerSecond != 4 || r.SimSecondsPerSecond != 4 {
		t.Fatalf("throughput fields wrong: %+v", r)
	}
	if r.MeanGapPct <= 0 || r.MeanGapPct >= 100 {
		t.Fatalf("mean gap %.2f%% implausible", r.MeanGapPct)
	}

	enc, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(enc, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "workers", "runs", "errors",
		"wall_seconds", "runs_per_second", "sim_seconds_per_second",
		"mean_gap_pct", "go_version"} {
		if _, ok := fields[key]; !ok {
			t.Errorf("artifact lost field %q", key)
		}
	}
}
