package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchGridShape(t *testing.T) {
	for _, b := range benchmarks() {
		grid := benchGrid(3, b.events)
		specs, err := grid.Expand()
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		// 2 CCs x 2 orders x 1 event set x 3 seeds.
		if len(specs) != 12 {
			t.Fatalf("%s: grid expands to %d runs, want 12", b.name, len(specs))
		}
	}
}

// The artifact schema is a contract with the CI trajectory: field names
// and their population must not drift silently.
func TestArtifactSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real (reduced) sweep")
	}
	doc := artifact{Commit: "deadbeef", GoVersion: "go1.24"}
	for _, b := range benchmarks() {
		grid := benchGrid(1, b.events)
		runs, errors, meanGap, err := runWorkload(grid, 4, b.telemetry, b.stream)
		if err != nil {
			t.Fatal(err)
		}
		r := buildReport(b.name, runs, errors, meanGap, grid, 4, 2.0, 4000, 400000)
		if r.Runs != 4 || r.Errors != 0 {
			t.Fatalf("%s: runs=%d errors=%d, want 4/0", b.name, r.Runs, r.Errors)
		}
		if r.RunsPerSecond != 2 || r.SimSecondsPerSecond != 2 {
			t.Fatalf("%s: throughput fields wrong: %+v", b.name, r)
		}
		if r.AllocsPerRun != 1000 {
			t.Fatalf("%s: allocs/run = %v, want 1000", b.name, r.AllocsPerRun)
		}
		if r.BytesPerRun != 100000 {
			t.Fatalf("%s: bytes/run = %v, want 100000", b.name, r.BytesPerRun)
		}
		if r.MeanGapPct <= 0 || r.MeanGapPct >= 100 {
			t.Fatalf("%s: mean gap %.2f%% implausible", b.name, r.MeanGapPct)
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}

	enc, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(enc, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"commit", "go_version", "benchmarks"} {
		if _, ok := fields[key]; !ok {
			t.Errorf("artifact lost field %q", key)
		}
	}
	benches, ok := fields["benchmarks"].([]any)
	if !ok || len(benches) != 4 {
		t.Fatalf("benchmarks field malformed: %v", fields["benchmarks"])
	}
	bench, ok := benches[0].(map[string]any)
	if !ok {
		t.Fatalf("benchmark entry malformed: %v", benches[0])
	}
	for _, key := range []string{"name", "workers", "runs", "errors",
		"wall_seconds", "runs_per_second", "sim_seconds_per_second",
		"mean_gap_pct", "allocs_per_run", "bytes_per_run"} {
		if _, ok := bench[key]; !ok {
			t.Errorf("benchmark entry lost field %q", key)
		}
	}
}

func art(rps ...float64) artifact {
	doc := artifact{Commit: "c0ffee", GoVersion: "go1.24"}
	names := []string{"sweep_static", "sweep_dynamic"}
	for i, v := range rps {
		doc.Benchmarks = append(doc.Benchmarks, report{Name: names[i], RunsPerSecond: v})
	}
	return doc
}

func TestCompareArtifactsGate(t *testing.T) {
	var out bytes.Buffer
	// Within the 20% budget (and improvements) pass.
	if err := compareArtifacts(art(9, 12), art(10, 10), 0.20, &out); err != nil {
		t.Fatalf("10%% drop failed the 20%% gate: %v", err)
	}
	// A >20% drop on either benchmark fails and names it.
	err := compareArtifacts(art(7, 10), art(10, 10), 0.20, &out)
	if err == nil || !strings.Contains(err.Error(), "sweep_static") {
		t.Fatalf("30%% drop passed or unnamed: %v", err)
	}
	if err := compareArtifacts(art(10, 7), art(10, 10), 0.20, &out); err == nil {
		t.Fatal("30% dynamic drop passed")
	}
	// No previous benchmarks (first run / old schema): notice, pass.
	if err := compareArtifacts(art(10, 10), artifact{}, 0.20, &out); err != nil {
		t.Fatalf("empty previous artifact failed the gate: %v", err)
	}
	// A benchmark new in this commit has no baseline: skipped.
	if err := compareArtifacts(art(10, 10), art(10), 0.20, &out); err != nil {
		t.Fatalf("new benchmark failed the gate: %v", err)
	}
	// A corrupt zero baseline cannot divide-by-zero the gate.
	if err := compareArtifacts(art(10, 10), art(0, 10), 0.20, &out); err != nil {
		t.Fatalf("zero baseline failed the gate: %v", err)
	}
}

// artA builds a single-benchmark artifact with both gate inputs set.
func artA(rps, allocs float64) artifact {
	return artifact{Commit: "c0ffee", GoVersion: "go1.24", Benchmarks: []report{
		{Name: "sweep_static", RunsPerSecond: rps, AllocsPerRun: allocs},
	}}
}

func TestCompareArtifactsAllocGate(t *testing.T) {
	var out bytes.Buffer
	// Allocation counts within the 50% budget (and improvements) pass.
	if err := compareArtifacts(artA(10, 1200), artA(10, 1000), 0.20, &out); err != nil {
		t.Fatalf("20%% alloc growth failed the 50%% gate: %v", err)
	}
	if err := compareArtifacts(artA(10, 100), artA(10, 1000), 0.20, &out); err != nil {
		t.Fatalf("alloc improvement failed the gate: %v", err)
	}
	// A >50% allocs/run jump fails and names the benchmark.
	err := compareArtifacts(artA(10, 1600), artA(10, 1000), 0.20, &out)
	if err == nil || !strings.Contains(err.Error(), "sweep_static (allocs/run)") {
		t.Fatalf("60%% alloc growth passed or unnamed: %v", err)
	}
	// Pre-allocs-field artifacts (zero baseline) skip the alloc half.
	if err := compareArtifacts(artA(10, 99999), artA(10, 0), 0.20, &out); err != nil {
		t.Fatalf("missing alloc baseline failed the gate: %v", err)
	}
}

// artB builds a single-benchmark artifact with a bytes/run gate input.
func artB(rps, bytesPerRun float64) artifact {
	return artifact{Commit: "c0ffee", GoVersion: "go1.24", Benchmarks: []report{
		{Name: "sweep_static", RunsPerSecond: rps, BytesPerRun: bytesPerRun},
	}}
}

func TestCompareArtifactsBytesGate(t *testing.T) {
	var out bytes.Buffer
	// Byte bills within the 50% budget (and improvements) pass.
	if err := compareArtifacts(artB(10, 1.4e6), artB(10, 1e6), 0.20, &out); err != nil {
		t.Fatalf("40%% byte growth failed the 50%% gate: %v", err)
	}
	if err := compareArtifacts(artB(10, 1e5), artB(10, 1e6), 0.20, &out); err != nil {
		t.Fatalf("byte improvement failed the gate: %v", err)
	}
	// A >50% bytes/run jump fails and names the benchmark.
	err := compareArtifacts(artB(10, 1.6e6), artB(10, 1e6), 0.20, &out)
	if err == nil || !strings.Contains(err.Error(), "sweep_static (bytes/run)") {
		t.Fatalf("60%% byte growth passed or unnamed: %v", err)
	}
	// Pre-bytes-field artifacts (zero baseline) skip the byte half: the
	// gate needs a trajectory before it can gate.
	if err := compareArtifacts(artB(10, 99999), artB(10, 0), 0.20, &out); err != nil {
		t.Fatalf("missing byte baseline failed the gate: %v", err)
	}
	// A fresh zero (corrupt or not measured) cannot trip the gate either.
	if err := compareArtifacts(artB(10, 0), artB(10, 1e6), 0.20, &out); err != nil {
		t.Fatalf("zero fresh bytes failed the gate: %v", err)
	}
}

// artS builds an artifact carrying the in-memory/streamed bytes-per-run
// pair the stream budget gate reads.
func artS(staticBytes, streamBytes float64) artifact {
	return artifact{Commit: "c0ffee", GoVersion: "go1.24", Benchmarks: []report{
		{Name: "sweep_static", RunsPerSecond: 10, BytesPerRun: staticBytes},
		{Name: "sweep_stream", RunsPerSecond: 10, BytesPerRun: streamBytes},
	}}
}

// TestStreamBudgetGate pins the flat-memory promise as a CI gate: the
// streamed pipeline's per-run allocation bill may not exceed the in-memory
// baseline's (beyond measurement slack).
func TestStreamBudgetGate(t *testing.T) {
	var out bytes.Buffer
	// At or below the baseline (and within the slack) passes.
	if err := streamBudget(artS(1e6, 9e5), &out); err != nil {
		t.Fatalf("streamed below baseline failed the gate: %v", err)
	}
	if err := streamBudget(artS(1e6, 1.04e6), &out); err != nil {
		t.Fatalf("streamed within slack failed the gate: %v", err)
	}
	// Beyond the slack fails and reports both numbers.
	err := streamBudget(artS(1e6, 1.2e6), &out)
	if err == nil || !strings.Contains(err.Error(), "in-memory baseline") {
		t.Fatalf("20%% over baseline passed or unexplained: %v", err)
	}
	// Artifacts without the pair (older schema) pass with a notice.
	if err := streamBudget(art(10, 10), &out); err != nil {
		t.Fatalf("pair-less artifact failed the gate: %v", err)
	}
	if err := streamBudget(artifact{}, &out); err != nil {
		t.Fatalf("empty artifact failed the gate: %v", err)
	}
}

func TestCompareFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, doc artifact) string {
		enc, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	fresh := write("fresh.json", art(10, 10))

	var out bytes.Buffer
	// Missing previous artifact: notice, pass (first CI run).
	if err := compare(fresh, filepath.Join(dir, "absent.json"), 0.20, &out); err != nil {
		t.Fatalf("missing previous artifact failed the gate: %v", err)
	}
	// The pre-multi-benchmark schema (a single flat report) parses to an
	// artifact without benchmarks: notice, pass.
	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"name":"sweep","runs_per_second":50}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := compare(fresh, legacy, 0.20, &out); err != nil {
		t.Fatalf("legacy-schema artifact failed the gate: %v", err)
	}
	// A regression across real files fails.
	prev := write("prev.json", art(20, 10))
	if err := compare(fresh, prev, 0.20, &out); err == nil {
		t.Fatal("50% regression passed the file gate")
	}
	// A missing fresh artifact is a hard error — the sweep step upstream
	// must have produced it.
	if err := compare(filepath.Join(dir, "nope.json"), prev, 0.20, &out); err == nil {
		t.Fatal("missing fresh artifact passed")
	}
}
