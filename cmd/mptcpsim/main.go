// Command mptcpsim runs one experiment on the paper's overlapping-path
// network and reports the measured throughput split, the LP optimum and
// convergence metrics. It is the library's iperf+tshark-in-one.
//
// Examples:
//
//	mptcpsim -cc cubic -duration 4s -chart
//	mptcpsim -cc olia -duration 25s -paths 2,1,3
//	mptcpsim -cc lia -csv run.csv -pcap run.pcap
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mptcpsim"
)

func main() {
	var (
		cc       = flag.String("cc", "cubic", "congestion control: cubic, reno, lia, olia, balia")
		sched    = flag.String("scheduler", "minrtt", "scheduler: minrtt, roundrobin, redundant")
		duration = flag.Duration("duration", 4*time.Second, "traffic duration")
		bin      = flag.Duration("bin", 100*time.Millisecond, "capture bin width (paper: 100ms or 10ms)")
		seed     = flag.Int64("seed", 1, "random seed (runs are deterministic per seed)")
		paths    = flag.String("paths", "2,1,3", "subflow paths in priority order (first = default)")
		qscale   = flag.Float64("queue-scale", 1, "multiply all queue capacities")
		nosack   = flag.Bool("nosack", false, "disable SACK (NewReno-only recovery)")
		transfer = flag.Int("transfer", 0, "fixed transfer size in bytes (0 = stream for -duration)")
		csvPath  = flag.String("csv", "", "write per-path series CSV to file")
		pcapPath = flag.String("pcap", "", "write receiver capture to pcap file")
		chart    = flag.Bool("chart", false, "render an ASCII chart of the run")
		topoPath = flag.String("topo", "paper", `topology: "paper" or a scenario JSON file (see mptcpsim.ScenarioFile)`)
	)
	flag.Parse()

	order, err := parsePaths(*paths)
	if err != nil {
		fatal(err)
	}
	opts := mptcpsim.Options{
		CC:             *cc,
		Scheduler:      *sched,
		Duration:       *duration,
		SampleInterval: *bin,
		Seed:           *seed,
		SubflowPaths:   order,
		QueueScale:     *qscale,
		DisableSACK:    *nosack,
		TransferBytes:  *transfer,
		RetainPackets:  *pcapPath != "",
	}
	var nw *mptcpsim.Network
	if *topoPath == "paper" {
		nw = mptcpsim.PaperNetwork()
	} else {
		f, err := os.Open(*topoPath)
		if err != nil {
			fatal(err)
		}
		nw, err = mptcpsim.LoadNetwork(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if len(order) == 0 || *paths == "2,1,3" && nw.NumPaths() != 3 {
			opts.SubflowPaths = nil // default order for custom topologies
		}
	}
	res, err := mptcpsim.Run(nw, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Println("Network paths:")
	for i := 1; i <= nw.NumPaths(); i++ {
		fmt.Printf("  Path %d: %s\n", i, nw.PathDescription(i))
	}
	fmt.Println()
	fmt.Println(res.Problem)
	if err := res.Report(os.Stdout); err != nil {
		fatal(err)
	}
	if *chart {
		fmt.Println()
		title := fmt.Sprintf("MPTCP-%s on overlapping paths (%v, %v bins)", strings.ToUpper(*cc), *duration, *bin)
		if err := res.Chart(os.Stdout, title); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, res.WriteCSV); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
	if *pcapPath != "" {
		if err := writeFile(*pcapPath, res.WritePCAP); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d packets)\n", *pcapPath, res.Packets)
	}
}

func parsePaths(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad -paths element %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func writeFile(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mptcpsim:", err)
	os.Exit(1)
}
