// Command sweepd drives a fleet of sweep workers over one parameter grid:
// the coordinator expands the grid once, cuts it into -shards slices, and
// leases each slice to a worker with a deadline. Workers append to
// per-shard NDJSON run-logs in the shared -spool directory; a worker that
// crashes (or outlives its lease) is replaced by a new lease that resumes
// the same log past the last committed record, so no completed run is ever
// re-executed and a late straggler's double-finish is rejected by the
// lease epoch. When every shard's log is complete, the coordinator merges
// them through the same validated path as `sweep -merge` — the fleet's
// report and output files are byte-identical to an unsharded `sweep` run
// of the same grid, no matter how many workers died.
//
// By default shards execute in-process (goroutine workers). With -worker
// the coordinator execs one `sweep` process per lease instead:
//
//	sweep -shard k/n -resume <spool>/shard-k-of-n.ndjson -q ...
//
// so workers are ordinary sweep invocations and anything able to write a
// shard run-log can stand in for one.
//
// Examples:
//
//	sweepd -grid grid.json -shards 8 -fleet 3 -spool spool -json sweep.json
//	sweepd -grid grid.json -shards 8 -fleet 3 -spool spool -worker ./sweep
//	sweepd -grid grid.json -shards 4 -spool spool -progress - -http :6060
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"mptcpsim"
	"mptcpsim/internal/fleet"
	"mptcpsim/internal/telemetry"
)

// config carries the resolved command line.
type config struct {
	gridPath     string
	shards       int
	fleetSize    int
	workers      int
	check        bool
	spool        string
	workerBin    string
	ttl          time.Duration
	attempts     int
	backoff      time.Duration
	poll         time.Duration
	csvPath      string
	groupsPath   string
	jsonPath     string
	progressPath string
	httpAddr     string
	quiet        bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.gridPath, "grid", "", "JSON grid spec (default: built-in paper grid)")
	flag.IntVar(&cfg.shards, "shards", 4, "number of grid slices to lease out")
	flag.IntVar(&cfg.fleetSize, "fleet", 2, "concurrent leases (worker slots)")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "parallel runs inside each worker")
	flag.BoolVar(&cfg.check, "check", false, "validate correctness invariants on every run")
	flag.StringVar(&cfg.spool, "spool", "spool", "shared spool directory for shard run-logs")
	flag.StringVar(&cfg.workerBin, "worker", "", "sweep binary to exec per lease (default: run shards in-process)")
	flag.DurationVar(&cfg.ttl, "ttl", 10*time.Minute, "lease deadline; an expired lease is re-granted")
	flag.IntVar(&cfg.attempts, "attempts", 5, "max grants per shard before the fleet aborts")
	flag.DurationVar(&cfg.backoff, "backoff", time.Second, "delay before re-granting a failed shard")
	flag.DurationVar(&cfg.poll, "poll", 200*time.Millisecond, "spool progress-scan interval")
	flag.StringVar(&cfg.csvPath, "csv", "", "write the per-run table to this CSV file")
	flag.StringVar(&cfg.groupsPath, "groups", "", "write the aggregate table to this CSV file")
	flag.StringVar(&cfg.jsonPath, "json", "", "write the full result (runs + groups) to this JSON file")
	flag.StringVar(&cfg.progressPath, "progress", "", "stream NDJSON fleet heartbeats to this file (- = stderr)")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve expvar + pprof debug endpoints on this address (e.g. :6060)")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress coordinator lease notices")
	flag.BoolVar(&cfg.quiet, "q", false, "shorthand for -quiet")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "sweepd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// run executes the whole command against the given streams: notices and
// heartbeats go to stderr, the deterministic report to stdout.
func run(cfg config, stdout, stderr io.Writer) error {
	if cfg.shards <= 0 {
		return fmt.Errorf("-shards must be positive, have %d", cfg.shards)
	}
	if cfg.fleetSize <= 0 {
		return fmt.Errorf("-fleet must be positive, have %d", cfg.fleetSize)
	}
	grid, err := loadGrid(cfg.gridPath)
	if err != nil {
		return err
	}
	sweep := &mptcpsim.Sweep{Workers: cfg.workers, ValidateInvariants: cfg.check}
	_, total, err := sweep.Describe(grid)
	if err != nil {
		return err
	}

	var meter *telemetry.Meter
	closeMeter := func() {}
	if cfg.progressPath != "" {
		w := stderr
		var f *os.File
		if cfg.progressPath != "-" {
			if f, err = os.Create(cfg.progressPath); err != nil {
				return err
			}
			w = f
		}
		meter = telemetry.NewMeter(w, total, cfg.fleetSize, time.Second)
		meter.Activate()
		closeMeter = func() {
			meter.Close()
			if f != nil {
				f.Close()
			}
		}
	}
	defer closeMeter()
	if cfg.httpAddr != "" {
		addr, closeSrv, err := telemetry.DebugServer(cfg.httpAddr)
		if err != nil {
			return err
		}
		defer closeSrv()
		fmt.Fprintf(stderr, "debug endpoint on http://%s/debug/vars\n", addr)
	}

	var runner fleet.Runner
	if cfg.workerBin != "" {
		runner = &fleet.ExecRunner{
			Bin:      cfg.workerBin,
			GridPath: cfg.gridPath,
			Workers:  cfg.workers,
			Check:    cfg.check,
			Spool:    cfg.spool,
			Stderr:   stderr,
		}
	} else {
		runner = &fleet.Worker{Sweep: sweep, Grid: grid, Spool: cfg.spool}
	}
	coord := &fleet.Coordinator{
		Sweep:       sweep,
		Grid:        grid,
		Shards:      cfg.shards,
		Workers:     cfg.fleetSize,
		Spool:       cfg.spool,
		Runner:      runner,
		TTL:         cfg.ttl,
		MaxAttempts: cfg.attempts,
		Backoff:     cfg.backoff,
		Poll:        cfg.poll,
		Meter:       meter,
	}
	if !cfg.quiet {
		coord.Log = stderr
	}
	activateFleetVar(coord)

	start := time.Now()
	res, err := coord.Run(context.Background())
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fleet: merged %d runs from %d shards in %v\n",
		len(res.Runs), cfg.shards, time.Since(start).Round(time.Millisecond))
	if err := report(res, cfg, stdout); err != nil {
		return err
	}
	if n := res.Errs(); n > 0 {
		return fmt.Errorf("%d of %d runs failed", n, len(res.Runs))
	}
	return nil
}

// expvar integration mirrors telemetry.Meter.Activate: tests create many
// coordinators but expvar.Publish panics on duplicates, so one Func reads
// whichever coordinator is currently active.
var (
	fleetVarOnce sync.Once
	activeMu     sync.Mutex
	activeCoord  *fleet.Coordinator
)

// activateFleetVar publishes the coordinator's live merged aggregate
// (runs, errors, per-cell online stats) as the "fleet_progress" expvar.
func activateFleetVar(c *fleet.Coordinator) {
	fleetVarOnce.Do(func() {
		expvar.Publish("fleet_progress", expvar.Func(func() any {
			activeMu.Lock()
			cur := activeCoord
			activeMu.Unlock()
			if cur == nil {
				return nil
			}
			agg := cur.Progress()
			return struct {
				Runs   int                 `json:"runs"`
				Errors int                 `json:"errors"`
				Groups []mptcpsim.GroupAgg `json:"groups"`
			}{agg.Runs, agg.Errors, agg.Groups()}
		}))
	})
	activeMu.Lock()
	activeCoord = c
	activeMu.Unlock()
}

// report renders the aggregate table and the best run to stdout and writes
// the requested output files — the same text and bytes `sweep` produces
// for this result, which is what the byte-identity contract is measured
// against.
func report(res *mptcpsim.SweepResult, cfg config, stdout io.Writer) error {
	if err := res.Report(stdout); err != nil {
		return err
	}
	if idx := res.SortRunsByGap(); len(idx) > 0 {
		best := res.Runs[idx[0]]
		fmt.Fprintf(stdout, "\nbest run: %s/%s cc=%s order=%s seed=%d at %.1f of %.1f Mbps (gap %.1f%%)\n",
			best.Scenario, best.Perturbation, best.CC, best.OrderString(),
			best.Seed, best.TotalMbps, best.OptimumMbps, best.Gap*100)
	}
	for _, out := range []struct {
		path string
		fn   func(io.Writer) error
	}{
		{cfg.csvPath, res.WriteCSV},
		{cfg.groupsPath, res.WriteGroupsCSV},
		{cfg.jsonPath, res.WriteJSON},
	} {
		if out.path == "" {
			continue
		}
		if err := writeFile(out.path, out.fn); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", out.path)
	}
	return nil
}

// loadGrid reads the grid spec and resolves scenario file references
// relative to the spec's directory — the same resolution `sweep` applies,
// so both ends of an exec fleet expand the identical grid.
func loadGrid(path string) (*mptcpsim.Grid, error) {
	if path == "" {
		return &mptcpsim.Grid{
			CCs:    []string{"lia", "olia", "balia", "cubic", "reno", "wvegas"},
			Orders: [][]int{{2, 1, 3}, {1, 2, 3}, {3, 1, 2}, {1, 3, 2}},
		}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	grid, err := mptcpsim.LoadGrid(f)
	if err != nil {
		return nil, err
	}
	for i, sc := range grid.Scenarios {
		if sc.File == "" || sc.Scenario != nil {
			continue
		}
		ref := sc.File
		if !filepath.IsAbs(ref) {
			ref = filepath.Join(filepath.Dir(path), ref)
		}
		sf, err := os.Open(ref)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		inline, err := mptcpsim.LoadScenario(sf)
		sf.Close()
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", sc.Name, err)
		}
		grid.Scenarios[i].Scenario = inline
		grid.Scenarios[i].File = ""
		if grid.Scenarios[i].Name == "" {
			grid.Scenarios[i].Name = sc.File
		}
	}
	return grid, nil
}

func writeFile(path string, fn func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
