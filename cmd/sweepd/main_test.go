package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mptcpsim"
)

// testGrid is a small fleet-sized grid: 2 CCs x 2 orders x 3 seeds = 12
// runs, short enough to execute many times per test binary.
const testGrid = `{
  "ccs": ["cubic", "olia"],
  "orders": [[2, 1, 3], [1, 2, 3]],
  "seeds": [1, 2, 3],
  "duration_ms": 150
}`

// TestRunMatchesUnshardedSweep is the CLI end of the byte-identity
// contract: sweepd's report and all three output files must be
// byte-identical to rendering the unsharded library result through the
// same code path.
func TestRunMatchesUnshardedSweep(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(testGrid), 0o666); err != nil {
		t.Fatal(err)
	}

	cfg := config{
		gridPath:     gridPath,
		shards:       3,
		fleetSize:    2,
		workers:      2,
		spool:        filepath.Join(dir, "spool"),
		ttl:          time.Minute,
		attempts:     3,
		backoff:      10 * time.Millisecond,
		poll:         5 * time.Millisecond,
		csvPath:      filepath.Join(dir, "runs.csv"),
		groupsPath:   filepath.Join(dir, "groups.csv"),
		jsonPath:     filepath.Join(dir, "sweep.json"),
		progressPath: filepath.Join(dir, "progress.ndjson"),
	}
	var stdout, stderr bytes.Buffer
	if err := run(cfg, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	// The reference: the same grid swept unsharded, rendered through the
	// same report helper into a sibling set of files.
	grid, err := loadGrid(gridPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&mptcpsim.Sweep{Workers: 2}).Run(grid)
	if err != nil {
		t.Fatal(err)
	}
	refDir := t.TempDir()
	refCfg := config{
		csvPath:    filepath.Join(refDir, "runs.csv"),
		groupsPath: filepath.Join(refDir, "groups.csv"),
		jsonPath:   filepath.Join(refDir, "sweep.json"),
	}
	var wantOut bytes.Buffer
	if err := report(want, refCfg, &wantOut); err != nil {
		t.Fatal(err)
	}

	gotReport := stdout.String()
	wantReport := wantOut.String()
	// The "wrote <path>" lines name different directories; compare them
	// structurally and the rest byte-for-byte.
	stripWrote := func(s string) (body string, wrote []string) {
		var kept []string
		for _, line := range strings.SplitAfter(s, "\n") {
			if strings.HasPrefix(line, "wrote ") {
				wrote = append(wrote, filepath.Base(strings.TrimSpace(strings.TrimPrefix(line, "wrote "))))
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, ""), wrote
	}
	gotBody, gotWrote := stripWrote(gotReport)
	wantBody, wantWrote := stripWrote(wantReport)
	if gotBody != wantBody {
		t.Errorf("fleet report differs from unsharded report:\n--- fleet ---\n%s\n--- unsharded ---\n%s", gotBody, wantBody)
	}
	if fmt.Sprint(gotWrote) != fmt.Sprint(wantWrote) {
		t.Errorf("wrote lines = %v, want %v", gotWrote, wantWrote)
	}

	for _, name := range []string{"runs.csv", "groups.csv", "sweep.json"} {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("%s differs between fleet and unsharded sweep (%d vs %d bytes)", name, len(got), len(ref))
		}
	}

	// Heartbeats: every line valid JSON, final line accounts for all runs.
	raw, err := os.ReadFile(cfg.progressPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no heartbeats written")
	}
	var last struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("heartbeat line %d is not valid JSON: %q", i+1, line)
		}
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Done != 12 || last.Total != 12 {
		t.Errorf("final heartbeat done/total = %d/%d, want 12/12", last.Done, last.Total)
	}
}

// TestRunRejectsBadFlags pins the precondition errors.
func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(config{shards: 0}, nil, nil); err == nil || !strings.Contains(err.Error(), "-shards") {
		t.Errorf("shards=0: err = %v, want -shards complaint", err)
	}
	if err := run(config{shards: 1, fleetSize: 0}, nil, nil); err == nil || !strings.Contains(err.Error(), "-fleet") {
		t.Errorf("fleet=0: err = %v, want -fleet complaint", err)
	}
}
